// Package hyperqbench holds the benchmark harness regenerating every table
// and figure of the paper's evaluation (one testing.B benchmark per
// artifact), plus ablation benchmarks for the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
package hyperqbench

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"hyperq/internal/bench"
	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/feature"
	"hyperq/internal/odbc"
	"hyperq/internal/parser"
	"hyperq/internal/serializer"
	"hyperq/internal/transform"
	"hyperq/internal/workload/customer"
	"hyperq/internal/workload/tpch"

	"hyperq/internal/binder"
	"hyperq/internal/hyperq"
)

// benchSF is the TPC-H scale factor used by the Figure 9 benchmarks. The
// paper ran 1 TB on a 2-node cluster; the in-memory substrate runs a reduced
// scale — the measured quantity (gateway share of response time) does not
// depend on absolute size once execution dominates.
const benchSF = 0.002

// --- Figure 2 --------------------------------------------------------------

// BenchmarkFig2FeatureMatrix regenerates the feature support matrix.
func BenchmarkFig2FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig2(io.Discard)
	}
}

// --- Table 1 ----------------------------------------------------------------

// BenchmarkTable1WorkloadGeneration generates both paper-size customer
// workloads (39,731 + 192,753 queries).
func BenchmarkTable1WorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w1 := customer.Generate(customer.Workload1())
		w2 := customer.Generate(customer.Workload2())
		if customer.TotalOf(w1) != 39731 || customer.TotalOf(w2) != 192753 {
			b.Fatal("generation drifted from Table 1")
		}
	}
}

// --- Figure 8 ----------------------------------------------------------------

// BenchmarkFig8WorkloadStudy replays the (scaled) customer workloads through
// the instrumented gateway and verifies the recovered class statistics.
func BenchmarkFig8WorkloadStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.Fig8(io.Discard, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		if results[1].QueryPct[feature.ClassEmulation] < 70 {
			b.Fatalf("W2 emulation pct = %.1f", results[1].QueryPct[feature.ClassEmulation])
		}
	}
}

// --- Figure 9(a) --------------------------------------------------------------

// BenchmarkFig9aTPCHOverhead runs the 22-query single stream per iteration
// and reports the gateway overhead percentage as a custom metric.
func BenchmarkFig9aTPCHOverhead(b *testing.B) {
	g, err := bench.NewTPCHGateway(dialect.CloudA(), benchSF)
	if err != nil {
		b.Fatal(err)
	}
	s, err := g.NewLocalSession("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Warm up outside the timer.
	for _, qn := range tpch.QueryNumbers() {
		if _, err := s.Run(tpch.Queries[qn]); err != nil {
			b.Fatalf("Q%d: %v", qn, err)
		}
	}
	g.ResetMetrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qn := range tpch.QueryNumbers() {
			if _, err := s.Run(tpch.Queries[qn]); err != nil {
				b.Fatalf("Q%d: %v", qn, err)
			}
		}
	}
	b.StopTimer()
	m := g.MetricsSnapshot()
	b.ReportMetric(100*m.Overhead(), "overhead-%")
	b.ReportMetric(float64(m.Translate.Microseconds())/float64(m.Requests), "translate-µs/query")
	b.ReportMetric(float64(m.Convert.Microseconds())/float64(m.Requests), "convert-µs/query")
}

// --- Figure 9(b) --------------------------------------------------------------

// BenchmarkFig9bStress runs the ten-session concurrent mix per iteration.
func BenchmarkFig9bStress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig9b(io.Discard, dialect.CloudA(), benchSF, 10, 27)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverheadPct, "overhead-%")
	}
}

// --- per-component benchmarks -------------------------------------------------

// translationFixture builds the catalog and the bound-translation closure
// for the paper's Example 2.
func translationFixture(b *testing.B) func() string {
	eng := engine.New(dialect.CloudA())
	s := eng.NewSession()
	for _, ddl := range []string{
		"CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)",
		"CREATE TABLE SALES_HISTORY (GROSS DECIMAL(12,2), NET DECIMAL(12,2))",
	} {
		if _, err := s.ExecSQL(ddl); err != nil {
			b.Fatal(err)
		}
	}
	const example2 = `
	  SEL * FROM SALES
	  WHERE SALES_DATE > 1140101
	    AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
	  QUALIFY RANK(AMOUNT DESC) <= 10`
	target := dialect.CloudA()
	return func() string {
		rec := &feature.Recorder{}
		stmt, err := parser.ParseOne(example2, parser.Teradata, rec)
		if err != nil {
			b.Fatal(err)
		}
		bd := binder.New(s, parser.Teradata, rec)
		bound, err := bd.Bind(stmt)
		if err != nil {
			b.Fatal(err)
		}
		c := transform.NewContext(nil, rec, bd.MaxColumnID())
		mid, err := transform.BindingStage().Statement(bound, c)
		if err != nil {
			b.Fatal(err)
		}
		sql, err := serializer.New(target, rec).Serialize(mid)
		if err != nil {
			b.Fatal(err)
		}
		return sql
	}
}

// BenchmarkTranslationPipeline measures the full parse→bind→transform→
// serialize path on the paper's Example 2 (the "query translation time"
// component of Figure 9).
func BenchmarkTranslationPipeline(b *testing.B) {
	translate := translationFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if translate() == "" {
			b.Fatal("empty translation")
		}
	}
}

// --- Translation cache ------------------------------------------------------

// newCacheBenchGateway builds a TPC-H gateway with explicit cache settings.
func newCacheBenchGateway(b *testing.B, disableCache bool) *hyperq.Gateway {
	b.Helper()
	target := dialect.CloudA()
	eng := engine.New(target)
	if err := tpch.SetupEngine(eng.NewSession(), benchSF); err != nil {
		b.Fatal(err)
	}
	g, err := hyperq.New(hyperq.Config{
		Target:                  target,
		Driver:                  &odbc.LocalDriver{Engine: eng},
		Catalog:                 eng.Catalog().Clone(),
		DisableTranslationCache: disableCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTranslationCache measures the translation-time effect of the
// gateway statement cache on a repeated query shape: cold runs the full
// parse→bind→transform→serialize pipeline every time, warm replays
// byte-identical requests (request tier), and literal-variant replays the
// same shape with changing literal values (fingerprint tier). Translation
// time is taken from the gateway metrics so backend execution does not
// pollute the comparison.
func BenchmarkTranslationCache(b *testing.B) {
	const shape = "SEL L_RETURNFLAG, L_LINESTATUS, SUM(L_QUANTITY), COUNT(*) FROM LINEITEM WHERE L_QUANTITY < %d GROUP BY L_RETURNFLAG, L_LINESTATUS ORDER BY L_RETURNFLAG, L_LINESTATUS"
	runCase := func(b *testing.B, disableCache bool, query func(i int) string) {
		g := newCacheBenchGateway(b, disableCache)
		s, err := g.NewLocalSession("bench")
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		// Warm up (fills the cache when enabled) outside the measurement.
		for i := 0; i < 8; i++ {
			if _, err := s.Run(query(i)); err != nil {
				b.Fatal(err)
			}
		}
		g.ResetMetrics()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(query(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		m := g.MetricsSnapshot()
		b.ReportMetric(float64(m.Translate.Microseconds())/float64(m.Requests), "translate-µs/query")
		b.ReportMetric(float64(m.CacheHits), "hits")
		b.ReportMetric(float64(m.CacheMisses), "misses")
	}
	b.Run("cold", func(b *testing.B) {
		runCase(b, true, func(int) string { return fmt.Sprintf(shape, 30) })
	})
	b.Run("warm", func(b *testing.B) {
		runCase(b, false, func(int) string { return fmt.Sprintf(shape, 30) })
	})
	b.Run("literal-variant", func(b *testing.B) {
		runCase(b, false, func(i int) string { return fmt.Sprintf(shape, 10+i%40) })
	})
}

// --- observability overhead ---------------------------------------------------

// BenchmarkTracedTranslate measures the cost of per-request observability on
// the full gateway pipeline. Literal-variant queries defeat the raw result
// cache so every iteration runs parse→bind→transform→serialize→execute→
// convert; "traced" runs tracing plus the workload-statistics registry and
// SLO tracking (the full observability tax), "nostats" runs tracing with the
// registry disabled (isolating the wstats share), and "untraced" disables
// tracing (histograms record in all modes). The observability tax must stay
// under a few percent of request time, and steady-state registry recording
// must not allocate — the literal variants all share one statement shape, so
// after warm-up every iteration is a recording hit.
func BenchmarkTracedTranslate(b *testing.B) {
	const shape = "SEL L_RETURNFLAG, COUNT(*) FROM LINEITEM WHERE L_QUANTITY < %d GROUP BY L_RETURNFLAG"
	cases := []struct {
		name           string
		disableTracing bool
		disableStats   bool
	}{
		{name: "traced"},
		{name: "untraced", disableTracing: true, disableStats: true},
		{name: "nostats", disableStats: true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			target := dialect.CloudA()
			eng := engine.New(target)
			if err := tpch.SetupEngine(eng.NewSession(), benchSF); err != nil {
				b.Fatal(err)
			}
			g, err := hyperq.New(hyperq.Config{
				Target:                  target,
				Driver:                  &odbc.LocalDriver{Engine: eng},
				Catalog:                 eng.Catalog().Clone(),
				DisableTranslationCache: true, // full pipeline every request
				DisableTracing:          tc.disableTracing,
				DisableStatStatements:   tc.disableStats,
				SLO:                     100 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := g.NewLocalSession("bench")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < 8; i++ { // warm up outside the timer
				if _, err := s.Run(fmt.Sprintf(shape, 10+i%40)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(fmt.Sprintf(shape, 10+i%40)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResultConversion measures the Result Converter path in isolation:
// a wide SELECT whose output is dominated by conversion work.
func BenchmarkResultConversion(b *testing.B) {
	g, err := bench.NewTPCHGateway(dialect.CloudA(), benchSF)
	if err != nil {
		b.Fatal(err)
	}
	s, err := g.NewLocalSession("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const q = "SEL * FROM lineitem"
	if _, err := s.Run(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := g.MetricsSnapshot()
	b.ReportMetric(100*float64(m.Convert)/float64(m.Translate+m.Execute+m.Convert), "convert-%")
}

// --- ablations ---------------------------------------------------------------

// BenchmarkAblationPushdown compares a comma-join query with the
// predicate-pushdown performance transformation enabled vs disabled
// (DESIGN.md: performance transformations in the Transformer, §4.3). A
// two-table join is used so the disabled variant stays tractable — with
// pushdown the equijoin hashes; without it the engine materializes the
// cross product and filters.
func BenchmarkAblationPushdown(b *testing.B) {
	const rows = 2000
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			eng := engine.New(dialect.CloudA())
			be := eng.NewSession()
			for _, ddl := range []string{
				"CREATE TABLE pa (k INT, v INT)",
				"CREATE TABLE pb (k INT, w INT)",
			} {
				if _, err := be.ExecSQL(ddl); err != nil {
					b.Fatal(err)
				}
			}
			var pa, pb strings.Builder
			pa.WriteString("INSERT INTO pa VALUES (0, 0)")
			pb.WriteString("INSERT INTO pb VALUES (0, 0)")
			for i := 1; i < rows; i++ {
				fmt.Fprintf(&pa, ",(%d,%d)", i, i%97)
				fmt.Fprintf(&pb, ",(%d,%d)", i, i%89)
			}
			if _, err := be.ExecSQL(pa.String()); err != nil {
				b.Fatal(err)
			}
			if _, err := be.ExecSQL(pb.String()); err != nil {
				b.Fatal(err)
			}
			eng.SetOptimizerEnabled(on)
			g, err := hyperq.New(hyperq.Config{
				Target:  dialect.CloudA(),
				Driver:  &odbc.LocalDriver{Engine: eng},
				Catalog: eng.Catalog().Clone(),
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := g.NewLocalSession("bench")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run("SEL COUNT(*) FROM pa, pb WHERE pa.k = pb.k AND pa.v > 10 AND pb.w > 10"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationResultSpill compares the buffered result path with an
// in-memory Result Store against one that spills every batch to disk
// (§4.6: "the Result Converter spills the buffered results into disk").
func BenchmarkAblationResultSpill(b *testing.B) {
	for _, budget := range []struct {
		name  string
		bytes int
	}{{"memory", 64 << 20}, {"spill", 1}} {
		b.Run(budget.name, func(b *testing.B) {
			eng := engine.New(dialect.CloudA())
			if err := tpch.SetupEngine(eng.NewSession(), benchSF); err != nil {
				b.Fatal(err)
			}
			g, err := hyperq.New(hyperq.Config{
				Target:       dialect.CloudA(),
				Driver:       &odbc.LocalDriver{Engine: eng},
				Catalog:      eng.Catalog().Clone(),
				ResultBudget: budget.bytes,
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := g.NewLocalSession("bench")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run("SEL l_orderkey, l_extendedprice FROM lineitem"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationConvertWorkers compares sequential vs parallel result
// conversion (§4.6: "this conversion operation happens in parallel").
func BenchmarkAblationConvertWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := engine.New(dialect.CloudA())
			if err := tpch.SetupEngine(eng.NewSession(), benchSF); err != nil {
				b.Fatal(err)
			}
			g, err := hyperq.New(hyperq.Config{
				Target:         dialect.CloudA(),
				Driver:         &odbc.LocalDriver{Engine: eng},
				Catalog:        eng.Catalog().Clone(),
				ConvertWorkers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := g.NewLocalSession("bench")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run("SEL * FROM lineitem"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRecursionStrategy compares native recursion (CloudD)
// against the Figure 7 temp-table emulation (CloudA) for the same query.
func BenchmarkAblationRecursionStrategy(b *testing.B) {
	const recursive = `
	  WITH RECURSIVE r (empno, mgrno) AS (
	    SEL empno, mgrno FROM hier WHERE mgrno = 0
	    UNION ALL
	    SEL hier.empno, hier.mgrno FROM hier, r WHERE r.empno = hier.mgrno
	  )
	  SEL COUNT(*) FROM r`
	for _, target := range []*dialect.Profile{dialect.CloudD(), dialect.CloudA()} {
		mode := "emulated"
		if target.Supports(dialect.CapRecursive) {
			mode = "native"
		}
		b.Run(mode, func(b *testing.B) {
			eng := engine.New(target)
			be := eng.NewSession()
			if _, err := be.ExecSQL("CREATE TABLE hier (empno INT, mgrno INT)"); err != nil {
				b.Fatal(err)
			}
			// A 5-level chain of 50 employees under manager 0.
			sql := "INSERT INTO hier VALUES (1, 0)"
			for i := 2; i <= 50; i++ {
				sql += fmt.Sprintf(", (%d, %d)", i, i/2)
			}
			if _, err := be.ExecSQL(sql); err != nil {
				b.Fatal(err)
			}
			g, err := hyperq.New(hyperq.Config{
				Target:  target,
				Driver:  &odbc.LocalDriver{Engine: eng},
				Catalog: eng.Catalog().Clone(),
			})
			if err != nil {
				b.Fatal(err)
			}
			s, err := g.NewLocalSession("bench")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(recursive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMacroEmulation measures the cost of mid-tier macro
// execution vs submitting the body directly.
func BenchmarkAblationMacroEmulation(b *testing.B) {
	eng := engine.New(dialect.CloudA())
	be := eng.NewSession()
	for _, ddl := range customer.SchemaDDL {
		if _, err := be.ExecSQL(ddl); err != nil {
			b.Fatal(err)
		}
	}
	g, err := hyperq.New(hyperq.Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := g.NewLocalSession("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("CREATE MACRO m (lim INTEGER) AS (SELECT acct, SUM(amount) AS total FROM cust_txn WHERE acct <= :lim GROUP BY acct;)"); err != nil {
		b.Fatal(err)
	}
	b.Run("exec-macro", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Run("EXEC m(3)"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Run("SELECT acct, SUM(amount) AS total FROM cust_txn WHERE acct <= 3 GROUP BY acct"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDMLBatching compares a 50-statement single-row INSERT
// storm with the §4.3 batching transformation (one backend statement) against
// the same inserts submitted one request at a time (no batching possible).
func BenchmarkAblationDMLBatching(b *testing.B) {
	storm := func() string {
		var sb strings.Builder
		for i := 0; i < 50; i++ {
			fmt.Fprintf(&sb, "INS storm (%d, %d);\n", i, i*i)
		}
		return sb.String()
	}()
	newSess := func(b *testing.B) *hyperq.Session {
		eng := engine.New(dialect.CloudA())
		if _, err := eng.NewSession().ExecSQL("CREATE TABLE storm (a INT, b INT)"); err != nil {
			b.Fatal(err)
		}
		g, err := hyperq.New(hyperq.Config{
			Target:  dialect.CloudA(),
			Driver:  &odbc.LocalDriver{Engine: eng},
			Catalog: eng.Catalog().Clone(),
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := g.NewLocalSession("bench")
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("batched-request", func(b *testing.B) {
		s := newSess(b)
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(storm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("one-by-one", func(b *testing.B) {
		s := newSess(b)
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 50; j++ {
				if _, err := s.Run(fmt.Sprintf("INS storm (%d, %d)", j, j*j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
