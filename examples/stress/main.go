// Stress scenario: the §7.3 experiment — a client application opens ten
// simultaneous sessions against the gateway, each continuously sending the
// TPC-H mix plus vendor-feature variants, over the real wire protocols
// (TDP client → gateway → CWP → engine).
//
//	go run ./examples/stress [-clients 10] [-requests 30] [-sf 0.002]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/wire/tdp"
	"hyperq/internal/workload/tpch"

	"hyperq/internal/hyperq"
)

func main() {
	clients := flag.Int("clients", 10, "simultaneous sessions")
	requests := flag.Int("requests", 30, "requests per session")
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	flag.Parse()

	target := dialect.CloudA()
	eng := engine.New(target)
	fmt.Printf("loading TPC-H at SF %.3f ...\n", *sf)
	if err := tpch.SetupEngine(eng.NewSession(), *sf); err != nil {
		log.Fatal(err)
	}

	// Backend server on a real socket.
	beLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = cwp.Serve(beLn, eng) }()

	// Gateway on a real socket in front of it.
	g, err := hyperq.New(hyperq.Config{
		Target:  target,
		Driver:  &odbc.NetworkDriver{Addr: beLn.Addr().String(), User: "gw", Password: "gw"},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		log.Fatal(err)
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = tdp.Serve(feLn, g) }()

	mix := make([]string, 0, 27)
	for _, qn := range tpch.QueryNumbers() {
		mix = append(mix, tpch.Queries[qn])
	}
	mix = append(mix, tpch.VendorVariants...)

	fmt.Printf("running %d sessions x %d requests against %s ...\n", *clients, *requests, feLn.Addr())
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	totalRows := 0
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := tdp.Dial(feLn.Addr().String(), fmt.Sprintf("app%d", c), "pw")
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			defer cl.Close()
			rows := 0
			for i := 0; i < *requests; i++ {
				stmts, err := cl.Request(mix[(i+c)%len(mix)])
				if err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
				for _, st := range stmts {
					rows += len(st.Rows)
				}
			}
			mu.Lock()
			totalRows += rows
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	m := g.MetricsSnapshot()
	total := m.Translate + m.Execute + m.Convert
	fmt.Printf("\n%d requests (%d result rows) in %v wall time\n", m.Requests, totalRows, elapsed.Round(time.Millisecond))
	fmt.Printf("  query translation:     %12v (%5.2f%%)\n", m.Translate, 100*float64(m.Translate)/float64(total))
	fmt.Printf("  execution:             %12v (%5.2f%%)\n", m.Execute, 100*float64(m.Execute)/float64(total))
	fmt.Printf("  result transformation: %12v (%5.2f%%)\n", m.Convert, 100*float64(m.Convert)/float64(total))
	fmt.Printf("  Hyper-Q overhead: %.2f%% of total query response time (paper: 0.1-0.2%%)\n",
		100*m.Overhead())
}
