// Scale-out: the paper's Appendix B.3 use case. Multiple replicas of the
// warehouse sit behind the gateway; Hyper-Q routes read queries across them
// round-robin and fans writes out to every replica — "without sacrificing
// consistency, and without requiring changes to the application logic."
//
//	go run ./examples/scaleout
package main

import (
	"fmt"
	"log"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"

	"hyperq/internal/hyperq"
)

func main() {
	const replicas = 3
	target := dialect.CloudA()

	// Three replica engines with identical schema.
	engines := make([]*engine.Engine, replicas)
	drivers := make([]odbc.Driver, replicas)
	for i := range engines {
		engines[i] = engine.New(target)
		s := engines[i].NewSession()
		if _, err := s.ExecSQL("CREATE TABLE metrics (k INT, v DECIMAL(10,2))"); err != nil {
			log.Fatal(err)
		}
		drivers[i] = &odbc.LocalDriver{Engine: engines[i]}
	}

	g, err := hyperq.New(hyperq.Config{
		Target:  target,
		Driver:  &odbc.ReplicatedDriver{Replicas: drivers},
		Catalog: engines[0].Catalog().Clone(),
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := g.NewLocalSession("app")
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Writes (Teradata dialect, as always) reach every replica.
	if _, err := s.Run("INS metrics (1, 10.50); INS metrics (2, 99.00);"); err != nil {
		log.Fatal(err)
	}
	for i, eng := range engines {
		n, _ := eng.NewSession().RowCount("metrics")
		fmt.Printf("replica %d holds %d rows\n", i+1, n)
	}

	// Reads load-balance across replicas; results are identical.
	for i := 0; i < replicas*2; i++ {
		res, err := s.Run("SEL SUM(v) FROM metrics")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %d -> total %s\n", i+1, res[0].Rows[0][0])
	}
	fmt.Println("application unchanged; replicas stayed consistent")
}
