// Quickstart: run an unmodified Teradata-dialect application against a
// cloud data warehouse through Hyper-Q — entirely in-process.
//
// It walks the paper's running examples: Example 1 (SEL, named expressions,
// QUALIFY, reordered clauses) and Example 2 (DATE/INT comparison, vector
// subquery, vendor RANK), showing the translated SQL-B the gateway would
// send to the target.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/feature"
	"hyperq/internal/odbc"
	"hyperq/internal/parser"
	"hyperq/internal/serializer"
	"hyperq/internal/transform"

	"hyperq/internal/binder"
	"hyperq/internal/hyperq"
)

func main() {
	// 1. Provision the "cloud data warehouse": an engine modeling CloudA
	//    (no QUALIFY, no vector subqueries, no recursion — see Figure 2).
	target := dialect.CloudA()
	eng := engine.New(target)
	be := eng.NewSession()
	mustExec(be, `CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)`)
	mustExec(be, `CREATE TABLE SALES_HISTORY (GROSS DECIMAL(12,2), NET DECIMAL(12,2))`)
	mustExec(be, `CREATE TABLE PRODUCT (PRODUCT_NAME VARCHAR(40), SALES DECIMAL(12,2), STORE INT)`)
	mustExec(be, `INSERT INTO SALES VALUES
	  (100.00, DATE '2014-02-01', 1), (250.00, DATE '2014-03-15', 1),
	  (80.00, DATE '2013-12-31', 2), (250.00, DATE '2014-06-01', 2)`)
	mustExec(be, `INSERT INTO SALES_HISTORY VALUES (90.00, 70.00), (240.00, 200.00)`)
	mustExec(be, `INSERT INTO PRODUCT VALUES ('widget', 100.00, 1), ('gadget', 300.00, 1), ('gizmo', 50.00, 2)`)

	// 2. Put Hyper-Q in front of it.
	g, err := hyperq.New(hyperq.Config{
		Target:  target,
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := g.NewLocalSession("demo")
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// 3. The application's queries, exactly as written for the original
	//    system.
	example2 := `
SEL *
FROM SALES
WHERE SALES_DATE > 1140101
  AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
QUALIFY RANK(AMOUNT DESC) <= 2`

	fmt.Println("=== Paper Example 2 (Teradata dialect, as the application submits it) ===")
	fmt.Println(example2)
	fmt.Println("\n--- translated for", target.Name, "---")
	fmt.Println(translate(g, s, example2))

	fmt.Println("\n--- executed through the gateway ---")
	res, err := s.Run(example2)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)

	example1 := `
SEL PRODUCT_NAME, SALES AS SALES_BASE, SALES_BASE + 100 AS SALES_OFFSET
FROM PRODUCT
QUALIFY 10 < SUM(SALES) OVER (PARTITION BY STORE)
ORDER BY STORE, PRODUCT_NAME
WHERE CHARS(PRODUCT_NAME) > 4`
	fmt.Println("\n=== Paper Example 1 ===")
	res, err = s.Run(example1)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)
}

func mustExec(s *engine.Session, sql string) {
	if _, err := s.ExecSQL(sql); err != nil {
		log.Fatalf("setup: %v", err)
	}
}

// translate shows the SQL-B text the pipeline produces (parse → bind →
// binding-stage transform → target serialization).
func translate(g *hyperq.Gateway, resolver binder.Resolver, tdSQL string) string {
	rec := &feature.Recorder{}
	stmt, err := parser.ParseOne(tdSQL, parser.Teradata, rec)
	if err != nil {
		log.Fatal(err)
	}
	b := binder.New(resolver, parser.Teradata, rec)
	bound, err := b.Bind(stmt)
	if err != nil {
		log.Fatal(err)
	}
	c := transform.NewContext(nil, rec, b.MaxColumnID())
	mid, err := transform.BindingStage().Statement(bound, c)
	if err != nil {
		log.Fatal(err)
	}
	sql, err := serializer.New(g.Target(), rec).Serialize(mid)
	if err != nil {
		log.Fatal(err)
	}
	out := sql + "\n\nfeatures rewritten:"
	for _, id := range rec.Set().IDs() {
		info := feature.Lookup(id)
		out += fmt.Sprintf("\n  [%s] %s — %s", info.Class, info.Name, info.Desc)
	}
	return out
}

func printResult(results []*hyperq.FrontResult) {
	for _, r := range results {
		for _, c := range r.Cols {
			fmt.Printf("%-14s", c.Name)
		}
		fmt.Println()
		for _, row := range r.Rows {
			for _, d := range row {
				fmt.Printf("%-14s", d.String())
			}
			fmt.Println()
		}
		fmt.Printf("(%d rows)\n", len(r.Rows))
	}
}
