// Replatform study: the §7.1 customer workload experiment in miniature.
//
// Two synthetic customer workloads — calibrated to the feature statistics
// the paper reports for a Health customer and a Telco customer (Table 1,
// Figure 8) — replay through the instrumented gateway. The run prints the
// recovered per-class statistics and the most frequent rewrite features,
// demonstrating the paper's conclusion: few differences are keyword-level;
// most queries need structural transformation or mid-tier emulation.
//
//	go run ./examples/replatform            # scaled-down workloads (fast)
//	go run ./examples/replatform -full      # paper-size workloads
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hyperq/internal/bench"
	"hyperq/internal/feature"
)

func main() {
	full := flag.Bool("full", false, "replay the full paper-size workloads")
	flag.Parse()

	scale := 0.05
	if *full {
		scale = 1.0
	}
	fmt.Println("Replatforming study: replaying customer workloads through Hyper-Q")
	fmt.Println()
	bench.Table1(os.Stdout)
	fmt.Println()
	results, err := bench.Fig8(os.Stdout, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Conclusions (§7.1):")
	w1, w2 := results[0], results[1]
	fmt.Printf("  - Keyword translation affects only %.1f%% / %.1f%% of queries:\n",
		w1.QueryPct[feature.ClassTranslation], w2.QueryPct[feature.ClassTranslation])
	fmt.Println("    a purely textual replacement-based solution will not work in practice.")
	fmt.Printf("  - %.1f%% of workload 1 needs semantic transformations; %.1f%% of\n",
		w1.QueryPct[feature.ClassTransformation], w2.QueryPct[feature.ClassEmulation])
	fmt.Println("    workload 2 needs mid-tier emulation (business logic wrapped in macros).")
	fmt.Println("  - Hyper-Q handled every query of both workloads automatically.")
}
