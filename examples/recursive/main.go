// Recursive-query emulation: the paper's Example 4 / Figure 7.
//
// The same WITH RECURSIVE query runs against two targets: CloudD, which
// supports recursion natively, and CloudA, which does not — there Hyper-Q
// decomposes the query into the WorkTable/TempTable protocol of Figure 7,
// driving a loop of INSERT/DELETE statements with gateway-side state.
//
//	go run ./examples/recursive
package main

import (
	"fmt"
	"log"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"

	"hyperq/internal/hyperq"
)

// The paper's Example 4: all employees reporting directly or indirectly to
// emp10, over the sample hierarchy of Figure 7:
// {(e1,e7), (e7,e8), (e8,e10), (e9,e10), (e10,e11)}.
const example4 = `
WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
    SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
  UNION ALL
    SELECT EMP.EMPNO, EMP.MGRNO
    FROM EMP, REPORTS
    WHERE REPORTS.EMPNO = EMP.MGRNO
)
SELECT EMPNO FROM REPORTS ORDER BY EMPNO`

func main() {
	run(dialect.CloudD(), "native WITH RECURSIVE (capability present)")
	run(dialect.CloudA(), "Figure 7 temp-table emulation (capability absent)")
}

func run(target *dialect.Profile, how string) {
	eng := engine.New(target)
	be := eng.NewSession()
	for _, sql := range []string{
		"CREATE TABLE EMP (EMPNO INT, MGRNO INT)",
		"INSERT INTO EMP VALUES (1,7),(7,8),(8,10),(9,10),(10,11)",
	} {
		if _, err := be.ExecSQL(sql); err != nil {
			log.Fatal(err)
		}
	}
	g, err := hyperq.New(hyperq.Config{
		Target:  target,
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := g.NewLocalSession("demo")
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	fmt.Printf("=== Target %s: %s ===\n", target.Name, how)
	results, err := s.Run(example4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("reports of e10:")
	for _, row := range results[0].Rows {
		fmt.Printf(" e%s", row[0])
	}
	fmt.Print("\n\n")
}
