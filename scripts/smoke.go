//go:build ignore

// Command smoke is the CI end-to-end smoke check: it boots the built
// cloudsrv and hyperq binaries on loopback ports, submits a statement
// through the bteq client, and asserts the gateway's /metrics introspection
// endpoint reports non-zero pipeline-stage counters. A second phase restarts
// the gateway with -pool-size 2, drives 8 concurrent bteq clients through
// volatile-table round trips, and asserts the /pool endpoint and the pool
// /metrics series report multiplexing and pinning activity.
//
// Usage (from scripts/check.sh):
//
//	go build -o "$bindir" ./cmd/... && go run scripts/smoke.go -bin "$bindir"
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

func main() {
	bin := flag.String("bin", "", "directory holding the cloudsrv, hyperq, and bteq binaries")
	flag.Parse()
	if *bin == "" {
		log.Fatal("smoke: -bin is required")
	}
	if err := run(*bin); err != nil {
		log.Fatalf("smoke: %v", err)
	}
	fmt.Println("smoke: ok")
}

// freePort reserves a loopback port and releases it for the child to claim.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer ln.Close()
	return ln.Addr().String(), nil
}

// waitTCP polls until the address accepts connections.
func waitTCP(addr string, deadline time.Duration) error {
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("%s did not come up within %v", addr, deadline)
}

func start(name string, args ...string) (*exec.Cmd, error) {
	cmd := exec.Command(name, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", filepath.Base(name), err)
	}
	return cmd, nil
}

func run(bin string) error {
	backendAddr, err := freePort()
	if err != nil {
		return err
	}
	gatewayAddr, err := freePort()
	if err != nil {
		return err
	}
	debugAddr, err := freePort()
	if err != nil {
		return err
	}

	cloudsrv, err := start(filepath.Join(bin, "cloudsrv"), "-listen", backendAddr)
	if err != nil {
		return err
	}
	defer cloudsrv.Process.Kill()
	if err := waitTCP(backendAddr, 10*time.Second); err != nil {
		return fmt.Errorf("cloudsrv: %w", err)
	}

	hyperq, err := start(filepath.Join(bin, "hyperq"),
		"-listen", gatewayAddr, "-backend", backendAddr, "-debug-addr", debugAddr)
	if err != nil {
		return err
	}
	defer hyperq.Process.Kill()
	if err := waitTCP(gatewayAddr, 10*time.Second); err != nil {
		return fmt.Errorf("hyperq: %w", err)
	}
	if err := waitTCP(debugAddr, 10*time.Second); err != nil {
		return fmt.Errorf("hyperq debug endpoint: %w", err)
	}

	// A DDL + DML + query round trip through the wire client.
	bteq := exec.Command(filepath.Join(bin, "bteq"), "-connect", gatewayAddr, "-user", "smoke")
	bteq.Stdin = strings.NewReader(
		"CREATE TABLE SMOKE (X INT);\n" +
			"INSERT INTO SMOKE VALUES (1);\n" +
			"SEL COUNT(*) FROM SMOKE;\n")
	out, err := bteq.CombinedOutput()
	if err != nil {
		return fmt.Errorf("bteq: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "Failure") {
		return fmt.Errorf("bteq request failed:\n%s", out)
	}

	resp, err := http.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	metrics := string(body)
	for _, stage := range []string{"parse", "bind", "transform", "serialize", "execute", "convert"} {
		series := fmt.Sprintf(`hyperq_stage_duration_seconds_count{stage="%s"}`, stage)
		if err := assertNonZero(metrics, series); err != nil {
			return err
		}
	}
	for _, series := range []string{"hyperq_requests_total", "hyperq_statements_total"} {
		if err := assertNonZero(metrics, series); err != nil {
			return err
		}
	}

	return runPooled(bin, backendAddr)
}

// runPooled boots a second gateway with a 2-connection backend pool against
// the already-running cloudsrv and oversubscribes it 4x with concurrent bteq
// sessions, each exercising session pinning through a volatile table.
func runPooled(bin, backendAddr string) error {
	gatewayAddr, err := freePort()
	if err != nil {
		return err
	}
	debugAddr, err := freePort()
	if err != nil {
		return err
	}
	hyperq, err := start(filepath.Join(bin, "hyperq"),
		"-listen", gatewayAddr, "-backend", backendAddr, "-debug-addr", debugAddr,
		"-pool-size", "2", "-pool-max-waiters", "-1", "-pool-acquire-timeout", "30s")
	if err != nil {
		return err
	}
	defer hyperq.Process.Kill()
	if err := waitTCP(gatewayAddr, 10*time.Second); err != nil {
		return fmt.Errorf("pooled hyperq: %w", err)
	}
	if err := waitTCP(debugAddr, 10*time.Second); err != nil {
		return fmt.Errorf("pooled hyperq debug endpoint: %w", err)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			bteq := exec.Command(filepath.Join(bin, "bteq"),
				"-connect", gatewayAddr, "-user", fmt.Sprintf("smoke%d", c))
			// Volatile tables are session-scoped, so every client can use
			// the same name; each CREATE pins that session's connection.
			bteq.Stdin = strings.NewReader(
				"CREATE VOLATILE TABLE VT_SMOKE (X INT) ON COMMIT PRESERVE ROWS;\n" +
					fmt.Sprintf("INSERT INTO VT_SMOKE VALUES (%d);\n", c) +
					"SEL X FROM VT_SMOKE;\n" +
					"DROP TABLE VT_SMOKE;\n")
			out, err := bteq.CombinedOutput()
			if err != nil {
				errs[c] = fmt.Errorf("pooled bteq %d: %v\n%s", c, err, out)
				return
			}
			if strings.Contains(string(out), "Failure") {
				errs[c] = fmt.Errorf("pooled bteq %d request failed:\n%s", c, out)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	resp, err := http.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		return fmt.Errorf("pooled /metrics: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pooled /metrics: status %d", resp.StatusCode)
	}
	metrics := string(body)
	for _, series := range []string{
		"hyperq_pool_acquires_total",
		"hyperq_pool_pins_total",
		"hyperq_pool_unpins_total",
		"hyperq_pool_dials_total",
	} {
		if err := assertNonZero(metrics, series); err != nil {
			return err
		}
	}
	if !strings.Contains(metrics, "hyperq_pool_size 2") {
		return fmt.Errorf("pooled /metrics: hyperq_pool_size is not 2")
	}

	resp, err = http.Get("http://" + debugAddr + "/pool")
	if err != nil {
		return fmt.Errorf("/pool: %w", err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/pool: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"acquires"`) {
		return fmt.Errorf("/pool response missing pool stats:\n%s", body)
	}
	return nil
}

// assertNonZero finds the series line and rejects a zero or missing value.
func assertNonZero(metrics, series string) error {
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		val := strings.TrimSpace(strings.TrimPrefix(line, series+" "))
		if val == "0" || val == "" {
			return fmt.Errorf("series %s is zero", series)
		}
		return nil
	}
	return fmt.Errorf("series %s missing from /metrics", series)
}
