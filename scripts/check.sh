#!/usr/bin/env bash
# Repo-wide verification: static analysis, a full build, and the test suite
# under the race detector. CI and pre-commit entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race -timeout 120s ./...

# Connection-pool stress: rerun the 100-goroutine multiplex/pin/unpin storm
# under the race detector with fresh state (no cached result).
go test -race -count=1 -timeout 120s -run 'TestPoolStressRace' ./internal/odbc/pool/

# End-to-end smoke: boot cloudsrv + hyperq (with the introspection endpoint),
# run a statement through bteq, and assert /metrics shows pipeline activity.
# A second phase restarts the gateway with -pool-size 2 and oversubscribes it
# with 8 concurrent bteq clients exercising volatile-table pinning.
bindir="$(mktemp -d)"
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir" ./cmd/...
go run scripts/smoke.go -bin "$bindir"
