#!/usr/bin/env bash
# Repo-wide verification: static analysis, a full build, and the test suite
# under the race detector. CI and pre-commit entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race -timeout 120s ./...

# End-to-end smoke: boot cloudsrv + hyperq (with the introspection endpoint),
# run a statement through bteq, and assert /metrics shows pipeline activity.
bindir="$(mktemp -d)"
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir" ./cmd/...
go run scripts/smoke.go -bin "$bindir"
