#!/usr/bin/env bash
# Repo-wide verification: static analysis plus the full test suite under the
# race detector. CI and pre-commit entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./...
