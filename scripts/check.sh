#!/usr/bin/env bash
# Repo-wide verification: static analysis (go vet + the hyperqlint suite),
# a full build, and the test suite under the race detector. CI and
# pre-commit entry point.
#
# CHECK_SHORT=1 runs only the fast static stage (vet + hyperqlint + build),
# skipping the race suite, the pool stress rerun, and the end-to-end smoke —
# quick enough for a pre-commit hook.
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

go vet ./...

# hyperqlint: the project-specific analyzers (span lifecycle, lock-vs-I/O,
# frontend code registry, context propagation, wire error handling, plus the
# data-flow suite: resource leaks, SQL taint, sentinel comparisons, atomics
# discipline — see DESIGN.md §10 and §15). Any diagnostic fails the build.
# Results are cached under $TMPDIR/hyperqlint-cache keyed by file-content
# hashes; the timing line shows the analyzed/cached split (a warm run over
# an unchanged tree replays in well under a second).
go build -o "$tmpdir/hyperqlint" ./cmd/hyperqlint
"$tmpdir/hyperqlint" ./...

# Suppression budget: every //hyperqlint:ignore is an audited deviation, and
# their number may only shrink unless scripts/lint_budget.txt is raised in
# the same change. Counts exclude internal/lint/ (the suite's own engine
# tests and fixtures suppress synthetic analyzers on purpose).
suppress_counts="$(git ls-files '*.go' ':!internal/lint/**' \
    | xargs grep -ho '//hyperqlint:ignore [a-z,]*' 2>/dev/null \
    | awk '{n=split($2,a,","); for(i=1;i<=n;i++) if (a[i] != "") c[a[i]]++} END{for(k in c) print k, c[k]}' \
    || true)"
budget_fail=0
while read -r analyzer count; do
    [[ -z "$analyzer" ]] && continue
    budget="$(awk -v a="$analyzer" '$1 == a {print $2}' scripts/lint_budget.txt)"
    if [[ -z "$budget" ]]; then
        echo "check.sh: //hyperqlint:ignore ${analyzer} has no budget line in scripts/lint_budget.txt (found ${count})" >&2
        budget_fail=1
    elif (( count > budget )); then
        echo "check.sh: suppression budget exceeded for ${analyzer}: ${count} > ${budget} (fix the finding or raise scripts/lint_budget.txt deliberately)" >&2
        budget_fail=1
    elif (( count < budget )); then
        echo "check.sh: suppression budget for ${analyzer} has headroom (${count} < ${budget}); ratchet scripts/lint_budget.txt down"
    fi
done <<<"$suppress_counts"
while read -r analyzer budget; do
    [[ -z "$analyzer" || "$analyzer" == \#* ]] && continue
    if ! grep -q "^${analyzer} " <<<"$suppress_counts"; then
        if (( budget > 0 )); then
            echo "check.sh: suppression budget for ${analyzer} has headroom (0 < ${budget}); ratchet scripts/lint_budget.txt down"
        fi
    fi
done < scripts/lint_budget.txt
if (( budget_fail )); then
    exit 1
fi

go build ./...

if [[ "${CHECK_SHORT:-0}" == "1" ]]; then
    echo "check.sh: CHECK_SHORT=1 — static stage clean, skipping tests and smoke"
    exit 0
fi

go test -race -timeout 120s ./...

# Allocation-regression gate: the full-pipeline benchmark must stay within
# the budgets checked in with BENCH_translate.json (DESIGN.md §11), both with
# the workload-statistics registry enabled ("traced" = tracing + wstats +
# SLO tracking) and without it ("nostats" = tracing only) — the stats tax
# must fit inside the same budget, proving steady-state recording is
# allocation-free. Regenerate the artifact with
# `go run ./cmd/benchmark -run translate`.
alloc_budget="$(sed -n 's/.*"allocs_budget": \([0-9]*\).*/\1/p' BENCH_translate.json)"
bytes_budget="$(sed -n 's/.*"bytes_budget": \([0-9]*\).*/\1/p' BENCH_translate.json)"
bench_out="$(go test -run='^$' -bench='BenchmarkTracedTranslate/(^traced$|^nostats$)' -benchmem -benchtime=100x .)"
echo "$bench_out"
for variant in traced nostats; do
    # The -N GOMAXPROCS suffix is absent when GOMAXPROCS=1, so match both.
    read -r allocs bytes <<<"$(echo "$bench_out" | awk -v v="$variant" '$1 ~ ("^BenchmarkTracedTranslate/" v "(-[0-9]+)?$") {print $7, $5}')"
    if [[ -z "${allocs:-}" || -z "${bytes:-}" ]]; then
        echo "check.sh: could not parse BenchmarkTracedTranslate/${variant} output" >&2
        exit 1
    fi
    if (( allocs > alloc_budget || bytes > bytes_budget )); then
        echo "check.sh: translate allocation regression (${variant}): ${allocs} allocs/op (budget ${alloc_budget}), ${bytes} B/op (budget ${bytes_budget})" >&2
        exit 1
    fi
    echo "check.sh: translate alloc gate OK (${variant}): ${allocs} allocs/op <= ${alloc_budget}, ${bytes} B/op <= ${bytes_budget}"
done

# Connection-pool stress: rerun the 100-goroutine multiplex/pin/unpin storm
# under the race detector with fresh state (no cached result).
go test -race -count=1 -timeout 120s -run 'TestPoolStressRace' ./internal/odbc/pool/

# Streaming acceptance: rerun the mid-stream fault suite and the streaming
# e2e acceptance tests (backpressure bound, slow-client eviction, mid-stream
# backend death, disconnect teardown, streamed-vs-buffered transcripts) under
# the race detector with fresh state.
go test -race -count=1 -timeout 300s -run 'TestResilientStream|TestStreamingBackpressureBoundsResultMemory|TestStreamingSlowClientEvicted|TestStreamingMidStreamBackendDeathFailsCleanly|TestStreamingClientDisconnectReleasesEverything|TestStreamingMatchesBufferedWireTranscripts|TestStreamingResultMemoryCapSheds|TestStreamingBackendProcessDeathSurfacesFailure' ./internal/odbc/ ./internal/hyperq/

# Shadow-replay soak: capture a few hundred statements from both customer
# workloads through a live wire gateway, replay them at 10x against two
# backend profiles served over real sockets — once against identical
# profiles (the equivalence report must be clean) and once against a
# perturbed candidate (the report must pinpoint the drifted statement and
# cell) — and require zero leaked goroutines, all under the race detector
# with fresh state.
HYPERQ_REPLAY_SOAK=150 go test -race -count=1 -timeout 300s -run 'TestShadowReplayEndToEnd' ./internal/replay/

# End-to-end smoke: boot cloudsrv + hyperq (with the introspection endpoint),
# run a statement through bteq, and assert /metrics shows pipeline activity.
# A second phase restarts the gateway with -pool-size 2 and oversubscribes it
# with 8 concurrent bteq clients exercising volatile-table pinning.
go build -o "$tmpdir" ./cmd/...
go run scripts/smoke.go -bin "$tmpdir"
