// Command benchmark regenerates every table and figure of the paper's
// evaluation section (§7).
//
// Usage:
//
//	benchmark -run all                 # everything
//	benchmark -run fig2                # Figure 2 feature support matrix
//	benchmark -run table1              # Table 1 workload overview
//	benchmark -run fig8                # Figures 8(a) and 8(b)
//	benchmark -run fig9a -sf 0.01      # Figure 9(a) single-stream overhead
//	benchmark -run fig9b -clients 10   # Figure 9(b) concurrent stress test
//
// Flags -sf, -target, -clients, -iterations and -scale tune experiment size;
// the defaults finish in a few minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hyperq/internal/bench"
	"hyperq/internal/dialect"
)

func main() {
	run := flag.String("run", "all", "experiment: all|fig2|table1|fig8|fig9a|fig9b|compare")
	target := flag.String("target", "CloudA", "target profile for Figure 9")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for Figure 9")
	reps := flag.Int("reps", 1, "Figure 9(a) repetitions of the 22-query stream")
	clients := flag.Int("clients", 10, "Figure 9(b) concurrent sessions")
	iterations := flag.Int("iterations", 54, "Figure 9(b) requests per session")
	scale := flag.Float64("scale", 1.0, "Figure 8 workload scale (1.0 = paper-size workloads)")
	flag.Parse()

	prof, err := dialect.ByName(*target)
	if err != nil {
		log.Fatalf("benchmark: %v", err)
	}
	selected := strings.ToLower(*run)
	did := false
	runIf := func(name string, fn func() error) {
		if selected != "all" && selected != name {
			return
		}
		did = true
		if err := fn(); err != nil {
			log.Fatalf("benchmark: %s: %v", name, err)
		}
		fmt.Println()
	}

	runIf("fig2", func() error {
		bench.Fig2(os.Stdout)
		return nil
	})
	runIf("table1", func() error {
		bench.Table1(os.Stdout)
		return nil
	})
	runIf("fig8", func() error {
		_, err := bench.Fig8(os.Stdout, *scale)
		return err
	})
	runIf("fig9a", func() error {
		_, err := bench.Fig9a(os.Stdout, prof, *sf, *reps)
		return err
	})
	runIf("fig9b", func() error {
		_, err := bench.Fig9b(os.Stdout, prof, *sf, *clients, *iterations)
		return err
	})
	runIf("compare", func() error {
		_, err := bench.Compare(os.Stdout, *sf)
		return err
	})
	if !did {
		log.Fatalf("benchmark: unknown experiment %q", *run)
	}
}
