// Command benchmark regenerates every table and figure of the paper's
// evaluation section (§7).
//
// Usage:
//
//	benchmark -run all                 # everything
//	benchmark -run fig2                # Figure 2 feature support matrix
//	benchmark -run table1              # Table 1 workload overview
//	benchmark -run fig8                # Figures 8(a) and 8(b)
//	benchmark -run fig9a -sf 0.01      # Figure 9(a) single-stream overhead
//	benchmark -run fig9b -clients 10   # Figure 9(b) concurrent stress test
//	benchmark -run pool -clients 16 -pool-size 4   # pool concurrency
//	benchmark -run stream -rows 27000  # streamed vs buffered result path
//	benchmark -run translate -sf 0.002 # translate-path allocation proof
//	benchmark -run replay              # shadow-replay harness throughput
//
// Flags -sf, -target, -clients, -iterations and -scale tune experiment size;
// the defaults finish in a few minutes on a laptop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"hyperq/internal/bench"
	"hyperq/internal/dialect"
)

func main() {
	run := flag.String("run", "all", "experiment: all|fig2|table1|fig8|fig9a|fig9b|compare|pool|stream|translate|replay")
	target := flag.String("target", "CloudA", "target profile for Figure 9")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for Figure 9")
	reps := flag.Int("reps", 1, "Figure 9(a) repetitions of the 22-query stream")
	clients := flag.Int("clients", 10, "Figure 9(b) and pool concurrent sessions")
	iterations := flag.Int("iterations", 54, "Figure 9(b) and pool requests per session")
	scale := flag.Float64("scale", 1.0, "Figure 8 workload scale (1.0 = paper-size workloads)")
	poolSize := flag.Int("pool-size", 4, "pool experiment: backend connection pool capacity")
	backendLatency := flag.Duration("backend-latency", 2*time.Millisecond, "pool experiment: injected per-request backend latency")
	streamRows := flag.Int("rows", 27000, "stream experiment: result rows (~300 B each)")
	replayStatements := flag.Int("replay-statements", 150, "replay experiment: captured statements per customer workload")
	resultBudget := flag.Int("result-budget", 1<<20, "stream experiment: per-session in-flight result byte budget")
	streamDepth := flag.Int("stream-depth", 4, "stream experiment: pipeline stage depth in batches")
	out := flag.String("out", "", "write the experiment result as JSON to this file (pool, translate)")
	flag.Parse()

	prof, err := dialect.ByName(*target)
	if err != nil {
		log.Fatalf("benchmark: %v", err)
	}
	selected := strings.ToLower(*run)
	did := false
	runIf := func(name string, fn func() error) {
		if selected != "all" && selected != name {
			return
		}
		did = true
		if err := fn(); err != nil {
			log.Fatalf("benchmark: %s: %v", name, err)
		}
		fmt.Println()
	}

	runIf("fig2", func() error {
		bench.Fig2(os.Stdout)
		return nil
	})
	runIf("table1", func() error {
		bench.Table1(os.Stdout)
		return nil
	})
	runIf("fig8", func() error {
		_, err := bench.Fig8(os.Stdout, *scale)
		return err
	})
	runIf("fig9a", func() error {
		_, err := bench.Fig9a(os.Stdout, prof, *sf, *reps)
		return err
	})
	runIf("fig9b", func() error {
		_, err := bench.Fig9b(os.Stdout, prof, *sf, *clients, *iterations)
		return err
	})
	runIf("compare", func() error {
		_, err := bench.Compare(os.Stdout, *sf)
		return err
	})
	runIf("pool", func() error {
		res, err := bench.PoolBench(os.Stdout, prof, *sf, *clients, *poolSize, *iterations, *backendLatency)
		if err != nil {
			return err
		}
		if *out != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	})
	runIf("stream", func() error {
		res, err := bench.StreamBench(os.Stdout, prof, *streamRows, *resultBudget, *streamDepth, 3)
		if err != nil {
			return err
		}
		if *out != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	})
	if selected == "translate" {
		// Not part of "all": the three testing.Benchmark passes take a few
		// minutes and regenerate a checked-in artifact rather than a figure.
		did = true
		path := *out
		if path == "" {
			path = "BENCH_translate.json"
		}
		if _, err := bench.TranslateBench(os.Stdout, prof, *sf, path); err != nil {
			log.Fatalf("benchmark: translate: %v", err)
		}
	}
	if selected == "replay" {
		// Not part of "all": regenerates the checked-in shadow-replay
		// artifact (capture + four replay passes over the customer workloads).
		did = true
		path := *out
		if path == "" {
			path = "BENCH_replay.json"
		}
		if _, err := bench.ReplayBench(os.Stdout, prof, *replayStatements, path); err != nil {
			log.Fatalf("benchmark: replay: %v", err)
		}
	}
	if !did {
		log.Fatalf("benchmark: unknown experiment %q", *run)
	}
}
