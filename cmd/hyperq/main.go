// Command hyperq runs the Adaptive Data Virtualization gateway: it serves
// the frontend wire protocol (WP-A) that unmodified Teradata-dialect
// applications speak and forwards translated requests to a cloud backend
// over WP-B — the deployment of the paper's Figure 1(b).
//
// Usage:
//
//	hyperq -listen :7706 -backend localhost:7707 -target CloudA [-schema file.sql]
//
// The -schema file (Teradata dialect DDL) populates the gateway catalog at
// startup, standing in for Hyper-Q's automated schema discovery.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"hyperq/internal/catalog"
	"hyperq/internal/dialect"
	"hyperq/internal/hyperq"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/pool"
	"hyperq/internal/querylog"
	"hyperq/internal/schemaload"
	"hyperq/internal/wire/tdp"
)

func main() {
	listen := flag.String("listen", ":7706", "address to serve the frontend wire protocol on")
	backend := flag.String("backend", "localhost:7707", "backend (cloudsrv) address")
	target := flag.String("target", "CloudA", "target capability profile (CloudA|CloudB|CloudC|CloudD)")
	schema := flag.String("schema", "", "Teradata-dialect DDL file imported into the gateway catalog")
	user := flag.String("backend-user", "hyperq", "user for backend sessions")
	pass := flag.String("backend-password", "hyperq", "password for backend sessions")
	cacheEntries := flag.Int("cache-entries", 0, "translation cache entry bound (0 = default 4096, negative = disable)")
	cacheBytes := flag.Int("cache-bytes", 0, "translation cache byte bound (0 = default 32 MiB)")
	statsEvery := flag.Duration("stats", 0, "log gateway metrics at this interval (0 = off), e.g. -stats 30s")
	backendTimeout := flag.Duration("backend-timeout", 30*time.Second, "per-request backend execution deadline (0 = unbounded)")
	backendRetries := flag.Int("backend-retries", 3, "transparent retries for transient backend failures (negative = disable)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive backend connection failures that open the circuit breaker (negative = disable)")
	poolSize := flag.Int("pool-size", 0, "backend connection pool capacity; sessions multiplex over this many connections (0 = no pool, one dedicated connection per session)")
	poolMinIdle := flag.Int("pool-min-idle", 0, "connections the pool keeps pre-dialed and warm")
	poolMaxWaiters := flag.Int("pool-max-waiters", 0, "max sessions queued for a pool connection before rejecting with 3134 (0 = 4x pool size, negative = unbounded)")
	poolAcquireTimeout := flag.Duration("pool-acquire-timeout", 0, "max wait for a pool connection before failing with 3134 (0 = default 5s, negative = unbounded)")
	poolMaxLifetime := flag.Duration("pool-max-lifetime", 0, "recycle pool connections older than this (0 = never)")
	resultBudget := flag.Int("result-budget", 0, "per-session result memory budget in bytes; streamed results keep at most this many bytes in flight, buffered results spill past it (0 = default 64 MiB)")
	resultMemoryCap := flag.Int("result-memory-cap", 0, "gateway-wide in-flight result memory hard cap in bytes; requests past it are shed with 3134 (0 = default 256 MiB, negative = unbounded)")
	streamDepth := flag.Int("stream-depth", 0, "per-session streaming pipeline depth in batches per stage (0 = default 4)")
	clientWriteTimeout := flag.Duration("client-write-timeout", 30*time.Second, "evict sessions whose client stalls a result write longer than this (0 = never)")
	noStreaming := flag.Bool("no-streaming", false, "disable the streaming result path; materialize every result through the TDF store")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /traces, /traces/slow, /sessions, /statements, /pool on this HTTP address (empty = off)")
	slowQueryMs := flag.Int("slow-query-ms", 200, "slow-query threshold for /traces/slow retention (0 = disable)")
	traceRing := flag.Int("trace-ring", 256, "recent-trace ring capacity")
	queryLogPath := flag.String("query-log", "", "append one JSON line per request to this file (empty = off)")
	queryLogRedact := flag.Bool("query-log-redact", false, "redact literal values in query-log SQL text")
	queryLogCapture := flag.Bool("query-log-capture", false, "record replay capture detail in the query log: per-session sequence numbers, inter-statement timing, and (with -query-log-redact) the pre-redaction SQL; capture logs contain literal values")
	statStatements := flag.Bool("stat-statements", true, "track per-fingerprint workload statistics (/statements)")
	statStatementsMax := flag.Int("stat-statements-max", 0, "statement shapes tracked before folding into _other (0 = default 1024)")
	sloMs := flag.Int("slo-ms", 0, "per-request latency SLO in milliseconds; slower requests count as breaches (0 = off)")
	sloObjective := flag.Float64("slo-objective", 0.99, "target fraction of requests meeting the SLO (error budget = 1-objective)")
	flag.Parse()

	prof, err := dialect.ByName(*target)
	if err != nil {
		log.Fatalf("hyperq: %v", err)
	}
	cat := catalog.New()
	if *schema != "" {
		if err := schemaload.ImportFile(cat, *schema); err != nil {
			log.Fatalf("hyperq: %v", err)
		}
		log.Printf("hyperq: imported catalog from %s (%d tables)", *schema, len(cat.Tables()))
	}
	// The network driver is wrapped in the fault-tolerant execution layer:
	// deadlines, transparent retry/reconnect with session replay, and a
	// per-backend circuit breaker (DESIGN.md §7).
	resilience := &odbc.ResilienceMetrics{}
	var driver odbc.Driver = &odbc.ResilientDriver{
		Inner:            &odbc.NetworkDriver{Addr: *backend, User: *user, Password: *pass},
		Timeout:          *backendTimeout,
		MaxRetries:       *backendRetries,
		BreakerThreshold: *breakerThreshold,
		Metrics:          resilience,
	}
	// With -pool-size the resilient driver is shared through a connection
	// pool: frontend sessions multiplex over at most pool-size backend
	// connections with statement-level leases (DESIGN.md §9).
	var backendPool *pool.Pool
	if *poolSize > 0 {
		backendPool, err = pool.New(pool.Config{
			Driver:         driver,
			Size:           *poolSize,
			MinIdle:        *poolMinIdle,
			MaxWaiters:     *poolMaxWaiters,
			AcquireTimeout: *poolAcquireTimeout,
			MaxLifetime:    *poolMaxLifetime,
		})
		if err != nil {
			log.Fatalf("hyperq: %v", err)
		}
		driver = backendPool
	}
	var qlog *querylog.Writer
	if *queryLogPath != "" {
		qlog, err = querylog.OpenOptions(*queryLogPath, querylog.Options{
			Redact:  *queryLogRedact,
			Capture: *queryLogCapture,
		})
		if err != nil {
			log.Fatalf("hyperq: query log: %v", err)
		}
		defer qlog.Close()
	} else if *queryLogCapture {
		log.Fatalf("hyperq: -query-log-capture requires -query-log")
	}
	slowQuery := time.Duration(*slowQueryMs) * time.Millisecond
	if *slowQueryMs <= 0 {
		slowQuery = -1 // retain nothing in the slow list
	}
	g, err := hyperq.New(hyperq.Config{
		Target:                  prof,
		Driver:                  driver,
		Catalog:                 cat,
		CacheEntries:            *cacheEntries,
		CacheBytes:              *cacheBytes,
		DisableTranslationCache: *cacheEntries < 0,
		BackendTimeout:          *backendTimeout,
		Resilience:              resilience,
		SlowQuery:               slowQuery,
		TraceRingSize:           *traceRing,
		QueryLog:                qlog,
		Pool:                    backendPool,
		ResultBudget:            *resultBudget,
		ResultMemoryCap:         *resultMemoryCap,
		StreamDepth:             *streamDepth,
		DisableStreaming:        *noStreaming,
		DisableStatStatements:   !*statStatements,
		StatStatementsMax:       *statStatementsMax,
		SLO:                     time.Duration(*sloMs) * time.Millisecond,
		SLOObjective:            *sloObjective,
	})
	if err != nil {
		log.Fatalf("hyperq: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("hyperq: %v", err)
	}
	if *debugAddr != "" {
		go func() {
			log.Printf("hyperq: introspection on http://%s/metrics", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, g.DebugHandler()); err != nil {
				log.Printf("hyperq: debug endpoint: %v", err)
			}
		}()
	}
	if *statsEvery > 0 {
		go logStats(g, *statsEvery)
	}
	fmt.Printf("hyperq: virtualizing %s via %s, listening on %s\n", prof.Name, *backend, ln.Addr())
	log.Fatal(tdp.ServeOptions(ln, g, tdp.Options{WriteTimeout: *clientWriteTimeout}))
}

// logStats periodically logs the gateway metrics, including the translation
// cache counters. Translation overhead is reported as the p50/p95 of the
// per-request overhead distribution (histogram-backed) rather than a single
// cumulative ratio, so a few long backend scans cannot mask slow translation.
func logStats(g *hyperq.Gateway, every time.Duration) {
	for range time.Tick(every) {
		m := g.MetricsSnapshot()
		ov := g.OverheadQuantiles(0.5, 0.95)
		req := g.Stages().Request.Snapshot()
		log.Printf("hyperq: requests=%d statements=%d translate=%s execute=%s convert=%s overhead p50=%.1f%% p95=%.1f%% request p50=%s p95=%s cache hit=%d miss=%d bypass=%d evict=%d retries=%d reconnects=%d replays=%d breaker_open=%d quarantined=%d",
			m.Requests, m.Statements, m.Translate, m.Execute, m.Convert,
			100*ov[0], 100*ov[1],
			time.Duration(req.Quantile(0.5)*float64(time.Second)).Round(time.Microsecond),
			time.Duration(req.Quantile(0.95)*float64(time.Second)).Round(time.Microsecond),
			m.CacheHits, m.CacheMisses, m.CacheBypass, m.CacheEvict,
			m.Retries, m.Reconnects, m.Replays, m.BreakerOpen, m.ReplicaQuarantined)
		log.Printf("hyperq: results streamed=%d (%dB) buffered=%d (%dB) inflight=%dB peak=%dB shed=%d evicted=%d midstream_failures=%d",
			m.StreamedResults, m.StreamedBytes, m.BufferedResults, m.BufferedBytes,
			m.ResultInflightBytes, m.ResultPeakBytes,
			m.ResultShed, m.ClientsEvicted, m.MidstreamFailures)
		if reg := g.Statements(); reg != nil {
			sum := reg.Snapshot("total", 0)
			line := fmt.Sprintf("hyperq: statements shapes=%d/%d observed=%d", sum.Entries, sum.MaxEntries, sum.Observed)
			if len(sum.Statements) > 0 {
				top := sum.Statements[0]
				line += fmt.Sprintf(" top=%s calls=%d p95=%s", top.Fingerprint, top.Calls, time.Duration(top.P95Ns).Round(time.Microsecond))
			}
			if sum.SLO != nil {
				line += fmt.Sprintf(" slo=%dms breaches=%d burn=%.2f violating=%d", sum.SLO.SLOMs, sum.SLO.Breaches, sum.SLO.BurnRate, len(sum.SLO.Violating))
			}
			log.Print(line)
		}
		if ps, ok := g.PoolStats(); ok {
			log.Printf("hyperq: pool size=%d in_use=%d idle=%d pinned=%d waiters=%d acquires=%d waits=%d wait p95=%s timeouts=%d rejected=%d shed=%d discarded=%d recycled=%d",
				ps.Size, ps.InUse, ps.Idle, ps.Pinned, ps.Waiters,
				ps.Acquires, ps.Waits,
				time.Duration(ps.WaitSeconds.Quantile(0.95)*float64(time.Second)).Round(time.Microsecond),
				ps.Timeouts, ps.Rejected, ps.Shed, ps.Discarded, ps.Recycled)
		}
	}
}

