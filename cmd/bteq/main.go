// Command bteq is a batch/interactive client in the spirit of Teradata's
// bteq: it speaks the frontend wire protocol (WP-A) and submits
// Teradata-dialect requests — the unmodified-application role in the paper's
// experiments ("We used Teradata's bteq client to submit queries to
// Hyper-Q", §7.2).
//
// Usage:
//
//	bteq -connect localhost:7706 -user dbc [-file script.sql] [-quiet]
//
// Without -file, statements are read from stdin, one request per line
// (terminate a request with ';'; multiple statements in one line form a
// multi-statement request).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"hyperq/internal/types"
	"hyperq/internal/wire/tdp"
)

func main() {
	connect := flag.String("connect", "localhost:7706", "gateway address")
	user := flag.String("user", "dbc", "logon user")
	pass := flag.String("password", "dbc", "logon password")
	file := flag.String("file", "", "script file to execute (default: stdin)")
	quiet := flag.Bool("quiet", false, "suppress row output, print summaries only")
	flag.Parse()

	client, err := tdp.Dial(*connect, *user, *pass)
	if err != nil {
		log.Fatalf("bteq: %v", err)
	}
	defer client.Close()
	fmt.Printf("*** Logon to %s as %s complete.\n", *connect, *user)

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatalf("bteq: %v", err)
		}
		defer f.Close()
		in = f
	}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	interactive := *file == "" && isTerminal()
	if interactive {
		fmt.Print("BTEQ -- Enter your SQL request:\n> ")
	}
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "--") {
			continue
		}
		if strings.EqualFold(trimmed, ".quit") || strings.EqualFold(trimmed, ".exit") {
			break
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			continue
		}
		runRequest(client, pending.String(), *quiet)
		pending.Reset()
		if interactive {
			fmt.Print("> ")
		}
	}
	if strings.TrimSpace(pending.String()) != "" {
		runRequest(client, pending.String(), *quiet)
	}
	fmt.Println("*** You are now logged off.")
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func runRequest(client *tdp.Client, sql string, quiet bool) {
	start := time.Now()
	stmts, err := client.Request(sql)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Printf(" *** Failure %v\n", err)
		return
	}
	for _, st := range stmts {
		if st.Cols != nil {
			if !quiet {
				printResultSet(st)
			}
			fmt.Printf(" *** Query completed. %d rows found. %d columns returned.\n", len(st.Rows), len(st.Cols))
		} else {
			fmt.Printf(" *** %s completed. %d rows affected.\n", st.Command, st.Activity)
		}
	}
	fmt.Printf(" *** Total elapsed time was %v.\n\n", elapsed.Round(time.Millisecond))
}

func printResultSet(st *tdp.Statement) {
	widths := make([]int, len(st.Cols))
	cells := make([][]string, len(st.Rows))
	for i, c := range st.Cols {
		widths[i] = len(c.Name)
	}
	for ri, row := range st.Rows {
		cells[ri] = make([]string, len(row))
		for ci, d := range row {
			s := renderDatum(d)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var hdr strings.Builder
	var sep strings.Builder
	for i, c := range st.Cols {
		if i > 0 {
			hdr.WriteString("  ")
			sep.WriteString("  ")
		}
		hdr.WriteString(pad(c.Name, widths[i]))
		sep.WriteString(strings.Repeat("-", widths[i]))
	}
	fmt.Println(hdr.String())
	fmt.Println(sep.String())
	for _, row := range cells {
		var b strings.Builder
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(s, widths[i]))
		}
		fmt.Println(b.String())
	}
}

func renderDatum(d types.Datum) string {
	if d.Null {
		return "?"
	}
	return strings.TrimRight(d.String(), " ")
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}
