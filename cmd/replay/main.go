// Command replay is the shadow-migration replay harness: it reads a
// capture-mode query log (written by hyperq -query-log-capture), reconstructs
// the per-session statement streams, and re-executes them through a full
// gateway pipeline against two backend profiles simultaneously — a trusted
// baseline and a candidate under validation. Every read runs on both
// backends and their answers are diffed under configurable tolerances; the
// run ends with an equivalence report (JSON and human summary) that cites,
// for every divergence, the exact statement, row, and column where the
// candidate disagreed.
//
// Usage:
//
//	replay -target CloudA -baseline host:7707 -candidate host:7708 \
//	       [-schema ddl.sql] [-setup setup.sql] [-speedup 10] \
//	       [-max-concurrency 32] [-json report.json] capture.log.1 capture.log
//
// Capture files are given oldest rotation first; sessions split across
// rotated files are stitched back together. Exit status: 0 when the
// profiles answered equivalently, 1 when the report holds divergences, 2 on
// usage or execution errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"hyperq/internal/catalog"
	"hyperq/internal/dialect"
	"hyperq/internal/odbc"
	"hyperq/internal/replay"
	"hyperq/internal/schemaload"
)

func main() {
	target := flag.String("target", "CloudA", "target capability profile both backends speak (CloudA|CloudB|CloudC|CloudD)")
	baseline := flag.String("baseline", "", "trusted backend (cloudsrv) address; its answers are ground truth")
	candidate := flag.String("candidate", "", "candidate backend address under validation")
	user := flag.String("backend-user", "hyperq", "user for backend sessions")
	pass := flag.String("backend-password", "hyperq", "password for backend sessions")
	schema := flag.String("schema", "", "Teradata-dialect DDL file imported into the replay gateway catalog")
	setup := flag.String("setup", "", "statement file run through the gateway before the replay (views, macros); statements separated by semicolons")
	speedup := flag.Float64("speedup", 1, "replay speed-up over the captured timing; 0 replays at maximum speed")
	maxConcurrency := flag.Int("max-concurrency", 0, "captured sessions replaying at once (0 = all concurrently)")
	floatEps := flag.Float64("float-eps", 0, "FLOAT tolerance: values in the same eps-wide bucket compare equal (0 = exact)")
	tsTruncate := flag.Duration("timestamp-truncate", 0, "truncate TIMESTAMP values to this precision before comparing, e.g. 1ms (0 = exact)")
	charPad := flag.Bool("char-pad", false, "ignore trailing-blank CHAR padding differences")
	backendTimeout := flag.Duration("backend-timeout", 30*time.Second, "per-statement backend execution deadline (0 = unbounded)")
	jsonOut := flag.String("json", "", "write the machine-readable report to this file ('-' = stdout)")
	flag.Parse()

	if flag.NArg() == 0 || *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "usage: replay -baseline ADDR -candidate ADDR [flags] capture.log...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prof, err := dialect.ByName(*target)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	cat := catalog.New()
	if *schema != "" {
		if err := schemaload.ImportFile(cat, *schema); err != nil {
			log.Fatalf("replay: %v", err)
		}
	}
	streams, err := replay.Load(flag.Args()...)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	r, err := replay.NewRunner(replay.Config{
		Target:         prof,
		Baseline:       &odbc.NetworkDriver{Addr: *baseline, User: *user, Password: *pass},
		Candidate:      &odbc.NetworkDriver{Addr: *candidate, User: *user, Password: *pass},
		BaselineName:   *baseline,
		CandidateName:  *candidate,
		Speedup:        *speedup,
		MaxConcurrency: *maxConcurrency,
		Tolerance: replay.Tolerance{
			FloatEps:          *floatEps,
			TimestampTruncate: *tsTruncate,
			TrimCharPad:       *charPad,
		},
		BackendTimeout: *backendTimeout,
		Catalog:        cat,
	})
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	if *setup != "" {
		stmts, err := readStatements(*setup)
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		if err := r.Prepare("setup", stmts); err != nil {
			log.Fatalf("replay: %v", err)
		}
	}
	rep := r.Replay(streams)
	fmt.Print(rep.Summary())
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatalf("replay: %v", err)
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			log.Fatalf("replay: %v", err)
		}
	}
	if !rep.Equivalent {
		os.Exit(1)
	}
}

// readStatements splits a setup script on semicolons at top level, honoring
// string literals, quoted identifiers, and comments — macro bodies keep
// their internal semicolons.
func readStatements(path string) ([]string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	var cur strings.Builder
	s := string(src)
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' || c == '"':
			q := c
			cur.WriteByte(c)
			i++
			for i < len(s) {
				cur.WriteByte(s[i])
				if s[i] == q {
					if q == '\'' && i+1 < len(s) && s[i+1] == q {
						i++
						cur.WriteByte(s[i])
						i++
						continue
					}
					break
				}
				i++
			}
		case c == '-' && i+1 < len(s) && s[i+1] == '-':
			for i < len(s) && s[i] != '\n' {
				i++
			}
			cur.WriteByte('\n')
		case c == '(':
			depth++
			cur.WriteByte(c)
		case c == ')':
			depth--
			cur.WriteByte(c)
		case c == ';' && depth == 0:
			if st := strings.TrimSpace(cur.String()); st != "" {
				out = append(out, st)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if st := strings.TrimSpace(cur.String()); st != "" {
		out = append(out, st)
	}
	return out, nil
}
