package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBinaryCleanOnRepo builds the hyperqlint binary and runs it over the
// repository, asserting the standalone entry point exits 0 on a clean
// tree — the same invocation scripts/check.sh uses.
func TestBinaryCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary over the whole repo; skipped in -short mode")
	}
	modRoot := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "hyperqlint")
	build := exec.Command("go", "build", "-o", bin, "hyperq/cmd/hyperqlint")
	build.Dir = modRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hyperqlint: %v\n%s", err, out)
	}

	run := exec.Command(bin, "./...")
	run.Dir = modRoot
	var buf bytes.Buffer
	run.Stdout = &buf
	run.Stderr = &buf
	if err := run.Run(); err != nil {
		t.Fatalf("hyperqlint ./... failed: %v\n%s", err, buf.String())
	}

	// The vettool handshake must answer the go vet probes.
	for _, probe := range []string{"-V=full", "-flags"} {
		cmd := exec.Command(bin, probe)
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("hyperqlint %s: %v", probe, err)
		}
		if probe == "-V=full" && !strings.HasPrefix(string(out), "hyperqlint version ") {
			t.Fatalf("hyperqlint -V=full = %q", out)
		}
		if probe == "-flags" && strings.TrimSpace(string(out)) != "[]" {
			t.Fatalf("hyperqlint -flags = %q", out)
		}
	}
}

// TestVetToolCatchesInjected proves the go vet integration end to end: a
// scratch module carries one violation per data-flow analyzer, and
// `go vet -vettool=hyperqlint` must fail naming each of them. This guards
// the unitchecker protocol plumbing (handshake, export-data importing,
// diagnostics exit code), not just the analyzers — a regression that made
// the vettool silently pass everything would show up here and nowhere else.
func TestVetToolCatchesInjected(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs go vet; skipped in -short mode")
	}
	modRoot := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "hyperqlint")
	build := exec.Command("go", "build", "-o", bin, "hyperq/cmd/hyperqlint")
	build.Dir = modRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hyperqlint: %v\n%s", err, out)
	}

	probe := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(probe, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module probe\n\ngo 1.22\n")
	// Stub resource provider matching leakpair's pool registry by name.
	write("pool/pool.go", `package pool

type Conn struct{}

type Pool struct{}

func (p *Pool) acquire() (*Conn, error) { return &Conn{}, nil }

func (p *Pool) release(c *Conn) {}

func LeakOnEarlyReturn(p *Pool, bail bool) error {
	c, err := p.acquire()
	if err != nil {
		return err
	}
	if bail {
		return nil // leakpair: c never released on this path
	}
	p.release(c)
	return nil
}
`)
	// Stub capture surface matching sqltaint's querylog registry by name.
	write("querylog/querylog.go", `package querylog

type Entry struct {
	SQL        string
	CaptureSQL string
}

func (e *Entry) ReplaySQL() string {
	if e.CaptureSQL != "" {
		return e.CaptureSQL
	}
	return e.SQL
}
`)
	// One violation per data-flow analyzer.
	write("use/use.go", `package use

import (
	"io"
	"log"
	"sync/atomic"

	"probe/querylog"
)

func CompareSentinel(err error) bool {
	return err == io.EOF // errsentinel: identity comparison
}

type stats struct{ n int64 }

func Bump(s *stats) { atomic.AddInt64(&s.n, 1) }

func Read(s *stats) int64 { return s.n } // atomicfield: plain read

func LogRaw(e *querylog.Entry) {
	log.Printf("replaying %s", e.ReplaySQL()) // sqltaint: unsanitized sink
}
`)

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = probe
	vet.Env = append(os.Environ(), "GOWORK=off")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a module with injected violations:\n%s", out)
	}
	for _, analyzer := range []string{"[leakpair]", "[errsentinel]", "[atomicfield]", "[sqltaint]"} {
		if !strings.Contains(string(out), analyzer) {
			t.Errorf("go vet output does not name %s:\n%s", analyzer, out)
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	dir := strings.TrimSpace(string(out))
	if dir == "" {
		t.Fatal("no module root")
	}
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Fatalf("module root %s: %v", dir, err)
	}
	return dir
}
