package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBinaryCleanOnRepo builds the hyperqlint binary and runs it over the
// repository, asserting the standalone entry point exits 0 on a clean
// tree — the same invocation scripts/check.sh uses.
func TestBinaryCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary over the whole repo; skipped in -short mode")
	}
	modRoot := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "hyperqlint")
	build := exec.Command("go", "build", "-o", bin, "hyperq/cmd/hyperqlint")
	build.Dir = modRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hyperqlint: %v\n%s", err, out)
	}

	run := exec.Command(bin, "./...")
	run.Dir = modRoot
	var buf bytes.Buffer
	run.Stdout = &buf
	run.Stderr = &buf
	if err := run.Run(); err != nil {
		t.Fatalf("hyperqlint ./... failed: %v\n%s", err, buf.String())
	}

	// The vettool handshake must answer the go vet probes.
	for _, probe := range []string{"-V=full", "-flags"} {
		cmd := exec.Command(bin, probe)
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("hyperqlint %s: %v", probe, err)
		}
		if probe == "-V=full" && !strings.HasPrefix(string(out), "hyperqlint version ") {
			t.Fatalf("hyperqlint -V=full = %q", out)
		}
		if probe == "-flags" && strings.TrimSpace(string(out)) != "[]" {
			t.Fatalf("hyperqlint -flags = %q", out)
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	dir := strings.TrimSpace(string(out))
	if dir == "" {
		t.Fatal("no module root")
	}
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Fatalf("module root %s: %v", dir, err)
	}
	return dir
}
