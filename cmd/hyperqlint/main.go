// Command hyperqlint runs the project's custom static analyzers (package
// internal/lint) over Go packages.
//
// Standalone:
//
//	hyperqlint ./...                 # analyze packages (tests included)
//	hyperqlint -only spanend,lockio ./internal/odbc/...
//	hyperqlint -list                 # describe the analyzers
//
// As a go vet tool (the unitchecker protocol — go vet hands each
// compilation unit to the tool as a JSON .cfg file with pre-built export
// data for its imports):
//
//	go vet -vettool=$(which hyperqlint) ./...
//
// Exit status: 0 clean, 1 diagnostics found (standalone), 2 diagnostics
// found (vettool protocol) or internal error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hyperq/internal/lint"
	"hyperq/internal/lint/analysis"
	"hyperq/internal/lint/loader"
)

func main() {
	// The vettool handshake arrives before normal flag parsing: go vet
	// probes with -V=full (version for build caching) and -flags (the
	// tool's analyzer flags, none here), then invokes with a single
	// <unit>.cfg argument per compilation unit.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			printVersion()
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVettool(os.Args[1]))
		}
	}
	os.Exit(runStandalone(os.Args[1:]))
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("hyperqlint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: hyperqlint [-only a,b] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = lint.ByName(strings.Split(*only, ","))
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "hyperqlint: no analyzers match -only=%s\n", *only)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	l := &loader.Loader{}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d.String())
			found++
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}

// printVersion implements -V=full: the output keys go vet's build cache, so
// it must change whenever the tool's behavior might. Hashing our own
// executable is the standard trick.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("hyperqlint version %x\n", h.Sum(nil)[:12])
}

// vetConfig mirrors the JSON unit description cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVettool analyzes one compilation unit described by a cfg file, using
// the compiler export data go vet prepared for its imports.
func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hyperqlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// go vet expects a facts file per unit even though this suite keeps no
	// cross-package facts; an empty file satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
			return 2
		}
		files = append(files, af)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: cfgImporter{base: base, importMap: cfg.ImportMap},
		Error:    func(error) {},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hyperqlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, err := analysis.Run(&cfgUnit{
		files: files, pkg: pkg, info: info, path: cfg.ImportPath, fset: fset,
	}, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Position, d.Message, d.Analyzer.Name)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// cfgImporter resolves a unit's imports through the vet export-data files,
// applying the unit's import map (vendored stdlib) first.
type cfgImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (im cfgImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.base.Import(path)
}

// cfgUnit adapts a vettool compilation unit to analysis.Unit.
type cfgUnit struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	path  string
	fset  *token.FileSet
}

func (u *cfgUnit) Syntax() []*ast.File      { return u.files }
func (u *cfgUnit) TypesPkg() *types.Package { return u.pkg }
func (u *cfgUnit) TypesInfo() *types.Info   { return u.info }
func (u *cfgUnit) Path() string             { return u.path }
func (u *cfgUnit) FileSet() *token.FileSet  { return u.fset }
