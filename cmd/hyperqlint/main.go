// Command hyperqlint runs the project's custom static analyzers (package
// internal/lint) over Go packages.
//
// Standalone:
//
//	hyperqlint ./...                 # analyze packages (tests included)
//	hyperqlint -only spanend,lockio ./internal/odbc/...
//	hyperqlint -list                 # describe the analyzers
//
// As a go vet tool (the unitchecker protocol — go vet hands each
// compilation unit to the tool as a JSON .cfg file with pre-built export
// data for its imports):
//
//	go vet -vettool=$(which hyperqlint) ./...
//
// Exit status: 0 clean, 1 diagnostics found (standalone), 2 diagnostics
// found (vettool protocol) or internal error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hyperq/internal/lint"
	"hyperq/internal/lint/analysis"
	"hyperq/internal/lint/loader"
)

func main() {
	// The vettool handshake arrives before normal flag parsing: go vet
	// probes with -V=full (version for build caching) and -flags (the
	// tool's analyzer flags, none here), then invokes with a single
	// <unit>.cfg argument per compilation unit.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			printVersion()
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVettool(os.Args[1]))
		}
	}
	os.Exit(runStandalone(os.Args[1:]))
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("hyperqlint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the analyzers and exit")
	cacheFlag := fs.String("cache", "", `lint result cache directory ("off" disables; default $TMPDIR/hyperqlint-cache)`)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: hyperqlint [-only a,b] [-cache dir|off] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = lint.ByName(strings.Split(*only, ","))
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "hyperqlint: no analyzers match -only=%s\n", *only)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	l := &loader.Loader{}
	cache := openCache(*cacheFlag, analyzers)
	targets, err := l.List(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
		return 2
	}

	// Partition targets into cache hits (replay stored diagnostics) and
	// misses (type-check and analyze). The cache key covers the target's own
	// sources and its whole dependency closure, so a change anywhere that
	// could alter analysis results invalidates the entry.
	type result struct {
		path  string
		diags []cachedDiag
	}
	var results []result
	var missPaths []string
	missKeys := make(map[string]string)
	for _, t := range targets {
		key, kerr := cache.key(l, t)
		if kerr == nil {
			if diags, ok := cache.get(key); ok {
				results = append(results, result{t.ImportPath, diags})
				continue
			}
		}
		missPaths = append(missPaths, t.ImportPath)
		if kerr == nil {
			missKeys[t.ImportPath] = key
		}
	}
	analyzed := len(missPaths)
	cached := len(results)

	if len(missPaths) > 0 {
		pkgs, err := l.Load(missPaths...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
			return 2
		}
		// A target's diagnostics span all its units (plain or test-augmented
		// plus the external-test unit); merge them under the base path.
		perTarget := make(map[string][]cachedDiag)
		for _, p := range missPaths {
			perTarget[p] = []cachedDiag{}
		}
		for _, pkg := range pkgs {
			diags, err := analysis.Run(pkg, analyzers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
				return 2
			}
			base := strings.TrimSuffix(pkg.PkgPath, "_test")
			for _, d := range diags {
				perTarget[base] = append(perTarget[base], cachedDiag{
					Position: d.Position.String(), Message: d.Message, Analyzer: d.Analyzer.Name,
				})
			}
		}
		for path, diags := range perTarget {
			results = append(results, result{path, diags})
			if key, ok := missKeys[path]; ok {
				cache.put(key, path, diags)
			}
		}
	}

	sort.Slice(results, func(i, j int) bool { return results[i].path < results[j].path })
	found := 0
	for _, r := range results {
		for _, d := range r.diags {
			fmt.Printf("%s: %s [%s]\n", d.Position, d.Message, d.Analyzer)
			found++
		}
	}
	fmt.Fprintf(os.Stderr, "hyperqlint: %d packages (%d analyzed, %d cached) in %.1fs\n",
		len(targets), analyzed, cached, time.Since(start).Seconds())
	if found > 0 {
		return 1
	}
	return 0
}

// cachedDiag is one stored diagnostic: everything needed to replay it
// byte-for-byte without re-analyzing.
type cachedDiag struct {
	Position string `json:"position"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// lintCache memoizes per-package lint results under a directory, keyed by
// the content hashes of every input: the tool binary, the analyzer set, and
// the package's sources plus its transitive dependency sources. nil (from
// -cache=off) disables all methods.
type lintCache struct {
	dir    string
	toolID string
	suite  string
	// fileHash memoizes per-file content hashes within one run: dependency
	// closures overlap heavily across targets.
	fileHash map[string]string
}

// openCache prepares the cache directory, returning nil (caching disabled)
// when the flag says off or the directory cannot be created.
func openCache(flagVal string, analyzers []*analysis.Analyzer) *lintCache {
	if flagVal == "off" {
		return nil
	}
	dir := flagVal
	if dir == "" {
		dir = filepath.Join(os.TempDir(), "hyperqlint-cache")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil
	}
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return &lintCache{dir: dir, toolID: toolID(), suite: strings.Join(names, ","), fileHash: make(map[string]string)}
}

// key fingerprints one target: tool, analyzer suite, and the content hash
// of the target's own files (tests included) plus every dependency source.
func (c *lintCache) key(l *loader.Loader, t loader.Target) (string, error) {
	if c == nil {
		return "", fmt.Errorf("cache disabled")
	}
	h := sha256.New()
	fmt.Fprintf(h, "tool %s\nsuite %s\nunit %s\n", c.toolID, c.suite, t.ImportPath)
	hashFiles := func(dir string, names []string) error {
		for _, name := range names {
			path := filepath.Join(dir, name)
			fh, err := c.hashFile(path)
			if err != nil {
				return err
			}
			fmt.Fprintf(h, "file %s %s\n", path, fh)
		}
		return nil
	}
	if err := hashFiles(t.Dir, t.GoFiles); err != nil {
		return "", err
	}
	if err := hashFiles(t.Dir, t.TestGoFiles); err != nil {
		return "", err
	}
	if err := hashFiles(t.Dir, t.XTestGoFiles); err != nil {
		return "", err
	}
	for _, dep := range t.Deps {
		dir, files, ok := l.Meta(dep)
		if !ok {
			// Unresolvable dependency metadata: refuse to fingerprint rather
			// than cache on partial inputs.
			return "", fmt.Errorf("no metadata for dependency %s", dep)
		}
		if err := hashFiles(dir, files); err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func (c *lintCache) hashFile(path string) (string, error) {
	if fh, ok := c.fileHash[path]; ok {
		return fh, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	fh := fmt.Sprintf("%x", sum[:16])
	c.fileHash[path] = fh
	return fh, nil
}

// cacheEntry is the stored JSON per key.
type cacheEntry struct {
	ImportPath  string       `json:"import_path"`
	Diagnostics []cachedDiag `json:"diagnostics"`
}

func (c *lintCache) get(key string) ([]cachedDiag, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Diagnostics == nil {
		e.Diagnostics = []cachedDiag{}
	}
	return e.Diagnostics, true
}

// put stores diagnostics for a key; failures are ignored (caching is an
// optimization, never a correctness dependency).
func (c *lintCache) put(key, importPath string, diags []cachedDiag) {
	if c == nil {
		return
	}
	data, err := json.Marshal(cacheEntry{ImportPath: importPath, Diagnostics: diags})
	if err != nil {
		return
	}
	tmp := filepath.Join(c.dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(c.dir, key+".json"))
}

// toolID identifies this build of the tool (same hash as -V=full prints).
func toolID() string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// printVersion implements -V=full: the output keys go vet's build cache, so
// it must change whenever the tool's behavior might. Hashing our own
// executable is the standard trick.
func printVersion() {
	fmt.Printf("hyperqlint version %s\n", toolID())
}

// vetConfig mirrors the JSON unit description cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVettool analyzes one compilation unit described by a cfg file, using
// the compiler export data go vet prepared for its imports.
func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hyperqlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// go vet expects a facts file per unit even though this suite keeps no
	// cross-package facts; an empty file satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
			return 2
		}
		files = append(files, af)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: cfgImporter{base: base, importMap: cfg.ImportMap},
		Error:    func(error) {},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hyperqlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, err := analysis.Run(&cfgUnit{
		files: files, pkg: pkg, info: info, path: cfg.ImportPath, fset: fset,
	}, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperqlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Position, d.Message, d.Analyzer.Name)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// cfgImporter resolves a unit's imports through the vet export-data files,
// applying the unit's import map (vendored stdlib) first.
type cfgImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (im cfgImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.base.Import(path)
}

// cfgUnit adapts a vettool compilation unit to analysis.Unit.
type cfgUnit struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	path  string
	fset  *token.FileSet
}

func (u *cfgUnit) Syntax() []*ast.File      { return u.files }
func (u *cfgUnit) TypesPkg() *types.Package { return u.pkg }
func (u *cfgUnit) TypesInfo() *types.Info   { return u.info }
func (u *cfgUnit) Path() string             { return u.path }
func (u *cfgUnit) FileSet() *token.FileSet  { return u.fset }
