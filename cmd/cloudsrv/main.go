// Command cloudsrv runs the cloud data warehouse substrate: an in-memory
// analytical SQL engine modeling one of the capability profiles, served over
// the backend wire protocol (WP-B). It stands in for the cloud database the
// paper's experiments provision.
//
// Usage:
//
//	cloudsrv -listen :7707 -profile CloudA [-tpch 0.01] [-schema file.sql]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/workload/tpch"
)

func main() {
	listen := flag.String("listen", ":7707", "address to serve the backend wire protocol on")
	profile := flag.String("profile", "CloudA", "capability profile to model (CloudA|CloudB|CloudC|CloudD|Teradata)")
	tpchSF := flag.Float64("tpch", 0, "preload TPC-H data at this scale factor (0 = none)")
	schema := flag.String("schema", "", "SQL file (ANSI dialect) executed at startup")
	flag.Parse()

	prof, err := dialect.ByName(*profile)
	if err != nil {
		log.Fatalf("cloudsrv: %v", err)
	}
	eng := engine.New(prof)
	if *schema != "" {
		sql, err := os.ReadFile(*schema)
		if err != nil {
			log.Fatalf("cloudsrv: %v", err)
		}
		if _, err := eng.NewSession().ExecSQL(string(sql)); err != nil {
			log.Fatalf("cloudsrv: schema: %v", err)
		}
		log.Printf("cloudsrv: applied schema from %s", *schema)
	}
	if *tpchSF > 0 {
		log.Printf("cloudsrv: loading TPC-H at SF %.3f ...", *tpchSF)
		if err := tpch.SetupEngine(eng.NewSession(), *tpchSF); err != nil {
			log.Fatalf("cloudsrv: tpch: %v", err)
		}
		log.Printf("cloudsrv: TPC-H loaded")
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cloudsrv: %v", err)
	}
	fmt.Printf("cloudsrv: %s engine listening on %s\n", prof.Name, ln.Addr())
	log.Fatal(cwp.Serve(ln, eng))
}
