package transform

import (
	"fmt"

	"hyperq/internal/xtra"
)

// rewriteChildren rebuilds op with one rewrite pass applied to its children
// and owned scalar expressions. Unchanged subtrees are shared.
func (t *Transformer) rewriteChildren(op xtra.Op, c *Context) (xtra.Op, bool, error) {
	switch o := op.(type) {
	case *xtra.Get, *xtra.WorkScan:
		return op, false, nil
	case *xtra.Select:
		in, f1, err := t.opOnce(o.Input, c)
		if err != nil {
			return nil, false, err
		}
		p, f2, err := t.scalarOnce(o.Pred, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return op, false, nil
		}
		return &xtra.Select{Input: in, Pred: p}, true, nil
	case *xtra.Project:
		in, fired, err := t.opOnce(o.Input, c)
		if err != nil {
			return nil, false, err
		}
		exprs := make([]xtra.NamedScalar, len(o.Exprs))
		for i, ns := range o.Exprs {
			e, f, err := t.scalarOnce(ns.Expr, c)
			if err != nil {
				return nil, false, err
			}
			exprs[i] = xtra.NamedScalar{Col: ns.Col, Expr: e}
			fired = fired || f
		}
		if !fired {
			return op, false, nil
		}
		return &xtra.Project{Input: in, Exprs: exprs}, true, nil
	case *xtra.Window:
		in, fired, err := t.opOnce(o.Input, c)
		if err != nil {
			return nil, false, err
		}
		pb, f, err := t.scalarSlice(o.PartitionBy, c)
		if err != nil {
			return nil, false, err
		}
		fired = fired || f
		ob, f2, err := t.sortKeys(o.OrderBy, c)
		if err != nil {
			return nil, false, err
		}
		fired = fired || f2
		funcs := make([]xtra.WindowDef, len(o.Funcs))
		for i, d := range o.Funcs {
			nd := d
			args, f3, err := t.scalarSlice(d.Args, c)
			if err != nil {
				return nil, false, err
			}
			nd.Args = args
			funcs[i] = nd
			fired = fired || f3
		}
		if !fired {
			return op, false, nil
		}
		return &xtra.Window{Input: in, PartitionBy: pb, OrderBy: ob, Funcs: funcs}, true, nil
	case *xtra.Join:
		l, f1, err := t.opOnce(o.L, c)
		if err != nil {
			return nil, false, err
		}
		r, f2, err := t.opOnce(o.R, c)
		if err != nil {
			return nil, false, err
		}
		fired := f1 || f2
		pred := o.Pred
		if pred != nil {
			p, f3, err := t.scalarOnce(pred, c)
			if err != nil {
				return nil, false, err
			}
			pred = p
			fired = fired || f3
		}
		if !fired {
			return op, false, nil
		}
		return &xtra.Join{Kind: o.Kind, L: l, R: r, Pred: pred}, true, nil
	case *xtra.Agg:
		in, fired, err := t.opOnce(o.Input, c)
		if err != nil {
			return nil, false, err
		}
		groups := make([]xtra.GroupCol, len(o.Groups))
		for i, g := range o.Groups {
			e, f, err := t.scalarOnce(g.Expr, c)
			if err != nil {
				return nil, false, err
			}
			groups[i] = xtra.GroupCol{Out: g.Out, Expr: e}
			fired = fired || f
		}
		aggs := make([]xtra.AggDef, len(o.Aggs))
		for i, a := range o.Aggs {
			na := a
			if a.Arg != nil {
				e, f, err := t.scalarOnce(a.Arg, c)
				if err != nil {
					return nil, false, err
				}
				na.Arg = e
				fired = fired || f
			}
			aggs[i] = na
		}
		if !fired {
			return op, false, nil
		}
		return &xtra.Agg{Input: in, Groups: groups, Aggs: aggs, GroupingSets: o.GroupingSets}, true, nil
	case *xtra.Sort:
		in, f1, err := t.opOnce(o.Input, c)
		if err != nil {
			return nil, false, err
		}
		keys, f2, err := t.sortKeys(o.Keys, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return op, false, nil
		}
		return &xtra.Sort{Input: in, Keys: keys}, true, nil
	case *xtra.Limit:
		in, f1, err := t.opOnce(o.Input, c)
		if err != nil {
			return nil, false, err
		}
		keys, f2, err := t.sortKeys(o.Keys, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return op, false, nil
		}
		return &xtra.Limit{Input: in, N: o.N, WithTies: o.WithTies, Keys: keys}, true, nil
	case *xtra.SetOp:
		l, f1, err := t.opOnce(o.L, c)
		if err != nil {
			return nil, false, err
		}
		r, f2, err := t.opOnce(o.R, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return op, false, nil
		}
		return &xtra.SetOp{Kind: o.Kind, All: o.All, L: l, R: r, Cols: o.Cols}, true, nil
	case *xtra.Values:
		fired := false
		rows := make([][]xtra.Scalar, len(o.Rows))
		for i, row := range o.Rows {
			nr, f, err := t.scalarSlice(row, c)
			if err != nil {
				return nil, false, err
			}
			rows[i] = nr
			fired = fired || f
		}
		if !fired {
			return op, false, nil
		}
		return &xtra.Values{Rows: rows, Cols: o.Cols}, true, nil
	case *xtra.RecursiveUnion:
		seed, f1, err := t.opOnce(o.Seed, c)
		if err != nil {
			return nil, false, err
		}
		rec, f2, err := t.opOnce(o.Recursive, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return op, false, nil
		}
		return &xtra.RecursiveUnion{Seed: seed, Recursive: rec, Cols: o.Cols, WorkID: o.WorkID}, true, nil
	}
	return nil, false, fmt.Errorf("transform: unknown operator %T", op)
}

func (t *Transformer) scalarSlice(ss []xtra.Scalar, c *Context) ([]xtra.Scalar, bool, error) {
	fired := false
	out := make([]xtra.Scalar, len(ss))
	for i, s := range ss {
		ns, f, err := t.scalarOnce(s, c)
		if err != nil {
			return nil, false, err
		}
		out[i] = ns
		fired = fired || f
	}
	if !fired {
		return ss, false, nil
	}
	return out, true, nil
}

func (t *Transformer) sortKeys(keys []xtra.SortKey, c *Context) ([]xtra.SortKey, bool, error) {
	fired := false
	out := make([]xtra.SortKey, len(keys))
	for i, k := range keys {
		e, f, err := t.scalarOnce(k.Expr, c)
		if err != nil {
			return nil, false, err
		}
		out[i] = xtra.SortKey{Expr: e, Desc: k.Desc, NullsFirst: k.NullsFirst}
		fired = fired || f
	}
	if !fired {
		return keys, false, nil
	}
	return out, true, nil
}

// rewriteScalarChildren rebuilds s with one pass applied to nested scalars
// and subquery operator inputs.
func (t *Transformer) rewriteScalarChildren(s xtra.Scalar, c *Context) (xtra.Scalar, bool, error) {
	switch x := s.(type) {
	case *xtra.ColRef, *xtra.ConstExpr, *xtra.ParamExpr:
		return s, false, nil
	case *xtra.CompExpr:
		l, f1, err := t.scalarOnce(x.L, c)
		if err != nil {
			return nil, false, err
		}
		r, f2, err := t.scalarOnce(x.R, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return s, false, nil
		}
		return &xtra.CompExpr{Op: x.Op, L: l, R: r}, true, nil
	case *xtra.BoolExpr:
		args, fired, err := t.scalarSlice(x.Args, c)
		if err != nil {
			return nil, false, err
		}
		if !fired {
			return s, false, nil
		}
		return &xtra.BoolExpr{Op: x.Op, Args: args}, true, nil
	case *xtra.NotExpr:
		e, f, err := t.scalarOnce(x.X, c)
		if err != nil || !f {
			return s, f, err
		}
		return &xtra.NotExpr{X: e}, true, nil
	case *xtra.IsNullExpr:
		e, f, err := t.scalarOnce(x.X, c)
		if err != nil || !f {
			return s, f, err
		}
		return &xtra.IsNullExpr{Not: x.Not, X: e}, true, nil
	case *xtra.ArithExpr:
		l, f1, err := t.scalarOnce(x.L, c)
		if err != nil {
			return nil, false, err
		}
		r, f2, err := t.scalarOnce(x.R, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return s, false, nil
		}
		return &xtra.ArithExpr{Op: x.Op, L: l, R: r, T: x.T}, true, nil
	case *xtra.NegExpr:
		e, f, err := t.scalarOnce(x.X, c)
		if err != nil || !f {
			return s, f, err
		}
		return &xtra.NegExpr{X: e}, true, nil
	case *xtra.ConcatExpr:
		l, f1, err := t.scalarOnce(x.L, c)
		if err != nil {
			return nil, false, err
		}
		r, f2, err := t.scalarOnce(x.R, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return s, false, nil
		}
		return &xtra.ConcatExpr{L: l, R: r}, true, nil
	case *xtra.LikeExpr:
		v, f1, err := t.scalarOnce(x.X, c)
		if err != nil {
			return nil, false, err
		}
		p, f2, err := t.scalarOnce(x.Pattern, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return s, false, nil
		}
		return &xtra.LikeExpr{Not: x.Not, X: v, Pattern: p}, true, nil
	case *xtra.FuncExpr:
		args, fired, err := t.scalarSlice(x.Args, c)
		if err != nil || !fired {
			return s, fired, err
		}
		return &xtra.FuncExpr{Name: x.Name, Args: args, T: x.T}, true, nil
	case *xtra.ExtractExpr:
		e, f, err := t.scalarOnce(x.X, c)
		if err != nil || !f {
			return s, f, err
		}
		return &xtra.ExtractExpr{Field: x.Field, X: e}, true, nil
	case *xtra.CastExpr:
		e, f, err := t.scalarOnce(x.X, c)
		if err != nil || !f {
			return s, f, err
		}
		return &xtra.CastExpr{X: e, To: x.To, Implicit: x.Implicit}, true, nil
	case *xtra.CaseExpr:
		fired := false
		whens := make([]xtra.CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			cond, f1, err := t.scalarOnce(w.Cond, c)
			if err != nil {
				return nil, false, err
			}
			then, f2, err := t.scalarOnce(w.Then, c)
			if err != nil {
				return nil, false, err
			}
			whens[i] = xtra.CaseWhen{Cond: cond, Then: then}
			fired = fired || f1 || f2
		}
		els := x.Else
		if els != nil {
			e, f, err := t.scalarOnce(els, c)
			if err != nil {
				return nil, false, err
			}
			els = e
			fired = fired || f
		}
		if !fired {
			return s, false, nil
		}
		return &xtra.CaseExpr{Whens: whens, Else: els, T: x.T}, true, nil
	case *xtra.ExistsExpr:
		in, f, err := t.opOnce(x.Input, c)
		if err != nil || !f {
			return s, f, err
		}
		return &xtra.ExistsExpr{Not: x.Not, Input: in}, true, nil
	case *xtra.SubqueryCmp:
		left, f1, err := t.scalarSlice(x.Left, c)
		if err != nil {
			return nil, false, err
		}
		in, f2, err := t.opOnce(x.Input, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return s, false, nil
		}
		return &xtra.SubqueryCmp{Cmp: x.Cmp, Quant: x.Quant, Left: left, Input: in}, true, nil
	case *xtra.InValues:
		v, f1, err := t.scalarOnce(x.X, c)
		if err != nil {
			return nil, false, err
		}
		vals, f2, err := t.scalarSlice(x.Vals, c)
		if err != nil {
			return nil, false, err
		}
		if !f1 && !f2 {
			return s, false, nil
		}
		return &xtra.InValues{Not: x.Not, X: v, Vals: vals}, true, nil
	case *xtra.ScalarSubquery:
		in, f, err := t.opOnce(x.Input, c)
		if err != nil || !f {
			return s, f, err
		}
		return &xtra.ScalarSubquery{Input: in, T: x.T}, true, nil
	}
	return nil, false, fmt.Errorf("transform: unknown scalar %T", s)
}
