package transform

import (
	"strings"
	"testing"

	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

func tcol(id int, name string, t types.T) xtra.Col {
	return xtra.Col{ID: xtra.ColumnID(id), Name: name, Type: t}
}

func get(name string, cols ...xtra.Col) *xtra.Get {
	return &xtra.Get{Table: name, Cols: cols}
}

func eq(l, r xtra.Col) xtra.Scalar {
	return &xtra.CompExpr{Op: xtra.CmpEQ, L: &xtra.ColRef{Col: l}, R: &xtra.ColRef{Col: r}}
}

func gtConst(c xtra.Col, v int64) xtra.Scalar {
	return &xtra.CompExpr{Op: xtra.CmpGT, L: &xtra.ColRef{Col: c}, R: xtra.NewConst(types.NewInt(v))}
}

func push(t *testing.T, op xtra.Op) xtra.Op {
	t.Helper()
	out, err := Pushdown().Op(op, NewContext(nil, nil, 10000))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// The paradigm case: SELECT over a cross join becomes an inner hash join
// with side filters pushed to the scans.
func TestPushdownCommaJoin(t *testing.T) {
	a1, a2 := tcol(1, "k", types.Int), tcol(2, "v", types.Int)
	b1, b2 := tcol(3, "k", types.Int), tcol(4, "w", types.Int)
	plan := &xtra.Select{
		Input: &xtra.Join{Kind: xtra.JoinCross, L: get("A", a1, a2), R: get("B", b1, b2)},
		Pred:  xtra.MakeAnd(eq(a1, b1), gtConst(a2, 10), gtConst(b2, 20)),
	}
	out := push(t, plan)
	j, ok := out.(*xtra.Join)
	if !ok || j.Kind != xtra.JoinInner || j.Pred == nil {
		t.Fatalf("top = %s", xtra.Format(out))
	}
	if _, ok := j.L.(*xtra.Select); !ok {
		t.Errorf("left filter not pushed:\n%s", xtra.Format(out))
	}
	if _, ok := j.R.(*xtra.Select); !ok {
		t.Errorf("right filter not pushed:\n%s", xtra.Format(out))
	}
}

// Multi-level cascade: a three-way comma join fully decomposes.
func TestPushdownCascades(t *testing.T) {
	a := tcol(1, "x", types.Int)
	b := tcol(2, "x", types.Int)
	c := tcol(3, "x", types.Int)
	plan := &xtra.Select{
		Input: &xtra.Join{
			Kind: xtra.JoinCross,
			L:    &xtra.Join{Kind: xtra.JoinCross, L: get("A", a), R: get("B", b)},
			R:    get("C", c),
		},
		Pred: xtra.MakeAnd(eq(a, b), eq(b, c)),
	}
	out := push(t, plan)
	txt := xtra.Format(out)
	if strings.Contains(txt, "CROSS") {
		t.Fatalf("cross join survived:\n%s", txt)
	}
	if _, ok := out.(*xtra.Join); !ok {
		t.Fatalf("residual select left above:\n%s", txt)
	}
}

// Outer-join safety: right-side filters must NOT pass into the nullable side
// of a LEFT join.
func TestPushdownLeftJoinSafety(t *testing.T) {
	a := tcol(1, "x", types.Int)
	b := tcol(2, "y", types.Int)
	plan := &xtra.Select{
		Input: &xtra.Join{Kind: xtra.JoinLeft, L: get("A", a), R: get("B", b), Pred: eq(a, b)},
		Pred:  xtra.MakeAnd(gtConst(a, 1), gtConst(b, 2)),
	}
	out := push(t, plan)
	sel, ok := out.(*xtra.Select)
	if !ok {
		t.Fatalf("right-side filter must stay above:\n%s", xtra.Format(out))
	}
	j := sel.Input.(*xtra.Join)
	if j.Kind != xtra.JoinLeft {
		t.Fatal("join kind changed")
	}
	if _, ok := j.L.(*xtra.Select); !ok {
		t.Errorf("left-only filter should push into L:\n%s", xtra.Format(out))
	}
	if _, ok := j.R.(*xtra.Select); ok {
		t.Errorf("filter pushed into nullable side:\n%s", xtra.Format(out))
	}
}

// FULL joins accept no pushes at all.
func TestPushdownFullJoinUntouched(t *testing.T) {
	a := tcol(1, "x", types.Int)
	b := tcol(2, "y", types.Int)
	plan := &xtra.Select{
		Input: &xtra.Join{Kind: xtra.JoinFull, L: get("A", a), R: get("B", b), Pred: eq(a, b)},
		Pred:  gtConst(a, 1),
	}
	out := push(t, plan)
	if _, ok := out.(*xtra.Select); !ok {
		t.Fatalf("filter moved through FULL join:\n%s", xtra.Format(out))
	}
}

// Correlated conjuncts (references to columns outside the join) stay above.
func TestPushdownKeepsCorrelatedConjuncts(t *testing.T) {
	a := tcol(1, "x", types.Int)
	b := tcol(2, "y", types.Int)
	outer := tcol(99, "o", types.Int)
	plan := &xtra.Select{
		Input: &xtra.Join{Kind: xtra.JoinCross, L: get("A", a), R: get("B", b)},
		Pred:  xtra.MakeAnd(eq(a, b), eq(a, outer)),
	}
	out := push(t, plan)
	sel, ok := out.(*xtra.Select)
	if !ok {
		t.Fatalf("correlated conjunct lost:\n%s", xtra.Format(out))
	}
	refs := xtra.ColRefsIn(sel.Pred)
	if !refs[99] {
		t.Error("correlated conjunct not the one kept above")
	}
}

// Subquery-bearing conjuncts are never pushed (cost heuristic).
func TestPushdownKeepsSubqueryConjuncts(t *testing.T) {
	a := tcol(1, "x", types.Int)
	b := tcol(2, "y", types.Int)
	sub := get("S", tcol(5, "z", types.Int))
	exists := &xtra.ExistsExpr{Input: &xtra.Select{Input: sub, Pred: eq(sub.Cols[0], a)}}
	plan := &xtra.Select{
		Input: &xtra.Join{Kind: xtra.JoinCross, L: get("A", a), R: get("B", b)},
		Pred:  xtra.MakeAnd(eq(a, b), exists),
	}
	out := push(t, plan)
	sel, ok := out.(*xtra.Select)
	if !ok {
		t.Fatalf("exists conjunct pushed:\n%s", xtra.Format(out))
	}
	if len(xtra.SubOps(sel.Pred)) != 1 {
		t.Error("kept conjunct is not the subquery one")
	}
}

// The Q19 shape: OR of ANDs with a common join conjunct factors out.
func TestFactorOrs(t *testing.T) {
	a := tcol(1, "x", types.Int)
	b := tcol(2, "y", types.Int)
	join := eq(a, b)
	branch1 := xtra.MakeAnd(join, gtConst(a, 1))
	branch2 := xtra.MakeAnd(join, gtConst(a, 5))
	pred := xtra.MakeOr(branch1, branch2)
	out, fired := factorOrs(pred)
	if !fired {
		t.Fatal("common factor not extracted")
	}
	be, ok := out.(*xtra.BoolExpr)
	if !ok || be.Op != xtra.BoolAnd || len(be.Args) != 2 {
		t.Fatalf("factored = %s", xtra.FormatScalar(out))
	}
	if !xtra.ScalarEqual(be.Args[0], join) {
		t.Errorf("factored conjunct wrong:\n%s", xtra.FormatScalar(out))
	}
}

func TestFactorOrsSubsumption(t *testing.T) {
	// (a AND b) OR (a): the second branch reduces to TRUE, so the whole OR
	// collapses to just `a`.
	a := tcol(1, "x", types.Int)
	common := gtConst(a, 1)
	pred := xtra.MakeOr(xtra.MakeAnd(common, gtConst(a, 2)), common)
	out, fired := factorOrs(pred)
	if !fired {
		t.Fatal("not fired")
	}
	if !xtra.ScalarEqual(out, common) {
		t.Fatalf("subsumption failed: %s", xtra.FormatScalar(out))
	}
}

func TestFactorOrsNoCommon(t *testing.T) {
	a := tcol(1, "x", types.Int)
	pred := xtra.MakeOr(gtConst(a, 1), gtConst(a, 2))
	if _, fired := factorOrs(pred); fired {
		t.Fatal("fired without common conjuncts")
	}
}

func TestPushdownIdempotent(t *testing.T) {
	a1, a2 := tcol(1, "k", types.Int), tcol(2, "v", types.Int)
	b1 := tcol(3, "k", types.Int)
	plan := &xtra.Select{
		Input: &xtra.Join{Kind: xtra.JoinCross, L: get("A", a1, a2), R: get("B", b1)},
		Pred:  xtra.MakeAnd(eq(a1, b1), gtConst(a2, 10)),
	}
	once := push(t, plan)
	twice := push(t, once)
	if xtra.Format(once) != xtra.Format(twice) {
		t.Fatal("pushdown is not idempotent")
	}
}
