package transform

import (
	"strings"
	"testing"

	"hyperq/internal/catalog"
	"hyperq/internal/dialect"
	"hyperq/internal/feature"
	"hyperq/internal/parser"
	"hyperq/internal/types"
	"hyperq/internal/xtra"

	"hyperq/internal/binder"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	for _, tbl := range []*catalog.Table{
		{Name: "SALES", Columns: []catalog.Column{
			{Name: "AMOUNT", Type: types.Decimal(12, 2)},
			{Name: "SALES_DATE", Type: types.Date},
			{Name: "STORE", Type: types.Int},
		}},
		{Name: "SALES_HISTORY", Columns: []catalog.Column{
			{Name: "GROSS", Type: types.Decimal(12, 2)},
			{Name: "NET", Type: types.Decimal(12, 2)},
		}},
	} {
		if err := c.CreateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// bindSQL parses and binds a Teradata statement, returning the plan and a
// context primed past the binder's column ids.
func bindSQL(t *testing.T, sql string) (xtra.Statement, *feature.Recorder) {
	t.Helper()
	rec := &feature.Recorder{}
	stmt, err := parser.ParseOne(sql, parser.Teradata, rec)
	if err != nil {
		t.Fatal(err)
	}
	b := binder.New(testCatalog(t), parser.Teradata, rec)
	bound, err := b.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	return bound, rec
}

func transformQuery(t *testing.T, tr *Transformer, stmt xtra.Statement, target *dialect.Profile, rec *feature.Recorder) xtra.Op {
	t.Helper()
	c := NewContext(target, rec, 10000)
	out, err := tr.Statement(stmt, c)
	if err != nil {
		t.Fatal(err)
	}
	return out.(*xtra.Query).Root
}

// The paper's Figure 5 rewrite: SALES_DATE > 1140101 expands the date side
// into DAY + MONTH*100 + (YEAR-1900)*10000.
func TestDateIntCompareExpansion(t *testing.T) {
	stmt, rec := bindSQL(t, "SEL * FROM SALES WHERE SALES_DATE > 1140101")
	root := transformQuery(t, BindingStage(), stmt, nil, rec)
	out := xtra.Format(root)
	for _, want := range []string{
		"extract(DAY, SALES_DATE)",
		"extract(MONTH, SALES_DATE)",
		"extract(YEAR, SALES_DATE)",
		"const(100)", "const(1900)", "const(10000)", "const(1140101)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !rec.Set().Has(feature.DateIntCompare) {
		t.Error("DateIntCompare not recorded by transformer")
	}
	// Fixed point: running again changes nothing.
	c := NewContext(nil, nil, 20000)
	again, err := BindingStage().Statement(&xtra.Query{Root: root}, c)
	if err != nil {
		t.Fatal(err)
	}
	if xtra.Format(again.(*xtra.Query).Root) != out {
		t.Error("binding stage is not idempotent")
	}
}

func TestDateIntCompareReversedOperands(t *testing.T) {
	stmt, rec := bindSQL(t, "SEL * FROM SALES WHERE 1140101 < SALES_DATE")
	root := transformQuery(t, BindingStage(), stmt, nil, rec)
	out := xtra.Format(root)
	if !strings.Contains(out, "extract(DAY, SALES_DATE)") {
		t.Errorf("reversed comparison not expanded:\n%s", out)
	}
}

// The paper's Figure 6 rewrite: vector subquery to correlated EXISTS with
// the lexicographic OR/AND expansion.
func TestVectorSubqueryToExists(t *testing.T) {
	stmt, rec := bindSQL(t, `
	  SEL * FROM SALES
	  WHERE (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)`)
	tr := New(SerializationStage(dialect.CloudA())...)
	root := transformQuery(t, tr, stmt, dialect.CloudA(), rec)
	out := xtra.Format(root)
	for _, want := range []string{"subq(EXISTS)", "boolexpr(OR)", "boolexpr(AND)", "comp(GT)", "comp(EQ)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "subq(ANY") {
		t.Errorf("vector subquery survived:\n%s", out)
	}
}

func TestVectorSubqueryKeptForCapableTarget(t *testing.T) {
	stmt, rec := bindSQL(t, `
	  SEL * FROM SALES
	  WHERE (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)`)
	// The source profile supports vector subqueries: no rules fire.
	tr := New(SerializationStage(dialect.TeradataProfile())...)
	root := transformQuery(t, tr, stmt, dialect.TeradataProfile(), rec)
	if !strings.Contains(xtra.Format(root), "subq(ANY, GT") {
		t.Error("vector subquery rewritten despite target support")
	}
}

func TestScalarQuantifiedSubqueryUntouched(t *testing.T) {
	stmt, rec := bindSQL(t, "SEL * FROM SALES WHERE AMOUNT > ANY (SEL GROSS FROM SALES_HISTORY)")
	tr := New(SerializationStage(dialect.CloudA())...)
	root := transformQuery(t, tr, stmt, dialect.CloudA(), rec)
	if !strings.Contains(xtra.Format(root), "subq(ANY, GT, [GROSS])") {
		t.Errorf("scalar ANY rewritten:\n%s", xtra.Format(root))
	}
}

func TestLexRowPredAllQuantifier(t *testing.T) {
	stmt, rec := bindSQL(t, `
	  SEL * FROM SALES
	  WHERE (AMOUNT, STORE) <= ALL (SEL GROSS, NET FROM SALES_HISTORY)`)
	tr := New(SerializationStage(dialect.CloudA())...)
	root := transformQuery(t, tr, stmt, dialect.CloudA(), rec)
	out := xtra.Format(root)
	if !strings.Contains(out, "subq(NOT EXISTS)") {
		t.Errorf("ALL not rewritten to NOT EXISTS:\n%s", out)
	}
	if !strings.Contains(out, "comp(LT)") { // strict part of <=
		t.Errorf("missing strict comparison:\n%s", out)
	}
}

func TestGroupingSetsExpansion(t *testing.T) {
	stmt, rec := bindSQL(t, "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP(STORE)")
	tr := New(SerializationStage(dialect.CloudA())...) // CloudA lacks grouping sets
	root := transformQuery(t, tr, stmt, dialect.CloudA(), rec)
	out := xtra.Format(root)
	if !strings.Contains(out, "union_all") {
		t.Errorf("rollup not expanded to UNION ALL:\n%s", out)
	}
	// Two branches: (STORE) and ().
	if strings.Count(out, "agg[") != 2 {
		t.Errorf("expected 2 aggregation branches:\n%s", out)
	}
	if strings.Contains(out, "sets=") {
		t.Errorf("grouping sets survived:\n%s", out)
	}
}

func TestGroupingSetsKeptForCapableTarget(t *testing.T) {
	stmt, rec := bindSQL(t, "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP(STORE)")
	tr := New(SerializationStage(dialect.CloudB())...) // CloudB supports them
	root := transformQuery(t, tr, stmt, dialect.CloudB(), rec)
	if !strings.Contains(xtra.Format(root), "sets=2") {
		t.Error("grouping sets expanded despite target support")
	}
}

func TestDateArithToDateAdd(t *testing.T) {
	stmt, rec := bindSQL(t, "SEL SALES_DATE + 30 FROM SALES")
	tr := New(SerializationStage(dialect.CloudB())...) // CloudB lacks date arith
	root := transformQuery(t, tr, stmt, dialect.CloudB(), rec)
	out := xtra.Format(root)
	if !strings.Contains(out, "func(DATEADD)") {
		t.Errorf("date arithmetic not rewritten:\n%s", out)
	}
	// Subtraction negates the count.
	stmt2, rec2 := bindSQL(t, "SEL SALES_DATE - 7 FROM SALES")
	root2 := transformQuery(t, tr, stmt2, dialect.CloudB(), rec2)
	out2 := xtra.Format(root2)
	if !strings.Contains(out2, "neg") {
		t.Errorf("subtraction not negated:\n%s", out2)
	}
}

func TestDateArithKeptForCapableTarget(t *testing.T) {
	stmt, rec := bindSQL(t, "SEL SALES_DATE + 30 FROM SALES")
	tr := New(SerializationStage(dialect.CloudA())...) // CloudA has date arith
	root := transformQuery(t, tr, stmt, dialect.CloudA(), rec)
	if strings.Contains(xtra.Format(root), "DATEADD") {
		t.Error("date arithmetic rewritten despite target support")
	}
}

// End-to-end: the full Example 2 pipeline (binding stage + CloudA
// serialization stage) produces the Figure 6 shape.
func TestExample2FullTransformation(t *testing.T) {
	stmt, rec := bindSQL(t, `
	  SEL * FROM SALES
	  WHERE SALES_DATE > 1140101
	    AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
	  QUALIFY RANK(AMOUNT DESC) <= 10`)
	c := NewContext(nil, rec, 10000)
	mid, err := BindingStage().Statement(stmt, c)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(SerializationStage(dialect.CloudA())...)
	final, err := tr.Statement(mid, c)
	if err != nil {
		t.Fatal(err)
	}
	out := xtra.Format(final.(*xtra.Query).Root)
	for _, want := range []string{
		"window(RANK, DESC, AMOUNT)",
		"extract(DAY, SALES_DATE)",
		"subq(EXISTS)",
		"boolexpr(OR)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 6 shape missing %q:\n%s", want, out)
		}
	}
	fs := rec.Set()
	for _, want := range []feature.ID{feature.DateIntCompare, feature.VectorSubquery, feature.Qualify, feature.TdRank} {
		if !fs.Has(want) {
			t.Errorf("feature %s missing", feature.Lookup(want).Name)
		}
	}
}

func TestTransformDMLStatements(t *testing.T) {
	stmt, rec := bindSQL(t, "UPD SALES SET STORE = 1 WHERE SALES_DATE > 1140101")
	c := NewContext(nil, rec, 10000)
	out, err := BindingStage().Statement(stmt, c)
	if err != nil {
		t.Fatal(err)
	}
	upd := out.(*xtra.Update)
	pred := xtra.FormatScalar(upd.Pred)
	if !strings.Contains(pred, "extract(DAY, SALES_DATE)") {
		t.Errorf("UPDATE predicate not transformed:\n%s", pred)
	}
}

func TestNoOpPassThrough(t *testing.T) {
	stmt, rec := bindSQL(t, "COLLECT STATISTICS ON SALES")
	c := NewContext(nil, rec, 10000)
	out, err := BindingStage().Statement(stmt, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.(*xtra.NoOp); !ok {
		t.Fatalf("NoOp transformed into %T", out)
	}
}

func TestContextNewCol(t *testing.T) {
	c := NewContext(nil, nil, 500)
	col := c.NewCol("x", types.Int)
	if col.ID != 501 || col.Name != "x" {
		t.Errorf("NewCol = %+v", col)
	}
	col2 := c.NewCol("y", types.Float)
	if col2.ID != 502 {
		t.Errorf("IDs not monotonic: %+v", col2)
	}
}

// Context.Record must feed both the request-wide recorder and the context's
// own fired set — the latter is what the session surfaces on the transform
// trace span and in the per-fingerprint statistics.
func TestContextRecordSurfacesFired(t *testing.T) {
	rec := &feature.Recorder{}
	rec.Record(feature.SelAbbrev) // recorded before the transform stage
	c := NewContext(nil, rec, 0)
	if !c.Fired().Empty() {
		t.Fatal("fresh context already has fired features")
	}
	c.Record(feature.DateIntCompare)
	c.Record(feature.DateArith)
	for _, id := range []feature.ID{feature.DateIntCompare, feature.DateArith} {
		if !c.Fired().Has(id) {
			t.Errorf("Fired() missing %v", feature.Lookup(id).Name)
		}
		if !rec.Set().Has(id) {
			t.Errorf("recorder missing %v", feature.Lookup(id).Name)
		}
	}
	// Features recorded outside the context do not leak into Fired().
	if c.Fired().Has(feature.SelAbbrev) {
		t.Error("pre-stage feature leaked into the context's fired set")
	}
}
