package transform

import (
	"hyperq/internal/xtra"
)

// PredicatePushdownRule is a performance transformation (§4.3:
// "Transformations could also be used to improve the performance of
// generated queries"): filter conjuncts migrate below joins so comma-style
// join trees (cross joins with the predicate above) become proper equijoins
// the executor can hash. The engine substrate applies it before execution.
//
// The rule is conservative around outer joins: conjuncts only push into the
// left input of a LEFT join (and symmetric for RIGHT); FULL joins are left
// untouched.
type PredicatePushdownRule struct{}

// Name implements Rule.
func (*PredicatePushdownRule) Name() string { return "predicate_pushdown" }

// ApplyOp implements OpRule: it rewrites one Select-over-Join or
// Select-over-Select level per invocation; the fixed-point driver cascades
// the movement down the tree.
func (r *PredicatePushdownRule) ApplyOp(op xtra.Op, c *Context) (xtra.Op, bool, error) {
	sel, ok := op.(*xtra.Select)
	if !ok {
		return op, false, nil
	}
	// Factor conjuncts common to every branch of a disjunction out of the
	// OR, so join predicates buried in OR-of-AND shapes (TPC-H Q19) become
	// independently pushable.
	if factored, fired := factorOrs(sel.Pred); fired {
		return &xtra.Select{Input: sel.Input, Pred: factored}, true, nil
	}
	switch in := sel.Input.(type) {
	case *xtra.Select:
		// Merge stacked filters so all conjuncts distribute together.
		return &xtra.Select{Input: in.Input, Pred: xtra.MakeAnd(in.Pred, sel.Pred)}, true, nil
	case *xtra.Join:
		return pushIntoJoin(sel, in)
	}
	return op, false, nil
}

// factorOrs rewrites each top-level OR conjunct of pred by hoisting the
// conjuncts common to all of its branches: (a AND b) OR (a AND c) becomes
// a AND (b OR c).
func factorOrs(pred xtra.Scalar) (xtra.Scalar, bool) {
	conj := splitConjuncts(pred)
	fired := false
	out := make([]xtra.Scalar, 0, len(conj))
	for _, c := range conj {
		or, ok := c.(*xtra.BoolExpr)
		if !ok || or.Op != xtra.BoolOr || len(or.Args) < 2 {
			out = append(out, c)
			continue
		}
		branches := make([][]xtra.Scalar, len(or.Args))
		for i, a := range or.Args {
			branches[i] = splitConjuncts(a)
		}
		var common []xtra.Scalar
		for _, cand := range branches[0] {
			inAll := true
			for _, br := range branches[1:] {
				found := false
				for _, x := range br {
					if xtra.ScalarEqual(cand, x) {
						found = true
						break
					}
				}
				if !found {
					inAll = false
					break
				}
			}
			if inAll {
				common = append(common, cand)
			}
		}
		if len(common) == 0 {
			out = append(out, c)
			continue
		}
		fired = true
		var reduced []xtra.Scalar
		for _, br := range branches {
			var rest []xtra.Scalar
			for _, x := range br {
				dup := false
				for _, cm := range common {
					if xtra.ScalarEqual(x, cm) {
						dup = true
						break
					}
				}
				if !dup {
					rest = append(rest, x)
				}
			}
			if len(rest) == 0 {
				// One branch reduces to TRUE: the OR is subsumed.
				reduced = nil
				break
			}
			reduced = append(reduced, xtra.MakeAnd(rest...))
		}
		out = append(out, common...)
		if reduced != nil {
			out = append(out, xtra.MakeOr(reduced...))
		}
	}
	if !fired {
		return pred, false
	}
	return xtra.MakeAnd(out...), true
}

func splitConjuncts(p xtra.Scalar) []xtra.Scalar {
	if b, ok := p.(*xtra.BoolExpr); ok && b.Op == xtra.BoolAnd {
		return b.Args
	}
	if p == nil {
		return nil
	}
	return []xtra.Scalar{p}
}

func colSet(op xtra.Op) map[xtra.ColumnID]bool {
	out := map[xtra.ColumnID]bool{}
	for _, c := range op.Columns() {
		out[c.ID] = true
	}
	return out
}

// classify returns which side(s) the conjunct's column references belong to:
// 1 = left only, 2 = right only, 3 = both sides, 0 = references columns from
// neither (constants or correlated references — not pushable).
func classify(s xtra.Scalar, l, r map[xtra.ColumnID]bool) int {
	// Subquery-bearing conjuncts are expensive: evaluating them above the
	// joins — after the cheap predicates have reduced cardinality — is the
	// better order, so they never push down.
	if len(xtra.SubOps(s)) > 0 {
		return 0
	}
	refs := xtra.FreeColRefsIn(s)
	if len(refs) == 0 {
		return 0
	}
	left, right := false, false
	for id := range refs {
		switch {
		case l[id]:
			left = true
		case r[id]:
			right = true
		default:
			return 0 // correlated or outer reference
		}
	}
	switch {
	case left && right:
		return 3
	case left:
		return 1
	case right:
		return 2
	}
	return 0
}

func applyFilter(op xtra.Op, conj []xtra.Scalar) xtra.Op {
	if len(conj) == 0 {
		return op
	}
	return &xtra.Select{Input: op, Pred: xtra.MakeAnd(conj...)}
}

func pushIntoJoin(sel *xtra.Select, j *xtra.Join) (xtra.Op, bool, error) {
	lcols, rcols := colSet(j.L), colSet(j.R)
	conj := splitConjuncts(sel.Pred)
	var toL, toR, toPred, keep []xtra.Scalar
	for _, cj := range conj {
		side := classify(cj, lcols, rcols)
		switch j.Kind {
		case xtra.JoinInner, xtra.JoinCross:
			switch side {
			case 1:
				toL = append(toL, cj)
			case 2:
				toR = append(toR, cj)
			case 3:
				toPred = append(toPred, cj)
			default:
				keep = append(keep, cj)
			}
		case xtra.JoinLeft:
			if side == 1 {
				toL = append(toL, cj)
			} else {
				keep = append(keep, cj)
			}
		case xtra.JoinRight:
			if side == 2 {
				toR = append(toR, cj)
			} else {
				keep = append(keep, cj)
			}
		default: // FULL
			keep = append(keep, cj)
		}
	}
	if len(toL) == 0 && len(toR) == 0 && len(toPred) == 0 {
		return sel, false, nil
	}
	kind := j.Kind
	pred := xtra.MakeAnd(append([]xtra.Scalar{j.Pred}, toPred...)...)
	if kind == xtra.JoinCross && pred != nil {
		kind = xtra.JoinInner
	}
	nj := &xtra.Join{
		Kind: kind,
		L:    applyFilter(j.L, toL),
		R:    applyFilter(j.R, toR),
		Pred: pred,
	}
	if len(keep) == 0 {
		return nj, true, nil
	}
	return &xtra.Select{Input: nj, Pred: xtra.MakeAnd(keep...)}, true, nil
}

// Pushdown returns a transformer with only the pushdown rule.
func Pushdown() *Transformer { return New(&PredicatePushdownRule{}) }
