package transform

import (
	"fmt"

	"hyperq/internal/feature"
	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// DateIntCompareRule is the binding-stage comp_date_to_int transformation of
// §5.2 (Figure 5): a comparison between DATE and INTEGER expands the date
// side into the arithmetic expression that yields Teradata's internal
// integer encoding:
//
//	DAY + (MONTH * 100) + (YEAR - 1900) * 10000
//
// It is applied as early as possible because the encoding is unique to the
// source system — no knowledge of the target is required.
type DateIntCompareRule struct{}

// Name implements Rule.
func (*DateIntCompareRule) Name() string { return "comp_date_to_int" }

// ApplyScalar implements ScalarRule.
func (r *DateIntCompareRule) ApplyScalar(s xtra.Scalar, c *Context) (xtra.Scalar, bool, error) {
	cmp, ok := s.(*xtra.CompExpr)
	if !ok {
		return s, false, nil
	}
	lt, rt := cmp.L.Type(), cmp.R.Type()
	switch {
	case lt.Kind == types.KindDate && rt.IsNumeric():
		c.Record(feature.DateIntCompare)
		return &xtra.CompExpr{Op: cmp.Op, L: dateToIntExpr(cmp.L), R: cmp.R}, true, nil
	case rt.Kind == types.KindDate && lt.IsNumeric():
		c.Record(feature.DateIntCompare)
		return &xtra.CompExpr{Op: cmp.Op, L: cmp.L, R: dateToIntExpr(cmp.R)}, true, nil
	}
	return s, false, nil
}

// dateToIntExpr builds DAY + MONTH*100 + (YEAR-1900)*10000 over a DATE
// expression.
func dateToIntExpr(d xtra.Scalar) xtra.Scalar {
	day := &xtra.ExtractExpr{Field: types.FieldDay, X: d}
	month := &xtra.ExtractExpr{Field: types.FieldMonth, X: d}
	year := &xtra.ExtractExpr{Field: types.FieldYear, X: d}
	return &xtra.ArithExpr{
		Op: types.OpAdd,
		L:  day,
		R: &xtra.ArithExpr{
			Op: types.OpAdd,
			L: &xtra.ArithExpr{
				Op: types.OpMul,
				L:  month,
				R:  xtra.NewConst(types.NewInt(100)),
				T:  types.Int,
			},
			R: &xtra.ArithExpr{
				Op: types.OpMul,
				L: &xtra.ArithExpr{
					Op: types.OpSub,
					L:  year,
					R:  xtra.NewConst(types.NewInt(1900)),
					T:  types.Int,
				},
				R: xtra.NewConst(types.NewInt(10000)),
				T: types.Int,
			},
			T: types.Int,
		},
		T: types.Int,
	}
}

// VectorSubqueryRule is the serialization-stage transformation of §5.3
// (Figure 6): a quantified vector comparison is rewritten into a correlated
// existential subquery implementing the lexicographic row semantics:
//
//	(a, b) > ANY (SELECT x, y FROM t)
//	  ==>  EXISTS (SELECT 1 FROM t WHERE a > x OR (a = x AND b > y))
//
// ALL-quantified comparisons become NOT EXISTS of the negated row predicate.
type VectorSubqueryRule struct{}

// Name implements Rule.
func (*VectorSubqueryRule) Name() string { return "vector_subquery_to_exists" }

// ApplyScalar implements ScalarRule.
func (r *VectorSubqueryRule) ApplyScalar(s xtra.Scalar, c *Context) (xtra.Scalar, bool, error) {
	q, ok := s.(*xtra.SubqueryCmp)
	if !ok || len(q.Left) <= 1 {
		return s, false, nil
	}
	c.Record(feature.VectorSubquery)
	cols := q.Input.Columns()
	if len(cols) != len(q.Left) {
		return nil, false, fmt.Errorf("transform: vector arity mismatch")
	}
	right := make([]xtra.Scalar, len(cols))
	for i, col := range cols {
		right[i] = &xtra.ColRef{Col: col}
	}
	var rowPred xtra.Scalar
	switch q.Quant {
	case xtra.QuantAny:
		rowPred = lexRowPred(q.Cmp, q.Left, right)
	case xtra.QuantAll:
		rowPred = &xtra.NotExpr{X: lexRowPred(q.Cmp, q.Left, right)}
	}
	sel := &xtra.Select{Input: q.Input, Pred: rowPred}
	return &xtra.ExistsExpr{Not: q.Quant == xtra.QuantAll, Input: sel}, true, nil
}

// lexRowPred builds the lexicographic comparison predicate for row values,
// exactly the expansion shown in the paper's Figure 6:
//
//	(l1, l2) > (r1, r2)  ==>  l1 > r1 OR (l1 = r1 AND l2 > r2)
func lexRowPred(op xtra.CmpOp, left, right []xtra.Scalar) xtra.Scalar {
	switch op {
	case xtra.CmpEQ:
		var parts []xtra.Scalar
		for i := range left {
			parts = append(parts, &xtra.CompExpr{Op: xtra.CmpEQ, L: left[i], R: right[i]})
		}
		return xtra.MakeAnd(parts...)
	case xtra.CmpNE:
		var parts []xtra.Scalar
		for i := range left {
			parts = append(parts, &xtra.CompExpr{Op: xtra.CmpNE, L: left[i], R: right[i]})
		}
		return xtra.MakeOr(parts...)
	}
	// Ordered comparison, built right to left.
	last := len(left) - 1
	pred := xtra.Scalar(&xtra.CompExpr{Op: op, L: left[last], R: right[last]})
	strict := op
	if op == xtra.CmpLE {
		strict = xtra.CmpLT
	}
	if op == xtra.CmpGE {
		strict = xtra.CmpGT
	}
	for i := last - 1; i >= 0; i-- {
		pred = xtra.MakeOr(
			&xtra.CompExpr{Op: strict, L: left[i], R: right[i]},
			xtra.MakeAnd(
				&xtra.CompExpr{Op: xtra.CmpEQ, L: left[i], R: right[i]},
				pred,
			),
		)
	}
	return pred
}

// GroupingSetsRule expands ROLLUP/CUBE/GROUPING SETS into a UNION ALL of
// simple aggregations for targets without native support (Table 2: "Expand
// to a union all over simple GROUP BYs").
type GroupingSetsRule struct{}

// Name implements Rule.
func (*GroupingSetsRule) Name() string { return "grouping_sets_to_union" }

// ApplyOp implements OpRule.
func (r *GroupingSetsRule) ApplyOp(op xtra.Op, c *Context) (xtra.Op, bool, error) {
	agg, ok := op.(*xtra.Agg)
	if !ok || agg.GroupingSets == nil {
		return op, false, nil
	}
	c.Record(feature.GroupingSets)
	outCols := agg.Columns()
	var result xtra.Op
	for _, set := range agg.GroupingSets {
		inSet := make([]bool, len(agg.Groups))
		for _, i := range set {
			inSet[i] = true
		}
		// Branch aggregation over the selected grouping columns only.
		branch := &xtra.Agg{Input: agg.Input}
		branchGroupCol := make(map[int]xtra.Col)
		for i, g := range agg.Groups {
			if !inSet[i] {
				continue
			}
			col := c.NewCol(g.Out.Name, g.Out.Type)
			branch.Groups = append(branch.Groups, xtra.GroupCol{Out: col, Expr: g.Expr})
			branchGroupCol[i] = col
		}
		branchAggCols := make([]xtra.Col, len(agg.Aggs))
		for i, a := range agg.Aggs {
			na := a
			na.Out = c.NewCol(a.Out.Name, a.Out.Type)
			branchAggCols[i] = na.Out
			branch.Aggs = append(branch.Aggs, na)
		}
		// Project to the full output shape, padding non-grouped columns
		// with typed NULLs.
		proj := &xtra.Project{Input: branch}
		for i, g := range agg.Groups {
			var e xtra.Scalar
			if col, ok := branchGroupCol[i]; ok {
				e = &xtra.ColRef{Col: col}
			} else {
				e = &xtra.CastExpr{X: xtra.NewConst(types.NewNull(g.Out.Type.Kind)), To: g.Out.Type, Implicit: true}
			}
			proj.Exprs = append(proj.Exprs, xtra.NamedScalar{Col: c.NewCol(g.Out.Name, g.Out.Type), Expr: e})
		}
		for i, a := range agg.Aggs {
			proj.Exprs = append(proj.Exprs, xtra.NamedScalar{
				Col:  c.NewCol(a.Out.Name, a.Out.Type),
				Expr: &xtra.ColRef{Col: branchAggCols[i]},
			})
		}
		if result == nil {
			result = proj
			continue
		}
		result = &xtra.SetOp{Kind: xtra.SetUnion, All: true, L: result, R: proj, Cols: outCols}
	}
	if result == nil {
		return op, false, nil
	}
	// A single grouping set still needs the original output identity.
	if _, ok := result.(*xtra.SetOp); !ok {
		proj := result.(*xtra.Project)
		for i := range proj.Exprs {
			proj.Exprs[i].Col = outCols[i]
		}
	}
	return result, true, nil
}

// DateArithRule respells DATE +/- integer arithmetic as the canonical
// DATEADD function for targets whose dialect has no native date arithmetic
// (the "Date arithmetics" row of Table 2: "Replace by DATEADD function").
type DateArithRule struct{}

// Name implements Rule.
func (*DateArithRule) Name() string { return "date_arith_to_dateadd" }

// ApplyScalar implements ScalarRule.
func (r *DateArithRule) ApplyScalar(s xtra.Scalar, c *Context) (xtra.Scalar, bool, error) {
	a, ok := s.(*xtra.ArithExpr)
	if !ok || a.T.Kind != types.KindDate {
		return s, false, nil
	}
	lk, rk := a.L.Type().Kind, a.R.Type().Kind
	if (lk == types.KindDate) == (rk == types.KindDate) {
		return s, false, nil // date-date or already rewritten
	}
	c.Record(feature.DateArith)
	date, n := a.L, a.R
	if rk == types.KindDate {
		date, n = a.R, a.L
	}
	if a.Op == types.OpSub {
		n = &xtra.NegExpr{X: n}
	}
	return &xtra.FuncExpr{
		Name: "DATEADD",
		Args: []xtra.Scalar{xtra.NewConst(types.NewString("DAY")), n, date},
		T:    types.Date,
	}, true, nil
}
