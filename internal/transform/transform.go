// Package transform implements the paper's Transformer component (§4.3):
// "the driver responsible for triggering different transformation rules
// under given pre-conditions". Rules are pluggable, can cascade, and the
// driver "takes care of running all relevant transformations repeatedly
// until reaching a fixed point".
//
// Two rule sets exist, matching the paper's staging guidelines (§5):
//
//   - Binding-stage rules run right after algebrization and are
//     target-independent, e.g. expanding Teradata's DATE/INT comparison into
//     the internal integer encoding (§5.2, Figure 5).
//   - Serialization-stage rules are target-specific and run right before
//     SQL generation, e.g. rewriting a quantified vector comparison into a
//     correlated EXISTS for targets without vector support (§5.3, Figure 6).
package transform

import (
	"fmt"

	"hyperq/internal/dialect"
	"hyperq/internal/feature"
	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// Rule rewrites one scalar or operator node. A rule returns the replacement
// node and whether it fired; returning the input unchanged with fired=false
// lets the driver detect the fixed point.
type Rule interface {
	Name() string
}

// ScalarRule rewrites scalar expressions.
type ScalarRule interface {
	Rule
	ApplyScalar(s xtra.Scalar, c *Context) (xtra.Scalar, bool, error)
}

// OpRule rewrites relational operators.
type OpRule interface {
	Rule
	ApplyOp(op xtra.Op, c *Context) (xtra.Op, bool, error)
}

// Context carries transformation state: the target profile (nil for the
// target-independent binding stage), a feature recorder, and a column
// factory for rules that must mint new columns.
type Context struct {
	Target  *dialect.Profile
	Rec     *feature.Recorder
	fired   feature.Set
	nextCol xtra.ColumnID
}

// NewContext creates a transformation context. nextCol must be larger than
// any ColumnID already allocated in the plan.
func NewContext(target *dialect.Profile, rec *feature.Recorder, nextCol xtra.ColumnID) *Context {
	return &Context{Target: target, Rec: rec, nextCol: nextCol}
}

// Record notes that a rule rewrote for the given feature: it feeds the
// request-wide recorder and the context's own fired set, so callers can
// surface exactly which features THIS transform run exercised (the trace
// span annotation and the workload-statistics bit-set) without tangling
// them with features recorded by earlier pipeline stages.
func (c *Context) Record(id feature.ID) {
	c.Rec.Record(id)
	c.fired.Add(id)
}

// Fired returns the features recorded through this context.
func (c *Context) Fired() feature.Set { return c.fired }

// NewCol mints a fresh column.
func (c *Context) NewCol(name string, t types.T) xtra.Col {
	c.nextCol++
	return xtra.Col{ID: c.nextCol, Name: name, Type: t}
}

// Transformer drives a rule set to a fixed point.
type Transformer struct {
	rules []Rule
	// maxPasses bounds the fixed-point iteration as a cycle guard.
	maxPasses int
}

// New creates a transformer over the given rules.
func New(rules ...Rule) *Transformer {
	return &Transformer{rules: rules, maxPasses: 32}
}

// BindingStage returns the target-independent rule set applied right after
// algebrization.
func BindingStage() *Transformer {
	return New(
		&DateIntCompareRule{},
	)
}

// SerializationStage returns the target-specific rule set applied right
// before serialization for the given profile.
func SerializationStage(target *dialect.Profile) []Rule {
	var rules []Rule
	if !target.Supports(dialect.CapVectorSubquery) {
		rules = append(rules, &VectorSubqueryRule{})
	}
	if !target.Supports(dialect.CapGroupingSets) {
		rules = append(rules, &GroupingSetsRule{})
	}
	if !target.Supports(dialect.CapDateArith) {
		rules = append(rules, &DateArithRule{})
	}
	return rules
}

// Statement transforms a bound statement in place (operators are rebuilt
// immutably; the returned statement shares unchanged subtrees).
func (t *Transformer) Statement(stmt xtra.Statement, c *Context) (xtra.Statement, error) {
	switch s := stmt.(type) {
	case *xtra.Query:
		root, err := t.Op(s.Root, c)
		if err != nil {
			return nil, err
		}
		return &xtra.Query{Root: root}, nil
	case *xtra.Insert:
		in, err := t.Op(s.Input, c)
		if err != nil {
			return nil, err
		}
		return &xtra.Insert{Table: s.Table, Ordinals: s.Ordinals, Input: in}, nil
	case *xtra.Update:
		out := &xtra.Update{Table: s.Table, Cols: s.Cols}
		for _, a := range s.Assigns {
			e, err := t.Scalar(a.Expr, c)
			if err != nil {
				return nil, err
			}
			out.Assigns = append(out.Assigns, xtra.ColAssign{Ordinal: a.Ordinal, Expr: e})
		}
		if s.Pred != nil {
			p, err := t.Scalar(s.Pred, c)
			if err != nil {
				return nil, err
			}
			out.Pred = p
		}
		return out, nil
	case *xtra.Delete:
		out := &xtra.Delete{Table: s.Table, Cols: s.Cols}
		if s.Pred != nil {
			p, err := t.Scalar(s.Pred, c)
			if err != nil {
				return nil, err
			}
			out.Pred = p
		}
		return out, nil
	case *xtra.CreateTable:
		if s.Input == nil {
			return s, nil
		}
		in, err := t.Op(s.Input, c)
		if err != nil {
			return nil, err
		}
		return &xtra.CreateTable{Def: s.Def, Input: in, IfNotExists: s.IfNotExists}, nil
	default:
		return stmt, nil
	}
}

// Op transforms an operator tree to a fixed point.
func (t *Transformer) Op(op xtra.Op, c *Context) (xtra.Op, error) {
	for pass := 0; ; pass++ {
		if pass > t.maxPasses {
			return nil, fmt.Errorf("transform: no fixed point after %d passes", t.maxPasses)
		}
		next, fired, err := t.opOnce(op, c)
		if err != nil {
			return nil, err
		}
		op = next
		if !fired {
			return op, nil
		}
	}
}

// Scalar transforms a scalar expression to a fixed point.
func (t *Transformer) Scalar(s xtra.Scalar, c *Context) (xtra.Scalar, error) {
	for pass := 0; ; pass++ {
		if pass > t.maxPasses {
			return nil, fmt.Errorf("transform: no fixed point after %d passes", t.maxPasses)
		}
		next, fired, err := t.scalarOnce(s, c)
		if err != nil {
			return nil, err
		}
		s = next
		if !fired {
			return s, nil
		}
	}
}

// opOnce performs one bottom-up rewrite pass over the operator tree.
func (t *Transformer) opOnce(op xtra.Op, c *Context) (xtra.Op, bool, error) {
	fired := false
	// Rewrite children and owned scalars first.
	next, childFired, err := t.rewriteChildren(op, c)
	if err != nil {
		return nil, false, err
	}
	op = next
	fired = fired || childFired
	// Apply operator rules at this node.
	for _, r := range t.rules {
		or, ok := r.(OpRule)
		if !ok {
			continue
		}
		no, f, err := or.ApplyOp(op, c)
		if err != nil {
			return nil, false, err
		}
		if f {
			op = no
			fired = true
		}
	}
	return op, fired, nil
}

func (t *Transformer) scalarOnce(s xtra.Scalar, c *Context) (xtra.Scalar, bool, error) {
	fired := false
	next, childFired, err := t.rewriteScalarChildren(s, c)
	if err != nil {
		return nil, false, err
	}
	s = next
	fired = fired || childFired
	for _, r := range t.rules {
		sr, ok := r.(ScalarRule)
		if !ok {
			continue
		}
		ns, f, err := sr.ApplyScalar(s, c)
		if err != nil {
			return nil, false, err
		}
		if f {
			s = ns
			fired = true
		}
	}
	return s, fired, nil
}
