package hyperq

import (
	"fmt"

	"hyperq/internal/catalog"
	"hyperq/internal/emulate"
	"hyperq/internal/feature"
	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/types"
	"hyperq/internal/wire/tdp"
	"hyperq/internal/xtra"

	"hyperq/internal/binder"
)

// maxRecursionSteps bounds the emulated recursion loop.
const maxRecursionSteps = 10000

// emulateRecursive implements the Figure 7 protocol for targets without
// native recursion: seed rows initialize both WorkTable and TempTable; each
// step evaluates the recursive branch against TempTable, appends results to
// WorkTable, and stops when a step yields no rows; finally the main query
// runs with the CTE substituted by WorkTable.
func (s *Session) emulateRecursive(sel *sqlast.SelectStmt, rec *feature.Recorder) ([]*FrontResult, error) {
	// The emulation span wraps the whole multi-request protocol; the trace's
	// BackendRequests counter records the resulting fan-out.
	esp := s.tr.Start("emulate")
	esp.Set("feature", "recursive")
	defer esp.End()
	// Registered before the cleanup defer (LIFO) so the work-table teardown
	// still runs inside the composite.
	s.enterComposite()
	defer s.leaveComposite()
	plan, err := emulate.PlanRecursive(sel.Query)
	if err != nil {
		return nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	if plan == nil {
		// WITH RECURSIVE keyword without an actual self-reference.
		q := *sel.Query
		if q.With != nil {
			w := *q.With
			w.Recursive = false
			q.With = &w
		}
		return s.translateAndRun(&sqlast.SelectStmt{Query: &q}, rec)
	}
	rec.Record(feature.RecursiveQuery)

	// Derive the CTE row type by binding the seed branch.
	seedBinder := binder.New(s, parser.Teradata, nil)
	if s.macroParams != nil {
		seedBinder.SetParams(s.macroParams)
	}
	seedBound, err := seedBinder.Bind(&sqlast.SelectStmt{Query: plan.Seed})
	if err != nil {
		return nil, failf(tdp.CodeSemanticError, "recursive seed: %v", err)
	}
	seedCols := seedBound.(*xtra.Query).Root.Columns()
	names := plan.Columns
	if len(names) == 0 {
		for _, c := range seedCols {
			names = append(names, c.Name)
		}
	}
	if len(names) != len(seedCols) {
		return nil, failf(tdp.CodeSemanticError, "recursive CTE column list mismatch")
	}

	work := s.newTempName("work")
	temp := s.newTempName("temp")
	next := s.newTempName("next")
	cleanup := func() {
		for _, t := range []string{next, temp, work} {
			_, _ = s.translateAndRun(&sqlast.DropTableStmt{Name: t, IfExists: true}, nil)
			_ = s.sessionCat.DropTable(t)
			s.forgetSessionDDL(t)
		}
	}
	defer cleanup()
	for _, t := range []string{work, temp, next} {
		if err := s.createEmulationTable(t, names, seedCols, rec); err != nil {
			return nil, err
		}
	}
	// Step 1: initialize WorkTable and TempTable with the seed results.
	for _, t := range []string{work, temp} {
		if _, err := s.translateAndRun(&sqlast.InsertStmt{Table: t, Query: plan.Seed}, rec); err != nil {
			return nil, err
		}
	}
	// Steps 2..n: evaluate the recursive branch against TempTable until the
	// step produces no new rows.
	recursiveQuery := emulate.RenameTables(plan.Recursive, plan.CTEName, temp)
	for step := 0; ; step++ {
		if step > maxRecursionSteps {
			return nil, failf(tdp.CodeObjectNotFound, "recursion exceeded %d steps", maxRecursionSteps)
		}
		if _, err := s.translateAndRun(&sqlast.DeleteStmt{Table: next, All: true}, rec); err != nil {
			return nil, err
		}
		ins, err := s.translateAndRun(&sqlast.InsertStmt{Table: next, Query: recursiveQuery}, rec)
		if err != nil {
			return nil, err
		}
		if len(ins) == 0 || ins[0].Activity == 0 {
			break
		}
		if _, err := s.translateAndRun(&sqlast.InsertStmt{Table: work, Query: selectStarFrom(next)}, rec); err != nil {
			return nil, err
		}
		if _, err := s.translateAndRun(&sqlast.DeleteStmt{Table: temp, All: true}, rec); err != nil {
			return nil, err
		}
		if _, err := s.translateAndRun(&sqlast.InsertStmt{Table: temp, Query: selectStarFrom(next)}, rec); err != nil {
			return nil, err
		}
	}
	// Step 5: run the main query with the CTE substituted by WorkTable.
	mainQuery := emulate.RenameTables(plan.Main, plan.CTEName, work)
	return s.translateAndRun(&sqlast.SelectStmt{Query: mainQuery}, rec)
}

func (s *Session) newTempName(kind string) string {
	s.nextTemp++
	return fmt.Sprintf("hq_%s_%d", kind, s.nextTemp)
}

// createEmulationTable creates a session temporary table on the backend and
// registers it in the session catalog overlay.
func (s *Session) createEmulationTable(name string, colNames []string, cols []xtra.Col, rec *feature.Recorder) error {
	// Work tables are backend-session state: pin a pooled backend connection
	// so every request of the emulation protocol sees them.
	if err := s.pinBackend(); err != nil {
		return err
	}
	s.enterComposite()
	defer s.leaveComposite()
	def := &catalog.Table{Name: name, Kind: catalog.KindVolatile}
	ast := &sqlast.CreateTableStmt{Name: name, Volatile: true}
	for i, c := range cols {
		def.Columns = append(def.Columns, catalog.Column{Name: colNames[i], Type: c.Type})
		ast.Columns = append(ast.Columns, sqlast.ColumnDef{Name: colNames[i], Type: typeNameOf(c.Type)})
	}
	if err := s.sessionCat.CreateTable(def); err != nil {
		return failf(tdp.CodeObjectExists, "%v", err)
	}
	// Translate and execute in two steps so the backend DDL is recorded for
	// post-reconnect session replay (the work table is backend session
	// state a replacement connection must rebuild).
	sql, frontCols, err := s.translateStatement(ast, rec)
	if err != nil {
		_ = s.sessionCat.DropTable(name)
		return err
	}
	if sql != "" {
		if _, err := s.execTranslated(sql, frontCols, func(backend string) string {
			return commandName(ast, backend)
		}); err != nil {
			_ = s.sessionCat.DropTable(name)
			return err
		}
		s.recordSessionDDL(name, sql)
	}
	return nil
}

// typeNameOf maps a resolved type back to DDL syntax.
func typeNameOf(t types.T) sqlast.TypeName {
	switch t.Kind {
	case types.KindInt:
		return sqlast.TypeName{Name: "INTEGER"}
	case types.KindBigInt:
		return sqlast.TypeName{Name: "BIGINT"}
	case types.KindFloat:
		return sqlast.TypeName{Name: "FLOAT"}
	case types.KindDecimal:
		return sqlast.TypeName{Name: "DECIMAL", Args: []int{t.Precision, t.Scale}}
	case types.KindChar:
		n := t.Length
		if n == 0 {
			n = 1
		}
		return sqlast.TypeName{Name: "CHAR", Args: []int{n}}
	case types.KindVarChar:
		if t.Length > 0 {
			return sqlast.TypeName{Name: "VARCHAR", Args: []int{t.Length}}
		}
		return sqlast.TypeName{Name: "VARCHAR", Args: []int{4096}}
	case types.KindDate:
		return sqlast.TypeName{Name: "DATE"}
	case types.KindTime:
		return sqlast.TypeName{Name: "TIME"}
	case types.KindTimestamp:
		return sqlast.TypeName{Name: "TIMESTAMP"}
	case types.KindBool:
		return sqlast.TypeName{Name: "BOOLEAN"}
	case types.KindBytes:
		return sqlast.TypeName{Name: "VARBYTE", Args: []int{t.Length}}
	case types.KindPeriod:
		if t.Elem == types.KindTimestamp {
			return sqlast.TypeName{Name: "PERIOD(TIMESTAMP)"}
		}
		return sqlast.TypeName{Name: "PERIOD(DATE)"}
	}
	return sqlast.TypeName{Name: "VARCHAR", Args: []int{4096}}
}

// selectStarFrom builds SELECT * FROM t.
func selectStarFrom(table string) *sqlast.QueryExpr {
	return &sqlast.QueryExpr{Body: &sqlast.SelectCore{
		Items: []sqlast.SelectItem{{Expr: &sqlast.Star{}}},
		From:  []sqlast.TableExpr{&sqlast.TableRef{Name: table}},
	}}
}

// execMerge emulates MERGE by decomposition into UPDATE + INSERT (§6),
// reporting the combined activity count.
func (s *Session) execMerge(m *sqlast.MergeStmt, rec *feature.Recorder) ([]*FrontResult, error) {
	esp := s.tr.Start("emulate")
	esp.Set("feature", "merge")
	defer esp.End()
	s.enterComposite()
	defer s.leaveComposite()
	rec.Record(feature.Merge)
	stmts, err := emulate.DecomposeMerge(m)
	if err != nil {
		return nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	var total int64
	for _, stmt := range stmts {
		results, err := s.execStatement(stmt, rec)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			total += r.Activity
		}
	}
	return []*FrontResult{{Activity: total, Command: "MERGE"}}, nil
}

// execSetTableInsert enforces SET-table duplicate elimination in the mid
// tier before sending the insert to a target without set semantics.
func (s *Session) execSetTableInsert(ins *sqlast.InsertStmt, tbl *catalog.Table, rec *feature.Recorder) ([]*FrontResult, error) {
	var allCols []string
	for _, c := range tbl.Columns {
		allCols = append(allCols, c.Name)
	}
	rewritten, err := emulate.DeduplicateInsert(ins, allCols)
	if err != nil {
		return nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	s.enterComposite()
	defer s.leaveComposite()
	return s.translateAndRun(rewritten, rec)
}
