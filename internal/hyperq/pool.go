package hyperq

// Session pinning: with a pooled backend driver a frontend session normally
// holds no backend connection at all — each statement runs under a
// statement-level lease. Gateway-side emulation state breaks that model:
// volatile tables, global-temporary instances, emulation work tables, and
// open transactions live in one particular backend session, so every later
// statement must land on the same connection. The session pins its backend
// before establishing such state and unpins once the state is gone (replay
// log empty, no open transaction) — the same replay log that drives
// post-reconnect session restoration doubles as the pinning signal.

import (
	"context"

	"hyperq/internal/feature"
	"hyperq/internal/sqlast"
)

// backendPinner is implemented by pooled backend connections
// (pool.SessionConn). Dedicated-connection drivers don't implement it, so on
// them every pinning call degrades to a no-op and sessions behave exactly as
// before the pool existed.
type backendPinner interface {
	Pin(ctx context.Context) error
	Unpin()
	Pinned() bool
}

// pinBackend dedicates a backend connection to this session. Called before
// the statement that establishes session-scoped backend state executes, so
// the state and all subsequent statements share one connection — pinning
// after the fact could dedicate a different connection than the one that
// ran the DDL.
func (s *Session) pinBackend() error {
	bp, ok := s.be.(backendPinner)
	if !ok {
		return nil
	}
	if err := bp.Pin(s.requestCtx()); err != nil {
		return mapBackendError(err)
	}
	return nil
}

// maybeUnpinBackend returns a pinned connection to general service once the
// session's backend state is gone: nothing left to replay and no open
// transaction. Runs at the end of every request, so dropping the last
// volatile table (or COMMIT/ROLLBACK) releases the dedicated connection.
func (s *Session) maybeUnpinBackend() {
	bp, ok := s.be.(backendPinner)
	if !ok || !bp.Pinned() {
		return
	}
	if len(s.replayLog) == 0 && !s.txnOpen {
		bp.Unpin()
	}
}

// execTxn handles BT/ET/COMMIT/ROLLBACK. Transactions are backend-session
// state: BEGIN pins the backend connection so every statement inside the
// transaction — and the eventual COMMIT — reaches the same backend session.
func (s *Session) execTxn(t *sqlast.TxnStmt, rec *feature.Recorder) ([]*FrontResult, error) {
	if t.Kind == "BEGIN" {
		if err := s.pinBackend(); err != nil {
			return nil, err
		}
		s.txnOpen = true
		results, err := s.translateAndRun(t, rec)
		if err != nil {
			// The transaction never opened on the backend.
			s.txnOpen = false
		}
		return results, err
	}
	results, err := s.translateAndRun(t, rec)
	if err == nil {
		s.txnOpen = false
	}
	// On failure (deadline, ErrMaybeApplied, transport error) the transaction
	// may still be open on the backend session, so txnOpen stays set: the
	// session stays pinned and the connection cannot return to the shared
	// pool carrying uncommitted state. A later ET/COMMIT/ROLLBACK — or the
	// dirty-pin destroy at session close — resolves it.
	return results, err
}
