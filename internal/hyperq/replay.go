package hyperq

import "hyperq/internal/odbc"

// TakeDivergences drains the per-statement divergence records the session's
// backend executor accumulated since the last call. Non-empty only when the
// gateway executes through an odbc.ReplicatedDriver in compare mode — the
// shadow-migration replay configuration, where every statement fans out to a
// baseline and a candidate backend and their answers are diffed. A session
// serves one request at a time, so draining after each Run attributes every
// record to the statement that produced it. Returns nil for ordinary
// backends.
func (s *Session) TakeDivergences() []*odbc.Divergence {
	if ds, ok := s.be.(odbc.DivergenceSource); ok {
		return ds.TakeDivergences()
	}
	return nil
}
