package hyperq

import (
	"fmt"
	"sync"

	"hyperq/internal/tdf"
	"hyperq/internal/types"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/wire/tdp"
	"hyperq/internal/xtra"
)

// convertResult implements the Result Converter (§4.6): backend TDF batches
// are buffered through the Result Store (spilling to disk past the memory
// budget, since the frontend protocol announces row counts up front) and
// converted in parallel into the frontend's column types and names.
func (s *Session) convertResult(frontCols []xtra.Col, br *cwp.StatementResult) ([]tdp.ColumnDef, [][]types.Datum, error) {
	if len(br.Cols) != len(frontCols) {
		return nil, nil, fmt.Errorf("backend returned %d columns, expected %d", len(br.Cols), len(frontCols))
	}
	cols := make([]tdp.ColumnDef, len(frontCols))
	for i, c := range frontCols {
		cols[i] = tdp.ColumnDef{Name: c.Name, Type: c.Type}
	}
	// Buffer batches through the Result Store.
	store := tdf.NewStore(s.g.cfg.ResultBudget)
	defer store.Close()
	for _, b := range br.Batches {
		if err := store.Append(b); err != nil {
			return nil, nil, err
		}
	}
	if err := store.Seal(); err != nil {
		return nil, nil, err
	}
	// Convert inside the drain callback so only one batch is resident at a
	// time — collecting the batches first would re-materialize everything the
	// store just spilled.
	rows := make([][]types.Datum, 0, store.TotalRows())
	if err := store.Drain(func(b *tdf.Batch) error {
		converted, err := s.convertBatch(frontCols, b)
		if err != nil {
			return err
		}
		rows = append(rows, converted...)
		return nil
	}); err != nil {
		return nil, nil, err
	}
	return cols, rows, nil
}

// convertBatch converts one batch's rows, splitting the work across the
// configured number of workers ("each process handles the conversion of a
// subset of the result rows", §4.6). Order is preserved.
func (s *Session) convertBatch(frontCols []xtra.Col, b *tdf.Batch) ([][]types.Datum, error) {
	n := len(b.Rows)
	if n == 0 {
		return nil, nil
	}
	workers := s.g.cfg.ConvertWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		out := make([][]types.Datum, n)
		for i, row := range b.Rows {
			nr, err := convertRow(frontCols, row)
			if err != nil {
				return nil, err
			}
			out[i] = nr
		}
		return out, nil
	}
	out := make([][]types.Datum, n)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				nr, err := convertRow(frontCols, b.Rows[i])
				if err != nil {
					errs[w] = err
					return
				}
				out[i] = nr
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// convertRow coerces one backend row into the frontend column types.
func convertRow(frontCols []xtra.Col, row []types.Datum) ([]types.Datum, error) {
	if len(row) != len(frontCols) {
		return nil, fmt.Errorf("row arity %d != %d", len(row), len(frontCols))
	}
	out := make([]types.Datum, len(row))
	for i, d := range row {
		want := frontCols[i].Type
		if d.Null {
			out[i] = types.NewNull(want.Kind)
			continue
		}
		if d.K == want.Kind && (want.Kind != types.KindDecimal || int(d.Scale) == want.Scale) {
			out[i] = d
			continue
		}
		cast, err := types.Cast(d, want)
		if err != nil {
			return nil, fmt.Errorf("column %s: %v", frontCols[i].Name, err)
		}
		out[i] = cast
	}
	return out, nil
}
