package hyperq

import (
	"container/list"
	"sync"

	"hyperq/internal/feature"
	"hyperq/internal/fingerprint"
	"hyperq/internal/xtra"
)

// translationCache is the gateway-wide statement translation cache (sharded
// LRU, bounded by entry count and retained bytes). It holds two entry tiers
// sharing one budget:
//
//   - fingerprint entries ("F|..." keys): keyed by the canonical statement
//     fingerprint, storing a serialized SQL-B template with literal slots.
//     A hit skips bind, transform and serialization; the statement's
//     literals are spliced into the template.
//   - request entries ("R|..." keys): keyed by the raw request text, storing
//     the final instantiated SQL. A hit additionally skips parsing and
//     fingerprinting for byte-identical repeats — the common case for
//     tool-generated workloads.
//
// Entries are immutable after insertion; concurrent readers share them.
type translationCache struct {
	shards     [cacheShards]cacheShard
	maxEntries int
	maxBytes   int
}

const cacheShards = 16

type cacheShard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *cacheEntry
	index map[string]*list.Element
	bytes int
}

// cacheEntry is one cached translation. Exactly one of tpl/sql is meaningful:
// fingerprint entries carry the template, request entries the final SQL.
type cacheEntry struct {
	key string
	// tpl is the SQL-B template with literal slots (fingerprint tier).
	tpl fingerprint.Template
	// exact marks a fingerprint entry whose translated text depends on the
	// literal values (a lifted literal did not survive to the output): the
	// entry only matches requests whose literal signature equals litsig.
	exact  bool
	litsig string
	// sql is the final instantiated SQL (request tier).
	sql string
	// cols is the frontend column metadata of the translated statement;
	// shared read-only by all hits.
	cols []xtra.Col
	// cmd is the statement's command name for the response header.
	cmd string
	// feats replays the features recorded during the original translation so
	// workload statistics are independent of cache hits.
	feats feature.Set
	size  int
}

func newTranslationCache(maxEntries, maxBytes int) *translationCache {
	c := &translationCache{maxEntries: maxEntries, maxBytes: maxBytes}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].index = make(map[string]*list.Element)
	}
	return c
}

func (c *translationCache) shard(key string) *cacheShard {
	// FNV-1a over the key; cheap and stable.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// get returns the entry for key, promoting it to most recently used.
func (c *translationCache) get(key string) *cacheEntry {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[key]
	if !ok {
		return nil
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// put inserts (or replaces) an entry and returns how many entries were
// evicted to stay within the per-shard budget. Bounds are divided evenly
// across shards so no shard lock is ever held while touching another shard.
func (c *translationCache) put(e *cacheEntry) (evicted int) {
	s := c.shard(e.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[e.key]; ok {
		old := el.Value.(*cacheEntry)
		s.bytes += e.size - old.size
		el.Value = e
		s.lru.MoveToFront(el)
	} else {
		s.index[e.key] = s.lru.PushFront(e)
		s.bytes += e.size
	}
	maxE := c.maxEntries / cacheShards
	if maxE < 1 {
		maxE = 1
	}
	maxB := c.maxBytes / cacheShards
	for s.lru.Len() > maxE || (s.bytes > maxB && s.lru.Len() > 1) {
		back := s.lru.Back()
		victim := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.index, victim.key)
		s.bytes -= victim.size
		evicted++
	}
	return evicted
}

// len reports the total entry count (test/diagnostic helper).
func (c *translationCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// entrySize approximates the retained bytes of an entry.
func (e *cacheEntry) entrySize() int {
	n := len(e.key) + len(e.sql) + len(e.litsig) + len(e.cmd) + 96
	n += e.tpl.Size()
	n += len(e.cols) * 48
	for _, c := range e.cols {
		n += len(c.Name)
	}
	return n
}
