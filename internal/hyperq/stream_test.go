package hyperq

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/faultdriver"
	"hyperq/internal/wire"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/wire/tdp"
	"hyperq/internal/workload/customer"
)

// bigRowPad is the filler column of the streaming tests' large results:
// ~300 bytes per row, so a TDF batch (1024 rows) carries ~300 KiB.
var bigRowPad = strings.Repeat("x", 300)

// bigTableEngine loads a backend engine with BIG: seedN³ rows of ~300 bytes
// each, built by a cross-join insert so the setup stays cheap.
func bigTableEngine(t *testing.T, target *dialect.Profile, seedN int) *engine.Engine {
	t.Helper()
	eng := engine.New(target)
	s := eng.NewSession()
	for _, sql := range []string{
		"CREATE TABLE SEED (I INT)",
		"CREATE TABLE BIG (PAD VARCHAR(400))",
	} {
		if _, err := s.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < seedN; i++ {
		if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO SEED VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ExecSQL(fmt.Sprintf(
		"INSERT INTO BIG SELECT '%s' FROM SEED a, SEED b, SEED c", bigRowPad)); err != nil {
		t.Fatal(err)
	}
	return eng
}

// streamStack is a full Figure 1(b) wire stack with a fault-injection layer
// between the gateway and the backend: TDP client → gateway → resilient
// driver → faultdriver → CWP → engine.
type streamStack struct {
	g    *Gateway
	fd   *faultdriver.Driver
	met  *odbc.ResilienceMetrics
	addr string
}

func newStreamStack(t *testing.T, target *dialect.Profile, eng *engine.Engine, cfg Config, opts tdp.Options) *streamStack {
	t.Helper()
	return newStreamStackVia(t, target, eng, serveBackend(t, eng), cfg, opts)
}

// serveBackend starts a CWP server over eng and returns its address.
func serveBackend(t *testing.T, eng *engine.Engine) string {
	t.Helper()
	beLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { beLn.Close() })
	go func() { _ = cwp.Serve(beLn, eng) }()
	return beLn.Addr().String()
}

// newStreamStackVia builds the gateway against an explicit backend address
// (possibly a fault-injecting proxy rather than the backend itself).
func newStreamStackVia(t *testing.T, target *dialect.Profile, eng *engine.Engine, beAddr string, cfg Config, opts tdp.Options) *streamStack {
	t.Helper()
	fd := faultdriver.New(&odbc.NetworkDriver{Addr: beAddr, User: "gw", Password: "pw"})
	met := &odbc.ResilienceMetrics{}
	cfg.Target = target
	cfg.Driver = &odbc.ResilientDriver{Inner: fd, Metrics: met, Sleep: func(time.Duration) {}}
	cfg.Catalog = eng.Catalog().Clone()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { feLn.Close() })
	go func() { _ = tdp.ServeOptions(feLn, g, opts) }()
	return &streamStack{g: g, fd: fd, met: met, addr: feLn.Addr().String()}
}

// rawConn is a parcel-level TDP client: the tests drive reads one parcel at
// a time to model slow, stalled, and vanished clients.
type rawConn struct {
	t *testing.T
	c net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var b wire.Buffer
	b.PutString("appuser")
	b.PutString("secret")
	if err := wire.WriteMessage(c, tdp.MsgLogon, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	kind, _, err := wire.ReadMessage(c)
	if err != nil || kind != tdp.MsgLogonOK {
		t.Fatalf("logon: kind=0x%02x err=%v", kind, err)
	}
	return &rawConn{t: t, c: c}
}

func (r *rawConn) request(sql string) {
	r.t.Helper()
	var b wire.Buffer
	b.PutString(sql)
	if err := wire.WriteMessage(r.c, tdp.MsgRunRequest, b.Bytes()); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawConn) read() (byte, []byte, error) { return wire.ReadMessage(r.c) }

func (r *rawConn) close() { _ = r.c.Close() }

// settleGoroutines waits for the goroutine count to drop back to the
// baseline, failing the test if it never does (a leaked pipeline stage,
// stream reader, or server session).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The acceptance e2e: a result ~10x the configured result budget streams
// through the gateway to a slow client while the gateway-wide in-flight
// gauge never exceeds the budget, and is fully reconciled to zero after.
func TestStreamingBackpressureBoundsResultMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large streamed result")
	}
	target := dialect.CloudA()
	const budget = 768 << 10 // ~2.5 TDF batches of BIG rows
	eng := bigTableEngine(t, target, 30) // 27000 rows × ~305 B ≈ 8.2 MiB ≥ 10× budget
	st := newStreamStack(t, target, eng, Config{ResultBudget: budget}, tdp.Options{})

	c := dialRaw(t, st.addr)
	defer c.close()
	c.request("SEL PAD FROM BIG")
	var rows, payloadBytes int
	for {
		kind, payload, err := c.read()
		if err != nil {
			t.Fatalf("read after %d rows: %v", rows, err)
		}
		if kind == tdp.MsgRecord {
			rows++
			payloadBytes += len(payload)
			if rows%2048 == 0 {
				time.Sleep(2 * time.Millisecond) // slow reader: let backpressure engage
			}
		}
		if kind == tdp.MsgFailure {
			r := wire.NewReader(payload)
			t.Fatalf("request failed [%d]: %s", r.U32(), r.String())
		}
		if kind == tdp.MsgEndRequest {
			break
		}
	}
	if rows != 27000 {
		t.Fatalf("rows = %d, want 27000", rows)
	}
	if payloadBytes < 10*budget {
		t.Fatalf("result size %d < 10x budget %d — test data too small to prove anything", payloadBytes, 10*budget)
	}
	m := st.g.MetricsSnapshot()
	if m.StreamedResults != 1 {
		t.Errorf("streamed results = %d, want 1", m.StreamedResults)
	}
	if m.ResultPeakBytes == 0 {
		t.Error("in-flight peak is zero — the accountant never saw the result")
	}
	if m.ResultPeakBytes > budget {
		t.Errorf("in-flight peak %d exceeded the %d budget", m.ResultPeakBytes, budget)
	}
	if got := st.g.ResultInflightBytes(); got != 0 {
		t.Errorf("in-flight gauge = %d after request end, want 0 (leaked reservation)", got)
	}
}

// A client that stops reading entirely is evicted once a frontend write
// stalls past the write deadline; the gauge drains and the gateway stays
// healthy for other sessions.
func TestStreamingSlowClientEvicted(t *testing.T) {
	if testing.Short() {
		t.Skip("stalls for the write deadline")
	}
	target := dialect.CloudA()
	eng := bigTableEngine(t, target, 40) // 64000 rows ≈ 19.5 MiB: larger than socket+bufio capacity
	st := newStreamStack(t, target, eng, Config{ResultBudget: 512 << 10},
		tdp.Options{WriteTimeout: 300 * time.Millisecond})

	c := dialRaw(t, st.addr)
	defer c.close()
	// Shrink the client's receive window so kernel buffering cannot absorb
	// the whole result while the application stalls.
	if tc, ok := c.c.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(32 << 10)
	}
	c.request("SEL PAD FROM BIG")
	// Read a little, then stall far past the write deadline.
	for rows := 0; rows < 100; {
		kind, _, err := c.read()
		if err != nil {
			t.Fatal(err)
		}
		if kind == tdp.MsgRecord {
			rows++
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for st.g.MetricsSnapshot().ClientsEvicted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never evicted")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The server tore the connection down: draining eventually errors (the
	// best-effort 3136 failure parcel may or may not make it through the
	// stalled socket).
	_ = c.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	sawFailure := false
	for {
		kind, payload, err := c.read()
		if err != nil {
			break
		}
		if kind == tdp.MsgFailure {
			r := wire.NewReader(payload)
			if code := int(r.U32()); code != tdp.CodeClientTooSlow {
				t.Errorf("failure code = %d, want %d", code, tdp.CodeClientTooSlow)
			}
			sawFailure = true
		}
	}
	t.Logf("eviction failure parcel delivered: %v", sawFailure)

	// The gauge reconciles and the gateway still serves new sessions.
	deadline = time.Now().Add(10 * time.Second)
	for st.g.ResultInflightBytes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gauge stuck at %d after eviction", st.g.ResultInflightBytes())
		}
		time.Sleep(20 * time.Millisecond)
	}
	c2, err := tdp.Dial(st.addr, "appuser", "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Request("SEL COUNT(*) FROM BIG"); err != nil {
		t.Fatalf("gateway unusable after eviction: %v", err)
	}
}

// Killing the backend connection mid-result yields one clean 3610 failure:
// no transparent retry, no hang, no goroutine leak, and the same session
// keeps working on a replacement backend connection.
func TestStreamingMidStreamBackendDeathFailsCleanly(t *testing.T) {
	target := dialect.CloudA()
	eng := bigTableEngine(t, target, 20) // 8000 rows: several batches
	st := newStreamStack(t, target, eng, Config{}, tdp.Options{})

	c, err := tdp.Dial(st.addr, "appuser", "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Warm the session (logon + backend connect), then measure goroutines.
	if _, err := c.Request("SEL COUNT(*) FROM BIG"); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	execsBefore := st.fd.Execs()
	connectsBefore := st.fd.Connects()

	st.fd.DropAfterBatches(1)
	_, err = c.Request("SEL PAD FROM BIG")
	st.fd.DropAfterBatches(0)
	re, ok := err.(*tdp.RequestError)
	if !ok {
		t.Fatalf("err = %v, want RequestError", err)
	}
	if re.Code != tdp.CodeResultInterrupted {
		t.Fatalf("failure code = %d, want %d (result interrupted)", re.Code, tdp.CodeResultInterrupted)
	}
	if got := st.fd.Execs() - execsBefore; got != 1 {
		t.Fatalf("backend execs for the interrupted request = %d, want 1 — rows reached the client, a retry would duplicate them", got)
	}
	if st.met.Retries() != 0 {
		t.Errorf("retries = %d, want 0", st.met.Retries())
	}
	if m := st.g.MetricsSnapshot(); m.MidstreamFailures != 1 {
		t.Errorf("midstream failures = %d, want 1", m.MidstreamFailures)
	}

	// Same TDP session, next request: the dead backend connection was
	// discarded, a replacement is dialed, and the request succeeds.
	res, err := c.Request("SEL COUNT(*) FROM BIG")
	if err != nil {
		t.Fatalf("session did not survive the mid-stream failure: %v", err)
	}
	if len(res) != 1 || res[0].Rows[0][0].I != 8000 {
		t.Fatalf("recovery result = %+v", res)
	}
	if got := st.fd.Connects() - connectsBefore; got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if got := st.g.ResultInflightBytes(); got != 0 {
		t.Errorf("in-flight gauge = %d, want 0", got)
	}
	settleGoroutines(t, baseline)
}

// A client that vanishes mid-result tears the whole pipeline down — backend
// stream, pipeline stages, accountant reservations, server session — with
// nothing leaked.
func TestStreamingClientDisconnectReleasesEverything(t *testing.T) {
	target := dialect.CloudA()
	eng := bigTableEngine(t, target, 20)
	st := newStreamStack(t, target, eng, Config{ResultBudget: 256 << 10}, tdp.Options{})

	// Warm-up connection proves the stack works, and its teardown settles
	// the baseline.
	warm, err := tdp.Dial(st.addr, "appuser", "secret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Request("SEL COUNT(*) FROM BIG"); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	c := dialRaw(t, st.addr)
	c.request("SEL PAD FROM BIG")
	for rows := 0; rows < 10; {
		kind, _, err := c.read()
		if err != nil {
			t.Fatal(err)
		}
		if kind == tdp.MsgRecord {
			rows++
		}
	}
	c.close() // vanish mid-result

	settleGoroutines(t, baseline)
	deadline := time.Now().Add(5 * time.Second)
	for st.g.ResultInflightBytes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gauge stuck at %d after disconnect", st.g.ResultInflightBytes())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The gateway still serves new sessions.
	c2, err := tdp.Dial(st.addr, "appuser", "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Request("SEL COUNT(*) FROM BIG"); err != nil {
		t.Fatal(err)
	}
}

// The gateway-wide result-memory cap sheds a request whose next batch would
// blow past it, with the saturation code clients already know how to retry.
func TestStreamingResultMemoryCapSheds(t *testing.T) {
	target := dialect.CloudA()
	eng := bigTableEngine(t, target, 20)
	// Cap below a single batch: the first is admitted (an empty gauge always
	// admits, so one huge batch degrades to sequential admission), the
	// second sheds.
	st := newStreamStack(t, target, eng, Config{ResultMemoryCap: 100 << 10}, tdp.Options{})

	c, err := tdp.Dial(st.addr, "appuser", "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Request("SEL PAD FROM BIG")
	re, ok := err.(*tdp.RequestError)
	if !ok || re.Code != tdp.CodeGatewaySaturated {
		t.Fatalf("err = %v, want gateway-saturated failure", err)
	}
	if m := st.g.MetricsSnapshot(); m.ResultShed != 1 {
		t.Errorf("result shed = %d, want 1", m.ResultShed)
	}
	if got := st.g.ResultInflightBytes(); got != 0 {
		t.Errorf("in-flight gauge = %d, want 0", got)
	}
	// The session survives shedding.
	if _, err := c.Request("SEL COUNT(*) FROM BIG"); err != nil {
		t.Fatalf("session did not survive the shed: %v", err)
	}
}

// proxyBackend forwards TCP between the gateway and the backend, severing
// each connection with a FIN after cutAfter backend→gateway bytes — a
// backend process dying mid-result, as the gateway's socket actually sees
// it (bare EOF, not a reset or an error parcel).
func proxyBackend(t *testing.T, target string, cutAfter int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			up, err := ln.Accept()
			if err != nil {
				return
			}
			down, err := net.Dial("tcp", target)
			if err != nil {
				up.Close()
				continue
			}
			go func() {
				buf := make([]byte, 32<<10)
				for {
					n, err := up.Read(buf)
					if n > 0 {
						if _, werr := down.Write(buf[:n]); werr != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
			}()
			go func() {
				var total int
				buf := make([]byte, 32<<10)
				for {
					n, err := down.Read(buf)
					if n > 0 {
						if _, werr := up.Write(buf[:n]); werr != nil {
							break
						}
						total += n
						if total >= cutAfter {
							break // the backend "dies" mid-result
						}
					}
					if err != nil {
						break
					}
				}
				down.Close()
				up.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

// The regression this drives was found at the live wire: killing the
// backend process mid-result used to surface as a SUCCESSFUL EMPTY response
// (the socket EOF leaked through as the stream's clean-end sentinel and the
// statement ended with neither Success nor Failure). It must be a single
// clean failure with the result-interrupted code, no retry, and the session
// must heal on its next request.
func TestStreamingBackendProcessDeathSurfacesFailure(t *testing.T) {
	target := dialect.CloudA()
	eng := bigTableEngine(t, target, 30) // ~8.2 MiB result
	// Sever each backend connection after ~1.5 MiB of response bytes: mid-way
	// through the big result, but far past logon and the warm-up request.
	proxyAddr := proxyBackend(t, serveBackend(t, eng), 1<<20+512<<10)
	st := newStreamStackVia(t, target, eng, proxyAddr, Config{}, tdp.Options{})

	c, err := tdp.Dial(st.addr, "appuser", "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Request("SEL COUNT(*) FROM BIG"); err != nil {
		t.Fatal(err)
	}

	_, err = c.Request("SEL PAD FROM BIG")
	if err == nil {
		t.Fatal("backend death mid-result produced a successful response")
	}
	re, ok := err.(*tdp.RequestError)
	if !ok {
		t.Fatalf("err = %v, want RequestError", err)
	}
	if re.Code != tdp.CodeResultInterrupted {
		t.Fatalf("failure code = %d, want %d (result interrupted)", re.Code, tdp.CodeResultInterrupted)
	}
	if st.met.Retries() != 0 {
		t.Errorf("retries = %d, want 0 — rows reached the client", st.met.Retries())
	}
	if m := st.g.MetricsSnapshot(); m.MidstreamFailures != 1 {
		t.Errorf("midstream failures = %d, want 1", m.MidstreamFailures)
	}
	if got := st.g.ResultInflightBytes(); got != 0 {
		t.Errorf("in-flight gauge = %d, want 0", got)
	}

	// The session heals: the dead connection is replaced (through a fresh
	// proxy connection) and a small request succeeds.
	res, err := c.Request("SEL COUNT(*) FROM BIG")
	if err != nil {
		t.Fatalf("session did not survive the backend death: %v", err)
	}
	if len(res) != 1 || res[0].Rows[0][0].I != 27000 {
		t.Fatalf("recovery result = %+v", res)
	}
}

// parcel is one captured wire parcel of a transcript.
type parcel struct {
	kind    byte
	payload []byte
}

// transcript runs sql and captures every response parcel through the end of
// the request.
func transcript(t *testing.T, c *rawConn, sql string) []parcel {
	t.Helper()
	c.request(sql)
	var out []parcel
	for {
		kind, payload, err := c.read()
		if err != nil {
			t.Fatalf("transcript read for %q: %v", sql, err)
		}
		out = append(out, parcel{kind: kind, payload: append([]byte(nil), payload...)})
		if kind == tdp.MsgEndRequest {
			return out
		}
	}
}

// The streamed and buffered result paths must be wire-indistinguishable:
// replaying both customer workloads through two identically-loaded stacks —
// one streaming, one with streaming disabled — must produce byte-identical
// TDP parcel sequences for every request.
func TestStreamingMatchesBufferedWireTranscripts(t *testing.T) {
	if testing.Short() {
		t.Skip("replays two customer workloads twice")
	}
	target := dialect.CloudA()
	newSide := func(disable bool) (*rawConn, *streamStack) {
		eng := engine.New(target)
		be := eng.NewSession()
		for _, ddl := range customer.SchemaDDL {
			if _, err := be.ExecSQL(ddl); err != nil {
				t.Fatal(err)
			}
		}
		st := newStreamStack(t, target, eng, Config{DisableStreaming: disable}, tdp.Options{})
		c := dialRaw(t, st.addr)
		for _, sql := range customer.GatewaySetup {
			for _, p := range transcript(t, c, sql) {
				if p.kind == tdp.MsgFailure {
					t.Fatalf("setup %q failed: %s", sql, p.payload)
				}
			}
		}
		return c, st
	}
	streamed, streamedStack := newSide(false)
	defer streamed.close()
	buffered, bufferedStack := newSide(true)
	defer buffered.close()

	var queries []string
	for _, spec := range []customer.Spec{customer.Workload1(), customer.Workload2()} {
		spec.Distinct = 120
		spec.Total = spec.Distinct
		for _, q := range customer.Generate(spec) {
			queries = append(queries, q.SQL)
		}
	}
	var compared int
	for _, sql := range queries {
		a := transcript(t, streamed, sql)
		b := transcript(t, buffered, sql)
		if len(a) != len(b) {
			t.Fatalf("parcel count diverged on %q: streamed %d, buffered %d", sql, len(a), len(b))
		}
		for i := range a {
			if a[i].kind != b[i].kind || !bytes.Equal(a[i].payload, b[i].payload) {
				t.Fatalf("parcel %d diverged on %q:\nstreamed 0x%02x %x\nbuffered 0x%02x %x",
					i, sql, a[i].kind, a[i].payload, b[i].kind, b[i].payload)
			}
		}
		compared++
	}
	if compared < 200 {
		t.Fatalf("only %d requests compared — workload generation drifted", compared)
	}
	// The comparison only means something if the two sides really took
	// different result paths.
	if n := streamedStack.g.MetricsSnapshot().StreamedResults; n == 0 {
		t.Fatal("streaming side never streamed a result — both sides ran buffered")
	}
	if n := bufferedStack.g.MetricsSnapshot().StreamedResults; n != 0 {
		t.Fatalf("buffered side streamed %d results despite DisableStreaming", n)
	}
}
