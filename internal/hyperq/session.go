package hyperq

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hyperq/internal/catalog"
	"hyperq/internal/dialect"
	"hyperq/internal/feature"
	"hyperq/internal/fingerprint"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/pool"
	"hyperq/internal/parser"
	"hyperq/internal/serializer"
	"hyperq/internal/sqlast"
	"hyperq/internal/trace"
	"hyperq/internal/transform"
	"hyperq/internal/types"
	"hyperq/internal/wire/tdp"
	"hyperq/internal/wstats"
	"hyperq/internal/xtra"

	"hyperq/internal/binder"
)

// Session is one frontend session: it pairs the client connection with a
// backend session and the per-session gateway state (volatile tables,
// session settings, macro parameters during EXEC).
type Session struct {
	g  *Gateway
	be odbc.Executor

	user     string
	settings map[string]string
	// sessionCat overlays the gateway catalog with session-scoped objects
	// (volatile tables, global-temporary instances, emulation work tables).
	sessionCat *catalog.Catalog
	// macroParams holds bound :name parameter values during EXEC.
	macroParams map[string]types.Datum
	nextTemp    int

	// id is the gateway-unique session identity; sessions with a populated
	// session catalog stamp translation-cache keys under it so overlay
	// objects never leak entries across sessions.
	id      uint64
	logonAt time.Time
	// settingsSig is the canonical rendering of the session settings,
	// embedded in cache keys so settings-dependent translations cannot be
	// shared across differently configured sessions.
	settingsSig string

	// Per-request raw-cache fill state (see runCachedRaw): translateCalls
	// counts pipeline invocations during the current Run; rawPlan holds the
	// request-tier entry candidate when exactly one cache-eligible statement
	// was translated.
	translateCalls int
	rawPlan        *cacheEntry

	// reqCtx carries the current request's deadline and trace into backend
	// execution (sessions process one request at a time); nil outside a
	// request.
	reqCtx context.Context
	// tr is the current request's trace; nil outside a request or when
	// tracing is disabled.
	tr *trace.Trace
	// fw wraps the current request's frontend writer; nil outside a request
	// or for local (non-wire) sessions. When set, Run emits each unit's
	// parcels as it completes and streamable statements bypass result
	// materialization entirely.
	fw *frontWriter
	// compositeDepth > 0 while inside a multi-statement emulation protocol
	// (macro, MERGE, recursive query, SET-table insert); streaming is
	// disabled there to preserve parcel order across sibling statements.
	compositeDepth int
	// Observability counters, read by the /sessions endpoint from other
	// goroutines (hence atomics / atomic.Values).
	obsRequests   int64
	obsStatements int64
	obsCacheHits  int64
	inFlight      int32
	lastActive    int64        // unix nanos of the last request completion
	lastSQL       atomic.Value // string
	lastErr       atomic.Value // string
	// curFP is the current (or most recent) request's statement-shape hash,
	// and midStream flags a streamed result delivery in flight — both read by
	// /sessions from other goroutines.
	curFP     uint64
	midStream int32
	// ro accumulates the current request's workload-statistics observation
	// (written only by the session goroutine; folded into the registry by
	// finishTrace).
	ro reqObs
	// replayLog records the backend DDL that established session-scoped
	// backend state (volatile tables, global-temporary instances, emulation
	// work tables), in execution order. A reconnecting backend driver
	// replays it onto the replacement session so the frontend session
	// survives a backend bounce; the SET overlay itself lives gateway-side
	// and survives by construction. With a pooled backend, a non-empty log
	// also pins the session to its backend connection (see pool.go).
	replayLog []replayEntry
	// txnOpen tracks an open explicit transaction (BT without ET): like the
	// replay log, it pins a pooled backend connection to the session.
	txnOpen bool
	// psc is the per-session parser arena (token slices, identifier
	// interner, AST node slabs), reset at each request boundary. Safe
	// because sessions process one request at a time and nothing retains a
	// request's AST past its Run. Nested parses during a request (macro
	// bodies, view definitions) deliberately bypass it.
	psc parser.Scratch
}

// reqObs is the per-request accumulator behind one wstats observation. It
// lives by value in the Session and is re-zeroed at each request start, so
// steady-state recording allocates nothing.
type reqObs struct {
	hash     uint64
	sql      string
	stageNs  [wstats.NumStages]int64
	tier     wstats.Tier
	feats    feature.Set
	rowsOut  int64
	bytesOut int64
	streamed bool
}

type replayEntry struct {
	// name is the upper-cased session-object name the entry belongs to, so
	// dropping the object also drops its replay statement.
	name string
	sql  string
}

func newSession(g *Gateway, be odbc.Executor, user string) *Session {
	s := &Session{
		g:          g,
		be:         be,
		user:       user,
		settings:   map[string]string{"CHARSET": "ASCII", "DATEFORM": "integerdate"},
		sessionCat: catalog.New(),
		id:         atomic.AddUint64(&g.nextSessionID, 1),
		logonAt:    time.Now(),
	}
	s.settingsSig = settingsSignature(s.settings)
	if ra, ok := be.(odbc.ReconnectAware); ok {
		ra.OnReconnect(s.replaySessionState)
	}
	g.registerSession(s)
	return s
}

// replaySessionState rebuilds backend session state on a replacement
// connection after a transparent reconnect: the recorded session-scoped DDL
// is re-executed in order, so translated statements referencing volatile or
// temporary objects keep working. Contents of session temporaries are not
// replayed — the replacement objects are empty, the same guarantee the
// original warehouse gives after a session reset. The session SET overlay
// needs no backend action: it is gateway-side state and survives the bounce
// untouched.
func (s *Session) replaySessionState(ex odbc.Executor) error {
	for _, e := range s.replayLog {
		// Replay runs inside the request that triggered the reconnect, so it
		// shares that request's deadline and trace.
		if _, err := ex.ExecContext(s.requestCtx(), e.sql); err != nil {
			return fmt.Errorf("replay %s: %w", e.name, err)
		}
	}
	return nil
}

// recordSessionDDL remembers backend DDL that must be replayed onto a
// replacement backend session.
func (s *Session) recordSessionDDL(name, sql string) {
	if sql == "" {
		return
	}
	s.replayLog = append(s.replayLog, replayEntry{name: strings.ToUpper(name), sql: sql})
}

// forgetSessionDDL drops the replay statements of a session object.
func (s *Session) forgetSessionDDL(name string) {
	name = strings.ToUpper(name)
	kept := s.replayLog[:0]
	for _, e := range s.replayLog {
		if e.name != name {
			kept = append(kept, e)
		}
	}
	s.replayLog = kept
}

// requestCtx is the context bounding the current request's backend work.
func (s *Session) requestCtx() context.Context {
	if s.reqCtx != nil {
		return s.reqCtx
	}
	//hyperqlint:ignore ctxexec fallback for backend work outside any request (logoff cleanup); Run installs the real request context
	return context.Background()
}

// settingsSignature renders the session settings deterministically.
func settingsSignature(settings map[string]string) string {
	keys := make([]string, 0, len(settings))
	for k := range settings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(settings[k])
		b.WriteByte(';')
	}
	return b.String()
}

// Table implements binder.Resolver with the session overlay.
func (s *Session) Table(name string) (*catalog.Table, bool) {
	if t, ok := s.sessionCat.Table(name); ok {
		return t, true
	}
	return s.g.cat.Table(name)
}

// View implements binder.Resolver.
func (s *Session) View(name string) (*catalog.View, bool) {
	return s.g.cat.View(name)
}

var _ binder.Resolver = (*Session)(nil)

// Close implements tdp.SessionHandler.
func (s *Session) Close() {
	s.g.dropSession(s.id)
	_ = s.be.Close()
}

// Request implements tdp.SessionHandler: the full per-request pipeline.
// Response parcels are emitted as statements complete (and, on the
// streaming path, as rows arrive), so the paragraph below on failures is a
// wire-visible contract: a request that fails partway may deliver earlier
// statements' parcels before the failure parcel; the client discards them
// (tdp.Client already does).
func (s *Session) Request(sql string, w tdp.ResponseWriter) error {
	fw := &frontWriter{s: s, w: w}
	s.fw = fw
	results, err := s.Run(sql)
	s.fw = nil
	if err != nil {
		var fwe *frontWriteError
		if errors.As(err, &fwe) {
			if fwe.Timeout() {
				// Slow-client eviction: the client stalled past the write
				// deadline while results were in flight. Best-effort failure
				// parcel (the socket buffer may still have room for a few
				// bytes), then tear the connection down — the returned error
				// makes the tdp server drop the connection, which releases
				// the session and its pool lease.
				atomic.AddInt64(&s.g.metrics.clientsEvicted, 1)
				_ = w.Failure(tdp.CodeClientTooSlow, "client too slow: result delivery stalled past the write deadline; session evicted")
			}
			return fwe.err
		}
		re, ok := err.(*RequestError)
		if !ok {
			re = failf(tdp.CodeSyntaxError, "%v", err)
		}
		return w.Failure(re.Code, re.Message)
	}
	// Run already emitted everything through fw; this pass only covers
	// results a future path might leave unsent (writeResults skips sent).
	if werr := fw.writeResults(results); werr != nil {
		return werr
	}
	return nil
}

// Run processes a request string and returns per-statement results.
func (s *Session) Run(sql string) (out []*FrontResult, err error) {
	reqStart := time.Now()
	tr := s.g.startTrace(s, sql)
	s.tr = tr
	atomic.AddInt32(&s.inFlight, 1)
	s.lastSQL.Store(sql)
	s.ro = reqObs{sql: sql}
	if s.g.wstats != nil || tr != nil {
		s.ro.hash = fingerprint.TemplateHash(sql)
		atomic.StoreUint64(&s.curFP, s.ro.hash)
	}
	//hyperqlint:ignore ctxexec Run is the request root: the per-request context is minted here
	ctx := context.Background()
	cancel := func() {}
	if t := s.g.cfg.BackendTimeout; t > 0 {
		ctx, cancel = context.WithTimeout(ctx, t)
	}
	s.reqCtx = trace.NewContext(ctx, tr)
	defer func() {
		s.maybeUnpinBackend()
		cancel()
		s.reqCtx = nil
		s.tr = nil
		atomic.AddInt32(&s.inFlight, -1)
		s.g.finishTrace(s, tr, reqStart, err)
	}()
	rec := &feature.Recorder{}
	if cached, done, cerr := s.runCachedRaw(sql, rec); done {
		if cerr == nil && s.fw != nil {
			if werr := s.fw.writeResults(cached); werr != nil {
				return nil, werr
			}
		}
		return cached, cerr
	}
	s.translateCalls = 0
	s.rawPlan = nil
	sp := tr.Start("parse")
	t0 := time.Now()
	// The previous request's AST is dead by now; rewind the arena and parse
	// into it.
	s.psc.Reset()
	stmts, perr := parser.ParseWith(sql, parser.Teradata, rec, &s.psc)
	d := time.Since(t0)
	atomic.AddInt64(&s.g.metrics.translateNs, int64(d))
	s.g.stages.Observe("parse", d)
	s.ro.stageNs[wstats.StageParse] += int64(d)
	sp.End()
	if perr != nil {
		return nil, failf(tdp.CodeSyntaxError, "%v", perr) // 3706: syntax error
	}
	if len(stmts) > 1 {
		rec.Record(feature.MultiStatement)
	}
	// §4.3 performance transformation: contiguous single-row inserts merge
	// into one backend statement; responses are synthesized per original
	// statement below.
	units := batchDML(stmts)
	for _, unit := range units {
		results, err := s.execStatement(unit.stmt, rec)
		if err != nil {
			s.finishRequest(rec)
			return nil, err
		}
		unitResults := results
		if unit.perStmtRows != nil {
			unitResults = make([]*FrontResult, 0, len(unit.perStmtRows))
			for _, n := range unit.perStmtRows {
				unitResults = append(unitResults, &FrontResult{Activity: int64(n), Command: "INSERT"})
			}
		}
		out = append(out, unitResults...)
		// With a frontend attached, each unit's parcels go out as the unit
		// completes — a streamed later unit must not overtake an earlier
		// unit's buffered response.
		if s.fw != nil {
			if werr := s.fw.writeResults(unitResults); werr != nil {
				s.finishRequest(rec)
				return nil, werr
			}
		}
		atomic.AddInt64(&s.g.metrics.statements, 1)
		atomic.AddInt64(&s.obsStatements, 1)
	}
	s.fillRawEntry(sql, units, rec)
	s.finishRequest(rec)
	return out, nil
}

// runCachedRaw is the request-tier cache fast path: a byte-identical repeat
// of a previously translated single-statement request skips parsing and
// fingerprinting entirely and replays the stored translation. done reports
// whether the request was served (successfully or not) from the cache.
func (s *Session) runCachedRaw(sql string, rec *feature.Recorder) (out []*FrontResult, done bool, err error) {
	cache := s.g.cache
	if cache == nil {
		return nil, false, nil
	}
	sp := s.tr.Start("cache")
	t0 := time.Now()
	e := cache.get(s.cacheKey("R", sql))
	d := time.Since(t0)
	atomic.AddInt64(&s.g.metrics.translateNs, int64(d))
	s.g.stages.Observe("cache", d)
	s.ro.stageNs[wstats.StageCache] += int64(d)
	if e == nil {
		sp.Set("outcome", "raw-miss")
		sp.End()
		return nil, false, nil
	}
	sp.Set("outcome", "raw-hit")
	sp.End()
	s.tr.SetCache("raw-hit")
	s.ro.tier = wstats.TierExactHit
	atomic.AddInt64(&s.g.metrics.cacheHits, 1)
	atomic.AddInt64(&s.obsCacheHits, 1)
	rec.Merge(e.feats)
	out, err = s.execTranslated(e.sql, e.cols, func(string) string { return e.cmd })
	if err == nil {
		atomic.AddInt64(&s.g.metrics.statements, 1)
		atomic.AddInt64(&s.obsStatements, 1)
	} else {
		out = nil
	}
	s.finishRequest(rec)
	return out, true, err
}

// fillRawEntry promotes the just-translated request into the request tier
// when it is a single cache-eligible statement (no batching, no DDL, no
// session-dependent translation: exactly one pipeline invocation that
// produced a fingerprint-tier plan).
func (s *Session) fillRawEntry(sql string, units []execUnit, rec *feature.Recorder) {
	cache := s.g.cache
	if cache == nil || s.rawPlan == nil || s.translateCalls != 1 ||
		len(units) != 1 || units[0].perStmtRows != nil {
		return
	}
	e := s.rawPlan
	s.rawPlan = nil
	e.key = s.cacheKey("R", sql)
	// Request-level features include parse-stage recordings, so a raw hit
	// replays exactly what the full pipeline would have recorded.
	e.feats = rec.Set()
	e.size = e.entrySize()
	if evicted := cache.put(e); evicted > 0 {
		atomic.AddInt64(&s.g.metrics.cacheEvict, int64(evicted))
	}
}

// cacheKey builds a translation-cache key. Besides the statement body it
// embeds everything a cached translation depends on: the tier, the target
// dialect, the global catalog version, the session-overlay stamp, and the
// session settings. Sessions whose overlay catalog has ever changed get
// session-private keys (overlay objects can shadow global ones through
// views, invisible to the statement-level table check).
func (s *Session) cacheKey(tier, body string) string {
	overlay := "0"
	if v := s.sessionCat.Version(); v != 0 {
		overlay = strconv.FormatUint(s.id, 10) + "." + strconv.FormatUint(v, 10)
	}
	return tier + "|" + s.g.cfg.Target.Name +
		"|" + strconv.FormatUint(s.g.cat.Version(), 10) +
		"|" + overlay +
		"|" + s.settingsSig +
		"|" + body
}

func (s *Session) finishRequest(rec *feature.Recorder) {
	atomic.AddInt64(&s.g.metrics.requests, 1)
	s.ro.feats = rec.Set()
	if s.g.cfg.Stats != nil {
		s.g.cfg.Stats.Observe(s.ro.feats)
	}
}

// execStatement dispatches one parsed statement: features the target lacks
// go through emulation; everything else runs the translate pipeline.
func (s *Session) execStatement(stmt sqlast.Statement, rec *feature.Recorder) ([]*FrontResult, error) {
	switch t := stmt.(type) {
	case *sqlast.ExplainStmt:
		return s.execExplain(t, rec)
	case *sqlast.HelpStmt:
		return s.execHelp(t)
	case *sqlast.SetSessionStmt:
		s.settings[strings.ToUpper(t.Option)] = t.Value
		s.settingsSig = settingsSignature(s.settings)
		return []*FrontResult{{Command: "SET SESSION"}}, nil
	case *sqlast.CreateMacroStmt:
		return s.execCreateMacro(t)
	case *sqlast.DropMacroStmt:
		if err := s.g.cat.DropMacro(t.Name); err != nil {
			return nil, failf(tdp.CodeMacroNotFound, "%v", err) // macro does not exist
		}
		return []*FrontResult{{Command: "DROP MACRO"}}, nil
	case *sqlast.ExecStmt:
		return s.execMacro(t, rec)
	case *sqlast.MergeStmt:
		return s.execMerge(t, rec)
	case *sqlast.CreateViewStmt:
		return s.execCreateView(t, rec)
	case *sqlast.DropViewStmt:
		if err := s.g.cat.DropView(t.Name); err != nil {
			return nil, failf(tdp.CodeObjectNotFound, "%v", err)
		}
		return []*FrontResult{{Command: "DROP VIEW"}}, nil
	case *sqlast.CollectStatsStmt:
		// Translation class: eliminated entirely on self-tuning targets.
		return []*FrontResult{{Command: "COLLECT STATISTICS"}}, nil
	case *sqlast.TxnStmt:
		return s.execTxn(t, rec)
	case *sqlast.CreateTableStmt:
		return s.execCreateTable(t, rec)
	case *sqlast.DropTableStmt:
		return s.execDropTable(t, rec)
	case *sqlast.InsertStmt:
		if tbl, ok := s.Table(t.Table); ok && tbl.Set {
			rec.Record(feature.SetTable)
			return s.execSetTableInsert(t, tbl, rec)
		}
		return s.translateAndRun(stmt, rec)
	case *sqlast.SelectStmt:
		if t.Query.With != nil && t.Query.With.Recursive && !s.g.cfg.Target.Supports(dialect.CapRecursive) {
			return s.emulateRecursive(t, rec)
		}
		return s.translateAndRun(stmt, rec)
	default:
		return s.translateAndRun(stmt, rec)
	}
}

// translateAndRun performs the paper's core pipeline for one statement:
// translate (bind → binding-stage transform → serialize, consulting the
// translation cache) → execute → convert.
func (s *Session) translateAndRun(stmt sqlast.Statement, rec *feature.Recorder) ([]*FrontResult, error) {
	sql, frontCols, err := s.translateStatement(stmt, rec)
	if err != nil {
		return nil, err
	}
	if sql == "" {
		// Statement eliminated by translation.
		return []*FrontResult{{Command: "OK"}}, nil
	}
	return s.execTranslated(sql, frontCols, func(backend string) string {
		return commandName(stmt, backend)
	})
}

// cacheableKind reports whether a statement kind is eligible for the
// translation cache at all. DDL and emulated constructs always take the
// full pipeline: they are rare, side-effecting, and mutate the very
// metadata the cache keys on.
func cacheableKind(stmt sqlast.Statement) bool {
	switch stmt.(type) {
	case *sqlast.SelectStmt, *sqlast.InsertStmt, *sqlast.UpdateStmt, *sqlast.DeleteStmt:
		return true
	}
	return false
}

// refsSessionObject reports whether any referenced table name resolves in
// the session catalog (volatile tables, global-temporary instances,
// emulation work tables): such translations are session-state-dependent.
func (s *Session) refsSessionObject(tables []string) bool {
	for _, name := range tables {
		if _, ok := s.sessionCat.Table(name); ok {
			return true
		}
	}
	return false
}

// translateStatement produces the backend SQL text and frontend column
// metadata for one statement, consulting the translation cache. An empty
// SQL result means translation eliminated the statement.
func (s *Session) translateStatement(stmt sqlast.Statement, rec *feature.Recorder) (string, []xtra.Col, error) {
	s.translateCalls++
	t0 := time.Now()
	defer func() {
		atomic.AddInt64(&s.g.metrics.translateNs, int64(time.Since(t0)))
	}()
	cache := s.g.cache
	if cache == nil || !cacheableKind(stmt) {
		return s.bindTransformSerialize(stmt, rec, false)
	}
	if s.macroParams != nil {
		// Macro scope: statement text contains :params bound per EXEC.
		atomic.AddInt64(&s.g.metrics.cacheBypass, 1)
		s.tr.SetCache("bypass")
		s.ro.tier = wstats.TierBypass
		return s.bindTransformSerialize(stmt, rec, false)
	}
	csp := s.tr.Start("cache")
	tc := time.Now()
	fp := fingerprint.Statement(stmt)
	if !fp.Cacheable || s.refsSessionObject(fp.Tables) {
		atomic.AddInt64(&s.g.metrics.cacheBypass, 1)
		dc := time.Since(tc)
		s.g.stages.Observe("cache", dc)
		s.ro.stageNs[wstats.StageCache] += int64(dc)
		csp.Set("outcome", "bypass")
		csp.End()
		s.tr.SetCache("bypass")
		s.ro.tier = wstats.TierBypass
		return s.bindTransformSerialize(stmt, rec, false)
	}
	key := s.cacheKey("F", fp.Key)
	if e := cache.get(key); e != nil && (!e.exact || fingerprint.LitSigEqual(e.litsig, fp.Literals)) {
		atomic.AddInt64(&s.g.metrics.cacheHits, 1)
		atomic.AddInt64(&s.obsCacheHits, 1)
		rec.Merge(e.feats)
		sql := e.tpl.Instantiate(fp.Literals)
		dc := time.Since(tc)
		s.g.stages.Observe("cache", dc)
		s.ro.stageNs[wstats.StageCache] += int64(dc)
		csp.Set("outcome", "hit")
		csp.End()
		s.tr.SetCache("hit")
		s.ro.tier = wstats.TierFingerprintHit
		s.noteRawCandidate(sql, e.cols, commandName(stmt, ""), e.feats)
		return sql, e.cols, nil
	}
	atomic.AddInt64(&s.g.metrics.cacheMisses, 1)
	dc := time.Since(tc)
	s.g.stages.Observe("cache", dc)
	s.ro.stageNs[wstats.StageCache] += int64(dc)
	csp.Set("outcome", "miss")
	csp.End()
	s.tr.SetCache("miss")
	s.ro.tier = wstats.TierMiss
	// Translate with an inner recorder so the cache entry can replay the
	// statement's features on later hits.
	inner := &feature.Recorder{}
	marked, cols, err := s.bindTransformSerialize(stmt, inner, true)
	rec.Merge(inner.Set())
	if err != nil {
		return "", nil, err
	}
	if marked == "" {
		// Statement eliminated by translation; nothing worth caching.
		return "", cols, nil
	}
	tpl, complete := fingerprint.ParseTemplate(marked, len(fp.Literals))
	if !tpl.Valid() {
		// Marker parsing failed (a non-lifted literal contained a NUL
		// byte): re-serialize without lifting and skip caching.
		sql, _, err := s.bindTransformSerialize(stmt, &feature.Recorder{}, false)
		return sql, cols, err
	}
	e := &cacheEntry{key: key, tpl: tpl, cols: cols, cmd: commandName(stmt, ""), feats: inner.Set()}
	if !complete {
		// A lifted literal's value was consumed by translation (folding,
		// value-dependent binding): the text is only valid for these exact
		// values.
		e.exact = true
		e.litsig = fingerprint.LitSig(fp.Literals)
	}
	e.size = e.entrySize()
	if evicted := cache.put(e); evicted > 0 {
		atomic.AddInt64(&s.g.metrics.cacheEvict, int64(evicted))
	}
	sql := tpl.Instantiate(fp.Literals)
	s.noteRawCandidate(sql, cols, e.cmd, inner.Set())
	return sql, cols, nil
}

// noteRawCandidate remembers the first fingerprint-tier translation of the
// current request as a request-tier fill candidate (committed by
// fillRawEntry once the whole request is known to qualify).
func (s *Session) noteRawCandidate(sql string, cols []xtra.Col, cmd string, feats feature.Set) {
	if s.translateCalls == 1 {
		s.rawPlan = &cacheEntry{sql: sql, cols: cols, cmd: cmd, feats: feats}
	} else {
		s.rawPlan = nil
	}
}

// bindTransformSerialize runs bind → binding-stage transform → serialize.
// With lift set, serialized output carries literal placeholders
// (fingerprint markers) instead of the lifted literal values.
func (s *Session) bindTransformSerialize(stmt sqlast.Statement, rec *feature.Recorder, lift bool) (string, []xtra.Col, error) {
	spb := s.tr.Start("bind")
	tb := time.Now()
	b := binder.New(s, parser.Teradata, rec)
	if s.macroParams != nil {
		b.SetParams(s.macroParams)
	}
	bound, err := b.Bind(stmt)
	db := time.Since(tb)
	s.g.stages.Observe("bind", db)
	s.ro.stageNs[wstats.StageBind] += int64(db)
	spb.End()
	if err != nil {
		return "", nil, failf(tdp.CodeSemanticError, "%v", err) // semantic error
	}
	spt := s.tr.Start("transform")
	tt := time.Now()
	ctx := transform.NewContext(nil, rec, b.MaxColumnID())
	mid, err := transform.BindingStage().Statement(bound, ctx)
	dt := time.Since(tt)
	s.g.stages.Observe("transform", dt)
	s.ro.stageNs[wstats.StageTransform] += int64(dt)
	if spt != nil {
		for _, id := range ctx.Fired().IDs() {
			spt.Set("feature", feature.Lookup(id).Name)
		}
	}
	spt.End()
	if err != nil {
		return "", nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	sps := s.tr.Start("serialize")
	ts := time.Now()
	ser := serializer.New(s.g.cfg.Target, rec)
	if lift {
		ser.LiftLiterals()
	}
	sql, err := ser.Serialize(mid)
	ds := time.Since(ts)
	s.g.stages.Observe("serialize", ds)
	s.ro.stageNs[wstats.StageSerialize] += int64(ds)
	sps.End()
	if err != nil {
		return "", nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	var frontCols []xtra.Col
	if q, ok := mid.(*xtra.Query); ok {
		frontCols = q.Root.Columns()
	}
	return sql, frontCols, nil
}

// execTranslated executes translated SQL on the backend and converts the
// results to the frontend representation. cmd maps the backend command tag
// to the frontend activity name. Result-set statements with a frontend
// attached take the streaming pipeline (bounded memory, backpressure to the
// backend); everything else — and everything inside emulation composites —
// keeps the materializing TDF-store path.
func (s *Session) execTranslated(sql string, frontCols []xtra.Col, cmd func(string) string) ([]*FrontResult, error) {
	if s.streamable(frontCols) {
		if se, ok := s.be.(odbc.StreamExecutor); ok {
			return s.execStreamed(se, sql, frontCols, cmd)
		}
	}
	s.tr.AddTranslated(sql)
	sp := s.tr.Start("execute")
	sp.Set("sql", sql)
	t1 := time.Now()
	backendResults, err := s.be.ExecContext(s.requestCtx(), sql)
	d := time.Since(t1)
	atomic.AddInt64(&s.g.metrics.executeNs, int64(d))
	s.g.stages.Observe("execute", d)
	s.ro.stageNs[wstats.StageExecute] += int64(d)
	sp.End()
	if err != nil {
		return nil, mapBackendError(err)
	}
	// Result conversion back to the frontend representation.
	csp := s.tr.Start("convert")
	t2 := time.Now()
	defer func() {
		dc := time.Since(t2)
		atomic.AddInt64(&s.g.metrics.convertNs, int64(dc))
		s.g.stages.Observe("convert", dc)
		s.ro.stageNs[wstats.StageConvert] += int64(dc)
		csp.End()
	}()
	var out []*FrontResult
	for _, br := range backendResults {
		fr := &FrontResult{Activity: br.Affected, Command: cmd(br.Command)}
		if br.Cols != nil {
			if frontCols == nil {
				return nil, failf(tdp.CodeObjectNotFound, "unexpected result set from backend")
			}
			var bb int64
			for _, b := range br.Batches {
				bb += int64(b.EncodedSize())
			}
			cols, rows, err := s.convertResult(frontCols, br)
			if err != nil {
				return nil, failf(tdp.CodeObjectNotFound, "result conversion: %v", err)
			}
			atomic.AddInt64(&s.g.metrics.bufferedResults, 1)
			atomic.AddInt64(&s.g.metrics.bufferedBytes, bb)
			s.ro.rowsOut += int64(len(rows))
			s.ro.bytesOut += bb
			fr.Cols = cols
			fr.Rows = rows
			fr.Activity = int64(len(rows))
		}
		out = append(out, fr)
	}
	return out, nil
}

// mapBackendError converts backend/driver failures into the frontend codes
// an unmodified client application expects: CodeBackendUnavailable for
// fail-fast circuit rejections ("backend temporarily unavailable, resubmit
// later"), CodeWriteStateUnknown for requests lost to a connection failure
// ("request rolled back, resubmit" — including non-idempotent writes the
// gateway refused to retry and replica divergence), CodeObjectNotFound for
// everything else (the generic request failure the gateway already used).
func mapBackendError(err error) *RequestError {
	switch {
	case errors.Is(err, pool.ErrSaturated), errors.Is(err, pool.ErrAcquireTimeout):
		// CodeGatewaySaturated: the gateway could not obtain a backend
		// connection in time — resubmit later.
		return failf(tdp.CodeGatewaySaturated, "%v", err)
	case errors.Is(err, odbc.ErrBreakerOpen):
		return failf(tdp.CodeBackendUnavailable, "backend temporarily unavailable: %v", err)
	case errors.Is(err, odbc.ErrMaybeApplied):
		return failf(tdp.CodeWriteStateUnknown, "%v", err)
	case errors.Is(err, odbc.ErrReplicaDivergent):
		return failf(tdp.CodeWriteStateUnknown, "%v", err)
	case odbc.Transient(err):
		return failf(tdp.CodeWriteStateUnknown, "backend connection failure: %v", err)
	}
	return failf(tdp.CodeObjectNotFound, "%v", err)
}

// commandName maps the backend command tag to the frontend activity name.
func commandName(stmt sqlast.Statement, backend string) string {
	switch stmt.(type) {
	case *sqlast.SelectStmt:
		return "SELECT"
	case *sqlast.InsertStmt:
		return "INSERT"
	case *sqlast.UpdateStmt:
		return "UPDATE"
	case *sqlast.DeleteStmt:
		return "DELETE"
	case *sqlast.CreateTableStmt:
		return "CREATE TABLE"
	case *sqlast.DropTableStmt:
		return "DROP TABLE"
	case *sqlast.TxnStmt:
		return backend
	}
	return backend
}

func (s *Session) execCreateMacro(t *sqlast.CreateMacroStmt) ([]*FrontResult, error) {
	m := &catalog.Macro{Name: t.Name, Body: t.Body}
	for _, p := range t.Params {
		pt, err := p.Type.Resolve()
		if err != nil {
			return nil, failf(tdp.CodeSemanticError, "macro parameter %s: %v", p.Name, err)
		}
		m.Params = append(m.Params, catalog.MacroParam{Name: p.Name, Type: pt})
	}
	// Validate the body parses in the source dialect.
	if _, err := parser.Parse(t.Body, parser.Teradata, nil); err != nil {
		return nil, failf(tdp.CodeSyntaxError, "macro body: %v", err)
	}
	if err := s.g.cat.CreateMacro(m, t.Replace); err != nil {
		return nil, failf(tdp.CodeObjectExists, "%v", err)
	}
	return []*FrontResult{{Command: "CREATE MACRO"}}, nil
}

// execMacro emulates EXEC: the macro body is parsed, parameters are bound,
// and each inner statement runs through the normal pipeline — "macro code
// execution in the mid-tier" (Table 2).
func (s *Session) execMacro(t *sqlast.ExecStmt, rec *feature.Recorder) ([]*FrontResult, error) {
	m, ok := s.g.cat.Macro(t.Macro)
	if !ok {
		return nil, failf(tdp.CodeMacroNotFound, "macro %s does not exist", t.Macro)
	}
	if len(t.Args) != len(m.Params) {
		return nil, failf(tdp.CodeBadMacroArgument, "macro %s takes %d parameters, got %d", m.Name, len(m.Params), len(t.Args))
	}
	params := make(map[string]types.Datum, len(m.Params))
	for i, arg := range t.Args {
		d, err := constValue(arg)
		if err != nil {
			return nil, failf(tdp.CodeBadMacroArgument, "macro argument %d: %v", i+1, err)
		}
		cast, err := types.Cast(d, m.Params[i].Type)
		if err != nil {
			return nil, failf(tdp.CodeBadMacroArgument, "macro argument %d: %v", i+1, err)
		}
		params[strings.ToUpper(m.Params[i].Name)] = cast
	}
	stmts, err := parser.Parse(m.Body, parser.Teradata, rec)
	if err != nil {
		return nil, failf(tdp.CodeSyntaxError, "macro body: %v", err)
	}
	// Bind parameters for the nested statements (restored afterwards so
	// nested EXECs do not leak scopes).
	saved := s.macroParams
	s.macroParams = params
	defer func() { s.macroParams = saved }()
	// A macro's inner statements answer as one composite response; streaming
	// an inner result would reorder parcels.
	s.enterComposite()
	defer s.leaveComposite()
	var out []*FrontResult
	for _, stmt := range stmts {
		results, err := s.execStatement(stmt, rec)
		if err != nil {
			return nil, err
		}
		out = append(out, results...)
	}
	return out, nil
}

// constValue evaluates a literal macro argument.
func constValue(e sqlast.Expr) (types.Datum, error) {
	switch x := e.(type) {
	case *sqlast.Const:
		return x.Val, nil
	case *sqlast.UnaryExpr:
		if x.Op == sqlast.UnaryNeg {
			inner, err := constValue(x.X)
			if err != nil {
				return types.Datum{}, err
			}
			return types.Neg(inner)
		}
	}
	return types.Datum{}, fmt.Errorf("macro arguments must be literals")
}

func (s *Session) execCreateView(t *sqlast.CreateViewStmt, rec *feature.Recorder) ([]*FrontResult, error) {
	b := binder.New(s, parser.Teradata, rec)
	bound, err := b.Bind(t)
	if err != nil {
		return nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	cv := bound.(*xtra.CreateView)
	if cv.Replace {
		_ = s.g.cat.DropView(cv.Def.Name)
	}
	if err := s.g.cat.CreateView(cv.Def); err != nil {
		return nil, failf(tdp.CodeObjectExists, "%v", err)
	}
	return []*FrontResult{{Command: "CREATE VIEW"}}, nil
}

func (s *Session) execCreateTable(t *sqlast.CreateTableStmt, rec *feature.Recorder) ([]*FrontResult, error) {
	// Global temporary tables on targets without the capability are
	// emulated with per-session temporary tables: the definition lives in
	// the gateway session catalog, the contents in a backend TEMP table.
	if t.GlobalTemporary && !s.g.cfg.Target.Supports(dialect.CapGlobalTempTables) {
		rec.Record(feature.GlobalTempTable)
		lowered := *t
		lowered.GlobalTemporary = false
		lowered.Volatile = true
		t = &lowered
	}
	// Session-scoped tables are backend-session state: pin a pooled backend
	// connection before the DDL runs so the table and every later statement
	// share one connection.
	if t.Volatile || t.GlobalTemporary {
		if err := s.pinBackend(); err != nil {
			return nil, err
		}
	}
	// Translate and execute in two steps (rather than translateAndRun) so
	// the backend DDL text is available for the session replay log below.
	sql, frontCols, err := s.translateStatement(t, rec)
	if err != nil {
		return nil, err
	}
	var results []*FrontResult
	if sql == "" {
		// Statement eliminated by translation.
		results = []*FrontResult{{Command: "OK"}}
	} else if results, err = s.execTranslated(sql, frontCols, func(backend string) string {
		return commandName(t, backend)
	}); err != nil {
		return nil, err
	}
	// Mirror the definition in the gateway catalog so later binds resolve;
	// session-scoped kinds live in the session overlay.
	b := binder.New(s, parser.Teradata, nil)
	bound, err := b.Bind(t)
	if err != nil {
		return nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	def := bound.(*xtra.CreateTable).Def
	target := s.g.cat
	if def.Kind != catalog.KindPersistent {
		target = s.sessionCat
		// Session-scoped backend objects vanish with the backend session;
		// record their DDL so a reconnecting driver can rebuild them.
		s.recordSessionDDL(def.Name, sql)
	}
	if err := target.CreateTable(def); err != nil && !t.IfNotExists {
		return nil, failf(tdp.CodeObjectExists, "%v", err)
	}
	return results, nil
}

func (s *Session) execDropTable(t *sqlast.DropTableStmt, rec *feature.Recorder) ([]*FrontResult, error) {
	results, err := s.translateAndRun(t, rec)
	if err != nil {
		return nil, err
	}
	if _, ok := s.sessionCat.Table(t.Name); ok {
		_ = s.sessionCat.DropTable(t.Name)
		s.forgetSessionDDL(t.Name)
	} else if err := s.g.cat.DropTable(t.Name); err != nil && !t.IfExists {
		return nil, failf(tdp.CodeObjectNotFound, "%v", err)
	}
	return results, nil
}

func (s *Session) execHelp(t *sqlast.HelpStmt) ([]*FrontResult, error) {
	strCol := func(name string) tdp.ColumnDef {
		return tdp.ColumnDef{Name: name, Type: types.VarChar(128)}
	}
	switch t.What {
	case "SESSION":
		res := &FrontResult{
			Cols:    []tdp.ColumnDef{strCol("Setting"), strCol("Value")},
			Command: "HELP",
		}
		add := func(k, v string) {
			res.Rows = append(res.Rows, []types.Datum{types.NewString(k), types.NewString(v)})
		}
		add("User Name", s.user)
		add("Account Name", s.user)
		add("Logon Date", s.logonAt.Format("06/01/02"))
		add("Default Database", "hyperq")
		add("Transaction Semantics", "Teradata")
		add("Current DateForm", s.settings["DATEFORM"])
		add("Session Character Set", s.settings["CHARSET"])
		add("Virtualized Target", s.g.cfg.Target.Name)
		res.Activity = int64(len(res.Rows))
		return []*FrontResult{res}, nil
	case "TABLE":
		tbl, ok := s.Table(t.Name)
		if !ok {
			return nil, failf(tdp.CodeObjectNotFound, "table %s does not exist", t.Name)
		}
		res := &FrontResult{
			Cols:    []tdp.ColumnDef{strCol("Column Name"), strCol("Type"), strCol("Nullable")},
			Command: "HELP",
		}
		for _, c := range tbl.Columns {
			nullable := "Y"
			if c.NotNull {
				nullable = "N"
			}
			res.Rows = append(res.Rows, []types.Datum{
				types.NewString(c.Name), types.NewString(c.Type.String()), types.NewString(nullable),
			})
		}
		res.Activity = int64(len(res.Rows))
		return []*FrontResult{res}, nil
	}
	return nil, failf(tdp.CodeSyntaxError, "unsupported HELP %s", t.What)
}

// execExplain answers EXPLAIN <request> from the gateway: it runs the full
// translation pipeline but returns the generated SQL-B text, the XTRA plan
// and the rewrite features instead of executing — the diagnostics a
// replatforming engineer uses to inspect what the virtualization layer does.
func (s *Session) execExplain(t *sqlast.ExplainStmt, rec *feature.Recorder) ([]*FrontResult, error) {
	inner := &feature.Recorder{}
	b := binder.New(s, parser.Teradata, inner)
	if s.macroParams != nil {
		b.SetParams(s.macroParams)
	}
	bound, err := b.Bind(t.Stmt)
	if err != nil {
		return nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	ctx := transform.NewContext(nil, inner, b.MaxColumnID())
	mid, err := transform.BindingStage().Statement(bound, ctx)
	if err != nil {
		return nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	sql, err := serializer.New(s.g.cfg.Target, inner).Serialize(mid)
	if err != nil {
		return nil, failf(tdp.CodeSemanticError, "%v", err)
	}
	res := &FrontResult{
		Cols:    []tdp.ColumnDef{{Name: "Explanation", Type: types.VarChar(4096)}},
		Command: "EXPLAIN",
	}
	addLine := func(line string) {
		res.Rows = append(res.Rows, []types.Datum{types.NewString(line)})
	}
	addLine("Target system: " + s.g.cfg.Target.Name)
	if sql == "" {
		addLine("Request is eliminated by translation; no backend statement is issued.")
	} else {
		addLine("Translated request:")
		addLine("  " + sql)
	}
	if q, ok := mid.(*xtra.Query); ok {
		addLine("XTRA plan:")
		for _, line := range strings.Split(strings.TrimRight(xtra.Format(q.Root), "\n"), "\n") {
			addLine("  " + line)
		}
	}
	if fs := inner.Set(); !fs.Empty() {
		addLine("Rewrites applied:")
		for _, id := range fs.IDs() {
			info := feature.Lookup(id)
			addLine(fmt.Sprintf("  [%s] %s (%s)", info.Class, info.Name, info.Component))
		}
	}
	res.Activity = int64(len(res.Rows))
	rec.Set() // EXPLAIN itself records nothing for workload statistics
	return []*FrontResult{res}, nil
}
