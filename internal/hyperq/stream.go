package hyperq

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hyperq/internal/odbc"
	"hyperq/internal/tdf"
	"hyperq/internal/types"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/wire/tdp"
	"hyperq/internal/xtra"
)

// frontWriter wraps the request's tdp.ResponseWriter so both the streaming
// pipeline and the buffered emitter share one code path, every write error
// is wrapped as *frontWriteError (distinguishing frontend faults from
// backend faults in the session's error handling), and the session knows
// whether any row of the current request has reached the client — the point
// past which backend failures become non-retryable.
type frontWriter struct {
	s *Session
	w tdp.ResponseWriter
	// rowsSent: at least one row parcel of the current request was handed to
	// the frontend writer.
	rowsSent bool
}

// frontWriteError marks a failure writing to the client connection. The
// request cannot produce further output; the session tears the connection
// down instead of emitting a failure parcel nobody can read.
type frontWriteError struct {
	err error
}

func (e *frontWriteError) Error() string { return "frontend write: " + e.err.Error() }
func (e *frontWriteError) Unwrap() error { return e.err }

// Timeout reports whether the write failed on the armed write deadline —
// the slow-client eviction case, as opposed to a vanished client.
func (e *frontWriteError) Timeout() bool {
	var ne net.Error
	return errors.As(e.err, &ne) && ne.Timeout()
}

func (fw *frontWriter) begin(cols []tdp.ColumnDef) error {
	if err := fw.w.BeginResultSet(cols); err != nil {
		return &frontWriteError{err: err}
	}
	return nil
}

func (fw *frontWriter) row(row []types.Datum) error {
	fw.rowsSent = true
	if err := fw.w.Row(row); err != nil {
		return &frontWriteError{err: err}
	}
	return nil
}

func (fw *frontWriter) end(activity int64, name string) error {
	if err := fw.w.EndStatement(activity, name); err != nil {
		return &frontWriteError{err: err}
	}
	return nil
}

// writeResults emits materialized results, skipping those the streaming
// path already delivered; emitted results are marked sent so a second pass
// is a no-op.
func (fw *frontWriter) writeResults(results []*FrontResult) error {
	for _, res := range results {
		if res.sent {
			continue
		}
		if res.Cols != nil {
			if err := fw.begin(res.Cols); err != nil {
				return err
			}
			for _, row := range res.Rows {
				if err := fw.row(row); err != nil {
					return err
				}
			}
		}
		if err := fw.end(res.Activity, res.Command); err != nil {
			return err
		}
		res.sent = true
	}
	return nil
}

// errResultShed aborts a streamed request whose next batch would push the
// gateway-wide in-flight result memory past the hard cap.
var errResultShed = errors.New("gateway result memory cap exceeded")

// enterComposite/leaveComposite bracket multi-statement emulation protocols
// (macros, MERGE, recursive queries, SET-table inserts). Inside a composite
// the per-inner-statement results must accumulate and emit together in
// statement order, so streaming is disabled: a streamed inner result would
// hit the wire before an earlier sibling's buffered parcels.
func (s *Session) enterComposite() { s.compositeDepth++ }
func (s *Session) leaveComposite() { s.compositeDepth-- }

// streamable selects the result path per statement (the tentpole's
// fallback rule): stream only when a frontend is attached, the statement is
// top-level (not inside an emulation composite), it produces a result set
// (frontCols non-nil — DML/DDL activity counts are synthesized gateway-side
// and stay buffered), streaming is not disabled, and the backend executor
// supports it.
func (s *Session) streamable(frontCols []xtra.Col) bool {
	if s.fw == nil || s.compositeDepth > 0 || s.g.cfg.DisableStreaming || frontCols == nil {
		return false
	}
	_, ok := s.be.(odbc.StreamExecutor)
	return ok
}

// streamItem is one unit flowing through the three-stage pipeline. Exactly
// one of cols / batch / rows / complete / err is meaningful; bytes carries
// the accountant reservation attached to a batch until its rows are
// delivered.
type streamItem struct {
	cols     []tdf.ColumnMeta
	batch    *tdf.Batch
	rows     [][]types.Datum
	bytes    int64
	complete bool
	command  string
	affected int64
	err      error
	convErr  bool // err came from result conversion, not the backend
}

// execStreamed is the streaming counterpart of execTranslated's
// execute+convert phase: fetch → parallel convert → frontend write run as a
// bounded three-stage pipeline. Backpressure is end-to-end: a slow client
// stalls the write stage, the bounded channels fill, the fetch stage stops
// pulling, and the backend's own socket writes block — bounded by the
// per-session byte budget and the gateway-wide accountant rather than the
// result size.
func (s *Session) execStreamed(se odbc.StreamExecutor, sql string, frontCols []xtra.Col, cmd func(string) string) ([]*FrontResult, error) {
	g := s.g
	fw := s.fw
	defer atomic.StoreInt32(&s.midStream, 0)
	s.tr.AddTranslated(sql)
	sp := s.tr.Start("execute")
	sp.Set("sql", sql)
	sp.Set("streamed", "true")
	t1 := time.Now()
	var convertNs int64
	defer func() {
		// The execute span covers the whole pipeline wall-clock; the convert
		// stage's share is carved out so the Figure 9 split stays honest.
		dc := time.Duration(atomic.LoadInt64(&convertNs))
		d := time.Since(t1) - dc
		if d < 0 {
			d = 0
		}
		atomic.AddInt64(&g.metrics.executeNs, int64(d))
		g.stages.Observe("execute", d)
		atomic.AddInt64(&g.metrics.convertNs, int64(dc))
		g.stages.Observe("convert", dc)
		csp := s.tr.Start("convert")
		csp.Set("streamed", "true")
		csp.EndWithDuration(dc)
		sp.EndWithDuration(d)
	}()

	pctx, cancel := context.WithCancel(s.requestCtx())
	defer cancel()
	st, err := se.ExecStream(pctx, sql)
	if err != nil {
		return nil, mapBackendError(err)
	}
	defer st.Close()

	depth := g.cfg.StreamDepth
	budget := int64(g.cfg.ResultBudget)
	fetched := make(chan streamItem, depth)
	converted := make(chan streamItem, depth)
	released := make(chan struct{}, 1)

	// sessInflight is this session's accounted bytes between fetch and
	// delivery; acquired/releasedBytes are running totals reconciled once at
	// pipeline teardown so no exit path can leak accountant reservations.
	var sessInflight, acquired, releasedBytes int64

	var wg sync.WaitGroup

	// Stage 1: fetch. Pulls events off the backend stream, reserves result
	// memory per batch, and forwards into the bounded channel.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(fetched)
		// A well-formed stream ends (io.EOF) only after every statement's
		// Complete event. EOF with a statement still open — or before any
		// statement completed — is a backend that died mid-request and must
		// surface as a failure, never as a successful empty result.
		statementOpen, sawComplete := false, false
		for {
			ev, err := st.Next(pctx)
			if err != nil {
				if errors.Is(err, io.EOF) && sawComplete && !statementOpen {
					return
				}
				if errors.Is(err, io.EOF) {
					err = fmt.Errorf("backend stream ended without statement completion: %w", io.ErrUnexpectedEOF)
				}
				select {
				case fetched <- streamItem{err: err}:
				case <-pctx.Done():
				}
				return
			}
			var item streamItem
			switch ev.Kind {
			case cwp.StreamMeta:
				statementOpen = true
				item = streamItem{cols: ev.Cols}
			case cwp.StreamComplete:
				statementOpen, sawComplete = false, true
				item = streamItem{complete: true, command: ev.Command, affected: ev.Affected}
			case cwp.StreamBatch:
				size := int64(ev.Batch.EncodedSize())
				// Per-session budget: wait for in-flight bytes to drain
				// before admitting the next batch. A single batch larger
				// than the whole budget is admitted while the pipeline is
				// empty — holding it back forever would deadlock.
				for atomic.LoadInt64(&sessInflight) > 0 &&
					atomic.LoadInt64(&sessInflight)+size > budget {
					select {
					case <-released:
					case <-pctx.Done():
						return
					}
				}
				if !g.acquireResultBytes(size) {
					select {
					case fetched <- streamItem{err: errResultShed}:
					case <-pctx.Done():
					}
					return
				}
				atomic.AddInt64(&sessInflight, size)
				atomic.AddInt64(&acquired, size)
				item = streamItem{batch: ev.Batch, bytes: size}
			default:
				continue
			}
			select {
			case fetched <- item:
			case <-pctx.Done():
				return
			}
		}
	}()

	// Stage 2: convert. One batch at a time in arrival order (so row order
	// is preserved), each batch split across the §4.6 worker pool inside
	// convertBatch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(converted)
		for item := range fetched {
			if item.batch != nil {
				t := time.Now()
				rows, err := s.convertBatch(frontCols, item.batch)
				atomic.AddInt64(&convertNs, int64(time.Since(t)))
				if err != nil {
					item = streamItem{err: err, bytes: item.bytes, convErr: true}
				} else {
					item = streamItem{rows: rows, bytes: item.bytes}
				}
			}
			select {
			case converted <- item:
			case <-pctx.Done():
				return
			}
		}
	}()

	// release hands a batch's bytes back to both budgets once its rows are
	// with the frontend writer (kernel socket buffer included — userspace
	// accounting only) and nudges the fetch stage.
	release := func(n int64) {
		if n <= 0 {
			return
		}
		atomic.AddInt64(&sessInflight, -n)
		atomic.AddInt64(&releasedBytes, n)
		g.releaseResultBytes(n)
		select {
		case released <- struct{}{}:
		default:
		}
	}

	// Stage 3: write (this goroutine). Emits parcels in event order and
	// tracks per-statement state exactly like the buffered emitter.
	var out []*FrontResult
	inResultSet := false
	var rowCount int64
	var streamErr error
	convFail := false

	cols := make([]tdp.ColumnDef, len(frontCols))
	for i, c := range frontCols {
		cols[i] = tdp.ColumnDef{Name: c.Name, Type: c.Type}
	}

writeLoop:
	for item := range converted {
		switch {
		case item.err != nil:
			release(item.bytes)
			streamErr = item.err
			convFail = item.convErr
			break writeLoop
		case item.cols != nil:
			if len(item.cols) != len(frontCols) {
				streamErr = fmt.Errorf("backend returned %d columns, expected %d", len(item.cols), len(frontCols))
				convFail = true
				break writeLoop
			}
			if streamErr = fw.begin(cols); streamErr != nil {
				break writeLoop
			}
			inResultSet = true
			rowCount = 0
			atomic.AddInt64(&g.metrics.streamedResults, 1)
			s.ro.streamed = true
			atomic.StoreInt32(&s.midStream, 1)
		case item.complete:
			activity := item.affected
			name := cmd(item.command)
			if inResultSet {
				activity = rowCount
			}
			if streamErr = fw.end(activity, name); streamErr != nil {
				break writeLoop
			}
			out = append(out, &FrontResult{Activity: activity, Command: name, sent: true})
			inResultSet = false
		default:
			for _, row := range item.rows {
				if streamErr = fw.row(row); streamErr != nil {
					release(item.bytes)
					break writeLoop
				}
			}
			rowCount += int64(len(item.rows))
			s.ro.rowsOut += int64(len(item.rows))
			s.ro.bytesOut += item.bytes
			atomic.AddInt64(&g.metrics.streamedBytes, item.bytes)
			release(item.bytes)
		}
	}

	// Teardown: stop the stages, join them, then reconcile the accountant —
	// any reservation still attached to in-flight items is returned here, in
	// exactly one place, so neither error paths nor cancellation can leak
	// gauge bytes.
	cancel()
	wg.Wait()
	if leak := atomic.LoadInt64(&acquired) - atomic.LoadInt64(&releasedBytes); leak > 0 {
		g.releaseResultBytes(leak)
	}

	if streamErr == nil {
		return out, nil
	}
	var fwe *frontWriteError
	switch {
	case errors.As(streamErr, &fwe):
		// Frontend write failure: surfaced untyped so Request tears the
		// client connection down (eviction or disconnect, not a SQL failure).
		return nil, streamErr
	case errors.Is(streamErr, errResultShed):
		atomic.AddInt64(&g.metrics.resultShed, 1)
		return nil, failf(tdp.CodeGatewaySaturated, "%v: request shed", streamErr)
	case convFail:
		return nil, failf(tdp.CodeObjectNotFound, "result conversion: %v", streamErr)
	case fw.rowsSent:
		// Rows already reached the client: the request cannot be retried or
		// cleanly failed over — surface the interruption honestly.
		atomic.AddInt64(&g.metrics.midstreamFailures, 1)
		return nil, failf(tdp.CodeResultInterrupted, "result delivery interrupted: %v", streamErr)
	default:
		return nil, mapBackendError(streamErr)
	}
}
