package hyperq

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/feature"
	"hyperq/internal/trace"
	"hyperq/internal/wire/tdp"
	"hyperq/internal/workload/customer"
	"hyperq/internal/wstats"
)

// newCustomerStack builds a full wire stack over the customer schema and runs
// the gateway-side setup (views, macros) through the wire, returning the
// stack, a connected client, and the number of requests already issued.
func newCustomerStack(t *testing.T, cfg Config) (*streamStack, *tdp.Client, int) {
	t.Helper()
	target := dialect.CloudA()
	eng := engine.New(target)
	be := eng.NewSession()
	for _, ddl := range customer.SchemaDDL {
		if _, err := be.ExecSQL(ddl); err != nil {
			t.Fatal(err)
		}
	}
	st := newStreamStack(t, target, eng, cfg, tdp.Options{})
	c, err := tdp.Dial(st.addr, "appuser", "pw")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	sent := 0
	for _, sql := range customer.GatewaySetup {
		if _, err := c.Request(sql); err != nil {
			t.Fatalf("setup %q: %v", sql, err)
		}
		sent++
	}
	return st, c, sent
}

// replayWorkloads sends a scaled-down replay of both customer workloads,
// each distinct query twice (the second is an exact-cache candidate), and
// returns the number of requests issued.
func replayWorkloads(t *testing.T, c *tdp.Client) int {
	t.Helper()
	sent := 0
	for _, spec := range []customer.Spec{customer.Workload1(), customer.Workload2()} {
		spec.Distinct = 60
		spec.Total = spec.Distinct
		for _, q := range customer.Generate(spec) {
			for rep := 0; rep < 2; rep++ {
				// Workload errors (if any) still count as observations.
				_, _ = c.Request(q.SQL)
				sent++
			}
		}
	}
	return sent
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	if err := json.Unmarshal([]byte(httpGet(t, url)), into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestStatementStatisticsEndToEnd is the tentpole acceptance scenario: after
// replaying both customer workloads through the full wire stack, /statements
// reports correct per-fingerprint data — exact call totals, cache-tier and
// stage breakdowns, SLO burn — and ?view=features reproduces Figure 8,
// cross-checked against the request-level feature.Stats aggregator.
func TestStatementStatisticsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("replays two customer workloads")
	}
	fstats := feature.NewStats()
	// A 1ns SLO makes every request a breach, so the burn math is checkable
	// exactly; objective 0.5 gives a budget of one half.
	st, c, sent := newCustomerStack(t, Config{Stats: fstats, SLO: 1, SLOObjective: 0.5})
	sent += replayWorkloads(t, c)

	srv := httptest.NewServer(st.g.DebugHandler())
	defer srv.Close()

	var sum wstats.Summary
	getJSON(t, srv.URL+"/statements", &sum)
	if sum.Observed != int64(sent) {
		t.Fatalf("observed = %d, want %d requests", sum.Observed, sent)
	}
	if sum.Entries != len(sum.Statements) || sum.Entries == 0 {
		t.Fatalf("entries = %d, statements = %d", sum.Entries, len(sum.Statements))
	}
	if sum.Other != nil {
		t.Fatalf("default bound must hold the whole scaled workload, got _other: %+v", sum.Other)
	}
	if sum.SortedBy != "calls" {
		t.Errorf("sortedBy = %q, want calls", sum.SortedBy)
	}
	var calls, exactHits, misses, bypasses int64
	for i, s := range sum.Statements {
		calls += s.Calls
		if len(s.Fingerprint) != 16 {
			t.Errorf("fingerprint %q not 16 hex chars", s.Fingerprint)
		}
		if s.Template == "" {
			t.Errorf("statement %s has no template", s.Fingerprint)
		}
		if i > 0 && s.Calls > sum.Statements[i-1].Calls {
			t.Errorf("statements not sorted by calls: %d after %d", s.Calls, sum.Statements[i-1].Calls)
		}
		var tiers int64
		for _, n := range s.CacheTiers {
			tiers += n
		}
		if tiers != s.Calls {
			t.Errorf("statement %s: tier counts sum %d != calls %d", s.Fingerprint, tiers, s.Calls)
		}
		exactHits += s.CacheTiers["exact-hit"]
		misses += s.CacheTiers["miss"]
		bypasses += s.CacheTiers["bypass"]
		if s.TotalNs <= 0 || s.P99Ns < s.P50Ns {
			t.Errorf("statement %s: totalNs=%d p50=%d p99=%d", s.Fingerprint, s.TotalNs, s.P50Ns, s.P99Ns)
		}
		// 1ns SLO: every call of every shape breaches and violates.
		if s.SLOBreaches != s.Calls || !s.Violating {
			t.Errorf("statement %s: sloBreaches=%d calls=%d violating=%v", s.Fingerprint, s.SLOBreaches, s.Calls, s.Violating)
		}
	}
	if calls != int64(sent) {
		t.Fatalf("sum of per-shape calls = %d, want %d (exactness invariant)", calls, sent)
	}
	// Each distinct query ran twice: the replays must hit the exact tier, the
	// first runs miss, and the macro-heavy Workload 2 bypasses.
	if exactHits == 0 || misses == 0 || bypasses == 0 {
		t.Errorf("cache tiers not exercised: exact=%d miss=%d bypass=%d", exactHits, misses, bypasses)
	}
	if sum.SLO == nil {
		t.Fatal("SLO summary missing")
	}
	if sum.SLO.Calls != int64(sent) || sum.SLO.Breaches != int64(sent) {
		t.Errorf("slo calls/breaches = %d/%d, want %d/%d", sum.SLO.Calls, sum.SLO.Breaches, sent, sent)
	}
	// Breach ratio 1.0 against a 0.5 budget: burn rate 2.
	if sum.SLO.BurnRate < 1.99 || sum.SLO.BurnRate > 2.01 {
		t.Errorf("burn rate = %f, want 2.0", sum.SLO.BurnRate)
	}
	if len(sum.SLO.Violating) != sum.Entries {
		t.Errorf("violating shapes = %d, want all %d", len(sum.SLO.Violating), sum.Entries)
	}

	// ?sort=total&limit=5 truncates but keeps the full entry count.
	var top wstats.Summary
	getJSON(t, srv.URL+"/statements?sort=total&limit=5", &top)
	if len(top.Statements) != 5 || top.Entries != sum.Entries || top.Truncated != sum.Entries-5 {
		t.Errorf("limit view: statements=%d entries=%d truncated=%d", len(top.Statements), top.Entries, top.Truncated)
	}
	if top.SortedBy != "total" {
		t.Errorf("sortedBy = %q, want total", top.SortedBy)
	}

	// ?view=features is the live Figure 8, and must agree with the
	// request-level feature.Stats aggregator fed by the same pipeline.
	var fv wstats.FeatureView
	getJSON(t, srv.URL+"/statements?view=features", &fv)
	if fv.Queries != int64(sent) || int(fv.Queries) != fstats.Queries() {
		t.Fatalf("feature view queries = %d, want %d (stats: %d)", fv.Queries, sent, fstats.Queries())
	}
	if fv.Approximate {
		t.Fatal("no evictions occurred; feature view must be exact")
	}
	presence := fstats.ClassPresencePct()
	queryPct := fstats.ClassQueryPct()
	for _, cl := range feature.Classes {
		name := cl.String()
		if got, want := fv.ClassPresencePct[name], presence[cl]; got != want {
			t.Errorf("class %s presence = %v, want %v", name, got, want)
		}
		if got, want := fv.ClassQueryPct[name], queryPct[cl]; got < want-0.01 || got > want+0.01 {
			t.Errorf("class %s queryPct = %v, want %v", name, got, want)
		}
	}
	present := fstats.Present()
	for _, fc := range fv.Features {
		var id feature.ID
		found := false
		for _, f := range feature.All() {
			if f.Name == fc.Name {
				id, found = f.ID, true
				break
			}
		}
		if !found {
			t.Fatalf("feature view names unknown feature %q", fc.Name)
		}
		if (fc.Shapes > 0) != present.Has(id) {
			t.Errorf("feature %s: shapes=%d but request-level presence=%v", fc.Name, fc.Shapes, present.Has(id))
		}
	}

	// Prometheus exposition: bounded per-fingerprint families plus the
	// registry-wide and SLO counters.
	body := httpGet(t, srv.URL+"/metrics")
	if n := metricValue(t, body, "hyperq_statement_observed_total"); n != float64(sent) {
		t.Errorf("hyperq_statement_observed_total = %v, want %d", n, sent)
	}
	if n := metricValue(t, body, "hyperq_statement_shapes"); n != float64(sum.Entries) {
		t.Errorf("hyperq_statement_shapes = %v, want %d", n, sum.Entries)
	}
	if !strings.Contains(body, `hyperq_statement_calls_total{fp="`) {
		t.Error("per-fingerprint calls family missing from /metrics")
	}
	if n := metricValue(t, body, "hyperq_slo_breaches_total"); n != float64(sent) {
		t.Errorf("hyperq_slo_breaches_total = %v, want %d", n, sent)
	}
	if n := metricValue(t, body, "hyperq_result_buffered_bytes_total"); n <= 0 {
		t.Errorf("hyperq_result_buffered_bytes_total = %v, want > 0", n)
	}

	// /sessions: the live session row carries its current fingerprint.
	var sess struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	getJSON(t, srv.URL+"/sessions", &sess)
	if len(sess.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sess.Sessions))
	}
	if fp := sess.Sessions[0].Fingerprint; len(fp) != 16 {
		t.Errorf("session fingerprint = %q, want 16 hex chars", fp)
	}
	if sess.Sessions[0].Streaming {
		t.Error("idle session reported mid-stream")
	}

	// ResetMetrics clears the registry, the SLO counters, and the byte
	// counters alongside the rest of the observability state.
	st.g.ResetMetrics()
	var after wstats.Summary
	getJSON(t, srv.URL+"/statements", &after)
	if after.Observed != 0 || after.Entries != 0 || after.Other != nil {
		t.Errorf("reset left observed=%d entries=%d other=%v", after.Observed, after.Entries, after.Other)
	}
	if m := st.g.MetricsSnapshot(); m.BufferedBytes != 0 || m.StreamedBytes != 0 {
		t.Errorf("reset left buffered=%d streamed=%d bytes", m.BufferedBytes, m.StreamedBytes)
	}
	if n := st.g.Traces().PinnedCount(); n != 0 {
		t.Errorf("reset left %d pinned exemplars", n)
	}
}

// TestStatementCardinalityBoundedEndToEnd replays a workload with far more
// shapes than the configured bound and asserts the registry never exceeds it
// while the _other bucket keeps registry-wide totals exact.
func TestStatementCardinalityBoundedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a customer workload")
	}
	const maxShapes = 16
	st, c, sent := newCustomerStack(t, Config{StatStatementsMax: maxShapes})
	spec := customer.Workload1()
	spec.Distinct = 60
	spec.Total = spec.Distinct
	for _, q := range customer.Generate(spec) {
		_, _ = c.Request(q.SQL)
		sent++
	}

	srv := httptest.NewServer(st.g.DebugHandler())
	defer srv.Close()
	var sum wstats.Summary
	getJSON(t, srv.URL+"/statements", &sum)
	if sum.MaxEntries != maxShapes {
		t.Fatalf("maxEntries = %d, want %d", sum.MaxEntries, maxShapes)
	}
	if sum.Entries > maxShapes {
		t.Fatalf("entries = %d, exceeds bound %d", sum.Entries, maxShapes)
	}
	if sum.Other == nil {
		t.Fatal("evictions must fold into _other")
	}
	var calls int64
	for _, s := range sum.Statements {
		calls += s.Calls
	}
	if got := calls + sum.Other.Calls; got != int64(sent) || sum.Observed != int64(sent) {
		t.Fatalf("tracked %d + other %d = %d, observed %d, want %d — observations lost",
			calls, sum.Other.Calls, got, sum.Observed, sent)
	}
	// The feature view flags itself approximate once shapes have been folded.
	var fv wstats.FeatureView
	getJSON(t, srv.URL+"/statements?view=features", &fv)
	if !fv.Approximate {
		t.Error("feature view not flagged approximate despite evictions")
	}
}

// TestStatementExemplarSurvivesRingChurn pins the /statements → /traces join:
// a shape's exemplar trace stays resolvable via /traces?id= even after the
// recent ring (sized 4 here) has churned many times over, and streamed
// results are attributed to their shape's statistics.
func TestStatementExemplarSurvivesRingChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a large result")
	}
	target := dialect.CloudA()
	eng := bigTableEngine(t, target, 20) // 8000 rows ≈ 2.4 MiB
	st := newStreamStack(t, target, eng, Config{TraceRingSize: 4, SlowQuery: -1}, tdp.Options{})
	c, err := tdp.Dial(st.addr, "appuser", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const bigSQL = "SEL * FROM BIG"
	if _, err := c.Request(bigSQL); err != nil {
		t.Fatal(err)
	}
	// 20 distinct shapes churn the 4-slot recent ring several times over.
	for i := 0; i < 20; i++ {
		if _, err := c.Request(fmt.Sprintf("SEL COUNT(*) AS C%d FROM SEED", i)); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(st.g.DebugHandler())
	defer srv.Close()
	var sum wstats.Summary
	getJSON(t, srv.URL+"/statements", &sum)
	var big *wstats.Stat
	for i := range sum.Statements {
		if strings.Contains(sum.Statements[i].Template, "FROM BIG") {
			big = &sum.Statements[i]
			break
		}
	}
	if big == nil {
		t.Fatal("BIG shape not tracked")
	}
	if big.Streamed != 1 {
		t.Fatalf("BIG shape streamed = %d, want 1", big.Streamed)
	}
	if big.RowsOut != 8000 || big.BytesOut <= 0 {
		t.Errorf("streamed shape rows/bytes = %d/%d, want 8000 rows", big.RowsOut, big.BytesOut)
	}
	if big.Exemplar == "" {
		t.Fatal("streamed shape has no exemplar")
	}
	var ex trace.Trace
	getJSON(t, srv.URL+"/traces?id="+big.Exemplar, &ex)
	if ex.ID != big.Exemplar {
		t.Fatalf("exemplar trace id = %q, want %q", ex.ID, big.Exemplar)
	}
	if ex.SQL != bigSQL {
		t.Errorf("exemplar trace SQL = %q, want %q", ex.SQL, bigSQL)
	}
	if ex.Fingerprint != big.Fingerprint {
		t.Errorf("exemplar fingerprint = %q, statement %q — join key broken", ex.Fingerprint, big.Fingerprint)
	}
	if !ex.Streamed {
		t.Error("exemplar trace not marked streamed")
	}
	if m := st.g.MetricsSnapshot(); m.StreamedBytes <= 0 {
		t.Errorf("StreamedBytes = %d, want > 0", m.StreamedBytes)
	}
	if n := metricValue(t, httpGet(t, srv.URL+"/metrics"), "hyperq_result_streamed_bytes_total"); n <= 0 {
		t.Errorf("hyperq_result_streamed_bytes_total = %v, want > 0", n)
	}
	// An unknown id 404s rather than returning the whole ring.
	resp, err := srv.Client().Get(srv.URL + "/traces?id=no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown trace id status = %d, want 404", resp.StatusCode)
	}
}
