package hyperq

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"hyperq/internal/metrics"
)

// DebugHandler serves the gateway introspection endpoints (the Gateway
// Manager's operator surface, §4):
//
//	/metrics      Prometheus text format: per-stage latency histograms,
//	              whole-request latency, gateway-overhead ratio, the
//	              cumulative counters of MetricsSnapshot, and the top-N
//	              per-fingerprint statement series (stable fp label,
//	              cardinality-bounded)
//	/traces       recent finished traces (JSON, newest first); ?id= fetches
//	              one retained trace (pinned exemplars included)
//	/traces/slow  the slowest retained traces at/above the slow threshold
//	/sessions     live session table (user, statements, cache hits, state,
//	              current fingerprint, mid-stream flag)
//	/statements   per-fingerprint workload statistics (404 when disabled);
//	              ?sort=calls|total|p99|bytes, ?limit=N,
//	              ?view=features for the live Figure 8 breakdown
//	/pool         backend connection pool state (404 when no pool is
//	              configured): gauges, counters, wait-time distribution
//
// Mount it on a loopback or otherwise access-controlled listener: traces,
// the session table, and statement templates contain SQL text (statement
// templates are literal-redacted, but identifiers still name real objects).
func (g *Gateway) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", g.serveMetrics)
	mux.HandleFunc("/traces", g.serveTraces)
	mux.HandleFunc("/traces/slow", g.serveSlowTraces)
	mux.HandleFunc("/sessions", g.serveSessions)
	mux.HandleFunc("/statements", g.serveStatements)
	mux.HandleFunc("/pool", g.servePool)
	return mux
}

func (g *Gateway) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// All stage series share one HELP/TYPE header, per the format.
	for i, stage := range metrics.StageNames {
		help := ""
		if i == 0 {
			help = "Gateway pipeline stage latency."
		}
		metrics.WriteHistogram(w, "hyperq_stage_duration_seconds", help, "stage", stage, g.stages.Stage(stage).Snapshot())
	}
	metrics.WriteHistogram(w, "hyperq_request_duration_seconds", "Whole-request latency through the gateway.", "", "", g.stages.Request.Snapshot())
	metrics.WriteHistogram(w, "hyperq_gateway_overhead_ratio", "Per-request fraction of time spent in the gateway (1 - backend/total).", "", "", g.stages.Overhead.Snapshot())

	m := g.MetricsSnapshot()
	counters := []struct {
		name, help string
		value      int64
	}{
		{"hyperq_requests_total", "Frontend requests processed.", m.Requests},
		{"hyperq_statements_total", "Statements executed.", m.Statements},
		{"hyperq_cache_hits_total", "Translation cache hits.", m.CacheHits},
		{"hyperq_cache_misses_total", "Translation cache misses.", m.CacheMisses},
		{"hyperq_cache_bypass_total", "Translation cache bypasses.", m.CacheBypass},
		{"hyperq_cache_evictions_total", "Translation cache evictions.", m.CacheEvict},
		{"hyperq_backend_retries_total", "Transparent backend retries.", m.Retries},
		{"hyperq_backend_reconnects_total", "Replacement backend sessions.", m.Reconnects},
		{"hyperq_backend_replays_total", "Session-state replays.", m.Replays},
		{"hyperq_breaker_open_total", "Circuit-breaker open transitions.", m.BreakerOpen},
		{"hyperq_replicas_quarantined_total", "Replicas quarantined from reads.", m.ReplicaQuarantined},
		{"hyperq_results_streamed_total", "Result sets delivered through the streaming pipeline.", m.StreamedResults},
		{"hyperq_results_buffered_total", "Result sets materialized through the TDF-store path.", m.BufferedResults},
		{"hyperq_result_streamed_bytes_total", "Result payload bytes delivered through the streaming pipeline.", m.StreamedBytes},
		{"hyperq_result_buffered_bytes_total", "Result payload bytes materialized through the TDF-store path.", m.BufferedBytes},
		{"hyperq_clients_evicted_total", "Sessions evicted for stalling past the client write deadline.", m.ClientsEvicted},
		{"hyperq_midstream_failures_total", "Requests failed after rows had already reached the client.", m.MidstreamFailures},
		{"hyperq_results_shed_total", "Requests shed at the gateway result-memory cap.", m.ResultShed},
	}
	for _, c := range counters {
		metrics.WriteCounter(w, c.name, c.help, "counter", c.value)
	}
	g.sessMu.Lock()
	active := int64(len(g.sessions))
	g.sessMu.Unlock()
	metrics.WriteCounter(w, "hyperq_sessions_active", "Live frontend sessions.", "gauge", active)
	metrics.WriteCounter(w, "hyperq_result_inflight_bytes", "Result bytes fetched from the backend and not yet delivered to clients.", "gauge", m.ResultInflightBytes)
	metrics.WriteCounter(w, "hyperq_result_inflight_peak_bytes", "High-water mark of in-flight result bytes.", "gauge", m.ResultPeakBytes)

	g.writeStatementMetrics(w)

	if ps, ok := g.PoolStats(); ok {
		gauges := []struct {
			name, help string
			value      int64
		}{
			{"hyperq_pool_size", "Backend connection pool capacity.", int64(ps.Size)},
			{"hyperq_pool_in_use", "Pool connections currently leased.", int64(ps.InUse)},
			{"hyperq_pool_idle", "Pool connections parked idle.", int64(ps.Idle)},
			{"hyperq_pool_pinned", "Pool connections pinned to a session.", int64(ps.Pinned)},
			{"hyperq_pool_waiters", "Sessions queued for a pool connection.", int64(ps.Waiters)},
		}
		for _, gv := range gauges {
			metrics.WriteCounter(w, gv.name, gv.help, "gauge", gv.value)
		}
		poolCounters := []struct {
			name, help string
			value      int64
		}{
			{"hyperq_pool_acquires_total", "Pool connection acquires.", ps.Acquires},
			{"hyperq_pool_waits_total", "Acquires that queued for a connection.", ps.Waits},
			{"hyperq_pool_timeouts_total", "Acquires that timed out waiting.", ps.Timeouts},
			{"hyperq_pool_rejected_total", "Acquires rejected by the max-waiters cap.", ps.Rejected},
			{"hyperq_pool_shed_total", "Waiters shed on a circuit-breaker-open backend.", ps.Shed},
			{"hyperq_pool_dials_total", "Backend connections dialed.", ps.Dials},
			{"hyperq_pool_dial_errors_total", "Backend dial failures.", ps.DialErrors},
			{"hyperq_pool_discarded_total", "Broken connections discarded.", ps.Discarded},
			{"hyperq_pool_recycled_total", "Connections recycled past max lifetime.", ps.Recycled},
			{"hyperq_pool_reaped_total", "Idle connections reaped.", ps.Reaped},
			{"hyperq_pool_pins_total", "Session pins.", ps.Pins},
			{"hyperq_pool_unpins_total", "Session unpins.", ps.Unpins},
		}
		for _, c := range poolCounters {
			metrics.WriteCounter(w, c.name, c.help, "counter", c.value)
		}
		metrics.WriteHistogram(w, "hyperq_pool_wait_seconds", "Time sessions spent waiting for a pool connection.", "", "", ps.WaitSeconds)
	}
}

// promStatementTopN bounds the per-fingerprint series count on /metrics:
// only the top N shapes by calls are exposed, so scrape cardinality stays
// fixed no matter how large the registry bound is. The fp label is the
// stable statement-shape id (a hash of the redacted template), so series
// identity survives restarts and gateway failovers.
const promStatementTopN = 20

// writeStatementMetrics renders the bounded-cardinality per-fingerprint
// families and the SLO burn counters.
func (g *Gateway) writeStatementMetrics(w io.Writer) {
	if g.wstats == nil {
		return
	}
	sum := g.wstats.Snapshot("calls", promStatementTopN)
	metrics.WriteCounter(w, "hyperq_statement_shapes", "Statement shapes tracked by the workload registry.", "gauge", int64(sum.Entries))
	metrics.WriteCounter(w, "hyperq_statement_observed_total", "Requests recorded by the workload registry (evicted shapes included).", "counter", sum.Observed)
	metrics.WriteHeader(w, "hyperq_statement_calls_total", "Calls per statement fingerprint (top shapes by calls).", "counter")
	for i := range sum.Statements {
		metrics.WriteLabeledValue(w, "hyperq_statement_calls_total", "fp", sum.Statements[i].Fingerprint, float64(sum.Statements[i].Calls))
	}
	metrics.WriteHeader(w, "hyperq_statement_errors_total", "Errors per statement fingerprint.", "counter")
	for i := range sum.Statements {
		if sum.Statements[i].Errors != 0 {
			metrics.WriteLabeledValue(w, "hyperq_statement_errors_total", "fp", sum.Statements[i].Fingerprint, float64(sum.Statements[i].Errors))
		}
	}
	metrics.WriteHeader(w, "hyperq_statement_seconds_total", "Total request time per statement fingerprint.", "counter")
	for i := range sum.Statements {
		metrics.WriteLabeledValue(w, "hyperq_statement_seconds_total", "fp", sum.Statements[i].Fingerprint, float64(sum.Statements[i].TotalNs)/1e9)
	}
	metrics.WriteHeader(w, "hyperq_statement_bytes_out_total", "Result payload bytes per statement fingerprint.", "counter")
	for i := range sum.Statements {
		metrics.WriteLabeledValue(w, "hyperq_statement_bytes_out_total", "fp", sum.Statements[i].Fingerprint, float64(sum.Statements[i].BytesOut))
	}
	if slo := sum.SLO; slo != nil {
		metrics.WriteCounter(w, "hyperq_slo_calls_total", "Requests measured against the latency SLO.", "counter", slo.Calls)
		metrics.WriteCounter(w, "hyperq_slo_breaches_total", "Requests slower than the latency SLO.", "counter", slo.Breaches)
		metrics.WriteHeader(w, "hyperq_statement_slo_breaches_total", "SLO breaches per statement fingerprint.", "counter")
		for i := range sum.Statements {
			if sum.Statements[i].SLOBreaches != 0 {
				metrics.WriteLabeledValue(w, "hyperq_statement_slo_breaches_total", "fp", sum.Statements[i].Fingerprint, float64(sum.Statements[i].SLOBreaches))
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (g *Gateway) serveTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		t := g.ring.Get(id)
		if t == nil {
			http.Error(w, "trace not retained", http.StatusNotFound)
			return
		}
		writeJSON(w, t)
		return
	}
	writeJSON(w, map[string]any{"traces": g.ring.Recent()})
}

// serveStatements is the /statements endpoint: the per-fingerprint workload
// registry as sortable JSON, or the Figure 8 feature breakdown with
// ?view=features.
func (g *Gateway) serveStatements(w http.ResponseWriter, r *http.Request) {
	if g.wstats == nil {
		http.Error(w, "statement statistics disabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	if q.Get("view") == "features" {
		writeJSON(w, g.wstats.Features())
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			limit = n
		}
	}
	writeJSON(w, g.wstats.Snapshot(q.Get("sort"), limit))
}

func (g *Gateway) serveSlowTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"slow_threshold_ms": g.ring.SlowThreshold().Milliseconds(),
		"traces":            g.ring.Slow(),
	})
}

func (g *Gateway) serveSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"sessions": g.Sessions()})
}

func (g *Gateway) servePool(w http.ResponseWriter, _ *http.Request) {
	ps, ok := g.PoolStats()
	if !ok {
		http.Error(w, "no backend connection pool configured", http.StatusNotFound)
		return
	}
	writeJSON(w, ps)
}
