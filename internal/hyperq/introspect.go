package hyperq

import (
	"encoding/json"
	"net/http"

	"hyperq/internal/metrics"
)

// DebugHandler serves the gateway introspection endpoints (the Gateway
// Manager's operator surface, §4):
//
//	/metrics      Prometheus text format: per-stage latency histograms,
//	              whole-request latency, gateway-overhead ratio, and the
//	              cumulative counters of MetricsSnapshot
//	/traces       recent finished traces (JSON, newest first)
//	/traces/slow  the slowest retained traces at/above the slow threshold
//	/sessions     live session table (user, statements, cache hits, state)
//
// Mount it on a loopback or otherwise access-controlled listener: traces and
// the session table contain SQL text.
func (g *Gateway) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", g.serveMetrics)
	mux.HandleFunc("/traces", g.serveTraces)
	mux.HandleFunc("/traces/slow", g.serveSlowTraces)
	mux.HandleFunc("/sessions", g.serveSessions)
	return mux
}

func (g *Gateway) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// All stage series share one HELP/TYPE header, per the format.
	for i, stage := range metrics.StageNames {
		help := ""
		if i == 0 {
			help = "Gateway pipeline stage latency."
		}
		metrics.WriteHistogram(w, "hyperq_stage_duration_seconds", help, "stage", stage, g.stages.Stage(stage).Snapshot())
	}
	metrics.WriteHistogram(w, "hyperq_request_duration_seconds", "Whole-request latency through the gateway.", "", "", g.stages.Request.Snapshot())
	metrics.WriteHistogram(w, "hyperq_gateway_overhead_ratio", "Per-request fraction of time spent in the gateway (1 - backend/total).", "", "", g.stages.Overhead.Snapshot())

	m := g.MetricsSnapshot()
	counters := []struct {
		name, help string
		value      int64
	}{
		{"hyperq_requests_total", "Frontend requests processed.", m.Requests},
		{"hyperq_statements_total", "Statements executed.", m.Statements},
		{"hyperq_cache_hits_total", "Translation cache hits.", m.CacheHits},
		{"hyperq_cache_misses_total", "Translation cache misses.", m.CacheMisses},
		{"hyperq_cache_bypass_total", "Translation cache bypasses.", m.CacheBypass},
		{"hyperq_cache_evictions_total", "Translation cache evictions.", m.CacheEvict},
		{"hyperq_backend_retries_total", "Transparent backend retries.", m.Retries},
		{"hyperq_backend_reconnects_total", "Replacement backend sessions.", m.Reconnects},
		{"hyperq_backend_replays_total", "Session-state replays.", m.Replays},
		{"hyperq_breaker_open_total", "Circuit-breaker open transitions.", m.BreakerOpen},
		{"hyperq_replicas_quarantined_total", "Replicas quarantined from reads.", m.ReplicaQuarantined},
	}
	for _, c := range counters {
		metrics.WriteCounter(w, c.name, c.help, "counter", c.value)
	}
	g.sessMu.Lock()
	active := int64(len(g.sessions))
	g.sessMu.Unlock()
	metrics.WriteCounter(w, "hyperq_sessions_active", "Live frontend sessions.", "gauge", active)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (g *Gateway) serveTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"traces": g.ring.Recent()})
}

func (g *Gateway) serveSlowTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"slow_threshold_ms": g.ring.SlowThreshold().Milliseconds(),
		"traces":            g.ring.Slow(),
	})
}

func (g *Gateway) serveSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"sessions": g.Sessions()})
}
