package hyperq

import (
	"encoding/json"
	"net/http"

	"hyperq/internal/metrics"
)

// DebugHandler serves the gateway introspection endpoints (the Gateway
// Manager's operator surface, §4):
//
//	/metrics      Prometheus text format: per-stage latency histograms,
//	              whole-request latency, gateway-overhead ratio, and the
//	              cumulative counters of MetricsSnapshot
//	/traces       recent finished traces (JSON, newest first)
//	/traces/slow  the slowest retained traces at/above the slow threshold
//	/sessions     live session table (user, statements, cache hits, state)
//	/pool         backend connection pool state (404 when no pool is
//	              configured): gauges, counters, wait-time distribution
//
// Mount it on a loopback or otherwise access-controlled listener: traces and
// the session table contain SQL text.
func (g *Gateway) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", g.serveMetrics)
	mux.HandleFunc("/traces", g.serveTraces)
	mux.HandleFunc("/traces/slow", g.serveSlowTraces)
	mux.HandleFunc("/sessions", g.serveSessions)
	mux.HandleFunc("/pool", g.servePool)
	return mux
}

func (g *Gateway) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// All stage series share one HELP/TYPE header, per the format.
	for i, stage := range metrics.StageNames {
		help := ""
		if i == 0 {
			help = "Gateway pipeline stage latency."
		}
		metrics.WriteHistogram(w, "hyperq_stage_duration_seconds", help, "stage", stage, g.stages.Stage(stage).Snapshot())
	}
	metrics.WriteHistogram(w, "hyperq_request_duration_seconds", "Whole-request latency through the gateway.", "", "", g.stages.Request.Snapshot())
	metrics.WriteHistogram(w, "hyperq_gateway_overhead_ratio", "Per-request fraction of time spent in the gateway (1 - backend/total).", "", "", g.stages.Overhead.Snapshot())

	m := g.MetricsSnapshot()
	counters := []struct {
		name, help string
		value      int64
	}{
		{"hyperq_requests_total", "Frontend requests processed.", m.Requests},
		{"hyperq_statements_total", "Statements executed.", m.Statements},
		{"hyperq_cache_hits_total", "Translation cache hits.", m.CacheHits},
		{"hyperq_cache_misses_total", "Translation cache misses.", m.CacheMisses},
		{"hyperq_cache_bypass_total", "Translation cache bypasses.", m.CacheBypass},
		{"hyperq_cache_evictions_total", "Translation cache evictions.", m.CacheEvict},
		{"hyperq_backend_retries_total", "Transparent backend retries.", m.Retries},
		{"hyperq_backend_reconnects_total", "Replacement backend sessions.", m.Reconnects},
		{"hyperq_backend_replays_total", "Session-state replays.", m.Replays},
		{"hyperq_breaker_open_total", "Circuit-breaker open transitions.", m.BreakerOpen},
		{"hyperq_replicas_quarantined_total", "Replicas quarantined from reads.", m.ReplicaQuarantined},
		{"hyperq_results_streamed_total", "Result sets delivered through the streaming pipeline.", m.StreamedResults},
		{"hyperq_results_buffered_total", "Result sets materialized through the TDF-store path.", m.BufferedResults},
		{"hyperq_clients_evicted_total", "Sessions evicted for stalling past the client write deadline.", m.ClientsEvicted},
		{"hyperq_midstream_failures_total", "Requests failed after rows had already reached the client.", m.MidstreamFailures},
		{"hyperq_results_shed_total", "Requests shed at the gateway result-memory cap.", m.ResultShed},
	}
	for _, c := range counters {
		metrics.WriteCounter(w, c.name, c.help, "counter", c.value)
	}
	g.sessMu.Lock()
	active := int64(len(g.sessions))
	g.sessMu.Unlock()
	metrics.WriteCounter(w, "hyperq_sessions_active", "Live frontend sessions.", "gauge", active)
	metrics.WriteCounter(w, "hyperq_result_inflight_bytes", "Result bytes fetched from the backend and not yet delivered to clients.", "gauge", m.ResultInflightBytes)
	metrics.WriteCounter(w, "hyperq_result_inflight_peak_bytes", "High-water mark of in-flight result bytes.", "gauge", m.ResultPeakBytes)

	if ps, ok := g.PoolStats(); ok {
		gauges := []struct {
			name, help string
			value      int64
		}{
			{"hyperq_pool_size", "Backend connection pool capacity.", int64(ps.Size)},
			{"hyperq_pool_in_use", "Pool connections currently leased.", int64(ps.InUse)},
			{"hyperq_pool_idle", "Pool connections parked idle.", int64(ps.Idle)},
			{"hyperq_pool_pinned", "Pool connections pinned to a session.", int64(ps.Pinned)},
			{"hyperq_pool_waiters", "Sessions queued for a pool connection.", int64(ps.Waiters)},
		}
		for _, gv := range gauges {
			metrics.WriteCounter(w, gv.name, gv.help, "gauge", gv.value)
		}
		poolCounters := []struct {
			name, help string
			value      int64
		}{
			{"hyperq_pool_acquires_total", "Pool connection acquires.", ps.Acquires},
			{"hyperq_pool_waits_total", "Acquires that queued for a connection.", ps.Waits},
			{"hyperq_pool_timeouts_total", "Acquires that timed out waiting.", ps.Timeouts},
			{"hyperq_pool_rejected_total", "Acquires rejected by the max-waiters cap.", ps.Rejected},
			{"hyperq_pool_shed_total", "Waiters shed on a circuit-breaker-open backend.", ps.Shed},
			{"hyperq_pool_dials_total", "Backend connections dialed.", ps.Dials},
			{"hyperq_pool_dial_errors_total", "Backend dial failures.", ps.DialErrors},
			{"hyperq_pool_discarded_total", "Broken connections discarded.", ps.Discarded},
			{"hyperq_pool_recycled_total", "Connections recycled past max lifetime.", ps.Recycled},
			{"hyperq_pool_reaped_total", "Idle connections reaped.", ps.Reaped},
			{"hyperq_pool_pins_total", "Session pins.", ps.Pins},
			{"hyperq_pool_unpins_total", "Session unpins.", ps.Unpins},
		}
		for _, c := range poolCounters {
			metrics.WriteCounter(w, c.name, c.help, "counter", c.value)
		}
		metrics.WriteHistogram(w, "hyperq_pool_wait_seconds", "Time sessions spent waiting for a pool connection.", "", "", ps.WaitSeconds)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (g *Gateway) serveTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"traces": g.ring.Recent()})
}

func (g *Gateway) serveSlowTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"slow_threshold_ms": g.ring.SlowThreshold().Milliseconds(),
		"traces":            g.ring.Slow(),
	})
}

func (g *Gateway) serveSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"sessions": g.Sessions()})
}

func (g *Gateway) servePool(w http.ResponseWriter, _ *http.Request) {
	ps, ok := g.PoolStats()
	if !ok {
		http.Error(w, "no backend connection pool configured", http.StatusNotFound)
		return
	}
	writeJSON(w, ps)
}
