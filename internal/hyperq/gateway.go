// Package hyperq implements the core of the system: the Adaptive Data
// Virtualization gateway of the paper. It terminates the frontend wire
// protocol (WP-A), runs each request through the Algebrizer → Transformer →
// Serializer pipeline, executes the translated SQL-B on the backend through
// the ODBC Server abstraction, and converts results back into the binary
// format the unmodified application expects — emulating missing target
// features (recursive queries, macros, MERGE, catalog commands) with
// multi-request protocols and gateway-side state (§4, Figure 3).
package hyperq

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyperq/internal/catalog"
	"hyperq/internal/dialect"
	"hyperq/internal/feature"
	"hyperq/internal/fingerprint"
	"hyperq/internal/metrics"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/pool"
	"hyperq/internal/querylog"
	"hyperq/internal/trace"
	"hyperq/internal/types"
	"hyperq/internal/wire/tdp"
	"hyperq/internal/wstats"
)

// Config configures a Gateway.
type Config struct {
	// Target is the cloud system profile the gateway translates for.
	Target *dialect.Profile
	// Driver creates backend sessions (one per frontend session).
	Driver odbc.Driver
	// Catalog is the gateway-side metadata store. Hyper-Q automates schema
	// discovery/transfer (§4); in this reproduction the catalog is either
	// populated through gateway DDL or imported from the backend at startup.
	Catalog *catalog.Catalog
	// ResultBudget is the Result Store's in-memory byte budget before
	// buffered results spill to disk (§4.6), and the per-session in-flight
	// byte budget of the streaming result pipeline: a session's fetch stage
	// stops pulling from the backend while more than this many bytes sit
	// between fetch and frontend delivery. 0 selects 64 MiB.
	ResultBudget int
	// StreamDepth bounds the per-session streaming pipeline: each stage
	// boundary (fetch→convert, convert→write) holds at most this many
	// batches. 0 selects 4.
	StreamDepth int
	// ResultMemoryCap is the gateway-wide hard cap on in-flight streamed
	// result bytes across all sessions. A request whose next batch would
	// push the gauge past the cap is shed with CodeGatewaySaturated rather
	// than ballooning gateway memory. 0 selects 256 MiB.
	ResultMemoryCap int
	// DisableStreaming forces every result set through the buffered
	// TDF-store path (the pre-streaming behaviour) — the reference side of
	// the streamed-vs-buffered differential tests.
	DisableStreaming bool
	// ConvertWorkers is the parallel result-conversion degree (§4.6:
	// "conversion operation happens in parallel"). 0 selects GOMAXPROCS.
	ConvertWorkers int
	// Stats, when non-nil, accumulates per-request feature statistics (the
	// §7.1 instrumentation).
	Stats *feature.Stats
	// CacheEntries bounds the translation cache entry count. 0 selects 4096.
	CacheEntries int
	// CacheBytes bounds the translation cache retained bytes. 0 selects
	// 32 MiB.
	CacheBytes int
	// DisableTranslationCache turns the translation cache off entirely
	// (every statement runs the full pipeline — the cold baseline).
	DisableTranslationCache bool
	// BackendTimeout bounds each request's backend execution; 0 leaves
	// requests unbounded. Pair it with an odbc.ResilientDriver so the
	// deadline also covers reconnect attempts.
	BackendTimeout time.Duration
	// Resilience, when non-nil, surfaces the fault-tolerance counters of
	// the configured backend driver(s) in MetricsSnapshot. Share the same
	// struct with the odbc.ResilientDriver / odbc.ReplicatedDriver.
	Resilience *odbc.ResilienceMetrics
	// SlowQuery is the slow-query threshold: traces at or above it are
	// retained in the slow list regardless of recent-trace churn. 0 selects
	// 200ms; negative disables slow retention.
	SlowQuery time.Duration
	// TraceRingSize bounds the recent-trace ring. 0 selects 256.
	TraceRingSize int
	// DisableTracing turns per-request span traces off (histograms stay on).
	// The tracing-overhead benchmark's baseline; also useful when a trace
	// ring per gateway is unwanted.
	DisableTracing bool
	// QueryLog, when non-nil, receives one JSON line per request.
	QueryLog *querylog.Writer
	// Pool, when the gateway executes through a shared backend connection
	// pool, references it so pool state surfaces on the introspection
	// endpoints (/pool, pool gauges in /metrics). Set Driver to the same
	// pool; the gateway never manages the pool's lifecycle.
	Pool *pool.Pool
	// DisableStatStatements turns the per-fingerprint workload-statistics
	// registry off (/statements then returns 404 and per-request recording
	// is skipped entirely).
	DisableStatStatements bool
	// StatStatementsMax bounds the registry's tracked-shape cardinality;
	// colder shapes past the bound fold into the exact-total "_other"
	// bucket. 0 selects 1024.
	StatStatementsMax int
	// SLO, when positive, is the per-request latency objective: the registry
	// counts requests slower than it as SLO breaches, per shape and
	// gateway-wide, and flags violating fingerprints.
	SLO time.Duration
	// SLOObjective is the target fraction of requests meeting the SLO
	// (burn rate 1.0 = consuming exactly the 1-objective error budget).
	// 0 selects 0.99.
	SLOObjective float64
}

// Metrics aggregates the three timing components of Figure 9: query
// translation time, backend execution time, and result transformation time.
type Metrics struct {
	translateNs int64
	executeNs   int64
	convertNs   int64
	requests    int64
	statements  int64
	cacheHits   int64
	cacheMisses int64
	cacheBypass int64
	cacheEvict  int64

	streamedResults   int64
	bufferedResults   int64
	streamedBytes     int64
	bufferedBytes     int64
	clientsEvicted    int64
	midstreamFailures int64
	resultShed        int64
}

// MetricsSnapshot is a point-in-time copy of the gateway metrics.
type MetricsSnapshot struct {
	Translate  time.Duration
	Execute    time.Duration
	Convert    time.Duration
	Requests   int64
	Statements int64
	// Translation-cache counters: hits served from a cached translation,
	// misses that filled the cache, bypasses for cache-ineligible statements
	// (macro scope, session objects, non-DML), and LRU evictions.
	CacheHits   int64
	CacheMisses int64
	CacheBypass int64
	CacheEvict  int64
	// Fault-tolerance counters (populated when Config.Resilience is set):
	// transparent retries, replacement backend sessions, session-state
	// replays, circuit-breaker open transitions, and replicas quarantined
	// out of the read rotation.
	Retries            int64
	Reconnects         int64
	Replays            int64
	BreakerOpen        int64
	ReplicaQuarantined int64
	// Streaming-result counters: result sets streamed through the bounded
	// pipeline, result sets buffered through the TDF store, sessions evicted
	// for stalling past the client write deadline, mid-stream backend
	// failures surfaced to clients (never retried), and requests shed at the
	// gateway-wide result memory cap.
	StreamedResults int64
	BufferedResults int64
	// StreamedBytes/BufferedBytes count result payload bytes delivered
	// through each path (TDF wire encoding).
	StreamedBytes     int64
	BufferedBytes     int64
	ClientsEvicted    int64
	MidstreamFailures int64
	ResultShed        int64
	// ResultInflightBytes is the gateway-wide in-flight streamed result
	// gauge at snapshot time; ResultPeakBytes its high-water mark.
	ResultInflightBytes int64
	ResultPeakBytes     int64
}

// Overhead returns the fraction of total time spent in the gateway
// (translation + conversion) — the Figure 9 measurement.
func (m MetricsSnapshot) Overhead() float64 {
	total := m.Translate + m.Execute + m.Convert
	if total == 0 {
		return 0
	}
	return float64(m.Translate+m.Convert) / float64(total)
}

// Gateway is one Hyper-Q instance. It implements tdp.Handler.
type Gateway struct {
	cfg     Config
	cat     *catalog.Catalog
	metrics Metrics
	// cache is the translation cache; nil when disabled.
	cache *translationCache
	// nextSessionID mints globally unique session identities for cache keys
	// (sessions with a populated session catalog stamp their overlay version
	// under this identity).
	nextSessionID uint64
	// nextTraceID mints trace ordinals.
	nextTraceID uint64
	// stages holds the per-stage latency histograms; ring the finished
	// traces. Both always exist (tracing only gates span allocation).
	stages *metrics.Stages
	ring   *trace.Ring
	// wstats is the per-fingerprint workload-statistics registry; nil when
	// disabled.
	wstats *wstats.Registry
	// live sessions, for the /sessions introspection endpoint.
	sessMu   sync.Mutex
	sessions map[uint64]*Session
	// resultInflight is the gateway-wide in-flight streamed result byte
	// gauge (the result-memory accountant); resultPeak its high-water mark.
	resultInflight int64
	resultPeak     int64
}

// New creates a gateway.
func New(cfg Config) (*Gateway, error) {
	if cfg.Target == nil {
		return nil, fmt.Errorf("hyperq: target profile required")
	}
	if cfg.Driver == nil {
		return nil, fmt.Errorf("hyperq: backend driver required")
	}
	if cfg.Catalog == nil {
		cfg.Catalog = catalog.New()
	}
	if cfg.ResultBudget == 0 {
		cfg.ResultBudget = 64 << 20
	}
	if cfg.StreamDepth == 0 {
		cfg.StreamDepth = 4
	}
	if cfg.ResultMemoryCap == 0 {
		cfg.ResultMemoryCap = 256 << 20
	}
	if cfg.ConvertWorkers == 0 {
		cfg.ConvertWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 32 << 20
	}
	g := &Gateway{
		cfg:      cfg,
		cat:      cfg.Catalog,
		stages:   metrics.NewStages(),
		ring:     trace.NewRing(cfg.TraceRingSize, cfg.SlowQuery),
		sessions: make(map[uint64]*Session),
	}
	if !cfg.DisableTranslationCache {
		g.cache = newTranslationCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	if !cfg.DisableStatStatements {
		g.wstats = wstats.New(wstats.Config{
			MaxEntries: cfg.StatStatementsMax,
			SLO:        cfg.SLO,
			Objective:  cfg.SLOObjective,
			Pinner:     g.ring,
		})
	}
	return g, nil
}

// Catalog exposes the gateway-side metadata store.
func (g *Gateway) Catalog() *catalog.Catalog { return g.cat }

// Target reports the configured target profile.
func (g *Gateway) Target() *dialect.Profile { return g.cfg.Target }

// MetricsSnapshot returns current cumulative metrics.
func (g *Gateway) MetricsSnapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Translate:   time.Duration(atomic.LoadInt64(&g.metrics.translateNs)),
		Execute:     time.Duration(atomic.LoadInt64(&g.metrics.executeNs)),
		Convert:     time.Duration(atomic.LoadInt64(&g.metrics.convertNs)),
		Requests:    atomic.LoadInt64(&g.metrics.requests),
		Statements:  atomic.LoadInt64(&g.metrics.statements),
		CacheHits:   atomic.LoadInt64(&g.metrics.cacheHits),
		CacheMisses: atomic.LoadInt64(&g.metrics.cacheMisses),
		CacheBypass: atomic.LoadInt64(&g.metrics.cacheBypass),
		CacheEvict:  atomic.LoadInt64(&g.metrics.cacheEvict),

		StreamedResults:     atomic.LoadInt64(&g.metrics.streamedResults),
		BufferedResults:     atomic.LoadInt64(&g.metrics.bufferedResults),
		StreamedBytes:       atomic.LoadInt64(&g.metrics.streamedBytes),
		BufferedBytes:       atomic.LoadInt64(&g.metrics.bufferedBytes),
		ClientsEvicted:      atomic.LoadInt64(&g.metrics.clientsEvicted),
		MidstreamFailures:   atomic.LoadInt64(&g.metrics.midstreamFailures),
		ResultShed:          atomic.LoadInt64(&g.metrics.resultShed),
		ResultInflightBytes: atomic.LoadInt64(&g.resultInflight),
		ResultPeakBytes:     atomic.LoadInt64(&g.resultPeak),
	}
	if r := g.cfg.Resilience; r != nil {
		snap.Retries = r.Retries()
		snap.Reconnects = r.Reconnects()
		snap.Replays = r.Replays()
		snap.BreakerOpen = r.BreakerOpen()
		snap.ReplicaQuarantined = r.ReplicaQuarantined()
	}
	return snap
}

// SetStats attaches (or detaches, with nil) the feature-statistics
// collector. Workload studies provision their schema first, then attach
// stats so setup statements stay out of the measurement.
func (g *Gateway) SetStats(st *feature.Stats) { g.cfg.Stats = st }

// SetQueryLog attaches (or detaches, with nil) the query-log writer. Like
// SetStats, this lets a capture run provision schema and shared objects
// first and attach the capture log after, so setup statements stay out of
// the captured workload. Call only while no requests are in flight.
func (g *Gateway) SetQueryLog(w *querylog.Writer) { g.cfg.QueryLog = w }

// ResetMetrics zeroes the counters, the stage histograms, and the trace ring
// (between benchmark phases).
func (g *Gateway) ResetMetrics() {
	atomic.StoreInt64(&g.metrics.translateNs, 0)
	atomic.StoreInt64(&g.metrics.executeNs, 0)
	atomic.StoreInt64(&g.metrics.convertNs, 0)
	atomic.StoreInt64(&g.metrics.requests, 0)
	atomic.StoreInt64(&g.metrics.statements, 0)
	atomic.StoreInt64(&g.metrics.cacheHits, 0)
	atomic.StoreInt64(&g.metrics.cacheMisses, 0)
	atomic.StoreInt64(&g.metrics.cacheBypass, 0)
	atomic.StoreInt64(&g.metrics.cacheEvict, 0)
	atomic.StoreInt64(&g.metrics.streamedResults, 0)
	atomic.StoreInt64(&g.metrics.bufferedResults, 0)
	atomic.StoreInt64(&g.metrics.streamedBytes, 0)
	atomic.StoreInt64(&g.metrics.bufferedBytes, 0)
	atomic.StoreInt64(&g.metrics.clientsEvicted, 0)
	atomic.StoreInt64(&g.metrics.midstreamFailures, 0)
	atomic.StoreInt64(&g.metrics.resultShed, 0)
	// The in-flight gauge tracks live memory and is never reset; only the
	// high-water mark rewinds.
	atomic.StoreInt64(&g.resultPeak, atomic.LoadInt64(&g.resultInflight))
	g.cfg.Resilience.Reset()
	g.stages.Reset()
	// The registry unpins its exemplars before the ring resets, so both
	// orderings work; registry first keeps the pin accounting tidy.
	g.wstats.Reset()
	g.ring.Reset()
}

// Statements exposes the per-fingerprint workload-statistics registry (nil
// when disabled).
func (g *Gateway) Statements() *wstats.Registry { return g.wstats }

// Stages exposes the per-stage latency histograms.
func (g *Gateway) Stages() *metrics.Stages { return g.stages }

// --- result-memory accountant ----------------------------------------------

// acquireResultBytes reserves n bytes of gateway-wide in-flight result
// memory, returning false when the reservation would exceed the hard cap —
// the caller must shed the request. A reservation is always granted when the
// gauge is empty, so one batch larger than the entire cap degrades to
// sequential admission instead of failing unconditionally.
func (g *Gateway) acquireResultBytes(n int64) bool {
	capBytes := int64(g.cfg.ResultMemoryCap)
	for {
		cur := atomic.LoadInt64(&g.resultInflight)
		next := cur + n
		if capBytes > 0 && next > capBytes && cur > 0 {
			return false
		}
		if atomic.CompareAndSwapInt64(&g.resultInflight, cur, next) {
			for {
				peak := atomic.LoadInt64(&g.resultPeak)
				if next <= peak || atomic.CompareAndSwapInt64(&g.resultPeak, peak, next) {
					return true
				}
			}
		}
	}
}

// releaseResultBytes returns a reservation to the accountant.
func (g *Gateway) releaseResultBytes(n int64) {
	if n > 0 {
		atomic.AddInt64(&g.resultInflight, -n)
	}
}

// ResultInflightBytes reports the gateway-wide in-flight streamed result
// bytes (the hyperq_result_inflight_bytes gauge).
func (g *Gateway) ResultInflightBytes() int64 { return atomic.LoadInt64(&g.resultInflight) }

// ResultPeakBytes reports the gauge's high-water mark since the last reset.
func (g *Gateway) ResultPeakBytes() int64 { return atomic.LoadInt64(&g.resultPeak) }

// PoolStats snapshots the backend connection pool, when one is configured.
func (g *Gateway) PoolStats() (pool.Stats, bool) {
	if g.cfg.Pool == nil {
		return pool.Stats{}, false
	}
	return g.cfg.Pool.Stats(), true
}

// Traces exposes the finished-trace ring.
func (g *Gateway) Traces() *trace.Ring { return g.ring }

// OverheadQuantiles reports the requested quantiles of the per-request
// gateway-overhead fraction — the histogram-backed replacement for the
// single cumulative Overhead() number.
func (g *Gateway) OverheadQuantiles(qs ...float64) []float64 {
	snap := g.stages.Overhead.Snapshot()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = snap.Quantile(q)
	}
	return out
}

// startTrace begins the per-request trace (nil when tracing is disabled).
func (g *Gateway) startTrace(s *Session, sql string) *trace.Trace {
	if g.cfg.DisableTracing {
		return nil
	}
	return trace.New(atomic.AddUint64(&g.nextTraceID, 1), s.id, s.user, sql)
}

// finishTrace stamps the request outcome onto the trace, feeds the request
// and overhead histograms, publishes the trace to the ring, and appends the
// query-log line. Runs once per Session.Run, traced or not.
func (g *Gateway) finishTrace(s *Session, tr *trace.Trace, start time.Time, reqErr error) {
	atomic.AddInt64(&s.obsRequests, 1)
	atomic.StoreInt64(&s.lastActive, time.Now().UnixNano())
	if reqErr != nil {
		s.lastErr.Store(reqErr.Error())
	} else {
		s.lastErr.Store("")
	}
	outcome := "ok"
	code := 0
	class := ""
	msg := ""
	if reqErr != nil {
		outcome = "error"
		msg = reqErr.Error()
		if re, ok := reqErr.(*RequestError); ok {
			code = re.Code
		}
		// A client-write deadline failure surfaces here as the raw front-write
		// error (the tdp server maps it to CodeClientTooSlow only after Run
		// returns); attribute it now so statistics see the real code.
		var fwe *frontWriteError
		if code == 0 && errors.As(reqErr, &fwe) && fwe.Timeout() {
			code = tdp.CodeClientTooSlow
		}
		class = classifyCode(code)
	}
	var total time.Duration
	if tr != nil {
		tr.SetStreamed(s.ro.streamed)
		if s.ro.hash != 0 {
			tr.SetFingerprint(fingerprint.ShortID(s.ro.hash))
		}
		tr.Finish(outcome, code, class, msg)
		total = tr.Duration()
	} else {
		total = time.Since(start)
	}
	g.stages.Request.ObserveDuration(total)
	if g.wstats != nil {
		o := wstats.Obs{
			DurNs:    int64(total),
			StageNs:  s.ro.stageNs,
			Tier:     s.ro.tier,
			Failed:   reqErr != nil,
			ErrCode:  code,
			RowsOut:  s.ro.rowsOut,
			BytesOut: s.ro.bytesOut,
			BytesIn:  int64(len(s.ro.sql)),
			Streamed: s.ro.streamed,
			Feats:    s.ro.feats,
			Trace:    tr,
		}
		if tr != nil {
			o.Retries = int64(tr.CountSpans("retry"))
			o.Reconnects = int64(tr.CountSpans("reconnect"))
		}
		g.wstats.Observe(s.ro.hash, s.ro.sql, &o)
	}
	if tr == nil {
		return
	}
	if exec := tr.Stage("execute"); total > 0 && tr.BackendRequests > 0 {
		overhead := 1 - float64(exec)/float64(total)
		if overhead < 0 {
			overhead = 0
		}
		g.stages.Overhead.Observe(overhead)
	}
	g.ring.Add(tr)
	// Query-log write failures must not fail the data path.
	_ = g.cfg.QueryLog.LogTrace(tr)
}

// classifyCode maps frontend failure codes to the trace error taxonomy.
func classifyCode(code int) string {
	switch code {
	case tdp.CodeSyntaxError:
		return "syntax"
	case tdp.CodeSemanticError:
		return "semantic"
	case tdp.CodeBackendUnavailable:
		return "backend-unavailable"
	case tdp.CodeGatewaySaturated:
		return "pool-saturated"
	case tdp.CodeWriteStateUnknown:
		return "connection-lost"
	case tdp.CodeClientTooSlow:
		return "client-evicted"
	case tdp.CodeResultInterrupted:
		return "midstream"
	case tdp.CodeObjectNotFound, tdp.CodeObjectExists, tdp.CodeMacroNotFound, tdp.CodeBadMacroArgument:
		return "execution"
	}
	return "other"
}

// --- live session registry (the /sessions introspection table) -------------

func (g *Gateway) registerSession(s *Session) {
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	g.sessions[s.id] = s
}

func (g *Gateway) dropSession(id uint64) {
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	delete(g.sessions, id)
}

// SessionInfo is one live session's row in the /sessions table.
type SessionInfo struct {
	ID         uint64    `json:"id"`
	User       string    `json:"user"`
	LogonAt    time.Time `json:"logon_at"`
	State      string    `json:"state"` // "active" while a request is in flight, else "idle"
	Requests   int64     `json:"requests"`
	Statements int64     `json:"statements"`
	CacheHits  int64     `json:"cache_hits"`
	LastSQL    string    `json:"last_sql,omitempty"`
	LastError  string    `json:"last_error,omitempty"`
	LastActive time.Time `json:"last_active,omitempty"`
	// Fingerprint is the statement-shape id of the current (state "active")
	// or most recent request; Streaming marks a session currently delivering
	// a streamed result mid-flight.
	Fingerprint string `json:"fingerprint,omitempty"`
	Streaming   bool   `json:"streaming,omitempty"`
}

// Sessions snapshots the live session table, ordered by session id.
func (g *Gateway) Sessions() []SessionInfo {
	g.sessMu.Lock()
	live := make([]*Session, 0, len(g.sessions))
	for _, s := range g.sessions {
		live = append(live, s)
	}
	g.sessMu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	out := make([]SessionInfo, 0, len(live))
	for _, s := range live {
		info := SessionInfo{
			ID:         s.id,
			User:       s.user,
			LogonAt:    s.logonAt,
			State:      "idle",
			Requests:   atomic.LoadInt64(&s.obsRequests),
			Statements: atomic.LoadInt64(&s.obsStatements),
			CacheHits:  atomic.LoadInt64(&s.obsCacheHits),
		}
		if atomic.LoadInt32(&s.inFlight) > 0 {
			info.State = "active"
		}
		if v, ok := s.lastSQL.Load().(string); ok {
			info.LastSQL = v
		}
		if v, ok := s.lastErr.Load().(string); ok {
			info.LastError = v
		}
		if ns := atomic.LoadInt64(&s.lastActive); ns != 0 {
			info.LastActive = time.Unix(0, ns)
		}
		if fp := atomic.LoadUint64(&s.curFP); fp != 0 {
			info.Fingerprint = fingerprint.ShortID(fp)
		}
		info.Streaming = atomic.LoadInt32(&s.midStream) != 0
		out = append(out, info)
	}
	return out
}

// LogonError is the clean logon-failure record surfaced to the client: the
// tdp server writes its message verbatim into the LogonFail parcel, so a
// bteq-style application shows the operator a single actionable line
// instead of a wrapped Go error chain.
type LogonError struct {
	Code    int
	Message string
}

func (e *LogonError) Error() string { return fmt.Sprintf("[%d] %s", e.Code, e.Message) }

// Logon implements tdp.Handler: it opens the paired backend session. A
// backend that cannot be reached yields a LogonError (CodeLogonDenied, the
// "logons disabled" class) rather than a raw connection error.
func (g *Gateway) Logon(user, password string) (tdp.SessionHandler, error) {
	if user == "" {
		return nil, &LogonError{Code: tdp.CodeLogonInvalid, Message: "logon failed: user required"}
	}
	be, err := g.cfg.Driver.Connect()
	if err != nil {
		return nil, &LogonError{Code: tdp.CodeLogonDenied, Message: "backend system unavailable, logon denied; retry later"}
	}
	return newSession(g, be, user), nil
}

// NewLocalSession opens a gateway session without the frontend protocol —
// used by in-process examples and the benchmark harness.
func (g *Gateway) NewLocalSession(user string) (*Session, error) {
	be, err := g.cfg.Driver.Connect()
	if err != nil {
		return nil, err
	}
	return newSession(g, be, user), nil
}

// FrontResult is one statement's response in frontend terms.
type FrontResult struct {
	Cols     []tdp.ColumnDef
	Rows     [][]types.Datum
	Activity int64
	Command  string
	// sent marks a result whose parcels already went to the client (the
	// streaming path writes rows as they arrive and returns a row-less
	// marker); emitters must skip it instead of re-sending.
	sent bool
}

// RequestError carries the frontend failure code.
type RequestError struct {
	Code    int
	Message string
}

func (e *RequestError) Error() string { return fmt.Sprintf("[%d] %s", e.Code, e.Message) }

func failf(code int, format string, args ...any) *RequestError {
	return &RequestError{Code: code, Message: fmt.Sprintf(format, args...)}
}
