package hyperq

import (
	"testing"

	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
)

func parseStmts(t *testing.T, sql string) []sqlast.Statement {
	t.Helper()
	stmts, err := parser.Parse(sql, parser.Teradata, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stmts
}

func TestBatchDMLMergesRuns(t *testing.T) {
	stmts := parseStmts(t, "INS t (1); INS t (2); INS t (3);")
	units := batchDML(stmts)
	if len(units) != 1 {
		t.Fatalf("units = %d", len(units))
	}
	merged := units[0].stmt.(*sqlast.InsertStmt)
	if len(merged.Rows) != 3 || len(units[0].perStmtRows) != 3 {
		t.Fatalf("merged = %d rows, %v", len(merged.Rows), units[0].perStmtRows)
	}
}

func TestBatchDMLBoundaries(t *testing.T) {
	// Different tables break the run.
	units := batchDML(parseStmts(t, "INS t (1); INS u (2); INS u (3);"))
	if len(units) != 2 {
		t.Fatalf("units = %d", len(units))
	}
	if units[0].perStmtRows != nil {
		t.Error("single insert wrongly marked as batch")
	}
	if units[1].perStmtRows == nil {
		t.Error("u-run not batched")
	}
	// A SELECT in between breaks the run.
	units = batchDML(parseStmts(t, "INS t (1); SEL 1; INS t (2);"))
	if len(units) != 3 {
		t.Fatalf("units = %d", len(units))
	}
	// INSERT ... SELECT is never merged.
	units = batchDML(parseStmts(t, "INSERT INTO t SELECT a FROM u; INSERT INTO t SELECT a FROM u;"))
	if len(units) != 2 {
		t.Fatalf("insert-select merged: %d units", len(units))
	}
}

func TestBatchDMLMultiRowStatements(t *testing.T) {
	units := batchDML(parseStmts(t, "INSERT INTO t (a) VALUES (1), (2); INSERT INTO t (a) VALUES (3);"))
	if len(units) != 1 {
		t.Fatalf("units = %d", len(units))
	}
	if got := units[0].perStmtRows; len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("perStmtRows = %v", got)
	}
}
