package hyperq

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/wire/cwp"
)

// The buffered result path with a 1-byte budget forces every batch through
// the spill file; data must come back intact and ordered.
func TestGatewayResultSpillPath(t *testing.T) {
	target := dialect.CloudA()
	eng := engine.New(target)
	be := eng.NewSession()
	if _, err := be.ExecSQL("CREATE TABLE wide (a INT, b VARCHAR(40))"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO wide VALUES (0, 'row-0')")
	for i := 1; i < 5000; i++ {
		fmt.Fprintf(&sb, ",(%d,'row-%d')", i, i)
	}
	if _, err := be.ExecSQL(sb.String()); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Target:       target,
		Driver:       &odbc.LocalDriver{Engine: eng},
		Catalog:      eng.Catalog().Clone(),
		ResultBudget: 1, // spill everything
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("spill")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run("SEL a, b FROM wide ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 5000 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, row := range rows {
		if row[0].I != int64(i) || row[1].S != fmt.Sprintf("row-%d", i) {
			t.Fatalf("row %d corrupted after spill: %v", i, row)
		}
	}
}

// Single-worker conversion must produce identical results to parallel.
func TestGatewayConversionWorkerEquivalence(t *testing.T) {
	build := func(workers int) []string {
		eng := engine.New(dialect.CloudA())
		be := eng.NewSession()
		if _, err := be.ExecSQL("CREATE TABLE t (a INT, d DATE)"); err != nil {
			t.Fatal(err)
		}
		if _, err := be.ExecSQL("INSERT INTO t VALUES (1, DATE '2020-01-01'), (2, DATE '2021-06-15'), (3, NULL)"); err != nil {
			t.Fatal(err)
		}
		g, err := New(Config{
			Target:         dialect.CloudA(),
			Driver:         &odbc.LocalDriver{Engine: eng},
			Catalog:        eng.Catalog().Clone(),
			ConvertWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := g.NewLocalSession("w")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res, err := s.Run("SEL a, d FROM t ORDER BY a")
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, row := range res[0].Rows {
			out = append(out, row[0].String()+"|"+row[1].String())
		}
		return out
	}
	seq := build(1)
	par := build(8)
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("row %d differs: %q vs %q", i, seq[i], par[i])
		}
	}
}

// The gateway composes with the scale-out replicated driver (Appendix B.3).
func TestGatewayWithReplicatedBackend(t *testing.T) {
	const replicas = 3
	engines := make([]*engine.Engine, replicas)
	drivers := make([]odbc.Driver, replicas)
	for i := range engines {
		engines[i] = engine.New(dialect.CloudA())
		be := engines[i].NewSession()
		if _, err := be.ExecSQL("CREATE TABLE t (x INT)"); err != nil {
			t.Fatal(err)
		}
		drivers[i] = &odbc.LocalDriver{Engine: engines[i]}
	}
	g, err := New(Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.ReplicatedDriver{Replicas: drivers},
		Catalog: engines[0].Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("app")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("INS t (41); INS t (1);"); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		n, _ := eng.NewSession().RowCount("t")
		if n != 2 {
			t.Fatalf("replica %d rows = %d", i, n)
		}
	}
	for i := 0; i < 2*replicas; i++ {
		res, err := s.Run("SEL SUM(x) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Rows[0][0].I != 42 {
			t.Fatalf("read %d = %v", i, res[0].Rows[0][0])
		}
	}
}

// Failure injection: the backend connection dies mid-session; the gateway
// surfaces a request error rather than wedging or panicking.
func TestGatewayBackendDeath(t *testing.T) {
	eng := engine.New(dialect.CloudA())
	be := eng.NewSession()
	if _, err := be.ExecSQL("CREATE TABLE t (x INT)"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = cwp.Serve(ln, eng) }()
	g, err := New(Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.NetworkDriver{Addr: ln.Addr().String(), User: "u", Password: "p"},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("app")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("SEL COUNT(*) FROM t"); err != nil {
		t.Fatal(err)
	}
	// Kill the backend.
	ln.Close()
	// Give in-flight accepts a moment; the established connection also dies
	// once the server loop returns — force it by closing the listener and
	// exhausting the request.
	_, err = s.Run("SEL COUNT(*) FROM t")
	// Either the cached connection still works (server goroutine alive) or
	// the error surfaces cleanly; a second gateway session must fail to
	// connect either way.
	if _, err2 := g.NewLocalSession("app2"); err2 == nil {
		t.Fatal("logon succeeded against a dead backend")
	}
	_ = err
}

// Unknown statements inside a macro surface the inner error code.
func TestGatewayMacroBodyErrors(t *testing.T) {
	eng := engine.New(dialect.CloudA())
	g, err := New(Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("app")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("CREATE MACRO broken AS (SEL * FROM missing_table;)"); err != nil {
		t.Fatal(err) // body parses; binding happens at EXEC
	}
	_, err = s.Run("EXEC broken")
	re, ok := err.(*RequestError)
	if !ok || re.Code != 3707 {
		t.Fatalf("err = %v", err)
	}
	// Macro with a syntax error in the body is rejected at CREATE.
	if _, err := s.Run("CREATE MACRO worse AS (SELEKT 1;)"); err == nil {
		t.Fatal("invalid macro body accepted")
	}
}

// Nested macros: EXEC inside a macro body.
func TestGatewayNestedMacros(t *testing.T) {
	eng := engine.New(dialect.CloudA())
	g, err := New(Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("app")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("CREATE MACRO inner1 (x INTEGER) AS (SEL :x + 1;)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("CREATE MACRO outer1 AS (EXEC inner1(41);)"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("EXEC outer1")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows[0][0].I != 42 {
		t.Fatalf("nested macro = %v", res[0].Rows[0][0])
	}
}

// NOT CASESPECIFIC columns (Table 2: unsupported column properties): the
// gateway keeps the property in its catalog and rewrites comparisons, since
// the target cannot represent it.
func TestGatewayCaseInsensitiveColumns(t *testing.T) {
	eng := engine.New(dialect.CloudA())
	g, err := New(Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("app")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("CREATE TABLE names (id INTEGER, nm VARCHAR(20) NOT CASESPECIFIC)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("INS names (1, 'Alice'); INS names (2, 'BOB');"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("SEL id FROM names WHERE nm = 'alice'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Rows) != 1 || res[0].Rows[0][0].I != 1 {
		t.Fatalf("case-insensitive match failed: %d rows", len(res[0].Rows))
	}
	// The backend itself stays case-sensitive — the semantics come from the
	// gateway rewrite, not the engine.
	direct, err := eng.NewSession().QuerySQL("SELECT id FROM names WHERE nm = 'alice'")
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Rows) != 0 {
		t.Fatal("engine is case-insensitive; emulation untestable")
	}
	// Case-sensitive columns are unaffected through the gateway.
	if _, err := s.Run("CREATE TABLE strict (nm VARCHAR(20))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("INS strict ('Alice')"); err != nil {
		t.Fatal(err)
	}
	res, err = s.Run("SEL COUNT(*) FROM strict WHERE nm = 'alice'")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows[0][0].I != 0 {
		t.Fatal("case-sensitive column matched wrong case")
	}
}

// EXPLAIN returns the translated SQL and plan without executing.
func TestGatewayExplain(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	res := run(t, s, `EXPLAIN SEL * FROM SALES
	  WHERE SALES_DATE > 1140101
	    AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
	  QUALIFY RANK(AMOUNT DESC) <= 2`)
	if res[0].Command != "EXPLAIN" || len(res[0].Rows) < 5 {
		t.Fatalf("explain = %+v", res[0])
	}
	var text strings.Builder
	for _, row := range res[0].Rows {
		text.WriteString(row[0].S)
		text.WriteByte('\n')
	}
	out := text.String()
	for _, want := range []string{"EXTRACT(DAY", "EXISTS", "window(RANK", "Date-Integer comparison"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// EXPLAIN of an eliminated statement.
	res = run(t, s, "EXPLAIN COLLECT STATISTICS ON SALES")
	joined := ""
	for _, row := range res[0].Rows {
		joined += row[0].S
	}
	if !strings.Contains(joined, "eliminated") {
		t.Errorf("explain of eliminated stmt: %s", joined)
	}
}

// DML batching (§4.3): contiguous single-row inserts execute as one backend
// statement but the client still receives one response per statement.
func TestGatewayDMLBatching(t *testing.T) {
	eng := engine.New(dialect.CloudA())
	be := eng.NewSession()
	if _, err := be.ExecSQL("CREATE TABLE batch_t (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("app")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(`
	  INS batch_t (1, 10);
	  INS batch_t (2, 20);
	  INS batch_t (3, 30);
	  SEL COUNT(*) FROM batch_t;`)
	if err != nil {
		t.Fatal(err)
	}
	// Four responses: three synthesized INSERT successes plus the SELECT.
	if len(res) != 4 {
		t.Fatalf("responses = %d", len(res))
	}
	for i := 0; i < 3; i++ {
		if res[i].Command != "INSERT" || res[i].Activity != 1 {
			t.Fatalf("response %d = %+v", i, res[i])
		}
	}
	if res[3].Rows[0][0].I != 3 {
		t.Fatalf("count = %v", res[3].Rows[0][0])
	}
	// But only two execution units reached the backend path.
	if got := g.MetricsSnapshot().Statements; got != 2 {
		t.Fatalf("executed statements = %d, want 2 (batched insert + select)", got)
	}
	// Inserts with different column lists do not merge.
	g.ResetMetrics()
	if _, err := s.Run("INSERT INTO batch_t (a) VALUES (9); INSERT INTO batch_t (b) VALUES (9);"); err != nil {
		t.Fatal(err)
	}
	if got := g.MetricsSnapshot().Statements; got != 2 {
		t.Fatalf("incompatible inserts merged: %d units", got)
	}
}
