package hyperq

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/querylog"
	"hyperq/internal/trace"
	"hyperq/internal/wire/tdp"
)

// newObsGateway builds a gateway over the shared SALES schema with the
// observability knobs dialed for testing: a 1ns slow-query threshold (every
// statement lands in /traces/slow) and an optional query log.
func newObsGateway(t *testing.T, qlog *querylog.Writer) *Gateway {
	t.Helper()
	target := dialect.CloudA()
	eng := engine.New(target)
	setup := eng.NewSession()
	for _, stmt := range []string{
		`CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)`,
		`INSERT INTO SALES VALUES
		   (100.00, DATE '2014-02-01', 1),
		   (250.00, DATE '2014-03-15', 1),
		   (80.00,  DATE '2013-12-31', 2)`,
	} {
		if _, err := setup.ExecSQL(stmt); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	g, err := New(Config{
		Target:    target,
		Driver:    &odbc.LocalDriver{Engine: eng},
		Catalog:   eng.Catalog().Clone(),
		SlowQuery: 1, // 1ns: everything is "slow"
		QueryLog:  qlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// metricValue extracts the value of one series line from Prometheus text.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
		if err != nil {
			t.Fatalf("bad metric line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %q not found in:\n%s", series, body)
	return 0
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, b)
	}
	return string(b)
}

// TestObservabilityEndToEnd is the acceptance scenario: statements arrive
// through the tdp wire client, /metrics serves non-zero per-stage latency
// histograms in Prometheus text format, /traces/slow returns the full span
// tree for statements slower than the threshold, /sessions shows the live
// session, and the query log captures one JSON line per request.
func TestObservabilityEndToEnd(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "query.log")
	qlog, err := querylog.Open(logPath, false)
	if err != nil {
		t.Fatal(err)
	}
	defer qlog.Close()
	g := newObsGateway(t, qlog)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = tdp.Serve(ln, g) }()
	c, err := tdp.Dial(ln.Addr().String(), "appuser", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const frontSQL = "SEL AMOUNT FROM SALES WHERE STORE = 1"
	if _, err := c.Request(frontSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(frontSQL); err != nil { // second run: cache hit
		t.Fatal(err)
	}

	srv := httptest.NewServer(g.DebugHandler())
	defer srv.Close()

	// /metrics: every pipeline stage must have recorded observations.
	body := httpGet(t, srv.URL+"/metrics")
	if !strings.Contains(body, "# TYPE hyperq_stage_duration_seconds histogram") {
		t.Fatalf("missing histogram TYPE header in:\n%s", body)
	}
	for _, stage := range []string{"parse", "bind", "transform", "serialize", "cache", "execute", "convert"} {
		series := `hyperq_stage_duration_seconds_count{stage="` + stage + `"}`
		if n := metricValue(t, body, series); n == 0 {
			t.Errorf("stage %q has zero observations", stage)
		}
	}
	if n := metricValue(t, body, "hyperq_request_duration_seconds_count"); n < 2 {
		t.Errorf("request histogram count = %v, want >= 2", n)
	}
	if n := metricValue(t, body, "hyperq_gateway_overhead_ratio_count"); n < 2 {
		t.Errorf("overhead histogram count = %v, want >= 2", n)
	}
	if n := metricValue(t, body, "hyperq_requests_total"); n < 2 {
		t.Errorf("requests_total = %v, want >= 2", n)
	}
	if n := metricValue(t, body, "hyperq_cache_hits_total"); n != 1 {
		t.Errorf("cache_hits_total = %v, want 1", n)
	}
	if n := metricValue(t, body, "hyperq_sessions_active"); n != 1 {
		t.Errorf("sessions_active = %v, want 1", n)
	}

	// /traces/slow: the 1ns threshold retains every statement with its full
	// span tree and the rewritten SQL-B text.
	var slow struct {
		ThresholdMS int64          `json:"slow_threshold_ms"`
		Traces      []*trace.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/traces/slow")), &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Traces) < 2 {
		t.Fatalf("slow traces = %d, want >= 2", len(slow.Traces))
	}
	tr := slow.Traces[0] // slowest-first; both ran the same SQL
	if tr.SQL != frontSQL {
		t.Errorf("trace SQL = %q, want %q", tr.SQL, frontSQL)
	}
	if tr.Outcome != "ok" || tr.DurNs <= 0 {
		t.Errorf("trace outcome/duration wrong: %q %d", tr.Outcome, tr.DurNs)
	}
	if len(tr.Translated) != 1 || tr.Translated[0] == "" {
		t.Errorf("translated SQL missing: %v", tr.Translated)
	}
	if tr.Root == nil || tr.Root.Name != "request" {
		t.Fatalf("span tree root wrong: %+v", tr.Root)
	}
	for _, name := range []string{"parse", "execute", "convert"} {
		if tr.FindSpan(name) == nil {
			t.Errorf("span %q missing from trace tree", name)
		}
	}
	if sp := tr.FindSpan("execute"); sp != nil && sp.DurNs <= 0 {
		t.Error("execute span has no duration")
	}

	// /traces mirrors the ring, newest first.
	var recent struct {
		Traces []*trace.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/traces")), &recent); err != nil {
		t.Fatal(err)
	}
	if len(recent.Traces) < 2 || recent.Traces[0].SQL != frontSQL {
		t.Fatalf("recent traces wrong: %d", len(recent.Traces))
	}
	// The repeated request short-circuits on the raw result cache.
	if recent.Traces[0].Cache != "raw-hit" {
		t.Errorf("newest trace cache = %q, want raw-hit", recent.Traces[0].Cache)
	}

	// /sessions: the live wire session with its counters.
	var sess struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/sessions")), &sess); err != nil {
		t.Fatal(err)
	}
	if len(sess.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sess.Sessions))
	}
	si := sess.Sessions[0]
	if si.User != "appuser" || si.Requests != 2 || si.Statements != 2 || si.CacheHits != 1 {
		t.Errorf("session info wrong: %+v", si)
	}
	if si.LastSQL != frontSQL {
		t.Errorf("session LastSQL = %q", si.LastSQL)
	}

	// Query log: one JSON line per request, with stage timings.
	qf, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	var entries []querylog.Entry
	lsc := bufio.NewScanner(qf)
	for lsc.Scan() {
		var e querylog.Entry
		if err := json.Unmarshal(lsc.Bytes(), &e); err != nil {
			t.Fatalf("bad query-log line: %v", err)
		}
		entries = append(entries, e)
	}
	if len(entries) != 2 {
		t.Fatalf("query log lines = %d, want 2", len(entries))
	}
	if entries[0].SQL != frontSQL || entries[0].Outcome != "ok" {
		t.Errorf("query log entry wrong: %+v", entries[0])
	}
	if entries[0].StageNs["execute"] <= 0 {
		t.Errorf("query log stage timings missing: %v", entries[0].StageNs)
	}
	if entries[1].Cache != "raw-hit" {
		t.Errorf("second entry cache = %q, want raw-hit", entries[1].Cache)
	}
}

// TestTraceAcrossReconnect asserts the trace of a request that survives a
// backend session drop records the retry, reconnect, and replay work nested
// under its execute span — the fault-tolerance path of DESIGN.md §7 made
// visible to the operator.
func TestTraceAcrossReconnect(t *testing.T) {
	g, _, fd := newFaultGateway(t, nil)
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run(t, s, "CREATE VOLATILE TABLE VT (X INT) ON COMMIT PRESERVE ROWS")
	run(t, s, "INSERT INTO VT VALUES (1)")

	fd.DropActiveSessions()
	run(t, s, "SEL COUNT(*) FROM SALES")

	recent := g.Traces().Recent()
	if len(recent) == 0 {
		t.Fatal("no traces recorded")
	}
	tr := recent[0]
	if tr.Outcome != "ok" {
		t.Fatalf("trace outcome = %q, want ok", tr.Outcome)
	}
	exec := tr.FindSpan("execute")
	if exec == nil {
		t.Fatal("execute span missing")
	}
	for _, name := range []string{"retry", "reconnect", "replay"} {
		if tr.FindSpan(name) == nil {
			t.Errorf("span %q missing from reconnect trace", name)
		}
	}
	// The replay span must be nested under the reconnect span.
	rc := tr.FindSpan("reconnect")
	var replayNested bool
	for _, ch := range rc.Children {
		if ch.Name == "replay" {
			replayNested = true
		}
	}
	if !replayNested {
		t.Error("replay span not nested under reconnect")
	}
	if tr.StageNs["execute"] <= 0 {
		t.Errorf("execute stage time missing: %v", tr.StageNs)
	}
}

// TestEmulationFanOutTraced asserts a statement emulated as multiple backend
// requests records its fan-out: BackendRequests > 1, all rewritten texts kept,
// and an "emulate" span grouping the extra requests.
func TestEmulationFanOutTraced(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudC()) // CloudC lacks recursion
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run(t, s, `WITH RECURSIVE CHAIN (EMPNO, MGRNO, DEPTH) AS (
	  SELECT EMPNO, MGRNO, 0 FROM EMP WHERE EMPNO = 1
	  UNION ALL
	  SELECT E.EMPNO, E.MGRNO, C.DEPTH + 1 FROM EMP E JOIN CHAIN C ON E.EMPNO = C.MGRNO
	) SELECT COUNT(*) FROM CHAIN`)

	tr := g.Traces().Recent()[0]
	if tr.BackendRequests <= 1 {
		t.Fatalf("BackendRequests = %d, want > 1 (emulation fan-out)", tr.BackendRequests)
	}
	if len(tr.Translated) != tr.BackendRequests {
		t.Errorf("translated texts = %d, want %d", len(tr.Translated), tr.BackendRequests)
	}
	esp := tr.FindSpan("emulate")
	if esp == nil {
		t.Fatal("emulate span missing")
	}
	var feature string
	for _, a := range esp.Attrs {
		if a.Key == "feature" {
			feature = a.Value
		}
	}
	if feature != "recursive" {
		t.Errorf("emulate feature = %q, want recursive", feature)
	}
}

// TestErrorClassRecorded asserts failed statements are classified in the trace.
func TestErrorClassRecorded(t *testing.T) {
	g := newObsGateway(t, nil)
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("SELECT FROM WHERE"); err == nil {
		t.Fatal("expected syntax error")
	}
	tr := g.Traces().Recent()[0]
	if tr.Outcome != "error" || tr.ErrClass != "syntax" || tr.ErrCode != 3706 {
		t.Errorf("error trace wrong: outcome=%q class=%q code=%d", tr.Outcome, tr.ErrClass, tr.ErrCode)
	}
	if _, err := s.Run("SELECT X FROM NO_SUCH_TABLE"); err == nil {
		t.Fatal("expected semantic error")
	}
	if tr := g.Traces().Recent()[0]; tr.ErrClass != "semantic" {
		t.Errorf("semantic error class = %q", tr.ErrClass)
	}
}

// TestResetMetricsClearsObservability asserts ResetMetrics also clears the
// stage histograms and the trace ring (the -stats satellite contract).
func TestResetMetricsClearsObservability(t *testing.T) {
	g := newObsGateway(t, nil)
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run(t, s, "SEL COUNT(*) FROM SALES")
	if g.Stages().Request.Snapshot().Count == 0 {
		t.Fatal("no request observations before reset")
	}
	if len(g.Traces().Recent()) == 0 {
		t.Fatal("no traces before reset")
	}
	g.ResetMetrics()
	if n := g.Stages().Request.Snapshot().Count; n != 0 {
		t.Errorf("request histogram count after reset = %d", n)
	}
	if n := g.Stages().Stage("parse").Snapshot().Count; n != 0 {
		t.Errorf("parse histogram count after reset = %d", n)
	}
	if n := len(g.Traces().Recent()); n != 0 {
		t.Errorf("trace ring size after reset = %d", n)
	}
	if m := g.MetricsSnapshot(); m.Requests != 0 {
		t.Errorf("requests counter after reset = %d", m.Requests)
	}
}

// TestTracingDisabled asserts DisableTracing suppresses span traces while the
// stage histograms keep recording.
func TestTracingDisabled(t *testing.T) {
	target := dialect.CloudA()
	eng := engine.New(target)
	setup := eng.NewSession()
	if _, err := setup.ExecSQL(`CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)`); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Target:         target,
		Driver:         &odbc.LocalDriver{Engine: eng},
		Catalog:        eng.Catalog().Clone(),
		DisableTracing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run(t, s, "SEL COUNT(*) FROM SALES")
	if n := len(g.Traces().Recent()); n != 0 {
		t.Errorf("traces recorded with tracing disabled: %d", n)
	}
	if g.Stages().Stage("parse").Snapshot().Count == 0 {
		t.Error("histograms must keep recording with tracing disabled")
	}
	if g.Stages().Request.Snapshot().Count == 0 {
		t.Error("request histogram must keep recording with tracing disabled")
	}
}

// SlowThreshold sanity: a generous threshold keeps fast statements out of the
// slow list while the recent ring still records them.
func TestSlowThresholdFilters(t *testing.T) {
	target := dialect.CloudA()
	eng := engine.New(target)
	setup := eng.NewSession()
	if _, err := setup.ExecSQL(`CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)`); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Target:    target,
		Driver:    &odbc.LocalDriver{Engine: eng},
		Catalog:   eng.Catalog().Clone(),
		SlowQuery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run(t, s, "SEL COUNT(*) FROM SALES")
	if n := len(g.Traces().Slow()); n != 0 {
		t.Errorf("fast statement retained as slow: %d", n)
	}
	if n := len(g.Traces().Recent()); n != 1 {
		t.Errorf("recent ring size = %d, want 1", n)
	}
}
