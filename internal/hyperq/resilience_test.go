package hyperq

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/faultdriver"
	"hyperq/internal/wire/tdp"
)

// newFaultGateway fronts the shared test schema with a gateway whose backend
// driver is a ResilientDriver over a fault-injection driver — the full
// fault-tolerant execution stack of DESIGN.md §7, minus the real network.
func newFaultGateway(t *testing.T, tune func(*odbc.ResilientDriver)) (*Gateway, *engine.Engine, *faultdriver.Driver) {
	t.Helper()
	target := dialect.CloudA()
	eng := engine.New(target)
	setup := eng.NewSession()
	for _, stmt := range []string{
		`CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)`,
		`INSERT INTO SALES VALUES
		   (100.00, DATE '2014-02-01', 1),
		   (250.00, DATE '2014-03-15', 1),
		   (80.00,  DATE '2013-12-31', 2)`,
	} {
		if _, err := setup.ExecSQL(stmt); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	fd := faultdriver.New(&odbc.LocalDriver{Engine: eng})
	resilience := &odbc.ResilienceMetrics{}
	rd := &odbc.ResilientDriver{
		Inner:   fd,
		Metrics: resilience,
		Sleep:   func(time.Duration) {},
	}
	if tune != nil {
		tune(rd)
	}
	g, err := New(Config{
		Target:     target,
		Driver:     rd,
		Catalog:    eng.Catalog().Clone(),
		Resilience: resilience,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, eng, fd
}

// The acceptance scenario: a frontend session survives a mid-session backend
// drop — the gateway reconnects, replays the session state (SET overlay and
// volatile-table DDL), re-executes the read, and returns correct results,
// with the frontend connection never noticing.
func TestGatewaySurvivesBackendBounce(t *testing.T) {
	g, _, fd := newFaultGateway(t, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = tdp.Serve(ln, g) }()
	c, err := tdp.Dial(ln.Addr().String(), "appuser", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Establish session state on both sides of the gateway: a SET overlay
	// (gateway-side) and a volatile table (backend session state).
	if _, err := c.Request("SET SESSION DATEFORM = ansidate"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request("CREATE VOLATILE TABLE VT (X INT) ON COMMIT PRESERVE ROWS"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request("INSERT INTO VT VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	// The backend bounces: every live backend session drops.
	fd.DropActiveSessions()

	// The next read succeeds transparently with correct results.
	stmts, err := c.Request("SEL COUNT(*) FROM SALES")
	if err != nil {
		t.Fatalf("read after backend bounce: %v", err)
	}
	if got := stmts[0].Rows[0][0].I; got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	// The volatile table was re-created on the replacement session (its
	// contents reset, as after a warehouse session bounce): it answers
	// queries instead of failing with "table does not exist".
	stmts, err = c.Request("SEL COUNT(*) FROM VT")
	if err != nil {
		t.Fatalf("volatile table lost across reconnect: %v", err)
	}
	if got := stmts[0].Rows[0][0].I; got != 0 {
		t.Errorf("replayed volatile table rows = %d, want 0 (DDL replays, contents do not)", got)
	}
	// The gateway-side SET overlay survived too.
	stmts, err = c.Request("HELP SESSION")
	if err != nil {
		t.Fatal(err)
	}
	var dateform string
	for _, row := range stmts[0].Rows {
		if row[0].S == "Current DateForm" {
			dateform = row[1].S
		}
	}
	if dateform != "ansidate" {
		t.Errorf("DateForm after reconnect = %q, want ansidate", dateform)
	}
	snap := g.MetricsSnapshot()
	if snap.Reconnects != 1 || snap.Replays != 1 {
		t.Errorf("Reconnects/Replays = %d/%d, want 1/1", snap.Reconnects, snap.Replays)
	}
	if snap.Retries == 0 {
		t.Error("Retries = 0, want > 0")
	}
}

// A write that was already on the wire when the connection died must NOT be
// retried: the frontend sees a transient-failure code and the engine state
// shows the statement executed at most once.
func TestGatewayWriteNotRetriedAfterDrop(t *testing.T) {
	g, eng, fd := newFaultGateway(t, nil)
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("SEL COUNT(*) FROM SALES"); err != nil {
		t.Fatal(err)
	}
	fd.DropActiveSessions()
	before := fd.Execs()
	_, err = s.Run("INSERT INTO SALES VALUES (1.00, DATE '2020-01-01', 9)")
	var re *RequestError
	if !errors.As(err, &re) || re.Code != tdp.CodeWriteStateUnknown {
		t.Fatalf("write after drop: err = %v, want RequestError %d", err, tdp.CodeWriteStateUnknown)
	}
	if got := fd.Execs() - before; got != 1 {
		t.Errorf("exec attempts = %d, want exactly 1 (write never retried)", got)
	}
	res, err := eng.NewSession().ExecSQL("SELECT COUNT(*) FROM SALES")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows[0][0].I; got != 3 {
		t.Errorf("engine rows = %d, want 3 (dropped insert not applied)", got)
	}
	// The session heals: re-issuing the write (the application's decision)
	// succeeds on a replacement connection.
	if _, err := s.Run("INSERT INTO SALES VALUES (1.00, DATE '2020-01-01', 9)"); err != nil {
		t.Fatalf("re-issued write: %v", err)
	}
}

// A hard-down backend trips the circuit breaker: subsequent requests fail
// fast (well under any backoff/deadline budget) with a frontend-visible
// failure code instead of hanging.
func TestGatewayBreakerFailsFast(t *testing.T) {
	g, _, fd := newFaultGateway(t, func(rd *odbc.ResilientDriver) {
		rd.BreakerThreshold = 2
		rd.BreakerCooldown = time.Hour
		rd.MaxRetries = 2
	})
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("SEL COUNT(*) FROM SALES"); err != nil {
		t.Fatal(err)
	}
	fd.DropActiveSessions()
	fd.RefuseConnects(-1)
	// First request: exec fails, reconnect attempts exhaust and trip the
	// breaker.
	if _, err := s.Run("SEL COUNT(*) FROM SALES"); err == nil {
		t.Fatal("request against hard-down backend succeeded")
	}
	snap := g.MetricsSnapshot()
	if snap.BreakerOpen == 0 {
		t.Fatal("BreakerOpen = 0, want > 0")
	}
	// Second request: the open breaker fails it fast, without dialing.
	attempts := fd.Connects()
	start := time.Now()
	_, err = s.Run("SEL COUNT(*) FROM SALES")
	elapsed := time.Since(start)
	var re *RequestError
	if !errors.As(err, &re) || re.Code != tdp.CodeBackendUnavailable {
		t.Fatalf("open breaker: err = %v, want RequestError %d", err, tdp.CodeBackendUnavailable)
	}
	if fd.Connects() != attempts {
		t.Error("open breaker still dialed the backend")
	}
	if elapsed > time.Second {
		t.Errorf("fail-fast took %v", elapsed)
	}
	if !strings.Contains(re.Message, "temporarily unavailable") {
		t.Errorf("message = %q", re.Message)
	}
}

// The configured BackendTimeout bounds a stalled backend request.
func TestGatewayBackendTimeout(t *testing.T) {
	target := dialect.CloudA()
	eng := engine.New(target)
	if _, err := eng.NewSession().ExecSQL(`CREATE TABLE SALES (AMOUNT DECIMAL(12,2))`); err != nil {
		t.Fatal(err)
	}
	fd := faultdriver.New(&odbc.LocalDriver{Engine: eng})
	resilience := &odbc.ResilienceMetrics{}
	rd := &odbc.ResilientDriver{Inner: fd, Metrics: resilience, Sleep: func(time.Duration) {}}
	g, err := New(Config{
		Target:         target,
		Driver:         rd,
		Catalog:        eng.Catalog().Clone(),
		Resilience:     resilience,
		BackendTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fd.SetLatency(5 * time.Second)
	start := time.Now()
	_, err = s.Run("SEL COUNT(*) FROM SALES")
	elapsed := time.Since(start)
	var re *RequestError
	if !errors.As(err, &re) || re.Code != tdp.CodeWriteStateUnknown {
		t.Fatalf("stalled backend: err = %v, want RequestError %d", err, tdp.CodeWriteStateUnknown)
	}
	if elapsed > 2*time.Second {
		t.Errorf("request took %v, want bounded by the 30ms deadline", elapsed)
	}
	// Later requests recover once the stall clears.
	fd.SetLatency(0)
	if _, err := s.Run("SEL COUNT(*) FROM SALES"); err != nil {
		t.Fatalf("request after stall cleared: %v", err)
	}
}

// An unreachable backend at logon yields a clean logon-failure record: the
// bteq-visible error is one actionable line, not a wrapped Go error chain.
func TestGatewayLogonBackendUnavailable(t *testing.T) {
	g, _, fd := newFaultGateway(t, func(rd *odbc.ResilientDriver) {
		rd.MaxRetries = -1
	})
	fd.RefuseConnects(-1)

	// Direct handler check: typed LogonError with the logons-denied code.
	_, err := g.Logon("appuser", "pw")
	var le *LogonError
	if !errors.As(err, &le) || le.Code != tdp.CodeLogonDenied {
		t.Fatalf("Logon err = %v, want LogonError %d", err, tdp.CodeLogonDenied)
	}

	// Over the wire: the client sees the same clean record.
	ln, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		t.Fatal(lerr)
	}
	defer ln.Close()
	go func() { _ = tdp.Serve(ln, g) }()
	_, err = tdp.Dial(ln.Addr().String(), "appuser", "pw")
	if err == nil {
		t.Fatal("logon against down backend succeeded")
	}
	if !strings.Contains(err.Error(), "backend system unavailable") {
		t.Errorf("wire logon error = %q, want the backend-unavailable record", err)
	}
	if strings.Contains(err.Error(), "connection refused") {
		t.Errorf("raw connection error leaked to the frontend: %q", err)
	}
}
