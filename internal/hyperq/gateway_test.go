package hyperq

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/feature"
	"hyperq/internal/odbc"
	"hyperq/internal/types"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/wire/tdp"
)

// newTestGateway builds an engine modeling the target, loads the shared test
// schema, and fronts it with a gateway (in-process backend driver).
func newTestGateway(t *testing.T, target *dialect.Profile) (*Gateway, *engine.Engine) {
	t.Helper()
	eng := engine.New(target)
	setup := eng.NewSession()
	ddl := []string{
		`CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)`,
		`CREATE TABLE SALES_HISTORY (GROSS DECIMAL(12,2), NET DECIMAL(12,2))`,
		`CREATE TABLE EMP (EMPNO INT, MGRNO INT)`,
		`INSERT INTO SALES VALUES
		   (100.00, DATE '2014-02-01', 1),
		   (250.00, DATE '2014-03-15', 1),
		   (80.00,  DATE '2013-12-31', 2),
		   (250.00, DATE '2014-06-01', 2),
		   (40.00,  DATE '2015-01-05', 3)`,
		`INSERT INTO SALES_HISTORY VALUES (90.00, 70.00), (240.00, 200.00)`,
		`INSERT INTO EMP VALUES (1,7),(7,8),(8,10),(9,10),(10,11)`,
	}
	for _, stmt := range ddl {
		if _, err := setup.ExecSQL(stmt); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	g, err := New(Config{
		Target:  target,
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, eng
}

func run(t *testing.T, s *Session, sql string) []*FrontResult {
	t.Helper()
	out, err := s.Run(sql)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return out
}

func rowStrings(res *FrontResult) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var parts []string
		for _, d := range row {
			parts = append(parts, d.String())
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func session(t *testing.T, g *Gateway) *Session {
	t.Helper()
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGatewaySimpleQuery(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	res := run(t, s, "SEL STORE, AMOUNT FROM SALES WHERE AMOUNT > 90 ORDER BY AMOUNT DESC, STORE")
	if len(res) != 1 || res[0].Command != "SELECT" {
		t.Fatalf("results = %+v", res)
	}
	got := rowStrings(res[0])
	want := []string{"1|250.00", "2|250.00", "1|100.00"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows = %v", got)
		}
	}
	// Frontend column names survive translation (not backend cN names).
	if res[0].Cols[0].Name != "STORE" || res[0].Cols[1].Name != "AMOUNT" {
		t.Errorf("cols = %+v", res[0].Cols)
	}
}

// The paper's Example 2 through the whole gateway against every target.
func TestGatewayExample2AllTargets(t *testing.T) {
	const example2 = `
	  SEL * FROM SALES
	  WHERE SALES_DATE > 1140101
	    AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
	  QUALIFY RANK(AMOUNT DESC) <= 2`
	for _, target := range dialect.CloudTargets() {
		g, _ := newTestGateway(t, target)
		s := session(t, g)
		res := run(t, s, example2)
		if len(res[0].Rows) != 2 {
			t.Fatalf("%s: rows = %v", target.Name, rowStrings(res[0]))
		}
		s.Close()
	}
}

func TestGatewayDML(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudB())
	s := session(t, g)
	defer s.Close()
	res := run(t, s, "INS SALES (999.99, DATE '2020-01-01', 9)")
	if res[0].Activity != 1 || res[0].Command != "INSERT" {
		t.Fatalf("insert = %+v", res[0])
	}
	res = run(t, s, "UPD SALES SET AMOUNT = 0 WHERE STORE = 9")
	if res[0].Activity != 1 {
		t.Fatalf("update = %+v", res[0])
	}
	res = run(t, s, "DEL FROM SALES WHERE STORE = 9")
	if res[0].Activity != 1 {
		t.Fatalf("delete = %+v", res[0])
	}
}

func TestGatewayMultiStatementRequest(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	stats := feature.NewStats()
	g.cfg.Stats = stats
	s := session(t, g)
	defer s.Close()
	res := run(t, s, "SEL COUNT(*) FROM SALES; SEL COUNT(*) FROM EMP;")
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if !stats.Present().Has(feature.MultiStatement) {
		t.Error("MultiStatement not recorded")
	}
}

// Recursive emulation on a target without recursion (Figure 7 protocol).
func TestGatewayRecursiveEmulation(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA()) // CloudA: no recursion
	s := session(t, g)
	defer s.Close()
	res := run(t, s, `
	  WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
	    SEL EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
	    UNION ALL
	    SEL EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS WHERE REPORTS.EMPNO = EMP.MGRNO
	  )
	  SEL EMPNO FROM REPORTS ORDER BY EMPNO`)
	got := rowStrings(res[0])
	want := []string{"1", "7", "8", "9"}
	if len(got) != len(want) {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows = %v", got)
		}
	}
	// Temp tables must be cleaned up: a second run succeeds identically.
	res2 := run(t, s, `
	  WITH RECURSIVE R (E, M) AS (
	    SEL EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
	    UNION ALL
	    SEL EMP.EMPNO, EMP.MGRNO FROM EMP, R WHERE R.E = EMP.MGRNO
	  )
	  SEL COUNT(*) FROM R`)
	if rowStrings(res2[0])[0] != "4" {
		t.Fatalf("second recursion = %v", rowStrings(res2[0]))
	}
}

// Native recursion on a capable target: no temp-table protocol needed.
func TestGatewayRecursiveNative(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudD())
	s := session(t, g)
	defer s.Close()
	res := run(t, s, `
	  WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
	    SEL EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
	    UNION ALL
	    SEL EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS WHERE REPORTS.EMPNO = EMP.MGRNO
	  )
	  SEL EMPNO FROM REPORTS ORDER BY EMPNO`)
	if len(res[0].Rows) != 4 {
		t.Fatalf("rows = %v", rowStrings(res[0]))
	}
}

func TestGatewayMacros(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	stats := feature.NewStats()
	g.cfg.Stats = stats
	s := session(t, g)
	defer s.Close()
	run(t, s, "CREATE MACRO topsales (lim INTEGER) AS (SEL STORE, AMOUNT FROM SALES QUALIFY RANK(AMOUNT DESC) <= :lim ORDER BY AMOUNT DESC;)")
	res := run(t, s, "EXEC topsales(1)")
	got := rowStrings(res[0])
	if len(got) != 2 || !strings.HasSuffix(got[0], "250.00") {
		t.Fatalf("macro result = %v", got)
	}
	if !stats.Present().Has(feature.Macro) {
		t.Error("Macro feature not recorded")
	}
	// REPLACE and DROP.
	run(t, s, "REPLACE MACRO topsales AS (SEL 1;)")
	run(t, s, "DROP MACRO topsales")
	if _, err := s.Run("EXEC topsales"); err == nil {
		t.Error("dropped macro still executable")
	}
}

func TestGatewayMacroArgValidation(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	run(t, s, "CREATE MACRO m (x INTEGER) AS (SEL :x;)")
	if _, err := s.Run("EXEC m"); err == nil {
		t.Error("missing argument accepted")
	}
	if _, err := s.Run("EXEC m(1, 2)"); err == nil {
		t.Error("extra argument accepted")
	}
	res := run(t, s, "EXEC m(-7)")
	if rowStrings(res[0])[0] != "-7" {
		t.Fatalf("macro param = %v", rowStrings(res[0]))
	}
}

func TestGatewayMerge(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA()) // CloudA lacks MERGE
	s := session(t, g)
	defer s.Close()
	run(t, s, "CREATE TABLE tgt (k INT, v INT)")
	run(t, s, "CREATE TABLE src (k INT, v INT)")
	run(t, s, "INSERT INTO tgt (k, v) VALUES (1, 10), (2, 20)")
	run(t, s, "INSERT INTO src (k, v) VALUES (2, 200), (3, 300)")
	res := run(t, s, `
	  MERGE INTO tgt USING src ON tgt.k = src.k
	  WHEN MATCHED THEN UPDATE SET v = src.v
	  WHEN NOT MATCHED THEN INSERT (k, v) VALUES (src.k, src.v)`)
	if res[0].Command != "MERGE" || res[0].Activity != 2 {
		t.Fatalf("merge = %+v", res[0])
	}
	check := run(t, s, "SEL k, v FROM tgt ORDER BY k")
	got := rowStrings(check[0])
	want := []string{"1|10", "2|200", "3|300"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after merge = %v", got)
		}
	}
}

func TestGatewaySetTableDeduplication(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	run(t, s, "CREATE SET TABLE st (a INT, b INT)")
	run(t, s, "INSERT INTO st (a, b) VALUES (1, 1), (1, 1), (2, 2)")
	res := run(t, s, "SEL COUNT(*) FROM st")
	if rowStrings(res[0])[0] != "2" {
		t.Fatalf("set table rows = %v", rowStrings(res[0]))
	}
	// Re-inserting an existing row is silently eliminated.
	run(t, s, "INSERT INTO st (a, b) VALUES (1, 1), (3, 3)")
	res = run(t, s, "SEL COUNT(*) FROM st")
	if rowStrings(res[0])[0] != "3" {
		t.Fatalf("set table rows after reinsert = %v", rowStrings(res[0]))
	}
}

func TestGatewayHelpSession(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudC())
	s := session(t, g)
	defer s.Close()
	res := run(t, s, "HELP SESSION")
	if len(res[0].Rows) < 5 {
		t.Fatalf("help session rows = %d", len(res[0].Rows))
	}
	found := false
	for _, row := range res[0].Rows {
		if row[0].S == "User Name" && row[1].S == "appuser" {
			found = true
		}
	}
	if !found {
		t.Errorf("user missing from HELP SESSION: %v", rowStrings(res[0]))
	}
}

func TestGatewayHelpTable(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	res := run(t, s, "HELP TABLE SALES")
	if len(res[0].Rows) != 3 {
		t.Fatalf("help table rows = %v", rowStrings(res[0]))
	}
	if res[0].Rows[0][0].S != "AMOUNT" || !strings.Contains(res[0].Rows[0][1].S, "DECIMAL") {
		t.Errorf("help table = %v", rowStrings(res[0]))
	}
}

func TestGatewayViews(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	run(t, s, "CREATE VIEW bigsales AS SEL AMOUNT, STORE FROM SALES WHERE AMOUNT > 90")
	res := run(t, s, "SEL COUNT(*) FROM bigsales")
	if rowStrings(res[0])[0] != "3" {
		t.Fatalf("view query = %v", rowStrings(res[0]))
	}
	// DML through an updatable view redirects to the base table.
	run(t, s, "UPDATE bigsales SET STORE = 7 WHERE AMOUNT = 100.00")
	res = run(t, s, "SEL COUNT(*) FROM SALES WHERE STORE = 7")
	if rowStrings(res[0])[0] != "1" {
		t.Fatalf("dml-on-view = %v", rowStrings(res[0]))
	}
	run(t, s, "DROP VIEW bigsales")
	if _, err := s.Run("SEL * FROM bigsales"); err == nil {
		t.Error("dropped view still queryable")
	}
}

func TestGatewayVolatileTables(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s1 := session(t, g)
	defer s1.Close()
	s2 := session(t, g)
	defer s2.Close()
	run(t, s1, "CREATE VOLATILE TABLE vt (x INT) ON COMMIT PRESERVE ROWS")
	run(t, s1, "INSERT INTO vt (x) VALUES (1), (2)")
	res := run(t, s1, "SEL COUNT(*) FROM vt")
	if rowStrings(res[0])[0] != "2" {
		t.Fatalf("volatile rows = %v", rowStrings(res[0]))
	}
	if _, err := s2.Run("SEL * FROM vt"); err == nil {
		t.Error("volatile table visible in other session")
	}
}

func TestGatewayCollectStatsEliminated(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	res := run(t, s, "COLLECT STATISTICS ON SALES COLUMN (STORE)")
	if res[0].Command != "COLLECT STATISTICS" {
		t.Fatalf("collect stats = %+v", res[0])
	}
}

func TestGatewayBtEt(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	res := run(t, s, "BT; SEL 1; ET;")
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
}

func TestGatewaySetSession(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	run(t, s, "SET SESSION DATEFORM = ansidate")
	res := run(t, s, "HELP SESSION")
	found := false
	for _, row := range res[0].Rows {
		if row[0].S == "Current DateForm" && row[1].S == "ansidate" {
			found = true
		}
	}
	if !found {
		t.Error("session setting not reflected")
	}
}

func TestGatewaySyntaxErrorCode(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	_, err := s.Run("SELECTT 1")
	re, ok := err.(*RequestError)
	if !ok || re.Code != 3706 {
		t.Fatalf("err = %v", err)
	}
	_, err = s.Run("SEL nope FROM SALES")
	re, ok = err.(*RequestError)
	if !ok || re.Code != 3707 {
		t.Fatalf("err = %v", err)
	}
}

func TestGatewayMetrics(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	run(t, s, "SEL * FROM SALES")
	m := g.MetricsSnapshot()
	if m.Requests != 1 || m.Translate <= 0 || m.Execute <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	g.ResetMetrics()
	if g.MetricsSnapshot().Requests != 0 {
		t.Error("reset failed")
	}
}

// Full stack over both wire protocols: bteq-style TDP client → gateway →
// CWP → engine. This is the paper's Figure 1(b) data path end to end.
func TestGatewayFullWireStack(t *testing.T) {
	target := dialect.CloudA()
	eng := engine.New(target)
	setup := eng.NewSession()
	for _, stmt := range []string{
		"CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)",
		"INSERT INTO SALES VALUES (100.00, DATE '2014-02-01', 1), (250.00, DATE '2014-03-15', 2)",
	} {
		if _, err := setup.ExecSQL(stmt); err != nil {
			t.Fatal(err)
		}
	}
	// Backend server (WP-B).
	beLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer beLn.Close()
	go func() { _ = cwp.Serve(beLn, eng) }()

	// Gateway server (WP-A) in front.
	g, err := New(Config{
		Target:  target,
		Driver:  &odbc.NetworkDriver{Addr: beLn.Addr().String(), User: "gw", Password: "pw"},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer feLn.Close()
	go func() { _ = tdp.Serve(feLn, g) }()

	// Unmodified client application speaking WP-A.
	client, err := tdp.Dial(feLn.Addr().String(), "appuser", "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	stmts, err := client.Request("SEL STORE, AMOUNT, SALES_DATE FROM SALES WHERE SALES_DATE > 1140101 ORDER BY STORE")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 || len(stmts[0].Rows) != 2 {
		t.Fatalf("wire result = %+v", stmts)
	}
	// The DATE travelled in Teradata's internal integer encoding and decodes
	// back to the civil date.
	if stmts[0].Rows[0][2].String() != "2014-02-01" {
		t.Errorf("date = %s", stmts[0].Rows[0][2])
	}
	if stmts[0].Cols[1].Name != "AMOUNT" {
		t.Errorf("cols = %+v", stmts[0].Cols)
	}
	// Failure parcels surface as request errors.
	if _, err := client.Request("SEL bogus FROM SALES"); err == nil {
		t.Error("error not propagated over the wire")
	}
	// The connection survives a failed request.
	if _, err := client.Request("SEL 1"); err != nil {
		t.Errorf("connection unusable after failure: %v", err)
	}
}

func TestGatewayLogonValidation(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	if _, err := g.Logon("", "pw"); err == nil {
		t.Error("empty user accepted")
	}
	h, err := g.Logon("someone", "pw")
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
}

func TestGatewayImplicitJoinThroughGateway(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudB())
	stats := feature.NewStats()
	g.cfg.Stats = stats
	s := session(t, g)
	defer s.Close()
	res := run(t, s, "SEL DISTINCT EMP.EMPNO FROM EMP WHERE SALES.STORE = 1 AND EMP.EMPNO < 8 ORDER BY 1")
	if len(res[0].Rows) != 2 {
		t.Fatalf("rows = %v", rowStrings(res[0]))
	}
	if !stats.Present().Has(feature.ImplicitJoin) {
		t.Error("ImplicitJoin not recorded")
	}
}

func TestGatewayDecimalConversion(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	// AVG yields a wider scale on the backend; conversion must match the
	// frontend plan's declared type.
	res := run(t, s, "SEL AVG(AMOUNT) FROM SALES")
	if res[0].Cols[0].Type.Kind != types.KindDecimal {
		t.Fatalf("avg type = %v", res[0].Cols[0].Type)
	}
	if rowStrings(res[0])[0] != "144.0000" {
		t.Fatalf("avg = %v", rowStrings(res[0]))
	}
}

func TestGatewayGTT(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()
	run(t, s, "CREATE GLOBAL TEMPORARY TABLE gtt (x INT) ON COMMIT PRESERVE ROWS")
	run(t, s, "INSERT INTO gtt (x) VALUES (5)")
	res := run(t, s, "SEL COUNT(*) FROM gtt")
	if rowStrings(res[0])[0] != "1" {
		t.Fatalf("gtt rows = %v", rowStrings(res[0]))
	}
}

func TestGatewayStress(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	const sessions = 8
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func(i int) {
			s, err := g.NewLocalSession(fmt.Sprintf("user%d", i))
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for j := 0; j < 25; j++ {
				if _, err := s.Run("SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY STORE ORDER BY 1"); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < sessions; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	m := g.MetricsSnapshot()
	if m.Requests != sessions*25 {
		t.Fatalf("requests = %d", m.Requests)
	}
}
