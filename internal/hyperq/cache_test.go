package hyperq

import (
	"fmt"
	"sync"
	"testing"
)

func testEntry(key string, size int) *cacheEntry {
	return &cacheEntry{key: key, sql: "SELECT 1", size: size}
}

func TestCacheGetPut(t *testing.T) {
	c := newTranslationCache(64, 1<<20)
	if c.get("k") != nil {
		t.Fatal("hit on empty cache")
	}
	c.put(testEntry("k", 100))
	e := c.get("k")
	if e == nil || e.sql != "SELECT 1" {
		t.Fatalf("entry = %+v", e)
	}
	// Replacement keeps a single entry.
	c.put(testEntry("k", 120))
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestCacheEntryBoundEviction(t *testing.T) {
	// One entry per shard allowed.
	c := newTranslationCache(cacheShards, 1<<20)
	evicted := 0
	for i := 0; i < 10*cacheShards; i++ {
		evicted += c.put(testEntry(fmt.Sprintf("key-%d", i), 100))
	}
	if c.len() > cacheShards {
		t.Fatalf("len = %d, want <= %d", c.len(), cacheShards)
	}
	if evicted == 0 {
		t.Fatal("no evictions reported")
	}
}

func TestCacheByteBoundEviction(t *testing.T) {
	// Per-shard byte budget of 1000: a 400-byte entry evicts older ones once
	// a shard holds three.
	c := newTranslationCache(1<<20, 1000*cacheShards)
	for i := 0; i < 100; i++ {
		c.put(testEntry(fmt.Sprintf("key-%d", i), 400))
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if s.bytes > 1000 && s.lru.Len() > 1 {
			t.Errorf("shard %d holds %d bytes in %d entries", i, s.bytes, s.lru.Len())
		}
		s.mu.Unlock()
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Capacity 1 per shard; two keys in the same shard: touching the first
	// then inserting the second evicts the first (it is the LRU victim), and
	// the second survives.
	c := newTranslationCache(cacheShards, 1<<20)
	shard := c.shard("a")
	var same []string
	for i := 0; len(same) < 2; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == shard {
			same = append(same, k)
		}
	}
	c.put(testEntry(same[0], 10))
	c.put(testEntry(same[1], 10))
	if c.get(same[0]) != nil {
		t.Fatal("LRU victim survived")
	}
	if c.get(same[1]) == nil {
		t.Fatal("fresh entry evicted")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newTranslationCache(256, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%64)
				if e := c.get(k); e == nil {
					c.put(testEntry(k, 50))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() == 0 || c.len() > 64 {
		t.Fatalf("len = %d", c.len())
	}
}
