package hyperq

import (
	"fmt"
	"sync"
	"testing"

	"hyperq/internal/dialect"
)

// TestTranslationCacheHitMissCounters checks the counter discipline: first
// occurrence misses, byte-identical repeats hit the request tier, and
// literal variants hit the fingerprint tier.
func TestTranslationCacheHitMissCounters(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()

	const q = "SEL STORE FROM SALES WHERE AMOUNT > 90"
	run(t, s, q)
	m := g.MetricsSnapshot()
	if m.CacheMisses != 1 || m.CacheHits != 0 {
		t.Fatalf("cold: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
	run(t, s, q) // byte-identical: request tier
	run(t, s, q)
	m = g.MetricsSnapshot()
	if m.CacheHits != 2 || m.CacheMisses != 1 {
		t.Fatalf("warm: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
	run(t, s, "SEL STORE FROM SALES WHERE AMOUNT > 200") // literal variant: fingerprint tier
	m = g.MetricsSnapshot()
	if m.CacheHits != 3 || m.CacheMisses != 1 {
		t.Fatalf("variant: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
}

// TestTranslationCacheLiteralVariants checks that literal-variant hits
// return value-correct results (the spliced literals actually take effect).
func TestTranslationCacheLiteralVariants(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()

	counts := map[int]int{90: 3, 200: 2, 10000: 0}
	// Seed the template, then vary the literal.
	for _, threshold := range []int{90, 200, 10000, 90, 200} {
		res := run(t, s, fmt.Sprintf("SEL STORE FROM SALES WHERE AMOUNT > %d", threshold))
		if len(res[0].Rows) != counts[threshold] {
			t.Fatalf("threshold %d: %d rows, want %d", threshold, len(res[0].Rows), counts[threshold])
		}
	}
	if m := g.MetricsSnapshot(); m.CacheHits < 2 {
		t.Fatalf("expected fingerprint-tier hits, got %+v", m)
	}
}

// TestTranslationCacheResultCorrectness runs a query shape repeatedly across
// two sessions and compares against a cache-disabled gateway.
func TestTranslationCacheResultCorrectness(t *testing.T) {
	cached, _ := newTestGateway(t, dialect.CloudA())
	cold := newColdGateway(t, dialect.CloudA())
	queries := []string{
		"SEL STORE, AMOUNT FROM SALES WHERE AMOUNT > 90 ORDER BY AMOUNT DESC, STORE",
		"SEL STORE, AMOUNT FROM SALES WHERE AMOUNT > 90 ORDER BY AMOUNT DESC, STORE",
		"SEL STORE, AMOUNT FROM SALES WHERE AMOUNT > 40 ORDER BY AMOUNT DESC, STORE",
		"SEL COUNT(*) FROM SALES WHERE SALES_DATE > DATE '2014-01-01'",
		"SEL COUNT(*) FROM SALES WHERE SALES_DATE > DATE '2013-01-01'",
	}
	sc := session(t, cached)
	defer sc.Close()
	sd := session(t, cold)
	defer sd.Close()
	for _, q := range queries {
		got := rowStrings(run(t, sc, q)[0])
		want := rowStrings(run(t, sd, q)[0])
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s:\ncached %v\ncold   %v", q, got, want)
		}
	}
}

func newColdGateway(t *testing.T, target *dialect.Profile) *Gateway {
	t.Helper()
	g, _ := newTestGateway(t, target)
	g.cache = nil
	return g
}

// TestTranslationCacheDDLInvalidation proves stale plans are never served
// after DROP/CREATE TABLE changes a table's shape: the same request text
// must reflect the new catalog.
func TestTranslationCacheDDLInvalidation(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()

	run(t, s, "CREATE TABLE RESHAPE (A INT)")
	run(t, s, "INSERT INTO RESHAPE VALUES (1)")
	const q = "SEL * FROM RESHAPE"
	res := run(t, s, q)
	run(t, s, q) // ensure both tiers are warm
	if len(res[0].Cols) != 1 {
		t.Fatalf("initial cols = %d", len(res[0].Cols))
	}
	run(t, s, "DROP TABLE RESHAPE")
	run(t, s, "CREATE TABLE RESHAPE (A INT, B INT)")
	run(t, s, "INSERT INTO RESHAPE VALUES (2, 3)")
	res = run(t, s, q)
	if len(res[0].Cols) != 2 {
		t.Fatalf("stale star expansion survived DDL: cols = %v", res[0].Cols)
	}
	if got := rowStrings(res[0]); len(got) != 1 || got[0] != "2|3" {
		t.Fatalf("rows = %v", got)
	}
}

// TestTranslationCacheViewInvalidation proves REPLACE VIEW invalidates
// cached translations referencing the view.
func TestTranslationCacheViewInvalidation(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()

	run(t, s, "CREATE VIEW TOPSALES AS SEL AMOUNT FROM SALES WHERE AMOUNT > 200")
	const q = "SEL * FROM TOPSALES"
	res := run(t, s, q)
	run(t, s, q)
	if len(res[0].Cols) != 1 || len(res[0].Rows) != 2 {
		t.Fatalf("initial view result: %v", rowStrings(res[0]))
	}
	run(t, s, "REPLACE VIEW TOPSALES AS SEL STORE, AMOUNT FROM SALES WHERE AMOUNT > 90")
	res = run(t, s, q)
	if len(res[0].Cols) != 2 || len(res[0].Rows) != 3 {
		t.Fatalf("stale view translation survived REPLACE VIEW: %v", rowStrings(res[0]))
	}
}

// TestTranslationCacheGroupByOrdinal: ordinal GROUP BY / ORDER BY positions
// bind by value and must not share cache entries.
func TestTranslationCacheGroupByOrdinal(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()

	a := rowStrings(run(t, s, "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY 1 ORDER BY 1")[0])
	b := rowStrings(run(t, s, "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY 1 ORDER BY 2")[0])
	if fmt.Sprint(a) == fmt.Sprint(b) {
		t.Fatalf("ORDER BY ordinal ignored: %v vs %v", a, b)
	}
	if a[0] != "1|350.00" || b[0] != "3|40.00" {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

// TestTranslationCacheExactDowngrade: when translation consumes a lifted
// literal (select-item/GROUP BY expression matching), the entry must only
// serve byte-equal literal vectors — a different literal re-translates.
func TestTranslationCacheExactDowngrade(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()

	a := rowStrings(run(t, s, "SEL AMOUNT+1 FROM SALES WHERE STORE = 3 GROUP BY AMOUNT+1")[0])
	if len(a) != 1 || a[0] != "41.00" {
		t.Fatalf("a = %v", a)
	}
	// Same fingerprint shape, different literal values: must not reuse the
	// value-specialized text.
	b := rowStrings(run(t, s, "SEL AMOUNT+2 FROM SALES WHERE STORE = 3 GROUP BY AMOUNT+2")[0])
	if len(b) != 1 || b[0] != "42.00" {
		t.Fatalf("b = %v (stale value-dependent plan?)", b)
	}
	// And identical values may reuse it.
	c := rowStrings(run(t, s, "SEL AMOUNT+2 FROM SALES WHERE STORE = 3 GROUP BY AMOUNT+2")[0])
	if fmt.Sprint(b) != fmt.Sprint(c) {
		t.Fatalf("repeat differs: %v vs %v", b, c)
	}
}

// TestTranslationCacheBypass: session-dependent statements must not populate
// or consult the cache.
func TestTranslationCacheBypass(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s := session(t, g)
	defer s.Close()

	run(t, s, "CREATE VOLATILE TABLE SCRATCH (N INT) ON COMMIT PRESERVE ROWS")
	run(t, s, "INSERT INTO SCRATCH VALUES (1)")
	before := g.MetricsSnapshot()
	run(t, s, "SEL N FROM SCRATCH")
	run(t, s, "SEL N FROM SCRATCH")
	after := g.MetricsSnapshot()
	if after.CacheBypass <= before.CacheBypass {
		t.Fatalf("volatile-table statements not bypassed: %+v", after)
	}
	if after.CacheHits != before.CacheHits {
		t.Fatalf("volatile-table statement served from cache: %+v", after)
	}

	// Macro bodies run with bound parameters: also bypassed.
	run(t, s, "CREATE MACRO getstore (s INT) AS (SEL AMOUNT FROM SALES WHERE STORE = :s;)")
	before = g.MetricsSnapshot()
	r1 := run(t, s, "EXEC getstore(3)")
	r2 := run(t, s, "EXEC getstore(1)")
	after = g.MetricsSnapshot()
	if after.CacheBypass <= before.CacheBypass {
		t.Fatalf("macro statements not bypassed: %+v", after)
	}
	if len(r1[0].Rows) != 1 || len(r2[0].Rows) != 2 {
		t.Fatalf("macro results: %v / %v", rowStrings(r1[0]), rowStrings(r2[0]))
	}
}

// TestTranslationCacheCrossSessionSharing: cache entries are gateway-wide —
// a second session's identical statement hits.
func TestTranslationCacheCrossSessionSharing(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s1 := session(t, g)
	defer s1.Close()
	run(t, s1, "SEL STORE FROM SALES WHERE AMOUNT > 90")

	s2 := session(t, g)
	defer s2.Close()
	before := g.MetricsSnapshot()
	run(t, s2, "SEL STORE FROM SALES WHERE AMOUNT > 90")
	after := g.MetricsSnapshot()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("cross-session hit missing: %+v", after)
	}
}

// TestTranslationCacheSessionOverlayIsolation: once a session holds volatile
// state, its cache entries are private — another session with a same-named
// volatile table of different shape must not reuse them.
func TestTranslationCacheSessionOverlayIsolation(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	s1 := session(t, g)
	defer s1.Close()
	s2 := session(t, g)
	defer s2.Close()
	run(t, s1, "CREATE VOLATILE TABLE VT (A INT) ON COMMIT PRESERVE ROWS")
	run(t, s1, "INSERT INTO VT VALUES (1)")
	run(t, s2, "CREATE VOLATILE TABLE VT (A INT, B INT) ON COMMIT PRESERVE ROWS")
	run(t, s2, "INSERT INTO VT VALUES (2, 3)")
	r1 := run(t, s1, "SEL * FROM VT")
	r2 := run(t, s2, "SEL * FROM VT")
	if len(r1[0].Cols) != 1 || len(r2[0].Cols) != 2 {
		t.Fatalf("volatile isolation broken: %d / %d cols", len(r1[0].Cols), len(r2[0].Cols))
	}
}

// TestConcurrentSessions drives N concurrent sessions through a mix of DML,
// DDL and volatile-table work against one gateway — meaningful under -race:
// it exercises the shared translation cache, catalog versioning, and the
// metrics counters concurrently.
func TestConcurrentSessions(t *testing.T) {
	g, _ := newTestGateway(t, dialect.CloudA())
	const n = 8
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := g.NewLocalSession(fmt.Sprintf("user%d", w))
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			tbl := fmt.Sprintf("W%d", w)
			if _, err := s.Run(fmt.Sprintf("CREATE TABLE %s (A INT, B INT)", tbl)); err != nil {
				errs <- fmt.Errorf("worker %d: %v", w, err)
				return
			}
			if _, err := s.Run(fmt.Sprintf("CREATE VOLATILE TABLE V%d (N INT) ON COMMIT PRESERVE ROWS", w)); err != nil {
				errs <- fmt.Errorf("worker %d: %v", w, err)
				return
			}
			for i := 0; i < iters; i++ {
				stmts := []string{
					fmt.Sprintf("INSERT INTO %s VALUES (%d, %d)", tbl, i, i*i),
					// Shared-shape query: contends on the same cache entries
					// across workers.
					fmt.Sprintf("SEL STORE FROM SALES WHERE AMOUNT > %d", 50+10*(i%3)),
					"SEL STORE FROM SALES WHERE AMOUNT > 90",
					fmt.Sprintf("INSERT INTO V%d VALUES (%d)", w, i),
				}
				for _, q := range stmts {
					if _, err := s.Run(q); err != nil {
						errs <- fmt.Errorf("worker %d %q: %v", w, q, err)
						return
					}
				}
			}
			res, err := s.Run(fmt.Sprintf("SEL COUNT(*) FROM %s", tbl))
			if err != nil {
				errs <- fmt.Errorf("worker %d: %v", w, err)
				return
			}
			if got := rowStrings(res[0]); got[0] != fmt.Sprint(iters) {
				errs <- fmt.Errorf("worker %d: count = %v, want %d", w, got, iters)
				return
			}
			if _, err := s.Run(fmt.Sprintf("DROP TABLE %s", tbl)); err != nil {
				errs <- fmt.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := g.MetricsSnapshot()
	if m.CacheHits == 0 {
		t.Errorf("no cache hits under concurrency: %+v", m)
	}
	wantStmts := int64(n * (2 + iters*4 + 2))
	if m.Statements != wantStmts {
		t.Errorf("statements = %d, want %d", m.Statements, wantStmts)
	}
}
