package hyperq

import (
	"strings"

	"hyperq/internal/sqlast"
)

// execUnit is one backend execution unit of a request. For a batched run of
// single-row INSERTs, perStmtRows records each original statement's row
// count so the gateway can synthesize the per-statement responses the
// frontend protocol requires.
type execUnit struct {
	stmt        sqlast.Statement
	perStmtRows []int // nil for pass-through units
}

// batchDML implements the §4.3 performance transformation: "if the target
// database incurs a large overhead in executing single-row DML requests, a
// transformation that groups a large number of contiguous single-row DML
// statements into one large statement could be applied." Contiguous VALUES
// inserts into the same table with the same column list coalesce into one
// multi-row INSERT; the application still receives one success response per
// original statement.
func batchDML(stmts []sqlast.Statement) []execUnit {
	var out []execUnit
	i := 0
	for i < len(stmts) {
		ins, ok := stmts[i].(*sqlast.InsertStmt)
		if !ok || ins.Query != nil || len(ins.Rows) == 0 {
			out = append(out, execUnit{stmt: stmts[i]})
			i++
			continue
		}
		// Extend the run of compatible inserts.
		j := i + 1
		for j < len(stmts) {
			next, ok := stmts[j].(*sqlast.InsertStmt)
			if !ok || next.Query != nil || len(next.Rows) == 0 ||
				!strings.EqualFold(next.Table, ins.Table) ||
				!sameColumns(next.Columns, ins.Columns) {
				break
			}
			j++
		}
		if j-i < 2 {
			out = append(out, execUnit{stmt: stmts[i]})
			i++
			continue
		}
		merged := &sqlast.InsertStmt{Table: ins.Table, Columns: ins.Columns}
		var counts []int
		for k := i; k < j; k++ {
			rows := stmts[k].(*sqlast.InsertStmt).Rows
			merged.Rows = append(merged.Rows, rows...)
			counts = append(counts, len(rows))
		}
		out = append(out, execUnit{stmt: merged, perStmtRows: counts})
		i = j
	}
	return out
}

func sameColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}
