package hyperq

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/faultdriver"
	"hyperq/internal/odbc/pool"
	"hyperq/internal/wire"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/wire/tdp"
)

// newPooledGateway fronts the shared test schema with the full pooled
// execution stack: frontend sessions multiplex over a bounded connection
// pool whose connections are individually fault-tolerant
// (pool → ResilientDriver → faultdriver → LocalDriver).
func newPooledGateway(t *testing.T, pcfg pool.Config) (*Gateway, *pool.Pool, *faultdriver.Driver) {
	t.Helper()
	target := dialect.CloudA()
	eng := engine.New(target)
	setup := eng.NewSession()
	for _, stmt := range []string{
		`CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)`,
		`INSERT INTO SALES VALUES
		   (100.00, DATE '2014-02-01', 1),
		   (250.00, DATE '2014-03-15', 1),
		   (80.00,  DATE '2013-12-31', 2)`,
	} {
		if _, err := setup.ExecSQL(stmt); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	fd := faultdriver.New(&odbc.LocalDriver{Engine: eng})
	resilience := &odbc.ResilienceMetrics{}
	rd := &odbc.ResilientDriver{Inner: fd, Metrics: resilience, Sleep: func(time.Duration) {}}
	pcfg.Driver = rd
	p, err := pool.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	g, err := New(Config{
		Target:     target,
		Driver:     p,
		Catalog:    eng.Catalog().Clone(),
		Resilience: resilience,
		Pool:       p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, p, fd
}

// The acceptance scenario: 8 concurrent frontend wire sessions complete over
// a 2-connection pool (4x oversubscription). Every session establishes a
// volatile table with a session-distinct value and reads it back — pinning
// must keep each session's state on its own backend connection — and the
// pool wait time is visible in /metrics afterwards.
func TestPooledGatewayConcurrentWireSessions(t *testing.T) {
	const poolSize, sessions = 2, 8
	g, p, _ := newPooledGateway(t, pool.Config{
		Size:           poolSize,
		MaxWaiters:     -1,
		AcquireTimeout: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = tdp.Serve(ln, g) }()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- func() error {
				c, err := tdp.Dial(ln.Addr().String(), fmt.Sprintf("app%d", i), "pw")
				if err != nil {
					return fmt.Errorf("session %d: dial: %w", i, err)
				}
				defer c.Close()
				// Shared-table reads run under statement-level leases.
				if _, err := c.Request("SEL COUNT(*) FROM SALES"); err != nil {
					return fmt.Errorf("session %d: read: %w", i, err)
				}
				// Session-distinct volatile state: requires pinning.
				if _, err := c.Request("CREATE VOLATILE TABLE VT (X INT) ON COMMIT PRESERVE ROWS"); err != nil {
					return fmt.Errorf("session %d: create: %w", i, err)
				}
				if _, err := c.Request(fmt.Sprintf("INSERT INTO VT VALUES (%d)", i)); err != nil {
					return fmt.Errorf("session %d: insert: %w", i, err)
				}
				stmts, err := c.Request("SEL X FROM VT")
				if err != nil {
					return fmt.Errorf("session %d: volatile read: %w", i, err)
				}
				if len(stmts[0].Rows) != 1 || stmts[0].Rows[0][0].I != int64(i) {
					return fmt.Errorf("session %d: volatile state leaked or lost: rows = %v", i, stmts[0].Rows)
				}
				if _, err := c.Request("DROP TABLE VT"); err != nil {
					return fmt.Errorf("session %d: drop: %w", i, err)
				}
				return nil
			}()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	s := p.Stats()
	if s.Pinned != 0 || s.InUse != 0 {
		t.Errorf("pinned/in_use after all sessions done = %d/%d, want 0/0", s.Pinned, s.InUse)
	}
	if s.Pins < sessions {
		t.Errorf("pins = %d, want >= %d (each session pinned for its volatile table)", s.Pins, sessions)
	}
	if s.Waits == 0 {
		t.Error("waits = 0, want > 0 (8 sessions over 2 connections must queue)")
	}

	// Pool wait time is operator-visible on /metrics.
	rec := httptest.NewRecorder()
	g.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, series := range []string{
		"hyperq_pool_wait_seconds_count",
		"hyperq_pool_acquires_total",
		"hyperq_pool_pins_total",
	} {
		idx := strings.Index(body, series+" ")
		if idx < 0 {
			t.Errorf("series %s missing from /metrics", series)
			continue
		}
		line := body[idx:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
		}
		if strings.HasSuffix(line, " 0") {
			t.Errorf("series %s is zero: %q", series, line)
		}
	}

	// /pool serves the same snapshot as JSON.
	rec = httptest.NewRecorder()
	g.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/pool", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/pool status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"acquires"`) {
		t.Errorf("/pool body missing pool stats: %s", rec.Body.String())
	}
}

// A session whose backend state is dropped unpins: the dedicated connection
// returns to general service as soon as the replay log empties.
func TestPooledSessionUnpinsWhenStateDropped(t *testing.T) {
	g, p, _ := newPooledGateway(t, pool.Config{Size: 2})
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// No backend connection is held before the first statement.
	if st := p.Stats(); st.Dials != 0 {
		t.Errorf("dials at logon = %d, want 0 (acquire per statement, not per logon)", st.Dials)
	}
	if _, err := s.Run("CREATE VOLATILE TABLE VT (X INT) ON COMMIT PRESERVE ROWS"); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Pinned != 1 {
		t.Errorf("pinned after volatile CREATE = %d, want 1", st.Pinned)
	}
	if _, err := s.Run("INSERT INTO VT VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("DROP TABLE VT"); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Pinned != 0 {
		t.Errorf("pinned after DROP = %d, want 0 (state gone, connection unpinned)", st.Pinned)
	}
	// The unpinned connection is clean and reusable.
	if _, err := s.Run("SEL COUNT(*) FROM SALES"); err != nil {
		t.Fatal(err)
	}
}

// An explicit transaction pins for its whole extent: BT pins, ET unpins.
func TestPooledTransactionPins(t *testing.T) {
	g, p, _ := newPooledGateway(t, pool.Config{Size: 2})
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("BT"); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Pinned != 1 {
		t.Errorf("pinned after BT = %d, want 1", st.Pinned)
	}
	if _, err := s.Run("INSERT INTO SALES VALUES (5.00, DATE '2020-01-01', 3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("ET"); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Pinned != 0 {
		t.Errorf("pinned after ET = %d, want 0", st.Pinned)
	}
}

// A failed transaction-end statement must not unpin: the transaction may
// still be open on the backend session, and unpinning would return a
// connection with live uncommitted state to the shared pool, where the next
// frontend session would silently inherit it.
func TestPooledFailedCommitStaysPinned(t *testing.T) {
	g, p, fd := newPooledGateway(t, pool.Config{Size: 2})
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("BT"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("INSERT INTO SALES VALUES (5.00, DATE '2020-01-01', 3)"); err != nil {
		t.Fatal(err)
	}
	// The ET itself fails (non-transient backend error injected before the
	// request reaches the engine, so the transaction stays open).
	fd.QueueExecErrors(&cwp.BackendError{Code: 3706, Message: "injected commit failure"})
	if _, err := s.Run("ET"); err == nil {
		t.Fatal("ET with injected backend error: err = nil, want failure")
	}
	if st := p.Stats(); st.Pinned != 1 {
		t.Fatalf("pinned after failed ET = %d, want 1 (open transaction must keep the connection dedicated)", st.Pinned)
	}
	// A retried ET commits the still-open transaction and unpins.
	if _, err := s.Run("ET"); err != nil {
		t.Fatalf("retried ET: %v", err)
	}
	if st := p.Stats(); st.Pinned != 0 {
		t.Errorf("pinned after successful ET = %d, want 0", st.Pinned)
	}
}

// A pinned session survives a backend bounce: the resilient connection under
// the pin reconnects and replays the volatile-table DDL.
func TestPooledPinnedSessionSurvivesBounce(t *testing.T) {
	g, p, fd := newPooledGateway(t, pool.Config{Size: 2})
	s, err := g.NewLocalSession("appuser")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run("CREATE VOLATILE TABLE VT (X INT) ON COMMIT PRESERVE ROWS"); err != nil {
		t.Fatal(err)
	}
	fd.DropActiveSessions()
	if _, err := s.Run("SEL COUNT(*) FROM VT"); err != nil {
		t.Fatalf("volatile read after bounce: %v", err)
	}
	snap := g.MetricsSnapshot()
	if snap.Reconnects == 0 || snap.Replays == 0 {
		t.Errorf("Reconnects/Replays = %d/%d, want > 0 (pinned connection replayed)", snap.Reconnects, snap.Replays)
	}
	if st := p.Stats(); st.Pinned != 1 {
		t.Errorf("pinned after bounce = %d, want 1", st.Pinned)
	}
}

// Pool exhaustion surfaces as a clean frontend failure code
// (tdp.CodeGatewaySaturated), not a
// hang or a raw Go error.
func TestPooledAcquireTimeoutFrontendCode(t *testing.T) {
	g, _, _ := newPooledGateway(t, pool.Config{Size: 1, AcquireTimeout: 30 * time.Millisecond})
	holder, err := g.NewLocalSession("holder")
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	// The holder pins the pool's only connection.
	if _, err := holder.Run("CREATE VOLATILE TABLE VT (X INT) ON COMMIT PRESERVE ROWS"); err != nil {
		t.Fatal(err)
	}
	starved, err := g.NewLocalSession("starved")
	if err != nil {
		t.Fatal(err)
	}
	defer starved.Close()
	_, err = starved.Run("SEL COUNT(*) FROM SALES")
	var re *RequestError
	if !errors.As(err, &re) || re.Code != tdp.CodeGatewaySaturated {
		t.Fatalf("starved session: err = %v, want RequestError %d", err, tdp.CodeGatewaySaturated)
	}
	// Dropping the holder's state frees the connection; the starved session
	// recovers without reconnecting its frontend.
	if _, err := holder.Run("DROP TABLE VT"); err != nil {
		t.Fatal(err)
	}
	if _, err := starved.Run("SEL COUNT(*) FROM SALES"); err != nil {
		t.Fatalf("after pool freed: %v", err)
	}
}

// The leak test of the teardown satellite: a frontend that vanishes without
// logoff (no MsgLogoff, socket just closes) while holding a pinned
// connection must not strand pool capacity — the tdp server's deferred
// session close destroys the dirty pinned connection and frees the slot.
func TestPooledAbruptDisconnectReleasesLease(t *testing.T) {
	g, p, _ := newPooledGateway(t, pool.Config{Size: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = tdp.Serve(ln, g) }()

	// Raw protocol: logon, pin via volatile DDL, then vanish mid-session.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var b wire.Buffer
	b.PutString("ghost")
	b.PutString("pw")
	if err := wire.WriteMessage(conn, tdp.MsgLogon, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if kind, _, err := wire.ReadMessage(conn); err != nil || kind != tdp.MsgLogonOK {
		t.Fatalf("logon: kind=%#x err=%v", kind, err)
	}
	b = wire.Buffer{}
	b.PutString("CREATE VOLATILE TABLE VT (X INT) ON COMMIT PRESERVE ROWS")
	if err := wire.WriteMessage(conn, tdp.MsgRunRequest, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Drain the response so the pin is definitely established server-side.
	for {
		kind, _, err := wire.ReadMessage(conn)
		if err != nil {
			t.Fatalf("response: %v", err)
		}
		if kind == tdp.MsgEndRequest {
			break
		}
	}
	if st := p.Stats(); st.Pinned != 1 {
		t.Fatalf("pinned = %d, want 1 before the disconnect", st.Pinned)
	}
	// Abrupt disconnect: no logoff parcel, the socket just dies.
	_ = conn.Close()

	// The server notices on its next read and tears the session down; the
	// pinned lease must come back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.Pinned == 0 && st.InUse == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked lease: pinned=%d in_use=%d after abrupt disconnect", st.Pinned, st.InUse)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The freed capacity serves a new session on the 1-slot pool.
	c, err := tdp.Dial(ln.Addr().String(), "next", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Request("SEL COUNT(*) FROM SALES"); err != nil {
		t.Fatalf("request after reclaimed lease: %v", err)
	}
}
