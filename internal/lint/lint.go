// Package lint is hyperqlint: the gateway's project-specific static
// analyzers. Each analyzer machine-checks one invariant that go vet cannot
// see — invariants that used to live in code review folklore and that, when
// violated, produce exactly the subtle mechanical regressions a protocol
// gateway cannot afford (leaked trace spans, network I/O under a shard
// mutex, drifting frontend failure codes, dropped deadlines, silently
// desynchronized wire framing).
//
// The suite runs standalone via cmd/hyperqlint, through `go vet -vettool`,
// and inside scripts/check.sh; DESIGN.md §10 documents the invariant behind
// each analyzer. Suppressions use
//
//	//hyperqlint:ignore <analyzer> <reason>
//
// on (or directly above) the offending line; the reason is mandatory so
// every deviation stays auditable.
package lint

import (
	"go/ast"

	"hyperq/internal/lint/analysis"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		SpanEnd,
		LockIO,
		FrontCode,
		CtxExec,
		WireErr,
		LeakPair,
		ErrSentinel,
		AtomicField,
		SQLTaint,
	}
}

// ByName resolves a subset of analyzers by name.
func ByName(names []string) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, n := range names {
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}

// funcBody is one function's body with its declared name ("" for literals).
type funcBody struct {
	name string
	body *ast.BlockStmt
}

// functionsIn collects every function body in the file: declarations and
// function literals. Literals get an empty name — analyzers that exempt
// named API shims must not exempt closures nested inside them. Each body is
// analyzed on its own; statement-level walks use inspectSkipFuncLits so a
// nested literal is never double-counted as part of its parent.
func functionsIn(file *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{name: fn.Name.Name, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{name: "", body: fn.Body})
		}
		return true
	})
	return out
}

// cfgNodeScope returns the subtrees a per-CFG-node walk should visit. A
// RangeStmt appears in the CFG as a loop-head dispatch node while its body
// lives in separate blocks, so walking the whole statement would visit the
// body twice; the head covers only the range binding (X, Key, Value).
// Every other construct is already decomposed by the builder.
func cfgNodeScope(n ast.Node) []ast.Node {
	s, ok := n.(*ast.RangeStmt)
	if !ok {
		return []ast.Node{n}
	}
	out := []ast.Node{s.X}
	if s.Key != nil {
		out = append(out, s.Key)
	}
	if s.Value != nil {
		out = append(out, s.Value)
	}
	return out
}

// inspectSkipFuncLits walks the subtree in source order but does not
// descend into nested function literals: statement-level analyses treat a
// closure as a separate function with its own control flow.
func inspectSkipFuncLits(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return fn(n)
	})
}
