package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hyperq/internal/lint/analysis"
)

// AtomicField reports mixed atomic/plain access to the same struct field.
//
// A field accessed through sync/atomic anywhere must be accessed atomically
// everywhere: one plain read racing one atomic write is a data race the
// race detector only catches when the interleaving actually happens, and on
// weakly-ordered hardware the plain read can observe torn or stale values.
// The gateway's metrics blocks, workload-statistics counters, and stream
// accounting all lean on lock-free counters, which makes the
// "atomic.AddInt64 in the hot path, c.hits in the snapshot" slip easy to
// write and hard to spot in review.
//
// The analyzer collects every field whose address is passed to a sync/atomic
// function, then flags plain selector reads and writes of those fields.
// Exempt shapes:
//
//   - &x.f passed anywhere: the callee decides how to access it;
//   - composite-literal initialization (entry{admit: 1}): no other
//     goroutine can hold the value yet;
//   - accesses on a freshly allocated, not-yet-published value: a
//     flow-sensitive pass tracks locals bound to &T{}/new(T) until they
//     escape (stored, passed, returned, sent), so constructor-style plain
//     writes stay legal.
//
// Test files are skipped: tests own their goroutines and routinely read
// counters after everything has joined.
var AtomicField = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "checks that struct fields accessed via sync/atomic are accessed atomically everywhere",
	Run:  runAtomicField,
}

func runAtomicField(pass *analysis.Pass) error {
	fields := atomicFields(pass)
	if len(fields) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, fn := range functionsIn(file) {
			checkAtomicAccess(pass, fn.body, fields)
		}
	}
	return nil
}

// atomicFields collects every struct field whose address reaches a
// sync/atomic call anywhere in the package (test files excluded — a
// test-only atomic does not impose the discipline on production code).
func atomicFields(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.Info, call)
			if callee == nil || analysis.FuncPkgName(callee) != "atomic" {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
					out[v] = true
				}
			}
			return true
		})
	}
	return out
}

// freshTransfer tracks locals bound to freshly allocated values: fresh until
// the value appears anywhere other than as a selector base (stored, passed,
// returned, sent — published to code that may spawn concurrent access).
func freshTransfer(pass *analysis.Pass) analysis.Transfer {
	objOf := func(id *ast.Ident) types.Object {
		if o := pass.Info.Defs[id]; o != nil {
			return o
		}
		return pass.Info.Uses[id]
	}
	return func(n ast.Node, in analysis.Fact) analysis.Fact {
		out := in
		set := func(o types.Object, fresh bool) {
			if o == nil {
				return
			}
			if fresh && !out.Has(o) {
				out = out.Clone()
				out[o] = struct{}{}
			} else if !fresh && out.Has(o) {
				out = out.Clone()
				delete(out, o)
			}
		}
		// (Re)bindings first: x := &T{} makes x fresh, any other RHS kills it.
		bind := func(lhs ast.Expr, rhs ast.Expr) {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			set(objOf(id), isFreshAlloc(rhs))
		}
		for _, scope := range cfgNodeScope(n) {
			ast.Inspect(scope, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				switch st := m.(type) {
				case *ast.AssignStmt:
					if len(st.Lhs) == len(st.Rhs) {
						for i := range st.Lhs {
							bind(st.Lhs[i], st.Rhs[i])
						}
					}
				case *ast.ValueSpec:
					if len(st.Names) == len(st.Values) {
						for i, nm := range st.Names {
							bind(nm, st.Values[i])
						}
					}
				}
				return true
			})
		}
		// Publishes: a fresh object used outside a selector base position
		// escapes this function's exclusive ownership.
		for _, scope := range cfgNodeScope(n) {
			var stack []ast.Node
			ast.Inspect(scope, func(m ast.Node) bool {
				if m == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				stack = append(stack, m)
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				o := pass.Info.Uses[id]
				if o == nil || !out.Has(o) {
					return true
				}
				if len(stack) >= 2 {
					switch p := stack[len(stack)-2].(type) {
					case *ast.SelectorExpr:
						if p.X == id {
							return true // x.f access: still private
						}
					case *ast.AssignStmt:
						for _, l := range p.Lhs {
							if l == id {
								return true // rebinding target, handled above
							}
						}
					}
				}
				set(o, false)
				return true
			})
		}
		return out
	}
}

// isFreshAlloc reports whether e allocates a value no other goroutine can
// reference yet.
func isFreshAlloc(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// checkAtomicAccess flags plain accesses to atomic fields in one function,
// using the freshness dataflow to exempt pre-publication constructors.
func checkAtomicAccess(pass *analysis.Pass, body *ast.BlockStmt, fields map[types.Object]bool) {
	g := analysis.New(body)
	tr := freshTransfer(pass)
	// Freshness is a must-property: a value is private only when it is
	// unpublished on every path reaching the access.
	in := g.ForwardMust(analysis.Fact{}, tr)
	for _, b := range g.Blocks {
		fact := in[b]
		for _, n := range b.Nodes {
			reportPlainAccesses(pass, n, fields, fact)
			fact = tr(n, fact)
		}
	}
}

func reportPlainAccesses(pass *analysis.Pass, n ast.Node, fields map[types.Object]bool, fresh analysis.Fact) {
	for _, scope := range cfgNodeScope(n) {
		reportPlainAccessesIn(pass, scope, fields, fresh)
	}
}

func reportPlainAccessesIn(pass *analysis.Pass, n ast.Node, fields map[types.Object]bool, fresh analysis.Fact) {
	var stack []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, m)
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !fields[v] {
			return true
		}
		// &x.f is delegation, not access.
		if len(stack) >= 2 {
			if ue, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && ue.Op == token.AND && ast.Unparen(ue.X) == sel {
				return true
			}
		}
		// Freshly allocated, unpublished receiver: constructor writes are
		// race-free.
		if base := baseIdent(sel.X); base != nil {
			if o := pass.Info.Uses[base]; o != nil && fresh.Has(o) {
				return true
			}
		}
		if isWriteTarget(stack, sel) {
			pass.Reportf(sel.Pos(),
				"plain write to field %s, which is accessed with sync/atomic elsewhere; use atomic.Store%s/Add%s",
				v.Name(), atomicSuffix(v.Type()), atomicSuffix(v.Type()))
		} else {
			pass.Reportf(sel.Pos(),
				"plain read of field %s, which is accessed with sync/atomic elsewhere; use atomic.Load%s",
				v.Name(), atomicSuffix(v.Type()))
		}
		return true
	})
}

// baseIdent unwraps a selector/index chain to its leftmost identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isWriteTarget reports whether the selector at the top of the stack is
// being assigned to (=, +=, ++).
func isWriteTarget(stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) < 2 {
		return false
	}
	switch p := stack[len(stack)-2].(type) {
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == sel {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == sel
	}
	return false
}

// atomicSuffix maps a field type to the sync/atomic function suffix.
func atomicSuffix(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Pointer"
	}
	name := b.Name()
	if len(name) == 0 {
		return "Int64"
	}
	return strings.ToUpper(name[:1]) + name[1:]
}
