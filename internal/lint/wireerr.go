package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"hyperq/internal/lint/analysis"
)

// WireErr reports unchecked error results from framing-critical writes in
// the wire layer.
//
// The tdp and cwp protocols are length-prefixed: every header field and
// every flush must land on the socket exactly, or the peer reads the next
// message starting mid-frame and the session is garbage from then on. A
// dropped error from binary.Write/binary.Read, a bufio Flush, or the
// frame-level WriteMessage/ReadMessage helpers is therefore not a style
// nit — it is a silent framing desynchronization. The analyzer flags those
// calls when used as bare statements inside internal/wire/...; an explicit
// `_ =` discard is accepted (it is visible in review and greppable), a
// silent drop is not.
var WireErr = &analysis.Analyzer{
	Name: "wireerr",
	Doc:  "checks that binary.Write/binary.Read/Flush/WriteMessage errors are not silently dropped in the wire layer",
	Run:  runWireErr,
}

func runWireErr(pass *analysis.Pass) error {
	if !strings.Contains(pass.PkgPath, "internal/wire") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok || !analysis.ReturnsError(pass.Info, call) {
				return true
			}
			callee := analysis.CalleeFunc(pass.Info, call)
			if callee == nil {
				return true
			}
			if desc, critical := framingCall(callee); critical {
				pass.Reportf(call.Pos(),
					"%s error dropped; a short write here desynchronizes the message framing (check it or discard with _ =)", desc)
			}
			return true
		})
	}
	return nil
}

// framingCall reports whether the callee is a framing-critical read/write
// whose error must not be dropped.
func framingCall(callee *types.Func) (string, bool) {
	name := callee.Name()
	if analysis.FuncPkgName(callee) == "binary" && (name == "Write" || name == "Read") {
		return "binary." + name, true
	}
	if !analysis.IsMethod(callee) {
		return "", false
	}
	switch name {
	case "Flush", "WriteMessage", "ReadMessage":
		return "." + name, true
	}
	return "", false
}
