package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hyperq/internal/lint/analysis"
)

// LeakPair reports acquire/release pairs left unbalanced on some path to a
// function exit.
//
// The gateway is full of resources whose lifetime is a strict pair: a pool
// slot reservation must be un-reserved when the dial fails (the PR 4 warm-up
// leak starved the pool for the rest of the process), a result stream must
// be closed or handed to an owner, an exemplar trace pin must be unpinned or
// recorded for a later unpin, and a result-memory reservation must be
// released or attached to the batch that carries it through the pipeline.
// The analyzer walks the control-flow graph from each acquire and reports
// every return (or fall-off-the-end) reachable without a matching release,
// a deferred release, or an ownership transfer.
//
// Two pair shapes are understood:
//
//   - value pairs: the acquire yields the resource (a *conn, a ResultStream)
//     and the release consumes it — either a function taking the value as an
//     argument (release/handback) or a method on it (Close). The value
//     escaping the function (returned, stored into a struct or field, passed
//     to another call) transfers ownership and ends the obligation; an
//     `if err != nil` guard on the acquire's error return carries no
//     resource and is exempt.
//
//   - counter pairs: the acquire is a void or bool call (Pin,
//     acquireResultBytes, reserveSlot) balanced by a paired call. Paths are
//     satisfied by the release, a deferred release, or a handoff store — an
//     assignment whose right-hand side mentions an argument of the acquire,
//     recording enough state for someone else to release later (the exemplar
//     id stored for the next Unpin, the byte size stored into the in-flight
//     batch). A bool acquire consumed by an if condition incurs its
//     obligation only on the success branch.
//
// Test files are skipped: tests exercise lifecycles on purpose, including
// half-open ones.
var LeakPair = &analysis.Analyzer{
	Name: "leakpair",
	Doc:  "checks that paired acquire/release resources are balanced on every path",
	Run:  runLeakPair,
}

// leakValueSpec describes an acquire returning the resource value.
type leakValueSpec struct {
	pkg            string // package NAME declaring the acquire callee
	acquire        string
	releaseFuncs   []string // same-package functions taking the value as an argument
	releaseMethods []string // methods on the value
	what           string   // noun for diagnostics
}

// leakCounterSpec describes a void/bool acquire balanced by a paired call.
type leakCounterSpec struct {
	pkg     string
	acquire string
	release string
	what    string
}

// The pair registry matches callees by declaring-package NAME (not path) so
// analyzer fixtures can stand in tiny stub packages for the real ones —
// exactly like the other analyzers in this suite.
var (
	leakValueSpecs = []leakValueSpec{
		{pkg: "pool", acquire: "acquire", releaseFuncs: []string{"release", "handback", "handbackLocked"}, what: "pool connection"},
		{pkg: "pool", acquire: "dial", releaseFuncs: []string{"release", "handback", "handbackLocked"}, what: "dialed connection"},
		{pkg: "pool", acquire: "ExecStream", releaseMethods: []string{"Close"}, what: "result stream"},
		{pkg: "odbc", acquire: "ExecStream", releaseMethods: []string{"Close"}, what: "result stream"},
		{pkg: "odbc", acquire: "OpenStream", releaseMethods: []string{"Close"}, what: "result stream"},
	}
	leakCounterSpecs = []leakCounterSpec{
		{pkg: "pool", acquire: "reserveSlot", release: "unreserveSlot", what: "pool slot reservation"},
		{pkg: "hyperq", acquire: "acquireResultBytes", release: "releaseResultBytes", what: "result-memory reservation"},
		{pkg: "wstats", acquire: "Pin", release: "Unpin", what: "exemplar trace pin"},
		{pkg: "trace", acquire: "Pin", release: "Unpin", what: "trace ring pin"},
	}
)

func runLeakPair(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, fn := range functionsIn(file) {
			checkLeakPairsIn(pass, fn.body)
		}
	}
	return nil
}

func checkLeakPairsIn(pass *analysis.Pass, body *ast.BlockStmt) {
	vals, ctrs := findAcquires(pass, body)
	if len(vals) == 0 && len(ctrs) == 0 {
		return
	}
	g := analysis.New(body)
	for _, a := range vals {
		checkValueAcquire(pass, g, body, a)
	}
	for _, a := range ctrs {
		checkCounterAcquire(pass, g, body, a)
	}
}

// valueAcquire is one tracked resource binding.
type valueAcquire struct {
	spec   *leakValueSpec
	obj    types.Object // the variable bound to the resource
	node   ast.Node     // the binding statement/spec, anchoring the CFG walk
	call   *ast.CallExpr
	errObj types.Object // the error bound alongside, when the acquire returns (T, error)
}

// counterAcquire is one tracked void/bool acquire call.
type counterAcquire struct {
	spec    *leakCounterSpec
	call    *ast.CallExpr
	cond    ast.Expr // enclosing if condition when the acquire is consumed by one
	negated bool     // the call appears under ! inside cond
}

// findAcquires scans body (nested closures excluded — they are functions of
// their own) for registry acquires, keeping enough context to anchor each
// CFG walk.
func findAcquires(pass *analysis.Pass, body *ast.BlockStmt) ([]*valueAcquire, []*counterAcquire) {
	var vals []*valueAcquire
	var ctrs []*counterAcquire

	valueSpecFor := func(call *ast.CallExpr) *leakValueSpec {
		callee := analysis.CalleeFunc(pass.Info, call)
		if callee == nil {
			return nil
		}
		for i := range leakValueSpecs {
			s := &leakValueSpecs[i]
			if callee.Name() == s.acquire && analysis.FuncPkgName(callee) == s.pkg {
				return s
			}
		}
		return nil
	}
	counterSpecFor := func(call *ast.CallExpr) *leakCounterSpec {
		callee := analysis.CalleeFunc(pass.Info, call)
		if callee == nil {
			return nil
		}
		for i := range leakCounterSpecs {
			s := &leakCounterSpecs[i]
			if callee.Name() == s.acquire && analysis.FuncPkgName(callee) == s.pkg {
				return s
			}
		}
		return nil
	}
	objOf := func(id *ast.Ident) types.Object {
		if o := pass.Info.Defs[id]; o != nil {
			return o
		}
		return pass.Info.Uses[id]
	}
	// recordBinding tracks `v, err := acquire(...)` / `v := acquire(...)`.
	recordBinding := func(node ast.Node, lhs []ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		spec := valueSpecFor(call)
		if spec == nil {
			return
		}
		id, ok := lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := objOf(id)
		if obj == nil {
			return
		}
		a := &valueAcquire{spec: spec, obj: obj, node: node, call: call}
		if len(lhs) == 2 {
			if eid, ok := lhs[1].(*ast.Ident); ok && eid.Name != "_" {
				a.errObj = objOf(eid)
			}
		}
		vals = append(vals, a)
	}

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		stack = append(stack, n)
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 && len(st.Lhs) >= 1 && len(st.Lhs) <= 2 {
				recordBinding(st, st.Lhs, st.Rhs[0])
			}
		case *ast.ValueSpec:
			if len(st.Values) == 1 && len(st.Names) >= 1 && len(st.Names) <= 2 {
				lhs := make([]ast.Expr, len(st.Names))
				for i, nm := range st.Names {
					lhs[i] = nm
				}
				recordBinding(st, lhs, st.Values[0])
			}
		case *ast.CallExpr:
			spec := counterSpecFor(st)
			if spec == nil || underDefer(stack) {
				return true
			}
			a := &counterAcquire{spec: spec, call: st}
			a.cond, a.negated = enclosingCond(stack, st)
			ctrs = append(ctrs, a)
		}
		return true
	})
	return vals, ctrs
}

// enclosingCond reports the if condition consuming the call's boolean result
// (the call itself, possibly under ! or parens) and whether it is negated.
func enclosingCond(stack []ast.Node, call *ast.CallExpr) (ast.Expr, bool) {
	negated := false
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			if p.Op == token.NOT {
				negated = !negated
				continue
			}
			return nil, false
		case *ast.IfStmt:
			if exprContains(p.Cond, call) {
				return p.Cond, negated
			}
			return nil, false
		default:
			return nil, false
		}
	}
	return nil, false
}

func exprContains(e ast.Expr, target ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// valueUseKind classifies what one identifier use does with a tracked value.
type valueUseKind int

const (
	vuEscape valueUseKind = iota
	vuBenign
	vuRelease
)

// checkValueAcquire walks every use of the bound resource and then asks the
// CFG which exits are reachable from the acquire without a release.
func checkValueAcquire(pass *analysis.Pass, g *analysis.CFG, body *ast.BlockStmt, a *valueAcquire) {
	var (
		releasePos []token.Pos
		deferred   bool
		escaped    bool
	)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || (pass.Info.Uses[id] != a.obj && pass.Info.Defs[id] != a.obj) {
			return true
		}
		switch classifyValueUse(pass, a.spec, stack, id) {
		case vuRelease:
			releasePos = append(releasePos, id.Pos())
			if underDefer(stack) {
				deferred = true
			}
		case vuBenign:
		default:
			escaped = true
		}
		return true
	})
	if escaped || deferred {
		return
	}
	exempt := errGuardRanges(pass, body, a.errObj)
	for _, w := range g.LeakWitnesses(a.node, func(n ast.Node) bool {
		return anyWithin(releasePos, n)
	}) {
		if posInRanges(w, exempt) {
			continue
		}
		pass.Reportf(w,
			"%s from %s is not released on this path; call %s on every path or defer the release",
			a.spec.what, a.spec.acquire, strings.Join(append(a.spec.releaseFuncs, a.spec.releaseMethods...), "/"))
	}
}

// classifyValueUse decides whether the identifier at the top of the stack
// releases the tracked value, uses it benignly, or lets it escape.
func classifyValueUse(pass *analysis.Pass, spec *leakValueSpec, stack []ast.Node, id *ast.Ident) valueUseKind {
	if len(stack) < 2 {
		return vuEscape
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return vuBenign // id is the field/method name, not the receiver
		}
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == p {
				for _, m := range spec.releaseMethods {
					if p.Sel.Name == m {
						return vuRelease
					}
				}
				return vuBenign // some other method on the value
			}
		}
		// Not invoked: a field read (c.ex) is benign, a method value escapes.
		if _, isFunc := pass.Info.Uses[p.Sel].(*types.Func); isFunc {
			return vuEscape
		}
		return vuBenign
	case *ast.CallExpr:
		// The value passed as a bare argument: a registry release consumes
		// it, anything else takes ownership.
		if callee := analysis.CalleeFunc(pass.Info, p); callee != nil && analysis.FuncPkgName(callee) == spec.pkg {
			for _, f := range spec.releaseFuncs {
				if callee.Name() == f {
					return vuRelease
				}
			}
		}
		return vuEscape
	case *ast.BinaryExpr:
		return vuBenign // nil checks
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == id {
				return vuBenign // (re)binding target
			}
		}
		return vuEscape // aliased away on the RHS
	case *ast.ValueSpec:
		for _, nm := range p.Names {
			if nm == id {
				return vuBenign
			}
		}
		return vuEscape
	default:
		return vuEscape
	}
}

// checkCounterAcquire verifies a void/bool acquire is balanced — released,
// deferred, or handed off — on every path from its success point.
func checkCounterAcquire(pass *analysis.Pass, g *analysis.CFG, body *ast.BlockStmt, a *counterAcquire) {
	spec := a.spec
	argObjs := make(map[types.Object]bool)
	for _, arg := range a.call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := pass.Info.Uses[id]; o != nil {
					argObjs[o] = true
				}
			}
			return true
		})
	}
	isRelease := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if callee := analysis.CalleeFunc(pass.Info, call); callee != nil &&
					callee.Name() == spec.release && analysis.FuncPkgName(callee) == spec.pkg {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	// A deferred release anywhere in the function covers every path.
	deferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && isRelease(d) {
			deferred = true
		}
		return !deferred
	})
	if deferred {
		return
	}
	// handoff: an assignment whose RHS mentions an acquire argument records
	// the obligation for a later release (exemplar id kept for the next
	// Unpin, batch size stored into the in-flight item).
	handoff := func(n ast.Node) bool {
		if len(argObjs) == 0 {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, r := range as.Rhs {
			mentions := false
			ast.Inspect(r, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && argObjs[pass.Info.Uses[id]] {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				return true
			}
		}
		return false
	}
	ok := func(n ast.Node) bool { return isRelease(n) || handoff(n) }

	var witnesses []token.Pos
	if a.cond != nil {
		// Bool acquire consumed by an if: the obligation exists only on the
		// success branch. The builder wires Succs[0] = then, Succs[1] =
		// else/join, so success is the else side when the call is negated.
		if b, i := g.FindNode(a.cond); b != nil && i == len(b.Nodes)-1 && len(b.Succs) == 2 {
			succ := b.Succs[0]
			if a.negated {
				succ = b.Succs[1]
			}
			witnesses = g.LeakWitnessesFrom(succ, 0, ok)
		} else {
			witnesses = g.LeakWitnesses(a.call, ok)
		}
	} else {
		witnesses = g.LeakWitnesses(a.call, ok)
	}
	for _, w := range witnesses {
		pass.Reportf(w,
			"%s from %s is unbalanced on this path; pair it with %s on every path, defer it, or store a handoff",
			spec.what, spec.acquire, spec.release)
	}
}

// errGuardRanges collects the body ranges of `if err != nil { ... }` guards
// on the acquire's error result: those paths carry no resource.
func errGuardRanges(pass *analysis.Pass, body *ast.BlockStmt, errObj types.Object) [][2]token.Pos {
	if errObj == nil {
		return nil
	}
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		be, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || be.Op != token.NEQ {
			return true
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		var side ast.Expr
		switch {
		case isNilIdent(y):
			side = x
		case isNilIdent(x):
			side = y
		default:
			return true
		}
		if id, ok := side.(*ast.Ident); ok && pass.Info.Uses[id] == errObj {
			out = append(out, [2]token.Pos{ifs.Body.Lbrace, ifs.Body.Rbrace})
		}
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func posInRanges(p token.Pos, ranges [][2]token.Pos) bool {
	for _, r := range ranges {
		if p >= r[0] && p <= r[1] {
			return true
		}
	}
	return false
}
