package lint

import (
	"go/ast"
	"go/types"

	"hyperq/internal/lint/analysis"
)

// SQLTaint reports pre-redaction SQL text flowing into logging, tracing, or
// debug output.
//
// The query log is the one place raw statement text is allowed to persist,
// and only in capture mode, only in the CaptureSQL field, precisely because
// replay needs the literals redaction would erase. Entry.CaptureSQL and
// Entry.ReplaySQL() are therefore the suite's taint sources: any value
// derived from them carries customer data (predicates, inserted rows,
// credentials inlined into DDL) and must not reach an observability sink —
// trace span attributes, trace events, the process log, or debug writers —
// without passing through a sanitizer first. querylog.Redact and the
// fingerprint functions (TemplateText, TemplateHash, ShortID) are the
// sanitizers: their outputs are shape, not data.
//
// Taint is tracked flow-sensitively within a function on the CFG (a
// reassignment `sql = querylog.Redact(sql)` clears the variable), and
// across function boundaries within a package via summaries: a helper that
// returns source-derived text acts as a source at its call sites, and a
// helper that forwards a parameter to a sink acts as a sink for that
// argument. Propagation is deliberately shallow through unknown calls —
// fmt and strings results stay tainted when an argument is, everything
// else launders — so error values threaded through executor calls do not
// light up every log line; DESIGN.md §15 records the trade.
//
// Test files are skipped: fixtures and assertions print SQL on purpose.
var SQLTaint = &analysis.Analyzer{
	Name: "sqltaint",
	Doc:  "checks that pre-redaction SQL from the query log never reaches logging, tracing, or debug sinks unsanitized",
	Run:  runSQLTaint,
}

func runSQLTaint(pass *analysis.Pass) error {
	// Cheap gate: taint can only originate at the querylog capture surface.
	if !mentionsCaptureAPI(pass) {
		return nil
	}
	sums := buildTaintSummaries(pass)
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, fn := range functionsIn(file) {
			tr := &taintRun{pass: pass, sums: sums, genSources: true, report: true}
			tr.run(fn.body, analysis.Fact{})
		}
	}
	return nil
}

// mentionsCaptureAPI reports whether any non-test file in the package
// names the capture surface at all; packages that never touch it cannot be
// tainted and skip the summary fixpoint entirely.
func mentionsCaptureAPI(pass *analysis.Pass) bool {
	found := false
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && (id.Name == "ReplaySQL" || id.Name == "CaptureSQL") {
				found = true
			}
			return true
		})
	}
	return found
}

// taintSummary is one function's cross-call behavior: whether its results
// carry source taint, and which parameters it forwards to a sink.
type taintSummary struct {
	returnsTaint bool
	sinkParams   map[int]bool
}

func (s *taintSummary) equal(t *taintSummary) bool {
	if s.returnsTaint != t.returnsTaint || len(s.sinkParams) != len(t.sinkParams) {
		return false
	}
	for i := range s.sinkParams {
		if !t.sinkParams[i] {
			return false
		}
	}
	return true
}

// buildTaintSummaries computes per-function summaries for the package to
// fixpoint, so helper-through-helper chains resolve (a wrapper around a
// wrapper around log.Printf is still a sink).
func buildTaintSummaries(pass *analysis.Pass) map[*types.Func]*taintSummary {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	sums := make(map[*types.Func]*taintSummary, len(decls))
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			s := summarize(pass, fd, sums)
			if prev, ok := sums[fn]; !ok || !prev.equal(s) {
				sums[fn] = s
				changed = true
			}
		}
	}
	return sums
}

// summarize computes one function's summary under the current summary map.
func summarize(pass *analysis.Pass, fd *ast.FuncDecl, sums map[*types.Func]*taintSummary) *taintSummary {
	out := &taintSummary{sinkParams: map[int]bool{}}
	// Does any return statement yield source-derived text?
	tr := &taintRun{pass: pass, sums: sums, genSources: true}
	tr.run(fd.Body, analysis.Fact{})
	out.returnsTaint = tr.returnTainted
	// Which parameters reach a sink? One seeded run per parameter keeps the
	// attribution exact.
	params := paramObjects(pass, fd)
	for i, p := range params {
		if p == nil {
			continue
		}
		seed := analysis.Fact{p: struct{}{}}
		ptr := &taintRun{pass: pass, sums: sums}
		ptr.run(fd.Body, seed)
		if ptr.sinkHit {
			out.sinkParams[i] = true
		}
	}
	return out
}

// paramObjects returns the declared parameter objects in order (nil for
// unnamed/blank parameters).
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, pass.Info.Defs[name])
		}
	}
	return out
}

// taintRun is one flow-sensitive pass over a function body.
type taintRun struct {
	pass *analysis.Pass
	sums map[*types.Func]*taintSummary

	genSources bool // treat ReplaySQL/CaptureSQL as taint origins
	report     bool // emit diagnostics at sinks

	sinkHit       bool // some sink received taint
	returnTainted bool // some return expression was tainted
}

func (tr *taintRun) run(body *ast.BlockStmt, entry analysis.Fact) {
	g := analysis.New(body)
	in := g.Forward(entry, tr.transfer)
	for _, b := range g.Blocks {
		fact := in[b]
		for _, n := range b.Nodes {
			tr.checkNode(n, fact)
			fact = tr.transfer(n, fact)
		}
	}
}

// transfer applies one CFG node's gen/kill effect on the tainted-variable
// set.
func (tr *taintRun) transfer(n ast.Node, in analysis.Fact) analysis.Fact {
	out := in
	set := func(o types.Object, tainted bool) {
		if o == nil {
			return
		}
		if tainted && !out.Has(o) {
			out = out.Clone()
			out[o] = struct{}{}
		} else if !tainted && out.Has(o) {
			out = out.Clone()
			delete(out, o)
		}
	}
	bindIdent := func(e ast.Expr, tainted bool) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if o := tr.pass.Info.Defs[id]; o != nil {
			set(o, tainted)
			return
		}
		set(tr.pass.Info.Uses[id], tainted)
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		// Iterating source-derived text (lines, fields) stays tainted.
		t := tr.exprTainted(rs.X, out)
		bindIdent(rs.Key, t)
		if rs.Value != nil {
			bindIdent(rs.Value, t)
		}
		return out
	}
	for _, scope := range cfgNodeScope(n) {
		ast.Inspect(scope, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			switch st := m.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						bindIdent(st.Lhs[i], tr.exprTainted(st.Rhs[i], out))
					}
				} else if len(st.Rhs) == 1 {
					t := tr.exprTainted(st.Rhs[0], out)
					for _, l := range st.Lhs {
						bindIdent(l, t)
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i, nm := range st.Names {
						bindIdent(nm, tr.exprTainted(st.Values[i], out))
					}
				} else if len(st.Values) == 1 {
					t := tr.exprTainted(st.Values[0], out)
					for _, nm := range st.Names {
						bindIdent(nm, t)
					}
				}
			}
			return true
		})
	}
	return out
}

// checkNode reports sink calls receiving tainted arguments and records
// tainted returns (for summaries).
func (tr *taintRun) checkNode(n ast.Node, fact analysis.Fact) {
	for _, scope := range cfgNodeScope(n) {
		ast.Inspect(scope, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if ret, ok := m.(*ast.ReturnStmt); ok {
				for _, e := range ret.Results {
					if tr.exprTainted(e, fact) {
						tr.returnTainted = true
					}
				}
				return true
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			desc, args := tr.sinkArgs(call)
			if desc == "" {
				return true
			}
			for _, a := range args {
				if tr.exprTainted(a, fact) {
					tr.sinkHit = true
					if tr.report {
						tr.pass.Reportf(a.Pos(),
							"pre-redaction SQL reaches %s; sanitize with querylog.Redact or fingerprint.TemplateText first",
							desc)
					}
					break
				}
			}
			return true
		})
	}
}

// sinkArgs classifies call as a sink, returning a description and the
// arguments that must be clean ("" when not a sink).
func (tr *taintRun) sinkArgs(call *ast.CallExpr) (string, []ast.Expr) {
	fn := analysis.CalleeFunc(tr.pass.Info, call)
	if fn == nil {
		return "", nil
	}
	pkg := analysis.FuncPkgName(fn)
	name := fn.Name()
	switch pkg {
	case "log":
		switch name {
		case "Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln", "Output":
			return "the process log", call.Args
		}
	case "trace":
		switch name {
		case "Set":
			return "a trace span attribute", call.Args
		case "Event":
			return "a trace event", call.Args
		}
	case "fmt":
		switch name {
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 1 {
				return "debug output", call.Args[1:]
			}
		case "Print", "Printf", "Println":
			return "debug output", call.Args
		}
	}
	// Same-package helpers that forward to a sink, via summaries.
	if sum := tr.sums[fn]; sum != nil && len(sum.sinkParams) > 0 {
		var args []ast.Expr
		for i := range sum.sinkParams {
			if i < len(call.Args) {
				args = append(args, call.Args[i])
			}
		}
		if len(args) > 0 {
			return name + " (which forwards it to a logging sink)", args
		}
	}
	return "", nil
}

// exprTainted reports whether e's value carries source taint under fact.
// Sanitizer calls launder their whole subtree; fmt/strings calls propagate
// argument taint to their result; other calls launder their result (their
// arguments are still checked at the call site itself by checkNode).
func (tr *taintRun) exprTainted(e ast.Expr, fact analysis.Fact) bool {
	if e == nil {
		return false
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return fact.Has(tr.pass.Info.Uses[x])
	case *ast.SelectorExpr:
		if tr.isSourceField(x) {
			return tr.genSources
		}
		// A field of a tainted value (finding.SQL) is tainted.
		if base := baseIdent(x.X); base != nil {
			return fact.Has(tr.pass.Info.Uses[base])
		}
		return false
	case *ast.CallExpr:
		fn := analysis.CalleeFunc(tr.pass.Info, x)
		if fn != nil {
			pkg := analysis.FuncPkgName(fn)
			if isTaintSanitizer(pkg, fn.Name()) {
				return false
			}
			if tr.genSources && pkg == "querylog" && fn.Name() == "ReplaySQL" {
				return true
			}
			if sum := tr.sums[fn]; sum != nil && sum.returnsTaint && tr.genSources {
				return true
			}
			if pkg == "fmt" || pkg == "strings" || pkg == "bytes" {
				for _, a := range x.Args {
					if tr.exprTainted(a, fact) {
						return true
					}
				}
				return false
			}
		}
		return false
	case *ast.BinaryExpr:
		return tr.exprTainted(x.X, fact) || tr.exprTainted(x.Y, fact)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if tr.exprTainted(kv.Value, fact) {
					return true
				}
				continue
			}
			if tr.exprTainted(el, fact) {
				return true
			}
		}
		return false
	case *ast.KeyValueExpr:
		return tr.exprTainted(x.Value, fact)
	case *ast.UnaryExpr:
		return tr.exprTainted(x.X, fact)
	case *ast.StarExpr:
		return tr.exprTainted(x.X, fact)
	case *ast.IndexExpr:
		return tr.exprTainted(x.X, fact)
	case *ast.SliceExpr:
		return tr.exprTainted(x.X, fact)
	case *ast.TypeAssertExpr:
		return tr.exprTainted(x.X, fact)
	}
	return false
}

// isSourceField reports a read of querylog's pre-redaction capture field.
func (tr *taintRun) isSourceField(sel *ast.SelectorExpr) bool {
	v, ok := tr.pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v.Name() != "CaptureSQL" {
		return false
	}
	return v.Pkg() != nil && v.Pkg().Name() == "querylog"
}

// isTaintSanitizer reports the shape-preserving, literal-erasing functions
// whose results are safe to log.
func isTaintSanitizer(pkg, name string) bool {
	switch pkg {
	case "querylog":
		return name == "Redact"
	case "fingerprint":
		switch name {
		case "TemplateText", "TemplateHash", "ShortID":
			return true
		}
	}
	return false
}
