package lint

import (
	"path/filepath"
	"testing"

	"hyperq/internal/lint/analysistest"
)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, fixtureRoot(t), SpanEnd, "spanend")
}

func TestLockIO(t *testing.T) {
	analysistest.Run(t, fixtureRoot(t), LockIO, "lockio")
}

func TestFrontCode(t *testing.T) {
	// The tdp fixture is the registry itself: loading it as a target proves
	// codes.go is the sanctioned location for the enforced literals.
	analysistest.Run(t, fixtureRoot(t), FrontCode, "frontcode", "tdp")
}

func TestCtxExec(t *testing.T) {
	analysistest.Run(t, fixtureRoot(t), CtxExec, "ctxexec/internal/odbc")
}

func TestWireErr(t *testing.T) {
	analysistest.Run(t, fixtureRoot(t), WireErr, "wireerr/internal/wire/x")
}

func TestLeakPair(t *testing.T) {
	// The pool fixture carries the PR 4 warm-up leak in single-slot essence;
	// hyperq and wstats cover the bool-acquire and handoff-store shapes;
	// leakpair covers cross-package stream leases.
	analysistest.Run(t, fixtureRoot(t), LeakPair, "leakpair", "pool", "hyperq", "wstats")
}

func TestErrSentinel(t *testing.T) {
	// bareeof.go carries the PR 7 bug (bare io.EOF delivered as a stream's
	// clean-end sentinel) in pre-fix and post-fix shape.
	analysistest.Run(t, fixtureRoot(t), ErrSentinel, "errsentinel")
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, fixtureRoot(t), AtomicField, "atomicfield")
}

func TestSQLTaint(t *testing.T) {
	analysistest.Run(t, fixtureRoot(t), SQLTaint, "sqltaint")
}

// TestCtxExecOutOfScope proves the analyzer ignores packages off the
// request path: a package whose import path names neither internal/hyperq
// nor internal/odbc produces nothing.
func TestCtxExecOutOfScope(t *testing.T) {
	analysistest.Run(t, fixtureRoot(t), CtxExec, "cwp")
}

func TestByName(t *testing.T) {
	got := ByName([]string{"spanend", "wireerr"})
	if len(got) != 2 || got[0] != SpanEnd || got[1] != WireErr {
		t.Fatalf("ByName = %v", got)
	}
	if len(ByName([]string{"nosuch"})) != 0 {
		t.Fatal("ByName resolved an unknown analyzer")
	}
}
