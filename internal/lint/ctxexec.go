package lint

import (
	"go/ast"
	"strings"

	"hyperq/internal/lint/analysis"
)

// CtxExec reports dropped context propagation on the request path.
//
// Per-request deadlines (PR 2) and trace propagation (PR 3) both ride the
// context. Inside the request-path packages (internal/hyperq and the
// internal/odbc stack) two shapes silently discard them: calling a
// context-free Exec/Connect where the receiver offers ExecContext/
// ConnectContext, and minting a fresh context.Background()/TODO() instead
// of threading the request context through. Either one makes a query
// un-cancellable and invisible to its trace the moment it crosses that
// call. The streaming entry points are patrolled the same way: an
// ExecStream call where the receiver offers ExecStreamContext drops the
// context that cancels the whole fetch→convert→write pipeline.
//
// Exempt by construction: _test.go files, package main (process-lifetime
// roots are legitimate there), the context-free adapter shims themselves
// (an Exec method forwarding to ExecContext must call Background), and
// forwarding shims where a method named Exec/Connect delegates to the inner
// driver's method of the same name.
var CtxExec = &analysis.Analyzer{
	Name: "ctxexec",
	Doc:  "checks that request-path code uses ExecContext/ConnectContext and never mints context.Background/TODO",
	Run:  runCtxExec,
}

// ctxShimNames are the context-free interface methods whose implementations
// are allowed to bridge via context.Background.
func ctxShimName(name string) bool {
	switch name {
	case "Exec", "Connect", "Dial":
		return true
	}
	return false
}

func runCtxExec(pass *analysis.Pass) error {
	if !strings.Contains(pass.PkgPath, "internal/hyperq") &&
		!strings.Contains(pass.PkgPath, "internal/odbc") {
		return nil
	}
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, fn := range functionsIn(file) {
			checkCtxIn(pass, fn)
		}
	}
	return nil
}

func checkCtxIn(pass *analysis.Pass, fn funcBody) {
	inspectSkipFuncLits(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		name := callee.Name()
		switch {
		case analysis.FuncPkgName(callee) == "context" && (name == "Background" || name == "TODO"):
			// The adapter shims themselves (Exec forwarding to ExecContext)
			// are the one place a fresh root context is correct.
			if !ctxShimName(fn.name) {
				pass.Reportf(call.Pos(),
					"context.%s() on the request path drops the caller's deadline and trace; thread the request context instead", name)
			}
		case analysis.IsMethod(callee) && (name == "Exec" || name == "Connect" || name == "ExecStream"):
			sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !selOK {
				return true
			}
			recv, recvOK := pass.Info.Types[sel.X]
			if !recvOK || !analysis.HasMethod(recv.Type, name+"Context") {
				return true
			}
			// A method named Exec forwarding to the inner driver's Exec is a
			// deliberate context-free shim, not a dropped deadline.
			if fn.name == name {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s() used where %sContext exists; the request deadline and trace are silently dropped", name, name)
		case !analysis.IsMethod(callee) && name == "Dial":
			if callee.Pkg() == nil || callee.Pkg().Scope().Lookup("DialContext") == nil {
				return true
			}
			if fn.name == name {
				return true
			}
			pass.Reportf(call.Pos(),
				"Dial() used where DialContext exists; the request deadline is silently dropped")
		}
		return true
	})
}
