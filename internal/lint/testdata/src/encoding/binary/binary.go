// Package binary is a hermetic stub shadowing encoding/binary for analyzer
// fixtures.
package binary

type ByteOrder struct{}

var BigEndian ByteOrder

func Write(w any, order ByteOrder, data any) error { return nil }
func Read(r any, order ByteOrder, data any) error  { return nil }
