// Package odbc is a hermetic stub of the repo's ODBC layer for analyzer
// fixtures: lockio matches blocking methods by declaring-package name.
package odbc

type Executor struct{}

func (e *Executor) Exec(query string) error { return nil }
func (e *Executor) Close() error            { return nil }

type ResultStream struct{}

func (s *ResultStream) Close() error { return nil }

func OpenStream(e *Executor, sql string) (*ResultStream, error) { return &ResultStream{}, nil }
