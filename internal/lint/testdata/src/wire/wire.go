// Package wire is a hermetic stub of the frame layer for errsentinel
// fixtures: ReadMessage is a raw transport read whose error may be bare
// io.EOF straight off the socket.
package wire

func ReadMessage() (byte, []byte, error) { return 0, nil, nil }
