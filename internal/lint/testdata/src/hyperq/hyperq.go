// Package hyperq is a hermetic stub of the gateway's result-memory
// accountant for leakpair fixtures: a bool acquire whose obligation exists
// only on the success branch.
package hyperq

type Gateway struct{}

func (g *Gateway) acquireResultBytes(n int64) bool { return true }
func (g *Gateway) releaseResultBytes(n int64)      {}

type item struct {
	bytes int64
}

func work() {}

// fetchLeaky sheds on the failure branch (no obligation there) but loses
// the reservation when shipping fails.
func (g *Gateway) fetchLeaky(size int64, ship func(item) bool) {
	if !g.acquireResultBytes(size) {
		return
	}
	if !ship(item{}) {
		return // want `result-memory reservation from acquireResultBytes is unbalanced on this path`
	}
	g.releaseResultBytes(size)
}

// fetchHandoff stores the reserved size into the in-flight item — the
// pipeline stage that drains the item releases the bytes, so the store is
// the handoff.
func (g *Gateway) fetchHandoff(size int64, out chan item) {
	if !g.acquireResultBytes(size) {
		return
	}
	it := item{bytes: size}
	out <- it
}

// fetchPositive consumes the bool without negation: the obligation lives in
// the then-branch only.
func (g *Gateway) fetchPositive(size int64) {
	if g.acquireResultBytes(size) {
		g.releaseResultBytes(size)
	}
}

// fetchDeferred releases via defer, covering every path.
func (g *Gateway) fetchDeferred(size int64) {
	if !g.acquireResultBytes(size) {
		return
	}
	defer g.releaseResultBytes(size)
	work()
}
