// Package time is a hermetic stub shadowing the standard library for
// analyzer fixtures.
package time

type Duration int64

const Millisecond Duration = 1000000

func Sleep(d Duration) {}
