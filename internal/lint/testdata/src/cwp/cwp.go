// Package cwp is a hermetic stub of the repo's backend wire client for
// analyzer fixtures.
package cwp

import "context"

func Dial(addr string) error { return nil }

func DialContext(ctx context.Context, addr string) error { return nil }
