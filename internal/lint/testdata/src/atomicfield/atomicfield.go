// Fixtures for the atomicfield analyzer: fields touched through sync/atomic
// anywhere must be touched atomically everywhere, except on freshly
// allocated values no other goroutine can see yet.
package atomicfield

import "sync/atomic"

type counter struct {
	hits  int64 // atomic (bump)
	total int64 // never atomic: plain access is fine
	gen   int32 // atomic (advance)
}

var sink *counter

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) advance() {
	atomic.StoreInt32(&c.gen, atomic.LoadInt32(&c.gen)+1)
}

// Atomic access and address delegation are fine.
func (c *counter) atomicOK() int64 {
	p := &c.hits
	return atomic.LoadInt64(p)
}

// Plain access to the never-atomic field is fine.
func (c *counter) plainFieldOK() int64 {
	return c.total
}

func (c *counter) readRace() int64 {
	return c.hits // want `plain read of field hits, which is accessed with sync/atomic elsewhere; use atomic.LoadInt64`
}

func (c *counter) writeRace(v int64) {
	c.hits = v // want `plain write to field hits, which is accessed with sync/atomic elsewhere; use atomic.StoreInt64/AddInt64`
}

func (c *counter) incRace() {
	c.hits++ // want `plain write to field hits, which is accessed with sync/atomic elsewhere; use atomic.StoreInt64/AddInt64`
}

func (c *counter) mixedExpr(limit int64) bool {
	return c.hits > limit // want `plain read of field hits, which is accessed with sync/atomic elsewhere; use atomic.LoadInt64`
}

func (c *counter) int32Suffix() int32 {
	return c.gen // want `plain read of field gen, which is accessed with sync/atomic elsewhere; use atomic.LoadInt32`
}

// Composite-literal initialization never races: the value has no aliases.
func newCounter() *counter {
	return &counter{hits: 1}
}

// A fresh, unpublished allocation may be initialized with plain writes
// (constructor idiom; mirrors wstats admit()).
func freshInit(seed int64) *counter {
	c := &counter{total: seed}
	c.hits = seed // fresh: not yet published
	c.hits++      // still fresh
	return c
}

// new(T) counts as fresh too.
func freshNew() *counter {
	c := new(counter)
	c.hits = 7 // fresh
	return c
}

// Publication ends freshness: once the value is stored somewhere shared,
// plain access races with whoever picked it up.
func freshThenPublished(ch chan *counter) {
	c := &counter{}
	c.hits = 1 // fresh
	ch <- c
	c.hits = 2 // want `plain write to field hits, which is accessed with sync/atomic elsewhere; use atomic.StoreInt64/AddInt64`
}

// Storing into a shared map publishes as well.
func freshThenMapped(m map[string]*counter) {
	c := &counter{}
	c.hits = 1 // fresh
	m["k"] = c
	_ = c.hits // want `plain read of field hits, which is accessed with sync/atomic elsewhere; use atomic.LoadInt64`
}

// Assigning to a global publishes.
func freshThenGlobal() {
	c := &counter{}
	c.hits = 1 // fresh
	sink = c
	c.hits = 2 // want `plain write to field hits, which is accessed with sync/atomic elsewhere; use atomic.StoreInt64/AddInt64`
}

// A value received from elsewhere is never fresh.
func notFresh(c *counter) {
	c.hits = 1 // want `plain write to field hits, which is accessed with sync/atomic elsewhere; use atomic.StoreInt64/AddInt64`
}

// Rebinding to a non-fresh value kills freshness.
func rebound(old *counter) {
	c := &counter{}
	c.hits = 1 // fresh
	c = old
	c.hits = 2 // want `plain write to field hits, which is accessed with sync/atomic elsewhere; use atomic.StoreInt64/AddInt64`
}

// A plain access inside a range body is reported exactly once (the range
// head and the body are distinct CFG nodes over overlapping syntax).
func rangeBody(cs []*counter) {
	for _, c := range cs {
		c.hits = 1 // want `plain write to field hits, which is accessed with sync/atomic elsewhere; use atomic.StoreInt64/AddInt64`
	}
}

// Freshness joins over branches: published on one path means published at
// the join.
func freshBranchJoin(publish bool, ch chan *counter) {
	c := &counter{}
	if publish {
		ch <- c
	}
	c.hits = 1 // want `plain write to field hits, which is accessed with sync/atomic elsewhere; use atomic.StoreInt64/AddInt64`
}
