// Fixtures for the spanend analyzer.
package spanend

import "trace"

// A span with no End at all is reported at its creation.
func neverEnded(tr *trace.Trace) {
	sp := tr.Start("parse") // want `span "sp" is never ended`
	sp.Event("working")
}

// A bare Start discards the span outright.
func discarded(tr *trace.Trace) {
	tr.Start("parse") // want `span discarded immediately`
}

// Assigning to _ is the same leak, spelled differently.
func blankAssigned(tr *trace.Trace) {
	_ = tr.Start("parse") // want `span assigned to _ can never be ended`
}

// An early return that skips the End leaks the span on that path only.
func earlyReturn(tr *trace.Trace, fail bool) int {
	sp := tr.Start("exec")
	if fail {
		return 1 // want `return leaves span "sp" unended`
	}
	sp.End()
	return 0
}

// deferOK: a deferred End covers every return path.
func deferOK(tr *trace.Trace, fail bool) int {
	sp := tr.Start("exec")
	defer sp.End()
	if fail {
		return 1
	}
	return 0
}

// closureOK: ending a conditionally created span from a deferred closure is
// the idiomatic pool/resilient pattern and must be accepted.
func closureOK(tr *trace.Trace, cond bool) {
	var sp *trace.Span
	defer func() {
		if sp != nil {
			sp.End()
		}
	}()
	if cond {
		sp = tr.Start("cond")
	}
}

// explicitOK: an End on every path, without defer.
func explicitOK(tr *trace.Trace, fail bool) int {
	sp := tr.Start("exec")
	if fail {
		sp.End()
		return 1
	}
	sp.End()
	return 0
}

// escapeOK: returning the span moves End responsibility to the caller.
func escapeOK(tr *trace.Trace) *trace.Span {
	sp := tr.Start("handoff")
	return sp
}

// lookupOK: FindSpan returns an existing span; inspecting it carries no End
// obligation.
func lookupOK(tr *trace.Trace) bool {
	sp := tr.FindSpan("execute")
	return sp != nil
}

// loopOK: a span started and ended inside each loop iteration.
func loopOK(tr *trace.Trace, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Start("attempt")
		sp.Event("try")
		sp.End()
	}
}
