// Package io is a hermetic stub of the standard library's io package for
// analyzer fixtures: errsentinel matches the EOF sentinel by package name.
package io

import "errors"

var EOF = errors.New("EOF")

var ErrUnexpectedEOF = errors.New("unexpected EOF")
