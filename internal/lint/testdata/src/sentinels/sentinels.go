// Package sentinels declares cross-package sentinel errors for errsentinel
// fixtures.
package sentinels

import "errors"

var ErrClosed = errors.New("closed")
