// Package strings is a hermetic stub of the standard library's strings
// package for analyzer fixtures: sqltaint propagates taint through string
// massaging by package name.
package strings

func ToUpper(s string) string { return s }

func TrimSpace(s string) string { return s }

func Split(s, sep string) []string { return []string{s} }
