// Package log is a hermetic stub of the standard library's log package for
// analyzer fixtures: sqltaint matches the print family as sinks by package
// name.
package log

func Print(v ...any)                 {}
func Printf(format string, v ...any) {}
func Println(v ...any)               {}
