// Package errors is a hermetic stub of the standard library's errors
// package for analyzer fixtures.
package errors

func New(text string) error { return &errorString{text} }

type errorString struct{ s string }

func (e *errorString) Error() string { return e.s }

func Is(err, target error) bool { return false }

func As(err error, target any) bool { return false }
