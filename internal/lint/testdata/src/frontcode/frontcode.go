// Fixtures for the frontcode analyzer.
package frontcode

import "tdp"

type failure struct {
	code int
	msg  string
}

// Bare enforced literals outside the registry file are drift hazards.
func bare() []failure {
	return []failure{
		{code: 2828, msg: "write state unknown"}, // want `frontend code 2828 must be the registry constant tdp\.CodeWriteStateUnknown`
		{code: 3120, msg: "backend unavailable"}, // want `frontend code 3120 must be the registry constant tdp\.CodeBackendUnavailable`
		{code: 3134, msg: "gateway saturated"},   // want `frontend code 3134 must be the registry constant tdp\.CodeGatewaySaturated`
		{code: 3002, msg: "logon denied"},        // want `frontend code 3002 must be the registry constant tdp\.CodeLogonDenied`
		{code: 3004, msg: "logon invalid"},       // want `frontend code 3004 must be the registry constant tdp\.CodeLogonInvalid`
		{code: 3136, msg: "client too slow"},     // want `frontend code 3136 must be the registry constant tdp\.CodeClientTooSlow`
		{code: 3610, msg: "result interrupted"},  // want `frontend code 3610 must be the registry constant tdp\.CodeResultInterrupted`
	}
}

// Even comparisons must go through the registry: a test matching on a bare
// code drifts just as silently as an emit site.
func classify(code int) string {
	if code == 3120 { // want `frontend code 3120 must be the registry constant tdp\.CodeBackendUnavailable`
		return "backend-unavailable"
	}
	return "other"
}

// registryOK: the named constants are the sanctioned spelling, and codes
// outside the enforced set (statement-level failures) remain plain ints.
func registryOK() []int {
	return []int{
		tdp.CodeWriteStateUnknown,
		tdp.CodeBackendUnavailable,
		tdp.CodeGatewaySaturated,
		tdp.CodeLogonDenied,
		tdp.CodeLogonInvalid,
		tdp.CodeClientTooSlow,
		tdp.CodeResultInterrupted,
		3807,
	}
}
