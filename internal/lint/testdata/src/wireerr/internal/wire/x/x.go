// Fixtures for the wireerr analyzer. The package path deliberately
// contains "internal/wire": wireerr only patrols the wire layer.
package x

import "encoding/binary"

// frameWriter stands in for the buffered protocol writers.
type frameWriter struct{}

func (w *frameWriter) Flush() error                 { return nil }
func (w *frameWriter) WriteMessage(b []byte) error  { return nil }
func (w *frameWriter) ReadMessage() ([]byte, error) { return nil, nil }

// Dropped errors on framing-critical calls desynchronize the stream.
func dropped(w *frameWriter, v uint32) {
	binary.Write(w, binary.BigEndian, v)  // want `binary\.Write error dropped`
	binary.Read(w, binary.BigEndian, &v)  // want `binary\.Read error dropped`
	w.Flush()                             // want `\.Flush error dropped`
	w.WriteMessage([]byte{0x01})          // want `\.WriteMessage error dropped`
}

// checkedOK: propagated or explicitly discarded errors are fine — both are
// visible in review.
func checkedOK(w *frameWriter, v uint32) error {
	if err := binary.Write(w, binary.BigEndian, v); err != nil {
		return err
	}
	if err := w.WriteMessage([]byte{0x01}); err != nil {
		return err
	}
	_ = w.Flush()
	return nil
}

// otherCallsOK: calls outside the framing denylist keep their usual
// error-handling latitude.
func otherCallsOK(w *frameWriter) {
	helper(w)
}

func helper(w *frameWriter) error { return w.Flush() }
