// Package sync is a hermetic stub shadowing the standard library for
// analyzer fixtures.
package sync

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
