// Package atomic is a hermetic stand-in for sync/atomic, just enough surface
// for the atomicfield fixtures to type-check.
package atomic

func AddInt32(addr *int32, delta int32) int32 { *addr += delta; return *addr }

func AddInt64(addr *int64, delta int64) int64 { *addr += delta; return *addr }

func AddUint64(addr *uint64, delta uint64) uint64 { *addr += delta; return *addr }

func LoadInt32(addr *int32) int32 { return *addr }

func LoadInt64(addr *int64) int64 { return *addr }

func LoadUint64(addr *uint64) uint64 { return *addr }

func StoreInt32(addr *int32, val int32) { *addr = val }

func StoreInt64(addr *int64, val int64) { *addr = val }

func StoreUint64(addr *uint64, val uint64) { *addr = val }

func CompareAndSwapInt64(addr *int64, old, new int64) bool {
	if *addr == old {
		*addr = new
		return true
	}
	return false
}
