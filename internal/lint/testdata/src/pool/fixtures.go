package pool

// maintainLeaky reproduces the PR 4 warm-up leak in single-slot essence: the
// maintainer reserves a slot, and the dial error path returns without
// un-reserving it — starving the pool for the rest of the process. (The
// shipped bug leaked a whole batch of reservations via arithmetic; the
// analyzer checks release reachability, which catches the same return.)
func (p *Pool) maintainLeaky(target int) {
	for i := 0; i < target; i++ {
		reserveSlot()
		c, err := p.dial()
		if err != nil {
			return // want `pool slot reservation from reserveSlot is unbalanced on this path`
		}
		p.handbackLocked(c)
		unreserveSlot()
	}
}

// maintainFixed is the post-PR 4 shape: every path out of the loop body
// balances the reservation.
func (p *Pool) maintainFixed(target int) {
	for i := 0; i < target; i++ {
		reserveSlot()
		c, err := p.dial()
		if err != nil {
			unreserveSlot()
			return
		}
		p.handbackLocked(c)
		unreserveSlot()
	}
}

// useLeaky releases on the main path but leaks on the early return.
func (p *Pool) useLeaky(cond bool) {
	c, err := p.acquire()
	if err != nil {
		return
	}
	if cond {
		return // want `pool connection from acquire is not released on this path`
	}
	p.release(c, false)
}

// useNever acquires and never releases: the leak surfaces at the fall-off
// end of the function.
func (p *Pool) useNever() {
	c, err := p.acquire()
	if err != nil {
		return
	}
	c.ping()
} // want `pool connection from acquire is not released on this path`

// useDeferred is the idiomatic shape: a deferred release covers every path.
func (p *Pool) useDeferred() error {
	c, err := p.acquire()
	if err != nil {
		return err
	}
	defer p.release(c, false)
	c.ping()
	return nil
}

// useDeferredClosure releases inside a deferred closure (the ExecContext
// shape, where the broken flag is decided at defer time).
func (p *Pool) useDeferredClosure() error {
	c, err := p.acquire()
	if err != nil {
		return err
	}
	broken := false
	defer func() { p.release(c, broken) }()
	c.ping()
	return nil
}

// useEscape returns the connection: ownership moves to the caller.
func (p *Pool) useEscape() (*conn, error) {
	c, err := p.acquire()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// useFieldEscape parks the connection in a struct (the Pin shape): the
// stored owner releases it later.
type pinHolder struct {
	pinned *conn
}

func (p *Pool) useFieldEscape(h *pinHolder) error {
	c, err := p.acquire()
	if err != nil {
		return err
	}
	h.pinned = c
	return nil
}

// streamLeaky closes on the main path but leaks the lease on the early
// return.
func (sc *SessionConn) streamLeaky(cond bool) error {
	st, err := sc.ExecStream("SELECT 1")
	if err != nil {
		return err
	}
	if cond {
		return nil // want `result stream from ExecStream is not released on this path`
	}
	return st.Close()
}

// streamDeferred is the streaming hot path: deferred Close, reads in
// between.
func (sc *SessionConn) streamDeferred() error {
	st, err := sc.ExecStream("SELECT 1")
	if err != nil {
		return err
	}
	defer st.Close()
	_, err = st.Next()
	return err
}
