// Package pool is a hermetic stub mirroring internal/odbc/pool for leakpair
// fixtures: the analyzer matches acquire/release callees by declaring-package
// name, so this tiny package stands in for the real pool.
package pool

type conn struct{}

func (c *conn) ping() {}

type Pool struct{}

func (p *Pool) acquire() (*conn, error)      { return &conn{}, nil }
func (p *Pool) dial() (*conn, error)         { return &conn{}, nil }
func (p *Pool) release(c *conn, broken bool) {}
func (p *Pool) handback(c *conn)             {}
func (p *Pool) handbackLocked(c *conn)       {}

func reserveSlot()   {}
func unreserveSlot() {}

type ResultStream struct{}

func (s *ResultStream) Close() error       { return nil }
func (s *ResultStream) Next() (int, error) { return 0, nil }

type SessionConn struct {
	p *Pool
}

func (sc *SessionConn) ExecStream(sql string) (*ResultStream, error) { return &ResultStream{}, nil }
