// Package trace is a hermetic stub of hyperq/internal/trace for analyzer
// fixtures: the spanend analyzer matches spans by package name and type
// name, so this tiny shadow stands in for the real thing.
package trace

type Trace struct{}

func (t *Trace) Start(name string) *Span { return &Span{} }

type Span struct{}

func (sp *Span) End()                  {}
func (sp *Span) Event(msg string)      {}
func (sp *Span) Set(key, value string) {}

// FindSpan is a lookup, not a creation: spanend must not require callers to
// End what they merely inspect.
func (t *Trace) FindSpan(name string) *Span { return nil }
