// Package querylog is a hermetic stub of hyperq/internal/querylog for
// analyzer fixtures: sqltaint matches the capture surface (CaptureSQL,
// ReplaySQL) and the Redact sanitizer by package name.
package querylog

import "fingerprint"

// Entry mirrors the real query-log entry's capture surface.
type Entry struct {
	SQL        string // redacted at capture time: safe to log
	Fingerprint string
	CaptureSQL string // pre-redaction capture text: tainted
}

// ReplaySQL returns the statement text a replay should re-execute.
func (e *Entry) ReplaySQL() string {
	if e.CaptureSQL != "" {
		return e.CaptureSQL
	}
	return e.SQL
}

// Redact erases literals, keeping only the statement shape.
func Redact(sql string) string { return fingerprint.TemplateText(sql) }
