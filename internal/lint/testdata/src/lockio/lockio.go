// Fixtures for the lockio analyzer.
package lockio

import (
	"cwp"
	"odbc"
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	ex *odbc.Executor
}

type shard struct {
	mu sync.RWMutex
	ex *odbc.Executor
}

// Sleeping inside the critical section stalls every other request.
func sleepUnderLock(s *server) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking call time\.Sleep while mutex "s\.mu" is held`
	s.mu.Unlock()
}

// Backend execution under the lock serializes the whole pool behind one
// slow statement.
func execUnderLock(s *server) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ex.Exec("SELECT 1") // want `blocking call \(odbc\) \.Exec while mutex "s\.mu" is held`
}

// Dialing under a read lock blocks every writer behind the network.
func dialUnderRLock(s *shard) {
	s.mu.RLock()
	_ = cwp.Dial("backend:1025") // want `blocking call cwp\.Dial while mutex "s\.mu" is held`
	s.mu.RUnlock()
}

// unlockFirstOK: copying state out and releasing before the I/O is the
// pattern the pool uses everywhere.
func unlockFirstOK(s *server) error {
	s.mu.Lock()
	ex := s.ex
	s.mu.Unlock()
	return ex.Exec("SELECT 1")
}

// rUnlockFirstOK: same shape through a read lock.
func rUnlockFirstOK(s *shard) {
	s.mu.RLock()
	ex := s.ex
	s.mu.RUnlock()
	_ = ex.Exec("SELECT 1")
	time.Sleep(time.Millisecond)
}

// otherMutexOK: the blocking call happens under no lock acquired in this
// function; a different mutex being locked and released is irrelevant.
func otherMutexOK(a, b *server) error {
	a.mu.Lock()
	n := 1
	_ = n
	a.mu.Unlock()
	return b.ex.Exec("SELECT 1")
}
