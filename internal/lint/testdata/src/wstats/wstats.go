// Package wstats is a hermetic stub of the workload-statistics exemplar
// pinning for leakpair fixtures: a counter pair whose release is often a
// handoff — the pinned id stored for a later Unpin.
package wstats

type Trace struct {
	ID string
}

type Pinner struct{}

func (p *Pinner) Pin(t *Trace)    {}
func (p *Pinner) Unpin(id string) {}

type entry struct {
	exID string
}

// noteLeaky pins the trace but forgets it on the fast-exit path: nothing
// can ever unpin it.
func noteLeaky(p *Pinner, e *entry, t *Trace, slower bool) {
	p.Pin(t)
	if !slower {
		return // want `exemplar trace pin from Pin is unbalanced on this path`
	}
	e.exID = t.ID
}

// noteHandoff mirrors the real noteExemplar: the previous exemplar is
// unpinned and the new pin's id is stored for the next round.
func noteHandoff(p *Pinner, e *entry, t *Trace) {
	p.Pin(t)
	if e.exID != "" {
		p.Unpin(e.exID)
	}
	e.exID = t.ID
}
