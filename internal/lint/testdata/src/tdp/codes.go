// Package tdp mirrors the real registry file: codes.go of a package named
// tdp is the one place frontcode allows the enforced literals.
package tdp

const (
	CodeWriteStateUnknown  = 2828
	CodeBackendUnavailable = 3120
	CodeGatewaySaturated   = 3134
	CodeLogonDenied        = 3002
	CodeLogonInvalid       = 3004
	CodeClientTooSlow      = 3136
	CodeResultInterrupted  = 3610
)
