// Package fingerprint is a hermetic stub of hyperq/internal/fingerprint for
// analyzer fixtures: sqltaint treats its template/hash functions as
// sanitizers by package name.
package fingerprint

func TemplateHash(sql string) uint64 { return uint64(len(sql)) }

func TemplateText(sql string) string { return "" }

func ShortID(h uint64) string { return "" }
