// Fixtures for the sqltaint analyzer: pre-redaction SQL (querylog's
// CaptureSQL field and ReplaySQL method) must be sanitized before reaching
// logging, tracing, or debug sinks.
package sqltaint

import (
	"fingerprint"
	"log"
	"querylog"
	"strings"
	"trace"
)

type finding struct {
	SQL string
	ID  string
}

// Direct source-to-sink flows.
func direct(e *querylog.Entry) {
	log.Printf("replaying %s", e.ReplaySQL()) // want `pre-redaction SQL reaches the process log; sanitize with querylog.Redact or fingerprint.TemplateText first`
	log.Println(e.CaptureSQL)                 // want `pre-redaction SQL reaches the process log; sanitize with querylog.Redact or fingerprint.TemplateText first`
}

// Taint follows variables, concatenation, and strings massaging.
func viaVariable(t *trace.Trace, e *querylog.Entry) {
	sql := e.ReplaySQL()
	sp := t.Start("replay")
	defer sp.End()
	sp.Set("sql", sql)                       // want `pre-redaction SQL reaches a trace span attribute; sanitize with querylog.Redact or fingerprint.TemplateText first`
	log.Printf("q: " + sql)                  // want `pre-redaction SQL reaches the process log; sanitize with querylog.Redact or fingerprint.TemplateText first`
	log.Println(strings.ToUpper(sql))        // want `pre-redaction SQL reaches the process log; sanitize with querylog.Redact or fingerprint.TemplateText first`
	for _, line := range strings.Split(sql, "\n") {
		log.Println(line) // want `pre-redaction SQL reaches the process log; sanitize with querylog.Redact or fingerprint.TemplateText first`
	}
}

// Sanitizers launder: fingerprints and redacted text are shape, not data.
func sanitized(t *trace.Trace, e *querylog.Entry) {
	sql := e.ReplaySQL()
	sp := t.Start("replay")
	defer sp.End()
	sp.Set("sql", querylog.Redact(sql))
	sp.Set("fp", fingerprint.ShortID(fingerprint.TemplateHash(sql)))
	log.Println(fingerprint.TemplateText(sql))
	log.Println(e.SQL) // the redacted log field is safe
}

// Reassignment through a sanitizer clears the variable (flow-sensitive).
func redactedInPlace(e *querylog.Entry) {
	sql := e.ReplaySQL()
	sql = querylog.Redact(sql)
	log.Println(sql)
}

// Sanitizing on only one path is not enough: the other path still leaks.
func redactedOnOnePath(e *querylog.Entry, debug bool) {
	sql := e.ReplaySQL()
	if debug {
		sql = querylog.Redact(sql)
	}
	log.Println(sql) // want `pre-redaction SQL reaches the process log; sanitize with querylog.Redact or fingerprint.TemplateText first`
}

// Taint survives struct literals and field reads of tainted values.
func viaStruct(t *trace.Trace, e *querylog.Entry) {
	f := finding{SQL: e.ReplaySQL(), ID: "x"}
	sp := t.Start("replay")
	defer sp.End()
	sp.Event(f.SQL) // want `pre-redaction SQL reaches a trace event; sanitize with querylog.Redact or fingerprint.TemplateText first`
}

// rawSQL is a same-package helper whose result carries taint: callers are
// checked via its summary.
func rawSQL(e *querylog.Entry) string {
	return e.ReplaySQL()
}

func viaHelperSource(e *querylog.Entry) {
	log.Println(rawSQL(e)) // want `pre-redaction SQL reaches the process log; sanitize with querylog.Redact or fingerprint.TemplateText first`
}

// logStmt forwards its parameter to a sink: call sites with tainted
// arguments are flagged via its summary.
func logStmt(prefix, stmt string) {
	log.Printf("%s: %s", prefix, stmt)
}

func viaHelperSink(e *querylog.Entry) {
	logStmt("replay", e.ReplaySQL()) // want `pre-redaction SQL reaches logStmt \(which forwards it to a logging sink\); sanitize with querylog.Redact or fingerprint.TemplateText first`
	logStmt("replay", querylog.Redact(e.ReplaySQL()))
}

// A helper that sanitizes before sinking is clean, and so are its callers.
func logShape(stmt string) {
	log.Printf("shape: %s", querylog.Redact(stmt))
}

func viaSanitizingHelper(e *querylog.Entry) {
	logShape(e.ReplaySQL())
}
