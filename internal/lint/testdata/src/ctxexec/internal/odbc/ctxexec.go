// Fixtures for the ctxexec analyzer. The package path deliberately
// contains "internal/odbc": ctxexec only patrols the request-path
// packages.
package odbc

import (
	"context"
	"cwp"
)

// Exer offers both spellings; callers must use the context one.
type Exer struct{}

func (e *Exer) Exec(q string) error                          { return nil }
func (e *Exer) ExecContext(ctx context.Context, q string) error { return nil }

// Plain has no context variant, so Exec is all there is.
type Plain struct{}

func (p *Plain) Exec(q string) error { return nil }

// Streamer mirrors the streaming entry points: a context-free ExecStream
// next to the context-carrying spelling.
type Streamer struct{}

func (s *Streamer) ExecStream(q string) error                             { return nil }
func (s *Streamer) ExecStreamContext(ctx context.Context, q string) error { return nil }

// CtxStreamer carries the context in ExecStream itself (the odbc
// StreamExecutor shape); there is no better spelling to demand.
type CtxStreamer struct{}

func (s *CtxStreamer) ExecStream(ctx context.Context, q string) error { return nil }

// Calling the context-free spelling where a context one exists drops the
// deadline.
func dropDeadline(e *Exer) error {
	return e.Exec("SELECT 1") // want `Exec\(\) used where ExecContext exists`
}

// Minting a fresh root context on the request path severs the trace.
func mintBackground(e *Exer) error {
	return e.ExecContext(context.Background(), "SELECT 1") // want `context\.Background\(\) on the request path drops the caller's deadline and trace`
}

func mintTODO(e *Exer) error {
	return e.ExecContext(context.TODO(), "SELECT 1") // want `context\.TODO\(\) on the request path drops the caller's deadline and trace`
}

// Dial where DialContext exists is the same dropped deadline at connect
// time.
func dropDialDeadline() error {
	return cwp.Dial("backend:1025") // want `Dial\(\) used where DialContext exists`
}

// A context-free stream open where the context spelling exists drops the
// deadline for the whole result pipeline.
func dropStreamDeadline(s *Streamer) error {
	return s.ExecStream("SELECT 1") // want `ExecStream\(\) used where ExecStreamContext exists`
}

// threadedOK: the caller's context flows through.
func threadedOK(ctx context.Context, e *Exer) error {
	return e.ExecContext(ctx, "SELECT 1")
}

// streamThreadedOK: both streaming spellings with the context threaded.
func streamThreadedOK(ctx context.Context, s *Streamer, cs *CtxStreamer) error {
	if err := s.ExecStreamContext(ctx, "SELECT 1"); err != nil {
		return err
	}
	return cs.ExecStream(ctx, "SELECT 1")
}

// plainOK: no context variant exists, nothing is being dropped.
func plainOK(p *Plain) error {
	return p.Exec("SELECT 1")
}

// Wrapper's context-free Exec is an adapter shim: forwarding to the inner
// Exec under the same name, or bridging to ExecContext with a fresh root,
// is the one sanctioned place for both shapes.
type Wrapper struct{ inner *Exer }

func (w *Wrapper) Exec(q string) error {
	return w.inner.Exec(q)
}

type Bridge struct{ inner *Exer }

func (b *Bridge) Exec(q string) error {
	return b.inner.ExecContext(context.Background(), q)
}

// A closure inside a non-shim function gets no shim exemption.
func closureMint(e *Exer) func() error {
	return func() error {
		return e.ExecContext(context.Background(), "SELECT 1") // want `context\.Background\(\) on the request path drops the caller's deadline and trace`
	}
}

// suppressedOK: a directive with a recorded reason silences the finding.
func suppressedOK(e *Exer) error {
	//hyperqlint:ignore ctxexec fixture demonstrating an audited suppression
	return e.ExecContext(context.Background(), "SELECT 1")
}
