// Package leakpair exercises cross-package value pairs: streams opened from
// another package must be closed, deferred, or handed to an owner.
package leakpair

import "odbc"

func openLeaky(e *odbc.Executor, cond bool) error {
	st, err := odbc.OpenStream(e, "SELECT 1")
	if err != nil {
		return err
	}
	if cond {
		return nil // want `result stream from OpenStream is not released on this path`
	}
	return st.Close()
}

// openOwned returns the stream directly: the caller owns it.
func openOwned(e *odbc.Executor) (*odbc.ResultStream, error) {
	return odbc.OpenStream(e, "SELECT 1")
}

func openDeferred(e *odbc.Executor) error {
	st, err := odbc.OpenStream(e, "SELECT 1")
	if err != nil {
		return err
	}
	defer st.Close()
	return nil
}

// openComposite parks the stream inside a wrapper (the leasedStream shape):
// the wrapper's Close releases it later.
type lease struct {
	inner *odbc.ResultStream
}

func openComposite(e *odbc.Executor) (*lease, error) {
	st, err := odbc.OpenStream(e, "SELECT 1")
	if err != nil {
		return nil, err
	}
	return &lease{inner: st}, nil
}
