// Package context is a hermetic stub shadowing the standard library for
// analyzer fixtures.
package context

type Context interface {
	Err() error
}

func Background() Context { return nil }
func TODO() Context       { return nil }
