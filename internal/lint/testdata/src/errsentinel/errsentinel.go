// Package errsentinel exercises both rules: identity comparisons against
// foreign sentinels, and bare io.EOF escaping a clean-end-sentinel producer.
package errsentinel

import (
	"errors"
	"io"
	"sentinels"
)

var errLocal = errors.New("local")

func cmpEq(err error) bool {
	return err == io.EOF // want `== comparison against sentinel io.EOF fails once the error is wrapped; use errors.Is`
}

func cmpNeq(err error) bool {
	if err != io.EOF { // want `!= comparison against sentinel io.EOF fails once the error is wrapped`
		return false
	}
	return true
}

func cmpReversed(err error) bool {
	return io.EOF == err // want `== comparison against sentinel io.EOF fails once the error is wrapped`
}

func cmpForeign(err error) bool {
	return err == sentinels.ErrClosed // want `== comparison against sentinel sentinels.ErrClosed fails once the error is wrapped`
}

// cmpNil and cmpIs are the sanctioned shapes.
func cmpNil(err error) bool { return err == nil }

func cmpIs(err error) bool { return errors.Is(err, io.EOF) }

// cmpOwn compares a sentinel the package itself declares: the declaring
// package controls both ends, so identity is fine.
func cmpOwn(err error) bool { return err == errLocal }

func switchSentinel(err error) int {
	switch err {
	case nil:
		return 0
	case io.EOF: // want `switch case matches sentinel io.EOF by identity and fails once the error is wrapped`
		return 1
	}
	return 2
}
