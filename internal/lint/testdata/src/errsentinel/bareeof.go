package errsentinel

import (
	"errors"
	"io"
	"wire"
)

type msg struct {
	err error
}

func deliver(m msg) {}

// readLoopLeaky mirrors the pre-PR 7 reader: the transport error escapes
// into the same struct field the clean end uses for bare io.EOF, so a dead
// peer reads as a successful empty result.
func readLoopLeaky(done bool) {
	for {
		_, _, err := wire.ReadMessage()
		if err != nil {
			deliver(msg{err: err}) // want `error from ReadMessage may be bare io.EOF here`
			return
		}
		if done {
			deliver(msg{err: io.EOF})
			return
		}
	}
}

// readLoopFixed is the post-PR 7 shape: the error is classified and
// rewritten before it escapes.
func readLoopFixed(done bool) {
	for {
		_, _, err := wire.ReadMessage()
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			deliver(msg{err: err})
			return
		}
		if done {
			deliver(msg{err: io.EOF})
			return
		}
	}
}

// readReturnLeaky escapes via return rather than a struct store.
func readReturnLeaky(ch chan error) error {
	_, _, err := wire.ReadMessage()
	if err != nil {
		return err // want `error from ReadMessage may be bare io.EOF here`
	}
	ch <- io.EOF
	return nil
}

// readNoSentinel never uses bare io.EOF as a value, so its raw read errors
// propagate freely — the caller can still tell a clean end apart.
func readNoSentinel() error {
	_, _, err := wire.ReadMessage()
	if err != nil {
		return err
	}
	return nil
}
