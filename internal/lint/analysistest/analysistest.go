// Package analysistest checks analyzers against annotated fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// in-tree loader. A fixture line documents its expected diagnostics in a
// trailing comment:
//
//	ex.Exec("SELECT 1") // want `Exec\(\) used where ExecContext exists`
//
// Each backquoted token is a regexp that must match exactly one diagnostic
// reported on that line; diagnostics without a matching annotation and
// annotations without a matching diagnostic both fail the test.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"hyperq/internal/lint/analysis"
	"hyperq/internal/lint/loader"
)

// Run loads the fixture packages (paths relative to fixtureRoot, which
// shadows all imports, standard library included) and verifies the
// analyzer's diagnostics against the packages' // want annotations.
func Run(t *testing.T, fixtureRoot string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := &loader.Loader{FixtureRoot: fixtureRoot}
	pkgs, err := l.LoadFixture(paths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", paths, err)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		checkWants(t, pkg, diags)
	}
}

// expectation is one `// want` regexp anchored to a fixture line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantToken = regexp.MustCompile("`([^`]*)`")

func checkWants(t *testing.T, pkg *loader.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Syntax() {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				toks := wantToken.FindAllStringSubmatch(rest, -1)
				if len(toks) == 0 {
					t.Errorf("%s:%d: malformed want comment (no backquoted pattern): %s", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, tok := range toks {
					re, err := regexp.Compile(tok[1])
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, tok[1], err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	for _, d := range diags {
		if w := takeWant(wants, d); w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// takeWant claims the first unmatched expectation on the diagnostic's line
// whose pattern matches its message.
func takeWant(wants []*expectation, d analysis.Diagnostic) *expectation {
	for _, w := range wants {
		if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return w
		}
	}
	return nil
}
