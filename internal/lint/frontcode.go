package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strconv"

	"hyperq/internal/lint/analysis"
	"hyperq/internal/wire/tdp"
)

// FrontCode reports bare integer literals for the frontend failure and
// logon codes that clients pattern-match on.
//
// Teradata tools key retry/fallback behavior off specific failure codes:
// write-state-unknown (never auto-retry), backend-unavailable,
// gateway-saturated, and the two logon rejections. Hyper-Q must emit them
// bit-identically forever, so they live in exactly one place — the
// registry in internal/wire/tdp/codes.go — and everything else refers to
// the named constants. A bare literal elsewhere is a drift hazard: it
// compiles fine today and silently diverges the first time the registry
// value is corrected or documented.
var FrontCode = &analysis.Analyzer{
	Name: "frontcode",
	Doc:  "checks that frontend failure/logon codes come from the tdp codes registry, not bare int literals",
	Run:  runFrontCode,
}

// registryCodes maps each enforced literal to its registry constant. The
// keys are derived from the constants themselves, so the analyzer can
// never drift from the registry it enforces.
var registryCodes = map[string]string{
	strconv.Itoa(tdp.CodeWriteStateUnknown):  "CodeWriteStateUnknown",
	strconv.Itoa(tdp.CodeBackendUnavailable): "CodeBackendUnavailable",
	strconv.Itoa(tdp.CodeGatewaySaturated):   "CodeGatewaySaturated",
	strconv.Itoa(tdp.CodeLogonDenied):        "CodeLogonDenied",
	strconv.Itoa(tdp.CodeLogonInvalid):       "CodeLogonInvalid",
	strconv.Itoa(tdp.CodeClientTooSlow):      "CodeClientTooSlow",
	strconv.Itoa(tdp.CodeResultInterrupted):  "CodeResultInterrupted",
}

func runFrontCode(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.INT {
				return true
			}
			constName, enforced := registryCodes[lit.Value]
			if !enforced || inCodesRegistry(pass, lit.Pos()) {
				return true
			}
			pass.Reportf(lit.Pos(),
				"frontend code %s must be the registry constant tdp.%s, not a bare literal", lit.Value, constName)
			return true
		})
	}
	return nil
}

// inCodesRegistry reports whether pos is inside the one file allowed to
// define the enforced codes: codes.go of the tdp wire package.
func inCodesRegistry(pass *analysis.Pass, pos token.Pos) bool {
	if pass.Pkg == nil || pass.Pkg.Name() != "tdp" {
		return false
	}
	return filepath.Base(pass.Fset.Position(pos).Filename) == "codes.go"
}
