package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses a function body and builds its CFG. src is the body of
// `func f() { ... }` (or a full signature when ret is given).
func buildCFG(t *testing.T, fn string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package x\n"+fn, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decl := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return New(decl.Body), fset
}

// witnessLines runs LeakWitnesses from the statement containing startMark
// (a substring of its source line) with satisfaction at nodes containing
// okMark, returning the 1-based source lines of the witnesses.
func witnessLines(t *testing.T, src, startMark, okMark string) []int {
	t.Helper()
	g, fset := buildCFG(t, src)
	var start ast.Node
	lineOf := func(n ast.Node) string {
		return nodeText(src, fset, n)
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if start == nil && strings.Contains(lineOf(n), startMark) {
				start = n
			}
		}
	}
	if start == nil {
		t.Fatalf("start mark %q not found in CFG", startMark)
	}
	ps := g.LeakWitnesses(start, func(n ast.Node) bool {
		return strings.Contains(lineOf(n), okMark)
	})
	var lines []int
	for _, p := range ps {
		lines = append(lines, fset.Position(p).Line)
	}
	return lines
}

func nodeText(src string, fset *token.FileSet, n ast.Node) string {
	// Reconstruct node text from offsets into the synthetic file.
	full := "package x\n" + src
	s := fset.Position(n.Pos()).Offset
	e := fset.Position(n.End()).Offset
	if s < 0 || e > len(full) || s >= e {
		return ""
	}
	return full[s:e]
}

func TestCFGLinear(t *testing.T) {
	g, _ := buildCFG(t, `func f() { a(); b(); c() }`)
	if !g.FallsOff() {
		t.Fatal("linear body must fall off the end")
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	g, _ := buildCFG(t, `func f() int { a(); return 1 }`)
	if g.FallsOff() {
		t.Fatal("explicit return: exit block must be unreachable")
	}
	var retBlocks int
	for _, b := range g.Blocks {
		if b.Return != nil {
			retBlocks++
			if len(b.Succs) != 0 {
				t.Fatalf("return block has %d successors", len(b.Succs))
			}
		}
	}
	if retBlocks != 1 {
		t.Fatalf("return blocks = %d, want 1", retBlocks)
	}
}

func TestCFGIfJoins(t *testing.T) {
	// acquire on line 2; release only in the else branch: the then-branch
	// return (line 4) leaks.
	src := `func f(c bool) {
	acq()
	if c {
		return
	}
	rel()
}`
	lines := witnessLines(t, src, "acq", "rel")
	if len(lines) != 1 || lines[0] != 5 {
		t.Fatalf("witnesses = %v, want [5]", lines)
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	// The release inside the loop body covers the path that enters the
	// loop, but the zero-iteration path falls off the end unsatisfied.
	src := `func f(n int) {
	acq()
	for i := 0; i < n; i++ {
		rel()
	}
}`
	lines := witnessLines(t, src, "acq", "rel")
	if len(lines) != 1 {
		t.Fatalf("witnesses = %v, want exactly the fall-off end", lines)
	}
}

func TestCFGContinueSkipsRelease(t *testing.T) {
	src := `func f(ns []int) {
	for _, n := range ns {
		acq()
		if n == 0 {
			continue
		}
		rel()
	}
}`
	// continue loops back to the range head; from there the range can
	// exhaust and fall off the end without ever hitting rel().
	lines := witnessLines(t, src, "acq", "rel")
	if len(lines) != 1 {
		t.Fatalf("witnesses = %v, want the fall-off end via continue", lines)
	}
}

func TestCFGSwitchAllCases(t *testing.T) {
	src := `func f(x int) {
	acq()
	switch x {
	case 1:
		rel()
	case 2:
		rel()
	default:
		rel()
	}
}`
	if lines := witnessLines(t, src, "acq", "rel"); len(lines) != 0 {
		t.Fatalf("witnesses = %v, want none (all cases release)", lines)
	}
	// Dropping the default leaves the no-match path unsatisfied.
	src2 := `func f(x int) {
	acq()
	switch x {
	case 1:
		rel()
	}
}`
	if lines := witnessLines(t, src2, "acq", "rel"); len(lines) != 1 {
		t.Fatalf("witnesses = %v, want the no-match fall-off", lines)
	}
}

func TestCFGSelect(t *testing.T) {
	src := `func f(a, b chan int) {
	acq()
	select {
	case <-a:
		rel()
	case <-b:
		return
	}
}`
	// Line numbers count the synthetic "package x" line: the bare return in
	// the second comm clause sits on file line 8.
	lines := witnessLines(t, src, "acq", "rel")
	if len(lines) != 1 || lines[0] != 8 {
		t.Fatalf("witnesses = %v, want [8] (the un-released comm return)", lines)
	}
}

func TestCFGGotoAndLabels(t *testing.T) {
	src := `func f(c bool) {
	acq()
	if c {
		goto done
	}
	rel()
done:
	use()
}`
	// goto done skips rel; the labeled tail falls off the end.
	lines := witnessLines(t, src, "acq", "rel")
	if len(lines) != 1 {
		t.Fatalf("witnesses = %v, want fall-off via goto", lines)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	src := `func f(xs []int) {
outer:
	for _, x := range xs {
		acq()
		for {
			if x == 0 {
				break outer
			}
			rel()
			break
		}
		use()
	}
}`
	lines := witnessLines(t, src, "acq", "rel")
	if len(lines) != 1 {
		t.Fatalf("witnesses = %v, want fall-off via labeled break", lines)
	}
}

func TestCFGPanicIsNotAWitness(t *testing.T) {
	src := `func f(c bool) {
	acq()
	if c {
		panic("boom")
	}
	rel()
}`
	if lines := witnessLines(t, src, "acq", "rel"); len(lines) != 0 {
		t.Fatalf("witnesses = %v, want none (panic path exempt)", lines)
	}
}

func TestCFGDefersCollected(t *testing.T) {
	g, _ := buildCFG(t, `func f() {
	defer a()
	if c() {
		defer b()
	}
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("defers = %d, want 2", len(g.Defers))
	}
}

func TestCFGDeadCodePruned(t *testing.T) {
	g, _ := buildCFG(t, `func f() int {
	return 1
	a()
}`)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ExprStmt); ok {
				t.Fatal("statically dead statement survived pruning")
			}
		}
	}
	_ = g
}

func TestCFGFallthrough(t *testing.T) {
	src := `func f(x int) {
	acq()
	switch x {
	case 1:
		fallthrough
	case 2:
		rel()
	}
}`
	// case 1 falls through into case 2's release; only the no-match path
	// leaks.
	lines := witnessLines(t, src, "acq", "rel")
	if len(lines) != 1 {
		t.Fatalf("witnesses = %v, want only the no-match fall-off", lines)
	}
}
