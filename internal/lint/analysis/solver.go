package analysis

// Data-flow solving over a CFG: generic forward/backward worklist solvers
// for set facts (union join for may-analyses, intersection join for
// must-analyses), and LeakWitnesses, the
// "must-happen-on-all-paths-to-return" facility the resource-lifetime
// analyzers (spanend, leakpair, errsentinel) are built on.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Fact is a set of type-checker objects — the fact domain shared by the
// suite's may-analyses (tainted variables, published objects, live
// resources). The zero value is the empty set.
type Fact map[types.Object]struct{}

// Has reports membership.
func (f Fact) Has(o types.Object) bool {
	_, ok := f[o]
	return ok
}

// Clone copies the set.
func (f Fact) Clone() Fact {
	out := make(Fact, len(f))
	for o := range f {
		out[o] = struct{}{}
	}
	return out
}

// union merges src into f, reporting whether f grew.
func (f Fact) union(src Fact) bool {
	grew := false
	for o := range src {
		if _, ok := f[o]; !ok {
			f[o] = struct{}{}
			grew = true
		}
	}
	return grew
}

// intersect removes members of f absent from src, reporting whether f shrank.
func (f Fact) intersect(src Fact) bool {
	shrank := false
	for o := range f {
		if !src.Has(o) {
			delete(f, o)
			shrank = true
		}
	}
	return shrank
}

// Equal reports set equality.
func (f Fact) Equal(g Fact) bool {
	if len(f) != len(g) {
		return false
	}
	for o := range f {
		if !g.Has(o) {
			return false
		}
	}
	return true
}

// Transfer maps one node's effect on a fact set. It must not mutate in;
// return in unchanged when the node has no effect.
type Transfer func(n ast.Node, in Fact) Fact

// Forward runs a forward may-analysis (union join) to fixpoint and returns
// each block's IN set. entry seeds the entry block. To recover per-node
// facts inside a block, re-apply the transfer across the block's Nodes
// starting from its IN set.
func (g *CFG) Forward(entry Fact, tr Transfer) map[*Block]Fact {
	in := make(map[*Block]Fact, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = Fact{}
	}
	in[g.Entry] = entry.Clone()
	// Worklist seeded in block order (≈ reverse post-order for the
	// builder's construction sequence), drained to fixpoint.
	work := append([]*Block(nil), g.Blocks...)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		out := in[b]
		for _, n := range b.Nodes {
			out = tr(n, out)
		}
		for _, s := range b.Succs {
			if in[s].union(out) && !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// ForwardMust runs a forward must-analysis (intersection join) to fixpoint
// and returns each block's IN set: a fact holds at a block only when it
// holds on every path reaching it. Unreached blocks start at top (all
// facts), represented by absence from the map until a predecessor first
// propagates into them; callers should treat a missing IN set as "block
// unreachable from entry" (the builder prunes those anyway).
//
// This is the join freshness-style properties need: "no other goroutine can
// see this value" must survive every path into a join, whereas the union
// join of Forward answers "possible on some path".
func (g *CFG) ForwardMust(entry Fact, tr Transfer) map[*Block]Fact {
	in := make(map[*Block]Fact, len(g.Blocks))
	in[g.Entry] = entry.Clone()
	work := []*Block{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		out := in[b]
		for _, n := range b.Nodes {
			out = tr(n, out)
		}
		for _, s := range b.Succs {
			cur, seen := in[s]
			changed := false
			if !seen {
				in[s] = out.Clone()
				changed = true
			} else {
				changed = cur.intersect(out)
			}
			if changed && !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// Backward runs a backward may-analysis (union join) to fixpoint and
// returns each block's OUT set (facts holding after the block, flowing
// backward from its successors). exit seeds blocks with no successors.
func (g *CFG) Backward(exit Fact, tr Transfer) map[*Block]Fact {
	out := make(map[*Block]Fact, len(g.Blocks))
	for _, b := range g.Blocks {
		if len(b.Succs) == 0 {
			out[b] = exit.Clone()
		} else {
			out[b] = Fact{}
		}
	}
	work := append([]*Block(nil), g.Blocks...)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		// Apply the block's nodes in reverse.
		res := out[b]
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			res = tr(b.Nodes[i], res)
		}
		for _, p := range b.Preds {
			if out[p].union(res) && !queued[p.Index] {
				queued[p.Index] = true
				work = append(work, p)
			}
		}
	}
	return out
}

// LeakWitnesses explores every path from just after `start` to a function
// exit and collects the exits reachable without passing a node for which
// ok returns true: the positions where the obligation incurred at start is
// provably unmet on some execution. Witnesses are the offending return
// statements, or the body's closing brace when execution can fall off the
// end. Paths through panic (blocks with no successors and no return) incur
// no witness — deferred cleanup is the panic path's concern and is checked
// separately by the analyzers.
//
// The exploration is a DFS with per-block memoization, so it is linear in
// the CFG size; a cycle revisiting a block that was already explored
// unsatisfied adds nothing new.
func (g *CFG) LeakWitnesses(start ast.Node, ok func(ast.Node) bool) []token.Pos {
	if b, i := g.FindNode(start); b != nil {
		return g.LeakWitnessesFrom(b, i+1, ok)
	}
	return nil
}

// LeakWitnessesFrom is LeakWitnesses anchored explicitly at node index i of
// block b (i may equal len(b.Nodes) to start at the block's out-edges).
// Analyzers use it when the obligation begins at a branch target rather
// than after a statement — e.g. a boolean acquire consumed by an if
// condition incurs its obligation only on the success branch.
func (g *CFG) LeakWitnessesFrom(b *Block, i int, ok func(ast.Node) bool) []token.Pos {
	var witnesses []token.Pos
	seen := make(map[*Block]bool)
	reported := make(map[token.Pos]bool)

	report := func(p token.Pos) {
		if !reported[p] {
			reported[p] = true
			witnesses = append(witnesses, p)
		}
	}

	// scan walks blk.Nodes from index j; returns true when the path is
	// satisfied inside the block.
	var walk func(blk *Block, j int)
	scan := func(blk *Block, j int) bool {
		for ; j < len(blk.Nodes); j++ {
			if ok(blk.Nodes[j]) {
				return true
			}
		}
		return false
	}
	walk = func(blk *Block, j int) {
		if scan(blk, j) {
			return
		}
		if blk.Return != nil {
			report(blk.Return.Pos())
			return
		}
		if blk == g.Exit {
			report(blk.EndPos)
			return
		}
		for _, s := range blk.Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			walk(s, 0)
		}
	}
	walk(b, i)
	return witnesses
}

// ReachesWithout reports whether some execution path from just after start
// reaches target without first passing a node for which ok returns true.
// It answers "can this value arrive here unclassified/unreleased?" — the
// escape-site dual of LeakWitnesses' exit-site question. When start or
// target is not in the graph it returns false (no path exists).
func (g *CFG) ReachesWithout(start, target ast.Node, ok func(ast.Node) bool) bool {
	sb, si := g.FindNode(start)
	tb, ti := g.FindNode(target)
	if sb == nil || tb == nil {
		return false
	}
	seen := make(map[*Block]bool)
	// scan walks nodes [from, to) of blk; returns (hit target, blocked by ok).
	scan := func(blk *Block, from, to int) (bool, bool) {
		for j := from; j < to && j < len(blk.Nodes); j++ {
			if blk == tb && j == ti {
				return true, false
			}
			if ok(blk.Nodes[j]) {
				return false, true
			}
		}
		return false, false
	}
	var walk func(blk *Block, j int) bool
	walk = func(blk *Block, j int) bool {
		hit, blocked := scan(blk, j, len(blk.Nodes))
		if hit {
			return true
		}
		if blocked {
			return false
		}
		for _, s := range blk.Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	// The target node itself may satisfy ok (a classification at the escape
	// site); check strictly-before positions only, which scan already does by
	// testing the target index first.
	return walk(sb, si+1)
}

// FindNode locates the block and node index holding n — directly or nested
// inside a statement node (start anchors are often expressions).
func (g *CFG) FindNode(n ast.Node) (*Block, int) {
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			if node == n || containsNode(node, n) {
				return b, i
			}
		}
	}
	return nil, -1
}

// containsNode reports whether outer's subtree contains target (start nodes
// are often expressions nested inside a statement node).
func containsNode(outer, target ast.Node) bool {
	found := false
	ast.Inspect(outer, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == target {
			found = true
			return false
		}
		return true
	})
	return found
}
