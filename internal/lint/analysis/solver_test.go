package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkFunc type-checks src (a full file) and returns the named function's
// body CFG plus the type info, for solver tests that need real objects.
func checkFunc(t *testing.T, src, name string) (*CFG, *types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("x", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body), info, fd
		}
	}
	t.Fatalf("function %q not found", name)
	return nil, nil, nil
}

// objByName resolves a local object by identifier name within the checked
// function.
func objByName(t *testing.T, info *types.Info, fd *ast.FuncDecl, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := info.Defs[id]; o != nil {
				obj = o
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("object %q not found", name)
	}
	return obj
}

const taintSrc = `package x

func source() string { return "raw" }
func clean(s string) string { return "ok" }

func f(c bool) string {
	a := source()
	b := "lit"
	if c {
		b = a
	} else {
		b = clean(a)
	}
	return b
}
`

// taintTransfer propagates taint through assignments: lhs tainted iff rhs
// mentions a tainted object or calls source(); calls to clean() sanitize.
func taintTransfer(info *types.Info) Transfer {
	tainted := func(e ast.Expr, in Fact) bool {
		bad := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					if id.Name == "clean" {
						return false // sanitizer: do not descend
					}
					if id.Name == "source" {
						bad = true
					}
				}
			case *ast.Ident:
				if o := info.Uses[n]; o != nil && in.Has(o) {
					bad = true
				}
			}
			return true
		})
		return bad
	}
	return func(n ast.Node, in Fact) Fact {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return in
		}
		out := in
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			o := info.Defs[id]
			if o == nil {
				o = info.Uses[id]
			}
			if o == nil {
				continue
			}
			if tainted(as.Rhs[i], in) {
				out = out.Clone()
				out[o] = struct{}{}
			} else if out.Has(o) {
				out = out.Clone()
				delete(out, o)
			}
		}
		return out
	}
}

func TestForwardTaintJoinsBranches(t *testing.T) {
	g, info, fd := checkFunc(t, taintSrc, "f")
	bObj := objByName(t, info, fd, "b")
	in := g.Forward(Fact{}, taintTransfer(info))
	// At the return block, b may be tainted (then-branch assigned b = a):
	// the may-union over both branches must include b.
	var retIn Fact
	for _, blk := range g.Blocks {
		if blk.Return != nil {
			retIn = in[blk]
		}
	}
	if retIn == nil {
		t.Fatal("no return block")
	}
	if !retIn.Has(bObj) {
		t.Fatal("forward may-analysis lost the tainted branch at the join")
	}
}

func TestForwardSanitizerKills(t *testing.T) {
	// With the tainting branch removed, b must be clean at the return.
	src := strings.Replace(taintSrc, "b = a\n", "b = clean(a)\n", 1)
	g, info, fd := checkFunc(t, src, "f")
	bObj := objByName(t, info, fd, "b")
	in := g.Forward(Fact{}, taintTransfer(info))
	for _, blk := range g.Blocks {
		if blk.Return != nil && in[blk].Has(bObj) {
			t.Fatal("sanitized value still tainted at return")
		}
	}
}

func TestBackwardLiveness(t *testing.T) {
	const src = `package x
func g(c bool) int {
	x := 1
	y := 2
	if c {
		return x
	}
	return y
}
`
	g, info, fd := checkFunc(t, src, "g")
	xObj := objByName(t, info, fd, "x")
	yObj := objByName(t, info, fd, "y")
	// Backward liveness: a use makes the object live; a (re)definition
	// kills it.
	tr := func(n ast.Node, out Fact) Fact {
		res := out
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if id, ok := e.(*ast.Ident); ok {
					if o := info.Uses[id]; o != nil && !res.Has(o) {
						res = res.Clone()
						res[o] = struct{}{}
					}
				}
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if o := info.Defs[id]; o != nil && res.Has(o) {
						res = res.Clone()
						delete(res, o)
					}
				}
			}
		}
		return res
	}
	out := g.Backward(Fact{}, tr)
	// Backward OUT sets are the facts at each block's end. The entry block
	// ends at the if dispatch, where both x (live into the then-return) and
	// y (live into the else-return) must be live — the union join must have
	// propagated both uses back across the branch.
	entryOut := out[g.Entry]
	if !entryOut.Has(xObj) || !entryOut.Has(yObj) {
		t.Fatalf("liveness missing at the branch point: %v", entryOut)
	}
	// Return blocks end after their use, so nothing is live there.
	for _, blk := range g.Blocks {
		if blk.Return != nil && (out[blk].Has(xObj) || out[blk].Has(yObj)) {
			t.Fatalf("liveness past the final use: %v", out[blk])
		}
	}
}

func TestFactOps(t *testing.T) {
	a := Fact{}
	if a.Has(nil) {
		t.Fatal("empty fact has nil")
	}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
}
