package analysis

// Control-flow graphs for analyzer bodies. New builds a CFG from one
// function body (nested function literals are excluded — package lint
// analyzes each literal as a function of its own), mirroring the shape of
// golang.org/x/tools/go/cfg on top of the stdlib only: basic blocks of
// statements/expressions in execution order, with edges for if/for/range/
// switch/type-switch/select, labeled break/continue, goto, fallthrough,
// return, and panic. Defer statements are collected on the side — a
// deferred call runs on every exit path, so path analyses treat the defer
// set as a property of the whole function rather than a block.
//
// The graph deliberately keeps two exit shapes distinct:
//
//   - a block whose Return field is set ends at an explicit return and has
//     no successors;
//   - the synthetic Exit block (EndPos = the body's closing brace) is the
//     fall-off-the-end exit; only blocks that can complete normally edge
//     into it.
//
// Analyses that must distinguish "leaks at this return" from "leaks at the
// end of the function" (spanend, leakpair, errsentinel) rely on that split.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: straight-line nodes with no internal control
// transfer. Nodes holds statements and the control expressions evaluated in
// the block (an if condition, a switch tag, range operands), in execution
// order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Return is the return statement terminating the block, when it ends at
	// one. Return blocks have no successors.
	Return *ast.ReturnStmt
	// EndPos is a stable position for "execution leaves this block here"
	// diagnostics; for the synthetic Exit block it is the body's closing
	// brace.
	EndPos token.Pos

	// live marks blocks reachable from the entry; the builder prunes
	// unreachable blocks (e.g. code after an unconditional return) so path
	// analyses never walk dead code.
	live bool
}

// CFG is a function body's control-flow graph.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the synthetic fall-off-the-end block. It may be unreachable
	// (no Preds) when every path returns explicitly.
	Exit *Block
	// Defers are the function's defer statements in source order, nested
	// blocks included (but not nested function literals).
	Defers []*ast.DeferStmt
}

// builder carries the construction state.
type builder struct {
	g       *CFG
	current *Block
	// frames is the enclosing breakable/continuable construct stack.
	frames []frame
	labels map[string]*labelInfo
}

// frame is one enclosing loop/switch/select for break/continue resolution.
type frame struct {
	label     string // enclosing label, "" when unlabeled
	breakTo   *Block
	contTo    *Block // nil for switch/select (continue skips them)
	isLoop    bool
	nextClause *Block // fallthrough target inside a switch
}

// labelInfo resolves goto targets; a label's block is created on first
// reference (forward gotos) or at its definition.
type labelInfo struct {
	block *Block
}

// New builds the CFG for one function body.
func New(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &builder{g: g, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock()
	b.current = g.Entry
	g.Exit = b.newBlock()
	g.Exit.EndPos = body.Rbrace
	b.stmtList(body.List)
	// Fall off the end of the body.
	b.jump(g.Exit)
	g.prune()
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add appends a node to the current block (no-op once the block is
// terminated — statically dead code after return/branch).
func (b *builder) add(n ast.Node) {
	if b.current != nil && n != nil {
		b.current.Nodes = append(b.current.Nodes, n)
	}
}

// edge links from → to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump terminates the current block with an edge to target and leaves the
// builder with no current block.
func (b *builder) jump(target *Block) {
	if b.current != nil && target != nil {
		edge(b.current, target)
	}
	b.current = nil
}

// startBlock seals the current block (falling through into blk when still
// open) and makes blk current.
func (b *builder) startBlock(blk *Block) {
	if b.current != nil {
		edge(b.current, blk)
	}
	b.current = blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	if b.current == nil {
		// Dead code after an unconditional transfer — unless it is labeled
		// (a goto target can resurrect it) or declares labels inside.
		if !containsLabel(s) {
			return
		}
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.current = nil // panic: no normal successor
		}

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ReturnStmt:
		b.add(s)
		if b.current != nil {
			b.current.Return = s
			b.current.EndPos = s.Pos()
			b.current = nil
		}

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.LabeledStmt:
		b.labeled(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	default:
		// Assignments, declarations, sends, inc/dec, go statements, empty
		// statements: straight-line nodes.
		b.add(s)
	}
}

// containsLabel reports whether s is (or contains) a labeled statement — a
// potential goto target that keeps syntactically dead code reachable.
func containsLabel(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.LabeledStmt); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) labelInfoFor(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *builder) labeled(s *ast.LabeledStmt) {
	li := b.labelInfoFor(s.Label.Name)
	b.startBlock(li.block)
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	if b.current == nil {
		return
	}
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.jump(f.breakTo)
				return
			}
		}
		b.current = nil // malformed; drop the edge
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.isLoop && (label == "" || f.label == label) {
				b.jump(f.contTo)
				return
			}
		}
		b.current = nil
	case token.GOTO:
		b.jump(b.labelInfoFor(label).block)
	case token.FALLTHROUGH:
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].nextClause != nil {
				b.jump(b.frames[i].nextClause)
				return
			}
		}
		b.current = nil
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	condBlock := b.current
	if condBlock == nil {
		return
	}
	join := b.newBlock()

	then := b.newBlock()
	edge(condBlock, then)
	b.current = then
	b.stmtList(s.Body.List)
	b.jump(join)

	if s.Else != nil {
		els := b.newBlock()
		edge(condBlock, els)
		b.current = els
		b.stmt(s.Else)
		b.jump(join)
	} else {
		edge(condBlock, join)
	}
	b.current = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	exit := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	body := b.newBlock()
	edge(head, body)
	if s.Cond != nil {
		edge(head, exit) // condition false
	}
	b.frames = append(b.frames, frame{label: label, breakTo: exit, contTo: post, isLoop: true})
	b.current = body
	b.stmtList(s.Body.List)
	b.jump(post)
	b.frames = b.frames[:len(b.frames)-1]
	if s.Post != nil {
		b.current = post
		b.add(s.Post)
		b.jump(head)
	}
	b.current = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	head := b.newBlock()
	b.startBlock(head)
	// The iteration variables are (re)bound at the head each trip.
	if s.Key != nil || s.Value != nil {
		b.add(s)
	}
	exit := b.newBlock()
	body := b.newBlock()
	edge(head, body)
	edge(head, exit) // range exhausted
	b.frames = append(b.frames, frame{label: label, breakTo: exit, contTo: head, isLoop: true})
	b.current = body
	b.stmtList(s.Body.List)
	b.jump(head)
	b.frames = b.frames[:len(b.frames)-1]
	b.current = exit
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body.List, label, true)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body.List, label, false)
}

// caseClauses wires switch/type-switch clause bodies. Every clause is a
// successor of the dispatch block; a missing default adds a direct edge to
// the join. allowFallthrough enables fallthrough edges (value switches
// only).
func (b *builder) caseClauses(clauses []ast.Stmt, label string, allowFallthrough bool) {
	dispatch := b.current
	if dispatch == nil {
		return
	}
	join := b.newBlock()
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		edge(dispatch, bodies[i])
		b.current = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		var next *Block
		if allowFallthrough && i+1 < len(clauses) {
			next = bodies[i+1]
		}
		b.frames = append(b.frames, frame{label: label, breakTo: join, nextClause: next})
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(join)
	}
	if !hasDefault {
		edge(dispatch, join)
	}
	b.current = join
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	dispatch := b.current
	if dispatch == nil {
		return
	}
	join := b.newBlock()
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock()
		edge(dispatch, body)
		b.current = body
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.frames = append(b.frames, frame{label: label, breakTo: join})
		b.stmtList(cc.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(join)
	}
	// A select always takes one of its clauses; with no clauses it blocks
	// forever, so the join is unreachable and pruning removes it.
	b.current = join
}

// prune drops blocks unreachable from the entry (dead code, unreferenced
// labels, the join of an empty select), keeping analyses off paths that can
// never execute. Edges into pruned blocks are removed from Preds lists.
func (g *CFG) prune() {
	var mark func(*Block)
	mark = func(b *Block) {
		if b.live {
			return
		}
		b.live = true
		for _, s := range b.Succs {
			mark(s)
		}
	}
	mark(g.Entry)
	kept := g.Blocks[:0]
	for _, b := range g.Blocks {
		if !b.live {
			continue
		}
		preds := b.Preds[:0]
		for _, p := range b.Preds {
			if p.live {
				preds = append(preds, p)
			}
		}
		b.Preds = preds
		b.Index = len(kept)
		kept = append(kept, b)
	}
	g.Blocks = kept
}

// FallsOff reports whether the synthetic Exit block is reachable (some
// path falls off the end of the function).
func (g *CFG) FallsOff() bool { return g.Exit.live }
