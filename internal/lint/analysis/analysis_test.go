package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// litAnalyzer reports every integer literal — a minimal analyzer to drive
// the directive-suppression machinery.
var litAnalyzer = &Analyzer{
	Name: "lit",
	Doc:  "reports every int literal",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if bl, ok := n.(*ast.BasicLit); ok && bl.Kind == token.INT {
					pass.Reportf(bl.Pos(), "literal %s", bl.Value)
				}
				return true
			})
		}
		return nil
	},
}

// srcUnit type-checks one source string as a dependency-free package.
func srcUnit(t *testing.T, src string) Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "u.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &plainUnit{files: []*ast.File{f}, pkg: pkg, info: info, fset: fset}
}

type plainUnit struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	fset  *token.FileSet
}

func (u *plainUnit) Syntax() []*ast.File      { return u.files }
func (u *plainUnit) TypesPkg() *types.Package { return u.pkg }
func (u *plainUnit) TypesInfo() *types.Info   { return u.info }
func (u *plainUnit) Path() string             { return "p" }
func (u *plainUnit) FileSet() *token.FileSet  { return u.fset }

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer.Name+": "+d.Message)
	}
	return out
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	u := srcUnit(t, `package p
func f() int {
	return 1 //hyperqlint:ignore lit tolerated for the test
}
func g() int {
	//hyperqlint:ignore lit tolerated on the line above
	return 2
}
func h() int {
	return 3
}
`)
	diags, err := Run(u, []*Analyzer{litAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	got := messages(diags)
	if len(got) != 1 || !strings.Contains(got[0], "literal 3") {
		t.Fatalf("diagnostics = %v, want only literal 3", got)
	}
}

func TestIgnoreDirectiveNeedsReason(t *testing.T) {
	u := srcUnit(t, `package p
func f() int {
	return 1 //hyperqlint:ignore lit
}
`)
	diags, err := Run(u, []*Analyzer{litAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	got := messages(diags)
	// The malformed directive is itself reported AND fails to suppress.
	if len(got) != 2 {
		t.Fatalf("diagnostics = %v, want directive complaint + surviving literal", got)
	}
	var sawDirective, sawLiteral bool
	for _, m := range got {
		if strings.HasPrefix(m, "directive:") {
			sawDirective = true
		}
		if strings.Contains(m, "literal 1") {
			sawLiteral = true
		}
	}
	if !sawDirective || !sawLiteral {
		t.Fatalf("diagnostics = %v", got)
	}
}

func TestIgnoreDirectiveAnalyzerList(t *testing.T) {
	u := srcUnit(t, `package p
func f() int {
	return 1 //hyperqlint:ignore other,lit multi-analyzer suppression
}
func g() int {
	return 2 //hyperqlint:ignore other wrong analyzer, does not suppress lit
}
`)
	diags, err := Run(u, []*Analyzer{litAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	got := messages(diags)
	if len(got) != 1 || !strings.Contains(got[0], "literal 2") {
		t.Fatalf("diagnostics = %v, want only literal 2", got)
	}
}

func TestParseIgnore(t *testing.T) {
	names, reason, ok := parseIgnore("//hyperqlint:ignore spanend,lockio trust me")
	if !ok || len(names) != 2 || names[0] != "spanend" || names[1] != "lockio" || reason != "trust me" {
		t.Fatalf("parseIgnore = %v %q %v", names, reason, ok)
	}
	if _, _, ok := parseIgnore("// a normal comment"); ok {
		t.Fatal("parseIgnore matched a normal comment")
	}
	names, reason, ok = parseIgnore("//hyperqlint:ignore")
	if !ok || len(names) != 1 || names[0] != "all" || reason != "" {
		t.Fatalf("parseIgnore bare = %v %q %v", names, reason, ok)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	u := srcUnit(t, `package p
func f() (int, int) {
	return 2, 1
}
`)
	diags, err := Run(u, []*Analyzer{litAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Position.Column > diags[1].Position.Column {
		t.Fatalf("diagnostics not sorted by position: %v", messages(diags))
	}
}
