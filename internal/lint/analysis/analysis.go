// Package analysis is the minimal in-tree substitute for
// golang.org/x/tools/go/analysis: just enough framework to write
// project-specific analyzers (see package lint) and drive them from tests
// and cmd/hyperqlint. The repo vendors no third-party code, so the analyzer
// suite is built directly on go/ast and go/types.
//
// The shapes deliberately mirror the x/tools API (Analyzer, Pass,
// Diagnostic, Pass.Reportf) so the analyzers could be ported to a stock
// multichecker with mechanical edits if the dependency ever becomes
// available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hyperqlint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant the analyzer
	// encodes and why violating it is a bug.
	Doc string
	// Run reports diagnostics for one package unit via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package unit through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the unit's syntax trees (including _test.go files when the
	// unit is a test-augmented package).
	Files []*ast.File
	// Pkg and Info are the unit's type information.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the unit's import path; test-augmented units keep the
	// package's own path, external test units carry the "_test" suffix.
	PkgPath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer *Analyzer
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer.Name)
}

// Unit is the package shape the driver consumes; satisfied by
// loader.Package without importing it (no dependency cycle).
type Unit interface {
	Syntax() []*ast.File
	TypesPkg() *types.Package
	TypesInfo() *types.Info
	Path() string
	FileSet() *token.FileSet
}

// Run applies the analyzers to one unit and returns the surviving
// diagnostics: findings suppressed by a //hyperqlint:ignore directive are
// dropped, everything else is sorted by position.
func Run(u Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     u.FileSet(),
			Files:    u.Syntax(),
			Pkg:      u.TypesPkg(),
			Info:     u.TypesInfo(),
			PkgPath:  u.Path(),
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path(), err)
		}
	}
	diags = filterIgnored(u, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer.Name < diags[j].Analyzer.Name
	})
	return diags, nil
}

// filterIgnored drops diagnostics covered by an ignore directive. A
// directive of the form
//
//	//hyperqlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses matching diagnostics on its own line (end-of-line style) and on
// the line directly below it (standalone comment above the offending
// statement). The reason is mandatory: a suppression without a recorded
// justification is itself a diagnostic, so every deviation from an invariant
// stays auditable.
func filterIgnored(u Unit, diags []Diagnostic) []Diagnostic {
	fset := u.FileSet()
	// suppressed maps file -> line -> set of analyzer names.
	suppressed := make(map[string]map[int]map[string]bool)
	var out []Diagnostic
	for _, f := range u.Syntax() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if reason == "" {
					out = append(out, Diagnostic{
						Analyzer: directiveAnalyzer,
						Pos:      c.Pos(),
						Position: pos,
						Message:  "hyperqlint:ignore directive needs a reason: //hyperqlint:ignore <analyzer> <why>",
					})
					continue
				}
				byLine := suppressed[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					suppressed[pos.Filename] = byLine
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					set := byLine[ln]
					if set == nil {
						set = make(map[string]bool)
						byLine[ln] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	for _, d := range diags {
		if set := suppressed[d.Position.Filename][d.Position.Line]; set[d.Analyzer.Name] || set["all"] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// directiveAnalyzer attributes diagnostics about malformed directives.
var directiveAnalyzer = &Analyzer{
	Name: "directive",
	Doc:  "reports malformed //hyperqlint:ignore directives (missing reason)",
}

// parseIgnore recognizes "//hyperqlint:ignore a,b reason...".
func parseIgnore(text string) (names []string, reason string, ok bool) {
	const prefix = "//hyperqlint:ignore"
	if !strings.HasPrefix(text, prefix) {
		return nil, "", false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return []string{"all"}, "", true
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
	return names, reason, true
}

// --- shared type-inspection helpers -----------------------------------------

// CalleeFunc resolves the static callee of a call, or nil for calls through
// function values, conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FuncPkgName returns the name of the package that declares fn ("" for
// builtins/universe).
func FuncPkgName(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name()
}

// IsMethod reports whether fn is a method (has a receiver).
func IsMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil
}

// NamedType unwraps pointers and aliases down to the *types.Named beneath t,
// or nil.
func NamedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// IsNamed reports whether t is (a pointer to) the named type typeName
// declared in a package called pkgName. Matching by package *name* rather
// than full path keeps the analyzers testable against small fixture stubs:
// a testdata package named "trace" stands in for hyperq/internal/trace.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	n := NamedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// HasMethod reports whether t's method set (taking the address when t is
// addressable) contains an exported method with the given name.
func HasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, ok := t.(*types.Pointer); !ok {
			t = types.NewPointer(t)
		}
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	fn, ok := obj.(*types.Func)
	return ok && fn != nil
}

// ReturnsError reports whether the call's result list is non-empty and ends
// in error.
func ReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
