package lint

import (
	"testing"

	"hyperq/internal/lint/analysis"
	"hyperq/internal/lint/loader"
)

// TestSuiteCleanOnRepo runs every analyzer over the repository itself
// (tests included) and demands a clean bill: the invariants the suite
// encodes are supposed to hold on the shipped tree, with every deviation
// carrying an audited //hyperqlint:ignore reason. Type-checks the whole
// dependency graph from source, so it is skipped in -short runs.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check; skipped in -short mode")
	}
	l := &loader.Loader{}
	pkgs, err := l.Load("hyperq/...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages for hyperq/...")
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
