package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"hyperq/internal/lint/analysis"
)

// ErrSentinel reports error-identity checks that break under wrapping.
//
// Two rules, both grounded in shipped bugs:
//
//  1. Direct ==/!= comparison (or a value switch) against a sentinel error
//     declared in another package. Every layer boundary in the gateway wraps
//     errors with %w for context — the moment any intermediate does, an
//     identity comparison silently stops matching. errors.Is follows the
//     wrap chain; == does not. Same-package comparisons are left alone: the
//     declaring package controls both ends and often compares unwrapped
//     sentinels it just produced.
//
//  2. Bare io.EOF crossing a connection-API boundary (the PR 7 bug). In a
//     function that uses bare io.EOF as a value — the clean-end sentinel of
//     a result stream — an error coming back from a raw transport read
//     (ReadMessage, io.ReadFull, ...) may itself be bare io.EOF, meaning the
//     peer died mid-request. Letting it escape (returned, stored into a
//     message struct, sent on a channel) makes a killed backend
//     indistinguishable from a successful empty result. The error must pass
//     an EOF classification (errors.Is / an EOF comparison / a rewrite)
//     on every path before it escapes.
//
// Test files are skipped: tests legitimately compare the exact sentinel
// they just injected.
var ErrSentinel = &analysis.Analyzer{
	Name: "errsentinel",
	Doc:  "checks that sentinel errors are matched with errors.Is and bare io.EOF never crosses a connection-API boundary",
	Run:  runErrSentinel,
}

func runErrSentinel(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkSentinelComparisons(pass, file)
		for _, fn := range functionsIn(file) {
			checkBareEOF(pass, fn.body)
		}
	}
	return nil
}

var errorType = types.Universe.Lookup("error").Type()

// sentinelVar resolves e to a package-level error-typed variable declared
// outside the package under analysis — a foreign sentinel whose identity an
// intermediate wrap would destroy.
func sentinelVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg() == pass.Pkg {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.AssignableTo(v.Type(), errorType) {
		return nil
	}
	return v
}

// checkSentinelComparisons flags ==/!= and switch-case identity tests
// against foreign sentinels.
func checkSentinelComparisons(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			v := sentinelVar(pass, n.X)
			if v == nil {
				v = sentinelVar(pass, n.Y)
			}
			if v != nil {
				pass.Reportf(n.Pos(),
					"%s comparison against sentinel %s.%s fails once the error is wrapped; use errors.Is",
					n.Op, v.Pkg().Name(), v.Name())
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[n.Tag]
			if !ok || tv.Type == nil || !types.AssignableTo(tv.Type, errorType) {
				return true
			}
			for _, cs := range n.Body.List {
				cc, ok := cs.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if v := sentinelVar(pass, e); v != nil {
						pass.Reportf(e.Pos(),
							"switch case matches sentinel %s.%s by identity and fails once the error is wrapped; use errors.Is",
							v.Pkg().Name(), v.Name())
					}
				}
			}
		}
		return true
	})
}

// readCallees are the raw transport-read shapes whose errors may be bare
// io.EOF straight off the socket.
var readCallees = map[string]bool{
	"Read":        true,
	"ReadFull":    true,
	"ReadAtLeast": true,
	"ReadMessage": true,
	"ReadByte":    true,
	"ReadBytes":   true,
	"ReadString":  true,
}

// checkBareEOF implements rule 2: in a clean-end-sentinel producer, every
// escape of a raw read error must be preceded by an EOF classification on
// all paths.
func checkBareEOF(pass *analysis.Pass, body *ast.BlockStmt) {
	if !producesBareEOF(pass, body) {
		return
	}
	type readSite struct {
		stmt   ast.Node
		errObj types.Object
		callee string
	}
	var sites []readSite
	inspectSkipFuncLits(body, func(n ast.Node) bool {
		var lhs []ast.Expr
		var rhs ast.Expr
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			lhs, rhs = st.Lhs, st.Rhs[0]
		default:
			return true
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.Info, call)
		if callee == nil || !readCallees[callee.Name()] {
			return true
		}
		// The error is by convention the last result.
		id, ok := lhs[len(lhs)-1].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || !types.AssignableTo(obj.Type(), errorType) {
			return true
		}
		sites = append(sites, readSite{stmt: n, errObj: obj, callee: callee.Name()})
		return true
	})
	if len(sites) == 0 {
		return
	}
	g := analysis.New(body)
	for _, site := range sites {
		classified := func(n ast.Node) bool {
			return containsEOFClassification(pass, n, site.errObj)
		}
		for _, esc := range escapesOf(pass, body, site.errObj) {
			if g.ReachesWithout(site.stmt, esc, classified) {
				pass.Reportf(esc.Pos(),
					"error from %s may be bare io.EOF here — a dead peer would read as a clean end; classify with errors.Is(err, io.EOF) and rewrap before propagating",
					site.callee)
			}
		}
	}
}

// producesBareEOF reports whether the function uses bare io.EOF as a value
// (returned, stored into a struct field, assigned, sent) — the signature of
// a clean-end-sentinel producer. Comparisons and call arguments (errors.Is,
// fmt.Errorf wrapping) do not count.
func producesBareEOF(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isIOEOF(pass, sel) {
			return true
		}
		if len(stack) < 2 {
			return true
		}
		switch p := stack[len(stack)-2].(type) {
		case *ast.KeyValueExpr:
			found = p.Value == sel
		case *ast.ReturnStmt:
			found = true
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if r == sel {
					found = true
				}
			}
		case *ast.SendStmt:
			found = p.Value == sel
		}
		return true
	})
	return found
}

func isIOEOF(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	obj := pass.Info.Uses[sel.Sel]
	return obj != nil && obj.Name() == "EOF" && obj.Pkg() != nil && obj.Pkg().Name() == "io"
}

// escapesOf collects the nodes where the error object leaves the function:
// returned, used as a struct-literal value, or sent on a channel.
func escapesOf(pass *analysis.Pass, body *ast.BlockStmt, errObj types.Object) []ast.Node {
	var out []ast.Node
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != errObj {
			return true
		}
		for i := len(stack) - 2; i >= 0; i-- {
			switch p := stack[i].(type) {
			case *ast.KeyValueExpr:
				if exprContains(p.Value, id) {
					out = append(out, p)
					return true
				}
			case *ast.ReturnStmt:
				out = append(out, p)
				return true
			case *ast.SendStmt:
				if exprContains(p.Value, id) {
					out = append(out, p)
					return true
				}
			case *ast.BinaryExpr, *ast.IfStmt, *ast.CallExpr, *ast.AssignStmt,
				*ast.SwitchStmt, *ast.CaseClause, *ast.TypeSwitchStmt:
				return true
			case ast.Stmt:
				return true
			}
		}
		return true
	})
	return out
}

// containsEOFClassification reports whether n classifies errObj against EOF:
// a comparison with io.EOF, an errors.Is/errors.As call on it, or a
// reassignment (the rewrite itself).
func containsEOFClassification(pass *analysis.Pass, n ast.Node, errObj types.Object) bool {
	usesErr := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == errObj {
				found = true
			}
			return !found
		})
		return found
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.BinaryExpr:
			if m.Op != token.EQL && m.Op != token.NEQ {
				return true
			}
			xEOF := isEOFExpr(pass, m.X)
			yEOF := isEOFExpr(pass, m.Y)
			if (xEOF && usesErr(m.Y)) || (yEOF && usesErr(m.X)) {
				found = true
			}
		case *ast.CallExpr:
			if callee := analysis.CalleeFunc(pass.Info, m); callee != nil &&
				(callee.Name() == "Is" || callee.Name() == "As") &&
				analysis.FuncPkgName(callee) == "errors" &&
				len(m.Args) >= 1 && usesErr(m.Args[0]) {
				found = true
			}
		case *ast.AssignStmt:
			for _, l := range m.Lhs {
				if id, ok := l.(*ast.Ident); ok && pass.Info.Uses[id] == errObj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isEOFExpr(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && isIOEOF(pass, sel)
}
