package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"hyperq/internal/lint/analysis"
)

// LockIO reports blocking calls made while a mutex acquired in the same
// function is still held.
//
// The pool waiter queue, the cache shards, and the session registry all sit
// on hot request paths guarded by sync.Mutex/RWMutex. A network dial, a
// backend Exec, or a time.Sleep under one of those locks turns a single
// slow backend into gateway-wide latency collapse: every other request
// serializes behind the sleeper. The analyzer walks each function in source
// order tracking which mutexes are locked, and flags calls from a blocking
// denylist (Executor.Exec*, net.Conn reads/writes, cwp/tdp/net dials,
// time.Sleep, pool Acquire) made before the matching Unlock. Deferred
// unlocks do not release for the purposes of this walk — the lock is held
// until return, so everything after the Lock is a critical section.
var LockIO = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "checks that no blocking network/sleep call happens while a sync.Mutex or RWMutex is held",
	Run:  runLockIO,
}

func runLockIO(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, fn := range functionsIn(file) {
			checkLockedRegions(pass, fn.body)
		}
	}
	return nil
}

// heldLock is one currently-held mutex: the receiver expression it was
// locked through and where.
type heldLock struct {
	key string
	pos token.Pos
}

func checkLockedRegions(pass *analysis.Pass, body *ast.BlockStmt) {
	held := make(map[string]token.Pos)
	inspectSkipFuncLits(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			// Deferred calls run at return; a deferred Unlock does not end
			// the critical section mid-function, and deferred cleanup I/O is
			// out of scope for this linear walk.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		if key, op, ok := mutexOp(pass.Info, call, callee); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = call.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		if desc, blocking := blockingCall(callee); blocking {
			key, pos := oneHeld(held)
			pass.Reportf(call.Pos(),
				"blocking call %s while mutex %q is held (locked at %s); release the lock before network I/O or sleeping",
				desc, key, pass.Fset.Position(pos))
		}
		return true
	})
}

// mutexOp recognizes Lock/RLock/Unlock/RUnlock calls on sync.Mutex and
// sync.RWMutex (including promoted methods of embedded mutexes) and returns
// the receiver expression as the tracking key.
func mutexOp(info *types.Info, call *ast.CallExpr, callee *types.Func) (key, op string, ok bool) {
	switch callee.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if analysis.FuncPkgName(callee) != "sync" || !analysis.IsMethod(callee) {
		return "", "", false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	return types.ExprString(sel.X), callee.Name(), true
}

// blockingCall reports whether the callee is on the blocking denylist, and
// if so how to describe it.
func blockingCall(callee *types.Func) (string, bool) {
	pkg := analysis.FuncPkgName(callee)
	name := callee.Name()
	if !analysis.IsMethod(callee) {
		switch {
		case pkg == "time" && name == "Sleep":
			return "time.Sleep", true
		case blockingPkg(pkg) && len(name) >= 4 && name[:4] == "Dial":
			return pkg + "." + name, true
		}
		return "", false
	}
	if !blockingPkg(pkg) {
		return "", false
	}
	switch name {
	case "Exec", "ExecContext", "Connect", "ConnectContext",
		"Close", "Read", "Write", "Acquire", "Request":
		return "(" + pkg + ") ." + name, true
	}
	return "", false
}

// blockingPkg lists the packages whose calls can touch the network: the
// ODBC stack, the wire clients, and the standard net package.
func blockingPkg(pkg string) bool {
	switch pkg {
	case "odbc", "pool", "cwp", "tdp", "net":
		return true
	}
	return false
}

// oneHeld returns an arbitrary (deterministically smallest-key) held lock
// for the diagnostic.
func oneHeld(held map[string]token.Pos) (string, token.Pos) {
	var bestKey string
	var bestPos token.Pos
	for k, p := range held {
		if bestKey == "" || k < bestKey {
			bestKey, bestPos = k, p
		}
	}
	return bestKey, bestPos
}
