package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"hyperq/internal/lint/analysis"
)

// SpanEnd reports trace spans that are not ended on every return path.
//
// The trace package builds a span tree per request; Trace.Start pushes onto
// the active-span stack and Span.End pops. A span that is started but not
// ended on some return path leaves the stack misaligned for the rest of the
// request: later stages attach under the wrong parent, the /traces view
// shows phantom nesting, and stage histograms attribute latency to the
// leaked span. The analyzer accepts three shapes: a deferred End (directly
// or inside a deferred/asynchronous closure), an End call lexically between
// the span's creation and each return that follows it, or the span escaping
// the function (returned, stored, or passed on — ownership moved, the
// callee is responsible).
var SpanEnd = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "checks that every trace span started in a function is ended on all return paths",
	Run:  runSpanEnd,
}

// spanUse aggregates everything one function does with one span object.
type spanUse struct {
	obj        types.Object
	name       string    // variable name, for diagnostics
	createPos  token.Pos // position of the Start(...) call
	createCall ast.Node  // the Start(...) call node, anchoring the CFG walk
	endPos     []token.Pos
	deferred   bool // an End runs via defer/go, covering every path
	escaped    bool // the span leaves the function; caller no longer owns End
}

func runSpanEnd(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, fn := range functionsIn(file) {
			checkSpansIn(pass, fn.body)
		}
	}
	return nil
}

// checkSpansIn verifies every span started in body is ended on all paths to
// every exit. Path coverage comes from the analysis-package CFG: from each
// Start call, LeakWitnesses reports the returns (or the fall-off end)
// reachable without passing an End — so an End inside one branch, a continue
// that skips it, or a switch without a default are all judged by the paths
// that actually execute, not by source positions.
func checkSpansIn(pass *analysis.Pass, body *ast.BlockStmt) {
	creations := spanCreations(pass, body)
	if len(creations) == 0 {
		return
	}
	g := analysis.New(body)
	for _, c := range creations {
		collectSpanUses(pass, body, c)
		switch {
		case c.escaped, c.deferred:
			// Ownership moved, or a deferred End covers every path.
		case len(c.endPos) == 0:
			pass.Reportf(c.createPos,
				"span %q is never ended; call %s.End() on every return path or defer it", c.name, c.name)
		default:
			ends := c.endPos
			for _, ret := range g.LeakWitnesses(c.createCall, func(n ast.Node) bool {
				return anyWithin(ends, n)
			}) {
				pass.Reportf(ret,
					"return leaves span %q unended; end it before returning or use defer %s.End()", c.name, c.name)
			}
		}
	}
}

// anyWithin reports whether any recorded position falls inside the node's
// source range — i.e. the node performs one of the collected End calls.
func anyWithin(ps []token.Pos, n ast.Node) bool {
	for _, p := range ps {
		if p >= n.Pos() && p < n.End() {
			return true
		}
	}
	return false
}

// spanCreations finds assignments of freshly started spans in body, skipping
// nested function literals (they are analyzed as functions of their own).
// Spans discarded outright — a bare Start call or an assignment to _ — are
// reported immediately: nothing can ever end them.
func spanCreations(pass *analysis.Pass, body *ast.BlockStmt) []*spanUse {
	var out []*spanUse
	record := func(lhs ast.Expr, rhs ast.Expr) bool {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isSpanStart(pass.Info, call) {
			return false
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return false // span stored into a field/index: treated as escape
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "span assigned to _ can never be ended")
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return false
		}
		out = append(out, &spanUse{obj: obj, name: id.Name, createPos: call.Pos(), createCall: call})
		return true
	}
	inspectSkipFuncLits(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					record(st.Names[i], st.Values[i])
				}
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isSpanStart(pass.Info, call) {
				pass.Reportf(call.Pos(), "span discarded immediately; it can never be ended")
			}
		}
		return true
	})
	return out
}

// isSpanStart reports whether the call starts a span: a callee named Start
// yielding a single *trace.Span. Lookups that merely return an existing
// span (FindSpan and friends) do not transfer End responsibility.
func isSpanStart(info *types.Info, call *ast.CallExpr) bool {
	callee := analysis.CalleeFunc(info, call)
	if callee == nil || callee.Name() != "Start" {
		return false
	}
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return false
	}
	return analysis.IsNamed(tv.Type, "trace", "Span")
}

// collectSpanUses classifies every use of the span object in body, nested
// closures included (a deferred closure is the idiomatic place to End a
// conditionally created span).
func collectSpanUses(pass *analysis.Pass, body *ast.BlockStmt, c *spanUse) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || (pass.Info.Uses[id] != c.obj && pass.Info.Defs[id] != c.obj) {
			return true
		}
		switch classifySpanUse(stack, id) {
		case useEnd:
			c.endPos = append(c.endPos, id.Pos())
			if underDefer(stack) {
				c.deferred = true
			}
		case useBenign:
		default:
			c.escaped = true
		}
		return true
	})
}

type spanUseKind int

const (
	useEscape spanUseKind = iota
	useBenign
	useEnd
)

// classifySpanUse decides what the identifier at the top of the node stack
// does with the span: ends it, uses it benignly (other span methods, nil
// comparisons, being the assignment target), or lets it escape.
func classifySpanUse(stack []ast.Node, id *ast.Ident) spanUseKind {
	if len(stack) < 2 {
		return useEscape
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return useBenign // sp is the field name, not the receiver
		}
		// Method call on the span: End()/EndWithDuration() terminate it,
		// Event/Set/Status are benign. A selector not immediately called
		// (method value) escapes.
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == p {
				if p.Sel.Name == "End" || p.Sel.Name == "EndWithDuration" {
					return useEnd
				}
				return useBenign
			}
		}
		return useEscape
	case *ast.BinaryExpr:
		return useBenign // nil checks and comparisons
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == id {
				return useBenign // (re)assignment target
			}
		}
		return useEscape // span on the RHS: aliased away
	case *ast.ValueSpec:
		for _, nm := range p.Names {
			if nm == id {
				return useBenign
			}
		}
		return useEscape
	default:
		return useEscape
	}
}

// underDefer reports whether the current node sits below a defer or go
// statement (possibly through a closure body).
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return true
		}
	}
	return false
}
