// Package loader type-checks Go packages from source using only the
// standard library. It is the package-loading layer beneath the hyperqlint
// analyzer suite: the repo carries no external dependencies, so the usual
// golang.org/x/tools/go/packages loader is replaced by a small one driven by
// `go list -json` for build-system facts (file selection, import
// resolution, the stdlib vendor ImportMap) and go/parser + go/types for
// everything else.
//
// Two loading modes exist:
//
//   - Load(patterns...) resolves patterns through the go command and
//     type-checks the full dependency graph from source (the standard
//     library included — about two seconds for this repo). Packages with
//     test files additionally get a test-augmented unit (GoFiles +
//     TestGoFiles) and, when present, an external test unit (XTestGoFiles),
//     so analyzers see test code too.
//
//   - A Loader with FixtureRoot set resolves import paths below that
//     directory first, shadowing even standard-library paths. Analyzer
//     fixtures use this to supply tiny hermetic stubs for "sync", "context"
//     or "odbc" instead of type-checking the real thing.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit.
type Package struct {
	// PkgPath is the unit's import path. Test-augmented units keep the
	// package path; external test units carry the real "_test" package path.
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Fset    *token.FileSet
	// IsTestUnit marks units that include _test.go files.
	IsTestUnit bool
}

// The analysis.Unit accessors.

func (p *Package) Syntax() []*ast.File      { return p.Files }
func (p *Package) TypesPkg() *types.Package { return p.Types }
func (p *Package) TypesInfo() *types.Info   { return p.Info }
func (p *Package) Path() string             { return p.PkgPath }
func (p *Package) FileSet() *token.FileSet  { return p.Fset }

// unit is a built package plus the exact syntax trees it was checked from.
type unit struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

// Loader loads and caches packages. Safe for sequential reuse; one Loader
// shares a FileSet and a type-checked package graph across Load calls.
type Loader struct {
	// Dir is the directory go commands run in (the module root or any
	// directory inside it). Defaults to the current directory.
	Dir string
	// FixtureRoot, when non-empty, is a GOPATH-style source root: an import
	// of "a/b" loads FixtureRoot/a/b/*.go when that directory exists, taking
	// priority over the real package (standard library included).
	FixtureRoot string

	fset  *token.FileSet
	metas map[string]*listPkg
	// built caches pure (non-test) packages by import path; checking is
	// recursive through unitImporter, so the cache doubles as the cycle/
	// memoization table.
	built map[string]*unit
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	TestImports  []string
	XTestImports []string
	Deps         []string
	ImportMap    map[string]string
	Error        *struct{ Err string }
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.metas = make(map[string]*listPkg)
		l.built = make(map[string]*unit)
	}
}

// FileSet returns the loader's shared FileSet.
func (l *Loader) FileSet() *token.FileSet {
	l.init()
	return l.fset
}

// goList runs `go list -e -json` with the given arguments and merges the
// results into the metadata cache. CGO is disabled so file selection yields
// pure-Go package bodies that go/types can check without a C compiler.
func (l *Loader) goList(args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var res []*listPkg
	for dec.More() {
		p := &listPkg{}
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		res = append(res, p)
		l.metas[p.ImportPath] = p
	}
	return res, nil
}

// ensureMetas guarantees list metadata exists for every path in need,
// fetching the missing ones (with their dependency closure) in one go
// command invocation.
func (l *Loader) ensureMetas(need []string) error {
	var missing []string
	seen := make(map[string]bool)
	for _, p := range need {
		if p == "unsafe" || p == "C" || seen[p] {
			continue
		}
		seen[p] = true
		if _, ok := l.metas[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	_, err := l.goList(append([]string{"-deps"}, missing...)...)
	return err
}

// Target is one listed package's metadata: its own source files plus the
// import paths of everything its analysis depends on. Enough for a caller
// to fingerprint the package's inputs (lint result caching) without paying
// for type-checking.
type Target struct {
	ImportPath   string
	Dir          string
	GoFiles      []string // relative to Dir
	TestGoFiles  []string
	XTestGoFiles []string
	// Deps is the transitive dependency closure of the package and its test
	// files (import paths; resolve each with Meta).
	Deps []string
}

// List resolves the go command patterns to targets with full dependency
// metadata, without type-checking anything.
func (l *Loader) List(patterns ...string) ([]Target, error) {
	l.init()
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	need := make([]string, 0, len(targets))
	for _, t := range targets {
		need = append(need, t.ImportPath)
		need = append(need, t.TestImports...)
		need = append(need, t.XTestImports...)
	}
	if err := l.ensureMetas(need); err != nil {
		return nil, err
	}
	var out []Target
	for _, t := range targets {
		if len(t.GoFiles) == 0 && len(t.TestGoFiles) == 0 && len(t.XTestGoFiles) == 0 {
			continue
		}
		deps := make(map[string]bool)
		add := func(path string) {
			if path != "unsafe" && path != "C" && path != t.ImportPath {
				deps[path] = true
			}
		}
		for _, d := range t.Deps {
			add(d)
		}
		// Test imports bring their own closures (already fetched with -deps
		// by ensureMetas).
		for _, ti := range append(append([]string{}, t.TestImports...), t.XTestImports...) {
			add(ti)
			if m, ok := l.metas[ti]; ok {
				for _, d := range m.Deps {
					add(d)
				}
			}
		}
		sorted := make([]string, 0, len(deps))
		for d := range deps {
			sorted = append(sorted, d)
		}
		sort.Strings(sorted)
		out = append(out, Target{
			ImportPath:   t.ImportPath,
			Dir:          t.Dir,
			GoFiles:      t.GoFiles,
			TestGoFiles:  t.TestGoFiles,
			XTestGoFiles: t.XTestGoFiles,
			Deps:         sorted,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// Meta returns the source metadata for an import path previously pulled in
// by List (targets and their dependency closures).
func (l *Loader) Meta(path string) (dir string, goFiles []string, ok bool) {
	l.init()
	m, found := l.metas[path]
	if !found {
		return "", nil, false
	}
	return m.Dir, m.GoFiles, true
}

// Load type-checks the packages matching the go command patterns and
// returns their analyzer units: the test-augmented unit when the package
// has in-package tests (plus an external-test unit when it has _test
// package files), otherwise the plain unit.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	// One go command run resolves the full closure: the targets' own deps
	// plus everything their test files import.
	need := make([]string, 0, len(targets))
	for _, t := range targets {
		need = append(need, t.ImportPath)
		need = append(need, t.TestImports...)
		need = append(need, t.XTestImports...)
	}
	if err := l.ensureMetas(need); err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 && len(t.TestGoFiles) == 0 && len(t.XTestGoFiles) == 0 {
			continue
		}
		units, err := l.unitsFor(t)
		if err != nil {
			return nil, err
		}
		out = append(out, units...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// unitsFor builds the analyzer unit(s) for one listed target package.
func (l *Loader) unitsFor(t *listPkg) ([]*Package, error) {
	var out []*Package
	var self *types.Package
	if len(t.TestGoFiles) == 0 && len(t.GoFiles) > 0 {
		// No in-package tests: the plain (dependency-graph) unit doubles as
		// the analyzer unit.
		u, err := l.typecheck(t.ImportPath, nil)
		if err != nil {
			return nil, err
		}
		self = u.pkg
		out = append(out, l.wrap(t.ImportPath, t.Dir, u, false))
	} else if len(t.GoFiles) > 0 || len(t.TestGoFiles) > 0 {
		// Test-augmented unit: package sources plus in-package test files,
		// type-checked as one package.
		names := append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
		u, err := l.check(t.ImportPath, t.Dir, names, t.ImportMap, nil)
		if err != nil {
			return nil, err
		}
		self = u.pkg
		out = append(out, l.wrap(t.ImportPath, t.Dir, u, true))
	}
	if len(t.XTestGoFiles) > 0 {
		// The external test package imports the augmented variant, and — as
		// in a real `go test` build — so does every dependency that imports
		// the package under test (a fault-injection driver wrapping the
		// tested driver, say). Those dependencies are re-type-checked against
		// the augmented package inside a per-unit overlay so the whole test
		// graph shares one identity for the tested package's types.
		ctx := &testCtx{root: t.ImportPath, overlay: map[string]*unit{}}
		if selfUnit, ok := findSelf(out, t.ImportPath); ok {
			ctx.overlay[t.ImportPath] = selfUnit
		} else if self != nil {
			ctx.overlay[t.ImportPath] = &unit{pkg: self}
		}
		u, err := l.check(t.ImportPath+"_test", t.Dir, t.XTestGoFiles, t.ImportMap, ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, l.wrap(t.ImportPath+"_test", t.Dir, u, true))
	}
	return out, nil
}

// findSelf recovers the already-built unit for path from the wrapped output.
func findSelf(pkgs []*Package, path string) (*unit, bool) {
	for _, p := range pkgs {
		if p.PkgPath == path {
			return &unit{pkg: p.Types, info: p.Info, files: p.Files}, true
		}
	}
	return nil, false
}

// testCtx scopes one external-test unit's build: root is the package under
// test, overlay caches the augmented root plus every dependency rebuilt
// against it. Packages that do not depend on root keep using the shared
// graph.
type testCtx struct {
	root    string
	overlay map[string]*unit
}

func (l *Loader) wrap(path, dir string, u *unit, test bool) *Package {
	return &Package{
		PkgPath: path, Dir: dir, Files: u.files,
		Types: u.pkg, Info: u.info, Fset: l.fset, IsTestUnit: test,
	}
}

// typecheck builds (or returns the cached) package for an import path. With
// a testCtx, packages depending on the context's root are rebuilt against
// the augmented root inside the context's overlay; everything else shares
// the loader-wide graph.
func (l *Loader) typecheck(path string, ctx *testCtx) (*unit, error) {
	if ctx != nil {
		if u, ok := ctx.overlay[path]; ok {
			return u, nil
		}
		dep, err := l.dependsOn(path, ctx.root)
		if err != nil {
			return nil, err
		}
		if dep {
			m := l.metas[path]
			u, err := l.check(path, m.Dir, m.GoFiles, m.ImportMap, ctx)
			if err != nil {
				return nil, err
			}
			ctx.overlay[path] = u
			return u, nil
		}
		// Independent of the package under test: fall through and share.
	}
	if u, ok := l.built[path]; ok {
		return u, nil
	}
	// Fixture shadowing: a directory below FixtureRoot wins over the real
	// package, standard library included.
	if l.FixtureRoot != "" {
		if dir, names, ok := l.fixtureFiles(path); ok {
			u, err := l.check(path, dir, names, nil, nil)
			if err != nil {
				return nil, err
			}
			l.built[path] = u
			return u, nil
		}
	}
	m, err := l.meta(path)
	if err != nil {
		return nil, err
	}
	u, err := l.check(path, m.Dir, m.GoFiles, m.ImportMap, nil)
	if err != nil {
		return nil, err
	}
	l.built[path] = u
	return u, nil
}

// meta fetches (and caches) list metadata for one import path.
func (l *Loader) meta(path string) (*listPkg, error) {
	if m, ok := l.metas[path]; ok {
		return m, nil
	}
	if err := l.ensureMetas([]string{path}); err != nil {
		return nil, err
	}
	m, ok := l.metas[path]
	if !ok {
		return nil, fmt.Errorf("loader: no package metadata for %q", path)
	}
	return m, nil
}

// dependsOn reports whether path's transitive dependencies include root.
func (l *Loader) dependsOn(path, root string) (bool, error) {
	if l.FixtureRoot != "" {
		if _, _, ok := l.fixtureFiles(path); ok {
			return false, nil
		}
	}
	m, err := l.meta(path)
	if err != nil {
		return false, err
	}
	for _, d := range m.Deps {
		if d == root {
			return true, nil
		}
	}
	return false, nil
}

// fixtureFiles reports the fixture directory and .go files for path, when
// the fixture root shadows it.
func (l *Loader) fixtureFiles(path string) (string, []string, bool) {
	dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, false
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", nil, false
	}
	sort.Strings(names)
	return dir, names, true
}

// check parses and type-checks one set of files as a package. A non-nil ctx
// routes imports through an external-test overlay (self-import of the
// package under test plus dependencies rebuilt against it).
func (l *Loader) check(path, dir string, names []string, importMap map[string]string, ctx *testCtx) (*unit, error) {
	var files []*ast.File
	for _, name := range names {
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &unitImporter{l: l, importMap: importMap, ctx: ctx},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
		Sizes:    types.SizesFor("gc", buildArch()),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, cerr := conf.Check(path, l.fset, files, info)
	if cerr != nil {
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("loader: type-checking %s: %v", path, typeErrs[0])
		}
		return nil, fmt.Errorf("loader: type-checking %s: %v", path, cerr)
	}
	return &unit{pkg: pkg, info: info, files: files}, nil
}

var archOnce struct {
	val string
}

func buildArch() string {
	if archOnce.val != "" {
		return archOnce.val
	}
	arch := os.Getenv("GOARCH")
	if arch == "" {
		if out, err := exec.Command("go", "env", "GOARCH").Output(); err == nil {
			arch = strings.TrimSpace(string(out))
		}
	}
	if arch == "" {
		arch = "amd64"
	}
	archOnce.val = arch
	return arch
}

// unitImporter resolves one unit's imports: the package's ImportMap first
// (stdlib vendoring), then the test overlay / loader cache / fixture root /
// go list via typecheck.
type unitImporter struct {
	l         *Loader
	importMap map[string]string
	ctx       *testCtx
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	return u.ImportFrom(path, "", 0)
}

func (u *unitImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := u.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	built, err := u.l.typecheck(path, u.ctx)
	if err != nil {
		return nil, err
	}
	return built.pkg, nil
}

// LoadFixture loads fixture packages (paths relative to FixtureRoot) as
// analyzer units.
func (l *Loader) LoadFixture(paths ...string) ([]*Package, error) {
	l.init()
	if l.FixtureRoot == "" {
		return nil, fmt.Errorf("loader: LoadFixture requires FixtureRoot")
	}
	var out []*Package
	for _, path := range paths {
		u, err := l.typecheck(path, nil)
		if err != nil {
			return nil, err
		}
		dir, _, ok := l.fixtureFiles(path)
		if !ok {
			return nil, fmt.Errorf("loader: fixture package %q not under %s", path, l.FixtureRoot)
		}
		out = append(out, l.wrap(path, dir, u, false))
	}
	return out, nil
}
