package engine

import (
	"fmt"
	"sort"

	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	def      *xtra.AggDef
	count    int64
	sumI     int64 // BIGINT / DECIMAL (scaled) accumulator
	sumF     float64
	min, max types.Datum
	distinct map[string]bool
	keyBuf   []byte // reused DISTINCT key scratch
	seen     bool
}

// init prepares the accumulator for def (states are slab-allocated per
// group; see aggregateSet).
func (s *aggState) init(def *xtra.AggDef) {
	s.def = def
	if def.Distinct {
		s.distinct = map[string]bool{}
	}
}

func newAggState(def *xtra.AggDef) *aggState {
	s := &aggState{}
	s.init(def)
	return s
}

// add folds one input value into the accumulator.
func (s *aggState) add(d types.Datum) error {
	if !s.def.Star && d.Null {
		return nil
	}
	if s.distinct != nil {
		s.keyBuf = d.AppendHashKey(s.keyBuf[:0])
		if s.distinct[string(s.keyBuf)] {
			return nil
		}
		s.distinct[string(s.keyBuf)] = true
	}
	s.count++
	switch s.def.Func {
	case "COUNT":
		return nil
	case "SUM", "AVG":
		switch s.def.Out.Type.Kind {
		case types.KindFloat:
			s.sumF += d.AsFloat()
		case types.KindDecimal:
			s.sumI += d.DecimalScaled(s.def.Out.Type.Scale)
		default:
			s.sumI += d.AsInt()
		}
		return nil
	case "MIN", "MAX":
		if !s.seen {
			s.min, s.max = d, d
			s.seen = true
			return nil
		}
		c, err := types.Compare(d, s.min)
		if err != nil {
			return err
		}
		if c < 0 {
			s.min = d
		}
		c, err = types.Compare(d, s.max)
		if err != nil {
			return err
		}
		if c > 0 {
			s.max = d
		}
		return nil
	}
	return fmt.Errorf("engine: unknown aggregate %s", s.def.Func)
}

// result finalizes the aggregate value.
func (s *aggState) result() types.Datum {
	t := s.def.Out.Type
	switch s.def.Func {
	case "COUNT":
		return types.NewBigInt(s.count)
	case "SUM":
		if s.count == 0 {
			return types.NewNull(t.Kind)
		}
		switch t.Kind {
		case types.KindFloat:
			return types.NewFloat(s.sumF)
		case types.KindDecimal:
			return types.NewDecimal(s.sumI, t.Scale)
		default:
			return types.NewBigInt(s.sumI)
		}
	case "AVG":
		if s.count == 0 {
			return types.NewNull(t.Kind)
		}
		switch t.Kind {
		case types.KindDecimal:
			return types.NewDecimal(s.sumI/s.count, t.Scale)
		default:
			return types.NewFloat(s.sumF / float64(s.count))
		}
	case "MIN":
		if !s.seen {
			return types.NewNull(t.Kind)
		}
		return s.min
	case "MAX":
		if !s.seen {
			return types.NewNull(t.Kind)
		}
		return s.max
	}
	return types.NewNull(types.KindNull)
}

// aggInput extracts the value an aggregate folds for the current row. AVG
// over floats accumulates via sumF; integer AVG also uses sumF, so convert.
func (ex *executor) aggInput(def *xtra.AggDef, e *env) (types.Datum, error) {
	if def.Star {
		return types.NewInt(1), nil
	}
	d, err := ex.eval(def.Arg, e)
	if err != nil {
		return types.Datum{}, err
	}
	if def.Func == "AVG" && def.Out.Type.Kind == types.KindFloat && !d.Null {
		return types.NewFloat(d.AsFloat()), nil
	}
	return d, nil
}

func (ex *executor) execAgg(o *xtra.Agg, outer *env) (*rowset, error) {
	// Fuse a directly-below filter into the aggregation row loop: Agg(Select)
	// is the dominant analytic shape, and skipping the intermediate filtered
	// rowset avoids materializing thousands of row references per query.
	input := o.Input
	var pred xtra.Scalar
	if sel, ok := input.(*xtra.Select); ok {
		pred = sel.Pred
		input = sel.Input
	}
	in, err := ex.exec(input, outer)
	if err != nil {
		return nil, err
	}
	if o.GroupingSets != nil {
		return ex.execGroupingSets(o, in, outer, pred)
	}
	full := make([]int, len(o.Groups))
	for i := range full {
		full[i] = i
	}
	return ex.aggregateSet(o, in, outer, full, pred)
}

// execGroupingSets evaluates each grouping set and unions the results,
// padding non-grouped columns with NULL (native ROLLUP/CUBE execution for
// targets with the capability).
func (ex *executor) execGroupingSets(o *xtra.Agg, in *rowset, outer *env, pred xtra.Scalar) (*rowset, error) {
	out := newRowset(o.Columns())
	for _, set := range o.GroupingSets {
		rs, err := ex.aggregateSet(o, in, outer, set, pred)
		if err != nil {
			return nil, err
		}
		out.rows = append(out.rows, rs.rows...)
	}
	return out, nil
}

// aggregateSet performs hash aggregation grouping on the given subset of
// o.Groups (indexes). Columns outside the subset yield NULL.
//
// The per-row loop is allocation-free in the steady state: group keys are
// hashed into a reused byte buffer (map lookups with a string([]byte)
// conversion do not allocate), group key datums live in a scratch slice that
// is only copied out when a new group first appears, and the per-group
// aggregate states are a single slab allocation.
func (ex *executor) aggregateSet(o *xtra.Agg, in *rowset, outer *env, set []int, pred xtra.Scalar) (*rowset, error) {
	inSet := make([]bool, len(o.Groups))
	for _, i := range set {
		inSet[i] = true
	}
	type group struct {
		keys []types.Datum
		aggs []aggState
	}
	newGroup := func(keyBuf []types.Datum) *group {
		grp := &group{
			keys: append([]types.Datum(nil), keyBuf...),
			aggs: make([]aggState, len(o.Aggs)),
		}
		for i := range o.Aggs {
			grp.aggs[i].init(&o.Aggs[i])
		}
		return grp
	}
	groups := map[string]*group{}
	var order []*group
	keyBuf := make([]types.Datum, len(o.Groups))
	var kb []byte

	e := &env{rs: in, parent: outer}
	for _, row := range in.rows {
		e.row = row
		if pred != nil {
			d, err := ex.eval(pred, e)
			if err != nil {
				return nil, err
			}
			if !d.Bool() {
				continue
			}
		}
		kb = kb[:0]
		for i, g := range o.Groups {
			if !inSet[i] {
				keyBuf[i] = types.NewNull(g.Out.Type.Kind)
				continue
			}
			d, err := ex.eval(g.Expr, e)
			if err != nil {
				return nil, err
			}
			keyBuf[i] = d
			kb = d.AppendHashKey(kb)
			kb = append(kb, 0)
		}
		grp, ok := groups[string(kb)]
		if !ok {
			grp = newGroup(keyBuf)
			groups[string(kb)] = grp
			order = append(order, grp)
		}
		for i := range grp.aggs {
			as := &grp.aggs[i]
			d, err := ex.aggInput(as.def, e)
			if err != nil {
				return nil, err
			}
			if err := as.add(d); err != nil {
				return nil, err
			}
		}
	}
	// Scalar aggregation over empty input yields one row of defaults.
	if len(o.Groups) == 0 && len(groups) == 0 {
		grp := newGroup(nil)
		order = append(order, grp)
	}
	out := newRowset(o.Columns())
	out.rows = make([][]types.Datum, 0, len(order))
	for _, grp := range order {
		row := make([]types.Datum, 0, len(o.Groups)+len(o.Aggs))
		row = append(row, grp.keys...)
		for i := range grp.aggs {
			row = append(row, grp.aggs[i].result())
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// execWindow evaluates window functions: rows are partitioned, ordered
// within partitions, and each function computes rank-style numbering or
// running/total aggregates over peer groups.
func (ex *executor) execWindow(o *xtra.Window, outer *env) (*rowset, error) {
	in, err := ex.exec(o.Input, outer)
	if err != nil {
		return nil, err
	}
	out := newRowset(o.Columns())
	out.rows = make([][]types.Datum, len(in.rows))

	// Evaluate partition keys and order keys per row. Partition keys are
	// hashed into a reused buffer and mapped to dense partition indexes so
	// the row loop does not allocate a key string per row.
	e := &env{rs: in, parent: outer}
	partIdx := map[string]int{}
	var parts [][]int
	orderVals := make([][]types.Datum, len(in.rows))
	var kb []byte
	for i, row := range in.rows {
		e.row = row
		kb = kb[:0]
		for _, p := range o.PartitionBy {
			d, err := ex.eval(p, e)
			if err != nil {
				return nil, err
			}
			kb = d.AppendHashKey(kb)
			kb = append(kb, 0)
		}
		pi, ok := partIdx[string(kb)]
		if !ok {
			pi = len(parts)
			partIdx[string(kb)] = pi
			parts = append(parts, nil)
		}
		parts[pi] = append(parts[pi], i)
		kv := make([]types.Datum, len(o.OrderBy))
		for j, k := range o.OrderBy {
			d, err := ex.eval(k.Expr, e)
			if err != nil {
				return nil, err
			}
			kv[j] = d
		}
		orderVals[i] = kv
	}

	nf := len(o.Funcs)
	winVals := make([][]types.Datum, len(in.rows))
	for i := range winVals {
		winVals[i] = make([]types.Datum, nf)
	}
	for _, idxs := range parts {
		if len(o.OrderBy) > 0 {
			var sortErr error
			sort.SliceStable(idxs, func(a, b int) bool {
				c, err := compareKeyRows(o.OrderBy, orderVals[idxs[a]], orderVals[idxs[b]])
				if err != nil && sortErr == nil {
					sortErr = err
				}
				return c < 0
			})
			if sortErr != nil {
				return nil, sortErr
			}
		}
		for fi := range o.Funcs {
			if err := ex.windowFunc(&o.Funcs[fi], o.OrderBy, in, outer, idxs, orderVals, winVals, fi); err != nil {
				return nil, err
			}
		}
	}
	for i, row := range in.rows {
		nr := make([]types.Datum, 0, len(row)+nf)
		nr = append(nr, row...)
		nr = append(nr, winVals[i]...)
		out.rows[i] = nr
	}
	return out, nil
}

// windowFunc computes one window function over one ordered partition.
func (ex *executor) windowFunc(def *xtra.WindowDef, orderBy []xtra.SortKey, in *rowset, outer *env,
	idxs []int, orderVals [][]types.Datum, winVals [][]types.Datum, fi int) error {
	samePeers := func(a, b int) bool {
		if len(orderBy) == 0 {
			return true
		}
		c, err := compareKeyRows(orderBy, orderVals[a], orderVals[b])
		return err == nil && c == 0
	}
	switch def.Name {
	case "ROW_NUMBER":
		for n, i := range idxs {
			winVals[i][fi] = types.NewBigInt(int64(n + 1))
		}
		return nil
	case "RANK":
		rank := int64(1)
		for n, i := range idxs {
			if n > 0 && !samePeers(idxs[n-1], i) {
				rank = int64(n + 1)
			}
			winVals[i][fi] = types.NewBigInt(rank)
		}
		return nil
	case "DENSE_RANK":
		rank := int64(0)
		for n, i := range idxs {
			if n == 0 || !samePeers(idxs[n-1], i) {
				rank++
			}
			winVals[i][fi] = types.NewBigInt(rank)
		}
		return nil
	}
	// Aggregate window. Without ORDER BY the frame is the whole partition;
	// with ORDER BY it is the running frame up to and including peers.
	e := &env{rs: in, parent: outer}
	adef := &xtra.AggDef{Out: def.Out, Func: def.Name, Star: def.Star}
	if len(def.Args) == 1 {
		adef.Arg = def.Args[0]
	}
	if len(orderBy) == 0 {
		state := newAggState(adef)
		for _, i := range idxs {
			e.row = in.rows[i]
			d, err := ex.aggInput(adef, e)
			if err != nil {
				return err
			}
			if err := state.add(d); err != nil {
				return err
			}
		}
		v := state.result()
		for _, i := range idxs {
			winVals[i][fi] = v
		}
		return nil
	}
	state := newAggState(adef)
	n := 0
	for n < len(idxs) {
		// Extend the frame over the current peer group.
		m := n
		for m < len(idxs) && samePeers(idxs[n], idxs[m]) {
			e.row = in.rows[idxs[m]]
			d, err := ex.aggInput(adef, e)
			if err != nil {
				return err
			}
			if err := state.add(d); err != nil {
				return err
			}
			m++
		}
		v := state.result()
		for j := n; j < m; j++ {
			winVals[idxs[j]][fi] = v
		}
		n = m
	}
	return nil
}
