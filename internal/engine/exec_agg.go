package engine

import (
	"fmt"
	"sort"

	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	def      *xtra.AggDef
	count    int64
	sumI     int64 // BIGINT / DECIMAL (scaled) accumulator
	sumF     float64
	min, max types.Datum
	distinct map[string]bool
	seen     bool
}

func newAggState(def *xtra.AggDef) *aggState {
	s := &aggState{def: def}
	if def.Distinct {
		s.distinct = map[string]bool{}
	}
	return s
}

// add folds one input value into the accumulator.
func (s *aggState) add(d types.Datum) error {
	if !s.def.Star && d.Null {
		return nil
	}
	if s.distinct != nil {
		k := d.HashKey()
		if s.distinct[k] {
			return nil
		}
		s.distinct[k] = true
	}
	s.count++
	switch s.def.Func {
	case "COUNT":
		return nil
	case "SUM", "AVG":
		switch s.def.Out.Type.Kind {
		case types.KindFloat:
			s.sumF += d.AsFloat()
		case types.KindDecimal:
			s.sumI += d.DecimalScaled(s.def.Out.Type.Scale)
		default:
			s.sumI += d.AsInt()
		}
		return nil
	case "MIN", "MAX":
		if !s.seen {
			s.min, s.max = d, d
			s.seen = true
			return nil
		}
		c, err := types.Compare(d, s.min)
		if err != nil {
			return err
		}
		if c < 0 {
			s.min = d
		}
		c, err = types.Compare(d, s.max)
		if err != nil {
			return err
		}
		if c > 0 {
			s.max = d
		}
		return nil
	}
	return fmt.Errorf("engine: unknown aggregate %s", s.def.Func)
}

// result finalizes the aggregate value.
func (s *aggState) result() types.Datum {
	t := s.def.Out.Type
	switch s.def.Func {
	case "COUNT":
		return types.NewBigInt(s.count)
	case "SUM":
		if s.count == 0 {
			return types.NewNull(t.Kind)
		}
		switch t.Kind {
		case types.KindFloat:
			return types.NewFloat(s.sumF)
		case types.KindDecimal:
			return types.NewDecimal(s.sumI, t.Scale)
		default:
			return types.NewBigInt(s.sumI)
		}
	case "AVG":
		if s.count == 0 {
			return types.NewNull(t.Kind)
		}
		switch t.Kind {
		case types.KindDecimal:
			return types.NewDecimal(s.sumI/s.count, t.Scale)
		default:
			return types.NewFloat(s.sumF / float64(s.count))
		}
	case "MIN":
		if !s.seen {
			return types.NewNull(t.Kind)
		}
		return s.min
	case "MAX":
		if !s.seen {
			return types.NewNull(t.Kind)
		}
		return s.max
	}
	return types.NewNull(types.KindNull)
}

// aggInput extracts the value an aggregate folds for the current row. AVG
// over floats accumulates via sumF; integer AVG also uses sumF, so convert.
func (ex *executor) aggInput(def *xtra.AggDef, e *env) (types.Datum, error) {
	if def.Star {
		return types.NewInt(1), nil
	}
	d, err := ex.eval(def.Arg, e)
	if err != nil {
		return types.Datum{}, err
	}
	if def.Func == "AVG" && def.Out.Type.Kind == types.KindFloat && !d.Null {
		return types.NewFloat(d.AsFloat()), nil
	}
	return d, nil
}

func (ex *executor) execAgg(o *xtra.Agg, outer *env) (*rowset, error) {
	in, err := ex.exec(o.Input, outer)
	if err != nil {
		return nil, err
	}
	if o.GroupingSets != nil {
		return ex.execGroupingSets(o, in, outer)
	}
	full := make([]int, len(o.Groups))
	for i := range full {
		full[i] = i
	}
	return ex.aggregateSet(o, in, outer, full, nil)
}

// execGroupingSets evaluates each grouping set and unions the results,
// padding non-grouped columns with NULL (native ROLLUP/CUBE execution for
// targets with the capability).
func (ex *executor) execGroupingSets(o *xtra.Agg, in *rowset, outer *env) (*rowset, error) {
	out := newRowset(o.Columns())
	for _, set := range o.GroupingSets {
		rs, err := ex.aggregateSet(o, in, outer, set, out.cols)
		if err != nil {
			return nil, err
		}
		out.rows = append(out.rows, rs.rows...)
	}
	return out, nil
}

// aggregateSet performs hash aggregation grouping on the given subset of
// o.Groups (indexes). Columns outside the subset yield NULL.
func (ex *executor) aggregateSet(o *xtra.Agg, in *rowset, outer *env, set []int, _ []xtra.Col) (*rowset, error) {
	inSet := make([]bool, len(o.Groups))
	for _, i := range set {
		inSet[i] = true
	}
	type group struct {
		keys []types.Datum
		aggs []*aggState
	}
	groups := map[string]*group{}
	var order []string

	e := &env{rs: in, parent: outer}
	for _, row := range in.rows {
		e.row = row
		keys := make([]types.Datum, len(o.Groups))
		var kb []byte
		for i, g := range o.Groups {
			if !inSet[i] {
				keys[i] = types.NewNull(g.Out.Type.Kind)
				continue
			}
			d, err := ex.eval(g.Expr, e)
			if err != nil {
				return nil, err
			}
			keys[i] = d
			kb = append(kb, d.HashKey()...)
			kb = append(kb, 0)
		}
		k := string(kb)
		grp, ok := groups[k]
		if !ok {
			grp = &group{keys: keys}
			for i := range o.Aggs {
				grp.aggs = append(grp.aggs, newAggState(&o.Aggs[i]))
			}
			groups[k] = grp
			order = append(order, k)
		}
		for _, as := range grp.aggs {
			d, err := ex.aggInput(as.def, e)
			if err != nil {
				return nil, err
			}
			if err := as.add(d); err != nil {
				return nil, err
			}
		}
	}
	// Scalar aggregation over empty input yields one row of defaults.
	if len(o.Groups) == 0 && len(groups) == 0 {
		grp := &group{}
		for i := range o.Aggs {
			grp.aggs = append(grp.aggs, newAggState(&o.Aggs[i]))
		}
		groups[""] = grp
		order = append(order, "")
	}
	out := newRowset(o.Columns())
	for _, k := range order {
		grp := groups[k]
		row := make([]types.Datum, 0, len(o.Groups)+len(o.Aggs))
		row = append(row, grp.keys...)
		for _, as := range grp.aggs {
			row = append(row, as.result())
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// execWindow evaluates window functions: rows are partitioned, ordered
// within partitions, and each function computes rank-style numbering or
// running/total aggregates over peer groups.
func (ex *executor) execWindow(o *xtra.Window, outer *env) (*rowset, error) {
	in, err := ex.exec(o.Input, outer)
	if err != nil {
		return nil, err
	}
	out := newRowset(o.Columns())
	out.rows = make([][]types.Datum, len(in.rows))

	// Evaluate partition keys and order keys per row.
	e := &env{rs: in, parent: outer}
	partKey := make([]string, len(in.rows))
	orderVals := make([][]types.Datum, len(in.rows))
	for i, row := range in.rows {
		e.row = row
		var kb []byte
		for _, p := range o.PartitionBy {
			d, err := ex.eval(p, e)
			if err != nil {
				return nil, err
			}
			kb = append(kb, d.HashKey()...)
			kb = append(kb, 0)
		}
		partKey[i] = string(kb)
		kv := make([]types.Datum, len(o.OrderBy))
		for j, k := range o.OrderBy {
			d, err := ex.eval(k.Expr, e)
			if err != nil {
				return nil, err
			}
			kv[j] = d
		}
		orderVals[i] = kv
	}
	parts := map[string][]int{}
	var partOrder []string
	for i := range in.rows {
		if _, ok := parts[partKey[i]]; !ok {
			partOrder = append(partOrder, partKey[i])
		}
		parts[partKey[i]] = append(parts[partKey[i]], i)
	}

	nf := len(o.Funcs)
	winVals := make([][]types.Datum, len(in.rows))
	for i := range winVals {
		winVals[i] = make([]types.Datum, nf)
	}
	for _, pk := range partOrder {
		idxs := parts[pk]
		if len(o.OrderBy) > 0 {
			var sortErr error
			sort.SliceStable(idxs, func(a, b int) bool {
				c, err := compareKeyRows(o.OrderBy, orderVals[idxs[a]], orderVals[idxs[b]])
				if err != nil && sortErr == nil {
					sortErr = err
				}
				return c < 0
			})
			if sortErr != nil {
				return nil, sortErr
			}
		}
		for fi := range o.Funcs {
			if err := ex.windowFunc(&o.Funcs[fi], o.OrderBy, in, outer, idxs, orderVals, winVals, fi); err != nil {
				return nil, err
			}
		}
	}
	for i, row := range in.rows {
		nr := make([]types.Datum, 0, len(row)+nf)
		nr = append(nr, row...)
		nr = append(nr, winVals[i]...)
		out.rows[i] = nr
	}
	return out, nil
}

// windowFunc computes one window function over one ordered partition.
func (ex *executor) windowFunc(def *xtra.WindowDef, orderBy []xtra.SortKey, in *rowset, outer *env,
	idxs []int, orderVals [][]types.Datum, winVals [][]types.Datum, fi int) error {
	samePeers := func(a, b int) bool {
		if len(orderBy) == 0 {
			return true
		}
		c, err := compareKeyRows(orderBy, orderVals[a], orderVals[b])
		return err == nil && c == 0
	}
	switch def.Name {
	case "ROW_NUMBER":
		for n, i := range idxs {
			winVals[i][fi] = types.NewBigInt(int64(n + 1))
		}
		return nil
	case "RANK":
		rank := int64(1)
		for n, i := range idxs {
			if n > 0 && !samePeers(idxs[n-1], i) {
				rank = int64(n + 1)
			}
			winVals[i][fi] = types.NewBigInt(rank)
		}
		return nil
	case "DENSE_RANK":
		rank := int64(0)
		for n, i := range idxs {
			if n == 0 || !samePeers(idxs[n-1], i) {
				rank++
			}
			winVals[i][fi] = types.NewBigInt(rank)
		}
		return nil
	}
	// Aggregate window. Without ORDER BY the frame is the whole partition;
	// with ORDER BY it is the running frame up to and including peers.
	e := &env{rs: in, parent: outer}
	adef := &xtra.AggDef{Out: def.Out, Func: def.Name, Star: def.Star}
	if len(def.Args) == 1 {
		adef.Arg = def.Args[0]
	}
	if len(orderBy) == 0 {
		state := newAggState(adef)
		for _, i := range idxs {
			e.row = in.rows[i]
			d, err := ex.aggInput(adef, e)
			if err != nil {
				return err
			}
			if err := state.add(d); err != nil {
				return err
			}
		}
		v := state.result()
		for _, i := range idxs {
			winVals[i][fi] = v
		}
		return nil
	}
	state := newAggState(adef)
	n := 0
	for n < len(idxs) {
		// Extend the frame over the current peer group.
		m := n
		for m < len(idxs) && samePeers(idxs[n], idxs[m]) {
			e.row = in.rows[idxs[m]]
			d, err := ex.aggInput(adef, e)
			if err != nil {
				return err
			}
			if err := state.add(d); err != nil {
				return err
			}
			m++
		}
		v := state.result()
		for j := n; j < m; j++ {
			winVals[idxs[j]][fi] = v
		}
		n = m
	}
	return nil
}
