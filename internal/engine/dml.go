package engine

import (
	"fmt"
	"strings"
	"time"

	"hyperq/internal/catalog"
	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// execInsert evaluates the input relation and appends rows to the target,
// applying defaults and NOT NULL checks.
func (s *Session) execInsert(ex *executor, ins *xtra.Insert) (*Result, error) {
	td, tbl, temp, err := s.lookupData(ins.Table)
	if err != nil {
		return nil, err
	}
	rs, err := ex.exec(ins.Input, nil)
	if err != nil {
		return nil, err
	}
	newRows := make([][]types.Datum, 0, len(rs.rows))
	for _, src := range rs.rows {
		row := make([]types.Datum, len(tbl.Columns))
		filled := make([]bool, len(tbl.Columns))
		for i, ord := range ins.Ordinals {
			d := src[i]
			if d.Null {
				d = types.NewNull(tbl.Columns[ord].Type.Kind)
			}
			row[ord] = d
			filled[ord] = true
		}
		for i, col := range tbl.Columns {
			if !filled[i] {
				d, err := evalDefault(&col)
				if err != nil {
					return nil, err
				}
				row[i] = d
			}
			if col.NotNull && row[i].Null {
				return nil, fmt.Errorf("engine: NULL in NOT NULL column %s.%s", tbl.Name, col.Name)
			}
		}
		newRows = append(newRows, row)
	}
	s.appendRows(td, temp, newRows)
	return &Result{RowsAffected: int64(len(newRows)), Command: "INSERT"}, nil
}

func (s *Session) appendRows(td *tableData, temp bool, rows [][]types.Datum) {
	if temp {
		s.mu.Lock()
		td.rows = append(td.rows, rows...)
		s.mu.Unlock()
		return
	}
	s.eng.mu.Lock()
	td.rows = append(td.rows, rows...)
	s.eng.mu.Unlock()
}

// evalDefault produces a column's default value. Supported forms: literal
// numbers and strings, DATE 'lit', and CURRENT_DATE.
func evalDefault(col *catalog.Column) (types.Datum, error) {
	text := strings.TrimSpace(col.Default)
	if text == "" {
		return types.NewNull(col.Type.Kind), nil
	}
	switch {
	case strings.EqualFold(text, "CURRENT_DATE"):
		now := time.Now().UTC()
		return types.NewDate(now.Year(), int(now.Month()), now.Day()), nil
	case strings.EqualFold(text, "CURRENT_TIMESTAMP"):
		return types.NewTimestamp(time.Now().UnixMicro()), nil
	case strings.EqualFold(text, "NULL"):
		return types.NewNull(col.Type.Kind), nil
	case strings.HasPrefix(text, "'") && strings.HasSuffix(text, "'"):
		inner := strings.ReplaceAll(text[1:len(text)-1], "''", "'")
		return types.Cast(types.NewString(inner), col.Type)
	case strings.HasPrefix(strings.ToUpper(text), "DATE '"):
		return types.ParseDateLiteral(strings.Trim(text[5:], " '"))
	default:
		return types.Cast(types.NewString(text), col.Type)
	}
}

// execUpdate applies assignments to matching rows.
func (s *Session) execUpdate(ex *executor, upd *xtra.Update) (*Result, error) {
	td, tbl, temp, err := s.lookupData(upd.Table)
	if err != nil {
		return nil, err
	}
	rs := newRowset(upd.Cols)
	e := &env{rs: rs}
	// Serialize DML statements, but never hold the data lock across
	// expression evaluation: correlated subqueries in the predicate or
	// assignments re-enter the executor and take read snapshots themselves.
	if !temp {
		s.eng.dmlMu.Lock()
		defer s.eng.dmlMu.Unlock()
	}
	snapshot := snapshotUnderLock(s, td, temp)
	var affected int64
	newRows := make([][]types.Datum, len(snapshot))
	for i, row := range snapshot {
		e.row = row
		match := true
		if upd.Pred != nil {
			d, err := ex.eval(upd.Pred, e)
			if err != nil {
				return nil, err
			}
			match = d.Bool()
		}
		if !match {
			newRows[i] = row
			continue
		}
		nr := append([]types.Datum(nil), row...)
		for _, a := range upd.Assigns {
			d, err := ex.eval(a.Expr, e)
			if err != nil {
				return nil, err
			}
			if d.Null {
				d = types.NewNull(tbl.Columns[a.Ordinal].Type.Kind)
			}
			if tbl.Columns[a.Ordinal].NotNull && d.Null {
				return nil, fmt.Errorf("engine: NULL in NOT NULL column %s.%s", tbl.Name, tbl.Columns[a.Ordinal].Name)
			}
			nr[a.Ordinal] = d
		}
		newRows[i] = nr
		affected++
	}
	lock(s, temp)
	td.rows = newRows
	unlock(s, temp)
	return &Result{RowsAffected: affected, Command: "UPDATE"}, nil
}

// snapshotUnderLock reads the current row slice header under the data lock.
func snapshotUnderLock(s *Session, td *tableData, temp bool) [][]types.Datum {
	lock(s, temp)
	defer unlock(s, temp)
	return td.rows
}

func lock(s *Session, temp bool) {
	if temp {
		s.mu.Lock()
	} else {
		s.eng.mu.Lock()
	}
}

func unlock(s *Session, temp bool) {
	if temp {
		s.mu.Unlock()
	} else {
		s.eng.mu.Unlock()
	}
}

// execDelete removes matching rows.
func (s *Session) execDelete(ex *executor, del *xtra.Delete) (*Result, error) {
	td, _, temp, err := s.lookupData(del.Table)
	if err != nil {
		return nil, err
	}
	rs := newRowset(del.Cols)
	e := &env{rs: rs}
	if !temp {
		s.eng.dmlMu.Lock()
		defer s.eng.dmlMu.Unlock()
	}
	snapshot := snapshotUnderLock(s, td, temp)
	var kept [][]types.Datum
	var affected int64
	for _, row := range snapshot {
		e.row = row
		match := true
		if del.Pred != nil {
			d, err := ex.eval(del.Pred, e)
			if err != nil {
				return nil, err
			}
			match = d.Bool()
		}
		if match {
			affected++
		} else {
			kept = append(kept, row)
		}
	}
	lock(s, temp)
	td.rows = kept
	unlock(s, temp)
	return &Result{RowsAffected: affected, Command: "DELETE"}, nil
}

// execCreateTable registers a table (session-temporary for volatile kinds)
// and optionally populates it from a CTAS input.
func (s *Session) execCreateTable(ex *executor, ct *xtra.CreateTable) (*Result, error) {
	def := ct.Def.Clone()
	isTemp := def.Kind == catalog.KindVolatile
	target := s.eng.cat
	if isTemp {
		target = s.tempCat
	}
	if ct.IfNotExists {
		if _, ok := target.Table(def.Name); ok {
			return &Result{Command: "CREATE TABLE"}, nil
		}
	}
	if err := target.CreateTable(def); err != nil {
		return nil, err
	}
	if isTemp {
		s.mu.Lock()
		s.tempData[strings.ToUpper(def.Name)] = &tableData{}
		s.mu.Unlock()
	}
	var affected int64
	if ct.Input != nil {
		rs, err := ex.exec(ct.Input, nil)
		if err != nil {
			_ = target.DropTable(def.Name)
			return nil, err
		}
		td, _, temp, err := s.lookupData(def.Name)
		if err != nil {
			return nil, err
		}
		s.appendRows(td, temp, rs.rows)
		affected = int64(len(rs.rows))
	}
	return &Result{RowsAffected: affected, Command: "CREATE TABLE"}, nil
}

func (s *Session) execDropTable(dt *xtra.DropTable) (*Result, error) {
	key := strings.ToUpper(dt.Name)
	if _, ok := s.tempCat.Table(dt.Name); ok {
		if err := s.tempCat.DropTable(dt.Name); err != nil {
			return nil, err
		}
		s.mu.Lock()
		delete(s.tempData, key)
		s.mu.Unlock()
		return &Result{Command: "DROP TABLE"}, nil
	}
	if err := s.eng.cat.DropTable(dt.Name); err != nil {
		if dt.IfExists {
			return &Result{Command: "DROP TABLE"}, nil
		}
		return nil, err
	}
	s.eng.mu.Lock()
	delete(s.eng.data, key)
	s.eng.mu.Unlock()
	return &Result{Command: "DROP TABLE"}, nil
}

func (s *Session) execCreateView(cv *xtra.CreateView) (*Result, error) {
	if cv.Replace {
		_ = s.eng.cat.DropView(cv.Def.Name)
	}
	if err := s.eng.cat.CreateView(cv.Def); err != nil {
		return nil, err
	}
	return &Result{Command: "CREATE VIEW"}, nil
}
