package engine

import (
	"fmt"
	"strings"
	"time"

	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// eval evaluates a scalar expression for the current row environment, with
// SQL three-valued logic.
func (ex *executor) eval(s xtra.Scalar, e *env) (types.Datum, error) {
	switch x := s.(type) {
	case *xtra.ColRef:
		d, ok := e.lookup(x.Col.ID)
		if !ok {
			return types.Datum{}, fmt.Errorf("engine: unresolved column %s (#%d)", x.Col.Name, x.Col.ID)
		}
		return d, nil
	case *xtra.ConstExpr:
		return x.Val, nil
	case *xtra.CompExpr:
		return ex.evalComp(x, e)
	case *xtra.BoolExpr:
		return ex.evalBool(x, e)
	case *xtra.NotExpr:
		d, err := ex.eval(x.X, e)
		if err != nil {
			return types.Datum{}, err
		}
		if d.Null {
			return types.NewNull(types.KindBool), nil
		}
		return types.NewBool(!d.Bool()), nil
	case *xtra.IsNullExpr:
		d, err := ex.eval(x.X, e)
		if err != nil {
			return types.Datum{}, err
		}
		return types.NewBool(d.Null != x.Not), nil
	case *xtra.ArithExpr:
		l, err := ex.eval(x.L, e)
		if err != nil {
			return types.Datum{}, err
		}
		r, err := ex.eval(x.R, e)
		if err != nil {
			return types.Datum{}, err
		}
		return types.Arith(x.Op, l, r)
	case *xtra.NegExpr:
		d, err := ex.eval(x.X, e)
		if err != nil {
			return types.Datum{}, err
		}
		return types.Neg(d)
	case *xtra.ConcatExpr:
		l, err := ex.eval(x.L, e)
		if err != nil {
			return types.Datum{}, err
		}
		r, err := ex.eval(x.R, e)
		if err != nil {
			return types.Datum{}, err
		}
		if l.Null || r.Null {
			return types.NewNull(types.KindVarChar), nil
		}
		return types.NewString(l.String() + r.String()), nil
	case *xtra.LikeExpr:
		return ex.evalLike(x, e)
	case *xtra.FuncExpr:
		return ex.evalFunc(x, e)
	case *xtra.ExtractExpr:
		d, err := ex.eval(x.X, e)
		if err != nil {
			return types.Datum{}, err
		}
		return types.Extract(x.Field, d)
	case *xtra.CastExpr:
		d, err := ex.eval(x.X, e)
		if err != nil {
			return types.Datum{}, err
		}
		return types.Cast(d, x.To)
	case *xtra.CaseExpr:
		for _, w := range x.Whens {
			c, err := ex.eval(w.Cond, e)
			if err != nil {
				return types.Datum{}, err
			}
			if c.Bool() {
				return ex.eval(w.Then, e)
			}
		}
		if x.Else != nil {
			return ex.eval(x.Else, e)
		}
		return types.NewNull(x.T.Kind), nil
	case *xtra.ExistsExpr:
		rs, err := ex.execSubquery(x.Input, e)
		if err != nil {
			return types.Datum{}, err
		}
		return types.NewBool((len(rs.rows) > 0) != x.Not), nil
	case *xtra.SubqueryCmp:
		return ex.evalSubqueryCmp(x, e)
	case *xtra.InValues:
		return ex.evalInValues(x, e)
	case *xtra.ScalarSubquery:
		rs, err := ex.execSubquery(x.Input, e)
		if err != nil {
			return types.Datum{}, err
		}
		switch len(rs.rows) {
		case 0:
			return types.NewNull(x.T.Kind), nil
		case 1:
			return rs.rows[0][0], nil
		}
		return types.Datum{}, fmt.Errorf("engine: scalar subquery returned %d rows", len(rs.rows))
	case *xtra.ParamExpr:
		return types.Datum{}, fmt.Errorf("engine: unresolved parameter :%s", x.Name)
	}
	return types.Datum{}, fmt.Errorf("engine: unsupported scalar %T", s)
}

// evalComp applies three-valued comparison.
func (ex *executor) evalComp(x *xtra.CompExpr, e *env) (types.Datum, error) {
	l, err := ex.eval(x.L, e)
	if err != nil {
		return types.Datum{}, err
	}
	r, err := ex.eval(x.R, e)
	if err != nil {
		return types.Datum{}, err
	}
	if l.Null || r.Null {
		return types.NewNull(types.KindBool), nil
	}
	c, err := types.Compare(l, r)
	if err != nil {
		return types.Datum{}, err
	}
	return types.NewBool(cmpHolds(x.Op, c)), nil
}

func cmpHolds(op xtra.CmpOp, c int) bool {
	switch op {
	case xtra.CmpEQ:
		return c == 0
	case xtra.CmpNE:
		return c != 0
	case xtra.CmpLT:
		return c < 0
	case xtra.CmpLE:
		return c <= 0
	case xtra.CmpGT:
		return c > 0
	case xtra.CmpGE:
		return c >= 0
	}
	return false
}

// evalBool implements three-valued AND/OR with short circuits.
func (ex *executor) evalBool(x *xtra.BoolExpr, e *env) (types.Datum, error) {
	sawNull := false
	for _, a := range x.Args {
		d, err := ex.eval(a, e)
		if err != nil {
			return types.Datum{}, err
		}
		if d.Null {
			sawNull = true
			continue
		}
		if x.Op == xtra.BoolAnd && !d.Bool() {
			return types.NewBool(false), nil
		}
		if x.Op == xtra.BoolOr && d.Bool() {
			return types.NewBool(true), nil
		}
	}
	if sawNull {
		return types.NewNull(types.KindBool), nil
	}
	return types.NewBool(x.Op == xtra.BoolAnd), nil
}

func (ex *executor) evalLike(x *xtra.LikeExpr, e *env) (types.Datum, error) {
	v, err := ex.eval(x.X, e)
	if err != nil {
		return types.Datum{}, err
	}
	p, err := ex.eval(x.Pattern, e)
	if err != nil {
		return types.Datum{}, err
	}
	if v.Null || p.Null {
		return types.NewNull(types.KindBool), nil
	}
	m := likeMatch(strings.TrimRight(v.S, " "), p.S)
	return types.NewBool(m != x.Not), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards (greedy two-pointer
// algorithm, O(n*m) worst case).
func likeMatch(s, pattern string) bool {
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// evalSubqueryCmp implements quantified (possibly vector) subquery
// comparison with the lexicographic row semantics of the paper's Example 2:
// (a, b) > (x, y) iff a > x OR (a = x AND b > y).
func (ex *executor) evalSubqueryCmp(x *xtra.SubqueryCmp, e *env) (types.Datum, error) {
	left := make([]types.Datum, len(x.Left))
	for i, l := range x.Left {
		d, err := ex.eval(l, e)
		if err != nil {
			return types.Datum{}, err
		}
		left[i] = d
	}
	rs, err := ex.execSubquery(x.Input, e)
	if err != nil {
		return types.Datum{}, err
	}
	anyTrue, anyFalse, anyUnknown := false, false, false
	for _, row := range rs.rows {
		holds, unknown, err := rowCmp(x.Cmp, left, row)
		if err != nil {
			return types.Datum{}, err
		}
		switch {
		case unknown:
			anyUnknown = true
		case holds:
			anyTrue = true
		default:
			anyFalse = true
		}
	}
	if x.Quant == xtra.QuantAny {
		switch {
		case anyTrue:
			return types.NewBool(true), nil
		case anyUnknown:
			return types.NewNull(types.KindBool), nil
		default:
			return types.NewBool(false), nil
		}
	}
	// ALL
	switch {
	case anyFalse:
		return types.NewBool(false), nil
	case anyUnknown:
		return types.NewNull(types.KindBool), nil
	default:
		return types.NewBool(true), nil
	}
}

// rowCmp compares two rows lexicographically under op.
func rowCmp(op xtra.CmpOp, left, right []types.Datum) (holds, unknown bool, err error) {
	// Equality/inequality: all pairs must be comparable.
	for i := range left {
		if left[i].Null || right[i].Null {
			return false, true, nil
		}
	}
	cmp := 0
	for i := range left {
		c, err := types.Compare(left[i], right[i])
		if err != nil {
			return false, false, err
		}
		if c != 0 {
			cmp = c
			break
		}
	}
	return cmpHolds(op, cmp), false, nil
}

func (ex *executor) evalInValues(x *xtra.InValues, e *env) (types.Datum, error) {
	v, err := ex.eval(x.X, e)
	if err != nil {
		return types.Datum{}, err
	}
	if v.Null {
		return types.NewNull(types.KindBool), nil
	}
	sawNull := false
	for _, item := range x.Vals {
		d, err := ex.eval(item, e)
		if err != nil {
			return types.Datum{}, err
		}
		if d.Null {
			sawNull = true
			continue
		}
		c, err := types.Compare(v, d)
		if err != nil {
			return types.Datum{}, err
		}
		if c == 0 {
			return types.NewBool(!x.Not), nil
		}
	}
	if sawNull {
		return types.NewNull(types.KindBool), nil
	}
	return types.NewBool(x.Not), nil
}

func (ex *executor) evalFunc(x *xtra.FuncExpr, e *env) (types.Datum, error) {
	args := make([]types.Datum, len(x.Args))
	for i, a := range x.Args {
		d, err := ex.eval(a, e)
		if err != nil {
			return types.Datum{}, err
		}
		args[i] = d
	}
	switch x.Name {
	case "COALESCE":
		for _, a := range args {
			if !a.Null {
				return types.Cast(a, x.T)
			}
		}
		return types.NewNull(x.T.Kind), nil
	case "NULLIF":
		if args[0].Null {
			return types.NewNull(x.T.Kind), nil
		}
		if !args[1].Null {
			c, err := types.Compare(args[0], args[1])
			if err != nil {
				return types.Datum{}, err
			}
			if c == 0 {
				return types.NewNull(x.T.Kind), nil
			}
		}
		return args[0], nil
	case "CURRENT_DATE":
		now := time.Now().UTC()
		return types.NewDate(now.Year(), int(now.Month()), now.Day()), nil
	case "CURRENT_TIMESTAMP":
		return types.NewTimestamp(time.Now().UnixMicro()), nil
	case "CURRENT_TIME":
		now := time.Now().UTC()
		return types.NewTime(int64(now.Hour()*3600 + now.Minute()*60 + now.Second())), nil
	case "USER":
		return types.NewString(ex.sess.user), nil
	}
	// NULL propagation for the remaining strict functions.
	for _, a := range args {
		if a.Null {
			return types.NewNull(x.T.Kind), nil
		}
	}
	switch x.Name {
	case "CHAR_LENGTH":
		return types.NewInt(int64(len(strings.TrimRight(args[0].S, " ")))), nil
	case "SUBSTR":
		s := args[0].S
		start := int(args[1].AsInt())
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return types.NewString(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			n := int(args[2].AsInt())
			if n < 0 {
				n = 0
			}
			if n < len(out) {
				out = out[:n]
			}
		}
		return types.NewString(out), nil
	case "POSITION":
		return types.NewInt(int64(strings.Index(args[1].S, args[0].S) + 1)), nil
	case "UPPER":
		return types.NewString(strings.ToUpper(args[0].S)), nil
	case "LOWER":
		return types.NewString(strings.ToLower(args[0].S)), nil
	case "TRIM":
		return types.NewString(strings.TrimSpace(args[0].S)), nil
	case "LTRIM":
		return types.NewString(strings.TrimLeft(args[0].S, " ")), nil
	case "RTRIM":
		return types.NewString(strings.TrimRight(args[0].S, " ")), nil
	case "ABS":
		if args[0].K == types.KindFloat {
			f := args[0].F
			if f < 0 {
				f = -f
			}
			return types.NewFloat(f), nil
		}
		d := args[0]
		if d.I < 0 {
			d.I = -d.I
		}
		return d, nil
	case "ROUND":
		scale := 0
		if len(args) == 2 {
			scale = int(args[1].AsInt())
		}
		f := args[0].AsFloat()
		p := 1.0
		for i := 0; i < scale; i++ {
			p *= 10
		}
		v := float64(int64(f*p+sign(f)*0.5)) / p
		if args[0].K == types.KindFloat {
			return types.NewFloat(v), nil
		}
		return types.Cast(types.NewFloat(v), args[0].Type())
	case "FLOOR":
		f := args[0].AsFloat()
		n := int64(f)
		if f < 0 && float64(n) != f {
			n--
		}
		return types.NewBigInt(n), nil
	case "CEIL":
		f := args[0].AsFloat()
		n := int64(f)
		if f > 0 && float64(n) != f {
			n++
		}
		return types.NewBigInt(n), nil
	case "DATEADD":
		unit := strings.ToUpper(args[0].S)
		d := args[2]
		if d.K != types.KindDate {
			cd, err := types.Cast(d, types.Date)
			if err != nil {
				return types.Datum{}, err
			}
			d = cd
		}
		n := args[1].AsInt()
		switch unit {
		case "DAY":
			return types.AddDays(d, n), nil
		case "MONTH":
			return types.AddMonths(d, n), nil
		case "YEAR":
			return types.AddMonths(d, n*12), nil
		}
		return types.Datum{}, fmt.Errorf("engine: bad DATEADD unit %q", unit)
	case "ADD_MONTHS":
		if args[0].K != types.KindDate {
			d, err := types.Cast(args[0], types.Date)
			if err != nil {
				return types.Datum{}, err
			}
			args[0] = d
		}
		return types.AddMonths(args[0], args[1].AsInt()), nil
	}
	return types.Datum{}, fmt.Errorf("engine: unknown function %s", x.Name)
}

func sign(f float64) float64 {
	if f < 0 {
		return -1
	}
	return 1
}
