package engine

import (
	"strings"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/types"
)

// fullSession returns a session on an engine modeling a fully capable
// target (used to exercise generic SQL execution).
func fullSession(t *testing.T) *Session {
	t.Helper()
	e := New(dialect.TeradataProfile())
	s := e.NewSession()
	mustExec(t, s, `CREATE TABLE emp (empno INT, mgrno INT, name VARCHAR(20), sal DECIMAL(10,2), hired DATE)`)
	mustExec(t, s, `INSERT INTO emp VALUES
	  (1, 7, 'alice', 120.00, DATE '2014-01-02'),
	  (7, 8, 'bob',   90.50,  DATE '2013-05-01'),
	  (8, 10, 'carol', 90.50, DATE '2012-07-15'),
	  (9, 10, 'dave',  NULL,  DATE '2015-02-28'),
	  (10, 11, 'erin', 200.00, DATE '2010-12-31')`)
	return s
}

func mustExec(t *testing.T, s *Session, sql string) []*Result {
	t.Helper()
	rs, err := s.ExecSQL(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return rs
}

func mustQuery(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	r, err := s.QuerySQL(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return r
}

// rowsToStrings renders result rows for compact assertions.
func rowsToStrings(r *Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		parts := make([]string, len(row))
		for j, d := range row {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func expectRows(t *testing.T, r *Result, want ...string) {
	t.Helper()
	got := rowsToStrings(r)
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSelectWhereProject(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT name, sal FROM emp WHERE sal > 100 ORDER BY sal DESC")
	expectRows(t, r, "erin|200.00", "alice|120.00")
}

func TestThreeValuedLogic(t *testing.T) {
	s := fullSession(t)
	// dave has NULL sal: NULL > 100 is unknown, row filtered out.
	r := mustQuery(t, s, "SELECT COUNT(*) FROM emp WHERE sal > 0")
	expectRows(t, r, "4")
	r = mustQuery(t, s, "SELECT COUNT(*) FROM emp WHERE NOT (sal > 0)")
	expectRows(t, r, "0")
	r = mustQuery(t, s, "SELECT COUNT(*) FROM emp WHERE sal IS NULL")
	expectRows(t, r, "1")
}

func TestJoins(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT e.name, m.name FROM emp e JOIN emp m ON e.mgrno = m.empno ORDER BY e.empno`)
	expectRows(t, r, "alice|bob", "bob|carol", "carol|erin", "dave|erin")
	// LEFT JOIN pads unmatched.
	r = mustQuery(t, s, `
	  SELECT e.name, m.name FROM emp e LEFT JOIN emp m ON e.mgrno = m.empno ORDER BY e.empno`)
	if len(r.Rows) != 5 || !r.Rows[4][1].Null {
		t.Fatalf("left join rows = %v", rowsToStrings(r))
	}
	// RIGHT JOIN mirrors.
	r = mustQuery(t, s, `
	  SELECT e.name, m.name FROM emp m RIGHT JOIN emp e ON e.mgrno = m.empno ORDER BY e.empno`)
	if len(r.Rows) != 5 {
		t.Fatalf("right join rows = %d", len(r.Rows))
	}
	// FULL JOIN keeps both sides.
	r = mustQuery(t, s, `
	  SELECT e.name, m.name FROM emp e FULL JOIN emp m ON e.mgrno = m.empno ORDER BY 1`)
	if len(r.Rows) != 7 { // 4 matches + erin unmatched-left + alice,dave unmatched-right
		t.Fatalf("full join rows = %d: %v", len(r.Rows), rowsToStrings(r))
	}
}

func TestJoinWithResidualPredicate(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT e.name FROM emp e JOIN emp m ON e.mgrno = m.empno AND m.sal > 100 ORDER BY e.name`)
	expectRows(t, r, "carol", "dave")
}

func TestNestedLoopJoinInequality(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT COUNT(*) FROM emp a JOIN emp b ON a.sal < b.sal`)
	// pairs: bob<alice, carol<alice, bob<erin, carol<erin, alice<erin -> 5
	expectRows(t, r, "5")
}

func TestAggregation(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT mgrno, COUNT(*), SUM(sal), MIN(sal), MAX(sal), AVG(sal)
	  FROM emp GROUP BY mgrno ORDER BY mgrno`)
	expectRows(t, r,
		"7|1|120.00|120.00|120.00|120.0000",
		"8|1|90.50|90.50|90.50|90.5000",
		"10|2|90.50|90.50|90.50|90.5000",
		"11|1|200.00|200.00|200.00|200.0000",
	)
}

func TestAggregateEmptyInput(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT COUNT(*), SUM(sal), MAX(name) FROM emp WHERE empno > 999")
	expectRows(t, r, "0|NULL|NULL")
}

func TestDistinctAggregate(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT COUNT(DISTINCT sal) FROM emp")
	expectRows(t, r, "3")
}

func TestHaving(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT mgrno FROM emp GROUP BY mgrno HAVING COUNT(*) > 1")
	expectRows(t, r, "10")
}

func TestDistinctRows(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT DISTINCT sal FROM emp ORDER BY sal")
	// NULLs sort low by source-default.
	expectRows(t, r, "NULL", "90.50", "120.00", "200.00")
}

func TestWindowFunctions(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT name, RANK() OVER (ORDER BY sal DESC) AS r,
	         DENSE_RANK() OVER (ORDER BY sal DESC) AS dr,
	         ROW_NUMBER() OVER (ORDER BY sal DESC) AS rn
	  FROM emp WHERE sal IS NOT NULL ORDER BY rn`)
	expectRows(t, r,
		"erin|1|1|1",
		"alice|2|2|2",
		"bob|3|3|3",
		"carol|3|3|4",
	)
}

func TestWindowRunningSum(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT name, SUM(sal) OVER (ORDER BY empno) AS running
	  FROM emp WHERE sal IS NOT NULL ORDER BY empno`)
	expectRows(t, r,
		"alice|120.00",
		"bob|210.50",
		"carol|301.00",
		"erin|501.00",
	)
}

func TestWindowPartitionTotal(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT name, COUNT(*) OVER (PARTITION BY mgrno) AS peers
	  FROM emp ORDER BY empno`)
	expectRows(t, r, "alice|1", "bob|1", "carol|2", "dave|2", "erin|1")
}

func TestOrderByNulls(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT name FROM emp ORDER BY sal DESC NULLS FIRST, name")
	expectRows(t, r, "dave", "erin", "alice", "bob", "carol")
	r = mustQuery(t, s, "SELECT name FROM emp ORDER BY sal NULLS LAST, name")
	expectRows(t, r, "bob", "carol", "alice", "erin", "dave")
}

func TestLimitAndTies(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT name FROM emp WHERE sal IS NOT NULL ORDER BY sal LIMIT 2")
	if len(r.Rows) != 2 {
		t.Fatalf("limit rows = %d", len(r.Rows))
	}
	r = mustQuery(t, s, "SELECT name FROM emp WHERE sal IS NOT NULL ORDER BY sal FETCH FIRST 1 ROWS WITH TIES")
	// bob and carol share sal 90.50.
	if len(r.Rows) != 2 {
		t.Fatalf("ties rows = %v", rowsToStrings(r))
	}
}

func TestSetOperations(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT mgrno FROM emp UNION SELECT empno FROM emp ORDER BY 1")
	if len(r.Rows) != 6 { // 1,7,8,9,10,11
		t.Fatalf("union rows = %v", rowsToStrings(r))
	}
	r = mustQuery(t, s, "SELECT mgrno FROM emp INTERSECT SELECT empno FROM emp ORDER BY 1")
	expectRows(t, r, "7", "8", "10")
	r = mustQuery(t, s, "SELECT empno FROM emp EXCEPT SELECT mgrno FROM emp ORDER BY 1")
	expectRows(t, r, "1", "9")
	r = mustQuery(t, s, "SELECT mgrno FROM emp UNION ALL SELECT empno FROM emp")
	if len(r.Rows) != 10 {
		t.Fatalf("union all rows = %d", len(r.Rows))
	}
}

// The paper's Example 4, executed natively on a recursion-capable target.
func TestRecursiveQueryExample4(t *testing.T) {
	s := fullSession(t)
	mustExec(t, s, "CREATE TABLE hier (empno INT, mgrno INT)")
	mustExec(t, s, "INSERT INTO hier VALUES (1, 7), (7, 8), (8, 10), (9, 10), (10, 11)")
	r := mustQuery(t, s, `
	  WITH RECURSIVE reports (empno, mgrno) AS (
	    SELECT empno, mgrno FROM hier WHERE mgrno = 10
	    UNION ALL
	    SELECT hier.empno, hier.mgrno FROM hier, reports WHERE reports.empno = hier.mgrno
	  )
	  SELECT empno FROM reports ORDER BY empno`)
	expectRows(t, r, "1", "7", "8", "9")
}

func TestRecursionRejectedWithoutCapability(t *testing.T) {
	e := New(dialect.CloudA()) // no CapRecursive
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE hier (empno INT, mgrno INT)")
	_, err := s.ExecSQL(`
	  WITH RECURSIVE r (x, y) AS (
	    SELECT empno, mgrno FROM hier WHERE mgrno = 10
	    UNION ALL SELECT hier.empno, hier.mgrno FROM hier, r WHERE r.x = hier.mgrno
	  ) SELECT x FROM r`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("err = %v", err)
	}
}

func TestVectorSubqueryCapability(t *testing.T) {
	// Capable engine executes the paper's lexicographic semantics.
	s := fullSession(t)
	mustExec(t, s, "CREATE TABLE pairs (a INT, b INT)")
	mustExec(t, s, "INSERT INTO pairs VALUES (5, 5)")
	r := mustQuery(t, s, "SELECT COUNT(*) FROM emp WHERE (empno, mgrno) > ANY (SELECT a, b FROM pairs)")
	// (empno,mgrno) > (5,5): (7,8),(8,10),(9,10),(10,11) -> 4
	expectRows(t, r, "4")
	// Tie-break on the second component.
	mustExec(t, s, "DELETE FROM pairs")
	mustExec(t, s, "INSERT INTO pairs VALUES (7, 9)")
	r = mustQuery(t, s, "SELECT COUNT(*) FROM emp WHERE (empno, mgrno) > ANY (SELECT a, b FROM pairs)")
	// strictly above (7,9): (8,10),(9,10),(10,11); (7,8) < (7,9) -> 3
	expectRows(t, r, "3")

	// Incapable target rejects.
	e := New(dialect.CloudB())
	s2 := e.NewSession()
	mustExec(t, s2, "CREATE TABLE t (a INT, b INT)")
	_, err := s2.ExecSQL("SELECT * FROM t WHERE (a, b) > ANY (SELECT a, b FROM t)")
	if err == nil || !strings.Contains(err.Error(), "vector") {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupingSetsCapability(t *testing.T) {
	// CloudB supports grouping sets natively.
	e := New(dialect.CloudB())
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE sal (region VARCHAR(5), prod VARCHAR(5), amt INT)")
	mustExec(t, s, "INSERT INTO sal VALUES ('e','x',1), ('e','y',2), ('w','x',4)")
	r := mustQuery(t, s, "SELECT region, SUM(amt) FROM sal GROUP BY ROLLUP(region) ORDER BY 2")
	expectRows(t, r, "e|3", "w|4", "NULL|7")
	// CloudA does not.
	e2 := New(dialect.CloudA())
	s2 := e2.NewSession()
	mustExec(t, s2, "CREATE TABLE sal (region VARCHAR(5), amt INT)")
	_, err := s2.ExecSQL("SELECT region, SUM(amt) FROM sal GROUP BY ROLLUP(region)")
	if err == nil || !strings.Contains(err.Error(), "GROUPING") {
		t.Fatalf("err = %v", err)
	}
}

func TestCorrelatedSubqueries(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT name FROM emp e
	  WHERE EXISTS (SELECT 1 FROM emp m WHERE m.empno = e.mgrno AND m.sal > 100)
	  ORDER BY name`)
	expectRows(t, r, "carol", "dave")
	r = mustQuery(t, s, `
	  SELECT name, (SELECT COUNT(*) FROM emp sub WHERE sub.mgrno = e.empno) AS reports
	  FROM emp e ORDER BY empno`)
	expectRows(t, r, "alice|0", "bob|1", "carol|1", "dave|0", "erin|2")
}

func TestInSubqueryAndValues(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT name FROM emp WHERE empno IN (SELECT mgrno FROM emp) ORDER BY name")
	expectRows(t, r, "bob", "carol", "erin")
	r = mustQuery(t, s, "SELECT name FROM emp WHERE empno NOT IN (1, 7, 8) ORDER BY empno")
	expectRows(t, r, "dave", "erin")
	// NOT IN with NULL in the list yields no rows for non-matching values.
	r = mustQuery(t, s, "SELECT COUNT(*) FROM emp WHERE empno NOT IN (1, NULL)")
	expectRows(t, r, "0")
}

func TestQuantifiedAll(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT name FROM emp WHERE sal >= ALL (SELECT sal FROM emp WHERE sal IS NOT NULL)")
	expectRows(t, r, "erin")
}

func TestLikeMatching(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT name FROM emp WHERE name LIKE 'a%' OR name LIKE '_ob' ORDER BY name")
	expectRows(t, r, "alice", "bob")
	r = mustQuery(t, s, "SELECT name FROM emp WHERE name NOT LIKE '%a%' ORDER BY name")
	expectRows(t, r, "bob", "erin")
	r = mustQuery(t, s, "SELECT COUNT(*) FROM emp WHERE name LIKE '%'")
	expectRows(t, r, "5")
}

func TestStringFunctions(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT UPPER(name), CHAR_LENGTH(name), SUBSTR(name, 2, 3), POSITION('li', name)
	  FROM emp WHERE empno = 1`)
	expectRows(t, r, "ALICE|5|lic|2")
}

func TestDateFunctions(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT EXTRACT(YEAR FROM hired), EXTRACT(MONTH FROM hired), hired + 30, ADD_MONTHS(hired, 2)
	  FROM emp WHERE empno = 1`)
	expectRows(t, r, "2014|1|2014-02-01|2014-03-02")
}

func TestCaseExpression(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT name, CASE WHEN sal > 100 THEN 'high' WHEN sal IS NULL THEN 'unknown' ELSE 'low' END
	  FROM emp ORDER BY empno`)
	expectRows(t, r, "alice|high", "bob|low", "carol|low", "dave|unknown", "erin|high")
}

func TestCoalesceNullif(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT COALESCE(sal, 0), NULLIF(empno, 1) FROM emp WHERE empno = 1")
	expectRows(t, r, "120.00|NULL")
}

func TestUpdateDelete(t *testing.T) {
	s := fullSession(t)
	rs := mustExec(t, s, "UPDATE emp SET sal = sal * 2 WHERE empno = 1")
	if rs[0].RowsAffected != 1 {
		t.Fatalf("update affected = %d", rs[0].RowsAffected)
	}
	r := mustQuery(t, s, "SELECT sal FROM emp WHERE empno = 1")
	expectRows(t, r, "240.00")
	rs = mustExec(t, s, "DELETE FROM emp WHERE sal IS NULL")
	if rs[0].RowsAffected != 1 {
		t.Fatalf("delete affected = %d", rs[0].RowsAffected)
	}
	r = mustQuery(t, s, "SELECT COUNT(*) FROM emp")
	expectRows(t, r, "4")
}

func TestUpdateWithCorrelatedSubquery(t *testing.T) {
	s := fullSession(t)
	mustExec(t, s, `
	  UPDATE emp SET sal = (SELECT MAX(sal) FROM emp m WHERE m.mgrno = emp.mgrno)
	  WHERE EXISTS (SELECT 1 FROM emp m WHERE m.mgrno = emp.mgrno AND m.sal IS NOT NULL)`)
	r := mustQuery(t, s, "SELECT name, sal FROM emp WHERE mgrno = 10 ORDER BY name")
	expectRows(t, r, "carol|90.50", "dave|90.50")
}

func TestNotNullEnforcement(t *testing.T) {
	e := New(dialect.TeradataProfile())
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE nn (a INT NOT NULL, b INT)")
	if _, err := s.ExecSQL("INSERT INTO nn (b) VALUES (1)"); err == nil {
		t.Fatal("NULL accepted in NOT NULL column")
	}
	if _, err := s.ExecSQL("INSERT INTO nn VALUES (NULL, 1)"); err == nil {
		t.Fatal("explicit NULL accepted in NOT NULL column")
	}
	mustExec(t, s, "INSERT INTO nn VALUES (1, NULL)")
}

func TestDefaults(t *testing.T) {
	e := New(dialect.TeradataProfile())
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE d (a INT, b VARCHAR(10) DEFAULT 'none', c INT DEFAULT 7)")
	mustExec(t, s, "INSERT INTO d (a) VALUES (1)")
	r := mustQuery(t, s, "SELECT a, b, c FROM d")
	expectRows(t, r, "1|none|7")
}

func TestTemporaryTablesSessionScoped(t *testing.T) {
	e := New(dialect.TeradataProfile())
	s1 := e.NewSession()
	s2 := e.NewSession()
	mustExec(t, s1, "CREATE TEMP TABLE scratch (x INT)")
	mustExec(t, s1, "INSERT INTO scratch VALUES (1), (2)")
	r := mustQuery(t, s1, "SELECT COUNT(*) FROM scratch")
	expectRows(t, r, "2")
	if _, err := s2.ExecSQL("SELECT * FROM scratch"); err == nil {
		t.Fatal("temp table visible in other session")
	}
	mustExec(t, s1, "DROP TABLE scratch")
	if _, err := s1.ExecSQL("SELECT * FROM scratch"); err == nil {
		t.Fatal("temp table survived drop")
	}
}

func TestCTAS(t *testing.T) {
	s := fullSession(t)
	rs := mustExec(t, s, "CREATE TABLE rich AS (SELECT name, sal FROM emp WHERE sal > 100) WITH DATA")
	if rs[0].RowsAffected != 2 {
		t.Fatalf("ctas rows = %d", rs[0].RowsAffected)
	}
	r := mustQuery(t, s, "SELECT COUNT(*) FROM rich")
	expectRows(t, r, "2")
}

func TestViews(t *testing.T) {
	s := fullSession(t)
	mustExec(t, s, "CREATE VIEW seniors AS SELECT name, sal FROM emp WHERE sal > 100")
	r := mustQuery(t, s, "SELECT name FROM seniors ORDER BY name")
	expectRows(t, r, "alice", "erin")
	mustExec(t, s, "DROP VIEW seniors")
	if _, err := s.ExecSQL("SELECT * FROM seniors"); err == nil {
		t.Fatal("view survived drop")
	}
}

func TestCastsAndArithmetic(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT CAST(sal AS INTEGER), CAST(empno AS VARCHAR(5)), sal / 2 FROM emp WHERE empno = 1")
	expectRows(t, r, "120|1|60.0000")
	if _, err := s.ExecSQL("SELECT CAST(name AS INTEGER) FROM emp"); err == nil {
		t.Fatal("bad cast accepted")
	}
}

func TestDivisionByZeroError(t *testing.T) {
	s := fullSession(t)
	if _, err := s.ExecSQL("SELECT empno / 0 FROM emp"); err == nil {
		t.Fatal("division by zero not surfaced")
	}
}

func TestScalarSubqueryCardinalityError(t *testing.T) {
	s := fullSession(t)
	if _, err := s.ExecSQL("SELECT (SELECT empno FROM emp) FROM emp"); err == nil {
		t.Fatal("multi-row scalar subquery accepted")
	}
}

func TestDerivedTables(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, `
	  SELECT big.name FROM (SELECT name, sal FROM emp WHERE sal > 100) AS big (name, salary)
	  WHERE big.salary < 150`)
	expectRows(t, r, "alice")
}

func TestInsertSelect(t *testing.T) {
	s := fullSession(t)
	mustExec(t, s, "CREATE TABLE arch (name VARCHAR(20), sal DECIMAL(10,2))")
	rs := mustExec(t, s, "INSERT INTO arch SELECT name, sal FROM emp WHERE sal IS NOT NULL")
	if rs[0].RowsAffected != 4 {
		t.Fatalf("insert-select rows = %d", rs[0].RowsAffected)
	}
}

func TestTxnNoOps(t *testing.T) {
	s := fullSession(t)
	rs := mustExec(t, s, "BEGIN; COMMIT; ROLLBACK;")
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
}

func TestConcurrentSessions(t *testing.T) {
	e := New(dialect.TeradataProfile())
	setup := e.NewSession()
	mustExec(t, setup, "CREATE TABLE c (x INT)")
	mustExec(t, setup, "INSERT INTO c VALUES (1), (2), (3)")
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			s := e.NewSession()
			for j := 0; j < 50; j++ {
				if _, err := s.ExecSQL("SELECT SUM(x) FROM c"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDateCastFromTeradataInt(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT CAST(1140101 AS DATE)")
	expectRows(t, r, "2014-01-01")
}

func TestConcatOperator(t *testing.T) {
	s := fullSession(t)
	r := mustQuery(t, s, "SELECT name || '-' || CAST(empno AS VARCHAR(5)) FROM emp WHERE empno = 1")
	expectRows(t, r, "alice-1")
}

func TestBulkInsertRows(t *testing.T) {
	e := New(dialect.TeradataProfile())
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE bulk (a INT, b VARCHAR(5))")
	rows := [][]types.Datum{
		{types.NewInt(1), types.NewString("x")},
		{types.NewInt(2), types.NewString("y")},
	}
	if err := s.InsertRows("bulk", rows); err != nil {
		t.Fatal(err)
	}
	n, err := s.RowCount("bulk")
	if err != nil || n != 2 {
		t.Fatalf("count = %d, %v", n, err)
	}
	if err := s.InsertRows("bulk", [][]types.Datum{{types.NewInt(1)}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
