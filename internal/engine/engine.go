// Package engine implements the cloud data warehouse substrate: an
// in-memory analytical SQL engine that executes XTRA plans. It stands in for
// the paper's backend systems (§7 provisions "one of the leading cloud
// databases"): the gateway connects to it over a wire protocol, sends the
// serialized SQL-B text, and receives typed result sets.
//
// The engine enforces the capability profile of the cloud target it models —
// constructs outside the profile are rejected exactly as the real system
// would reject them, which is what makes Hyper-Q's rewrites observable
// end-to-end.
package engine

import (
	"fmt"
	"strings"
	"sync"

	"hyperq/internal/catalog"
	"hyperq/internal/dialect"
	"hyperq/internal/parser"
	"hyperq/internal/types"
	"hyperq/internal/xtra"

	"hyperq/internal/binder"
)

// tableData holds the rows of one table. Rows are immutable once stored;
// updates replace whole row slices.
type tableData struct {
	rows [][]types.Datum
}

// Engine is one database instance.
type Engine struct {
	// mu guards the data map and row slices; held only for brief snapshot
	// and swap operations, never across expression evaluation.
	mu sync.RWMutex
	// dmlMu serializes whole UPDATE/DELETE statements against shared tables
	// so their read-compute-swap cycle is atomic with respect to other DML.
	dmlMu   sync.Mutex
	cat     *catalog.Catalog
	data    map[string]*tableData
	profile *dialect.Profile
	// noOptimize disables the pre-execution plan rewrites (predicate
	// pushdown); used by the ablation benchmarks only.
	noOptimize bool
}

// SetOptimizerEnabled toggles the engine-side plan rewrites (ablation knob).
func (e *Engine) SetOptimizerEnabled(on bool) { e.noOptimize = !on }

// New creates an empty engine modeling the given target profile.
func New(profile *dialect.Profile) *Engine {
	return &Engine{
		cat:     catalog.New(),
		data:    map[string]*tableData{},
		profile: profile,
	}
}

// Catalog exposes the shared catalog (for test setup and HELP emulation).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Profile returns the modeled capability profile.
func (e *Engine) Profile() *dialect.Profile { return e.profile }

// Session is one client connection's state: session-scoped temporary tables
// overlaying the shared catalog.
type Session struct {
	eng      *Engine
	mu       sync.Mutex
	tempCat  *catalog.Catalog
	tempData map[string]*tableData
	user     string
}

// NewSession opens a session.
func (e *Engine) NewSession() *Session {
	return &Session{
		eng:      e,
		tempCat:  catalog.New(),
		tempData: map[string]*tableData{},
		user:     "dbadmin",
	}
}

// SetUser records the authenticated user (reported by USER()).
func (s *Session) SetUser(u string) { s.user = u }

// Table implements binder.Resolver with session-temporary overlay.
func (s *Session) Table(name string) (*catalog.Table, bool) {
	if t, ok := s.tempCat.Table(name); ok {
		return t, true
	}
	return s.eng.cat.Table(name)
}

// View implements binder.Resolver.
func (s *Session) View(name string) (*catalog.View, bool) {
	return s.eng.cat.View(name)
}

var _ binder.Resolver = (*Session)(nil)

// Result is the outcome of one statement.
type Result struct {
	// Cols describe the result set columns; nil for non-SELECT statements.
	Cols []xtra.Col
	// Rows hold the result data.
	Rows [][]types.Datum
	// RowsAffected is the DML activity count.
	RowsAffected int64
	// Command tags the statement kind, e.g. "SELECT", "INSERT", "CREATE TABLE".
	Command string
}

// ExecSQL parses (ANSI dialect), binds, capability-checks and executes a
// SQL script, returning one result per statement. On error, statements
// before the failing one have already taken effect (auto-commit per
// statement, like the modeled cloud targets).
func (s *Session) ExecSQL(sql string) ([]*Result, error) {
	stmts, err := parser.Parse(sql, parser.ANSI, nil)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, stmt := range stmts {
		b := binder.New(s, parser.ANSI, nil)
		bound, err := b.Bind(stmt)
		if err != nil {
			return nil, err
		}
		res, err := s.ExecPlan(bound)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// QuerySQL executes a single-statement query and returns its result.
func (s *Session) QuerySQL(sql string) (*Result, error) {
	rs, err := s.ExecSQL(sql)
	if err != nil {
		return nil, err
	}
	if len(rs) != 1 {
		return nil, fmt.Errorf("engine: expected one statement, got %d", len(rs))
	}
	return rs[0], nil
}

// ExecPlan executes a bound statement (used in-process by tests and the
// benchmark harness; the wire path goes through ExecSQL).
func (s *Session) ExecPlan(stmt xtra.Statement) (*Result, error) {
	if err := s.checkCapabilities(stmt); err != nil {
		return nil, err
	}
	ex := &executor{sess: s, work: map[int][][]types.Datum{}}
	switch t := stmt.(type) {
	case *xtra.Query:
		// Performance transformation (§4.3): push filter conjuncts below
		// joins so comma-join trees execute as hash equijoins.
		if !s.eng.noOptimize {
			optimized, err := optimizeQuery(t)
			if err != nil {
				return nil, err
			}
			t = optimized
		}
		rs, err := ex.exec(t.Root, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: rs.cols, Rows: rs.rows, RowsAffected: int64(len(rs.rows)), Command: "SELECT"}, nil
	case *xtra.Insert:
		return s.execInsert(ex, t)
	case *xtra.Update:
		return s.execUpdate(ex, t)
	case *xtra.Delete:
		return s.execDelete(ex, t)
	case *xtra.CreateTable:
		return s.execCreateTable(ex, t)
	case *xtra.DropTable:
		return s.execDropTable(t)
	case *xtra.CreateView:
		return s.execCreateView(t)
	case *xtra.DropView:
		if err := s.eng.cat.DropView(t.Name); err != nil {
			return nil, err
		}
		return &Result{Command: "DROP VIEW"}, nil
	case *xtra.Txn:
		// Requests auto-commit; transaction control succeeds as a no-op.
		return &Result{Command: t.Kind}, nil
	case *xtra.NoOp:
		return &Result{Command: "OK"}, nil
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// checkCapabilities rejects plan constructs outside the modeled target's
// capability profile, mirroring the feature gaps of Figure 2.
func (s *Session) checkCapabilities(stmt xtra.Statement) error {
	p := s.eng.profile
	var err error
	check := func(op xtra.Op) bool {
		switch o := op.(type) {
		case *xtra.RecursiveUnion:
			if !p.Supports(dialect.CapRecursive) {
				err = fmt.Errorf("engine(%s): recursive queries are not supported", p.Name)
				return false
			}
		case *xtra.Agg:
			if o.GroupingSets != nil && !p.Supports(dialect.CapGroupingSets) {
				err = fmt.Errorf("engine(%s): ROLLUP/CUBE/GROUPING SETS are not supported", p.Name)
				return false
			}
		}
		for _, sc := range op.Scalars() {
			xtra.WalkScalar(sc, func(x xtra.Scalar) bool {
				switch q := x.(type) {
				case *xtra.SubqueryCmp:
					if len(q.Left) > 1 && !p.Supports(dialect.CapVectorSubquery) {
						err = fmt.Errorf("engine(%s): vector comparison in subquery is not supported", p.Name)
						return false
					}
				case *xtra.ArithExpr:
					if q.T.Kind == types.KindDate && !p.Supports(dialect.CapDateArith) {
						lk, rk := q.L.Type().Kind, q.R.Type().Kind
						if (lk == types.KindDate) != (rk == types.KindDate) {
							err = fmt.Errorf("engine(%s): date +/- integer arithmetic is not supported", p.Name)
							return false
						}
					}
				}
				return true
			})
			if err != nil {
				return false
			}
		}
		return true
	}
	var roots []xtra.Op
	switch t := stmt.(type) {
	case *xtra.Query:
		roots = append(roots, t.Root)
	case *xtra.Insert:
		roots = append(roots, t.Input)
	case *xtra.Update:
		for _, a := range t.Assigns {
			roots = append(roots, xtra.SubOps(a.Expr)...)
		}
		if t.Pred != nil {
			roots = append(roots, xtra.SubOps(t.Pred)...)
		}
	case *xtra.Delete:
		if t.Pred != nil {
			roots = append(roots, xtra.SubOps(t.Pred)...)
		}
	case *xtra.CreateTable:
		if t.Def.Kind == catalog.KindGlobalTemporary && !p.Supports(dialect.CapGlobalTempTables) {
			return fmt.Errorf("engine(%s): global temporary tables are not supported", p.Name)
		}
		if t.Def.Set && !p.Supports(dialect.CapSetTables) {
			return fmt.Errorf("engine(%s): SET tables are not supported", p.Name)
		}
		if t.Input != nil {
			roots = append(roots, t.Input)
		}
	}
	for _, r := range roots {
		xtra.WalkOps(r, check)
		if err != nil {
			return err
		}
	}
	return err
}

// lookupData resolves table contents, session temporaries first.
func (s *Session) lookupData(name string) (*tableData, *catalog.Table, bool, error) {
	key := strings.ToUpper(name)
	if t, ok := s.tempCat.Table(name); ok {
		return s.tempData[key], t, true, nil
	}
	if t, ok := s.eng.cat.Table(name); ok {
		s.eng.mu.Lock()
		td, ok := s.eng.data[key]
		if !ok {
			td = &tableData{}
			s.eng.data[key] = td
		}
		s.eng.mu.Unlock()
		return td, t, false, nil
	}
	return nil, nil, false, fmt.Errorf("engine: table %s does not exist", name)
}

// snapshotRows returns a stable view of a table's rows.
func (s *Session) snapshotRows(name string) ([][]types.Datum, error) {
	td, _, temp, err := s.lookupData(name)
	if err != nil {
		return nil, err
	}
	if temp {
		s.mu.Lock()
		defer s.mu.Unlock()
		return td.rows, nil
	}
	s.eng.mu.RLock()
	defer s.eng.mu.RUnlock()
	return td.rows, nil
}

// RowCount reports the number of rows in a table (test/bench helper).
func (s *Session) RowCount(name string) (int, error) {
	rows, err := s.snapshotRows(name)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// InsertRows bulk-loads pre-built rows (used by workload generators to load
// data without going through the SQL layer).
func (s *Session) InsertRows(name string, rows [][]types.Datum) error {
	td, tbl, temp, err := s.lookupData(name)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if len(r) != len(tbl.Columns) {
			return fmt.Errorf("engine: row arity %d != %d for table %s", len(r), len(tbl.Columns), name)
		}
	}
	if temp {
		s.mu.Lock()
		td.rows = append(td.rows, rows...)
		s.mu.Unlock()
		return nil
	}
	s.eng.mu.Lock()
	td.rows = append(td.rows, rows...)
	s.eng.mu.Unlock()
	return nil
}
