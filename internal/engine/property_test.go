package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hyperq/internal/dialect"
	"hyperq/internal/types"
)

// randomSession loads two small tables with seeded random data.
func randomSession(t *testing.T, seed int64, rows int) *Session {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := New(dialect.TeradataProfile())
	s := e.NewSession()
	mustExec(t, s, "CREATE TABLE p (k INT, v INT, s VARCHAR(8))")
	mustExec(t, s, "CREATE TABLE q (k INT, w INT)")
	var pRows, qRows [][]types.Datum
	words := []string{"ant", "bee", "cat", "dog", "elk"}
	for i := 0; i < rows; i++ {
		v := types.NewInt(int64(rng.Intn(50)))
		if rng.Intn(10) == 0 {
			v = types.NewNull(types.KindInt)
		}
		pRows = append(pRows, []types.Datum{
			types.NewInt(int64(rng.Intn(20))), v, types.NewString(words[rng.Intn(len(words))]),
		})
		qRows = append(qRows, []types.Datum{
			types.NewInt(int64(rng.Intn(20))), types.NewInt(int64(rng.Intn(100))),
		})
	}
	if err := s.InsertRows("p", pRows); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertRows("q", qRows); err != nil {
		t.Fatal(err)
	}
	return s
}

func resultKeyMultiset(r *Result) []string {
	out := rowsToStrings(r)
	sort.Strings(out)
	return out
}

// Property: the predicate-pushdown optimizer never changes query results.
func TestOptimizerEquivalenceProperty(t *testing.T) {
	queries := []string{
		"SELECT p.k, q.w FROM p, q WHERE p.k = q.k AND p.v > 10",
		"SELECT COUNT(*) FROM p, q WHERE p.k = q.k AND q.w < 50 AND p.s LIKE 'c%'",
		"SELECT p.s, SUM(q.w) FROM p, q WHERE p.k = q.k GROUP BY p.s",
		"SELECT p.k FROM p LEFT JOIN q ON p.k = q.k WHERE p.v > 5",
		"SELECT p.k FROM p, q WHERE p.k = q.k AND (p.v > 40 OR p.v < 5) AND q.w > 10",
		"SELECT DISTINCT p.k FROM p, q WHERE p.k = q.k AND EXISTS (SELECT 1 FROM q q2 WHERE q2.k = p.k AND q2.w > 90)",
	}
	for seed := int64(1); seed <= 5; seed++ {
		for _, q := range queries {
			s1 := randomSession(t, seed, 120)
			s1.eng.SetOptimizerEnabled(true)
			r1, err := s1.QuerySQL(q)
			if err != nil {
				t.Fatalf("seed %d optimized %q: %v", seed, q, err)
			}
			s2 := randomSession(t, seed, 120)
			s2.eng.SetOptimizerEnabled(false)
			r2, err := s2.QuerySQL(q)
			if err != nil {
				t.Fatalf("seed %d unoptimized %q: %v", seed, q, err)
			}
			a, b := resultKeyMultiset(r1), resultKeyMultiset(r2)
			if strings.Join(a, "\n") != strings.Join(b, "\n") {
				t.Fatalf("seed %d: optimizer changed results of %q:\n%v\nvs\n%v", seed, q, a, b)
			}
		}
	}
}

// Property: ORDER BY yields a sorted permutation of the unsorted result.
func TestSortIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSession(t, seed%1000, 60)
		sorted, err := s.QuerySQL("SELECT v FROM p ORDER BY v NULLS FIRST")
		if err != nil {
			return false
		}
		unsorted, err := s.QuerySQL("SELECT v FROM p")
		if err != nil {
			return false
		}
		// Permutation check.
		a, b := resultKeyMultiset(sorted), resultKeyMultiset(unsorted)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// Sortedness check (NULLs first, then ascending).
		rows := sorted.Rows
		for i := 1; i < len(rows); i++ {
			prev, cur := rows[i-1][0], rows[i][0]
			if prev.Null {
				continue
			}
			if cur.Null {
				return false // NULL after non-NULL
			}
			if c, _ := types.Compare(prev, cur); c > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: UNION ALL cardinality is the sum; UNION is deduplicated and a
// subset of UNION ALL.
func TestSetOpCardinalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSession(t, seed%1000, 40)
		all, err := s.QuerySQL("SELECT k FROM p UNION ALL SELECT k FROM q")
		if err != nil {
			return false
		}
		dedup, err := s.QuerySQL("SELECT k FROM p UNION SELECT k FROM q")
		if err != nil {
			return false
		}
		if len(all.Rows) != 80 {
			return false
		}
		seen := map[string]bool{}
		for _, row := range dedup.Rows {
			k := row[0].HashKey()
			if seen[k] {
				return false // duplicate survived UNION
			}
			seen[k] = true
		}
		return len(dedup.Rows) <= len(all.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: LIMIT n returns at most n rows and a prefix of the ordered
// result.
func TestLimitPrefixProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		s := randomSession(t, seed%1000, 50)
		full, err := s.QuerySQL("SELECT k, v FROM p ORDER BY k, v NULLS FIRST, s")
		if err != nil {
			return false
		}
		limited, err := s.QuerySQL(fmt.Sprintf("SELECT k, v FROM p ORDER BY k, v NULLS FIRST, s LIMIT %d", n))
		if err != nil {
			return false
		}
		if len(limited.Rows) > n {
			return false
		}
		for i, row := range limited.Rows {
			for j := range row {
				if row[j].String() != full.Rows[i][j].String() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: GROUP BY k partitions the rows — the group counts sum to the
// table cardinality.
func TestGroupCountSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSession(t, seed%1000, 70)
		grouped, err := s.QuerySQL("SELECT k, COUNT(*) FROM p GROUP BY k")
		if err != nil {
			return false
		}
		var sum int64
		for _, row := range grouped.Rows {
			sum += row[1].I
		}
		return sum == 70
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a windowed running COUNT over the whole relation ends at the
// relation's cardinality on every ordering.
func TestWindowRunningCountProperty(t *testing.T) {
	s := randomSession(t, 7, 40)
	r, err := s.QuerySQL("SELECT COUNT(*) OVER (ORDER BY k, v NULLS FIRST, s) AS c FROM p ORDER BY c DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 40 {
		t.Fatalf("running count max = %v", r.Rows[0][0])
	}
}
