package engine

import (
	"hyperq/internal/transform"
	"hyperq/internal/xtra"
)

// optimizeQuery applies the engine-side performance transformations before
// execution: predicate pushdown turns comma-style join trees (cross join
// plus a filter above) into hashable equijoins.
func optimizeQuery(q *xtra.Query) (*xtra.Query, error) {
	c := transform.NewContext(nil, nil, 1<<30)
	out, err := transform.Pushdown().Statement(q, c)
	if err != nil {
		return nil, err
	}
	return out.(*xtra.Query), nil
}
