package engine

import (
	"fmt"
	"sort"

	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// rowset is a materialized relation: positional rows plus a ColumnID layout.
type rowset struct {
	cols   []xtra.Col
	layout map[xtra.ColumnID]int
	rows   [][]types.Datum
}

func newRowset(cols []xtra.Col) *rowset {
	l := make(map[xtra.ColumnID]int, len(cols))
	for i, c := range cols {
		l[c.ID] = i
	}
	return &rowset{cols: cols, layout: l}
}

// env resolves ColumnIDs to values for the current row, chaining to outer
// query rows for correlated subqueries.
type env struct {
	rs     *rowset
	row    []types.Datum
	parent *env
}

func (e *env) lookup(id xtra.ColumnID) (types.Datum, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.rs != nil {
			if idx, ok := cur.rs.layout[id]; ok {
				return cur.row[idx], true
			}
		}
	}
	return types.Datum{}, false
}

// maxRecursion bounds RecursiveUnion iterations.
const maxRecursion = 100000

// executor evaluates operator trees. One executor serves one statement.
type executor struct {
	sess *Session
	// work maps RecursiveUnion WorkIDs to the current iteration's rows.
	work map[int][][]types.Datum
	// subqCache memoizes results of uncorrelated subquery inputs so an IN
	// or EXISTS over a constant subquery executes once, not per outer row.
	subqCache map[xtra.Op]*rowset
	// uncorr caches the correlation analysis per subquery op.
	uncorr map[xtra.Op]bool
}

// execSubquery evaluates a subquery input, memoizing uncorrelated ones.
func (ex *executor) execSubquery(op xtra.Op, outer *env) (*rowset, error) {
	if ex.subqCache == nil {
		ex.subqCache = map[xtra.Op]*rowset{}
		ex.uncorr = map[xtra.Op]bool{}
	}
	if rs, ok := ex.subqCache[op]; ok {
		return rs, nil
	}
	u, ok := ex.uncorr[op]
	if !ok {
		// WorkScans inside recursive branches read loop state and must not
		// be cached even when uncorrelated.
		hasWork := false
		xtra.WalkOps(op, func(o xtra.Op) bool {
			if _, w := o.(*xtra.WorkScan); w {
				hasWork = true
				return false
			}
			return true
		})
		u = !hasWork && len(xtra.FreeRefsOfOp(op)) == 0
		ex.uncorr[op] = u
	}
	rs, err := ex.exec(op, outer)
	if err != nil {
		return nil, err
	}
	if u {
		ex.subqCache[op] = rs
	}
	return rs, nil
}

func (ex *executor) exec(op xtra.Op, outer *env) (*rowset, error) {
	switch o := op.(type) {
	case *xtra.Get:
		rows, err := ex.sess.snapshotRows(o.Table)
		if err != nil {
			return nil, err
		}
		rs := newRowset(o.Cols)
		rs.rows = rows
		return rs, nil
	case *xtra.WorkScan:
		rs := newRowset(o.Cols)
		rs.rows = ex.work[o.WorkID]
		return rs, nil
	case *xtra.Select:
		return ex.execSelect(o, outer)
	case *xtra.Project:
		return ex.execProject(o, outer)
	case *xtra.Join:
		return ex.execJoin(o, outer)
	case *xtra.Agg:
		return ex.execAgg(o, outer)
	case *xtra.Window:
		return ex.execWindow(o, outer)
	case *xtra.Sort:
		return ex.execSort(o, outer)
	case *xtra.Limit:
		return ex.execLimit(o, outer)
	case *xtra.SetOp:
		return ex.execSetOp(o, outer)
	case *xtra.Values:
		return ex.execValues(o, outer)
	case *xtra.RecursiveUnion:
		return ex.execRecursive(o, outer)
	}
	return nil, fmt.Errorf("engine: unsupported operator %T", op)
}

func (ex *executor) execSelect(o *xtra.Select, outer *env) (*rowset, error) {
	in, err := ex.exec(o.Input, outer)
	if err != nil {
		return nil, err
	}
	out := newRowset(in.cols)
	e := &env{rs: in, parent: outer}
	for _, row := range in.rows {
		e.row = row
		d, err := ex.eval(o.Pred, e)
		if err != nil {
			return nil, err
		}
		if d.Bool() {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func (ex *executor) execProject(o *xtra.Project, outer *env) (*rowset, error) {
	in, err := ex.exec(o.Input, outer)
	if err != nil {
		return nil, err
	}
	out := newRowset(o.Columns())
	e := &env{rs: in, parent: outer}
	for _, row := range in.rows {
		e.row = row
		nr := make([]types.Datum, len(o.Exprs))
		for i, ns := range o.Exprs {
			d, err := ex.eval(ns.Expr, e)
			if err != nil {
				return nil, err
			}
			nr[i] = d
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

func (ex *executor) execValues(o *xtra.Values, outer *env) (*rowset, error) {
	out := newRowset(o.Cols)
	e := &env{parent: outer}
	for _, row := range o.Rows {
		nr := make([]types.Datum, len(row))
		for i, s := range row {
			d, err := ex.eval(s, e)
			if err != nil {
				return nil, err
			}
			nr[i] = d
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

// equiKey describes one equijoin conjunct usable for hashing.
type equiKey struct {
	l, r xtra.Scalar // l evaluates over the left side, r over the right
}

// splitJoinPred extracts hashable equality conjuncts from the join predicate
// and returns the residual conjuncts.
func splitJoinPred(pred xtra.Scalar, l, r *rowset) (keys []equiKey, residual []xtra.Scalar) {
	var conjuncts []xtra.Scalar
	if be, ok := pred.(*xtra.BoolExpr); ok && be.Op == xtra.BoolAnd {
		conjuncts = be.Args
	} else if pred != nil {
		conjuncts = []xtra.Scalar{pred}
	}
	sideOf := func(s xtra.Scalar) int {
		// 0 unknown/mixed, 1 left-only, 2 right-only
		refs := xtra.ColRefsIn(s)
		if len(refs) == 0 {
			return 0
		}
		left, right := false, false
		for id := range refs {
			switch {
			case hasID(l, id):
				left = true
			case hasID(r, id):
				right = true
			default:
				return 0 // correlated or unknown: not hashable
			}
		}
		switch {
		case left && !right:
			return 1
		case right && !left:
			return 2
		}
		return 0
	}
	for _, c := range conjuncts {
		if cmp, ok := c.(*xtra.CompExpr); ok && cmp.Op == xtra.CmpEQ {
			ls, rs := sideOf(cmp.L), sideOf(cmp.R)
			switch {
			case ls == 1 && rs == 2:
				keys = append(keys, equiKey{l: cmp.L, r: cmp.R})
				continue
			case ls == 2 && rs == 1:
				keys = append(keys, equiKey{l: cmp.R, r: cmp.L})
				continue
			}
		}
		residual = append(residual, c)
	}
	return keys, residual
}

func hasID(rs *rowset, id xtra.ColumnID) bool {
	_, ok := rs.layout[id]
	return ok
}

func (ex *executor) execJoin(o *xtra.Join, outer *env) (*rowset, error) {
	// RIGHT join executes as a flipped LEFT join with column reordering.
	if o.Kind == xtra.JoinRight {
		flipped := &xtra.Join{Kind: xtra.JoinLeft, L: o.R, R: o.L, Pred: o.Pred}
		rs, err := ex.execJoin(flipped, outer)
		if err != nil {
			return nil, err
		}
		out := newRowset(o.Columns())
		nl := len(o.L.Columns())
		nr := len(o.R.Columns())
		for _, row := range rs.rows {
			nrow := make([]types.Datum, 0, nl+nr)
			nrow = append(nrow, row[nr:]...)
			nrow = append(nrow, row[:nr]...)
			out.rows = append(out.rows, nrow)
		}
		return out, nil
	}
	l, err := ex.exec(o.L, outer)
	if err != nil {
		return nil, err
	}
	r, err := ex.exec(o.R, outer)
	if err != nil {
		return nil, err
	}
	out := newRowset(o.Columns())
	nullsR := nullRow(o.R.Columns())
	nullsL := nullRow(o.L.Columns())

	keys, residual := splitJoinPred(o.Pred, l, r)
	resPred := xtra.MakeAnd(residual...)
	matchedR := make([]bool, len(r.rows))

	emit := func(lr, rr []types.Datum) {
		nrow := make([]types.Datum, 0, len(lr)+len(rr))
		nrow = append(nrow, lr...)
		nrow = append(nrow, rr...)
		out.rows = append(out.rows, nrow)
	}

	if len(keys) > 0 {
		// Hash join: build on the right side. Keys are hashed into a reused
		// buffer; the build side maps key bytes to a dense bucket index so
		// probes (map lookups via string([]byte)) never allocate.
		keyIdx := make(map[string]int, len(r.rows))
		var buckets [][]int
		var kb []byte
		re := &env{rs: r, parent: outer}
		for i, rr := range r.rows {
			re.row = rr
			var null bool
			var err error
			kb, null, err = ex.hashKeys(keys, re, false, kb[:0])
			if err != nil {
				return nil, err
			}
			if null {
				continue // NULL keys never match
			}
			bi, ok := keyIdx[string(kb)]
			if !ok {
				bi = len(buckets)
				keyIdx[string(kb)] = bi
				buckets = append(buckets, nil)
			}
			buckets[bi] = append(buckets[bi], i)
		}
		le := &env{rs: l, parent: outer}
		both := &env{rs: r, parent: &env{rs: l, parent: outer}}
		for _, lr := range l.rows {
			le.row = lr
			matched := false
			var null bool
			var err error
			kb, null, err = ex.hashKeys(keys, le, true, kb[:0])
			if err != nil {
				return nil, err
			}
			var probe []int
			if !null {
				if bi, ok := keyIdx[string(kb)]; ok {
					probe = buckets[bi]
				}
				for _, ri := range probe {
					rr := r.rows[ri]
					both.row = rr
					both.parent.row = lr
					if resPred != nil {
						d, err := ex.eval(resPred, both)
						if err != nil {
							return nil, err
						}
						if !d.Bool() {
							continue
						}
					}
					matched = true
					matchedR[ri] = true
					emit(lr, rr)
				}
			}
			if !matched && (o.Kind == xtra.JoinLeft || o.Kind == xtra.JoinFull) {
				emit(lr, nullsR)
			}
		}
	} else {
		// Nested loop join.
		both := &env{rs: r, parent: &env{rs: l, parent: outer}}
		for _, lr := range l.rows {
			matched := false
			for ri, rr := range r.rows {
				both.row = rr
				both.parent.row = lr
				ok := true
				if o.Pred != nil {
					d, err := ex.eval(o.Pred, both)
					if err != nil {
						return nil, err
					}
					ok = d.Bool()
				}
				if ok {
					matched = true
					matchedR[ri] = true
					emit(lr, rr)
				}
			}
			if !matched && (o.Kind == xtra.JoinLeft || o.Kind == xtra.JoinFull) {
				emit(lr, nullsR)
			}
		}
	}
	if o.Kind == xtra.JoinFull {
		for ri, rr := range r.rows {
			if !matchedR[ri] {
				emit(nullsL, rr)
			}
		}
	}
	return out, nil
}

// hashKeys evaluates the join key expressions on one side, appending the
// encoded key to b (reused across rows); null reports a NULL key (which
// never matches).
func (ex *executor) hashKeys(keys []equiKey, e *env, left bool, b []byte) ([]byte, bool, error) {
	for _, k := range keys {
		s := k.r
		if left {
			s = k.l
		}
		d, err := ex.eval(s, e)
		if err != nil {
			return b, false, err
		}
		if d.Null {
			return b, true, nil
		}
		b = d.AppendHashKey(b)
		b = append(b, 0)
	}
	return b, false, nil
}

func nullRow(cols []xtra.Col) []types.Datum {
	out := make([]types.Datum, len(cols))
	for i, c := range cols {
		out[i] = types.NewNull(c.Type.Kind)
	}
	return out
}

func (ex *executor) execSort(o *xtra.Sort, outer *env) (*rowset, error) {
	in, err := ex.exec(o.Input, outer)
	if err != nil {
		return nil, err
	}
	keyVals, err := ex.evalSortKeys(o.Keys, in, outer)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(in.rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		c, err := compareKeyRows(o.Keys, keyVals[idx[a]], keyVals[idx[b]])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := newRowset(in.cols)
	out.rows = make([][]types.Datum, len(in.rows))
	for i, j := range idx {
		out.rows[i] = in.rows[j]
	}
	return out, nil
}

func (ex *executor) evalSortKeys(keys []xtra.SortKey, in *rowset, outer *env) ([][]types.Datum, error) {
	vals := make([][]types.Datum, len(in.rows))
	e := &env{rs: in, parent: outer}
	for i, row := range in.rows {
		e.row = row
		kv := make([]types.Datum, len(keys))
		for j, k := range keys {
			d, err := ex.eval(k.Expr, e)
			if err != nil {
				return nil, err
			}
			kv[j] = d
		}
		vals[i] = kv
	}
	return vals, nil
}

// compareKeyRows orders two key tuples under the sort specification.
func compareKeyRows(keys []xtra.SortKey, a, b []types.Datum) (int, error) {
	for i, k := range keys {
		av, bv := a[i], b[i]
		switch {
		case av.Null && bv.Null:
			continue
		case av.Null:
			if k.NullsFirst {
				return -1, nil
			}
			return 1, nil
		case bv.Null:
			if k.NullsFirst {
				return 1, nil
			}
			return -1, nil
		}
		c, err := types.Compare(av, bv)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			if k.Desc {
				return -c, nil
			}
			return c, nil
		}
	}
	return 0, nil
}

func (ex *executor) execLimit(o *xtra.Limit, outer *env) (*rowset, error) {
	in, err := ex.exec(o.Input, outer)
	if err != nil {
		return nil, err
	}
	out := newRowset(in.cols)
	n := int(o.N)
	if n >= len(in.rows) {
		out.rows = in.rows
		return out, nil
	}
	out.rows = in.rows[:n]
	if o.WithTies && n > 0 && len(o.Keys) > 0 {
		keyVals, err := ex.evalSortKeys(o.Keys, in, outer)
		if err != nil {
			return nil, err
		}
		last := keyVals[n-1]
		for i := n; i < len(in.rows); i++ {
			c, err := compareKeyRows(o.Keys, keyVals[i], last)
			if err != nil {
				return nil, err
			}
			if c != 0 {
				break
			}
			out.rows = append(out.rows, in.rows[i])
		}
	}
	return out, nil
}

// appendRowKey encodes a full row as a dedup key into b (reused by callers).
func appendRowKey(b []byte, row []types.Datum) []byte {
	for _, d := range row {
		b = d.AppendHashKey(b)
		b = append(b, 0)
	}
	return b
}

func (ex *executor) execSetOp(o *xtra.SetOp, outer *env) (*rowset, error) {
	l, err := ex.exec(o.L, outer)
	if err != nil {
		return nil, err
	}
	r, err := ex.exec(o.R, outer)
	if err != nil {
		return nil, err
	}
	out := newRowset(o.Cols)
	var kb []byte
	switch o.Kind {
	case xtra.SetUnion:
		if o.All {
			out.rows = append(append(out.rows, l.rows...), r.rows...)
			return out, nil
		}
		seen := map[string]bool{}
		for _, rows := range [][][]types.Datum{l.rows, r.rows} {
			for _, row := range rows {
				kb = appendRowKey(kb[:0], row)
				if !seen[string(kb)] {
					seen[string(kb)] = true
					out.rows = append(out.rows, row)
				}
			}
		}
		return out, nil
	case xtra.SetIntersect:
		counts := map[string]int{}
		for _, row := range r.rows {
			kb = appendRowKey(kb[:0], row)
			counts[string(kb)]++
		}
		emitted := map[string]bool{}
		for _, row := range l.rows {
			kb = appendRowKey(kb[:0], row)
			if counts[string(kb)] > 0 {
				if o.All {
					counts[string(kb)]--
					out.rows = append(out.rows, row)
				} else if !emitted[string(kb)] {
					emitted[string(kb)] = true
					out.rows = append(out.rows, row)
				}
			}
		}
		return out, nil
	case xtra.SetExcept:
		counts := map[string]int{}
		for _, row := range r.rows {
			kb = appendRowKey(kb[:0], row)
			counts[string(kb)]++
		}
		emitted := map[string]bool{}
		for _, row := range l.rows {
			kb = appendRowKey(kb[:0], row)
			if o.All {
				if counts[string(kb)] > 0 {
					counts[string(kb)]--
					continue
				}
				out.rows = append(out.rows, row)
			} else {
				if counts[string(kb)] == 0 && !emitted[string(kb)] {
					emitted[string(kb)] = true
					out.rows = append(out.rows, row)
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("engine: unknown set operation")
}

// execRecursive implements native WITH RECURSIVE for targets with the
// recursion capability: seed rows initialize both the result and the work
// table; the recursive branch re-executes against the shrinking work table
// until no new rows appear (the same fixpoint the gateway emulates with
// temporary tables on targets without the capability, Figure 7).
func (ex *executor) execRecursive(o *xtra.RecursiveUnion, outer *env) (*rowset, error) {
	seed, err := ex.exec(o.Seed, outer)
	if err != nil {
		return nil, err
	}
	out := newRowset(o.Cols)
	out.rows = append(out.rows, seed.rows...)
	work := seed.rows
	for iter := 0; len(work) > 0; iter++ {
		if iter > maxRecursion {
			return nil, fmt.Errorf("engine: recursion exceeded %d iterations", maxRecursion)
		}
		saved := ex.work[o.WorkID]
		ex.work[o.WorkID] = work
		next, err := ex.exec(o.Recursive, outer)
		ex.work[o.WorkID] = saved
		if err != nil {
			return nil, err
		}
		out.rows = append(out.rows, next.rows...)
		work = next.rows
	}
	return out, nil
}
