package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := New([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := 0.5 + 1.5 + 3 + 7 + 100; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	wantCounts := []int64{1, 1, 1, 1, 1}
	for i, c := range s.Counts {
		if c != wantCounts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := New([]float64{1, 2})
	h.Observe(1) // exactly on a bound lands in that bucket (le semantics)
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("observation on bound landed in bucket %v", s.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := New(DurationBuckets())
	// 100 observations of ~1ms and 10 of ~1s: p50 must sit near 1ms, p99
	// near 1s (within the factor-2 bucket resolution).
	for i := 0; i < 100; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.ObserveDuration(time.Second)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 0.0004 || p50 > 0.004 {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 0.25 || p99 > 4 {
		t.Fatalf("p99 = %v, want ~1s", p99)
	}
	if q := s.Quantile(0); q < 0 {
		t.Fatalf("q0 = %v", q)
	}
	var empty Snapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

// TestHistogramConcurrent asserts no observation is lost under concurrent
// recording (run with -race to validate the synchronization story).
func TestHistogramConcurrent(t *testing.T) {
	h := New(DurationBuckets())
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for gid := 0; gid < goroutines; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(gid*per+i) * 1e-6)
			}
		}(gid)
	}
	wg.Wait()
	s := h.Snapshot()
	if want := int64(goroutines * per); s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	// Sum of 0..N-1 µs-scale observations.
	n := float64(goroutines * per)
	want := (n - 1) * n / 2 * 1e-6
	if math.Abs(s.Sum-want) > want*1e-9+1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}

func TestStagesResetAndObserve(t *testing.T) {
	st := NewStages()
	st.Observe("parse", time.Millisecond)
	st.Observe("no-such-stage", time.Millisecond) // ignored, not a panic
	st.Request.ObserveDuration(2 * time.Millisecond)
	st.Overhead.Observe(0.25)
	if st.Stage("parse").Snapshot().Count != 1 {
		t.Fatal("parse observation lost")
	}
	st.Reset()
	if st.Stage("parse").Snapshot().Count != 0 || st.Request.Snapshot().Count != 0 || st.Overhead.Snapshot().Count != 0 {
		t.Fatal("reset did not clear histograms")
	}
}

func TestPrometheusRendering(t *testing.T) {
	h := New([]float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	var b strings.Builder
	WriteHistogram(&b, "x_seconds", "help text", "stage", "parse", h.Snapshot())
	out := b.String()
	for _, want := range []string{
		"# HELP x_seconds help text",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{stage="parse",le="0.001"} 1`,
		`x_seconds_bucket{stage="parse",le="0.01"} 2`, // cumulative
		`x_seconds_bucket{stage="parse",le="+Inf"} 3`,
		`x_seconds_count{stage="parse"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	b.Reset()
	WriteHistogram(&b, "y_seconds", "", "", "", h.Snapshot())
	if !strings.Contains(b.String(), `y_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("unlabeled histogram rendering wrong:\n%s", b.String())
	}
	b.Reset()
	WriteCounter(&b, "z_total", "h", "counter", 7)
	if !strings.Contains(b.String(), "z_total 7") {
		t.Fatalf("counter rendering wrong:\n%s", b.String())
	}
}
