package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCompactIndexBoundaries(t *testing.T) {
	us := int64(time.Microsecond)
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{16 * us, 0},   // first bound is inclusive
		{16*us + 1, 1}, // just past it
		{32 * us, 1},
		{32*us + 1, 2},
		{64 * us, 2},
		{compactBase << (compactBuckets - 1), compactBuckets - 1}, // last finite bound
		{compactBase<<(compactBuckets-1) + 1, compactBuckets},     // +Inf slot
		{int64(time.Hour), compactBuckets},
	}
	for _, tc := range cases {
		if got := compactIndex(tc.ns); got != tc.want {
			t.Errorf("compactIndex(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

// TestCompactMatchesHistogram pins the equivalence with the bounds-carrying
// Histogram over DurationBuckets(): identical counts bucket by bucket.
// Durations sit strictly inside buckets so float-vs-integer boundary
// rounding cannot skew the comparison.
func TestCompactMatchesHistogram(t *testing.T) {
	var c Compact
	h := New(DurationBuckets())
	var durs []time.Duration
	for i := 0; i < compactBuckets; i++ {
		d := time.Duration(compactBase<<i) * 3 / 4 // mid-bucket
		for j := 0; j <= i%3; j++ {
			durs = append(durs, d)
		}
	}
	durs = append(durs, time.Hour) // +Inf bucket
	for _, d := range durs {
		c.Observe(d)
		h.ObserveDuration(d)
	}

	cs := c.Snapshot().Histogram()
	hs := h.Snapshot()
	if cs.Count != hs.Count || cs.Count != int64(len(durs)) {
		t.Fatalf("count = %d vs %d, want %d", cs.Count, hs.Count, len(durs))
	}
	if len(cs.Counts) != len(hs.Counts) {
		t.Fatalf("bucket count = %d vs %d", len(cs.Counts), len(hs.Counts))
	}
	for i := range cs.Counts {
		if cs.Counts[i] != hs.Counts[i] {
			t.Errorf("bucket %d: compact %d, histogram %d", i, cs.Counts[i], hs.Counts[i])
		}
	}
	// Sums agree to float precision (Histogram accumulates seconds).
	if diff := cs.Sum - hs.Sum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %f vs %f", cs.Sum, hs.Sum)
	}
}

func TestCompactQuantileAndMean(t *testing.T) {
	var c Compact
	// 100 observations at ~1ms, 1 at ~1s: p50 lands in the 1ms bucket, p99+
	// well above it.
	for i := 0; i < 100; i++ {
		c.Observe(time.Millisecond)
	}
	c.Observe(time.Second)
	s := c.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 512*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p50, p999 := s.Quantile(0.50), s.Quantile(0.999); p999 <= p50 {
		t.Errorf("p999 %v <= p50 %v", p999, p50)
	}
	wantMean := (100*time.Millisecond + time.Second) / 101
	if got := s.Mean(); got != wantMean {
		t.Errorf("mean = %v, want %v", got, wantMean)
	}

	var empty Compact
	es := empty.Snapshot()
	if es.Quantile(0.99) != 0 || es.Mean() != 0 {
		t.Error("empty histogram quantile/mean not zero")
	}
}

func TestCompactMergeAndReset(t *testing.T) {
	var a, b Compact
	for i := 0; i < 10; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(&b)
	s := a.Snapshot()
	if s.Count != 20 {
		t.Fatalf("merged count = %d, want 20", s.Count)
	}
	if want := int64(10*time.Millisecond + 10*time.Second); s.SumNs != want {
		t.Errorf("merged sum = %d, want %d", s.SumNs, want)
	}
	a.Reset()
	if s := a.Snapshot(); s.Count != 0 || s.SumNs != 0 {
		t.Errorf("reset left count=%d sum=%d", s.Count, s.SumNs)
	}
	// The source is untouched by Merge.
	if s := b.Snapshot(); s.Count != 10 {
		t.Errorf("merge mutated source: count = %d", s.Count)
	}
}

func TestCompactConcurrentObserve(t *testing.T) {
	var c Compact
	var wg sync.WaitGroup
	const goroutines, perG = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Observe(time.Duration(g+1) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if s := c.Snapshot(); s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
}

func TestCompactObserveAllocationFree(t *testing.T) {
	var c Compact
	if avg := testing.AllocsPerRun(500, func() {
		c.Observe(3 * time.Millisecond)
	}); avg != 0 {
		t.Fatalf("Compact.Observe allocates %.1f per call, want 0", avg)
	}
}
