package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// Prometheus text exposition format (version 0.0.4), rendered by hand so the
// gateway stays dependency-free. Only the subset the gateway needs:
// histograms and counters, each with at most one label.

// formatFloat renders a float the way Prometheus expects ("0.000016", not
// "1.6e-05" — both parse, but the decimal form is friendlier to grep-based
// smoke tests and humans).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func labelSuffix(key, val string) string {
	if key == "" {
		return ""
	}
	return "{" + key + `="` + val + `"}`
}

func labelExtra(key, val, extraKey, extraVal string) string {
	if key == "" {
		return "{" + extraKey + `="` + extraVal + `"}`
	}
	return "{" + key + `="` + val + `",` + extraKey + `="` + extraVal + `"}`
}

// WriteHistogram renders one histogram series with an optional single label.
// Bucket counts are cumulative, as the format requires.
func WriteHistogram(w io.Writer, name, help, labelKey, labelVal string, s Snapshot) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	}
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelExtra(labelKey, labelVal, "le", formatFloat(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelExtra(labelKey, labelVal, "le", "+Inf"), s.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelSuffix(labelKey, labelVal), formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelSuffix(labelKey, labelVal), s.Count)
}

// WriteCounter renders one counter (or gauge — the text format is the same
// modulo the TYPE line).
func WriteCounter(w io.Writer, name, help, typ string, value int64) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	}
	fmt.Fprintf(w, "%s %d\n", name, value)
}

// WriteHeader renders the HELP/TYPE preamble of a series whose samples are
// emitted separately (labeled families with one sample per label value, like
// the per-fingerprint statement counters).
func WriteHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// WriteLabeledValue renders one sample of a labeled series. Pair with
// WriteHeader, emitted once per family.
func WriteLabeledValue(w io.Writer, name, labelKey, labelVal string, value float64) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelSuffix(labelKey, labelVal), formatFloat(value))
}
