package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Compact is a fixed-footprint latency histogram for high-cardinality use:
// one per tracked statement fingerprint. It shares the exact bucket bounds
// of DurationBuckets() (16µs doubling 21 times), but stores them nowhere —
// the bucket index is computed from the duration with a bit-length
// operation, so a Compact is just 25 atomically updated int64 words with no
// pointers, embeddable by value in registry entries. Observation is
// lock-free and allocation-free.
type Compact struct {
	counts [compactBuckets + 1]int64 // last slot is the +Inf bucket
	count  int64
	sumNs  int64
}

// compactBuckets is the number of finite buckets, matching the 22 bounds of
// DurationBuckets().
const compactBuckets = 22

// compactBase is the first bucket's inclusive upper bound (16µs), identical
// to DurationBuckets()[0].
const compactBase = 16 * int64(time.Microsecond)

// compactIndex maps a duration (ns) to its bucket: the smallest i with
// d <= 16µs·2^i, or the +Inf slot past the last bound. Equivalent to the
// binary search New(DurationBuckets()) performs, in a few bit operations.
func compactIndex(ns int64) int {
	if ns <= compactBase {
		return 0
	}
	t := uint64((ns + compactBase - 1) / compactBase) // ceil(ns / 16µs)
	i := bits.Len64(t - 1)
	if i > compactBuckets {
		i = compactBuckets
	}
	return i
}

// Observe records one duration.
func (c *Compact) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	atomic.AddInt64(&c.counts[compactIndex(ns)], 1)
	atomic.AddInt64(&c.count, 1)
	atomic.AddInt64(&c.sumNs, ns)
}

// Merge folds another histogram's counts into c (both may be observed
// concurrently; the merge is per-word atomic, like snapshots).
func (c *Compact) Merge(from *Compact) {
	for i := range from.counts {
		if n := atomic.LoadInt64(&from.counts[i]); n != 0 {
			atomic.AddInt64(&c.counts[i], n)
		}
	}
	atomic.AddInt64(&c.count, atomic.LoadInt64(&from.count))
	atomic.AddInt64(&c.sumNs, atomic.LoadInt64(&from.sumNs))
}

// Reset zeroes all counters.
func (c *Compact) Reset() {
	for i := range c.counts {
		atomic.StoreInt64(&c.counts[i], 0)
	}
	atomic.StoreInt64(&c.count, 0)
	atomic.StoreInt64(&c.sumNs, 0)
}

// CompactSnapshot is a point-in-time copy of a Compact histogram.
type CompactSnapshot struct {
	Counts [compactBuckets + 1]int64
	Count  int64
	SumNs  int64
}

// Snapshot copies the current state.
func (c *Compact) Snapshot() CompactSnapshot {
	s := CompactSnapshot{
		Count: atomic.LoadInt64(&c.count),
		SumNs: atomic.LoadInt64(&c.sumNs),
	}
	for i := range c.counts {
		s.Counts[i] = atomic.LoadInt64(&c.counts[i])
	}
	return s
}

// Quantile estimates the q-quantile by linear interpolation within the
// containing bucket, mirroring Snapshot.Quantile. Returns 0 when empty;
// +Inf-bucket observations clamp to the largest finite bound.
func (s CompactSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		var lower int64
		if i > 0 {
			lower = compactBase << (i - 1)
		}
		if i >= compactBuckets {
			return time.Duration(lower)
		}
		upper := compactBase << i
		if cum+float64(c) >= rank {
			if c == 0 {
				return time.Duration(upper)
			}
			return time.Duration(float64(lower) + float64(upper-lower)*((rank-cum)/float64(c)))
		}
		cum += float64(c)
	}
	return time.Duration(compactBase << (compactBuckets - 1))
}

// Mean returns the average observed duration (0 when empty).
func (s CompactSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Histogram converts to the bounds-carrying Snapshot form, for the
// Prometheus renderer and anything else expecting the standard shape.
func (s CompactSnapshot) Histogram() Snapshot {
	h := Snapshot{
		Bounds: DurationBuckets(),
		Counts: make([]int64, compactBuckets+1),
		Count:  s.Count,
		Sum:    float64(s.SumNs) / float64(time.Second),
	}
	copy(h.Counts, s.Counts[:])
	return h
}
