// Package metrics provides the gateway's lock-cheap latency histograms: a
// fixed set of log-scaled buckets updated with atomic adds (no locks on the
// hot path), point-in-time snapshots with quantile estimation, and a
// Prometheus text-format renderer (no external dependencies). The gateway
// keeps one histogram per pipeline stage (parse, bind, transform, serialize,
// cache, execute, convert) plus whole-request latency and the per-request
// gateway-overhead ratio — the quantity the paper's §6 evaluation reports as
// "gateway overhead vs. backend time".
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram safe for concurrent observation.
// Bucket counters, the total count, and the running sum are updated with
// atomic operations only; snapshots are taken without stopping writers and
// are therefore only approximately consistent across buckets — exact enough
// for latency reporting, and never losing an observation.
type Histogram struct {
	// bounds are the ascending inclusive upper bounds; observations above
	// the last bound land in an implicit +Inf bucket.
	bounds []float64
	counts []int64 // len(bounds)+1
	count  int64
	sum    uint64 // float64 bits, CAS-updated
}

// New creates a histogram over the given ascending bucket upper bounds.
func New(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// DurationBuckets returns the standard log-scaled latency bucket bounds in
// seconds: 16µs doubling 21 times up to ~33.5s. Pipeline stages span
// sub-millisecond parsing to multi-second backend scans; a factor-2
// progression keeps quantile estimates within ~2× everywhere.
func DurationBuckets() []float64 {
	bounds := make([]float64, 22)
	v := 16e-6
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// RatioBuckets returns bucket bounds for values in [0,1] (overhead
// fractions), denser near the ends where translation overhead lives.
func RatioBuckets() []float64 {
	return []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.count, 1)
	for {
		old := atomic.LoadUint64(&h.sum)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sum, old, next) {
			return
		}
	}
}

// ObserveDuration records one duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Reset zeroes all counters.
func (h *Histogram) Reset() {
	for i := range h.counts {
		atomic.StoreInt64(&h.counts[i], 0)
	}
	atomic.StoreInt64(&h.count, 0)
	atomic.StoreUint64(&h.sum, 0)
}

// Snapshot is a point-in-time copy of a histogram.
type Snapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per-bucket; last entry is the +Inf bucket
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  atomic.LoadInt64(&h.count),
		Sum:    math.Float64frombits(atomic.LoadUint64(&h.sum)),
	}
	for i := range h.counts {
		s.Counts[i] = atomic.LoadInt64(&h.counts[i])
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket — the same estimator Prometheus'
// histogram_quantile uses. Returns 0 for an empty histogram; observations in
// the +Inf bucket clamp to the largest finite bound.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: no upper bound to interpolate towards.
			return lower
		}
		upper := s.Bounds[i]
		if cum+float64(c) >= rank {
			if c == 0 {
				return upper
			}
			return lower + (upper-lower)*((rank-cum)/float64(c))
		}
		cum += float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observed value (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// StageNames lists the pipeline stages in execution order. "cache" is the
// translation-cache lookup; the remaining six are the translate/execute
// pipeline of the paper's Figure 3.
var StageNames = []string{"parse", "bind", "transform", "serialize", "cache", "execute", "convert"}

// Stages bundles the gateway's per-stage histograms plus the whole-request
// latency and per-request overhead-ratio histograms.
type Stages struct {
	byName map[string]*Histogram
	// Request observes whole-request wall time (seconds).
	Request *Histogram
	// Overhead observes the per-request gateway-overhead fraction
	// (1 - backend-execute-time/total), for requests that reached the
	// backend — the Figure 9 quantity, now as a distribution.
	Overhead *Histogram
}

// NewStages creates the standard stage set.
func NewStages() *Stages {
	s := &Stages{
		byName:   make(map[string]*Histogram, len(StageNames)),
		Request:  New(DurationBuckets()),
		Overhead: New(RatioBuckets()),
	}
	for _, name := range StageNames {
		s.byName[name] = New(DurationBuckets())
	}
	return s
}

// Observe records one stage duration. Unknown stage names are ignored.
func (s *Stages) Observe(stage string, d time.Duration) {
	if h, ok := s.byName[stage]; ok {
		h.ObserveDuration(d)
	}
}

// Stage returns the named stage histogram (nil when unknown).
func (s *Stages) Stage(name string) *Histogram { return s.byName[name] }

// Reset zeroes every histogram.
func (s *Stages) Reset() {
	for _, h := range s.byName {
		h.Reset()
	}
	s.Request.Reset()
	s.Overhead.Reset()
}
