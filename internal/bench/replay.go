package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/hyperq"
	"hyperq/internal/odbc"
	"hyperq/internal/querylog"
	"hyperq/internal/replay"
	"hyperq/internal/workload/customer"
)

// ReplayRun is one replay pass over the captured workload at a given
// speed-up (0 = maximum speed, no pacing).
type ReplayRun struct {
	Speedup     float64 `json:"speedup"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	StmtsPerSec float64 `json:"stmts_per_sec"`
	Replayed    int     `json:"replayed"`
	Equivalent  bool    `json:"equivalent"`
}

// ReplayResult measures the shadow-replay harness: statements per second at
// 1x, 10x, and maximum speed through the dual-backend compare pipeline, and
// the cost of divergence checking itself — the max-speed dual replay versus
// the same statement streams through a single-backend gateway with no
// comparison.
type ReplayResult struct {
	Sessions       int         `json:"sessions"`
	Statements     int         `json:"statements"`
	CapturedSpanNs int64       `json:"captured_span_ns"`
	Runs           []ReplayRun `json:"runs"`
	// SingleElapsedNs replays the same streams through one backend with no
	// divergence checking; the overhead percentage compares it to the
	// max-speed dual run (which executes every statement twice and diffs
	// every read).
	SingleElapsedNs       int64   `json:"single_backend_elapsed_ns"`
	SingleStmtsPerSec     float64 `json:"single_backend_stmts_per_sec"`
	DivergenceOverheadPct float64 `json:"divergence_check_overhead_pct"`
}

// newCustomerEngine loads the customer schema into a fresh engine.
func newCustomerEngine(target *dialect.Profile) (*engine.Engine, error) {
	eng := engine.New(target)
	s := eng.NewSession()
	for _, ddl := range customer.SchemaDDL {
		if _, err := s.ExecSQL(ddl); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// captureWorkloads drives both customer workloads (perWorkload statements
// each) through a capture-mode gateway and returns the reconstructed
// per-session streams.
func captureWorkloads(target *dialect.Profile, perWorkload int) ([]querylog.Stream, error) {
	eng, err := newCustomerEngine(target)
	if err != nil {
		return nil, err
	}
	g, err := hyperq.New(hyperq.Config{
		Target:  target,
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		return nil, err
	}
	setup, err := g.NewLocalSession("setup")
	if err != nil {
		return nil, err
	}
	for _, sql := range customer.GatewaySetup {
		if _, err := setup.Run(sql); err != nil {
			return nil, fmt.Errorf("setup %q: %w", sql, err)
		}
	}
	setup.Close()

	dir, err := os.MkdirTemp("", "replaybench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "capture.log")
	w, err := querylog.OpenOptions(path, querylog.Options{Redact: true, Capture: true})
	if err != nil {
		return nil, err
	}
	g.SetQueryLog(w)
	specs := []customer.Spec{customer.Workload1(), customer.Workload2()}
	for i, spec := range specs {
		spec.Distinct, spec.Total = perWorkload, perWorkload
		s, err := g.NewLocalSession(fmt.Sprintf("app%d", i+1))
		if err != nil {
			return nil, err
		}
		for _, q := range customer.Generate(spec) {
			if _, err := s.Run(q.SQL); err != nil {
				s.Close()
				return nil, fmt.Errorf("capture %q: %w", q.SQL, err)
			}
		}
		s.Close()
	}
	g.SetQueryLog(nil)
	if err := w.Close(); err != nil {
		return nil, err
	}
	return replay.Load(path)
}

// dualReplay runs one compare replay over fresh backend pairs.
func dualReplay(target *dialect.Profile, streams []querylog.Stream, speedup float64) (*replay.Report, error) {
	base, err := newCustomerEngine(target)
	if err != nil {
		return nil, err
	}
	cand, err := newCustomerEngine(target)
	if err != nil {
		return nil, err
	}
	r, err := replay.NewRunner(replay.Config{
		Target:        target,
		Baseline:      &odbc.LocalDriver{Engine: base},
		Candidate:     &odbc.LocalDriver{Engine: cand},
		BaselineName:  "baseline",
		CandidateName: "candidate",
		Speedup:       speedup,
		Catalog:       base.Catalog().Clone(),
	})
	if err != nil {
		return nil, err
	}
	if err := r.Prepare("setup", customer.GatewaySetup); err != nil {
		return nil, err
	}
	return r.Replay(streams), nil
}

// singleReplay runs the same streams through one backend with no divergence
// checking, at maximum speed — the baseline the dual-dispatch overhead is
// measured against.
func singleReplay(target *dialect.Profile, streams []querylog.Stream) (time.Duration, error) {
	eng, err := newCustomerEngine(target)
	if err != nil {
		return 0, err
	}
	g, err := hyperq.New(hyperq.Config{
		Target:  target,
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		return 0, err
	}
	setup, err := g.NewLocalSession("setup")
	if err != nil {
		return 0, err
	}
	for _, sql := range customer.GatewaySetup {
		if _, err := setup.Run(sql); err != nil {
			return 0, err
		}
	}
	setup.Close()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(streams))
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := g.NewLocalSession(streams[i].User)
			if err != nil {
				errs[i] = err
				return
			}
			defer s.Close()
			for _, e := range streams[i].Entries {
				if _, err := s.Run(e.ReplaySQL()); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// ReplayBench captures both customer workloads (perWorkload statements each)
// and measures the shadow-replay harness at 1x, 10x, and maximum speed, plus
// the divergence-check overhead versus a single-backend replay. With a
// non-empty path the result is also written as JSON.
func ReplayBench(w io.Writer, target *dialect.Profile, perWorkload int, path string) (ReplayResult, error) {
	streams, err := captureWorkloads(target, perWorkload)
	if err != nil {
		return ReplayResult{}, fmt.Errorf("capture: %w", err)
	}
	res := ReplayResult{Sessions: len(streams)}
	for _, st := range streams {
		res.Statements += len(st.Entries)
	}
	fmt.Fprintf(w, "Shadow replay: %d statements captured across %d sessions\n", res.Statements, res.Sessions)
	for _, speedup := range []float64{1, 10, 0} {
		rep, err := dualReplay(target, streams, speedup)
		if err != nil {
			return ReplayResult{}, fmt.Errorf("replay %gx: %w", speedup, err)
		}
		if !rep.Equivalent {
			return ReplayResult{}, fmt.Errorf("replay %gx: identical profiles diverged:\n%s", speedup, rep.Summary())
		}
		res.CapturedSpanNs = rep.CapturedSpanNs
		run := ReplayRun{
			Speedup:    speedup,
			ElapsedNs:  rep.DurationNs,
			Replayed:   rep.Replayed,
			Equivalent: rep.Equivalent,
		}
		if rep.DurationNs > 0 {
			run.StmtsPerSec = float64(rep.Replayed) / (float64(rep.DurationNs) / float64(time.Second))
		}
		res.Runs = append(res.Runs, run)
		label := fmt.Sprintf("%gx", speedup)
		if speedup == 0 {
			label = "max"
		}
		fmt.Fprintf(w, "  %-5s dual replay: %d stmts in %v (%.0f stmts/s)\n",
			label, run.Replayed, time.Duration(run.ElapsedNs).Round(time.Millisecond), run.StmtsPerSec)
	}
	single, err := singleReplay(target, streams)
	if err != nil {
		return ReplayResult{}, fmt.Errorf("single replay: %w", err)
	}
	res.SingleElapsedNs = int64(single)
	if single > 0 {
		res.SingleStmtsPerSec = float64(res.Statements) / single.Seconds()
	}
	maxRun := res.Runs[len(res.Runs)-1]
	if res.SingleElapsedNs > 0 {
		res.DivergenceOverheadPct = 100 * float64(maxRun.ElapsedNs-res.SingleElapsedNs) / float64(res.SingleElapsedNs)
	}
	fmt.Fprintf(w, "  single backend, no compare: %d stmts in %v (%.0f stmts/s)\n",
		res.Statements, single.Round(time.Millisecond), res.SingleStmtsPerSec)
	fmt.Fprintf(w, "  divergence checking (dual dispatch + diff): %+.1f%% over single-backend replay\n",
		res.DivergenceOverheadPct)
	if path != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return ReplayResult{}, err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return ReplayResult{}, err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return res, nil
}
