package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/faultdriver"
	"hyperq/internal/odbc/pool"
	"hyperq/internal/workload/tpch"

	"hyperq/internal/hyperq"
)

// PoolResult is the pool concurrency benchmark's measurement: N frontend
// sessions multiplexed over K backend connections, reporting end-to-end
// throughput and the acquire wait-time distribution — the quantities that
// size a production pool (the paper's "large number of concurrent client
// connections" over a session-capped backend, §4.5/§4.7).
type PoolResult struct {
	Sessions       int           `json:"sessions"`
	PoolSize       int           `json:"pool_size"`
	Iterations     int           `json:"iterations_per_session"`
	BackendLatency time.Duration `json:"backend_latency_ns"`
	Requests       int64         `json:"requests"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	// Throughput is completed requests per second across all sessions.
	Throughput float64 `json:"throughput_rps"`
	// Waits counts acquires that queued; WaitP50/WaitP95 are quantiles of
	// the time queued acquires spent waiting for a backend connection.
	Waits   int64         `json:"waits"`
	WaitP50 time.Duration `json:"wait_p50_ns"`
	WaitP95 time.Duration `json:"wait_p95_ns"`
	// Pins counts sessions that pinned a dedicated connection (the volatile
	// table phase of the mix).
	Pins     int64 `json:"pins"`
	Dials    int64 `json:"dials"`
	Timeouts int64 `json:"timeouts"`
}

// PoolBench measures the shared backend connection pool under
// oversubscription: `sessions` concurrent frontend sessions share a
// `poolSize`-connection pool against a TPC-H-loaded backend with
// `backendLatency` of injected per-request latency (zero measures raw
// multiplexing overhead; a realistic cloud round trip makes queueing
// visible). Each session interleaves TPC-H reads (statement-level leases)
// with a volatile-table cycle (pinning) — the production mix the pool must
// serve.
func PoolBench(w io.Writer, target *dialect.Profile, sf float64, sessions, poolSize, iterations int, backendLatency time.Duration) (PoolResult, error) {
	eng := engine.New(target)
	if err := tpch.SetupEngine(eng.NewSession(), sf); err != nil {
		return PoolResult{}, err
	}
	fd := faultdriver.New(&odbc.LocalDriver{Engine: eng})
	if backendLatency > 0 {
		fd.SetLatency(backendLatency)
	}
	p, err := pool.New(pool.Config{
		Driver:         fd,
		Size:           poolSize,
		MaxWaiters:     -1,
		AcquireTimeout: 5 * time.Minute,
	})
	if err != nil {
		return PoolResult{}, err
	}
	defer p.Close()
	g, err := hyperq.New(hyperq.Config{
		Target:         target,
		Driver:         p,
		Catalog:        eng.Catalog().Clone(),
		Pool:           p,
		DisableTracing: true,
	})
	if err != nil {
		return PoolResult{}, err
	}
	queries := []string{tpch.Queries[1], tpch.Queries[3], tpch.Queries[6]}

	run := func(c int) error {
		s, err := g.NewLocalSession(fmt.Sprintf("pool%d", c))
		if err != nil {
			return err
		}
		defer s.Close()
		for it := 0; it < iterations; it++ {
			if it%4 == 3 {
				// Pinning phase: session-scoped state over several requests.
				for _, stmt := range []string{
					"CREATE VOLATILE TABLE HQ_BENCH (X INT) ON COMMIT PRESERVE ROWS",
					fmt.Sprintf("INSERT INTO HQ_BENCH VALUES (%d)", c),
					"SEL X FROM HQ_BENCH",
					"DROP TABLE HQ_BENCH",
				} {
					if _, err := s.Run(stmt); err != nil {
						return fmt.Errorf("session %d: %w", c, err)
					}
				}
				continue
			}
			if _, err := s.Run(queries[(it+c)%len(queries)]); err != nil {
				return fmt.Errorf("session %d: %w", c, err)
			}
		}
		return nil
	}

	// Warm-up: fill the pool and the translation cache outside the clock.
	// A single session never queues, so the wait histogram stays clean; the
	// cumulative pool counters are differenced below.
	if err := run(0); err != nil {
		return PoolResult{}, err
	}
	g.ResetMetrics()
	warm := p.Stats()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = run(c)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return PoolResult{}, err
		}
	}
	m := g.MetricsSnapshot()
	st := p.Stats()
	res := PoolResult{
		Sessions:       sessions,
		PoolSize:       poolSize,
		Iterations:     iterations,
		BackendLatency: backendLatency,
		Requests:       m.Requests,
		Elapsed:        elapsed,
		Waits:          st.Waits - warm.Waits,
		WaitP50:        time.Duration(st.WaitSeconds.Quantile(0.5) * float64(time.Second)),
		WaitP95:        time.Duration(st.WaitSeconds.Quantile(0.95) * float64(time.Second)),
		Pins:           st.Pins - warm.Pins,
		Dials:          st.Dials - warm.Dials,
		Timeouts:       st.Timeouts - warm.Timeouts,
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Requests) / elapsed.Seconds()
	}
	fmt.Fprintf(w, "Pool concurrency: %d sessions over %d backend connections (TPC-H SF %.3f, backend latency %v)\n",
		sessions, poolSize, sf, backendLatency)
	fmt.Fprintf(w, "  %-22s %d\n", "Requests", res.Requests)
	fmt.Fprintf(w, "  %-22s %v\n", "Elapsed", res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  %-22s %.0f req/s\n", "Throughput", res.Throughput)
	fmt.Fprintf(w, "  %-22s %d (of %d acquires)\n", "Queued acquires", res.Waits, st.Acquires)
	fmt.Fprintf(w, "  %-22s p50=%v p95=%v\n", "Pool wait", res.WaitP50.Round(time.Microsecond), res.WaitP95.Round(time.Microsecond))
	fmt.Fprintf(w, "  %-22s pins=%d dials=%d timeouts=%d\n", "Pinning/dials", res.Pins, res.Dials, res.Timeouts)
	return res, nil
}
