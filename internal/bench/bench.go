// Package bench regenerates every table and figure of the paper's
// evaluation (§7): the Figure 2 support matrix, the Table 1 workload
// overview, the Figure 8 customer workload study, and the Figure 9 overhead
// measurements (single-stream TPC-H and the ten-session stress test). Each
// experiment prints the same rows/series the paper reports.
package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/feature"
	"hyperq/internal/odbc"
	"hyperq/internal/workload/customer"
	"hyperq/internal/workload/tpch"

	"hyperq/internal/hyperq"
)

// Fig2 recomputes the Figure 2 support matrix: for each selected Teradata
// feature, the percentage of modeled cloud targets supporting it natively.
func Fig2(w io.Writer) {
	targets := dialect.CloudTargets()
	pct := dialect.SupportPct(dialect.Figure2Features, targets)
	fmt.Fprintf(w, "Figure 2: Support for select Teradata features across %d modeled cloud databases\n", len(targets))
	fmt.Fprintf(w, "%-28s %10s   %s\n", "Feature", "Support", "Targets")
	feats := append([]dialect.Capability(nil), dialect.Figure2Features...)
	sort.Slice(feats, func(i, j int) bool { return pct[feats[i]] > pct[feats[j]] })
	for _, f := range feats {
		var who []string
		for _, t := range targets {
			if t.Supports(f) {
				who = append(who, t.Name)
			}
		}
		fmt.Fprintf(w, "%-28s %9.0f%%   %v\n", f.String(), pct[f], who)
	}
}

// Table1 prints the customer/workload overview.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Overview of customers and workloads")
	fmt.Fprintf(w, "%-10s %-8s %22s\n", "Customer", "Sector", "Total (Distinct) Queries")
	for i, spec := range []customer.Spec{customer.Workload1(), customer.Workload2()} {
		qs := customer.Generate(spec)
		fmt.Fprintf(w, "%-10d %-8s %15d (%d)\n", i+1, spec.Sector, customer.TotalOf(qs), len(qs))
	}
}

// Fig8Result carries one workload's measured statistics.
type Fig8Result struct {
	Name string
	// PresencePct is Figure 8a: % of the 9 tracked features per class
	// appearing at least once.
	PresencePct map[feature.Class]float64
	// QueryPct is Figure 8b: % of distinct queries affected per class.
	QueryPct map[feature.Class]float64
}

// Fig8 replays both customer workloads through the instrumented gateway and
// reports the recovered class statistics. With scale < 1 the distinct/total
// counts shrink proportionally (for quick runs).
func Fig8(w io.Writer, scale float64) ([]Fig8Result, error) {
	var out []Fig8Result
	for _, spec := range []customer.Spec{customer.Workload1(), customer.Workload2()} {
		if scale < 1 {
			spec.Distinct = int(float64(spec.Distinct) * scale)
			if spec.Distinct < 100 {
				spec.Distinct = 100
			}
			spec.Total = spec.Distinct * 10
		}
		stats, err := replayWorkload(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		out = append(out, Fig8Result{
			Name:        spec.Name,
			PresencePct: stats.ClassPresencePct(),
			QueryPct:    stats.ClassQueryPct(),
		})
	}
	fmt.Fprintln(w, "Figure 8 (a): Percentage of tracked features contained in each workload")
	printClassRows(w, out, func(r Fig8Result, c feature.Class) float64 { return r.PresencePct[c] })
	fmt.Fprintln(w, "\nFigure 8 (b): Percentage of queries affected by each feature class")
	printClassRows(w, out, func(r Fig8Result, c feature.Class) float64 { return r.QueryPct[c] })
	return out, nil
}

func printClassRows(w io.Writer, rs []Fig8Result, get func(Fig8Result, feature.Class) float64) {
	fmt.Fprintf(w, "%-16s", "Class")
	for _, r := range rs {
		fmt.Fprintf(w, " %14s", r.Name)
	}
	fmt.Fprintln(w)
	for _, c := range feature.Classes {
		fmt.Fprintf(w, "%-16s", c.String())
		for _, r := range rs {
			fmt.Fprintf(w, " %13.1f%%", get(r, c))
		}
		fmt.Fprintln(w)
	}
}

func replayWorkload(spec customer.Spec) (*feature.Stats, error) {
	eng := engine.New(dialect.CloudA())
	be := eng.NewSession()
	for _, ddl := range customer.SchemaDDL {
		if _, err := be.ExecSQL(ddl); err != nil {
			return nil, err
		}
	}
	g, err := hyperq.New(hyperq.Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		return nil, err
	}
	s, err := g.NewLocalSession("study")
	if err != nil {
		return nil, err
	}
	defer s.Close()
	for _, setup := range customer.GatewaySetup {
		if _, err := s.Run(setup); err != nil {
			return nil, fmt.Errorf("setup %q: %w", setup, err)
		}
	}
	stats := feature.NewStats()
	g.SetStats(stats)
	for _, q := range customer.Generate(spec) {
		if _, err := s.Run(q.SQL); err != nil {
			return nil, fmt.Errorf("query %q: %w", q.SQL, err)
		}
	}
	return stats, nil
}

// Fig9Result is one overhead measurement.
type Fig9Result struct {
	Label        string
	Translate    time.Duration
	Execute      time.Duration
	Convert      time.Duration
	Queries      int64
	TranslatePct float64
	ConvertPct   float64
	OverheadPct  float64
}

func snapshotToResult(label string, m hyperq.MetricsSnapshot) Fig9Result {
	total := m.Translate + m.Execute + m.Convert
	r := Fig9Result{
		Label:     label,
		Translate: m.Translate,
		Execute:   m.Execute,
		Convert:   m.Convert,
		Queries:   m.Requests,
	}
	if total > 0 {
		r.TranslatePct = 100 * float64(m.Translate) / float64(total)
		r.ConvertPct = 100 * float64(m.Convert) / float64(total)
		r.OverheadPct = r.TranslatePct + r.ConvertPct
	}
	return r
}

// NewTPCHGateway builds a loaded TPC-H engine for the target and fronts it
// with a gateway using the in-process driver (so Figure 9 measures gateway
// overhead, not socket noise).
func NewTPCHGateway(target *dialect.Profile, sf float64) (*hyperq.Gateway, error) {
	eng := engine.New(target)
	if err := tpch.SetupEngine(eng.NewSession(), sf); err != nil {
		return nil, err
	}
	g, err := hyperq.New(hyperq.Config{
		Target:  target,
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Fig9a runs the 22 TPC-H queries on a single sequential session (the §7.2
// setup) and reports the aggregated elapsed-time split.
func Fig9a(w io.Writer, target *dialect.Profile, sf float64, repetitions int) (Fig9Result, error) {
	g, err := NewTPCHGateway(target, sf)
	if err != nil {
		return Fig9Result{}, err
	}
	s, err := g.NewLocalSession("bench")
	if err != nil {
		return Fig9Result{}, err
	}
	defer s.Close()
	// Warm-up pass (excluded from the measurement).
	for _, qn := range tpch.QueryNumbers() {
		if _, err := s.Run(tpch.Queries[qn]); err != nil {
			return Fig9Result{}, fmt.Errorf("Q%d: %w", qn, err)
		}
	}
	g.ResetMetrics()
	for rep := 0; rep < repetitions; rep++ {
		for _, qn := range tpch.QueryNumbers() {
			if _, err := s.Run(tpch.Queries[qn]); err != nil {
				return Fig9Result{}, fmt.Errorf("Q%d: %w", qn, err)
			}
		}
	}
	res := snapshotToResult(fmt.Sprintf("TPC-H SF %.3f on %s, single stream", sf, target.Name), g.MetricsSnapshot())
	printFig9(w, "Figure 9 (a): Aggregated elapsed time for single sequential run", res)
	return res, nil
}

// Fig9b runs the stress scenario of §7.3: `clients` concurrent sessions each
// repeatedly submitting the TPC-H mix (plus the vendor-feature variants the
// Fortune-10 workload contained).
func Fig9b(w io.Writer, target *dialect.Profile, sf float64, clients, iterations int) (Fig9Result, error) {
	g, err := NewTPCHGateway(target, sf)
	if err != nil {
		return Fig9Result{}, err
	}
	// Warm-up.
	warm, err := g.NewLocalSession("warm")
	if err != nil {
		return Fig9Result{}, err
	}
	for _, qn := range tpch.QueryNumbers() {
		if _, err := warm.Run(tpch.Queries[qn]); err != nil {
			return Fig9Result{}, err
		}
	}
	warm.Close()
	g.ResetMetrics()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s, err := g.NewLocalSession(fmt.Sprintf("client%d", c))
			if err != nil {
				errs[c] = err
				return
			}
			defer s.Close()
			mix := make([]string, 0, 27)
			for _, qn := range tpch.QueryNumbers() {
				mix = append(mix, tpch.Queries[qn])
			}
			mix = append(mix, tpch.VendorVariants...)
			for it := 0; it < iterations; it++ {
				q := mix[(it+c)%len(mix)]
				if _, err := s.Run(q); err != nil {
					errs[c] = fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Fig9Result{}, err
		}
	}
	res := snapshotToResult(
		fmt.Sprintf("TPC-H SF %.3f on %s, %d concurrent sessions x %d requests", sf, target.Name, clients, iterations),
		g.MetricsSnapshot())
	printFig9(w, "Figure 9 (b): Aggregated elapsed time for concurrent stress test", res)
	return res, nil
}

func printFig9(w io.Writer, title string, r Fig9Result) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %s (%d requests)\n", r.Label, r.Queries)
	total := r.Translate + r.Execute + r.Convert
	fmt.Fprintf(w, "  %-22s %12v  %6.2f%%\n", "Query translation", r.Translate, r.TranslatePct)
	fmt.Fprintf(w, "  %-22s %12v  %6.2f%%\n", "Execution", r.Execute, 100*float64(r.Execute)/float64(maxDur(total, 1)))
	fmt.Fprintf(w, "  %-22s %12v  %6.2f%%\n", "Result transformation", r.Convert, r.ConvertPct)
	fmt.Fprintf(w, "  %-22s %12v\n", "Total", total)
	fmt.Fprintf(w, "  Hyper-Q overhead: %.2f%% of total query response time\n", r.OverheadPct)
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// CompareResult is one target's end-to-end timing for the TPC-H stream.
type CompareResult struct {
	Target   string
	Total    time.Duration
	Overhead float64
}

// Compare implements the Appendix B.4 use case: "customers can compare
// side-by-side how their workloads perform on a variety of potential target
// databases, which can be used to guide their decision of where to migrate
// to." The same Teradata-dialect TPC-H stream runs through the gateway
// against every modeled target.
func Compare(w io.Writer, sf float64) ([]CompareResult, error) {
	fmt.Fprintf(w, "Side-by-side target evaluation (Appendix B.4), TPC-H SF %.3f\n", sf)
	fmt.Fprintf(w, "%-10s %14s %14s %14s %12s\n", "Target", "Translate", "Execute", "Convert", "Overhead")
	var out []CompareResult
	for _, target := range dialect.CloudTargets() {
		g, err := NewTPCHGateway(target, sf)
		if err != nil {
			return nil, err
		}
		s, err := g.NewLocalSession("compare")
		if err != nil {
			return nil, err
		}
		for _, qn := range tpch.QueryNumbers() {
			if _, err := s.Run(tpch.Queries[qn]); err != nil {
				s.Close()
				return nil, fmt.Errorf("%s Q%d: %w", target.Name, qn, err)
			}
		}
		s.Close()
		m := g.MetricsSnapshot()
		total := m.Translate + m.Execute + m.Convert
		r := CompareResult{Target: target.Name, Total: total, Overhead: 100 * m.Overhead()}
		out = append(out, r)
		fmt.Fprintf(w, "%-10s %14v %14v %14v %11.2f%%\n",
			target.Name, m.Translate.Round(time.Microsecond), m.Execute.Round(time.Millisecond),
			m.Convert.Round(time.Microsecond), r.Overhead)
	}
	return out, nil
}
