package bench

import (
	"bytes"
	"strings"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/feature"
)

func TestFig2Output(t *testing.T) {
	var buf bytes.Buffer
	Fig2(&buf)
	out := buf.String()
	for _, want := range []string{"QUALIFY", "MERGE", "Vector subqueries", "Macros", "25%", "0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Health", "Telco", "39731 (3778)", "192753 (10446)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Scaled(t *testing.T) {
	var buf bytes.Buffer
	results, err := Fig8(&buf, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Figure 8a shape is exact even when scaled: presence depends only on
	// which features exist in the workload.
	w1 := results[0]
	if w1.PresencePct[feature.ClassTransformation] < 77 || w1.PresencePct[feature.ClassTransformation] > 78 {
		t.Errorf("W1 transformation presence = %.1f", w1.PresencePct[feature.ClassTransformation])
	}
	w2 := results[1]
	if w2.QueryPct[feature.ClassEmulation] < 70 {
		t.Errorf("W2 emulation pct = %.1f, want ~79", w2.QueryPct[feature.ClassEmulation])
	}
	if !strings.Contains(buf.String(), "Figure 8 (a)") || !strings.Contains(buf.String(), "Figure 8 (b)") {
		t.Error("figure headers missing")
	}
}

func TestFig9aSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9a in short mode")
	}
	var buf bytes.Buffer
	res, err := Fig9a(&buf, dialect.CloudA(), 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 22 {
		t.Fatalf("queries = %d", res.Queries)
	}
	if res.OverheadPct <= 0 || res.OverheadPct >= 100 {
		t.Fatalf("overhead = %.2f%%", res.OverheadPct)
	}
	if !strings.Contains(buf.String(), "Hyper-Q overhead") {
		t.Error("output missing overhead line")
	}
}

func TestFig9bSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9b in short mode")
	}
	var buf bytes.Buffer
	res, err := Fig9b(&buf, dialect.CloudA(), 0.001, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 4*10 {
		t.Fatalf("requests = %d", res.Queries)
	}
	if res.OverheadPct <= 0 || res.OverheadPct >= 100 {
		t.Fatalf("overhead = %.2f%%", res.OverheadPct)
	}
}
