package bench

import (
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/hyperq"
	"hyperq/internal/odbc"
	"hyperq/internal/wire"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/wire/tdp"
)

// StreamResult compares the streamed and buffered result paths on a large
// result through the full wire stack: time to first row (the latency a
// client's cursor sees), end-to-end elapsed, and the gateway's peak
// result-memory footprint, which the streamed path must keep within the
// per-session budget regardless of result size.
type StreamResult struct {
	Rows        int   `json:"rows"`
	ResultBytes int   `json:"result_bytes"`
	Budget      int64 `json:"result_budget_bytes"`
	Depth       int   `json:"stream_depth"`
	Iterations  int   `json:"iterations"`
	// Best-of-N timings per path.
	StreamedFirstRow time.Duration `json:"streamed_first_row_ns"`
	StreamedElapsed  time.Duration `json:"streamed_elapsed_ns"`
	BufferedFirstRow time.Duration `json:"buffered_first_row_ns"`
	BufferedElapsed  time.Duration `json:"buffered_elapsed_ns"`
	// StreamedPeakBytes is the gateway's high-water in-flight result gauge
	// across the streamed runs; the buffered path holds the whole converted
	// result instead, reported as BufferedResidentBytes for scale.
	StreamedPeakBytes     int64 `json:"streamed_peak_inflight_bytes"`
	BufferedResidentBytes int   `json:"buffered_resident_bytes"`
	// FirstRowSpeedup is buffered/streamed time-to-first-row.
	FirstRowSpeedup float64 `json:"first_row_speedup"`
}

// streamBenchStack serves eng through a gateway over real sockets and
// returns the frontend address plus the gateway for metric reads.
func streamBenchStack(eng *engine.Engine, target *dialect.Profile, cfg hyperq.Config) (string, *hyperq.Gateway, func(), error) {
	beLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	go func() { _ = cwp.Serve(beLn, eng) }()
	cfg.Target = target
	cfg.Driver = &odbc.NetworkDriver{Addr: beLn.Addr().String(), User: "bench", Password: "bench"}
	cfg.Catalog = eng.Catalog().Clone()
	cfg.DisableTracing = true
	g, err := hyperq.New(cfg)
	if err != nil {
		beLn.Close()
		return "", nil, nil, err
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		beLn.Close()
		return "", nil, nil, err
	}
	go func() { _ = tdp.Serve(feLn, g) }()
	cleanup := func() { feLn.Close(); beLn.Close() }
	return feLn.Addr().String(), g, cleanup, nil
}

// timeRequest drives one request at the parcel level, timing the first
// record parcel and the end of the request, and summing record payloads.
func timeRequest(c net.Conn, sql string) (firstRow, elapsed time.Duration, rows, bytes int, err error) {
	var b wire.Buffer
	b.PutString(sql)
	start := time.Now()
	if err = wire.WriteMessage(c, tdp.MsgRunRequest, b.Bytes()); err != nil {
		return
	}
	for {
		kind, payload, rerr := wire.ReadMessage(c)
		if rerr != nil {
			err = rerr
			return
		}
		switch kind {
		case tdp.MsgRecord:
			if rows == 0 {
				firstRow = time.Since(start)
			}
			rows++
			bytes += len(payload)
		case tdp.MsgFailure:
			r := wire.NewReader(payload)
			err = fmt.Errorf("request failed [%d]: %s", r.U32(), r.String())
			return
		case tdp.MsgEndRequest:
			elapsed = time.Since(start)
			return
		}
	}
}

func benchLogon(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var b wire.Buffer
	b.PutString("benchuser")
	b.PutString("secret")
	if err := wire.WriteMessage(c, tdp.MsgLogon, b.Bytes()); err != nil {
		c.Close()
		return nil, err
	}
	if kind, _, err := wire.ReadMessage(c); err != nil || kind != tdp.MsgLogonOK {
		c.Close()
		return nil, fmt.Errorf("logon refused (kind 0x%02x, err %v)", kind, err)
	}
	return c, nil
}

// StreamBench loads a wide table of about `rows` rows (~300 bytes each),
// then pulls it through two identical gateways — one streaming with the
// given result budget and pipeline depth, one with streaming disabled — and
// reports best-of-`iters` first-row latency, elapsed time, and the
// gateway-side result memory footprint of each path.
func StreamBench(w io.Writer, target *dialect.Profile, rows, budget, depth, iters int) (StreamResult, error) {
	seedN := int(math.Ceil(math.Cbrt(float64(rows))))
	eng := engine.New(target)
	s := eng.NewSession()
	pad := strings.Repeat("x", 300)
	setup := []string{
		"CREATE TABLE SEED (I INT)",
		"CREATE TABLE BIG (PAD VARCHAR(400))",
	}
	for _, ddl := range setup {
		if _, err := s.ExecSQL(ddl); err != nil {
			return StreamResult{}, err
		}
	}
	for i := 0; i < seedN; i++ {
		if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO SEED VALUES (%d)", i)); err != nil {
			return StreamResult{}, err
		}
	}
	if _, err := s.ExecSQL(fmt.Sprintf("INSERT INTO BIG SELECT '%s' FROM SEED a, SEED b, SEED c", pad)); err != nil {
		return StreamResult{}, err
	}

	streamAddr, streamG, closeStream, err := streamBenchStack(eng, target, hyperq.Config{
		ResultBudget: budget,
		StreamDepth:  depth,
	})
	if err != nil {
		return StreamResult{}, err
	}
	defer closeStream()
	bufAddr, _, closeBuf, err := streamBenchStack(eng, target, hyperq.Config{DisableStreaming: true})
	if err != nil {
		return StreamResult{}, err
	}
	defer closeBuf()

	const sql = "SEL PAD FROM BIG"
	measure := func(addr string) (bestFirst, bestElapsed time.Duration, rows, bytes int, err error) {
		c, err := benchLogon(addr)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer c.Close()
		// One warm-up request fills the translation cache and the backend
		// connection outside the clock.
		if _, _, _, _, err := timeRequest(c, sql); err != nil {
			return 0, 0, 0, 0, err
		}
		for i := 0; i < iters; i++ {
			first, elapsed, r, b, err := timeRequest(c, sql)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			if i == 0 || first < bestFirst {
				bestFirst = first
			}
			if i == 0 || elapsed < bestElapsed {
				bestElapsed = elapsed
			}
			rows, bytes = r, b
		}
		return bestFirst, bestElapsed, rows, bytes, nil
	}

	res := StreamResult{Budget: int64(budget), Depth: depth, Iterations: iters}
	sFirst, sElapsed, sRows, sBytes, err := measure(streamAddr)
	if err != nil {
		return StreamResult{}, fmt.Errorf("streamed path: %w", err)
	}
	bFirst, bElapsed, bRows, bBytes, err := measure(bufAddr)
	if err != nil {
		return StreamResult{}, fmt.Errorf("buffered path: %w", err)
	}
	if sRows != bRows || sBytes != bBytes {
		return StreamResult{}, fmt.Errorf("paths disagree: streamed %d rows/%d B, buffered %d rows/%d B", sRows, sBytes, bRows, bBytes)
	}
	res.Rows, res.ResultBytes = sRows, sBytes
	res.StreamedFirstRow, res.StreamedElapsed = sFirst, sElapsed
	res.BufferedFirstRow, res.BufferedElapsed = bFirst, bElapsed
	res.BufferedResidentBytes = sBytes
	if sFirst > 0 {
		res.FirstRowSpeedup = float64(bFirst) / float64(sFirst)
	}

	// The streamed gateway's high-water mark — the bound the budget enforces.
	res.StreamedPeakBytes = streamG.ResultPeakBytes()

	fmt.Fprintf(w, "Streamed result path: %d rows, %.1f MiB result (budget %.1f MiB, depth %d, best of %d)\n",
		res.Rows, float64(res.ResultBytes)/(1<<20), float64(budget)/(1<<20), depth, iters)
	fmt.Fprintf(w, "  %-28s streamed=%v buffered=%v (%.1fx)\n", "Time to first row",
		res.StreamedFirstRow.Round(time.Microsecond), res.BufferedFirstRow.Round(time.Microsecond), res.FirstRowSpeedup)
	fmt.Fprintf(w, "  %-28s streamed=%v buffered=%v\n", "End-to-end",
		res.StreamedElapsed.Round(time.Microsecond), res.BufferedElapsed.Round(time.Microsecond))
	fmt.Fprintf(w, "  %-28s streamed=%.1f KiB buffered=%.1f MiB\n", "Gateway result memory",
		float64(res.StreamedPeakBytes)/(1<<10), float64(res.BufferedResidentBytes)/(1<<20))
	return res, nil
}
