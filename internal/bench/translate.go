package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/hyperq"
	"hyperq/internal/odbc"
	"hyperq/internal/workload/tpch"
)

// Allocation budgets for the translate hot path, enforced by scripts/check.sh
// against BenchmarkTracedTranslate/traced (cache disabled, so every request
// runs the full parse→bind→transform→serialize→execute→convert pipeline).
// The pre-optimization pipeline sat at ~28,000 allocs/op and ~1.25 MB/op;
// the budgets hold the regression line at roughly 2× the optimized numbers
// so environment noise does not trip the gate while a real regression does.
const (
	TranslateAllocBudget = 1000
	TranslateBytesBudget = 131072
)

// TranslatePath is one measured request path through the gateway.
type TranslatePath struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Iterations  int   `json:"iterations"`
}

// TranslateResult is the BENCH_translate.json artifact.
type TranslateResult struct {
	Target       string                   `json:"target"`
	ScaleFactor  float64                  `json:"scale_factor"`
	Paths        map[string]TranslatePath `json:"paths"`
	AllocsBudget int64                    `json:"allocs_budget"`
	BytesBudget  int64                    `json:"bytes_budget"`
}

// translateShape is the query shape shared by all three paths (and by
// BenchmarkTracedTranslate): a one-literal aggregation over LINEITEM.
const translateShape = "SEL L_RETURNFLAG, COUNT(*) FROM LINEITEM WHERE L_QUANTITY < %d GROUP BY L_RETURNFLAG"

// translateCase measures one request path with testing.Benchmark: a gateway
// over the in-process engine, warmed outside the timer, then s.Run in the
// benchmark loop with allocation reporting.
func translateCase(target *dialect.Profile, sf float64, disableCache bool, query func(i int) string) (testing.BenchmarkResult, error) {
	eng := engine.New(target)
	if err := tpch.SetupEngine(eng.NewSession(), sf); err != nil {
		return testing.BenchmarkResult{}, err
	}
	g, err := hyperq.New(hyperq.Config{
		Target:                  target,
		Driver:                  &odbc.LocalDriver{Engine: eng},
		Catalog:                 eng.Catalog().Clone(),
		DisableTranslationCache: disableCache,
	})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	s, err := g.NewLocalSession("bench")
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer s.Close()
	for i := 0; i < 8; i++ { // warm up: fills the cache when enabled
		if _, err := s.Run(query(i)); err != nil {
			return testing.BenchmarkResult{}, err
		}
	}
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(query(i)); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	return res, runErr
}

// TranslateBench measures allocations per request on the three translate
// paths and writes the result (with the regression budgets) to outPath:
//
//   - cold: translation cache disabled; every request runs the full
//     parse→bind→transform→serialize pipeline.
//   - fingerprint-hit: cache enabled with a never-repeating literal, so the
//     request text always misses the request tier and the shape always hits
//     the fingerprint tier (template splicing instead of re-serialization).
//   - exact-hit: cache enabled with byte-identical request text, hitting the
//     request tier.
//
// All three include backend execution and result conversion (the engine is
// in-process), so ns/op is a full-request figure; the alloc columns are the
// translate-path signal the check.sh gate tracks.
func TranslateBench(w io.Writer, target *dialect.Profile, sf float64, outPath string) (TranslateResult, error) {
	res := TranslateResult{
		Target:       target.Name,
		ScaleFactor:  sf,
		Paths:        map[string]TranslatePath{},
		AllocsBudget: TranslateAllocBudget,
		BytesBudget:  TranslateBytesBudget,
	}
	cases := []struct {
		name         string
		disableCache bool
		query        func(i int) string
	}{
		{"cold", true, func(i int) string { return fmt.Sprintf(translateShape, 10+i%40) }},
		{"fingerprint-hit", false, func(i int) string { return fmt.Sprintf(translateShape, 10+i) }},
		{"exact-hit", false, func(int) string { return fmt.Sprintf(translateShape, 30) }},
	}
	fmt.Fprintln(w, "Translate hot path: allocations per request")
	fmt.Fprintf(w, "%-16s %14s %12s %12s\n", "Path", "ns/op", "B/op", "allocs/op")
	for _, c := range cases {
		r, err := translateCase(target, sf, c.disableCache, c.query)
		if err != nil {
			return res, fmt.Errorf("%s: %w", c.name, err)
		}
		p := TranslatePath{
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		res.Paths[c.name] = p
		fmt.Fprintf(w, "%-16s %14s %12d %12d\n", c.name, time.Duration(p.NsPerOp).String(), p.BytesPerOp, p.AllocsPerOp)
	}
	fmt.Fprintf(w, "budget (cold path): %d allocs/op, %d B/op\n", res.AllocsBudget, res.BytesBudget)
	if cold, ok := res.Paths["cold"]; ok {
		if cold.AllocsPerOp > TranslateAllocBudget {
			return res, fmt.Errorf("cold path allocates %d/op, budget %d", cold.AllocsPerOp, TranslateAllocBudget)
		}
		if cold.BytesPerOp > TranslateBytesBudget {
			return res, fmt.Errorf("cold path allocates %d B/op, budget %d", cold.BytesPerOp, TranslateBytesBudget)
		}
	}
	if outPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return res, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return res, err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	return res, nil
}
