// Package catalog holds the metadata layer shared by the Hyper-Q gateway and
// the cloud-engine substrate: table, view and macro definitions, plus the
// gateway-side "DTM catalog" the paper uses to remember column properties the
// target system cannot represent (Table 2, "Unsupported column properties").
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hyperq/internal/types"
)

// Column describes one table column.
type Column struct {
	Name string
	Type types.T
	// NotNull marks a NOT NULL constraint.
	NotNull bool
	// Default is the textual default expression, if any. Non-constant
	// defaults are one of the "unsupported column properties" Hyper-Q keeps
	// in its own catalog when the target cannot store them.
	Default string
	// CaseInsensitive marks Teradata NOT CASESPECIFIC text columns.
	CaseInsensitive bool
}

// TableKind distinguishes persistent tables from the temporary flavors the
// dialects support.
type TableKind uint8

// Table kinds.
const (
	KindPersistent TableKind = iota
	// KindGlobalTemporary is a Teradata Global Temporary Table: the
	// definition is persistent, the contents are per session.
	KindGlobalTemporary
	// KindVolatile is a session-scoped table (Teradata VOLATILE, or the
	// engine-side TEMP tables Hyper-Q creates during emulation).
	KindVolatile
)

// Table is a table definition.
type Table struct {
	Name    string
	Columns []Column
	Kind    TableKind
	// Set reports Teradata SET semantics (duplicate rows rejected). Targets
	// without set tables emulate this with unique constraints; the binder
	// records the property here.
	Set bool
	// PrimaryIndex lists the column names of the primary index, if any.
	PrimaryIndex []string
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the table definition.
func (t *Table) Clone() *Table {
	c := *t
	c.Columns = append([]Column(nil), t.Columns...)
	c.PrimaryIndex = append([]string(nil), t.PrimaryIndex...)
	return &c
}

// View is a named stored query. The definition is kept as SQL text in the
// originating dialect and re-bound on reference.
type View struct {
	Name    string
	Columns []string // optional explicit column list
	SQL     string
	// Updatable marks views eligible for the DML-on-views emulation.
	Updatable bool
	// BaseTable is the single base table of an updatable view.
	BaseTable string
}

// Macro is a Teradata macro: a named, parameterized sequence of SQL
// statements. Targets without macros require mid-tier emulation (§7.1: 79.1%
// of Customer 2's queries call macros).
type Macro struct {
	Name   string
	Params []MacroParam
	// Body is the raw statement list between the BEGIN/END (or parenthesized
	// form), still in the source dialect. Parameters appear as :name.
	Body string
}

// MacroParam is a single macro parameter.
type MacroParam struct {
	Name string
	Type types.T
}

// Catalog is a concurrency-safe metadata store. A Catalog instance backs the
// cloud engine; the Hyper-Q gateway keeps a second, gateway-side Catalog for
// objects the target cannot represent (macros, column properties).
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View
	macros map[string]*Macro
	// version is a monotonic counter bumped by every successful DDL/macro
	// mutation. Consumers (the gateway translation cache) embed it in cache
	// keys so plans translated against stale metadata can never be served.
	version uint64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
		macros: make(map[string]*Macro),
	}
}

func key(name string) string { return strings.ToUpper(name) }

// CreateTable registers a table definition.
func (c *Catalog) CreateTable(t *Table) error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %s has no columns", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		k := key(col.Name)
		if seen[k] {
			return fmt.Errorf("catalog: duplicate column %s in table %s", col.Name, t.Name)
		}
		seen[k] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(t.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: %s already exists as a view", t.Name)
	}
	c.tables[k] = t.Clone()
	c.version++
	return nil
}

// DropTable removes a table definition.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.tables, k)
	c.version++
	return nil
}

// Table looks up a table definition.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	return t, ok
}

// Tables returns all table names in sorted order.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// CreateView registers a view.
func (c *Catalog) CreateView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(v.Name)
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: view %s already exists", v.Name)
	}
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: %s already exists as a table", v.Name)
	}
	cp := *v
	c.views[k] = &cp
	c.version++
	return nil
}

// DropView removes a view.
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.views[k]; !ok {
		return fmt.Errorf("catalog: view %s does not exist", name)
	}
	delete(c.views, k)
	c.version++
	return nil
}

// View looks up a view.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	return v, ok
}

// CreateMacro registers a macro (REPLACE semantics when replace is true).
func (c *Catalog) CreateMacro(m *Macro, replace bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(m.Name)
	if _, ok := c.macros[k]; ok && !replace {
		return fmt.Errorf("catalog: macro %s already exists", m.Name)
	}
	cp := *m
	cp.Params = append([]MacroParam(nil), m.Params...)
	c.macros[k] = &cp
	c.version++
	return nil
}

// DropMacro removes a macro.
func (c *Catalog) DropMacro(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.macros[k]; !ok {
		return fmt.Errorf("catalog: macro %s does not exist", name)
	}
	delete(c.macros, k)
	c.version++
	return nil
}

// Macro looks up a macro.
func (c *Catalog) Macro(name string) (*Macro, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.macros[key(name)]
	return m, ok
}

// Macros returns all macro names in sorted order.
func (c *Catalog) Macros() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.macros))
	for _, m := range c.macros {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}

// Version returns the monotonic mutation counter: it increases on every
// successful CREATE/DROP/REPLACE of a table, view, or macro. Two reads
// returning the same value guarantee the metadata did not change in between.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Clone returns a deep copy of the catalog; used to give each engine session
// an isolated view of global-temporary definitions.
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := New()
	for k, t := range c.tables {
		n.tables[k] = t.Clone()
	}
	for k, v := range c.views {
		cp := *v
		n.views[k] = &cp
	}
	for k, m := range c.macros {
		cp := *m
		n.macros[k] = &cp
	}
	return n
}
