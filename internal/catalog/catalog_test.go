package catalog

import (
	"testing"

	"hyperq/internal/types"
)

func sampleTable(name string) *Table {
	return &Table{
		Name: name,
		Columns: []Column{
			{Name: "ID", Type: types.Int, NotNull: true},
			{Name: "NAME", Type: types.VarChar(30)},
		},
		PrimaryIndex: []string{"ID"},
	}
}

func TestCreateAndLookupTable(t *testing.T) {
	c := New()
	if err := c.CreateTable(sampleTable("emp")); err != nil {
		t.Fatal(err)
	}
	// Lookup is case-insensitive.
	got, ok := c.Table("EMP")
	if !ok || got.Name != "emp" {
		t.Fatalf("Table lookup failed: %v %v", got, ok)
	}
	if got.ColumnIndex("name") != 1 || got.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if err := c.CreateTable(sampleTable("Emp")); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestCreateTableValidation(t *testing.T) {
	c := New()
	if err := c.CreateTable(&Table{Name: "t"}); err == nil {
		t.Error("empty table accepted")
	}
	bad := &Table{Name: "t", Columns: []Column{{Name: "a"}, {Name: "A"}}}
	if err := c.CreateTable(bad); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestDropTable(t *testing.T) {
	c := New()
	if err := c.DropTable("nope"); err == nil {
		t.Error("dropping missing table should fail")
	}
	_ = c.CreateTable(sampleTable("t1"))
	if err := c.DropTable("T1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("t1"); ok {
		t.Error("table survived drop")
	}
}

func TestTableCloneIsolation(t *testing.T) {
	c := New()
	src := sampleTable("t")
	_ = c.CreateTable(src)
	src.Columns[0].Name = "MUTATED"
	got, _ := c.Table("t")
	if got.Columns[0].Name != "ID" {
		t.Error("catalog stored a shared reference, not a clone")
	}
	got.Columns[0].Name = "ALSO_MUTATED"
	again, _ := c.Table("t")
	_ = again // Table returns the stored pointer; callers must not mutate.
}

func TestViews(t *testing.T) {
	c := New()
	v := &View{Name: "v1", SQL: "SELECT 1", Updatable: true, BaseTable: "t"}
	if err := c.CreateView(v); err != nil {
		t.Fatal(err)
	}
	got, ok := c.View("V1")
	if !ok || got.SQL != "SELECT 1" || !got.Updatable {
		t.Fatalf("view lookup: %+v %v", got, ok)
	}
	if err := c.CreateView(v); err == nil {
		t.Error("duplicate view accepted")
	}
	if err := c.DropView("v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v1"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestNameCollisionAcrossKinds(t *testing.T) {
	c := New()
	_ = c.CreateTable(sampleTable("x"))
	if err := c.CreateView(&View{Name: "X", SQL: "SELECT 1"}); err == nil {
		t.Error("view created over existing table name")
	}
	c2 := New()
	_ = c2.CreateView(&View{Name: "x", SQL: "SELECT 1"})
	if err := c2.CreateTable(sampleTable("X")); err == nil {
		t.Error("table created over existing view name")
	}
}

func TestMacros(t *testing.T) {
	c := New()
	m := &Macro{
		Name:   "monthly_report",
		Params: []MacroParam{{Name: "mon", Type: types.Int}},
		Body:   "SEL * FROM sales WHERE month = :mon;",
	}
	if err := c.CreateMacro(m, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateMacro(m, false); err == nil {
		t.Error("duplicate macro without REPLACE accepted")
	}
	m2 := *m
	m2.Body = "SEL 2;"
	if err := c.CreateMacro(&m2, true); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Macro("MONTHLY_REPORT")
	if !ok || got.Body != "SEL 2;" {
		t.Fatalf("macro replace failed: %+v", got)
	}
	if names := c.Macros(); len(names) != 1 || names[0] != "monthly_report" {
		t.Errorf("Macros() = %v", names)
	}
	if err := c.DropMacro("monthly_report"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropMacro("monthly_report"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestTablesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := c.CreateTable(sampleTable(n)); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Tables()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tables() = %v", got)
		}
	}
}

func TestClone(t *testing.T) {
	c := New()
	_ = c.CreateTable(sampleTable("t"))
	_ = c.CreateView(&View{Name: "v", SQL: "SELECT 1"})
	_ = c.CreateMacro(&Macro{Name: "m", Body: "SEL 1;"}, false)
	cl := c.Clone()
	if err := cl.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("t"); !ok {
		t.Error("dropping in clone affected original")
	}
	if _, ok := cl.View("v"); !ok {
		t.Error("clone lost view")
	}
	if _, ok := cl.Macro("m"); !ok {
		t.Error("clone lost macro")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = c.CreateTable(sampleTable("t"))
			_ = c.DropTable("t")
		}
	}()
	for i := 0; i < 200; i++ {
		c.Table("t")
		c.Tables()
	}
	<-done
}

func TestVersionBumpsOnEveryMutation(t *testing.T) {
	c := New()
	if c.Version() != 0 {
		t.Fatalf("fresh catalog version = %d", c.Version())
	}
	expect := func(step string, want uint64) {
		t.Helper()
		if got := c.Version(); got != want {
			t.Fatalf("after %s: version = %d, want %d", step, got, want)
		}
	}
	if err := c.CreateTable(sampleTable("T")); err != nil {
		t.Fatal(err)
	}
	expect("CREATE TABLE", 1)
	if err := c.CreateView(&View{Name: "V", SQL: "SELECT ID FROM T"}); err != nil {
		t.Fatal(err)
	}
	expect("CREATE VIEW", 2)
	if err := c.CreateMacro(&Macro{Name: "M", Body: "SELECT 1;"}, false); err != nil {
		t.Fatal(err)
	}
	expect("CREATE MACRO", 3)
	if err := c.CreateMacro(&Macro{Name: "M", Body: "SELECT 2;"}, true); err != nil {
		t.Fatal(err)
	}
	expect("REPLACE MACRO", 4)
	if err := c.DropMacro("M"); err != nil {
		t.Fatal(err)
	}
	expect("DROP MACRO", 5)
	if err := c.DropView("V"); err != nil {
		t.Fatal(err)
	}
	expect("DROP VIEW", 6)
	if err := c.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	expect("DROP TABLE", 7)
}

func TestVersionUnchangedOnFailedMutation(t *testing.T) {
	c := New()
	if err := c.CreateTable(sampleTable("T")); err != nil {
		t.Fatal(err)
	}
	v := c.Version()
	if err := c.CreateTable(sampleTable("T")); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if err := c.DropTable("MISSING"); err == nil {
		t.Fatal("drop of missing table succeeded")
	}
	if got := c.Version(); got != v {
		t.Fatalf("failed mutations moved version %d -> %d", v, got)
	}
}
