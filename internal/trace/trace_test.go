package trace

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := New(1, 7, "u", "SELECT 1")
	parse := tr.Start("parse")
	parse.End()
	exec := tr.Start("execute")
	exec.Set("sql", "SELECT 1")
	rc := tr.Start("reconnect")
	rp := tr.Start("replay")
	rp.End()
	rc.End()
	tr.Event("retry", "attempt", "1")
	exec.End()
	tr.Finish("ok", 0, "", "")

	if len(tr.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(tr.Root.Children))
	}
	e := tr.FindSpan("execute")
	if e == nil || len(e.Children) != 2 {
		t.Fatalf("execute span children wrong: %+v", e)
	}
	if tr.FindSpan("replay") == nil {
		t.Fatal("replay span not nested under reconnect")
	}
	if rc := tr.FindSpan("reconnect"); rc.Children[0].Name != "replay" {
		t.Fatalf("reconnect child = %q", rc.Children[0].Name)
	}
	if tr.FindSpan("retry") == nil {
		t.Fatal("retry event missing")
	}
	if tr.Outcome != "ok" || tr.DurNs <= 0 {
		t.Fatalf("finish did not stamp outcome/duration: %+v", tr)
	}
	if tr.StageNs["parse"] < 0 || tr.StageNs["execute"] <= 0 {
		t.Fatalf("stage sums missing: %v", tr.StageNs)
	}
	// Finished traces must be JSON-encodable (the /traces endpoint).
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["id"] != "t-7-1" {
		t.Fatalf("id = %v", decoded["id"])
	}
}

func TestFinishClosesAbandonedSpans(t *testing.T) {
	tr := New(1, 1, "u", "SELECT 1")
	tr.Start("execute") //hyperqlint:ignore spanend deliberately abandons the span to exercise Finish's stack unwinding
	tr.Start("inner")   //hyperqlint:ignore spanend deliberately abandons the span to exercise Finish's stack unwinding
	tr.Finish("error", 3807, "execution", "boom")
	if sp := tr.FindSpan("execute"); sp.DurNs < 0 {
		t.Fatal("abandoned span not closed")
	}
	if len(tr.stack) != 1 {
		t.Fatalf("stack not unwound: %d", len(tr.stack))
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	sp.Set("k", "v")
	sp.End()
	tr.Event("e")
	tr.AddTranslated("sql")
	tr.SetCache("hit")
	tr.Finish("ok", 0, "", "")
	if tr.Duration() != 0 || tr.Stage("x") != 0 || tr.FindSpan("x") != nil {
		t.Fatal("nil trace accessors should be zero")
	}
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != nil {
		t.Fatal("nil trace must not be stored in context")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(1, 1, "u", "q")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context should yield nil")
	}
}

func finished(d time.Duration) *Trace {
	tr := New(1, 1, "u", "q")
	tr.Finish("ok", 0, "", "")
	tr.DurNs = d.Nanoseconds() // deterministic durations for ring tests
	return tr
}

func TestRingRecentBounded(t *testing.T) {
	r := NewRing(4, -1)
	var traces []*Trace
	for i := 0; i < 6; i++ {
		tr := finished(time.Duration(i) * time.Millisecond)
		traces = append(traces, tr)
		r.Add(tr)
	}
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d, want 4", len(recent))
	}
	if recent[0] != traces[5] || recent[3] != traces[2] {
		t.Fatal("recent order wrong (want newest first)")
	}
}

func TestRingSlowRetainsWorst(t *testing.T) {
	r := NewRing(64, 10*time.Millisecond)
	slow := finished(time.Second)
	r.Add(slow)
	r.Add(finished(time.Millisecond)) // below threshold
	for i := 0; i < 100; i++ {
		r.Add(finished(time.Duration(11+i) * time.Millisecond))
	}
	got := r.Slow()
	if len(got) != 16 {
		t.Fatalf("slow list = %d, want 16 (cap)", len(got))
	}
	if got[0] != slow {
		t.Fatal("worst offender evicted from slow list")
	}
	for i := 1; i < len(got); i++ {
		if got[i].DurNs > got[i-1].DurNs {
			t.Fatal("slow list not sorted slowest-first")
		}
	}
	r.Reset()
	if len(r.Slow()) != 0 || len(r.Recent()) != 0 {
		t.Fatal("reset did not clear the ring")
	}
}

func TestRingSlowDisabled(t *testing.T) {
	r := NewRing(4, -1)
	r.Add(finished(time.Hour))
	if len(r.Slow()) != 0 {
		t.Fatal("negative threshold must disable slow retention")
	}
}
