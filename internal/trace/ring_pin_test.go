package trace

import (
	"fmt"
	"testing"
	"time"
)

func mkTrace(id string, dur time.Duration) *Trace {
	return &Trace{ID: id, DurNs: int64(dur)}
}

// TestRingPinSurvivesChurn: a pinned exemplar must stay retrievable no matter
// how many traces rotate through the recent ring past it.
func TestRingPinSurvivesChurn(t *testing.T) {
	r := NewRing(4, -1) // tiny ring, slow retention off
	ex := mkTrace("exemplar", 5*time.Millisecond)
	r.Add(ex)
	r.Pin(ex)
	for i := 0; i < 100; i++ {
		r.Add(mkTrace(fmt.Sprintf("churn-%d", i), time.Millisecond))
	}
	if got := r.Get("exemplar"); got != ex {
		t.Fatal("pinned trace rotated out of the ring")
	}
	if n := r.PinnedCount(); n != 1 {
		t.Fatalf("pinned count = %d, want 1", n)
	}
	// Unpinned and churned out: gone.
	r.Unpin("exemplar")
	if got := r.Get("exemplar"); got != nil {
		t.Fatal("unpinned churned-out trace still retrievable")
	}
	if n := r.PinnedCount(); n != 0 {
		t.Fatalf("pinned count = %d after unpin, want 0", n)
	}
}

// TestRingGetPrecedence: Get consults pins, then the slow list, then the
// recent ring — the pinned instance wins over a same-id ring entry.
func TestRingGetPrecedence(t *testing.T) {
	r := NewRing(8, time.Millisecond)
	pinned := mkTrace("dup", 10*time.Millisecond)
	r.Pin(pinned)
	other := mkTrace("dup", 2*time.Millisecond)
	r.Add(other)
	if got := r.Get("dup"); got != pinned {
		t.Fatal("Get preferred a ring entry over the pinned exemplar")
	}
	// Slow-retained traces are found even after recent-ring churn.
	slow := mkTrace("slow", 50*time.Millisecond)
	r.Add(slow)
	for i := 0; i < 20; i++ {
		r.Add(mkTrace(fmt.Sprintf("fast-%d", i), time.Microsecond))
	}
	if got := r.Get("slow"); got != slow {
		t.Fatal("slow trace not retrievable after recent churn")
	}
}

func TestRingPinIdempotentAndNilSafe(t *testing.T) {
	r := NewRing(4, -1)
	ex := mkTrace("x", time.Millisecond)
	r.Pin(ex)
	r.Pin(ex)
	if n := r.PinnedCount(); n != 1 {
		t.Fatalf("double pin counted twice: %d", n)
	}
	r.Pin(nil)
	r.Unpin("unknown")

	var nilRing *Ring
	nilRing.Pin(ex)
	nilRing.Unpin("x")
	if nilRing.Get("x") != nil || nilRing.PinnedCount() != 0 {
		t.Fatal("nil ring not inert")
	}
}

func TestRingResetClearsPins(t *testing.T) {
	r := NewRing(4, -1)
	ex := mkTrace("x", time.Millisecond)
	r.Add(ex)
	r.Pin(ex)
	r.Reset()
	if r.Get("x") != nil || r.PinnedCount() != 0 {
		t.Fatal("Reset left pinned traces behind")
	}
}
