// Package trace implements per-request pipeline tracing for the gateway: a
// Trace is created when a frontend request arrives at the protocol handler
// and follows the statement through algebrize (parse + bind), transform,
// serialize, cache lookup, backend execution (including retries, reconnects
// and session replay inside the resilient driver), and result conversion.
// Each stage records a Span in a tree rooted at the request; the finished
// trace carries the rewritten SQL-B text, the cache outcome, the emulation
// fan-out (number of backend requests one frontend statement expanded into),
// and an error classification — the per-statement processing log a
// replatforming engineer uses to see what the virtualization layer did.
//
// All methods are nil-receiver safe so instrumented code never has to guard
// on tracing being enabled; with tracing off every call is a no-op.
package trace

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage (or instantaneous event, Duration 0) within a
// trace. Start is the offset from the trace start.
type Span struct {
	Name     string  `json:"name"`
	StartNs  int64   `json:"start_ns"`
	DurNs    int64   `json:"duration_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	tr    *Trace
	ended bool
}

// Trace is the record of one frontend request through the gateway pipeline.
// A trace is mutated only by the session goroutine processing the request
// (plus the driver goroutine it calls into, which is the same one); once
// finished and published to a Ring it is immutable.
type Trace struct {
	ID        string    `json:"id"`
	Session   uint64    `json:"session"`
	User      string    `json:"user"`
	SQL       string    `json:"sql"`
	StartedAt time.Time `json:"started_at"`
	DurNs     int64     `json:"duration_ns"`
	// Outcome is "ok" or "error"; ErrCode/ErrClass carry the frontend
	// failure code and its classification when Outcome is "error".
	Outcome  string `json:"outcome"`
	ErrCode  int    `json:"error_code,omitempty"`
	ErrClass string `json:"error_class,omitempty"`
	ErrMsg   string `json:"error,omitempty"`
	// Cache is the translation-cache outcome of the request: "hit", "miss",
	// "bypass", "raw-hit" (request-tier byte-identical replay), or "" when
	// the statement never consulted the cache.
	Cache string `json:"cache,omitempty"`
	// Fingerprint is the statement-shape fingerprint id of the request — the
	// join key against the /statements workload registry. Empty when
	// fingerprinting is off.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Streamed marks a request whose result rows were delivered through the
	// streaming pipeline rather than materialized.
	Streamed bool `json:"streamed,omitempty"`
	// Translated is the rewritten SQL-B text sent to the backend, one entry
	// per backend request. Emulated statements (recursive queries, MERGE)
	// fan out into several entries.
	Translated []string `json:"translated,omitempty"`
	// BackendRequests is the emulation fan-out: how many backend requests
	// this one frontend request expanded into.
	BackendRequests int `json:"backend_requests"`
	// StageNs sums span durations by span name (parse, bind, transform,
	// serialize, cache, execute, convert, reconnect, replay, ...).
	StageNs map[string]int64 `json:"stage_ns"`
	// Root is the request span tree.
	Root *Span `json:"spans"`

	mu    sync.Mutex
	start time.Time
	stack []*Span
}

// New starts a trace. id is a gateway-unique trace ordinal, session the
// owning session identity.
func New(id, session uint64, user, sql string) *Trace {
	now := time.Now()
	t := &Trace{
		ID:        fmt.Sprintf("t-%d-%d", session, id),
		Session:   session,
		User:      user,
		SQL:       sql,
		StartedAt: now,
		StageNs:   make(map[string]int64),
		start:     now,
	}
	t.Root = &Span{Name: "request", tr: t}
	t.stack = []*Span{t.Root}
	return t
}

// Start opens a child span of the innermost open span and returns it. End it
// with Span.End. Safe on a nil trace (returns nil).
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{Name: name, StartNs: time.Since(t.start).Nanoseconds(), tr: t}
	parent := t.stack[len(t.stack)-1]
	parent.Children = append(parent.Children, sp)
	t.stack = append(t.stack, sp)
	return sp
}

// Event records an instantaneous child span (Duration 0) under the innermost
// open span, with key/value attribute pairs. Safe on a nil trace.
func (t *Trace) Event(name string, kv ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{Name: name, StartNs: time.Since(t.start).Nanoseconds(), ended: true}
	for i := 0; i+1 < len(kv); i += 2 {
		sp.Attrs = append(sp.Attrs, Attr{Key: kv[i], Value: kv[i+1]})
	}
	parent := t.stack[len(t.stack)-1]
	parent.Children = append(parent.Children, sp)
}

// End closes the span, accumulating its duration into the trace's per-stage
// sums. Idempotent; safe on a nil span.
func (sp *Span) End() {
	if sp == nil || sp.tr == nil {
		return
	}
	sp.EndWithDuration(time.Duration(time.Since(sp.tr.start).Nanoseconds() - sp.StartNs))
}

// EndWithDuration closes the span like End but records the given duration
// instead of wall-clock elapsed time. For concurrent pipeline stages whose
// effective time is accumulated externally — e.g. the streaming convert
// stage, which overlaps the execute span's wall-clock — so per-stage sums
// stay additive instead of double-counting overlapped time.
func (sp *Span) EndWithDuration(d time.Duration) {
	if sp == nil || sp.tr == nil {
		return
	}
	t := sp.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp.ended {
		return
	}
	sp.ended = true
	sp.DurNs = d.Nanoseconds()
	t.StageNs[sp.Name] += sp.DurNs
	// Pop the span (and anything opened after it that was left open — ending
	// a parent implicitly ends abandoned children).
	for i := len(t.stack) - 1; i >= 1; i-- {
		if t.stack[i] == sp {
			t.stack = t.stack[:i]
			break
		}
	}
}

// Set attaches a key/value attribute. Safe on a nil span.
func (sp *Span) Set(key, value string) {
	if sp == nil || sp.tr == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
}

// AddTranslated appends one backend request's SQL-B text and bumps the
// fan-out counter. Safe on a nil trace.
func (t *Trace) AddTranslated(sql string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Translated = append(t.Translated, sql)
	t.BackendRequests++
}

// SetCache records the translation-cache outcome (last write wins — for a
// multi-statement request the final statement's outcome stands, with the
// full story in the per-statement cache spans).
func (t *Trace) SetCache(outcome string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Cache = outcome
}

// SetFingerprint stamps the statement-shape fingerprint id.
func (t *Trace) SetFingerprint(fp string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Fingerprint = fp
}

// SetStreamed marks the request as having streamed its result rows.
func (t *Trace) SetStreamed(streamed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Streamed = streamed
}

// CountSpans returns how many spans (including events) in the tree carry the
// given name — e.g. the per-request "retry" / "reconnect" counts the
// resilient driver recorded. Safe on a nil trace.
func (t *Trace) CountSpans(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return countSpans(t.Root, name)
}

func countSpans(sp *Span, name string) int {
	if sp == nil {
		return 0
	}
	n := 0
	if sp.Name == name {
		n++
	}
	for _, c := range sp.Children {
		n += countSpans(c, name)
	}
	return n
}

// Finish closes the root span and stamps the outcome. After Finish the trace
// must not be mutated further.
func (t *Trace) Finish(outcome string, errCode int, errClass, errMsg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Outcome = outcome
	t.ErrCode = errCode
	t.ErrClass = errClass
	t.ErrMsg = errMsg
	t.mu.Unlock()
	// Close any spans left open by an error path, innermost first.
	for {
		t.mu.Lock()
		var open *Span
		if len(t.stack) > 1 {
			open = t.stack[len(t.stack)-1]
		}
		t.mu.Unlock()
		if open == nil {
			break
		}
		open.End()
	}
	t.mu.Lock()
	t.DurNs = time.Since(t.start).Nanoseconds()
	t.Root.DurNs = t.DurNs
	t.Root.ended = true
	t.mu.Unlock()
}

// Duration returns the finished trace's wall time.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.DurNs)
}

// Stage returns the accumulated duration of the named stage.
func (t *Trace) Stage(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Duration(t.StageNs[name])
}

// FindSpan returns the first span with the given name in depth-first order,
// or nil. Intended for tests and diagnostics on finished traces.
func (t *Trace) FindSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return findSpan(t.Root, name)
}

func findSpan(sp *Span, name string) *Span {
	if sp == nil {
		return nil
	}
	if sp.Name == name {
		return sp
	}
	for _, c := range sp.Children {
		if found := findSpan(c, name); found != nil {
			return found
		}
	}
	return nil
}

// --- context propagation ----------------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying the trace, for propagation into layers
// below the session (the backend driver's retry/reconnect machinery).
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the trace (nil when absent).
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
