package trace

import (
	"sort"
	"sync"
	"time"
)

// Ring is a bounded in-memory store of finished traces: a circular buffer of
// the most recent traces plus a separate retention list for the slowest
// traces at or above the slow-query threshold. The slow list always keeps
// the worst offenders — a burst of fast queries can evict recent history but
// never the slowest statements, which are exactly the ones an operator comes
// looking for after the fact.
type Ring struct {
	mu      sync.Mutex
	cap     int
	slowCap int
	slow    time.Duration
	recent  []*Trace // circular; next is the write position
	next    int
	slowest []*Trace // sorted by DurNs descending, len <= slowCap
	// pinned holds traces retained by id regardless of ring churn — the
	// workload-statistics registry pins each fingerprint's slowest trace as
	// an exemplar, so cardinality is bounded by the registry's entry bound
	// (one pin per tracked fingerprint, unpinned on eviction and reset).
	pinned map[string]*Trace
}

// NewRing creates a ring retaining up to capacity recent traces and the
// capacity/4 (min 16) slowest traces at or above slowThreshold. capacity 0
// selects 256. slowThreshold 0 selects 200ms; negative disables slow
// retention entirely.
func NewRing(capacity int, slowThreshold time.Duration) *Ring {
	if capacity <= 0 {
		capacity = 256
	}
	if slowThreshold == 0 {
		slowThreshold = 200 * time.Millisecond
	}
	slowCap := capacity / 4
	if slowCap < 16 {
		slowCap = 16
	}
	return &Ring{cap: capacity, slowCap: slowCap, slow: slowThreshold}
}

// SlowThreshold reports the slow-query threshold.
func (r *Ring) SlowThreshold() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slow
}

// Add publishes a finished trace.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recent) < r.cap {
		r.recent = append(r.recent, t)
	} else {
		r.recent[r.next] = t
	}
	r.next = (r.next + 1) % r.cap
	if r.slow < 0 || time.Duration(t.DurNs) < r.slow {
		return
	}
	// Insert into the slow list, keeping it sorted slowest-first; when full,
	// the fastest slow trace is dropped.
	i := sort.Search(len(r.slowest), func(i int) bool { return r.slowest[i].DurNs < t.DurNs })
	r.slowest = append(r.slowest, nil)
	copy(r.slowest[i+1:], r.slowest[i:])
	r.slowest[i] = t
	if len(r.slowest) > r.slowCap {
		r.slowest = r.slowest[:r.slowCap]
	}
}

// Recent returns the retained traces, newest first.
func (r *Ring) Recent() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.recent))
	for i := 1; i <= len(r.recent); i++ {
		out = append(out, r.recent[(r.next-i+len(r.recent)*2)%len(r.recent)])
	}
	return out
}

// Slow returns the retained slow traces, slowest first.
func (r *Ring) Slow() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, len(r.slowest))
	copy(out, r.slowest)
	return out
}

// Pin retains a finished trace by id until Unpin (or Reset): ring churn
// cannot rotate it out. Idempotent; safe on a nil ring or trace.
func (r *Ring) Pin(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pinned == nil {
		r.pinned = make(map[string]*Trace)
	}
	r.pinned[t.ID] = t
}

// Unpin releases a pinned trace. Safe on a nil ring and unknown ids.
func (r *Ring) Unpin(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pinned, id)
}

// Get returns the retained trace with the given id — pinned exemplars first,
// then the slow list, then the recent ring — or nil when the trace has been
// rotated out everywhere.
func (r *Ring) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.pinned[id]; ok {
		return t
	}
	for _, t := range r.slowest {
		if t.ID == id {
			return t
		}
	}
	for _, t := range r.recent {
		if t != nil && t.ID == id {
			return t
		}
	}
	return nil
}

// PinnedCount reports how many traces are currently pinned.
func (r *Ring) PinnedCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pinned)
}

// Reset drops every retained trace, pinned exemplars included.
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recent = r.recent[:0]
	r.next = 0
	r.slowest = nil
	r.pinned = nil
}
