package replay

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"hyperq/internal/catalog"
	"hyperq/internal/dialect"
	"hyperq/internal/fingerprint"
	"hyperq/internal/hyperq"
	"hyperq/internal/odbc"
	"hyperq/internal/querylog"
	"hyperq/internal/wstats"
)

// Config configures a replay Runner.
type Config struct {
	// Target is the backend dialect profile the gateway translates for. Both
	// backend profiles receive the same translated SQL.
	Target *dialect.Profile
	// Baseline is the trusted backend: its answers are served and treated as
	// ground truth. Candidate is the profile under validation; wherever its
	// answers differ from the baseline's, a finding is recorded.
	Baseline  odbc.Driver
	Candidate odbc.Driver
	// BaselineName/CandidateName label the profiles in the report.
	BaselineName  string
	CandidateName string
	// Speedup scales captured inter-statement gaps: 10 replays ten times
	// faster than the workload ran. <= 0 replays at maximum speed (no
	// pacing at all).
	Speedup float64
	// MaxConcurrency bounds how many captured sessions replay at once.
	// 0 replays every session concurrently, as captured.
	MaxConcurrency int
	// Tolerance configures the result differ.
	Tolerance Tolerance
	// BackendTimeout bounds each replayed statement's backend execution.
	BackendTimeout time.Duration
	// Catalog seeds the replay gateway's metadata store — typically a clone
	// of the baseline backend's catalog, mirroring the schema import a
	// production gateway performs at startup. Nil starts empty, which is
	// fine when the captured workload itself creates the schema.
	Catalog *catalog.Catalog
}

// Runner replays captured statement streams through a full gateway pipeline
// whose backend is a two-replica ReplicatedDriver in compare mode: every
// read executes on both profiles and is diffed, every write fans out to
// both.
type Runner struct {
	g   *hyperq.Gateway
	cfg Config
}

// NewRunner builds the dual-backend gateway stack for a replay.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Target == nil {
		return nil, fmt.Errorf("replay: target profile required")
	}
	if cfg.Baseline == nil || cfg.Candidate == nil {
		return nil, fmt.Errorf("replay: baseline and candidate drivers required")
	}
	df := &Differ{Tol: cfg.Tolerance}
	rd := &odbc.ReplicatedDriver{
		Replicas: []odbc.Driver{cfg.Baseline, cfg.Candidate},
		Metrics:  &odbc.ResilienceMetrics{},
	}
	rd.CompareReads = true
	rd.Compare = df.Compare
	g, err := hyperq.New(hyperq.Config{
		Target:         cfg.Target,
		Driver:         rd,
		Resilience:     rd.Metrics,
		BackendTimeout: cfg.BackendTimeout,
		Catalog:        cfg.Catalog,
	})
	if err != nil {
		return nil, err
	}
	return &Runner{g: g, cfg: cfg}, nil
}

// Gateway exposes the replay gateway (metrics, /statements registry).
func (r *Runner) Gateway() *hyperq.Gateway { return r.g }

// Prepare runs setup statements through a replay session before the paced
// replay — the mirror of the capture side provisioning schema and shared
// objects (views, macros) before attaching the capture log. Setup failures
// abort: replaying a workload against an unprovisioned pair would report
// every statement divergent-by-error.
func (r *Runner) Prepare(user string, stmts []string) error {
	if len(stmts) == 0 {
		return nil
	}
	sess, err := r.g.NewLocalSession(user)
	if err != nil {
		return err
	}
	defer sess.Close()
	for _, sql := range stmts {
		if _, err := sess.Run(sql); err != nil {
			return fmt.Errorf("replay setup %q: %w", sql, err)
		}
		// Setup is provisioning, not comparison: discard any records (e.g.
		// benign metadata drift) so the report covers the workload only.
		sess.TakeDivergences()
	}
	return nil
}

// Load reads one or more capture-log files (oldest rotation first) and
// reconstructs the per-session statement streams.
func Load(paths ...string) ([]querylog.Stream, error) {
	entries, err := querylog.ReadFiles(paths...)
	if err != nil {
		return nil, err
	}
	return querylog.Streams(entries), nil
}

// Finding is one divergence between the two profiles, joined back to the
// frontend statement that produced it and its workload fingerprint.
type Finding struct {
	Session uint64 `json:"session"`
	Seq     uint64 `json:"seq"`
	// SQL is the frontend statement as replayed; Fingerprint its shape id —
	// the join key against the capture log and the /statements registry.
	SQL         string `json:"sql"`
	Fingerprint string `json:"fingerprint"`
	// Template and Exemplar come from the replay gateway's workload
	// registry: the redacted statement template and the trace id of a
	// retained exemplar request of this shape.
	Template string `json:"template,omitempty"`
	Exemplar string `json:"exemplar,omitempty"`
	// Divergence is the backend-level detail: kind, statement index, first
	// differing row/column, and the rendered baseline/observed values. Its
	// SQL and fingerprint refer to the translated backend statement.
	Divergence *odbc.Divergence `json:"divergence"`
}

// OutcomeMismatch records a statement whose replay outcome differed from the
// captured outcome (ok vs error). Two failures count as consistent even when
// the messages differ.
type OutcomeMismatch struct {
	Session     uint64 `json:"session"`
	Seq         uint64 `json:"seq"`
	SQL         string `json:"sql"`
	Fingerprint string `json:"fingerprint"`
	Captured    string `json:"captured"`
	Replayed    string `json:"replayed"`
	Error       string `json:"error,omitempty"`
}

// SessionReport is one replayed session's accounting.
type SessionReport struct {
	Session    uint64 `json:"session"`
	User       string `json:"user"`
	Statements int    `json:"statements"`
	Replayed   int    `json:"replayed"`
	// Gaps counts capture sequence numbers missing from the stream.
	Gaps int `json:"gaps,omitempty"`
	// PoisonedAt is the sequence number of a partial write that left the
	// two profiles truly divergent; the session stops replaying there.
	PoisonedAt uint64 `json:"poisoned_at,omitempty"`
}

// Report is the equivalence report: the machine-readable verdict of one
// shadow replay.
type Report struct {
	Baseline   string  `json:"baseline"`
	Candidate  string  `json:"candidate"`
	Speedup    float64 `json:"speedup"` // 0 = max speed
	Sessions   int     `json:"sessions"`
	Statements int     `json:"statements"`
	Replayed   int     `json:"replayed"`
	Gaps       int     `json:"gaps,omitempty"`
	// CapturedSpanNs is the wall-clock span the workload originally took
	// (largest per-session sum of deltas); DurationNs the replay's.
	CapturedSpanNs int64 `json:"captured_span_ns"`
	DurationNs     int64 `json:"duration_ns"`
	// Equivalent is the verdict: no divergences and no outcome mismatches.
	Equivalent bool              `json:"equivalent"`
	Findings   []Finding         `json:"findings,omitempty"`
	Mismatches []OutcomeMismatch `json:"outcome_mismatches,omitempty"`
	PerSession []SessionReport   `json:"per_session"`
}

// WriteJSON emits the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Summary renders the human-readable verdict.
func (rep *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shadow replay: %s vs %s — %d sessions, %d/%d statements replayed in %s",
		rep.Baseline, rep.Candidate, rep.Sessions, rep.Replayed, rep.Statements,
		time.Duration(rep.DurationNs).Round(time.Millisecond))
	if rep.Speedup > 0 {
		fmt.Fprintf(&b, " (%.0fx of a %s capture)", rep.Speedup,
			time.Duration(rep.CapturedSpanNs).Round(time.Millisecond))
	} else {
		b.WriteString(" (max speed)")
	}
	b.WriteByte('\n')
	if rep.Gaps > 0 {
		fmt.Fprintf(&b, "warning: %d captured statements missing (log rotation gaps)\n", rep.Gaps)
	}
	if rep.Equivalent {
		b.WriteString("equivalent: yes — the candidate answered every statement like the baseline\n")
		return b.String()
	}
	fmt.Fprintf(&b, "equivalent: NO — %d divergences, %d outcome mismatches\n",
		len(rep.Findings), len(rep.Mismatches))
	for _, f := range rep.Findings {
		fmt.Fprintf(&b, "  [%s] session %d seq %d: %s\n", f.Fingerprint, f.Session, f.Seq, f.Divergence)
		fmt.Fprintf(&b, "      %s\n", f.SQL)
		if f.Exemplar != "" {
			fmt.Fprintf(&b, "      exemplar trace: %s\n", f.Exemplar)
		}
	}
	for _, m := range rep.Mismatches {
		fmt.Fprintf(&b, "  [%s] session %d seq %d: captured %s, replayed %s (%s)\n",
			m.Fingerprint, m.Session, m.Seq, m.Captured, m.Replayed, m.Error)
	}
	return b.String()
}

// Replay re-executes the captured streams and returns the equivalence
// report. Each captured session replays on its own goroutine (bounded by
// MaxConcurrency) with its captured inter-statement gaps scaled by Speedup;
// statements within a session stay strictly ordered.
func (r *Runner) Replay(streams []querylog.Stream) *Report {
	rep := &Report{
		Baseline:  labelOr(r.cfg.BaselineName, "baseline"),
		Candidate: labelOr(r.cfg.CandidateName, "candidate"),
		Speedup:   r.cfg.Speedup,
		Sessions:  len(streams),
	}
	if rep.Speedup < 0 {
		rep.Speedup = 0
	}
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem chan struct{}
	)
	if r.cfg.MaxConcurrency > 0 {
		sem = make(chan struct{}, r.cfg.MaxConcurrency)
	}
	start := time.Now()
	epoch := captureEpoch(streams)
	perSession := make([]SessionReport, len(streams))
	for i := range streams {
		st := &streams[i]
		rep.Statements += len(st.Entries)
		rep.Gaps += st.Gaps
		// The captured span runs from the capture epoch (earliest statement
		// anywhere) to each stream's last statement start — the wall-clock
		// window pacing reproduces, session start offsets included.
		span := streamSpan(st)
		if len(st.Entries) > 0 && !st.Entries[0].Time.IsZero() {
			span += st.Entries[0].Time.Sub(epoch).Nanoseconds()
		}
		if span > rep.CapturedSpanNs {
			rep.CapturedSpanNs = span
		}
		// Sessions start at their captured offset from the earliest session
		// (scaled by the speed-up), preserving the capture's cross-session
		// interleaving — a session that logged on mid-capture logs on
		// mid-replay too.
		var offset time.Duration
		if r.cfg.Speedup > 0 && len(st.Entries) > 0 && !st.Entries[0].Time.IsZero() {
			offset = time.Duration(float64(st.Entries[0].Time.Sub(epoch)) / r.cfg.Speedup)
		}
		wg.Add(1)
		go func(i int, st *querylog.Stream, offset time.Duration) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			if wait := time.Until(start.Add(offset)); wait > 0 {
				time.Sleep(wait)
			}
			perSession[i] = r.replayStream(st, &mu, rep)
		}(i, st, offset)
	}
	wg.Wait()
	rep.DurationNs = time.Since(start).Nanoseconds()
	for _, sr := range perSession {
		rep.Replayed += sr.Replayed
	}
	rep.PerSession = perSession
	r.joinWorkloadStats(rep)
	sort.Slice(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Session != rep.Findings[j].Session {
			return rep.Findings[i].Session < rep.Findings[j].Session
		}
		return rep.Findings[i].Seq < rep.Findings[j].Seq
	})
	sort.Slice(rep.Mismatches, func(i, j int) bool {
		if rep.Mismatches[i].Session != rep.Mismatches[j].Session {
			return rep.Mismatches[i].Session < rep.Mismatches[j].Session
		}
		return rep.Mismatches[i].Seq < rep.Mismatches[j].Seq
	})
	rep.Equivalent = len(rep.Findings) == 0 && len(rep.Mismatches) == 0
	return rep
}

// replayStream runs one captured session front to back.
func (r *Runner) replayStream(st *querylog.Stream, mu *sync.Mutex, rep *Report) SessionReport {
	sr := SessionReport{Session: st.Session, User: st.User, Statements: len(st.Entries), Gaps: st.Gaps}
	user := st.User
	if user == "" {
		user = "replay"
	}
	sess, err := r.g.NewLocalSession(user)
	if err != nil {
		mu.Lock()
		rep.Mismatches = append(rep.Mismatches, OutcomeMismatch{
			Session: st.Session, Captured: "ok", Replayed: "error",
			Error: "session open failed: " + err.Error(),
		})
		mu.Unlock()
		return sr
	}
	defer sess.Close()
	start := time.Now()
	var cum time.Duration
	for _, e := range st.Entries {
		if r.cfg.Speedup > 0 && e.DeltaNs > 0 {
			cum += time.Duration(float64(e.DeltaNs) / r.cfg.Speedup)
			if wait := time.Until(start.Add(cum)); wait > 0 {
				time.Sleep(wait)
			}
		}
		sql := e.ReplaySQL()
		_, runErr := sess.Run(sql)
		sr.Replayed++
		fp := fingerprint.ShortID(fingerprint.TemplateHash(sql))
		divs := sess.TakeDivergences()
		if len(divs) > 0 {
			mu.Lock()
			for _, d := range divs {
				rep.Findings = append(rep.Findings, Finding{
					Session: st.Session, Seq: e.Seq, SQL: sql, Fingerprint: fp, Divergence: d,
				})
			}
			mu.Unlock()
		}
		if runErr != nil && errors.Is(runErr, odbc.ErrReplicaDivergent) {
			// A partial write left the profiles truly divergent; everything
			// after it would diff against corrupt state, so stop here.
			sr.PoisonedAt = e.Seq
			break
		}
		if mismatchOutcome(e.Outcome, runErr) {
			m := OutcomeMismatch{
				Session: st.Session, Seq: e.Seq, SQL: sql, Fingerprint: fp,
				Captured: captureOutcome(e.Outcome), Replayed: "ok",
			}
			if runErr != nil {
				m.Replayed = "error"
				m.Error = runErr.Error()
			}
			mu.Lock()
			rep.Mismatches = append(rep.Mismatches, m)
			mu.Unlock()
		}
	}
	return sr
}

// mismatchOutcome compares the captured outcome with the replay's: a
// statement that succeeded then must succeed now, and one that failed then
// must fail now (engines word errors differently, so messages are not
// compared).
func mismatchOutcome(captured string, runErr error) bool {
	return (captureOutcome(captured) == "ok") != (runErr == nil)
}

// captureOutcome normalizes a captured outcome; pre-capture logs may lack
// the field, which reads as success.
func captureOutcome(o string) string {
	if o == "" || o == "ok" {
		return "ok"
	}
	return "error"
}

// joinWorkloadStats annotates findings with the replay gateway's workload
// registry: the redacted template and the exemplar trace id of each
// divergent fingerprint.
func (r *Runner) joinWorkloadStats(rep *Report) {
	reg := r.g.Statements()
	if reg == nil || len(rep.Findings) == 0 {
		return
	}
	snap := reg.Snapshot("total", 0)
	byFP := make(map[string]*wstats.Stat, len(snap.Statements))
	for i := range snap.Statements {
		byFP[snap.Statements[i].Fingerprint] = &snap.Statements[i]
	}
	for i := range rep.Findings {
		if s := byFP[rep.Findings[i].Fingerprint]; s != nil {
			rep.Findings[i].Template = s.Template
			rep.Findings[i].Exemplar = s.Exemplar
		}
	}
}

// captureEpoch is the earliest statement start across all streams — the
// capture's t=0, against which session start offsets are measured.
func captureEpoch(streams []querylog.Stream) time.Time {
	var epoch time.Time
	for i := range streams {
		if len(streams[i].Entries) == 0 {
			continue
		}
		if t := streams[i].Entries[0].Time; !t.IsZero() && (epoch.IsZero() || t.Before(epoch)) {
			epoch = t
		}
	}
	return epoch
}

func streamSpan(st *querylog.Stream) int64 {
	var span int64
	for _, e := range st.Entries {
		if e.DeltaNs > 0 {
			span += e.DeltaNs
		}
	}
	return span
}

func labelOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
