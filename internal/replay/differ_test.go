package replay

import (
	"testing"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/tdf"
	"hyperq/internal/types"
	"hyperq/internal/wire/cwp"
)

func mkRes(cols []tdf.ColumnMeta, rows [][]types.Datum) []*cwp.StatementResult {
	return []*cwp.StatementResult{{
		Cols:    cols,
		Batches: []*tdf.Batch{{Cols: cols, Rows: rows}},
		Command: "SELECT",
	}}
}

func intCol(name string) tdf.ColumnMeta { return tdf.ColumnMeta{Name: name, Type: types.Int} }

func TestDifferTolerances(t *testing.T) {
	floatCol := []tdf.ColumnMeta{{Name: "f", Type: types.Float}}
	charCol := []tdf.ColumnMeta{{Name: "c", Type: types.Char(5)}}
	tsCol := []tdf.ColumnMeta{{Name: "ts", Type: types.Timestamp}}
	icol := []tdf.ColumnMeta{intCol("x")}
	base := time.Date(2026, 3, 1, 10, 30, 0, 0, time.UTC).UnixMicro()

	cases := []struct {
		name     string
		tol      Tolerance
		sql      string
		cols     []tdf.ColumnMeta
		baseline [][]types.Datum
		observed [][]types.Datum
		wantKind string // "" = equivalent
		wantRow  int
		wantCol  int
	}{
		{
			name: "float drift within eps",
			tol:  Tolerance{FloatEps: 1e-6},
			sql:  "SELECT f FROM t",
			cols: floatCol,
			baseline: [][]types.Datum{{types.NewFloat(3.14159265)}},
			observed: [][]types.Datum{{types.NewFloat(3.141592650001)}},
		},
		{
			name: "float drift beyond eps",
			tol:  Tolerance{FloatEps: 1e-6},
			sql:  "SELECT f FROM t",
			cols: floatCol,
			baseline: [][]types.Datum{{types.NewFloat(3.0)}},
			observed: [][]types.Datum{{types.NewFloat(3.001)}},
			wantKind: odbc.DivCell, wantRow: 0, wantCol: 0,
		},
		{
			name: "float exact mode flags any drift",
			sql:  "SELECT f FROM t",
			cols: floatCol,
			baseline: [][]types.Datum{{types.NewFloat(1.0)}},
			observed: [][]types.Datum{{types.NewFloat(1.0000000001)}},
			wantKind: odbc.DivCell, wantRow: 0, wantCol: 0,
		},
		{
			name: "char padding forgiven",
			tol:  Tolerance{TrimCharPad: true},
			sql:  "SELECT c FROM t",
			cols: charCol,
			baseline: [][]types.Datum{{types.NewChar("AB   ")}},
			observed: [][]types.Datum{{types.NewChar("AB")}},
		},
		{
			name: "char padding strict",
			sql:  "SELECT c FROM t",
			cols: charCol,
			baseline: [][]types.Datum{{types.NewChar("AB   ")}},
			observed: [][]types.Datum{{types.NewChar("AB")}},
			wantKind: odbc.DivCell, wantRow: 0, wantCol: 0,
		},
		{
			name: "timestamp sub-millisecond drift truncated away",
			tol:  Tolerance{TimestampTruncate: time.Millisecond},
			sql:  "SELECT ts FROM t",
			cols: tsCol,
			baseline: [][]types.Datum{{types.NewTimestamp(base + 100)}},
			observed: [][]types.Datum{{types.NewTimestamp(base + 900)}},
		},
		{
			name: "timestamp drift past the precision",
			tol:  Tolerance{TimestampTruncate: time.Millisecond},
			sql:  "SELECT ts FROM t",
			cols: tsCol,
			baseline: [][]types.Datum{{types.NewTimestamp(base)}},
			observed: [][]types.Datum{{types.NewTimestamp(base + 2000)}},
			wantKind: odbc.DivCell, wantRow: 0, wantCol: 0,
		},
		{
			name: "null position differs without order by",
			sql:  "SELECT x FROM t",
			cols: icol,
			baseline: [][]types.Datum{{types.NewNull(types.KindInt)}, {types.NewInt(1)}},
			observed: [][]types.Datum{{types.NewInt(1)}, {types.NewNull(types.KindInt)}},
		},
		{
			name: "null position differs with order by",
			sql:  "SELECT x FROM t ORDER BY x",
			cols: icol,
			baseline: [][]types.Datum{{types.NewNull(types.KindInt)}, {types.NewInt(1)}},
			observed: [][]types.Datum{{types.NewInt(1)}, {types.NewNull(types.KindInt)}},
			wantKind: odbc.DivCell, wantRow: 0, wantCol: 0,
		},
		{
			name: "null against value is a difference",
			sql:  "SELECT x FROM t",
			cols: icol,
			baseline: [][]types.Datum{{types.NewInt(7)}},
			observed: [][]types.Datum{{types.NewNull(types.KindInt)}},
			wantKind: odbc.DivCell, wantRow: 0, wantCol: 0,
		},
		{
			name: "row order differs without order by",
			sql:  "SELECT x FROM t",
			cols: icol,
			baseline: [][]types.Datum{{types.NewInt(1)}, {types.NewInt(2)}},
			observed: [][]types.Datum{{types.NewInt(2)}, {types.NewInt(1)}},
		},
		{
			name: "row order differs with order by",
			sql:  "SELECT x FROM t ORDER BY x",
			cols: icol,
			baseline: [][]types.Datum{{types.NewInt(1)}, {types.NewInt(2)}},
			observed: [][]types.Datum{{types.NewInt(2)}, {types.NewInt(1)}},
			wantKind: odbc.DivCell, wantRow: 0, wantCol: 0,
		},
		{
			name: "order by inside a subquery keeps set semantics",
			sql:  "SELECT x FROM (SELECT x FROM t ORDER BY x) AS s",
			cols: icol,
			baseline: [][]types.Datum{{types.NewInt(1)}, {types.NewInt(2)}},
			observed: [][]types.Datum{{types.NewInt(2)}, {types.NewInt(1)}},
		},
		{
			name: "row count mismatch",
			sql:  "SELECT x FROM t",
			cols: icol,
			baseline: [][]types.Datum{{types.NewInt(1)}, {types.NewInt(2)}},
			observed: [][]types.Datum{{types.NewInt(1)}},
			wantKind: odbc.DivRowCount, wantRow: -1, wantCol: -1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			df := &Differ{Tol: c.tol}
			d := df.Compare(c.sql, mkRes(c.cols, c.baseline), mkRes(c.cols, c.observed))
			if c.wantKind == "" {
				if d != nil {
					t.Fatalf("want equivalent, got %v", d)
				}
				return
			}
			if d == nil {
				t.Fatalf("want %s divergence, got equivalent", c.wantKind)
			}
			if d.Kind != c.wantKind || d.Row != c.wantRow || d.Col != c.wantCol {
				t.Fatalf("want %s at row %d col %d, got %+v", c.wantKind, c.wantRow, c.wantCol, d)
			}
		})
	}
}

func TestDifferColumnMetaAcrossProfiles(t *testing.T) {
	df := &Differ{}
	rows := [][]types.Datum{{types.NewInt(1)}}
	// Name case and declared lengths vary across target profiles without
	// changing values: not a divergence.
	b := mkRes([]tdf.ColumnMeta{{Name: "TOTAL", Type: types.VarChar(20)}},
		[][]types.Datum{{types.NewString("x")}})
	o := mkRes([]tdf.ColumnMeta{{Name: "total", Type: types.VarChar(64)}},
		[][]types.Datum{{types.NewString("x")}})
	if d := df.Compare("SELECT total FROM t", b, o); d != nil {
		t.Fatalf("case/length meta drift flagged: %v", d)
	}
	// A changed kind is a real divergence.
	b = mkRes([]tdf.ColumnMeta{intCol("x")}, rows)
	o = mkRes([]tdf.ColumnMeta{{Name: "x", Type: types.BigInt}}, rows)
	if d := df.Compare("SELECT x FROM t", b, o); d == nil || d.Kind != odbc.DivColumnMeta {
		t.Fatalf("kind drift not flagged: %v", d)
	}
}

func TestDifferAffectedCounts(t *testing.T) {
	df := &Differ{}
	b := []*cwp.StatementResult{{Command: "UPDATE", Affected: 3}}
	o := []*cwp.StatementResult{{Command: "UPDATE", Affected: 2}}
	if d := df.Compare("UPDATE t SET x = 1", b, o); d == nil || d.Kind != odbc.DivAffected {
		t.Fatalf("affected drift not flagged: %v", d)
	}
}

func TestHasTopLevelOrderBy(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT x FROM t ORDER BY x", true},
		{"select x from t order\n by x desc", true},
		{"SELECT x FROM t", false},
		{"SELECT x FROM (SELECT y FROM u ORDER BY y) AS s", false},
		{"SELECT 'ORDER BY' FROM t", false},
		{"SELECT x FROM t -- ORDER BY x\n", false},
		{"SELECT x FROM t /* ORDER BY x */", false},
		{"SELECT x FROM \"ORDER BY\"", false},
		{"SELECT x FROM (SELECT y FROM u) AS s ORDER BY x", true},
		{"SELECT RANK() OVER (ORDER BY sal) FROM emp", false},
	}
	for _, c := range cases {
		if got := hasTopLevelOrderBy(c.sql); got != c.want {
			t.Errorf("hasTopLevelOrderBy(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
}

// TestDifferAcrossCloudTargets drives the differ end-to-end on live engine
// pairs for every modeled cloud target: identical data compares clean under
// tolerances, and a perturbed candidate is pinpointed to the exact cell.
func TestDifferAcrossCloudTargets(t *testing.T) {
	for _, prof := range dialect.CloudTargets() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			engines := make([]*engine.Engine, 2)
			drivers := make([]odbc.Driver, 2)
			for i := range engines {
				engines[i] = engine.New(prof)
				s := engines[i].NewSession()
				for _, sql := range []string{
					"CREATE TABLE m (a INT, b VARCHAR(8), c DECIMAL(10,2), d DATE)",
					"INSERT INTO m VALUES (1, 'alpha', 10.50, DATE '2026-01-15')",
					"INSERT INTO m VALUES (2, 'beta', 20.25, DATE '2026-02-20')",
					"INSERT INTO m VALUES (3, NULL, NULL, NULL)",
				} {
					if _, err := s.ExecSQL(sql); err != nil {
						t.Fatalf("%s: %v", sql, err)
					}
				}
				drivers[i] = &odbc.LocalDriver{Engine: engines[i]}
			}
			df := &Differ{Tol: Tolerance{FloatEps: 1e-9, TrimCharPad: true}}
			rd := &odbc.ReplicatedDriver{Replicas: drivers}
			rd.CompareReads = true
			rd.Compare = df.Compare
			ex, err := rd.Connect()
			if err != nil {
				t.Fatal(err)
			}
			defer ex.Close()
			ds := ex.(odbc.DivergenceSource)
			for _, q := range []string{
				"SELECT a, b, c, d FROM m",
				"SELECT a, b FROM m ORDER BY a",
				"SELECT COUNT(*), SUM(c) FROM m",
			} {
				if _, err := ex.Exec(q); err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				if divs := ds.TakeDivergences(); len(divs) != 0 {
					t.Fatalf("identical engines diverged on %q: %v", q, divs)
				}
			}
			// Perturb one cell on the candidate only.
			if _, err := engines[1].NewSession().ExecSQL("UPDATE m SET c = 20.26 WHERE a = 2"); err != nil {
				t.Fatal(err)
			}
			if _, err := ex.Exec("SELECT a, c FROM m ORDER BY a"); err != nil {
				t.Fatal(err)
			}
			divs := ds.TakeDivergences()
			if len(divs) != 1 {
				t.Fatalf("want 1 divergence, got %v", divs)
			}
			d := divs[0]
			if d.Kind != odbc.DivCell || d.Row != 1 || d.Col != 1 || d.Replica != 1 {
				t.Fatalf("perturbed cell not pinpointed: %+v", d)
			}
		})
	}
}
