// Package replay is the shadow-migration replay harness: it reconstructs
// per-session statement streams from a capture-mode query log, re-executes
// them through the full gateway pipeline against a baseline and a candidate
// backend simultaneously (reusing odbc.ReplicatedDriver's dual dispatch),
// and emits an equivalence report that joins every divergent statement back
// to its workload fingerprint and exemplar trace. This is the tool that
// closes the paper's risk-free-adoption loop: the workload keeps running on
// the trusted system while the gateway proves, statement by statement, that
// the cloud target answers identically.
package replay

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"hyperq/internal/odbc"
	"hyperq/internal/types"
	"hyperq/internal/wire/cwp"
)

// Tolerance configures how far two backends' answers may drift and still
// count as equivalent. Every knob works by canonicalization — values are
// mapped onto a tolerance grid before comparing — so equivalence stays
// transitive, which the unordered (multiset) comparison requires.
type Tolerance struct {
	// FloatEps buckets FLOAT values into FloatEps-wide cells: two floats are
	// equal when they round to the same cell. 0 compares exactly.
	FloatEps float64
	// TimestampTruncate truncates TIMESTAMP values to this precision before
	// comparing (e.g. time.Millisecond forgives sub-millisecond drift
	// between engines). 0 compares exactly.
	TimestampTruncate time.Duration
	// TrimCharPad compares CHAR values with trailing blanks stripped, so
	// engines that return declared-length padding and engines that return
	// trimmed values agree.
	TrimCharPad bool
}

// Differ is a tolerance-aware result-set comparator. Compare implements
// odbc.CompareFunc, so a Differ plugs directly into a ReplicatedDriver.
//
// Comparison semantics: statements without a top-level ORDER BY compare as
// multisets of rows — both results are canonicalized and sorted before the
// row-by-row diff, because SQL leaves their order unspecified and two
// engines may legitimately disagree on it. Statements with ORDER BY compare
// positionally. Column metadata compares by name and kind only: declared
// lengths and precisions vary across target profiles without changing the
// values.
type Differ struct {
	Tol Tolerance
}

// Compare diffs two backends' answers to one statement, returning the first
// difference found or nil when equivalent under the configured tolerances.
// For unordered comparisons the reported row index refers to the baseline's
// original row order.
func (df *Differ) Compare(sql string, baseline, observed []*cwp.StatementResult) *odbc.Divergence {
	if len(baseline) != len(observed) {
		return &odbc.Divergence{SQL: sql, Kind: odbc.DivStatementCount, Stmt: -1, Row: -1, Col: -1,
			Baseline: strconv.Itoa(len(baseline)) + " statements", Observed: strconv.Itoa(len(observed)) + " statements"}
	}
	ordered := hasTopLevelOrderBy(sql)
	for si := range baseline {
		if d := df.compareStatement(baseline[si], observed[si], ordered); d != nil {
			d.SQL = sql
			d.Stmt = si
			return d
		}
	}
	return nil
}

func (df *Differ) compareStatement(b, o *cwp.StatementResult, ordered bool) *odbc.Divergence {
	if b.Command != o.Command {
		return &odbc.Divergence{Kind: odbc.DivCommand, Row: -1, Col: -1, Baseline: b.Command, Observed: o.Command}
	}
	if b.Cols == nil && o.Cols == nil {
		if b.Affected != o.Affected {
			return &odbc.Divergence{Kind: odbc.DivAffected, Row: -1, Col: -1,
				Baseline: strconv.FormatInt(b.Affected, 10) + " rows", Observed: strconv.FormatInt(o.Affected, 10) + " rows"}
		}
		return nil
	}
	if (b.Cols == nil) != (o.Cols == nil) || len(b.Cols) != len(o.Cols) {
		return &odbc.Divergence{Kind: odbc.DivColumnCount, Row: -1, Col: -1,
			Baseline: colText(b), Observed: colText(o)}
	}
	for ci := range b.Cols {
		if !strings.EqualFold(b.Cols[ci].Name, o.Cols[ci].Name) || b.Cols[ci].Type.Kind != o.Cols[ci].Type.Kind {
			return &odbc.Divergence{Kind: odbc.DivColumnMeta, Row: -1, Col: ci,
				Baseline: b.Cols[ci].Name + " " + b.Cols[ci].Type.String(),
				Observed: o.Cols[ci].Name + " " + o.Cols[ci].Type.String()}
		}
	}
	brows, orows := df.canonRows(b.Rows()), df.canonRows(o.Rows())
	if len(brows) != len(orows) {
		return &odbc.Divergence{Kind: odbc.DivRowCount, Row: -1, Col: -1,
			Baseline: strconv.Itoa(len(brows)) + " rows", Observed: strconv.Itoa(len(orows)) + " rows"}
	}
	if !ordered {
		sortCanonRows(brows)
		sortCanonRows(orows)
	}
	for ri := range brows {
		br, or := brows[ri], orows[ri]
		for ci := range br.canon {
			if ci >= len(or.canon) {
				return &odbc.Divergence{Kind: odbc.DivColumnCount, Row: br.idx, Col: ci,
					Baseline: strconv.Itoa(len(br.canon)) + " cells", Observed: strconv.Itoa(len(or.canon)) + " cells"}
			}
			if br.canon[ci] != or.canon[ci] {
				return &odbc.Divergence{Kind: odbc.DivCell, Row: br.idx, Col: ci,
					Baseline: br.orig[ci].SQLLiteral(), Observed: or.orig[ci].SQLLiteral()}
			}
		}
	}
	return nil
}

// canonRow pairs a row's canonical (tolerance-gridded) form, used for
// comparison and sorting, with the original datums for reporting and the
// original row index for citation.
type canonRow struct {
	canon []types.Datum
	orig  []types.Datum
	idx   int
}

func (df *Differ) canonRows(rows [][]types.Datum) []canonRow {
	out := make([]canonRow, len(rows))
	for i, row := range rows {
		c := make([]types.Datum, len(row))
		for j, d := range row {
			c[j] = df.canon(d)
		}
		out[i] = canonRow{canon: c, orig: row, idx: i}
	}
	return out
}

// canon maps a datum onto the tolerance grid. NULLs lose any payload residue
// so two NULLs of the same kind always compare equal.
func (df *Differ) canon(d types.Datum) types.Datum {
	if d.Null {
		return types.Datum{K: d.K, Null: true}
	}
	switch d.K {
	case types.KindFloat:
		if eps := df.Tol.FloatEps; eps > 0 && !math.IsNaN(d.F) && !math.IsInf(d.F, 0) {
			d.F = math.Round(d.F/eps) * eps
		}
	case types.KindChar:
		if df.Tol.TrimCharPad {
			d.S = strings.TrimRight(d.S, " ")
		}
	case types.KindTimestamp:
		if us := df.Tol.TimestampTruncate.Microseconds(); us > 0 {
			d.I -= floorMod(d.I, us)
		}
	}
	return d
}

// floorMod is the non-negative remainder (truncation toward minus infinity),
// so pre-epoch timestamps truncate to the grid cell below them, not above.
func floorMod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func sortCanonRows(rows []canonRow) {
	sort.SliceStable(rows, func(i, j int) bool { return lessCanon(rows[i].canon, rows[j].canon) })
}

// lessCanon orders canonical rows deterministically: NULLs first, then by
// value within kind. The specific order is arbitrary — it only has to be the
// same for both result sets.
func lessCanon(a, b []types.Datum) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if c := compareDatum(a[i], b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

func compareDatum(a, b types.Datum) int {
	if a.K != b.K {
		return int(a.K) - int(b.K)
	}
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0
		case a.Null:
			return -1
		default:
			return 1
		}
	}
	switch a.K {
	case types.KindFloat:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case types.KindChar, types.KindVarChar, types.KindBytes:
		return strings.Compare(a.S, b.S)
	case types.KindPeriod:
		if a.PStart != b.PStart {
			return cmp64(a.PStart, b.PStart)
		}
		return cmp64(a.PEnd, b.PEnd)
	case types.KindDecimal:
		if a.Scale != b.Scale {
			return int(a.Scale) - int(b.Scale)
		}
		return cmp64(a.I, b.I)
	}
	return cmp64(a.I, b.I)
}

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func colText(r *cwp.StatementResult) string {
	if r.Cols == nil {
		return "no result set"
	}
	return strconv.Itoa(len(r.Cols)) + " columns"
}

// hasTopLevelOrderBy reports whether the statement text contains an ORDER BY
// outside any parenthesized subexpression — the lexical signal that the
// application relies on row order, switching the differ to positional
// comparison. The scan skips string literals ('…' with '' escaping), quoted
// identifiers ("…"), and comments (-- … and /* … */).
func hasTopLevelOrderBy(sql string) bool {
	depth := 0
	sawOrder := false
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == '\'' || c == '"':
			q := c
			i++
			for i < n {
				if sql[i] == q {
					if q == '\'' && i+1 < n && sql[i+1] == q {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			sawOrder = false
		case c == '-' && i+1 < n && sql[i+1] == '-':
			for i < n && sql[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && sql[i+1] == '*':
			i += 2
			for i+1 < n && !(sql[i] == '*' && sql[i+1] == '/') {
				i++
			}
			i += 2
		case c == '(':
			depth++
			i++
			sawOrder = false
		case c == ')':
			if depth > 0 {
				depth--
			}
			i++
			sawOrder = false
		case isWordByte(c):
			start := i
			for i < n && isWordByte(sql[i]) {
				i++
			}
			word := sql[start:i]
			if depth == 0 {
				switch {
				case strings.EqualFold(word, "ORDER"):
					sawOrder = true
					continue
				case sawOrder && strings.EqualFold(word, "BY"):
					return true
				}
			}
			sawOrder = false
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		default:
			i++
			sawOrder = false
		}
	}
	return false
}

func isWordByte(c byte) bool {
	return c == '_' || ('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}
