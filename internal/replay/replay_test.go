package replay

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/hyperq"
	"hyperq/internal/odbc"
	"hyperq/internal/querylog"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/wire/tdp"
	"hyperq/internal/workload/customer"
)

// probeSQL is a statement with a known answer, appended to the captured
// workload so the perturbed-profile test can assert the exact statement and
// column the report cites.
const probeSQL = "SELECT txn_id, amount FROM cust_txn WHERE txn_id = 3 ORDER BY txn_id"

func customerEngine(t *testing.T, target *dialect.Profile) *engine.Engine {
	t.Helper()
	eng := engine.New(target)
	s := eng.NewSession()
	for _, ddl := range customer.SchemaDDL {
		if _, err := s.ExecSQL(ddl); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// serveCWP starts a backend wire server over eng; the returned closer stops
// it (also registered as cleanup).
func serveCWP(t *testing.T, eng *engine.Engine) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = cwp.Serve(ln, eng) }()
	return ln.Addr().String(), func() { ln.Close() }
}

// scaledWorkloads returns both customer workloads shrunk for test time.
func scaledWorkloads(n int) []customer.Spec {
	w1, w2 := customer.Workload1(), customer.Workload2()
	w1.Distinct, w1.Total = n, n
	w2.Distinct, w2.Total = n, n
	return []customer.Spec{w1, w2}
}

// captureLive boots a full wire gateway over the customer schema, provisions
// the shared objects outside the capture, then drives both customer
// workloads through separate wire sessions with the capture log attached.
// Returns the capture path and the number of captured statements.
func captureLive(t *testing.T, perWorkload int) (string, int) {
	t.Helper()
	target := dialect.CloudA()
	eng := customerEngine(t, target)
	beAddr, closeBE := serveCWP(t, eng)
	g, err := hyperq.New(hyperq.Config{
		Target:  target,
		Driver:  &odbc.NetworkDriver{Addr: beAddr, User: "gw", Password: "pw"},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { feLn.Close() })
	go func() { _ = tdp.Serve(feLn, g) }()

	// Shared objects are provisioned before the capture log attaches, so
	// the capture holds the workload only (the replay side mirrors this
	// with Runner.Prepare).
	setup, err := tdp.Dial(feLn.Addr().String(), "setup", "pw")
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range customer.GatewaySetup {
		if _, err := setup.Request(sql); err != nil {
			t.Fatalf("setup %q: %v", sql, err)
		}
	}
	setup.Close()

	path := filepath.Join(t.TempDir(), "capture.log")
	w, err := querylog.OpenOptions(path, querylog.Options{Redact: true, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	g.SetQueryLog(w)
	captured := 0
	for i, spec := range scaledWorkloads(perWorkload) {
		c, err := tdp.Dial(feLn.Addr().String(), fmt.Sprintf("app%d", i+1), "pw")
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range customer.Generate(spec) {
			// Workload errors (if any) are part of the capture: the replay
			// must reproduce them.
			_, _ = c.Request(q.SQL)
			captured++
		}
		if i == 0 {
			if _, err := c.Request(probeSQL); err != nil {
				t.Fatalf("probe: %v", err)
			}
			captured++
		}
		c.Close()
	}
	g.SetQueryLog(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	closeBE()
	feLn.Close()
	return path, captured
}

// replayRunner builds a dual-backend replay stack over two fresh customer
// engines; the returned closer stops both backend servers.
func replayRunner(t *testing.T, speedup float64) (*Runner, *engine.Engine, *engine.Engine, func()) {
	t.Helper()
	target := dialect.CloudA()
	base := customerEngine(t, target)
	cand := customerEngine(t, target)
	baseAddr, closeBase := serveCWP(t, base)
	candAddr, closeCand := serveCWP(t, cand)
	r, err := NewRunner(Config{
		Target:        target,
		Baseline:      &odbc.NetworkDriver{Addr: baseAddr, User: "gw", Password: "pw"},
		Candidate:     &odbc.NetworkDriver{Addr: candAddr, User: "gw", Password: "pw"},
		BaselineName:  "cloudsrv-a",
		CandidateName: "cloudsrv-b",
		Speedup:       speedup,
		MaxConcurrency: 8,
		Tolerance: Tolerance{
			FloatEps:          1e-9,
			TimestampTruncate: time.Millisecond,
			TrimCharPad:       true,
		},
		Catalog: base.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Prepare("setup", customer.GatewaySetup); err != nil {
		t.Fatal(err)
	}
	return r, base, cand, func() { closeBase(); closeCand() }
}

// TestShadowReplayEndToEnd is the acceptance scenario: capture both customer
// workloads live over the wire, replay at 10x against two identical backend
// profiles (clean report), then against a perturbed candidate (the report
// pinpoints the exact statement and column) — with no goroutine leaked by
// either replay.
func TestShadowReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("captures and replays two customer workloads over the wire")
	}
	baseline := runtime.NumGoroutine()

	// HYPERQ_REPLAY_SOAK scales the capture (statements per workload) for
	// the check.sh soak phase; the default keeps `go test` quick.
	perWorkload := 20
	if s := os.Getenv("HYPERQ_REPLAY_SOAK"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("HYPERQ_REPLAY_SOAK=%q", s)
		}
		perWorkload = n
	}
	path, captured := captureLive(t, perWorkload)
	streams, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 2 {
		t.Fatalf("captured sessions = %d, want 2", len(streams))
	}
	total := 0
	for _, st := range streams {
		if st.Gaps != 0 {
			t.Fatalf("session %d capture has %d gaps", st.Session, st.Gaps)
		}
		for i, e := range st.Entries {
			if e.Seq != uint64(i+1) {
				t.Fatalf("session %d entry %d has seq %d", st.Session, i, e.Seq)
			}
		}
		total += len(st.Entries)
	}
	if total != captured {
		t.Fatalf("captured entries = %d, want %d", total, captured)
	}
	// Redaction scrubbed the log SQL; capture kept replayable literals.
	probe := streams[0].Entries[len(streams[0].Entries)-1]
	if probe.ReplaySQL() != probeSQL {
		t.Fatalf("probe capture SQL = %q", probe.ReplaySQL())
	}
	if !strings.Contains(probe.SQL, "?") {
		t.Fatalf("probe log SQL not redacted: %q", probe.SQL)
	}

	// Identical profiles: the report must be clean.
	clean, _, _, closeClean := replayRunner(t, 10)
	rep := clean.Replay(streams)
	if !rep.Equivalent {
		t.Fatalf("identical profiles not equivalent:\n%s", rep.Summary())
	}
	if rep.Replayed != captured || rep.Statements != captured {
		t.Fatalf("replayed %d/%d, want %d", rep.Replayed, rep.Statements, captured)
	}
	if rep.Sessions != 2 || len(rep.PerSession) != 2 {
		t.Fatalf("sessions = %d, per-session = %d", rep.Sessions, len(rep.PerSession))
	}
	if !strings.Contains(rep.Summary(), "equivalent: yes") {
		t.Fatalf("summary wrong:\n%s", rep.Summary())
	}
	closeClean()

	// Perturbed candidate: one cell drifts; the report pinpoints it.
	dirty, _, cand, closeDirty := replayRunner(t, 10)
	if _, err := cand.NewSession().ExecSQL("UPDATE cust_txn SET amount = 560.26 WHERE txn_id = 3"); err != nil {
		t.Fatal(err)
	}
	rep2 := dirty.Replay(streams)
	if rep2.Equivalent {
		t.Fatal("perturbed candidate reported equivalent")
	}
	var hit *Finding
	for i := range rep2.Findings {
		if rep2.Findings[i].SQL == probeSQL {
			hit = &rep2.Findings[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("probe statement not cited:\n%s", rep2.Summary())
	}
	d := hit.Divergence
	if d.Kind != odbc.DivCell || d.Row != 0 || d.Col != 1 || d.Replica != 1 {
		t.Fatalf("probe divergence not pinpointed to row 0 col 1 replica 1: %+v", d)
	}
	if d.Baseline != "560.25" || d.Observed != "560.26" {
		t.Fatalf("cell values wrong: %+v", d)
	}
	if hit.Fingerprint == "" || hit.Template == "" {
		t.Fatalf("finding not joined to workload stats: %+v", hit)
	}
	if !strings.Contains(rep2.Summary(), "equivalent: NO") {
		t.Fatalf("summary wrong:\n%s", rep2.Summary())
	}
	closeDirty()

	settleGoroutines(t, baseline)
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline, failing the test if it never does (a leaked replay session,
// backend connection, or server loop).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
