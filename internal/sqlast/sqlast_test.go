package sqlast

import (
	"testing"

	"hyperq/internal/types"
)

func TestIdentParts(t *testing.T) {
	cases := []struct {
		parts []string
		name  string
		qual  string
	}{
		{[]string{"a"}, "a", ""},
		{[]string{"t", "a"}, "a", "t"},
		{[]string{"db", "t", "a"}, "a", "t"},
	}
	for _, c := range cases {
		id := &Ident{Parts: c.parts}
		if id.Name() != c.name || id.Qualifier() != c.qual {
			t.Errorf("Ident(%v) = %q.%q, want %q.%q", c.parts, id.Qualifier(), id.Name(), c.qual, c.name)
		}
	}
}

func TestTypeNameResolve(t *testing.T) {
	tn := TypeName{Name: "DECIMAL", Args: []int{12, 2}}
	got, err := tn.Resolve()
	if err != nil || got.Kind != types.KindDecimal || got.Scale != 2 {
		t.Fatalf("Resolve = %v, %v", got, err)
	}
	if _, err := (TypeName{Name: "NOPE"}).Resolve(); err == nil {
		t.Error("unknown type resolved")
	}
}

func TestBinOpStrings(t *testing.T) {
	pairs := map[BinOp]string{
		BinAdd: "+", BinEQ: "=", BinNE: "<>", BinAnd: "AND",
		BinLike: "LIKE", BinNotLike: "NOT LIKE", BinConcat: "||",
	}
	for op, want := range pairs {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if !BinLT.IsComparison() || BinAdd.IsComparison() || BinAnd.IsComparison() {
		t.Error("IsComparison wrong")
	}
}

func TestJoinAndSetOpStrings(t *testing.T) {
	if JoinLeft.String() != "LEFT JOIN" || JoinCross.String() != "CROSS JOIN" {
		t.Error("join strings wrong")
	}
	if SetUnion.String() != "UNION" || SetExcept.String() != "EXCEPT" {
		t.Error("set op strings wrong")
	}
	if QuantAll.String() != "ALL" || QuantAny.String() != "ANY" {
		t.Error("quantifier strings wrong")
	}
}

func TestWalkExprPruning(t *testing.T) {
	// (a + b) * c — pruning at the + node skips a and b.
	inner := &BinExpr{Op: BinAdd, L: &Ident{Parts: []string{"a"}}, R: &Ident{Parts: []string{"b"}}}
	e := &BinExpr{Op: BinMul, L: inner, R: &Ident{Parts: []string{"c"}}}
	var visited int
	WalkExpr(e, func(x Expr) bool {
		visited++
		if b, ok := x.(*BinExpr); ok && b.Op == BinAdd {
			return false
		}
		return true
	})
	if visited != 3 { // mul, add (pruned), c
		t.Errorf("visited = %d", visited)
	}
}

func TestWalkExprCoversCase(t *testing.T) {
	e := &CaseExpr{
		Operand: &Ident{Parts: []string{"x"}},
		Whens:   []CaseWhen{{Cond: &Const{}, Then: &Const{}}},
		Else:    &Const{},
	}
	n := 0
	WalkExpr(e, func(Expr) bool { n++; return true })
	if n != 5 {
		t.Errorf("case walk visited %d", n)
	}
}

func TestContainsWindowFuncStopsAtSubquery(t *testing.T) {
	// A window inside a subquery does not make the outer expression windowed.
	sub := &Subquery{Query: &QueryExpr{Body: &SelectCore{
		Items: []SelectItem{{Expr: &WindowFunc{Func: FuncCall{Name: "RANK"}}}},
	}}}
	if ContainsWindowFunc(sub) {
		t.Error("window detected through subquery boundary")
	}
	wf := &WindowFunc{Func: FuncCall{Name: "RANK"}}
	if !ContainsWindowFunc(&BinExpr{Op: BinLT, L: wf, R: &Const{}}) {
		t.Error("direct window not detected")
	}
}
