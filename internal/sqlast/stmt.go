package sqlast

// Statement is a top-level SQL statement.
type Statement interface{ stmtNode() }

// QueryExpr is a full query expression: optional WITH, a body (select core or
// set operation), and an optional outer ORDER BY. The Teradata parser
// normalizes misplaced clause order (Example 1: ORDER BY before WHERE) into
// this canonical shape.
type QueryExpr struct {
	With    *WithClause
	Body    QueryBody
	OrderBy []OrderItem
	// Limit is the ANSI row-limiting clause (LIMIT n or FETCH FIRST n ROWS
	// ONLY/WITH TIES); the Teradata dialect uses SelectCore.Top instead.
	Limit *TopClause
}

// QueryBody is either a SelectCore, a SetOpBody, or a nested QueryExpr.
type QueryBody interface{ queryBody() }

// WithClause is WITH [RECURSIVE] cte [, ...].
type WithClause struct {
	Recursive bool
	CTEs      []CTE
}

// CTE is a single common table expression.
type CTE struct {
	Name    string
	Columns []string
	Query   *QueryExpr
}

// TopClause is Teradata TOP n [PERCENT] [WITH TIES].
type TopClause struct {
	N        int64
	Percent  bool
	WithTies bool
}

// SelectCore is a single SELECT block.
type SelectCore struct {
	Distinct bool
	Top      *TopClause
	Items    []SelectItem
	From     []TableExpr
	Where    Expr
	GroupBy  []Expr
	// GroupingSets holds ROLLUP/CUBE/GROUPING SETS extensions; nil for a
	// plain GROUP BY. Each inner slice is one grouping set (indexes into
	// GroupBy).
	GroupingSets [][]int
	Having       Expr
	// Qualify is the Teradata QUALIFY clause: a predicate over window
	// functions, evaluated after windows (vendor-specific node td_qualify).
	Qualify Expr
}

// SelectItem is one select-list element.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// SetOp enumerates set operations.
type SetOp uint8

// Set operations.
const (
	SetUnion SetOp = iota
	SetIntersect
	SetExcept
)

func (o SetOp) String() string {
	switch o {
	case SetUnion:
		return "UNION"
	case SetIntersect:
		return "INTERSECT"
	case SetExcept:
		return "EXCEPT"
	}
	return "?"
}

// SetOpBody combines two query bodies with a set operation.
type SetOpBody struct {
	Op   SetOp
	All  bool
	L, R QueryBody
}

func (*SelectCore) queryBody() {}
func (*SetOpBody) queryBody()  {}
func (*QueryExpr) queryBody()  {}

// TableExpr is an element of the FROM clause.
type TableExpr interface{ tableExpr() }

// TableRef is a base table or view reference.
type TableRef struct {
	Name string
	// Alias is the correlation name; empty means the table name itself.
	Alias string
	// ColAliases renames the columns (derived-column-list on a table alias —
	// one of the partially supported features in Figure 2).
	ColAliases []string
}

// DerivedTable is a subquery in FROM.
type DerivedTable struct {
	Query      *QueryExpr
	Alias      string
	ColAliases []string
}

// JoinKind enumerates join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	case JoinCross:
		return "CROSS JOIN"
	}
	return "?"
}

// JoinExpr is an explicit join.
type JoinExpr struct {
	Kind JoinKind
	L, R TableExpr
	On   Expr
}

func (*TableRef) tableExpr()     {}
func (*DerivedTable) tableExpr() {}
func (*JoinExpr) tableExpr()     {}

// SelectStmt wraps a query expression as a statement.
type SelectStmt struct {
	Query *QueryExpr
}

// Assignment is SET col = expr in UPDATE/MERGE.
type Assignment struct {
	Column string
	Value  Expr
}

// InsertStmt is INSERT INTO t [(cols)] VALUES ... | query.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr   // literal VALUES form
	Query   *QueryExpr // INSERT ... SELECT form
}

// UpdateStmt is UPDATE t [FROM ...] SET ... WHERE ....
type UpdateStmt struct {
	Table string
	Alias string
	Set   []Assignment
	From  []TableExpr
	Where Expr
}

// DeleteStmt is DELETE FROM t WHERE ... (DEL in Teradata; ALL deletes all).
type DeleteStmt struct {
	Table string
	Alias string
	Where Expr
	All   bool
}

// MergeStmt is MERGE INTO target USING source ON cond WHEN [NOT] MATCHED ....
// Targets without MERGE require the gateway to decompose it (emulation class,
// Figure 2 lists MERGE among partially supported features).
type MergeStmt struct {
	Target      string
	TargetAlias string
	Source      TableExpr
	On          Expr
	// Matched, when non-nil, is the WHEN MATCHED THEN UPDATE action.
	Matched []Assignment
	// MatchedDelete marks WHEN MATCHED THEN DELETE.
	MatchedDelete bool
	// NotMatched, when non-nil, is the WHEN NOT MATCHED THEN INSERT action.
	NotMatchedCols []string
	NotMatchedVals []Expr
	HasNotMatched  bool
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name            string
	Type            TypeName
	NotNull         bool
	Default         Expr
	CaseInsensitive bool // Teradata NOT CASESPECIFIC
}

// CreateTableStmt is CREATE [SET|MULTISET] [VOLATILE|GLOBAL TEMPORARY] TABLE.
type CreateTableStmt struct {
	Name            string
	Columns         []ColumnDef
	Set             bool // Teradata SET table (duplicate row elimination)
	Volatile        bool
	GlobalTemporary bool
	PrimaryIndex    []string
	// AsQuery is CREATE TABLE ... AS (query) WITH DATA.
	AsQuery  *QueryExpr
	WithData bool
	// OnCommitPreserve is ON COMMIT PRESERVE ROWS for temporary tables.
	OnCommitPreserve bool
	IfNotExists      bool
}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// CreateViewStmt is CREATE/REPLACE VIEW v [(cols)] AS query.
type CreateViewStmt struct {
	Name    string
	Columns []string
	Query   *QueryExpr
	// SQL is the original view text, stored for re-binding.
	SQL     string
	Replace bool
}

// DropViewStmt is DROP VIEW v.
type DropViewStmt struct {
	Name string
}

// MacroParamDef is one macro parameter declaration.
type MacroParamDef struct {
	Name string
	Type TypeName
}

// CreateMacroStmt is Teradata CREATE/REPLACE MACRO m (params) AS (body;).
type CreateMacroStmt struct {
	Name    string
	Params  []MacroParamDef
	Body    string // raw statement list, parameters as :name
	Replace bool
}

// DropMacroStmt is DROP MACRO m.
type DropMacroStmt struct {
	Name string
}

// ExecStmt is Teradata EXEC m (args).
type ExecStmt struct {
	Macro string
	Args  []Expr
}

// HelpStmt is Teradata HELP SESSION / HELP TABLE t — informational commands
// the paper lists under the emulation class (§2.1).
type HelpStmt struct {
	What string // "SESSION", "TABLE"
	Name string // object name for HELP TABLE
}

// SetSessionStmt is SET SESSION <option> = <value>.
type SetSessionStmt struct {
	Option string
	Value  string
}

// CollectStatsStmt is Teradata COLLECT STATISTICS — translated into zero
// statements on targets that manage statistics automatically (§3.1:
// "the original statement may be eliminated altogether").
type CollectStatsStmt struct {
	Table   string
	Columns []string
}

// TxnStmt is BT/ET/COMMIT/ROLLBACK.
type TxnStmt struct {
	Kind string // "BEGIN", "COMMIT", "ROLLBACK"
}

// ExplainStmt is Teradata EXPLAIN <request>: the gateway answers it with the
// translated SQL-B text and the XTRA plan instead of executing.
type ExplainStmt struct {
	Stmt Statement
}

func (*SelectStmt) stmtNode()       {}
func (*InsertStmt) stmtNode()       {}
func (*UpdateStmt) stmtNode()       {}
func (*DeleteStmt) stmtNode()       {}
func (*MergeStmt) stmtNode()        {}
func (*CreateTableStmt) stmtNode()  {}
func (*DropTableStmt) stmtNode()    {}
func (*CreateViewStmt) stmtNode()   {}
func (*DropViewStmt) stmtNode()     {}
func (*CreateMacroStmt) stmtNode()  {}
func (*DropMacroStmt) stmtNode()    {}
func (*ExecStmt) stmtNode()         {}
func (*HelpStmt) stmtNode()         {}
func (*SetSessionStmt) stmtNode()   {}
func (*CollectStatsStmt) stmtNode() {}
func (*TxnStmt) stmtNode()          {}
func (*ExplainStmt) stmtNode()      {}
