// Package sqlast defines the abstract syntax tree produced by the dialect
// parsers. Following the paper (§5.1, Figure 4), the tree mixes generic ANSI
// nodes with vendor-specific nodes: Teradata-only constructs such as QUALIFY,
// the RANK(expr DESC) window form, or vector subqueries are represented by
// dedicated fields/nodes so the binder can apply the vendor-specific binding
// implementation while sharing the generic one across source systems.
package sqlast

import (
	"hyperq/internal/types"
)

// Expr is a scalar expression node.
type Expr interface{ exprNode() }

// Ident is a possibly qualified identifier: a, t.a, db.t.a.
type Ident struct {
	Parts []string
}

// Name returns the unqualified column name.
func (i *Ident) Name() string { return i.Parts[len(i.Parts)-1] }

// Qualifier returns the table qualifier (empty when unqualified).
func (i *Ident) Qualifier() string {
	if len(i.Parts) < 2 {
		return ""
	}
	return i.Parts[len(i.Parts)-2]
}

// Const is a literal constant.
type Const struct {
	Val types.Datum
	// Lit is the 1-based literal-vector ordinal assigned by the fingerprint
	// pass when this constant is lifted into the translation-cache parameter
	// vector; 0 means the constant is not lifted. The binder propagates the
	// ordinal into the bound plan so the serializer can emit a placeholder.
	Lit int
}

// Param is a named (:name) or positional (?) parameter reference.
type Param struct {
	Name string // empty for positional
	Pos  int    // 1-based for positional
}

// Star is * or qualifier.* in a select list or COUNT(*).
type Star struct {
	Table string // empty for bare *
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinConcat
	BinEQ
	BinNE
	BinLT
	BinLE
	BinGT
	BinGE
	BinAnd
	BinOr
	BinLike
	BinNotLike
)

func (o BinOp) String() string {
	switch o {
	case BinAdd:
		return "+"
	case BinSub:
		return "-"
	case BinMul:
		return "*"
	case BinDiv:
		return "/"
	case BinMod:
		return "MOD"
	case BinConcat:
		return "||"
	case BinEQ:
		return "="
	case BinNE:
		return "<>"
	case BinLT:
		return "<"
	case BinLE:
		return "<="
	case BinGT:
		return ">"
	case BinGE:
		return ">="
	case BinAnd:
		return "AND"
	case BinOr:
		return "OR"
	case BinLike:
		return "LIKE"
	case BinNotLike:
		return "NOT LIKE"
	}
	return "?"
}

// IsComparison reports whether the operator is a comparison.
func (o BinOp) IsComparison() bool { return o >= BinEQ && o <= BinGE }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// UnaryOp enumerates unary operators.
type UnaryOp uint8

// Unary operators.
const (
	UnaryNot UnaryOp = iota
	UnaryNeg
	UnaryIsNull
	UnaryIsNotNull
)

// UnaryExpr is a unary operation.
type UnaryExpr struct {
	Op UnaryOp
	X  Expr
}

// FuncCall is a (possibly aggregate) function invocation. Star marks
// COUNT(*); Distinct marks aggregate DISTINCT.
type FuncCall struct {
	Name     string
	Args     []Expr
	Distinct bool
	Star     bool
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
	// NullsFirst is nil when unspecified (dialect default applies),
	// otherwise the explicit NULLS FIRST/LAST choice.
	NullsFirst *bool
}

// WindowSpec is the OVER(...) clause.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
	// RowsUnboundedPreceding marks the explicit ROWS UNBOUNDED PRECEDING
	// frame Teradata requires on some functions. Only the default frame and
	// the running frame are modeled.
	RowsUnboundedPreceding bool
}

// WindowFunc is a window function invocation. Two syntactic flavors exist:
// the ANSI RANK() OVER (ORDER BY x DESC) and the Teradata RANK(x DESC) form
// where the order is given as the argument (paper §5, Example 2). The parser
// normalizes both into this node; TdForm records the vendor form for feature
// tracking.
type WindowFunc struct {
	Func   FuncCall
	Over   WindowSpec
	TdForm bool
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a (searched or simple) CASE expression.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// TypeName is an unresolved type reference in CAST or DDL.
type TypeName struct {
	Name string
	Args []int
}

// Resolve converts the reference into a concrete type.
func (t TypeName) Resolve() (types.T, error) { return types.ParseTypeName(t.Name, t.Args...) }

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X  Expr
	To TypeName
}

// ExtractExpr is EXTRACT(field FROM x).
type ExtractExpr struct {
	Field string
	X     Expr
}

// Subquery is a scalar subquery used as an expression.
type Subquery struct {
	Query *QueryExpr
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Not   bool
	Query *QueryExpr
}

// InExpr is row [NOT] IN (list | subquery).
type InExpr struct {
	Not   bool
	Left  []Expr // one element for scalar IN, more for vector form
	List  []Expr // value list form
	Query *QueryExpr
}

// Quantifier for quantified comparisons.
type Quantifier uint8

// Quantifiers.
const (
	QuantAny Quantifier = iota
	QuantAll
)

func (q Quantifier) String() string {
	if q == QuantAll {
		return "ALL"
	}
	return "ANY"
}

// QuantifiedCmp is (expr, ...) op ANY/ALL (subquery). A Left vector of more
// than one element is the Teradata vector-subquery construct the paper
// rewrites into a correlated EXISTS for targets lacking support (§5.3).
type QuantifiedCmp struct {
	Op    BinOp
	Quant Quantifier
	Left  []Expr
	Query *QueryExpr
}

// Tuple is a parenthesized row expression.
type Tuple struct {
	Items []Expr
}

// IntervalExpr is INTERVAL 'n' DAY etc. Only day-time units are modeled.
type IntervalExpr struct {
	Value Expr
	Unit  string // DAY, HOUR, MINUTE, SECOND, MONTH, YEAR
}

func (*Ident) exprNode()         {}
func (*Const) exprNode()         {}
func (*Param) exprNode()         {}
func (*Star) exprNode()          {}
func (*BinExpr) exprNode()       {}
func (*UnaryExpr) exprNode()     {}
func (*FuncCall) exprNode()      {}
func (*WindowFunc) exprNode()    {}
func (*CaseExpr) exprNode()      {}
func (*CastExpr) exprNode()      {}
func (*ExtractExpr) exprNode()   {}
func (*Subquery) exprNode()      {}
func (*ExistsExpr) exprNode()    {}
func (*InExpr) exprNode()        {}
func (*QuantifiedCmp) exprNode() {}
func (*Tuple) exprNode()         {}
func (*IntervalExpr) exprNode()  {}

// WalkExpr invokes fn on e and every sub-expression, pre-order. fn returning
// false prunes the subtree. Subqueries are not descended into.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinExpr:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *WindowFunc:
		for _, a := range x.Func.Args {
			WalkExpr(a, fn)
		}
		for _, p := range x.Over.PartitionBy {
			WalkExpr(p, fn)
		}
		for _, o := range x.Over.OrderBy {
			WalkExpr(o.Expr, fn)
		}
	case *CaseExpr:
		WalkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	case *CastExpr:
		WalkExpr(x.X, fn)
	case *ExtractExpr:
		WalkExpr(x.X, fn)
	case *InExpr:
		for _, l := range x.Left {
			WalkExpr(l, fn)
		}
		for _, l := range x.List {
			WalkExpr(l, fn)
		}
	case *QuantifiedCmp:
		for _, l := range x.Left {
			WalkExpr(l, fn)
		}
	case *Tuple:
		for _, i := range x.Items {
			WalkExpr(i, fn)
		}
	case *IntervalExpr:
		WalkExpr(x.Value, fn)
	}
}

// ContainsWindowFunc reports whether the expression tree contains a window
// function (outside subqueries).
func ContainsWindowFunc(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if _, ok := x.(*WindowFunc); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
