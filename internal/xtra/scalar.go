// Package xtra implements the eXtended Relational Algebra (XTRA) of the
// paper (§4.2): the universal, language-agnostic query representation the
// Algebrizer binds ASTs into, the Transformer rewrites, and the Serializers
// turn into target-dialect SQL. XTRA "builds on a uniform algebraic model,
// where the output of a given operator depends on operator's inputs as well
// as operator's type" (§5.2).
package xtra

import (
	"fmt"

	"hyperq/internal/types"
)

// ColumnID uniquely identifies a column within one bound statement. IDs are
// allocated by the binder's column factory; executor row layouts and
// serializer name scopes are both keyed by ColumnID.
type ColumnID int

// Col describes one produced column.
type Col struct {
	ID   ColumnID
	Name string
	Type types.T
}

// Scalar is a scalar expression over columns.
type Scalar interface {
	scalarNode()
	// Type returns the static result type.
	Type() types.T
}

// ColRef references a column by ID.
type ColRef struct {
	Col Col
}

func (c *ColRef) Type() types.T { return c.Col.Type }

// ConstExpr is a literal.
type ConstExpr struct {
	Val types.Datum
	T   types.T
	// Lit is the 1-based translation-cache literal ordinal carried over from
	// the source AST (sqlast.Const.Lit); 0 for constants that were not lifted
	// (view-body literals, transform-introduced constants).
	Lit int
}

// NewConst builds a constant with its natural type.
func NewConst(d types.Datum) *ConstExpr { return &ConstExpr{Val: d, T: d.Type()} }

func (c *ConstExpr) Type() types.T { return c.T }

// ParamExpr is an unresolved parameter (only valid inside macro bodies before
// expansion; bound plans must be parameter-free).
type ParamExpr struct {
	Name string
	T    types.T
}

func (p *ParamExpr) Type() types.T { return p.T }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CmpOp) String() string {
	switch o {
	case CmpEQ:
		return "EQ"
	case CmpNE:
		return "NE"
	case CmpLT:
		return "LT"
	case CmpLE:
		return "LE"
	case CmpGT:
		return "GT"
	case CmpGE:
		return "GE"
	}
	return "?"
}

// SQL returns the SQL spelling of the operator.
func (o CmpOp) SQL() string {
	switch o {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return "?"
}

// Negate returns the complement operator (for NOT pushdown).
func (o CmpOp) Negate() CmpOp {
	switch o {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	case CmpGE:
		return CmpLT
	}
	return o
}

// CompExpr is a comparison; its result is BOOLEAN.
type CompExpr struct {
	Op   CmpOp
	L, R Scalar
}

func (*CompExpr) Type() types.T { return types.Bool }

// BoolOp is AND/OR.
type BoolOp uint8

// Boolean connectives.
const (
	BoolAnd BoolOp = iota
	BoolOr
)

func (o BoolOp) String() string {
	if o == BoolOr {
		return "OR"
	}
	return "AND"
}

// BoolExpr is an n-ary AND/OR.
type BoolExpr struct {
	Op   BoolOp
	Args []Scalar
}

func (*BoolExpr) Type() types.T { return types.Bool }

// NotExpr is logical negation.
type NotExpr struct {
	X Scalar
}

func (*NotExpr) Type() types.T { return types.Bool }

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	Not bool
	X   Scalar
}

func (*IsNullExpr) Type() types.T { return types.Bool }

// ArithExpr is binary arithmetic with a derived result type.
type ArithExpr struct {
	Op   types.ArithOp
	L, R Scalar
	T    types.T
}

func (a *ArithExpr) Type() types.T { return a.T }

// NegExpr is unary minus.
type NegExpr struct {
	X Scalar
}

func (n *NegExpr) Type() types.T { return n.X.Type() }

// ConcatExpr is string concatenation.
type ConcatExpr struct {
	L, R Scalar
}

func (*ConcatExpr) Type() types.T { return types.VarChar(0) }

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	Not     bool
	X       Scalar
	Pattern Scalar
}

func (*LikeExpr) Type() types.T { return types.Bool }

// FuncExpr is a scalar builtin with canonical name (CHAR_LENGTH, SUBSTR,
// POSITION, COALESCE, NULLIF, UPPER, LOWER, TRIM, ABS, ADD_MONTHS,
// CURRENT_DATE, ...). Per-target name mapping happens in the serializer.
type FuncExpr struct {
	Name string
	Args []Scalar
	T    types.T
}

func (f *FuncExpr) Type() types.T { return f.T }

// ExtractExpr is EXTRACT(field FROM x).
type ExtractExpr struct {
	Field types.ExtractField
	X     Scalar
}

func (*ExtractExpr) Type() types.T { return types.Int }

// CastExpr is CAST(x AS t).
type CastExpr struct {
	X  Scalar
	To types.T
	// Implicit marks casts inserted by the binder/transformer rather than
	// written by the user; serializers may render them explicitly anyway.
	Implicit bool
}

func (c *CastExpr) Type() types.T { return c.To }

// CaseWhen is one searched-CASE arm.
type CaseWhen struct {
	Cond Scalar
	Then Scalar
}

// CaseExpr is a searched CASE (the binder desugars the simple form).
type CaseExpr struct {
	Whens []CaseWhen
	Else  Scalar
	T     types.T
}

func (c *CaseExpr) Type() types.T { return c.T }

// ExistsExpr is [NOT] EXISTS over a relational input, possibly correlated.
type ExistsExpr struct {
	Not   bool
	Input Op
}

func (*ExistsExpr) Type() types.T { return types.Bool }

// Quant enumerates subquery quantifiers.
type Quant uint8

// Quantifiers.
const (
	QuantAny Quant = iota
	QuantAll
)

func (q Quant) String() string {
	if q == QuantAll {
		return "ALL"
	}
	return "ANY"
}

// SubqueryCmp is (left...) cmp ANY/ALL (input). With len(Left) > 1 this is
// the vector-comparison construct of the paper's Example 2; the
// serialization-stage transformation rewrites it into a correlated EXISTS
// for targets lacking vector comparison support (§5.3, Figure 6).
type SubqueryCmp struct {
	Cmp   CmpOp
	Quant Quant
	Left  []Scalar
	Input Op
}

func (*SubqueryCmp) Type() types.T { return types.Bool }

// InValues is x IN (v1, v2, ...) with a literal list.
type InValues struct {
	Not  bool
	X    Scalar
	Vals []Scalar
}

func (*InValues) Type() types.T { return types.Bool }

// ScalarSubquery yields the single value of a one-row, one-column input.
type ScalarSubquery struct {
	Input Op
	T     types.T
}

func (s *ScalarSubquery) Type() types.T { return s.T }

func (*ColRef) scalarNode()         {}
func (*ConstExpr) scalarNode()      {}
func (*ParamExpr) scalarNode()      {}
func (*CompExpr) scalarNode()       {}
func (*BoolExpr) scalarNode()       {}
func (*NotExpr) scalarNode()        {}
func (*IsNullExpr) scalarNode()     {}
func (*ArithExpr) scalarNode()      {}
func (*NegExpr) scalarNode()        {}
func (*ConcatExpr) scalarNode()     {}
func (*LikeExpr) scalarNode()       {}
func (*FuncExpr) scalarNode()       {}
func (*ExtractExpr) scalarNode()    {}
func (*CastExpr) scalarNode()       {}
func (*CaseExpr) scalarNode()       {}
func (*ExistsExpr) scalarNode()     {}
func (*SubqueryCmp) scalarNode()    {}
func (*InValues) scalarNode()       {}
func (*ScalarSubquery) scalarNode() {}

// WalkScalar visits s and all nested scalars pre-order; fn returning false
// prunes. Relational inputs of subquery expressions are not entered — use
// SubOps to reach them.
func WalkScalar(s Scalar, fn func(Scalar) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch x := s.(type) {
	case *CompExpr:
		WalkScalar(x.L, fn)
		WalkScalar(x.R, fn)
	case *BoolExpr:
		for _, a := range x.Args {
			WalkScalar(a, fn)
		}
	case *NotExpr:
		WalkScalar(x.X, fn)
	case *IsNullExpr:
		WalkScalar(x.X, fn)
	case *ArithExpr:
		WalkScalar(x.L, fn)
		WalkScalar(x.R, fn)
	case *NegExpr:
		WalkScalar(x.X, fn)
	case *ConcatExpr:
		WalkScalar(x.L, fn)
		WalkScalar(x.R, fn)
	case *LikeExpr:
		WalkScalar(x.X, fn)
		WalkScalar(x.Pattern, fn)
	case *FuncExpr:
		for _, a := range x.Args {
			WalkScalar(a, fn)
		}
	case *ExtractExpr:
		WalkScalar(x.X, fn)
	case *CastExpr:
		WalkScalar(x.X, fn)
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkScalar(w.Cond, fn)
			WalkScalar(w.Then, fn)
		}
		WalkScalar(x.Else, fn)
	case *SubqueryCmp:
		for _, l := range x.Left {
			WalkScalar(l, fn)
		}
	case *InValues:
		WalkScalar(x.X, fn)
		for _, v := range x.Vals {
			WalkScalar(v, fn)
		}
	}
}

// SubOps returns the relational inputs of subquery expressions directly
// nested in s.
func SubOps(s Scalar) []Op {
	var out []Op
	WalkScalar(s, func(x Scalar) bool {
		switch q := x.(type) {
		case *ExistsExpr:
			out = append(out, q.Input)
		case *SubqueryCmp:
			out = append(out, q.Input)
		case *ScalarSubquery:
			out = append(out, q.Input)
		}
		return true
	})
	return out
}

// ColRefsIn collects the distinct ColumnIDs referenced by s, including those
// inside subquery inputs (for correlation analysis).
func ColRefsIn(s Scalar) map[ColumnID]bool {
	out := make(map[ColumnID]bool)
	collectColRefs(s, out)
	return out
}

func collectColRefs(s Scalar, out map[ColumnID]bool) {
	WalkScalar(s, func(x Scalar) bool {
		if cr, ok := x.(*ColRef); ok {
			out[cr.Col.ID] = true
		}
		return true
	})
	for _, op := range SubOps(s) {
		collectOpColRefs(op, out)
	}
}

func collectOpColRefs(op Op, out map[ColumnID]bool) {
	for _, s := range op.Scalars() {
		collectColRefs(s, out)
	}
	for _, c := range op.Children() {
		collectOpColRefs(c, out)
	}
}

// MakeAnd conjoins predicates, flattening nested ANDs and dropping nils.
func MakeAnd(preds ...Scalar) Scalar {
	var args []Scalar
	for _, p := range preds {
		if p == nil {
			continue
		}
		if b, ok := p.(*BoolExpr); ok && b.Op == BoolAnd {
			args = append(args, b.Args...)
			continue
		}
		args = append(args, p)
	}
	switch len(args) {
	case 0:
		return nil
	case 1:
		return args[0]
	}
	return &BoolExpr{Op: BoolAnd, Args: args}
}

// MakeOr disjoins predicates.
func MakeOr(preds ...Scalar) Scalar {
	var args []Scalar
	for _, p := range preds {
		if p == nil {
			continue
		}
		if b, ok := p.(*BoolExpr); ok && b.Op == BoolOr {
			args = append(args, b.Args...)
			continue
		}
		args = append(args, p)
	}
	switch len(args) {
	case 0:
		return nil
	case 1:
		return args[0]
	}
	return &BoolExpr{Op: BoolOr, Args: args}
}

func colTypeString(c Col) string {
	return fmt.Sprintf("%s:%s#%d", c.Name, c.Type, c.ID)
}
