package xtra

import (
	"hyperq/internal/catalog"
)

// Statement is a bound statement: a query plan or a DML/DDL action with
// bound expressions.
type Statement interface{ xtraStmt() }

// Query is a read-only statement.
type Query struct {
	Root Op
}

// Insert appends the rows of Input to Table. Ordinals maps each input column
// to a target column ordinal; unlisted columns receive their defaults.
type Insert struct {
	Table    string
	Ordinals []int
	Input    Op
}

// ColAssign assigns an expression to a target column ordinal.
type ColAssign struct {
	Ordinal int
	Expr    Scalar
}

// Update modifies rows of Table matching Pred. Cols carries the ColumnIDs
// under which the table's columns are visible to Pred and the assignment
// expressions (which may contain correlated subqueries).
type Update struct {
	Table   string
	Cols    []Col
	Assigns []ColAssign
	Pred    Scalar
}

// Delete removes rows of Table matching Pred.
type Delete struct {
	Table string
	Cols  []Col
	Pred  Scalar
}

// CreateTable creates a table, optionally populated from Input (CTAS).
type CreateTable struct {
	Def         *catalog.Table
	Input       Op
	IfNotExists bool
}

// DropTable drops a table.
type DropTable struct {
	Name     string
	IfExists bool
}

// CreateView registers a view definition.
type CreateView struct {
	Def     *catalog.View
	Replace bool
}

// DropView drops a view.
type DropView struct {
	Name string
}

// Txn is a transaction-control statement; the engine treats each request as
// auto-committed, so these are no-ops that still produce a success response.
type Txn struct {
	Kind string
}

// NoOp is a statement eliminated by translation (e.g. COLLECT STATISTICS on
// a self-tuning target). Comment records what was eliminated.
type NoOp struct {
	Comment string
}

func (*Query) xtraStmt()       {}
func (*Insert) xtraStmt()      {}
func (*Update) xtraStmt()      {}
func (*Delete) xtraStmt()      {}
func (*CreateTable) xtraStmt() {}
func (*DropTable) xtraStmt()   {}
func (*CreateView) xtraStmt()  {}
func (*DropView) xtraStmt()    {}
func (*Txn) xtraStmt()         {}
func (*NoOp) xtraStmt()        {}
