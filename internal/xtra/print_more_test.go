package xtra

import (
	"strings"
	"testing"

	"hyperq/internal/types"
)

// Exercise the tree printer across every operator and scalar node kind so
// golden tests elsewhere can rely on stable labels.
func TestFormatCoversAllOperators(t *testing.T) {
	g := &Get{Table: "T", Cols: []Col{{ID: 1, Name: "a", Type: types.Int}}}
	g2 := &Get{Table: "U", Cols: []Col{{ID: 2, Name: "b", Type: types.Int}}}
	aref := &ColRef{Col: g.Cols[0]}
	bref := &ColRef{Col: g2.Cols[0]}

	plan := Op(&Limit{
		N: 5, WithTies: true,
		Keys: []SortKey{{Expr: aref, Desc: true}},
		Input: &Sort{
			Keys: []SortKey{{Expr: aref}},
			Input: &SetOp{
				Kind: SetExcept, Cols: []Col{{ID: 9, Name: "o", Type: types.Int}},
				L: &Agg{
					Input:        &Join{Kind: JoinFull, L: g, R: g2, Pred: &CompExpr{Op: CmpEQ, L: aref, R: bref}},
					Groups:       []GroupCol{{Out: Col{ID: 3, Name: "a", Type: types.Int}, Expr: aref}},
					Aggs:         []AggDef{{Out: Col{ID: 4, Name: "s", Type: types.BigInt}, Func: "SUM", Arg: bref, Distinct: true}},
					GroupingSets: [][]int{{0}, {}},
				},
				R: &Values{Rows: [][]Scalar{{NewConst(types.NewInt(1))}}, Cols: []Col{{ID: 8, Name: "v", Type: types.Int}}},
			},
		},
	})
	out := Format(plan)
	for _, want := range []string{
		"limit(5 WITH TIES)", "sort[a ASC]", "except", "agg[a][SUM(DISTINCT b)] sets=2",
		"join(FULL)", "values(1 rows)", "get(T)", "get(U)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	ru := &RecursiveUnion{Seed: g, Recursive: &WorkScan{Name: "w", WorkID: 1}, Cols: g.Cols}
	out = Format(ru)
	if !strings.Contains(out, "recursive_union") || !strings.Contains(out, "workscan(w)") {
		t.Errorf("recursive format:\n%s", out)
	}
}

func TestFormatScalarCoversAllNodes(t *testing.T) {
	a := &ColRef{Col: Col{ID: 1, Name: "a", Type: types.VarChar(10)}}
	g := &Get{Table: "S", Cols: []Col{{ID: 2, Name: "x", Type: types.Int}}}
	nodes := []Scalar{
		&NotExpr{X: &IsNullExpr{X: a}},
		&NegExpr{X: NewConst(types.NewInt(3))},
		&ConcatExpr{L: a, R: NewConst(types.NewString("!"))},
		&LikeExpr{Not: true, X: a, Pattern: NewConst(types.NewString("%z%"))},
		&CastExpr{X: a, To: types.Int},
		&InValues{Not: true, X: a, Vals: []Scalar{NewConst(types.NewString("q"))}},
		&ScalarSubquery{Input: g, T: types.Int},
		&ExistsExpr{Not: true, Input: g},
		&ParamExpr{Name: "p", T: types.Int},
	}
	labels := []string{"not", "isnull", "neg", "concat", "notlike", "cast(INTEGER)",
		"notin", "subq(SCALAR)", "subq(NOT EXISTS)", "param(:p)"}
	var all strings.Builder
	for _, n := range nodes {
		all.WriteString(FormatScalar(n))
	}
	for _, want := range labels {
		if !strings.Contains(all.String(), want) {
			t.Errorf("missing scalar label %q in:\n%s", want, all.String())
		}
	}
}

func TestScalarInlineFallback(t *testing.T) {
	// Complex expressions fall back to a generic label inside operator
	// headers rather than exploding.
	w := &Window{
		Input:   &Get{Table: "T", Cols: []Col{{ID: 1, Name: "a", Type: types.Int}}},
		OrderBy: []SortKey{{Expr: &CaseExpr{Whens: []CaseWhen{{Cond: NewConst(types.NewBool(true)), Then: NewConst(types.NewInt(1))}}, T: types.Int}}},
		Funcs:   []WindowDef{{Out: Col{ID: 2, Name: "r", Type: types.BigInt}, Name: "RANK"}},
	}
	if !strings.Contains(Format(w), "expr") {
		t.Errorf("inline fallback missing:\n%s", Format(w))
	}
}
