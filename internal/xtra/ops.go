package xtra

import (
	"hyperq/internal/types"
)

// Op is a relational operator. Every operator reports its output columns
// (identity-carrying, so parents reference them by ColumnID), its relational
// children, and the scalar expressions it owns (for generic traversal by the
// Transformer).
type Op interface {
	opNode()
	Columns() []Col
	Children() []Op
	Scalars() []Scalar
}

// Get is a base-table scan. The binder assigns fresh ColumnIDs per reference
// so self-joins stay unambiguous (S1/S2 in the paper's Figure 6).
type Get struct {
	Table string
	Alias string
	Cols  []Col
}

func (g *Get) Columns() []Col    { return g.Cols }
func (g *Get) Children() []Op    { return nil }
func (g *Get) Scalars() []Scalar { return nil }

// Select filters rows by a predicate.
type Select struct {
	Input Op
	Pred  Scalar
}

func (s *Select) Columns() []Col    { return s.Input.Columns() }
func (s *Select) Children() []Op    { return []Op{s.Input} }
func (s *Select) Scalars() []Scalar { return []Scalar{s.Pred} }

// NamedScalar is one computed output column.
type NamedScalar struct {
	Col  Col
	Expr Scalar
}

// Project computes a new column list.
type Project struct {
	Input Op
	Exprs []NamedScalar
}

func (p *Project) Columns() []Col {
	out := make([]Col, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = e.Col
	}
	return out
}
func (p *Project) Children() []Op { return []Op{p.Input} }
func (p *Project) Scalars() []Scalar {
	out := make([]Scalar, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = e.Expr
	}
	return out
}

// SortKey is one ordering key with resolved null placement.
type SortKey struct {
	Expr       Scalar
	Desc       bool
	NullsFirst bool
}

// WindowDef is one window-function computation.
type WindowDef struct {
	Out  Col
	Name string // RANK, DENSE_RANK, ROW_NUMBER, SUM, COUNT, AVG, MIN, MAX
	Args []Scalar
	Star bool // COUNT(*)
	// TdForm marks the vendor order-as-argument origin, preserved for
	// debugging and golden-tree output.
	TdForm bool
}

// Window evaluates window functions over one shared specification; output is
// the input columns followed by the function outputs.
type Window struct {
	Input       Op
	PartitionBy []Scalar
	OrderBy     []SortKey
	Funcs       []WindowDef
}

func (w *Window) Columns() []Col {
	out := append([]Col(nil), w.Input.Columns()...)
	for _, f := range w.Funcs {
		out = append(out, f.Out)
	}
	return out
}
func (w *Window) Children() []Op { return []Op{w.Input} }
func (w *Window) Scalars() []Scalar {
	var out []Scalar
	out = append(out, w.PartitionBy...)
	for _, k := range w.OrderBy {
		out = append(out, k.Expr)
	}
	for _, f := range w.Funcs {
		out = append(out, f.Args...)
	}
	return out
}

// JoinKind enumerates join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER"
	case JoinLeft:
		return "LEFT"
	case JoinRight:
		return "RIGHT"
	case JoinFull:
		return "FULL"
	case JoinCross:
		return "CROSS"
	}
	return "?"
}

// Join combines two inputs; output is L columns followed by R columns.
type Join struct {
	Kind JoinKind
	L, R Op
	Pred Scalar // nil for cross joins
}

func (j *Join) Columns() []Col {
	return append(append([]Col(nil), j.L.Columns()...), j.R.Columns()...)
}
func (j *Join) Children() []Op { return []Op{j.L, j.R} }
func (j *Join) Scalars() []Scalar {
	if j.Pred == nil {
		return nil
	}
	return []Scalar{j.Pred}
}

// AggDef is one aggregate computation.
type AggDef struct {
	Out      Col
	Func     string // SUM, COUNT, AVG, MIN, MAX
	Arg      Scalar // nil for COUNT(*)
	Distinct bool
	Star     bool
}

// GroupCol is one grouping expression with its output column identity.
type GroupCol struct {
	Out  Col
	Expr Scalar
}

// Agg groups and aggregates; output is group columns followed by aggregates.
// GroupingSets, when non-nil, holds ROLLUP/CUBE/GROUPING SETS index lists
// into Groups; the Transformer expands them into a UNION ALL of simple
// aggregations for targets without native support (Table 2).
type Agg struct {
	Input        Op
	Groups       []GroupCol
	Aggs         []AggDef
	GroupingSets [][]int
}

func (a *Agg) Columns() []Col {
	out := make([]Col, 0, len(a.Groups)+len(a.Aggs))
	for _, g := range a.Groups {
		out = append(out, g.Out)
	}
	for _, ag := range a.Aggs {
		out = append(out, ag.Out)
	}
	return out
}
func (a *Agg) Children() []Op { return []Op{a.Input} }
func (a *Agg) Scalars() []Scalar {
	var out []Scalar
	for _, g := range a.Groups {
		out = append(out, g.Expr)
	}
	for _, ag := range a.Aggs {
		if ag.Arg != nil {
			out = append(out, ag.Arg)
		}
	}
	return out
}

// Sort orders rows.
type Sort struct {
	Input Op
	Keys  []SortKey
}

func (s *Sort) Columns() []Col { return s.Input.Columns() }
func (s *Sort) Children() []Op { return []Op{s.Input} }
func (s *Sort) Scalars() []Scalar {
	out := make([]Scalar, len(s.Keys))
	for i, k := range s.Keys {
		out[i] = k.Expr
	}
	return out
}

// Limit returns the first N rows of its (ordered) input. WithTies extends
// the cut to rows equal to the last kept row under Keys.
type Limit struct {
	Input    Op
	N        int64
	WithTies bool
	Keys     []SortKey // ordering context for WithTies
}

func (l *Limit) Columns() []Col { return l.Input.Columns() }
func (l *Limit) Children() []Op { return []Op{l.Input} }
func (l *Limit) Scalars() []Scalar {
	out := make([]Scalar, len(l.Keys))
	for i, k := range l.Keys {
		out[i] = k.Expr
	}
	return out
}

// SetOpKind enumerates set operations.
type SetOpKind uint8

// Set operations.
const (
	SetUnion SetOpKind = iota
	SetIntersect
	SetExcept
)

func (k SetOpKind) String() string {
	switch k {
	case SetUnion:
		return "UNION"
	case SetIntersect:
		return "INTERSECT"
	case SetExcept:
		return "EXCEPT"
	}
	return "?"
}

// SetOp combines two inputs positionally; Cols are fresh output columns.
type SetOp struct {
	Kind SetOpKind
	All  bool
	L, R Op
	Cols []Col
}

func (s *SetOp) Columns() []Col    { return s.Cols }
func (s *SetOp) Children() []Op    { return []Op{s.L, s.R} }
func (s *SetOp) Scalars() []Scalar { return nil }

// Values is an inline literal relation.
type Values struct {
	Rows [][]Scalar
	Cols []Col
}

func (v *Values) Columns() []Col { return v.Cols }
func (v *Values) Children() []Op { return nil }
func (v *Values) Scalars() []Scalar {
	var out []Scalar
	for _, r := range v.Rows {
		out = append(out, r...)
	}
	return out
}

// RecursiveUnion implements WITH RECURSIVE for engines with native recursion
// capability: Seed produces the initial rows; Recursive is re-evaluated
// against the previous iteration's rows (visible through WorkScan with
// matching WorkID) until a fixed point.
type RecursiveUnion struct {
	Seed      Op
	Recursive Op
	Cols      []Col
	WorkID    int
}

func (r *RecursiveUnion) Columns() []Col    { return r.Cols }
func (r *RecursiveUnion) Children() []Op    { return []Op{r.Seed, r.Recursive} }
func (r *RecursiveUnion) Scalars() []Scalar { return nil }

// WorkScan reads the current iteration's working table inside the recursive
// branch of a RecursiveUnion with the same WorkID.
type WorkScan struct {
	Name   string
	Cols   []Col
	WorkID int
}

func (w *WorkScan) Columns() []Col    { return w.Cols }
func (w *WorkScan) Children() []Op    { return nil }
func (w *WorkScan) Scalars() []Scalar { return nil }

func (*Get) opNode()            {}
func (*Select) opNode()         {}
func (*Project) opNode()        {}
func (*Window) opNode()         {}
func (*Join) opNode()           {}
func (*Agg) opNode()            {}
func (*Sort) opNode()           {}
func (*Limit) opNode()          {}
func (*SetOp) opNode()          {}
func (*Values) opNode()         {}
func (*RecursiveUnion) opNode() {}
func (*WorkScan) opNode()       {}

// WalkOps visits op and its relational descendants pre-order, including
// subquery inputs nested in scalar expressions.
func WalkOps(op Op, fn func(Op) bool) {
	if op == nil || !fn(op) {
		return
	}
	for _, s := range op.Scalars() {
		for _, sub := range SubOps(s) {
			WalkOps(sub, fn)
		}
	}
	for _, c := range op.Children() {
		WalkOps(c, fn)
	}
}

// ColumnTypes extracts the types of an operator's output.
func ColumnTypes(op Op) []types.T {
	cols := op.Columns()
	out := make([]types.T, len(cols))
	for i, c := range cols {
		out[i] = c.Type
	}
	return out
}

// FindColumn locates an output column by ID.
func FindColumn(op Op, id ColumnID) (Col, bool) {
	for _, c := range op.Columns() {
		if c.ID == id {
			return c, true
		}
	}
	return Col{}, false
}
