package xtra

import (
	"strings"
	"testing"

	"hyperq/internal/types"
)

func col(id int, name string, t types.T) Col { return Col{ID: ColumnID(id), Name: name, Type: t} }

func sampleGet() *Get {
	return &Get{Table: "SALES", Cols: []Col{
		col(1, "AMOUNT", types.Decimal(10, 2)),
		col(2, "SALES_DATE", types.Date),
	}}
}

func TestOpColumns(t *testing.T) {
	g := sampleGet()
	sel := &Select{Input: g, Pred: &CompExpr{Op: CmpGT, L: &ColRef{Col: g.Cols[0]}, R: NewConst(types.NewInt(10))}}
	if len(sel.Columns()) != 2 {
		t.Error("select must preserve columns")
	}
	p := &Project{Input: sel, Exprs: []NamedScalar{
		{Col: col(3, "X", types.Int), Expr: NewConst(types.NewInt(1))},
	}}
	if len(p.Columns()) != 1 || p.Columns()[0].Name != "X" {
		t.Error("project columns wrong")
	}
	w := &Window{Input: g, Funcs: []WindowDef{{Out: col(4, "R", types.BigInt), Name: "RANK"}}}
	if n := len(w.Columns()); n != 3 {
		t.Errorf("window columns = %d", n)
	}
	j := &Join{Kind: JoinInner, L: g, R: sampleGet()}
	if n := len(j.Columns()); n != 4 {
		t.Errorf("join columns = %d", n)
	}
}

func TestFindColumn(t *testing.T) {
	g := sampleGet()
	c, ok := FindColumn(g, 2)
	if !ok || c.Name != "SALES_DATE" {
		t.Errorf("FindColumn = %v %v", c, ok)
	}
	if _, ok := FindColumn(g, 99); ok {
		t.Error("found missing column")
	}
}

func TestMakeAndOrFlattening(t *testing.T) {
	a := &CompExpr{Op: CmpEQ, L: NewConst(types.NewInt(1)), R: NewConst(types.NewInt(1))}
	b := &CompExpr{Op: CmpEQ, L: NewConst(types.NewInt(2)), R: NewConst(types.NewInt(2))}
	c := &CompExpr{Op: CmpEQ, L: NewConst(types.NewInt(3)), R: NewConst(types.NewInt(3))}
	and1 := MakeAnd(a, b)
	and2 := MakeAnd(and1, c)
	be := and2.(*BoolExpr)
	if len(be.Args) != 3 {
		t.Errorf("AND not flattened: %d args", len(be.Args))
	}
	if MakeAnd() != nil {
		t.Error("empty AND should be nil")
	}
	if MakeAnd(a) != Scalar(a) {
		t.Error("single AND should pass through")
	}
	or := MakeOr(a, MakeOr(b, c))
	if len(or.(*BoolExpr).Args) != 3 {
		t.Error("OR not flattened")
	}
	if MakeAnd(nil, a, nil) != Scalar(a) {
		t.Error("nil predicates should be dropped")
	}
}

func TestCmpOpNegate(t *testing.T) {
	pairs := map[CmpOp]CmpOp{
		CmpEQ: CmpNE, CmpNE: CmpEQ, CmpLT: CmpGE, CmpGE: CmpLT, CmpGT: CmpLE, CmpLE: CmpGT,
	}
	for op, want := range pairs {
		if got := op.Negate(); got != want {
			t.Errorf("%v.Negate() = %v, want %v", op, got, want)
		}
		if op.Negate().Negate() != op {
			t.Errorf("negate not involutive for %v", op)
		}
	}
}

func TestWalkScalarAndSubOps(t *testing.T) {
	g := sampleGet()
	sub := &ExistsExpr{Input: g}
	pred := MakeAnd(
		&CompExpr{Op: CmpGT, L: &ColRef{Col: g.Cols[0]}, R: NewConst(types.NewInt(0))},
		sub,
	)
	ops := SubOps(pred)
	if len(ops) != 1 || ops[0] != Op(g) {
		t.Errorf("SubOps = %v", ops)
	}
	refs := ColRefsIn(pred)
	if !refs[1] {
		t.Errorf("ColRefsIn = %v", refs)
	}
}

func TestColRefsInReachesSubqueries(t *testing.T) {
	g := sampleGet()
	inner := &Select{Input: g, Pred: &CompExpr{
		Op: CmpEQ,
		L:  &ColRef{Col: g.Cols[1]},
		R:  &ColRef{Col: col(42, "OUTER_COL", types.Date)},
	}}
	pred := &ExistsExpr{Input: inner}
	refs := ColRefsIn(pred)
	if !refs[42] {
		t.Error("correlated reference not found")
	}
}

func TestWalkOps(t *testing.T) {
	g := sampleGet()
	plan := &Sort{
		Input: &Select{
			Input: g,
			Pred:  &ExistsExpr{Input: sampleGet()},
		},
		Keys: []SortKey{{Expr: &ColRef{Col: g.Cols[0]}}},
	}
	var kinds []string
	WalkOps(plan, func(op Op) bool {
		switch op.(type) {
		case *Sort:
			kinds = append(kinds, "sort")
		case *Select:
			kinds = append(kinds, "select")
		case *Get:
			kinds = append(kinds, "get")
		}
		return true
	})
	// sort, select, subquery get, main get
	if len(kinds) != 4 {
		t.Errorf("walked %v", kinds)
	}
}

// The paper's Figure 5/6 shape: window over select over get, with the
// date-int comparison expanded.
func TestFormatExample2Shape(t *testing.T) {
	sales := &Get{Table: "SALES", Cols: []Col{
		col(1, "AMOUNT", types.Decimal(10, 2)),
		col(2, "SALES_DATE", types.Date),
	}}
	hist := &Get{Table: "SALES_HISTORY", Alias: "S2", Cols: []Col{
		col(3, "GROSS", types.Decimal(10, 2)),
		col(4, "NET", types.Decimal(10, 2)),
	}}
	datePart := &ArithExpr{
		Op: types.OpAdd,
		L:  &ExtractExpr{Field: types.FieldDay, X: &ColRef{Col: sales.Cols[1]}},
		R: &ArithExpr{
			Op: types.OpMul,
			L:  &ExtractExpr{Field: types.FieldMonth, X: &ColRef{Col: sales.Cols[1]}},
			R:  NewConst(types.NewInt(100)),
			T:  types.Int,
		},
		T: types.Int,
	}
	pred := MakeAnd(
		&CompExpr{Op: CmpGT, L: datePart, R: NewConst(types.NewInt(1140101))},
		&SubqueryCmp{
			Cmp: CmpGT, Quant: QuantAny,
			Left:  []Scalar{&ColRef{Col: sales.Cols[0]}},
			Input: hist,
		},
	)
	plan := &Window{
		Input:   &Select{Input: sales, Pred: pred},
		OrderBy: []SortKey{{Expr: &ColRef{Col: sales.Cols[0]}, Desc: true}},
		Funcs:   []WindowDef{{Out: col(5, "R", types.BigInt), Name: "RANK"}},
	}
	out := Format(plan)
	for _, want := range []string{
		"window(RANK, DESC, AMOUNT)",
		"get(SALES)",
		"boolexpr(AND)",
		"comp(GT)",
		"extract(DAY, SALES_DATE)",
		"const(1140101)",
		"subq(ANY, GT, [GROSS, NET])",
		"get(SALES_HISTORY 'S2')",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	if Format(plan) != out {
		t.Error("Format is not deterministic")
	}
}

func TestFormatScalar(t *testing.T) {
	e := &CaseExpr{
		Whens: []CaseWhen{{Cond: &IsNullExpr{X: NewConst(types.NewInt(1))}, Then: NewConst(types.NewString("a"))}},
		Else:  NewConst(types.NewString("b")),
		T:     types.VarChar(0),
	}
	out := FormatScalar(e)
	for _, want := range []string{"case", "when", "isnull", "else"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestColumnTypes(t *testing.T) {
	g := sampleGet()
	ts := ColumnTypes(g)
	if len(ts) != 2 || ts[1].Kind != types.KindDate {
		t.Errorf("ColumnTypes = %v", ts)
	}
}
