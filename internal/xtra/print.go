package xtra

import (
	"fmt"
	"strings"
)

// Tree printing in the style of the paper's Figures 4–6:
//
//	+-select
//	|-window(RANK, DESC, AMOUNT)
//	| +-select
//	| |-get(SALES)
//	| +-boolexpr(AND)
//	...
//
// The printer renders both relational operators and scalar expressions as
// tree nodes. It is deterministic, so golden tests can assert on the shape
// of bound and transformed plans.

type treeNode struct {
	label    string
	children []treeNode
}

// Format renders an operator tree.
func Format(op Op) string {
	var b strings.Builder
	writeTree(&b, opNodeTree(op), "", true)
	return b.String()
}

// FormatScalar renders a scalar expression tree.
func FormatScalar(s Scalar) string {
	var b strings.Builder
	writeTree(&b, scalarTree(s), "", true)
	return b.String()
}

func writeTree(b *strings.Builder, n treeNode, prefix string, last bool) {
	marker := "|-"
	if last {
		marker = "+-"
	}
	b.WriteString(prefix)
	b.WriteString(marker)
	b.WriteString(n.label)
	b.WriteByte('\n')
	childPrefix := prefix + "| "
	if last && prefix != "" {
		childPrefix = prefix + "  "
	} else if last {
		childPrefix = prefix + "  "
	}
	for i, c := range n.children {
		writeTree(b, c, childPrefix, i == len(n.children)-1)
	}
}

func opNodeTree(op Op) treeNode {
	switch o := op.(type) {
	case *Get:
		lbl := fmt.Sprintf("get(%s)", o.Table)
		if o.Alias != "" && !strings.EqualFold(o.Alias, o.Table) {
			lbl = fmt.Sprintf("get(%s '%s')", o.Table, o.Alias)
		}
		return treeNode{label: lbl}
	case *Select:
		return treeNode{label: "select", children: []treeNode{opNodeTree(o.Input), scalarTree(o.Pred)}}
	case *Project:
		var cols []string
		var kids []treeNode
		for _, e := range o.Exprs {
			cols = append(cols, e.Col.Name)
			kids = append(kids, scalarTree(e.Expr))
		}
		n := treeNode{label: fmt.Sprintf("project[%s]", strings.Join(cols, ", "))}
		n.children = append([]treeNode{opNodeTree(o.Input)}, kids...)
		return n
	case *Window:
		var fs []string
		for _, f := range o.Funcs {
			fs = append(fs, f.Name)
		}
		lbl := fmt.Sprintf("window(%s", strings.Join(fs, ", "))
		for _, k := range o.OrderBy {
			dir := "ASC"
			if k.Desc {
				dir = "DESC"
			}
			lbl += ", " + dir + ", " + scalarInline(k.Expr)
		}
		lbl += ")"
		return treeNode{label: lbl, children: []treeNode{opNodeTree(o.Input)}}
	case *Join:
		n := treeNode{label: fmt.Sprintf("join(%s)", o.Kind)}
		n.children = append(n.children, opNodeTree(o.L), opNodeTree(o.R))
		if o.Pred != nil {
			n.children = append(n.children, scalarTree(o.Pred))
		}
		return n
	case *Agg:
		var gs []string
		for _, g := range o.Groups {
			gs = append(gs, scalarInline(g.Expr))
		}
		var as []string
		for _, a := range o.Aggs {
			arg := "*"
			if a.Arg != nil {
				arg = scalarInline(a.Arg)
			}
			if a.Distinct {
				arg = "DISTINCT " + arg
			}
			as = append(as, fmt.Sprintf("%s(%s)", a.Func, arg))
		}
		lbl := fmt.Sprintf("agg[%s][%s]", strings.Join(gs, ", "), strings.Join(as, ", "))
		if o.GroupingSets != nil {
			lbl += fmt.Sprintf(" sets=%d", len(o.GroupingSets))
		}
		return treeNode{label: lbl, children: []treeNode{opNodeTree(o.Input)}}
	case *Sort:
		var ks []string
		for _, k := range o.Keys {
			d := "ASC"
			if k.Desc {
				d = "DESC"
			}
			ks = append(ks, scalarInline(k.Expr)+" "+d)
		}
		return treeNode{label: fmt.Sprintf("sort[%s]", strings.Join(ks, ", ")), children: []treeNode{opNodeTree(o.Input)}}
	case *Limit:
		lbl := fmt.Sprintf("limit(%d)", o.N)
		if o.WithTies {
			lbl = fmt.Sprintf("limit(%d WITH TIES)", o.N)
		}
		return treeNode{label: lbl, children: []treeNode{opNodeTree(o.Input)}}
	case *SetOp:
		lbl := strings.ToLower(o.Kind.String())
		if o.All {
			lbl += "_all"
		}
		return treeNode{label: lbl, children: []treeNode{opNodeTree(o.L), opNodeTree(o.R)}}
	case *Values:
		return treeNode{label: fmt.Sprintf("values(%d rows)", len(o.Rows))}
	case *RecursiveUnion:
		return treeNode{label: "recursive_union", children: []treeNode{opNodeTree(o.Seed), opNodeTree(o.Recursive)}}
	case *WorkScan:
		return treeNode{label: fmt.Sprintf("workscan(%s)", o.Name)}
	}
	return treeNode{label: fmt.Sprintf("<%T>", op)}
}

func scalarTree(s Scalar) treeNode {
	switch x := s.(type) {
	case *ColRef:
		return treeNode{label: fmt.Sprintf("ident(%s)", x.Col.Name)}
	case *ConstExpr:
		return treeNode{label: fmt.Sprintf("const(%s)", x.Val)}
	case *ParamExpr:
		return treeNode{label: fmt.Sprintf("param(:%s)", x.Name)}
	case *CompExpr:
		return treeNode{label: fmt.Sprintf("comp(%s)", x.Op), children: []treeNode{scalarTree(x.L), scalarTree(x.R)}}
	case *BoolExpr:
		n := treeNode{label: fmt.Sprintf("boolexpr(%s)", x.Op)}
		for _, a := range x.Args {
			n.children = append(n.children, scalarTree(a))
		}
		return n
	case *NotExpr:
		return treeNode{label: "not", children: []treeNode{scalarTree(x.X)}}
	case *IsNullExpr:
		lbl := "isnull"
		if x.Not {
			lbl = "isnotnull"
		}
		return treeNode{label: lbl, children: []treeNode{scalarTree(x.X)}}
	case *ArithExpr:
		return treeNode{label: fmt.Sprintf("arith(%s)", x.Op), children: []treeNode{scalarTree(x.L), scalarTree(x.R)}}
	case *NegExpr:
		return treeNode{label: "neg", children: []treeNode{scalarTree(x.X)}}
	case *ConcatExpr:
		return treeNode{label: "concat", children: []treeNode{scalarTree(x.L), scalarTree(x.R)}}
	case *LikeExpr:
		lbl := "like"
		if x.Not {
			lbl = "notlike"
		}
		return treeNode{label: lbl, children: []treeNode{scalarTree(x.X), scalarTree(x.Pattern)}}
	case *FuncExpr:
		n := treeNode{label: fmt.Sprintf("func(%s)", x.Name)}
		for _, a := range x.Args {
			n.children = append(n.children, scalarTree(a))
		}
		return n
	case *ExtractExpr:
		return treeNode{label: fmt.Sprintf("extract(%s, %s)", x.Field, scalarInline(x.X))}
	case *CastExpr:
		return treeNode{label: fmt.Sprintf("cast(%s)", x.To), children: []treeNode{scalarTree(x.X)}}
	case *CaseExpr:
		n := treeNode{label: "case"}
		for _, w := range x.Whens {
			n.children = append(n.children, treeNode{label: "when", children: []treeNode{scalarTree(w.Cond), scalarTree(w.Then)}})
		}
		if x.Else != nil {
			n.children = append(n.children, treeNode{label: "else", children: []treeNode{scalarTree(x.Else)}})
		}
		return n
	case *ExistsExpr:
		lbl := "subq(EXISTS)"
		if x.Not {
			lbl = "subq(NOT EXISTS)"
		}
		return treeNode{label: lbl, children: []treeNode{opNodeTree(x.Input)}}
	case *SubqueryCmp:
		var names []string
		inputCols := x.Input.Columns()
		for _, c := range inputCols {
			names = append(names, c.Name)
		}
		n := treeNode{label: fmt.Sprintf("subq(%s, %s, [%s])", x.Quant, x.Cmp, strings.Join(names, ", "))}
		n.children = append(n.children, opNodeTree(x.Input))
		list := treeNode{label: "list"}
		for _, l := range x.Left {
			list.children = append(list.children, scalarTree(l))
		}
		n.children = append(n.children, list)
		return n
	case *InValues:
		lbl := "in"
		if x.Not {
			lbl = "notin"
		}
		n := treeNode{label: lbl, children: []treeNode{scalarTree(x.X)}}
		for _, v := range x.Vals {
			n.children = append(n.children, scalarTree(v))
		}
		return n
	case *ScalarSubquery:
		return treeNode{label: "subq(SCALAR)", children: []treeNode{opNodeTree(x.Input)}}
	}
	return treeNode{label: fmt.Sprintf("<%T>", s)}
}

// scalarInline renders simple scalars compactly for operator labels.
func scalarInline(s Scalar) string {
	switch x := s.(type) {
	case *ColRef:
		return x.Col.Name
	case *ConstExpr:
		return x.Val.String()
	case *ExtractExpr:
		return fmt.Sprintf("EXTRACT(%s)", x.Field)
	case *ArithExpr:
		return fmt.Sprintf("%s %s %s", scalarInline(x.L), x.Op, scalarInline(x.R))
	case *FuncExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, scalarInline(a))
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	case *CastExpr:
		return fmt.Sprintf("CAST(%s AS %s)", scalarInline(x.X), x.To)
	}
	return "expr"
}
