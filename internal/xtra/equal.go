package xtra

// ScalarEqual reports structural equality of two scalar expressions. Column
// references compare by ColumnID; subquery expressions compare by input
// operator identity.
func ScalarEqual(a, b Scalar) bool {
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.Col.ID == y.Col.ID
	case *ConstExpr:
		y, ok := b.(*ConstExpr)
		return ok && x.Val.Equal(y.Val)
	case *CompExpr:
		y, ok := b.(*CompExpr)
		return ok && x.Op == y.Op && ScalarEqual(x.L, y.L) && ScalarEqual(x.R, y.R)
	case *BoolExpr:
		y, ok := b.(*BoolExpr)
		if !ok || x.Op != y.Op || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !ScalarEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *NotExpr:
		y, ok := b.(*NotExpr)
		return ok && ScalarEqual(x.X, y.X)
	case *IsNullExpr:
		y, ok := b.(*IsNullExpr)
		return ok && x.Not == y.Not && ScalarEqual(x.X, y.X)
	case *ArithExpr:
		y, ok := b.(*ArithExpr)
		return ok && x.Op == y.Op && ScalarEqual(x.L, y.L) && ScalarEqual(x.R, y.R)
	case *NegExpr:
		y, ok := b.(*NegExpr)
		return ok && ScalarEqual(x.X, y.X)
	case *ConcatExpr:
		y, ok := b.(*ConcatExpr)
		return ok && ScalarEqual(x.L, y.L) && ScalarEqual(x.R, y.R)
	case *LikeExpr:
		y, ok := b.(*LikeExpr)
		return ok && x.Not == y.Not && ScalarEqual(x.X, y.X) && ScalarEqual(x.Pattern, y.Pattern)
	case *FuncExpr:
		y, ok := b.(*FuncExpr)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !ScalarEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *ExtractExpr:
		y, ok := b.(*ExtractExpr)
		return ok && x.Field == y.Field && ScalarEqual(x.X, y.X)
	case *CastExpr:
		y, ok := b.(*CastExpr)
		return ok && x.To.Equal(y.To) && ScalarEqual(x.X, y.X)
	case *CaseExpr:
		y, ok := b.(*CaseExpr)
		if !ok || len(x.Whens) != len(y.Whens) {
			return false
		}
		for i := range x.Whens {
			if !ScalarEqual(x.Whens[i].Cond, y.Whens[i].Cond) || !ScalarEqual(x.Whens[i].Then, y.Whens[i].Then) {
				return false
			}
		}
		if (x.Else == nil) != (y.Else == nil) {
			return false
		}
		return x.Else == nil || ScalarEqual(x.Else, y.Else)
	case *InValues:
		y, ok := b.(*InValues)
		if !ok || x.Not != y.Not || len(x.Vals) != len(y.Vals) || !ScalarEqual(x.X, y.X) {
			return false
		}
		for i := range x.Vals {
			if !ScalarEqual(x.Vals[i], y.Vals[i]) {
				return false
			}
		}
		return true
	case *ExistsExpr:
		y, ok := b.(*ExistsExpr)
		return ok && x.Not == y.Not && x.Input == y.Input
	case *SubqueryCmp:
		y, ok := b.(*SubqueryCmp)
		if !ok || x.Cmp != y.Cmp || x.Quant != y.Quant || x.Input != y.Input || len(x.Left) != len(y.Left) {
			return false
		}
		for i := range x.Left {
			if !ScalarEqual(x.Left[i], y.Left[i]) {
				return false
			}
		}
		return true
	case *ScalarSubquery:
		y, ok := b.(*ScalarSubquery)
		return ok && x.Input == y.Input
	}
	return false
}

// definedColumns collects every ColumnID produced by any operator within the
// subtree rooted at op (including subquery inputs nested in scalars).
func definedColumns(op Op, out map[ColumnID]bool) {
	WalkOps(op, func(o Op) bool {
		for _, c := range o.Columns() {
			out[c.ID] = true
		}
		// Window and aggregation outputs are covered by Columns(); group
		// output columns too. Nothing further needed.
		return true
	})
}

// FreeColRefsIn returns the column references of s that are *free*: not
// defined by any operator inside subquery inputs nested in s. Free refs are
// the correlation edges to the enclosing query.
func FreeColRefsIn(s Scalar) map[ColumnID]bool {
	refs := ColRefsIn(s)
	defined := map[ColumnID]bool{}
	for _, sub := range SubOps(s) {
		definedColumns(sub, defined)
	}
	out := map[ColumnID]bool{}
	for id := range refs {
		if !defined[id] {
			out[id] = true
		}
	}
	return out
}

// FreeRefsOfOp returns the column references within the operator tree that
// are not defined by any operator of the tree — i.e. the tree's correlation
// dependencies on an outer query.
func FreeRefsOfOp(op Op) map[ColumnID]bool {
	refs := map[ColumnID]bool{}
	collectOpColRefs(op, refs)
	defined := map[ColumnID]bool{}
	definedColumns(op, defined)
	out := map[ColumnID]bool{}
	for id := range refs {
		if !defined[id] {
			out[id] = true
		}
	}
	return out
}
