package xtra

import (
	"testing"

	"hyperq/internal/types"
)

func ref(id int) *ColRef {
	return &ColRef{Col: Col{ID: ColumnID(id), Name: "c", Type: types.Int}}
}

func TestScalarEqualBasics(t *testing.T) {
	if !ScalarEqual(ref(1), ref(1)) {
		t.Error("identical refs unequal")
	}
	if ScalarEqual(ref(1), ref(2)) {
		t.Error("distinct refs equal")
	}
	a := &CompExpr{Op: CmpGT, L: ref(1), R: NewConst(types.NewInt(5))}
	b := &CompExpr{Op: CmpGT, L: ref(1), R: NewConst(types.NewInt(5))}
	if !ScalarEqual(a, b) {
		t.Error("structurally equal comparisons unequal")
	}
	c := &CompExpr{Op: CmpLT, L: ref(1), R: NewConst(types.NewInt(5))}
	if ScalarEqual(a, c) {
		t.Error("different operators equal")
	}
	if ScalarEqual(a, ref(1)) {
		t.Error("different node kinds equal")
	}
}

func TestScalarEqualComposite(t *testing.T) {
	mk := func() Scalar {
		return MakeAnd(
			&LikeExpr{X: ref(1), Pattern: NewConst(types.NewString("a%"))},
			&IsNullExpr{Not: true, X: ref(2)},
			&FuncExpr{Name: "COALESCE", Args: []Scalar{ref(3), NewConst(types.NewInt(0))}, T: types.Int},
		)
	}
	if !ScalarEqual(mk(), mk()) {
		t.Error("composite equality failed")
	}
}

func TestScalarEqualCase(t *testing.T) {
	mk := func(elseVal int64) Scalar {
		return &CaseExpr{
			Whens: []CaseWhen{{Cond: &IsNullExpr{X: ref(1)}, Then: NewConst(types.NewInt(1))}},
			Else:  NewConst(types.NewInt(elseVal)),
			T:     types.Int,
		}
	}
	if !ScalarEqual(mk(2), mk(2)) || ScalarEqual(mk(2), mk(3)) {
		t.Error("case equality wrong")
	}
}

func TestFreeColRefsIn(t *testing.T) {
	inner := &Get{Table: "T", Cols: []Col{{ID: 10, Name: "x", Type: types.Int}}}
	corr := &CompExpr{Op: CmpEQ, L: &ColRef{Col: inner.Cols[0]}, R: ref(99)}
	exists := &ExistsExpr{Input: &Select{Input: inner, Pred: corr}}
	pred := MakeAnd(&CompExpr{Op: CmpGT, L: ref(5), R: NewConst(types.NewInt(0))}, exists)

	free := FreeColRefsIn(pred)
	if !free[5] {
		t.Error("direct ref not free")
	}
	if !free[99] {
		t.Error("correlated ref not free")
	}
	if free[10] {
		t.Error("subquery-defined column reported free")
	}
}

func TestFreeRefsOfOp(t *testing.T) {
	g := &Get{Table: "T", Cols: []Col{{ID: 1, Name: "a", Type: types.Int}}}
	// Correlated: predicate references #42 which no op in the tree defines.
	corr := &Select{Input: g, Pred: &CompExpr{Op: CmpEQ, L: &ColRef{Col: g.Cols[0]}, R: ref(42)}}
	free := FreeRefsOfOp(corr)
	if len(free) != 1 || !free[42] {
		t.Fatalf("free = %v", free)
	}
	// Uncorrelated: all references defined internally.
	plain := &Select{Input: g, Pred: &CompExpr{Op: CmpGT, L: &ColRef{Col: g.Cols[0]}, R: NewConst(types.NewInt(0))}}
	if len(FreeRefsOfOp(plain)) != 0 {
		t.Error("uncorrelated tree has free refs")
	}
}

func TestFreeRefsThroughWindowAndAgg(t *testing.T) {
	g := &Get{Table: "T", Cols: []Col{{ID: 1, Name: "a", Type: types.Int}}}
	agg := &Agg{
		Input:  g,
		Groups: []GroupCol{{Out: Col{ID: 2, Name: "a", Type: types.Int}, Expr: &ColRef{Col: g.Cols[0]}}},
		Aggs:   []AggDef{{Out: Col{ID: 3, Name: "n", Type: types.BigInt}, Func: "COUNT", Star: true}},
	}
	proj := &Project{Input: agg, Exprs: []NamedScalar{
		{Col: Col{ID: 4, Name: "out", Type: types.BigInt}, Expr: &ColRef{Col: Col{ID: 3, Type: types.BigInt}}},
	}}
	if len(FreeRefsOfOp(proj)) != 0 {
		t.Errorf("agg outputs not recognized as defined: %v", FreeRefsOfOp(proj))
	}
}
