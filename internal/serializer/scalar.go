package serializer

import (
	"fmt"
	"strings"

	"hyperq/internal/fingerprint"
	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// scalar renders a scalar expression in the target dialect.
func (w *writer) scalar(s xtra.Scalar) (string, error) {
	switch x := s.(type) {
	case *xtra.ColRef:
		n, ok := w.names[x.Col.ID]
		if !ok {
			return "", fmt.Errorf("serializer: unresolved column %s (#%d)", x.Col.Name, x.Col.ID)
		}
		return n, nil
	case *xtra.ConstExpr:
		if w.lift && x.Lit > 0 {
			return fingerprint.Marker(x.Lit - 1), nil
		}
		return x.Val.SQLLiteral(), nil
	case *xtra.CompExpr:
		l, err := w.scalar(x.L)
		if err != nil {
			return "", err
		}
		r, err := w.scalar(x.R)
		if err != nil {
			return "", err
		}
		return "(" + l + " " + x.Op.SQL() + " " + r + ")", nil
	case *xtra.BoolExpr:
		var parts []string
		for _, a := range x.Args {
			p, err := w.scalar(a)
			if err != nil {
				return "", err
			}
			parts = append(parts, p)
		}
		return "(" + strings.Join(parts, " "+x.Op.String()+" ") + ")", nil
	case *xtra.NotExpr:
		inner, err := w.scalar(x.X)
		if err != nil {
			return "", err
		}
		return "(NOT " + inner + ")", nil
	case *xtra.IsNullExpr:
		inner, err := w.scalar(x.X)
		if err != nil {
			return "", err
		}
		if x.Not {
			return "(" + inner + " IS NOT NULL)", nil
		}
		return "(" + inner + " IS NULL)", nil
	case *xtra.ArithExpr:
		l, err := w.scalar(x.L)
		if err != nil {
			return "", err
		}
		r, err := w.scalar(x.R)
		if err != nil {
			return "", err
		}
		if x.Op == types.OpMod {
			return "MOD(" + l + ", " + r + ")", nil
		}
		return "(" + l + " " + x.Op.String() + " " + r + ")", nil
	case *xtra.NegExpr:
		inner, err := w.scalar(x.X)
		if err != nil {
			return "", err
		}
		return "(- " + inner + ")", nil
	case *xtra.ConcatExpr:
		l, err := w.scalar(x.L)
		if err != nil {
			return "", err
		}
		r, err := w.scalar(x.R)
		if err != nil {
			return "", err
		}
		return "(" + l + " || " + r + ")", nil
	case *xtra.LikeExpr:
		v, err := w.scalar(x.X)
		if err != nil {
			return "", err
		}
		p, err := w.scalar(x.Pattern)
		if err != nil {
			return "", err
		}
		op := " LIKE "
		if x.Not {
			op = " NOT LIKE "
		}
		return "(" + v + op + p + ")", nil
	case *xtra.FuncExpr:
		return w.funcExpr(x)
	case *xtra.ExtractExpr:
		inner, err := w.scalar(x.X)
		if err != nil {
			return "", err
		}
		return "EXTRACT(" + x.Field.String() + " FROM " + inner + ")", nil
	case *xtra.CastExpr:
		inner, err := w.scalar(x.X)
		if err != nil {
			return "", err
		}
		return "CAST(" + inner + " AS " + x.To.String() + ")", nil
	case *xtra.CaseExpr:
		// Nested scalar calls also use w.buf; stack discipline keeps this
		// emission's prefix intact while they append and cut behind it.
		mark := len(w.buf)
		w.buf = append(w.buf, "CASE"...)
		for _, wh := range x.Whens {
			c, err := w.scalar(wh.Cond)
			if err != nil {
				w.buf = w.buf[:mark]
				return "", err
			}
			t, err := w.scalar(wh.Then)
			if err != nil {
				w.buf = w.buf[:mark]
				return "", err
			}
			w.buf = append(w.buf, " WHEN "...)
			w.buf = append(w.buf, c...)
			w.buf = append(w.buf, " THEN "...)
			w.buf = append(w.buf, t...)
		}
		if x.Else != nil {
			e, err := w.scalar(x.Else)
			if err != nil {
				w.buf = w.buf[:mark]
				return "", err
			}
			w.buf = append(w.buf, " ELSE "...)
			w.buf = append(w.buf, e...)
		}
		w.buf = append(w.buf, " END"...)
		return w.cut(mark), nil
	case *xtra.ExistsExpr:
		sub, err := w.existsBody(x.Input)
		if err != nil {
			return "", err
		}
		if x.Not {
			return "(NOT EXISTS (" + sub + "))", nil
		}
		return "(EXISTS (" + sub + "))", nil
	case *xtra.SubqueryCmp:
		if len(x.Left) != 1 {
			return "", fmt.Errorf("serializer: vector comparison reached serialization for target %s", w.profile.Name)
		}
		l, err := w.scalar(x.Left[0])
		if err != nil {
			return "", err
		}
		b, err := w.fold(x.Input)
		if err != nil {
			return "", err
		}
		return "(" + l + " " + x.Cmp.SQL() + " " + x.Quant.String() + " (" + w.render(b) + "))", nil
	case *xtra.InValues:
		v, err := w.scalar(x.X)
		if err != nil {
			return "", err
		}
		var vals []string
		for _, item := range x.Vals {
			e, err := w.scalar(item)
			if err != nil {
				return "", err
			}
			vals = append(vals, e)
		}
		op := " IN ("
		if x.Not {
			op = " NOT IN ("
		}
		return "(" + v + op + strings.Join(vals, ", ") + "))", nil
	case *xtra.ScalarSubquery:
		b, err := w.fold(x.Input)
		if err != nil {
			return "", err
		}
		return "(" + w.render(b) + ")", nil
	case *xtra.ParamExpr:
		return "", fmt.Errorf("serializer: unresolved parameter :%s", x.Name)
	}
	return "", fmt.Errorf("serializer: unsupported scalar %T", s)
}

// existsBody renders the EXISTS subquery input as SELECT 1 over the folded
// input (the "remap consts: (1)" projection of the paper's Figure 6).
func (w *writer) existsBody(op xtra.Op) (string, error) {
	b, err := w.fold(op)
	if err != nil {
		return "", err
	}
	if b.computed() {
		b = w.wrap(b)
	}
	b.sel = []string{"1 AS one"}
	b.cols = nil
	return w.render(b), nil
}

// funcExpr renders a canonical builtin under the target's spelling rules.
func (w *writer) funcExpr(x *xtra.FuncExpr) (string, error) {
	args := make([]string, len(x.Args))
	for i, a := range x.Args {
		e, err := w.scalar(a)
		if err != nil {
			return "", err
		}
		args[i] = e
	}
	switch x.Name {
	case "CURRENT_DATE", "CURRENT_TIMESTAMP", "CURRENT_TIME", "USER":
		return x.Name, nil
	case "DATEADD":
		// Unit argument is emitted as a bare keyword.
		unit := "DAY"
		if c, ok := x.Args[0].(*xtra.ConstExpr); ok {
			unit = strings.ToUpper(c.Val.S)
		}
		return "DATEADD(" + unit + ", " + args[1] + ", " + args[2] + ")", nil
	case "ADD_MONTHS":
		if w.profile.AddMonthsStyle == "dateadd" {
			return "DATEADD(MONTH, " + args[1] + ", " + args[0] + ")", nil
		}
		return "ADD_MONTHS(" + args[0] + ", " + args[1] + ")", nil
	case "POSITION":
		name := w.profile.FuncName("POSITION")
		if name == "POSITION" {
			return "POSITION(" + args[0] + " IN " + args[1] + ")", nil
		}
		// STRPOS/CHARINDEX argument orders: STRPOS(haystack, needle),
		// CHARINDEX(needle, haystack).
		if name == "STRPOS" {
			return "STRPOS(" + args[1] + ", " + args[0] + ")", nil
		}
		return name + "(" + args[0] + ", " + args[1] + ")", nil
	}
	name := w.profile.FuncName(x.Name)
	return name + "(" + strings.Join(args, ", ") + ")", nil
}
