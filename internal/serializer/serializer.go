// Package serializer implements the paper's Serializer component (§4.4):
// each target database has its own serializer behind a common interface —
// input an XTRA expression, output the SQL text of that XTRA in the target's
// dialect. Serialization "takes place by walking through the XTRA
// expression, generating a SQL block for each operator and then formatting
// the generated blocks according to the specific keywords and query
// constructs of the target database."
//
// Before emission, the target-specific serialization-stage transformations
// run (§5.3): e.g. vector subqueries become correlated EXISTS on targets
// without vector comparison support.
package serializer

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"hyperq/internal/dialect"
	"hyperq/internal/feature"
	"hyperq/internal/transform"
	"hyperq/internal/xtra"
)

// Serializer emits SQL for one target profile.
type Serializer struct {
	profile *dialect.Profile
	rec     *feature.Recorder
	lift    bool
	noPool  bool
}

// New returns a serializer for the target.
func New(profile *dialect.Profile, rec *feature.Recorder) *Serializer {
	return &Serializer{profile: profile, rec: rec}
}

// LiftLiterals switches the serializer into translation-cache template mode:
// constants carrying a fingerprint ordinal are emitted as placeholder markers
// (fingerprint.Marker) instead of SQL literals. Returns the receiver for
// chaining.
func (s *Serializer) LiftLiterals() *Serializer {
	s.lift = true
	return s
}

// NoPool switches the serializer to fresh-allocation mode: every call builds
// its writer and scratch buffer from scratch instead of drawing from the
// shared pool. Differential tests use it as the correctness reference the
// pooled path must match byte for byte. Returns the receiver for chaining.
func (s *Serializer) NoPool() *Serializer {
	s.noPool = true
	return s
}

// Serialize applies the target's serialization-stage transformations and
// renders the statement as SQL text.
func (s *Serializer) Serialize(stmt xtra.Statement) (string, error) {
	rules := transform.SerializationStage(s.profile)
	if len(rules) > 0 {
		tr := transform.New(rules...)
		c := transform.NewContext(s.profile, s.rec, maxColID(stmt))
		out, err := tr.Statement(stmt, c)
		if err != nil {
			return "", err
		}
		stmt = out
	}
	if s.noPool {
		w := &writer{profile: s.profile, names: map[xtra.ColumnID]string{}, workCTE: map[int]workInfo{}, lift: s.lift}
		return w.statement(stmt)
	}
	w := writerPool.Get().(*writer)
	w.profile, w.lift = s.profile, s.lift
	sql, err := w.statement(stmt)
	w.release()
	return sql, err
}

// writerPool recycles emission state across Serialize calls. Statements are
// serialized one at a time per session, but sessions run concurrently, so the
// pool is the sharing boundary rather than a per-session field.
var writerPool = sync.Pool{New: func() any {
	return &writer{names: map[xtra.ColumnID]string{}, workCTE: map[int]workInfo{}}
}}

// maxRetainedBuf caps the scratch buffer a pooled writer keeps between
// statements. Larger one-off statements still serialize fine; their oversized
// buffers are just not pinned in the pool afterwards.
const maxRetainedBuf = 64 << 10

// release clears per-statement state and returns the writer to the pool.
func (w *writer) release() {
	clear(w.names)
	clear(w.workCTE)
	w.nextA, w.nextCTE = 0, 0
	w.profile, w.lift = nil, false
	if cap(w.buf) > maxRetainedBuf {
		w.buf = nil
	} else {
		w.buf = w.buf[:0]
	}
	writerPool.Put(w)
}

// maxColID finds the highest allocated ColumnID so transformations can mint
// fresh ones.
func maxColID(stmt xtra.Statement) xtra.ColumnID {
	var maxID xtra.ColumnID
	consider := func(cols []xtra.Col) {
		for _, c := range cols {
			if c.ID > maxID {
				maxID = c.ID
			}
		}
	}
	scanScalar := func(sc xtra.Scalar) {
		xtra.WalkScalar(sc, func(x xtra.Scalar) bool {
			if cr, ok := x.(*xtra.ColRef); ok && cr.Col.ID > maxID {
				maxID = cr.Col.ID
			}
			return true
		})
	}
	var scanOp func(op xtra.Op)
	scanOp = func(op xtra.Op) {
		xtra.WalkOps(op, func(o xtra.Op) bool {
			consider(o.Columns())
			for _, sc := range o.Scalars() {
				scanScalar(sc)
			}
			return true
		})
	}
	switch t := stmt.(type) {
	case *xtra.Query:
		scanOp(t.Root)
	case *xtra.Insert:
		scanOp(t.Input)
	case *xtra.Update:
		consider(t.Cols)
		for _, a := range t.Assigns {
			scanScalar(a.Expr)
			for _, sub := range xtra.SubOps(a.Expr) {
				scanOp(sub)
			}
		}
		if t.Pred != nil {
			scanScalar(t.Pred)
			for _, sub := range xtra.SubOps(t.Pred) {
				scanOp(sub)
			}
		}
	case *xtra.Delete:
		consider(t.Cols)
		if t.Pred != nil {
			scanScalar(t.Pred)
			for _, sub := range xtra.SubOps(t.Pred) {
				scanOp(sub)
			}
		}
	case *xtra.CreateTable:
		if t.Input != nil {
			scanOp(t.Input)
		}
	}
	return maxID + 1000
}

// workInfo records the CTE name and declared column names of an active
// RecursiveUnion work table.
type workInfo struct {
	name string
	cols []string
}

// writer holds per-statement emission state. buf is a scratch buffer shared
// by every emission site in the writer under stack discipline: an emitter
// records len(buf) on entry, appends freely (including through recursive
// scalar/render calls, which restore the length before returning), and cuts
// its own suffix out as the result string.
type writer struct {
	profile *dialect.Profile
	names   map[xtra.ColumnID]string
	nextA   int
	nextCTE int
	workCTE map[int]workInfo
	lift    bool
	buf     []byte
}

// cut copies buf[mark:] out as a string and rewinds the scratch buffer to
// mark, completing one stack-discipline emission.
func (w *writer) cut(mark int) string {
	s := string(w.buf[mark:])
	w.buf = w.buf[:mark]
	return s
}

// appendJoin appends parts separated by sep, the append-style strings.Join.
func appendJoin(b []byte, parts []string, sep string) []byte {
	for i, p := range parts {
		if i > 0 {
			b = append(b, sep...)
		}
		b = append(b, p...)
	}
	return b
}

func (w *writer) alias() string {
	w.nextA++
	return "t" + strconv.Itoa(w.nextA)
}

// colAlias is the exported SQL name of a column.
func colAlias(id xtra.ColumnID) string { return "c" + strconv.Itoa(int(id)) }

// appendColAlias is the append-style colAlias.
func appendColAlias(b []byte, id xtra.ColumnID) []byte {
	b = append(b, 'c')
	return strconv.AppendInt(b, int64(id), 10)
}

// quoteIdent renders an identifier, quoting only when necessary.
func quoteIdent(name string) string {
	simple := name != ""
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			simple = false
			break
		}
	}
	if simple && !sqlReserved[strings.ToUpper(name)] {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

var sqlReserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "ORDER": true,
	"BY": true, "HAVING": true, "AND": true, "OR": true, "NOT": true, "NULL": true,
	"JOIN": true, "ON": true, "AS": true, "IN": true, "EXISTS": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "UNION": true, "ALL": true,
	"TABLE": true, "VALUES": true, "SET": true, "USER": true, "DEFAULT": true,
	"DATE": true, "TIME": true, "TIMESTAMP": true, "LIKE": true, "IS": true,
	"BETWEEN": true, "DISTINCT": true, "INTO": true, "UPDATE": true, "DELETE": true,
	"INSERT": true, "CREATE": true, "DROP": true, "VIEW": true, "WITH": true,
}

// block is one SQL SELECT under construction.
type block struct {
	cols     []xtra.Col
	sel      []string // "expr AS cN"; nil = pass-through of cols
	fromSQL  string   // empty means no FROM clause
	where    []string
	groupBy  []string
	having   []string
	orderBy  []string
	limitSQL string
	distinct bool
	windowed bool
	agg      bool
}

// render emits the block as a SELECT statement.
func (w *writer) render(b *block) string {
	mark := len(w.buf)
	w.buf = append(w.buf, "SELECT "...)
	if b.distinct {
		w.buf = append(w.buf, "DISTINCT "...)
	}
	if b.sel != nil {
		w.buf = appendJoin(w.buf, b.sel, ", ")
	} else {
		for i, c := range b.cols {
			if i > 0 {
				w.buf = append(w.buf, ", "...)
			}
			w.buf = append(w.buf, w.names[c.ID]...)
			w.buf = append(w.buf, " AS "...)
			w.buf = appendColAlias(w.buf, c.ID)
		}
	}
	if b.fromSQL != "" {
		w.buf = append(w.buf, " FROM "...)
		w.buf = append(w.buf, b.fromSQL...)
	}
	if len(b.where) > 0 {
		w.buf = append(w.buf, " WHERE "...)
		w.buf = appendJoin(w.buf, b.where, " AND ")
	}
	if len(b.groupBy) > 0 {
		w.buf = append(w.buf, " GROUP BY "...)
		w.buf = appendJoin(w.buf, b.groupBy, ", ")
	}
	if len(b.having) > 0 {
		w.buf = append(w.buf, " HAVING "...)
		w.buf = appendJoin(w.buf, b.having, " AND ")
	}
	if len(b.orderBy) > 0 {
		w.buf = append(w.buf, " ORDER BY "...)
		w.buf = appendJoin(w.buf, b.orderBy, ", ")
	}
	if b.limitSQL != "" {
		w.buf = append(w.buf, ' ')
		w.buf = append(w.buf, b.limitSQL...)
	}
	return w.cut(mark)
}

// wrap turns the block into a derived table and returns a fresh pass-through
// block over it. Output column references switch to the exported cN names.
func (w *writer) wrap(b *block) *block {
	a := w.alias()
	sql := "(" + w.render(b) + ") AS " + a
	for _, c := range b.cols {
		w.names[c.ID] = a + "." + colAlias(c.ID)
	}
	return &block{cols: b.cols, fromSQL: sql}
}

// registerSelectAliases makes a computed block's outputs addressable by
// their exported cN select alias (valid in ORDER BY position).
func (w *writer) registerSelectAliases(b *block) {
	if b.sel == nil {
		return
	}
	for _, c := range b.cols {
		if _, ok := w.names[c.ID]; !ok {
			w.names[c.ID] = colAlias(c.ID)
		}
	}
}

// computed reports whether the block carries anything beyond FROM+WHERE and
// therefore cannot absorb new select lists or predicates directly.
func (b *block) computed() bool {
	return b.sel != nil || b.agg || b.windowed || b.distinct ||
		len(b.groupBy) > 0 || len(b.orderBy) > 0 || b.limitSQL != ""
}

// fold converts an operator into a block.
func (w *writer) fold(op xtra.Op) (*block, error) {
	switch o := op.(type) {
	case *xtra.Get:
		a := w.alias()
		for _, c := range o.Cols {
			w.names[c.ID] = a + "." + quoteIdent(c.Name)
		}
		return &block{cols: o.Cols, fromSQL: quoteIdent(o.Table) + " AS " + a}, nil
	case *xtra.WorkScan:
		info, ok := w.workCTE[o.WorkID]
		if !ok {
			return nil, fmt.Errorf("serializer: work scan outside recursive context")
		}
		a := w.alias()
		for i, c := range o.Cols {
			w.names[c.ID] = a + "." + info.cols[i]
		}
		return &block{cols: o.Cols, fromSQL: info.name + " AS " + a}, nil
	case *xtra.Select:
		b, err := w.fold(o.Input)
		if err != nil {
			return nil, err
		}
		// A computed block (aggregation, windows, projection) is wrapped so
		// the predicate can reference its outputs by exported name; this
		// renders HAVING and QUALIFY semantics as a filter over a derived
		// table, which every modeled target accepts.
		if b.computed() {
			b = w.wrap(b)
		}
		pred, err := w.scalar(o.Pred)
		if err != nil {
			return nil, err
		}
		b.where = append(b.where, pred)
		return b, nil
	case *xtra.Project:
		b, err := w.fold(o.Input)
		if err != nil {
			return nil, err
		}
		if b.computed() {
			b = w.wrap(b)
		}
		var sel []string
		for _, ns := range o.Exprs {
			e, err := w.scalar(ns.Expr)
			if err != nil {
				return nil, err
			}
			sel = append(sel, e+" AS "+colAlias(ns.Col.ID))
		}
		b.sel = sel
		b.cols = o.Columns()
		return b, nil
	case *xtra.Window:
		return w.foldWindow(o)
	case *xtra.Join:
		return w.foldJoin(o)
	case *xtra.Agg:
		return w.foldAgg(o)
	case *xtra.Sort:
		b, err := w.fold(o.Input)
		if err != nil {
			return nil, err
		}
		if len(b.orderBy) > 0 || b.limitSQL != "" {
			b = w.wrap(b)
		}
		// ORDER BY may reference the block's computed outputs by their
		// exported select alias (ANSI permits output-name sort keys).
		w.registerSelectAliases(b)
		keys, err := w.sortKeys(o.Keys)
		if err != nil {
			return nil, err
		}
		b.orderBy = keys
		return b, nil
	case *xtra.Limit:
		b, err := w.fold(o.Input)
		if err != nil {
			return nil, err
		}
		if b.limitSQL != "" {
			b = w.wrap(b)
		}
		if o.WithTies {
			b.limitSQL = fmt.Sprintf("FETCH FIRST %d ROWS WITH TIES", o.N)
		} else {
			b.limitSQL = fmt.Sprintf("FETCH FIRST %d ROWS ONLY", o.N)
		}
		return b, nil
	case *xtra.SetOp:
		return w.foldSetOp(o)
	case *xtra.Values:
		if len(o.Cols) == 0 && len(o.Rows) == 1 && len(o.Rows[0]) == 0 {
			// SELECT without FROM.
			return &block{}, nil
		}
		return nil, fmt.Errorf("serializer: VALUES relation is only supported in INSERT")
	case *xtra.RecursiveUnion:
		return w.foldRecursive(o)
	}
	return nil, fmt.Errorf("serializer: unsupported operator %T", op)
}

func (w *writer) foldWindow(o *xtra.Window) (*block, error) {
	b, err := w.fold(o.Input)
	if err != nil {
		return nil, err
	}
	if b.computed() {
		b = w.wrap(b)
	}
	// Pass-through select list plus window expressions.
	var sel []string
	for _, c := range o.Input.Columns() {
		sel = append(sel, w.names[c.ID]+" AS "+colAlias(c.ID))
	}
	over, err := w.overClause(o)
	if err != nil {
		return nil, err
	}
	for _, f := range o.Funcs {
		var fn string
		switch {
		case f.Star:
			fn = "COUNT(*)"
		case len(f.Args) == 1:
			arg, err := w.scalar(f.Args[0])
			if err != nil {
				return nil, err
			}
			fn = f.Name + "(" + arg + ")"
		default:
			fn = f.Name + "()"
		}
		sel = append(sel, fn+" OVER "+over+" AS "+colAlias(f.Out.ID))
	}
	b.sel = sel
	b.cols = o.Columns()
	b.windowed = true
	return b, nil
}

func (w *writer) overClause(o *xtra.Window) (string, error) {
	var parts []string
	if len(o.PartitionBy) > 0 {
		var es []string
		for _, p := range o.PartitionBy {
			e, err := w.scalar(p)
			if err != nil {
				return "", err
			}
			es = append(es, e)
		}
		parts = append(parts, "PARTITION BY "+strings.Join(es, ", "))
	}
	if len(o.OrderBy) > 0 {
		keys, err := w.sortKeys(o.OrderBy)
		if err != nil {
			return "", err
		}
		parts = append(parts, "ORDER BY "+strings.Join(keys, ", "))
	}
	return "(" + strings.Join(parts, " ") + ")", nil
}

func (w *writer) sortKeys(keys []xtra.SortKey) ([]string, error) {
	var out []string
	for _, k := range keys {
		e, err := w.scalar(k.Expr)
		if err != nil {
			return nil, err
		}
		dir := " ASC"
		if k.Desc {
			dir = " DESC"
		}
		nulls := " NULLS LAST"
		if k.NullsFirst {
			nulls = " NULLS FIRST"
		}
		out = append(out, e+dir+nulls)
	}
	return out, nil
}

// fromItem renders a block as a FROM-clause item.
func (w *writer) fromItem(b *block) string {
	if !b.computed() && len(b.where) == 0 && b.fromSQL != "" {
		return b.fromSQL
	}
	wrapped := w.wrap(b)
	return wrapped.fromSQL
}

func (w *writer) foldJoin(o *xtra.Join) (*block, error) {
	lb, err := w.fold(o.L)
	if err != nil {
		return nil, err
	}
	lf := w.fromItem(lb)
	rb, err := w.fold(o.R)
	if err != nil {
		return nil, err
	}
	rf := w.fromItem(rb)
	var sql string
	if o.Kind == xtra.JoinCross {
		sql = lf + " CROSS JOIN " + rf
	} else {
		kw := map[xtra.JoinKind]string{
			xtra.JoinInner: "INNER JOIN", xtra.JoinLeft: "LEFT JOIN",
			xtra.JoinRight: "RIGHT JOIN", xtra.JoinFull: "FULL JOIN",
		}[o.Kind]
		pred := "1 = 1"
		if o.Pred != nil {
			p, err := w.scalar(o.Pred)
			if err != nil {
				return nil, err
			}
			pred = p
		}
		sql = lf + " " + kw + " " + rf + " ON " + pred
	}
	return &block{cols: o.Columns(), fromSQL: sql}, nil
}

func (w *writer) foldAgg(o *xtra.Agg) (*block, error) {
	b, err := w.fold(o.Input)
	if err != nil {
		return nil, err
	}
	if b.computed() {
		b = w.wrap(b)
	}
	var sel []string
	for _, g := range o.Groups {
		e, err := w.scalar(g.Expr)
		if err != nil {
			return nil, err
		}
		sel = append(sel, e+" AS "+colAlias(g.Out.ID))
		b.groupBy = append(b.groupBy, e)
	}
	for _, a := range o.Aggs {
		var fn string
		switch {
		case a.Star:
			fn = "COUNT(*)"
		default:
			arg, err := w.scalar(a.Arg)
			if err != nil {
				return nil, err
			}
			if a.Distinct {
				arg = "DISTINCT " + arg
			}
			fn = a.Func + "(" + arg + ")"
		}
		sel = append(sel, fn+" AS "+colAlias(a.Out.ID))
	}
	if o.GroupingSets != nil {
		// Native grouping-set emission uses GROUPING SETS syntax.
		var sets []string
		for _, set := range o.GroupingSets {
			var items []string
			for _, i := range set {
				items = append(items, b.groupBy[i])
			}
			sets = append(sets, "("+strings.Join(items, ", ")+")")
		}
		b.groupBy = []string{"GROUPING SETS (" + strings.Join(sets, ", ") + ")"}
	}
	b.sel = sel
	b.cols = o.Columns()
	b.agg = true
	return b, nil
}

func (w *writer) foldSetOp(o *xtra.SetOp) (*block, error) {
	lb, err := w.fold(o.L)
	if err != nil {
		return nil, err
	}
	rb, err := w.fold(o.R)
	if err != nil {
		return nil, err
	}
	kw := map[xtra.SetOpKind]string{
		xtra.SetUnion: "UNION", xtra.SetIntersect: "INTERSECT", xtra.SetExcept: "EXCEPT",
	}[o.Kind]
	if o.All {
		kw += " ALL"
	}
	union := "(" + w.render(lb) + ") " + kw + " (" + w.render(rb) + ")"
	a := w.alias()
	// Column names of the union come from the left branch's exports;
	// re-export them under the set operation's own column identities.
	lcols := o.L.Columns()
	var sel []string
	for i, c := range o.Cols {
		w.names[c.ID] = a + "." + colAlias(lcols[i].ID)
		sel = append(sel, w.names[c.ID]+" AS "+colAlias(c.ID))
	}
	return &block{
		cols:    o.Cols,
		sel:     sel,
		fromSQL: "(" + union + ") AS " + a,
	}, nil
}

func (w *writer) foldRecursive(o *xtra.RecursiveUnion) (*block, error) {
	w.nextCTE++
	name := fmt.Sprintf("rcte%d", w.nextCTE)
	colNames := make([]string, len(o.Cols))
	for i := range o.Cols {
		colNames[i] = fmt.Sprintf("x%d", i+1)
	}
	seedB, err := w.fold(o.Seed)
	if err != nil {
		return nil, err
	}
	seedSQL := w.render(seedB)
	w.workCTE[o.WorkID] = workInfo{name: name, cols: colNames}
	recB, err := w.fold(o.Recursive)
	delete(w.workCTE, o.WorkID)
	if err != nil {
		return nil, err
	}
	recSQL := w.render(recB)
	var sel []string
	for i, c := range o.Cols {
		sel = append(sel, colNames[i]+" AS "+colAlias(c.ID))
	}
	full := fmt.Sprintf("WITH RECURSIVE %s (%s) AS ((%s) UNION ALL (%s)) SELECT %s FROM %s",
		name, strings.Join(colNames, ", "), seedSQL, recSQL, strings.Join(sel, ", "), name)
	a := w.alias()
	for _, c := range o.Cols {
		w.names[c.ID] = a + "." + colAlias(c.ID)
	}
	return &block{cols: o.Cols, fromSQL: "(" + full + ") AS " + a}, nil
}
