package serializer

import (
	"regexp"
	"strings"
	"testing"

	"hyperq/internal/dialect"
)

// The paper's Example 2 → Example 3 rewrite: the generated SQL must contain
// the exact structural elements of the published translation.
func TestExample3GoldenStructure(t *testing.T) {
	sess := setupEngine(t, dialect.CloudA())
	sql := translate(t, sess, `
	  SEL *
	  FROM SALES
	  WHERE SALES_DATE > 1140101
	    AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
	  QUALIFY RANK(AMOUNT DESC) <= 10`, dialect.CloudA())

	// Figure 5: the date side expands to the internal integer arithmetic.
	for _, pattern := range []string{
		`EXTRACT\(DAY FROM [\w.]+\)`,
		`EXTRACT\(MONTH FROM [\w.]+\) \* 100`,
		`EXTRACT\(YEAR FROM [\w.]+\) - 1900`,
		`\* 10000`,
		`> 1140101`,
	} {
		if !regexp.MustCompile(pattern).MatchString(sql) {
			t.Errorf("missing Figure 5 element %q in:\n%s", pattern, sql)
		}
	}
	// Figure 6 / Example 3: the vector subquery becomes EXISTS (SELECT 1 ...)
	// with the lexicographic OR/AND expansion.
	for _, pattern := range []string{
		`EXISTS \(SELECT 1`,
		`OR \(\([\w.]+ = [\w.]+\) AND`,
		`\* 0.85`,
	} {
		if !regexp.MustCompile(pattern).MatchString(sql) {
			t.Errorf("missing Example 3 element %q in:\n%s", pattern, sql)
		}
	}
	// The QUALIFY lowering: RANK() OVER (ORDER BY ... DESC) computed in a
	// derived table, filtered in the outer WHERE (Example 3's "WHERE R <= 10").
	if !regexp.MustCompile(`RANK\(\) OVER \(ORDER BY [\w.]+ DESC`).MatchString(sql) {
		t.Errorf("missing ANSI RANK window:\n%s", sql)
	}
	if !regexp.MustCompile(`WHERE \([\w.]+ <= 10\)$`).MatchString(sql) {
		t.Errorf("missing outer rank filter:\n%s", sql)
	}
	// No vendor constructs may leak into SQL-B.
	for _, vendor := range []string{"QUALIFY", "SEL ", " ANY "} {
		if strings.Contains(sql, vendor) {
			t.Errorf("vendor construct %q leaked into SQL-B:\n%s", vendor, sql)
		}
	}
}

// Serialization is deterministic: the same plan always yields the same text.
func TestSerializationDeterministic(t *testing.T) {
	sess := setupEngine(t, dialect.CloudB())
	const q = "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY 1 QUALIFY RANK(SUM(AMOUNT) DESC) <= 2 ORDER BY 1"
	first := translate(t, sess, q, dialect.CloudB())
	for i := 0; i < 3; i++ {
		sess2 := setupEngine(t, dialect.CloudB())
		if got := translate(t, sess2, q, dialect.CloudB()); got != first {
			t.Fatalf("non-deterministic serialization:\n%s\nvs\n%s", first, got)
		}
	}
}

// Every target's output must keep frontend semantics for NULL ordering: the
// serializer always spells NULLS FIRST/LAST explicitly (the paper's silent
// semantic difference, §2.1 "default ordering of NULL").
func TestNullOrderingAlwaysExplicit(t *testing.T) {
	for _, target := range dialect.CloudTargets() {
		sess := setupEngine(t, target)
		sql := translate(t, sess, "SEL AMOUNT FROM SALES ORDER BY AMOUNT", target)
		if !strings.Contains(sql, "NULLS FIRST") && !strings.Contains(sql, "NULLS LAST") {
			t.Errorf("%s: implicit null ordering:\n%s", target.Name, sql)
		}
	}
}
