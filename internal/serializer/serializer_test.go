package serializer

import (
	"strings"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/feature"
	"hyperq/internal/parser"
	"hyperq/internal/transform"
	"hyperq/internal/xtra"

	"hyperq/internal/binder"
)

// setupEngine loads the shared test schema/data into an engine modeling the
// given profile.
func setupEngine(t *testing.T, p *dialect.Profile) *engine.Session {
	t.Helper()
	e := engine.New(p)
	s := e.NewSession()
	ddl := []string{
		`CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, STORE INT)`,
		`CREATE TABLE SALES_HISTORY (GROSS DECIMAL(12,2), NET DECIMAL(12,2))`,
		`CREATE TABLE PRODUCT (PRODUCT_NAME VARCHAR(40), SALES DECIMAL(12,2), STORE INT)`,
		`INSERT INTO SALES VALUES
		   (100.00, DATE '2014-02-01', 1),
		   (250.00, DATE '2014-03-15', 1),
		   (80.00,  DATE '2013-12-31', 2),
		   (250.00, DATE '2014-06-01', 2),
		   (40.00,  DATE '2015-01-05', 3)`,
		`INSERT INTO SALES_HISTORY VALUES (90.00, 70.00), (240.00, 200.00)`,
		`INSERT INTO PRODUCT VALUES ('widget', 100.00, 1), ('gadget', 300.00, 1), ('gizmo', 50.00, 2)`,
	}
	for _, stmt := range ddl {
		if _, err := s.ExecSQL(stmt); err != nil {
			t.Fatalf("setup %q: %v", stmt, err)
		}
	}
	return s
}

// translate runs the full frontend pipeline: Teradata parse, bind, binding
// stage transformations, and per-target serialization.
func translate(t *testing.T, sess *engine.Session, tdSQL string, target *dialect.Profile) string {
	t.Helper()
	rec := &feature.Recorder{}
	stmt, err := parser.ParseOne(tdSQL, parser.Teradata, rec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b := binder.New(sess, parser.Teradata, rec)
	bound, err := b.Bind(stmt)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	c := transform.NewContext(nil, rec, maxColID(bound))
	mid, err := transform.BindingStage().Statement(bound, c)
	if err != nil {
		t.Fatalf("binding stage: %v", err)
	}
	sql, err := New(target, rec).Serialize(mid)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return sql
}

// roundTrip translates tdSQL for the target and executes the generated SQL
// on an engine modeling that target, returning rendered rows.
func roundTrip(t *testing.T, tdSQL string, target *dialect.Profile) []string {
	t.Helper()
	sess := setupEngine(t, target)
	sql := translate(t, sess, tdSQL, target)
	res, err := sess.QuerySQL(sql)
	if err != nil {
		t.Fatalf("backend rejected generated SQL:\n%s\nerror: %v", sql, err)
	}
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var parts []string
		for _, d := range row {
			parts = append(parts, d.String())
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func expect(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %q, want %q (all %v)", i, got[i], want[i], got)
		}
	}
}

func allTargets() []*dialect.Profile { return dialect.CloudTargets() }

func TestRoundTripSimpleSelect(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, "SEL STORE, AMOUNT FROM SALES WHERE AMOUNT > 90 ORDER BY AMOUNT DESC, STORE", target)
		expect(t, got, "1|250.00", "2|250.00", "1|100.00")
	}
}

func TestRoundTripAggregation(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, "SEL STORE, SUM(AMOUNT) AS TOTAL, COUNT(*) FROM SALES GROUP BY 1 ORDER BY 1", target)
		expect(t, got, "1|350.00|2", "2|330.00|2", "3|40.00|1")
	}
}

func TestRoundTripHaving(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, "SEL STORE FROM SALES GROUP BY STORE HAVING SUM(AMOUNT) > 100 ORDER BY STORE", target)
		expect(t, got, "1", "2")
	}
}

// The paper's Example 2 end to end on every modeled target: DATE/INT
// comparison, vector subquery, QUALIFY with Teradata RANK form.
func TestRoundTripExample2(t *testing.T) {
	const example2 = `
	  SEL *
	  FROM SALES
	  WHERE SALES_DATE > 1140101
	    AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
	  QUALIFY RANK(AMOUNT DESC) <= 2`
	// Rows after date filter (2014+): 100@s1, 250@s1, 250@s2, 40@s3(2015).
	// Vector filter: > (90,70) or > (240,200) lexicographically: 100 > 90,
	// 250 > 90 — 40 fails (40<90, 40<240). RANK by amount desc, top 2 with
	// ties: the two 250s.
	for _, target := range allTargets() {
		got := roundTrip(t, example2, target)
		if len(got) != 2 {
			t.Fatalf("target %s: rows = %v", target.Name, got)
		}
		for _, row := range got {
			if !strings.HasPrefix(row, "250.00|") {
				t.Fatalf("target %s: unexpected row %q", target.Name, row)
			}
		}
	}
}

// Example 1: SEL, named expressions, QUALIFY over windowed sum, reordered
// clauses.
func TestRoundTripExample1(t *testing.T) {
	const example1 = `
	  SEL PRODUCT_NAME, SALES AS SALES_BASE, SALES_BASE + 100 AS SALES_OFFSET
	  FROM PRODUCT
	  QUALIFY 10 < SUM(SALES) OVER (PARTITION BY STORE)
	  ORDER BY STORE, PRODUCT_NAME
	  WHERE CHARS(PRODUCT_NAME) > 4`
	for _, target := range allTargets() {
		got := roundTrip(t, example1, target)
		// widget and gadget pass CHARS > 4 (6 chars each; gizmo has 5... all
		// have >4). store 1: widget+gadget; store 2: gizmo.
		expect(t, got,
			"gadget|300.00|400.00",
			"widget|100.00|200.00",
			"gizmo|50.00|150.00",
		)
	}
}

func TestRoundTripWindowFunctions(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, `
		  SEL STORE, RANK() OVER (PARTITION BY STORE ORDER BY AMOUNT DESC) AS R
		  FROM SALES QUALIFY R = 1 ORDER BY STORE`, target)
		expect(t, got, "1|1", "2|1", "3|1")
	}
}

func TestRoundTripSetOps(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, "SEL STORE FROM SALES UNION SEL STORE FROM PRODUCT ORDER BY 1", target)
		expect(t, got, "1", "2", "3")
	}
}

func TestRoundTripTopWithTies(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, "SEL TOP 1 WITH TIES AMOUNT FROM SALES ORDER BY AMOUNT DESC", target)
		expect(t, got, "250.00", "250.00")
	}
}

func TestRoundTripDateArithmetic(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, "SEL SALES_DATE + 30 FROM SALES WHERE STORE = 3", target)
		expect(t, got, "2015-02-04")
	}
}

func TestRoundTripGroupingSets(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, "SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP(STORE) ORDER BY 2, 1", target)
		expect(t, got, "3|40.00", "2|330.00", "1|350.00", "NULL|720.00")
	}
}

func TestRoundTripImplicitJoin(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, `
		  SEL DISTINCT PRODUCT.PRODUCT_NAME FROM PRODUCT
		  WHERE SALES.STORE = PRODUCT.STORE AND SALES.AMOUNT > 200
		  ORDER BY 1`, target)
		expect(t, got, "gadget", "gizmo", "widget")
	}
}

func TestRoundTripCorrelatedExists(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, `
		  SEL PRODUCT_NAME FROM PRODUCT P
		  WHERE EXISTS (SEL 1 FROM SALES S WHERE S.STORE = P.STORE AND S.AMOUNT > 200)
		  ORDER BY PRODUCT_NAME`, target)
		expect(t, got, "gadget", "gizmo", "widget")
	}
}

func TestRoundTripScalarSubquery(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, "SEL PRODUCT_NAME, (SEL MAX(AMOUNT) FROM SALES) FROM PRODUCT ORDER BY 1", target)
		expect(t, got, "gadget|250.00", "gizmo|250.00", "widget|250.00")
	}
}

func TestRoundTripBuiltins(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, `
		  SEL UPPER(PRODUCT_NAME), CHARS(PRODUCT_NAME), SUBSTR(PRODUCT_NAME, 1, 3),
		      INDEX(PRODUCT_NAME, 'dget'), ZEROIFNULL(STORE), ADD_MONTHS(DATE '2020-01-31', 1)
		  FROM PRODUCT WHERE PRODUCT_NAME = 'gadget'`, target)
		expect(t, got, "GADGET|6|gad|3|1|2020-02-29")
	}
}

func TestRoundTripCaseAndCast(t *testing.T) {
	for _, target := range allTargets() {
		got := roundTrip(t, `
		  SEL CASE WHEN AMOUNT > 100 THEN 'big' ELSE 'small' END,
		      CAST(AMOUNT AS INTEGER)
		  FROM SALES WHERE STORE = 3`, target)
		expect(t, got, "small|40")
	}
}

func TestRoundTripDML(t *testing.T) {
	for _, target := range allTargets() {
		sess := setupEngine(t, target)
		// INSERT
		sql := translate(t, sess, "INS SALES (999.99, DATE '2020-01-01', 9)", target)
		if _, err := sess.ExecSQL(sql); err != nil {
			t.Fatalf("%s: insert failed:\n%s\n%v", target.Name, sql, err)
		}
		// UPDATE with date-int comparison in the predicate.
		sql = translate(t, sess, "UPD SALES SET AMOUNT = AMOUNT + 1 WHERE SALES_DATE > 1190000", target)
		rs, err := sess.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: update failed:\n%s\n%v", target.Name, sql, err)
		}
		if rs[0].RowsAffected != 1 {
			t.Fatalf("%s: update affected %d", target.Name, rs[0].RowsAffected)
		}
		// DELETE
		sql = translate(t, sess, "DEL FROM SALES WHERE STORE = 9", target)
		rs, err = sess.ExecSQL(sql)
		if err != nil || rs[0].RowsAffected != 1 {
			t.Fatalf("%s: delete: %v affected=%d", target.Name, err, rs[0].RowsAffected)
		}
	}
}

func TestRoundTripCreateTableAndCTAS(t *testing.T) {
	for _, target := range allTargets() {
		sess := setupEngine(t, target)
		sql := translate(t, sess, "CREATE TABLE copycat AS (SEL STORE, SUM(AMOUNT) AS T FROM SALES GROUP BY 1) WITH DATA", target)
		if _, err := sess.ExecSQL(sql); err != nil {
			t.Fatalf("%s: ctas failed:\n%s\n%v", target.Name, sql, err)
		}
		n, err := sess.RowCount("copycat")
		if err != nil || n != 3 {
			t.Fatalf("%s: ctas rows = %d, %v", target.Name, n, err)
		}
	}
}

func TestRoundTripRecursiveOnCapableTarget(t *testing.T) {
	target := dialect.CloudD() // supports recursion natively
	sess := setupEngine(t, target)
	if _, err := sess.ExecSQL("CREATE TABLE EMP (EMPNO INT, MGRNO INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecSQL("INSERT INTO EMP VALUES (1,7),(7,8),(8,10),(9,10),(10,11)"); err != nil {
		t.Fatal(err)
	}
	sql := translate(t, sess, `
	  WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
	    SEL EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
	    UNION ALL
	    SEL EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS WHERE REPORTS.EMPNO = EMP.MGRNO
	  )
	  SEL EMPNO FROM REPORTS ORDER BY EMPNO`, target)
	res, err := sess.QuerySQL(sql)
	if err != nil {
		t.Fatalf("recursive round trip failed:\n%s\n%v", sql, err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestSerializedSQLIsANSIParseable(t *testing.T) {
	// Every generated string must parse under the strict ANSI dialect.
	queries := []string{
		"SEL * FROM SALES WHERE SALES_DATE > 1140101 QUALIFY RANK(AMOUNT DESC) <= 10",
		"SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP(STORE)",
		"SEL TOP 3 AMOUNT FROM SALES ORDER BY AMOUNT DESC",
		"SEL S.STORE FROM SALES S LEFT JOIN PRODUCT P ON S.STORE = P.STORE",
	}
	for _, target := range allTargets() {
		sess := setupEngine(t, target)
		for _, q := range queries {
			sql := translate(t, sess, q, target)
			if _, err := parser.Parse(sql, parser.ANSI, nil); err != nil {
				t.Errorf("target %s: generated SQL not ANSI-parseable: %v\n%s", target.Name, err, sql)
			}
		}
	}
}

func TestVectorSurvivesForCapableEngine(t *testing.T) {
	// The source profile keeps the vector construct; the serialized text
	// must then contain the quantified row comparison... which no modeled
	// target accepts — ensure the serializer reports it instead of emitting
	// silently wrong SQL.
	sess := setupEngine(t, dialect.TeradataProfile())
	rec := &feature.Recorder{}
	stmt, err := parser.ParseOne(
		"SEL * FROM SALES WHERE (AMOUNT, AMOUNT) > ANY (SEL GROSS, NET FROM SALES_HISTORY)",
		parser.Teradata, rec)
	if err != nil {
		t.Fatal(err)
	}
	b := binder.New(sess, parser.Teradata, rec)
	bound, err := b.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Teradata profile supports vectors, so no rewrite fires — and the
	// emitter has no SQL spelling for it.
	if _, err := New(dialect.TeradataProfile(), rec).Serialize(bound); err == nil {
		t.Error("expected serializer error for un-rewritten vector comparison")
	}
}

func TestNoOpSerializesEmpty(t *testing.T) {
	s := New(dialect.CloudA(), nil)
	out, err := s.Serialize(&xtra.NoOp{Comment: "eliminated"})
	if err != nil || out != "" {
		t.Fatalf("NoOp = %q, %v", out, err)
	}
}

func TestFunctionSpellingPerTarget(t *testing.T) {
	sess := setupEngine(t, dialect.CloudA())
	sql := translate(t, sess, "SEL CHARS(PRODUCT_NAME) FROM PRODUCT", dialect.CloudA())
	if !strings.Contains(sql, "LEN(") {
		t.Errorf("CloudA spelling: %s", sql)
	}
	sess2 := setupEngine(t, dialect.CloudD())
	sql2 := translate(t, sess2, "SEL CHARS(PRODUCT_NAME) FROM PRODUCT", dialect.CloudD())
	if !strings.Contains(sql2, "LENGTH(") {
		t.Errorf("CloudD spelling: %s", sql2)
	}
	sess3 := setupEngine(t, dialect.CloudC())
	sql3 := translate(t, sess3, "SEL INDEX(PRODUCT_NAME, 'x') FROM PRODUCT", dialect.CloudC())
	if !strings.Contains(sql3, "CHARINDEX(") {
		t.Errorf("CloudC spelling: %s", sql3)
	}
}
