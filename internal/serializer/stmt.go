package serializer

import (
	"fmt"

	"hyperq/internal/catalog"
	"hyperq/internal/xtra"
)

// statement renders a bound statement as target SQL.
func (w *writer) statement(stmt xtra.Statement) (string, error) {
	switch t := stmt.(type) {
	case *xtra.Query:
		b, err := w.fold(t.Root)
		if err != nil {
			return "", err
		}
		return w.render(b), nil
	case *xtra.Insert:
		return w.insert(t)
	case *xtra.Update:
		return w.update(t)
	case *xtra.Delete:
		return w.delete(t)
	case *xtra.CreateTable:
		return w.createTable(t)
	case *xtra.DropTable:
		if t.IfExists {
			return "DROP TABLE IF EXISTS " + quoteIdent(t.Name), nil
		}
		return "DROP TABLE " + quoteIdent(t.Name), nil
	case *xtra.CreateView:
		// Views are maintained in the gateway catalog and expanded during
		// binding; they are never pushed to the backend in source-dialect
		// text (that would leak SQL-A into SQL-B).
		return "", fmt.Errorf("serializer: views are maintained in the gateway catalog")
	case *xtra.DropView:
		return "DROP VIEW " + quoteIdent(t.Name), nil
	case *xtra.Txn:
		return t.Kind, nil
	case *xtra.NoOp:
		// Statements eliminated by translation produce no backend request;
		// callers treat an empty string as "nothing to send".
		return "", nil
	}
	return "", fmt.Errorf("serializer: unsupported statement %T", stmt)
}

func (w *writer) insert(t *xtra.Insert) (string, error) {
	mark := len(w.buf)
	w.buf = append(w.buf, "INSERT INTO "...)
	w.buf = append(w.buf, quoteIdent(t.Table)...)
	// Column list from target ordinals: the engine-side binder resolves
	// names, so we emit the names of the input columns' targets. Since the
	// Insert plan carries ordinals only, emission uses the input column
	// names, which the binder set to the target column names.
	w.buf = append(w.buf, " ("...)
	for i, c := range t.Input.Columns() {
		if i > 0 {
			w.buf = append(w.buf, ", "...)
		}
		w.buf = append(w.buf, quoteIdent(c.Name)...)
	}
	w.buf = append(w.buf, ')')
	if v, ok := t.Input.(*xtra.Values); ok {
		w.buf = append(w.buf, " VALUES "...)
		for ri, row := range v.Rows {
			if ri > 0 {
				w.buf = append(w.buf, ", "...)
			}
			w.buf = append(w.buf, '(')
			for i, e := range row {
				s, err := w.scalar(e)
				if err != nil {
					w.buf = w.buf[:mark]
					return "", err
				}
				if i > 0 {
					w.buf = append(w.buf, ", "...)
				}
				w.buf = append(w.buf, s...)
			}
			w.buf = append(w.buf, ')')
		}
		return w.cut(mark), nil
	}
	b, err := w.fold(t.Input)
	if err != nil {
		w.buf = w.buf[:mark]
		return "", err
	}
	sql := w.render(b)
	w.buf = append(w.buf, ' ')
	w.buf = append(w.buf, sql...)
	return w.cut(mark), nil
}

func (w *writer) update(t *xtra.Update) (string, error) {
	// The target table gets a reserved alias so correlated subqueries can
	// reference its columns unambiguously.
	alias := "hq_target"
	for _, c := range t.Cols {
		w.names[c.ID] = alias + "." + quoteIdent(c.Name)
	}
	mark := len(w.buf)
	w.buf = append(w.buf, "UPDATE "...)
	w.buf = append(w.buf, quoteIdent(t.Table)...)
	w.buf = append(w.buf, " AS "...)
	w.buf = append(w.buf, alias...)
	w.buf = append(w.buf, " SET "...)
	for i, a := range t.Assigns {
		e, err := w.scalar(a.Expr)
		if err != nil {
			w.buf = w.buf[:mark]
			return "", err
		}
		if i > 0 {
			w.buf = append(w.buf, ", "...)
		}
		w.buf = append(w.buf, quoteIdent(t.Cols[a.Ordinal].Name)...)
		w.buf = append(w.buf, " = "...)
		w.buf = append(w.buf, e...)
	}
	if t.Pred != nil {
		p, err := w.scalar(t.Pred)
		if err != nil {
			w.buf = w.buf[:mark]
			return "", err
		}
		w.buf = append(w.buf, " WHERE "...)
		w.buf = append(w.buf, p...)
	}
	return w.cut(mark), nil
}

func (w *writer) delete(t *xtra.Delete) (string, error) {
	alias := "hq_target"
	for _, c := range t.Cols {
		w.names[c.ID] = alias + "." + quoteIdent(c.Name)
	}
	mark := len(w.buf)
	w.buf = append(w.buf, "DELETE FROM "...)
	w.buf = append(w.buf, quoteIdent(t.Table)...)
	w.buf = append(w.buf, ' ')
	w.buf = append(w.buf, alias...)
	if t.Pred != nil {
		p, err := w.scalar(t.Pred)
		if err != nil {
			w.buf = w.buf[:mark]
			return "", err
		}
		w.buf = append(w.buf, " WHERE "...)
		w.buf = append(w.buf, p...)
	}
	return w.cut(mark), nil
}

func (w *writer) createTable(t *xtra.CreateTable) (string, error) {
	mark := len(w.buf)
	w.buf = append(w.buf, "CREATE "...)
	switch t.Def.Kind {
	case catalog.KindVolatile:
		w.buf = append(w.buf, "TEMPORARY "...)
	case catalog.KindGlobalTemporary:
		w.buf = append(w.buf, "GLOBAL TEMPORARY "...)
	}
	w.buf = append(w.buf, "TABLE "...)
	if t.IfNotExists {
		w.buf = append(w.buf, "IF NOT EXISTS "...)
	}
	w.buf = append(w.buf, quoteIdent(t.Def.Name)...)
	if t.Input != nil {
		b, err := w.fold(t.Input)
		if err != nil {
			w.buf = w.buf[:mark]
			return "", err
		}
		sql := w.render(b)
		w.buf = append(w.buf, " AS ("...)
		w.buf = append(w.buf, sql...)
		w.buf = append(w.buf, ") WITH DATA"...)
		return w.cut(mark), nil
	}
	w.buf = append(w.buf, " ("...)
	for i, c := range t.Def.Columns {
		if i > 0 {
			w.buf = append(w.buf, ", "...)
		}
		w.buf = append(w.buf, quoteIdent(c.Name)...)
		w.buf = append(w.buf, ' ')
		w.buf = append(w.buf, c.Type.String()...)
		if c.NotNull {
			w.buf = append(w.buf, " NOT NULL"...)
		}
		if c.Default != "" {
			w.buf = append(w.buf, " DEFAULT "...)
			w.buf = append(w.buf, c.Default...)
		}
	}
	w.buf = append(w.buf, ')')
	return w.cut(mark), nil
}
