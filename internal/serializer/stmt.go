package serializer

import (
	"fmt"
	"strings"

	"hyperq/internal/catalog"
	"hyperq/internal/xtra"
)

// statement renders a bound statement as target SQL.
func (w *writer) statement(stmt xtra.Statement) (string, error) {
	switch t := stmt.(type) {
	case *xtra.Query:
		b, err := w.fold(t.Root)
		if err != nil {
			return "", err
		}
		return w.render(b), nil
	case *xtra.Insert:
		return w.insert(t)
	case *xtra.Update:
		return w.update(t)
	case *xtra.Delete:
		return w.delete(t)
	case *xtra.CreateTable:
		return w.createTable(t)
	case *xtra.DropTable:
		if t.IfExists {
			return "DROP TABLE IF EXISTS " + quoteIdent(t.Name), nil
		}
		return "DROP TABLE " + quoteIdent(t.Name), nil
	case *xtra.CreateView:
		// Views are maintained in the gateway catalog and expanded during
		// binding; they are never pushed to the backend in source-dialect
		// text (that would leak SQL-A into SQL-B).
		return "", fmt.Errorf("serializer: views are maintained in the gateway catalog")
	case *xtra.DropView:
		return "DROP VIEW " + quoteIdent(t.Name), nil
	case *xtra.Txn:
		return t.Kind, nil
	case *xtra.NoOp:
		// Statements eliminated by translation produce no backend request;
		// callers treat an empty string as "nothing to send".
		return "", nil
	}
	return "", fmt.Errorf("serializer: unsupported statement %T", stmt)
}

func (w *writer) insert(t *xtra.Insert) (string, error) {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(quoteIdent(t.Table))
	// Column list from target ordinals: the engine-side binder resolves
	// names, so we emit the names of the input columns' targets. Since the
	// Insert plan carries ordinals only, emission uses the input column
	// names, which the binder set to the target column names.
	cols := t.Input.Columns()
	var names []string
	for _, c := range cols {
		names = append(names, quoteIdent(c.Name))
	}
	sb.WriteString(" (" + strings.Join(names, ", ") + ")")
	if v, ok := t.Input.(*xtra.Values); ok {
		sb.WriteString(" VALUES ")
		var rows []string
		for _, row := range v.Rows {
			var vals []string
			for _, e := range row {
				s, err := w.scalar(e)
				if err != nil {
					return "", err
				}
				vals = append(vals, s)
			}
			rows = append(rows, "("+strings.Join(vals, ", ")+")")
		}
		sb.WriteString(strings.Join(rows, ", "))
		return sb.String(), nil
	}
	b, err := w.fold(t.Input)
	if err != nil {
		return "", err
	}
	sb.WriteString(" " + w.render(b))
	return sb.String(), nil
}

func (w *writer) update(t *xtra.Update) (string, error) {
	// The target table gets a reserved alias so correlated subqueries can
	// reference its columns unambiguously.
	alias := "hq_target"
	for _, c := range t.Cols {
		w.names[c.ID] = alias + "." + quoteIdent(c.Name)
	}
	var sb strings.Builder
	sb.WriteString("UPDATE ")
	sb.WriteString(quoteIdent(t.Table))
	sb.WriteString(" AS " + alias + " SET ")
	var sets []string
	for _, a := range t.Assigns {
		e, err := w.scalar(a.Expr)
		if err != nil {
			return "", err
		}
		sets = append(sets, quoteIdent(t.Cols[a.Ordinal].Name)+" = "+e)
	}
	sb.WriteString(strings.Join(sets, ", "))
	if t.Pred != nil {
		p, err := w.scalar(t.Pred)
		if err != nil {
			return "", err
		}
		sb.WriteString(" WHERE " + p)
	}
	return sb.String(), nil
}

func (w *writer) delete(t *xtra.Delete) (string, error) {
	alias := "hq_target"
	for _, c := range t.Cols {
		w.names[c.ID] = alias + "." + quoteIdent(c.Name)
	}
	var sb strings.Builder
	sb.WriteString("DELETE FROM ")
	sb.WriteString(quoteIdent(t.Table))
	sb.WriteString(" " + alias)
	if t.Pred != nil {
		p, err := w.scalar(t.Pred)
		if err != nil {
			return "", err
		}
		sb.WriteString(" WHERE " + p)
	}
	return sb.String(), nil
}

func (w *writer) createTable(t *xtra.CreateTable) (string, error) {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	switch t.Def.Kind {
	case catalog.KindVolatile:
		sb.WriteString("TEMPORARY ")
	case catalog.KindGlobalTemporary:
		sb.WriteString("GLOBAL TEMPORARY ")
	}
	sb.WriteString("TABLE ")
	if t.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(quoteIdent(t.Def.Name))
	if t.Input != nil {
		b, err := w.fold(t.Input)
		if err != nil {
			return "", err
		}
		sb.WriteString(" AS (" + w.render(b) + ") WITH DATA")
		return sb.String(), nil
	}
	var cols []string
	for _, c := range t.Def.Columns {
		def := quoteIdent(c.Name) + " " + c.Type.String()
		if c.NotNull {
			def += " NOT NULL"
		}
		if c.Default != "" {
			def += " DEFAULT " + c.Default
		}
		cols = append(cols, def)
	}
	sb.WriteString(" (" + strings.Join(cols, ", ") + ")")
	return sb.String(), nil
}
