package feature

import (
	"testing"
	"testing/quick"
)

func TestRegistryShape(t *testing.T) {
	if Count != 27 {
		t.Fatalf("Count = %d, want 27", Count)
	}
	for _, c := range Classes {
		if got := len(ByClass(c)); got != 9 {
			t.Errorf("class %s has %d features, want 9", c, got)
		}
	}
	seen := map[string]bool{}
	for _, f := range All() {
		if f.Name == "" || f.Component == "" || f.Desc == "" {
			t.Errorf("feature %d has empty metadata", f.ID)
		}
		if seen[f.Name] {
			t.Errorf("duplicate feature name %q", f.Name)
		}
		seen[f.Name] = true
	}
}

func TestSetOperations(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Error("zero set not empty")
	}
	s.Add(Qualify)
	s.Add(Macro)
	if !s.Has(Qualify) || !s.Has(Macro) || s.Has(SelAbbrev) {
		t.Error("membership wrong")
	}
	if !s.HasClass(ClassTransformation) || !s.HasClass(ClassEmulation) || s.HasClass(ClassTranslation) {
		t.Error("class membership wrong")
	}
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != Qualify || ids[1] != Macro {
		t.Errorf("IDs = %v", ids)
	}
	var o Set
	o.Add(SelAbbrev)
	s.Union(o)
	if !s.Has(SelAbbrev) {
		t.Error("union failed")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Qualify) // must not panic
	if !r.Set().Empty() {
		t.Error("nil recorder recorded something")
	}
	r.Reset()
}

func TestRecorder(t *testing.T) {
	r := &Recorder{}
	r.Record(Qualify)
	r.Record(Qualify)
	r.Record(DateIntCompare)
	s := r.Set()
	if len(s.IDs()) != 2 {
		t.Errorf("IDs = %v", s.IDs())
	}
	r.Reset()
	if !r.Set().Empty() {
		t.Error("Reset failed")
	}
}

func TestStatsFigure8Semantics(t *testing.T) {
	st := NewStats()
	// Query 1: one translation + one transformation feature.
	var q1 Set
	q1.Add(SelAbbrev)
	q1.Add(Qualify)
	st.Observe(q1)
	// Query 2: two transformation features (counted once for the class).
	var q2 Set
	q2.Add(Qualify)
	q2.Add(DateIntCompare)
	st.Observe(q2)
	// Query 3: nothing tracked.
	st.Observe(0)
	// Query 4: emulation.
	var q4 Set
	q4.Add(Macro)
	st.Observe(q4)

	if st.Queries() != 4 {
		t.Fatalf("Queries = %d", st.Queries())
	}
	qp := st.ClassQueryPct()
	if qp[ClassTranslation] != 25 {
		t.Errorf("translation query pct = %v", qp[ClassTranslation])
	}
	if qp[ClassTransformation] != 50 {
		t.Errorf("transformation query pct = %v", qp[ClassTransformation])
	}
	if qp[ClassEmulation] != 25 {
		t.Errorf("emulation query pct = %v", qp[ClassEmulation])
	}
	pp := st.ClassPresencePct()
	// 1/9 translation, 2/9 transformation, 1/9 emulation features present.
	if pp[ClassTranslation] < 11 || pp[ClassTranslation] > 12 {
		t.Errorf("translation presence pct = %v", pp[ClassTranslation])
	}
	if pp[ClassTransformation] < 22 || pp[ClassTransformation] > 23 {
		t.Errorf("transformation presence pct = %v", pp[ClassTransformation])
	}
	counts := st.FeatureQueryCounts()
	if counts[0].Info.ID != Qualify || counts[0].Count != 2 {
		t.Errorf("top feature = %+v", counts[0])
	}
}

func TestEmptyStats(t *testing.T) {
	st := NewStats()
	for _, v := range st.ClassQueryPct() {
		if v != 0 {
			t.Error("non-zero pct on empty stats")
		}
	}
}

// Property: for any random feature subset, a class query percentage is 100%
// exactly when every observed query had a feature of the class.
func TestStatsClassConsistency(t *testing.T) {
	f := func(raw []uint8) bool {
		st := NewStats()
		all := true
		for _, b := range raw {
			var s Set
			s.Add(ID(b % uint8(Count)))
			st.Observe(s)
			if !s.HasClass(ClassTranslation) {
				all = false
			}
		}
		if len(raw) == 0 {
			return true
		}
		pct := st.ClassQueryPct()[ClassTranslation]
		return (pct == 100) == all
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
