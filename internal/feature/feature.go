// Package feature implements the rewrite-feature instrumentation the paper
// uses for its customer workload study (§7.1): a registry of 27 commonly
// used non-standard features — 9 per rewrite class (translation,
// transformation, emulation) — and a Recorder that the parser, binder,
// transformer, serializer and emulation layers report into while processing
// a request.
package feature

import (
	"fmt"
	"sort"
	"sync"
)

// Class is the rewrite difficulty class from §2.1.
type Class uint8

// Rewrite classes.
const (
	// ClassTranslation covers simple, localized keyword/function renames.
	ClassTranslation Class = iota
	// ClassTransformation covers rewrites that need full query structure,
	// name resolution and type derivation.
	ClassTransformation
	// ClassEmulation covers features that must be decomposed into multiple
	// requests plus mid-tier state.
	ClassEmulation
)

func (c Class) String() string {
	switch c {
	case ClassTranslation:
		return "Translation"
	case ClassTransformation:
		return "Transformation"
	case ClassEmulation:
		return "Emulation"
	}
	return "?"
}

// Classes lists the classes in presentation order.
var Classes = []Class{ClassTranslation, ClassTransformation, ClassEmulation}

// ID identifies one tracked feature.
type ID uint8

// The 27 tracked features, 9 per class, mirroring the §7.1 instrumentation.
const (
	// Translation class: keyword and built-in renames.
	SelAbbrev    ID = iota // SEL/INS/UPD/DEL keyword shortcuts
	BtEt                   // BT/ET transaction shortcuts
	CharsFunc              // CHARS/CHARACTERS -> CHAR_LENGTH
	ZeroIfNull             // ZEROIFNULL(x) -> COALESCE(x, 0)
	NullIfZero             // NULLIFZERO(x) -> NULLIF(x, 0)
	IndexFunc              // INDEX(s, t) -> POSITION(t IN s)
	AddMonths              // ADD_MONTHS -> target-specific date arithmetic
	ModOperator            // infix x MOD y -> MOD(x, y) / x % y
	CollectStats           // COLLECT STATISTICS -> eliminated

	// Transformation class: structural rewrites.
	Qualify        // QUALIFY clause -> window project + filter
	TdRank         // RANK(expr DESC) vendor window form
	ImplicitJoin   // tables referenced but missing from FROM
	NamedExprRef   // reference to a named expression in the same block
	OrdinalGroupBy // GROUP BY / ORDER BY column positions
	GroupingSets   // ROLLUP/CUBE -> UNION ALL of simple GROUP BYs
	DateIntCompare // DATE/INT comparison via internal encoding
	DateArith      // DATE +/- integer arithmetic
	VectorSubquery // (a, b) > ANY (SELECT x, y ...) vector comparison

	// Emulation class: mid-tier decomposition with state.
	Macro           // CREATE MACRO / EXEC
	RecursiveQuery  // WITH RECURSIVE via WorkTable/TempTable loop
	Merge           // MERGE -> UPDATE + INSERT decomposition
	HelpSession     // HELP SESSION informational command
	HelpTable       // HELP TABLE informational command
	DmlOnView       // DML against updatable views
	GlobalTempTable // GLOBAL TEMPORARY table semantics
	SetTable        // SET table duplicate-row elimination
	MultiStatement  // multi-statement request control flow

	numFeatures
)

// Count is the number of tracked features.
const Count = int(numFeatures)

// PerClass is the number of tracked features per class.
const PerClass = 9

// Info describes one tracked feature.
type Info struct {
	ID    ID
	Name  string
	Class Class
	// Component names the Hyper-Q component that implements the rewrite
	// (Table 2's "Component" column).
	Component string
	Desc      string
}

var infos = [Count]Info{
	{SelAbbrev, "SEL/DEL/INS/UPD", ClassTranslation, "Parser", "keyword shortcuts replaced by full keywords"},
	{BtEt, "BT/ET", ClassTranslation, "Parser", "transaction shortcuts mapped to BEGIN/COMMIT"},
	{CharsFunc, "CHARS", ClassTranslation, "Serializer", "string length builtin renamed per target"},
	{ZeroIfNull, "ZEROIFNULL", ClassTranslation, "Parser", "rewritten to COALESCE(x, 0)"},
	{NullIfZero, "NULLIFZERO", ClassTranslation, "Parser", "rewritten to NULLIF(x, 0)"},
	{IndexFunc, "INDEX", ClassTranslation, "Serializer", "substring search renamed to POSITION"},
	{AddMonths, "ADD_MONTHS", ClassTranslation, "Serializer", "month arithmetic renamed per target"},
	{ModOperator, "MOD operator", ClassTranslation, "Serializer", "infix MOD respelled per target"},
	{CollectStats, "COLLECT STATISTICS", ClassTranslation, "Gateway", "statement eliminated on self-tuning targets"},

	{Qualify, "QUALIFY", ClassTransformation, "Parser", "window predicate lowered to project + filter"},
	{TdRank, "RANK(expr DESC)", ClassTransformation, "Parser", "vendor rank form normalized to ANSI OVER()"},
	{ImplicitJoin, "Implicit joins", ClassTransformation, "Binder", "FROM clause expanded with referenced tables"},
	{NamedExprRef, "Chained projections", ClassTransformation, "Binder", "named expression references inlined"},
	{OrdinalGroupBy, "Ordinal GROUP BY", ClassTransformation, "Binder", "column positions replaced by expressions"},
	{GroupingSets, "OLAP grouping extensions", ClassTransformation, "Transformer", "ROLLUP/CUBE expanded to UNION ALL"},
	{DateIntCompare, "Date-Integer comparison", ClassTransformation, "Transformer", "date side expanded to integer encoding"},
	{DateArith, "Date arithmetics", ClassTransformation, "Transformer", "date +/- int rewritten per target"},
	{VectorSubquery, "Vector subquery", ClassTransformation, "Serializer", "quantified vector comparison to EXISTS"},

	{Macro, "Macros", ClassEmulation, "Binder", "macro body executed in the mid tier"},
	{RecursiveQuery, "Recursive query", ClassEmulation, "Gateway", "WorkTable/TempTable fixpoint loop"},
	{Merge, "MERGE", ClassEmulation, "Gateway", "decomposed into UPDATE + INSERT"},
	{HelpSession, "HELP SESSION", ClassEmulation, "Gateway", "answered from gateway session state"},
	{HelpTable, "HELP TABLE", ClassEmulation, "Gateway", "answered from gateway catalog"},
	{DmlOnView, "DML on views", ClassEmulation, "Binder", "DML re-expressed on the base table"},
	{GlobalTempTable, "Global temporary tables", ClassEmulation, "Gateway", "per-session instantiation of persistent definition"},
	{SetTable, "SET tables", ClassEmulation, "Gateway", "duplicate-row elimination enforced mid-tier"},
	{MultiStatement, "Multi-statement request", ClassEmulation, "Gateway", "statement sequence driven with gateway state"},
}

// Lookup returns the descriptor of a feature.
func Lookup(id ID) Info { return infos[id] }

// All returns all feature descriptors in declaration order.
func All() []Info { return append([]Info(nil), infos[:]...) }

// ByClass returns the descriptors of one class.
func ByClass(c Class) []Info {
	out := make([]Info, 0, PerClass)
	for _, f := range infos {
		if f.Class == c {
			out = append(out, f)
		}
	}
	return out
}

// Set is a bitset of tracked features.
type Set uint32

// Add inserts a feature.
func (s *Set) Add(id ID) { *s |= 1 << id }

// Has reports membership.
func (s Set) Has(id ID) bool { return s&(1<<id) != 0 }

// Union merges another set.
func (s *Set) Union(o Set) { *s |= o }

// Empty reports whether no features are present.
func (s Set) Empty() bool { return s == 0 }

// HasClass reports whether any feature of the class is present.
func (s Set) HasClass(c Class) bool {
	for _, f := range infos {
		if f.Class == c && s.Has(f.ID) {
			return true
		}
	}
	return false
}

// IDs returns the members in declaration order.
func (s Set) IDs() []ID {
	var out []ID
	for id := ID(0); id < numFeatures; id++ {
		if s.Has(id) {
			out = append(out, id)
		}
	}
	return out
}

// Recorder accumulates the features observed while rewriting a single
// request. A nil *Recorder is valid and records nothing, so the rewrite
// pipeline can run uninstrumented at zero cost.
type Recorder struct {
	set Set
}

// Record notes that the feature fired. Safe on a nil receiver.
func (r *Recorder) Record(id ID) {
	if r != nil {
		r.set.Add(id)
	}
}

// Set returns the accumulated feature set.
func (r *Recorder) Set() Set {
	if r == nil {
		return 0
	}
	return r.set
}

// Merge folds a previously recorded set into the recorder. The translation
// cache replays a statement's recorded features on a cache hit so workload
// statistics are independent of cache state. Safe on a nil receiver.
func (r *Recorder) Merge(s Set) {
	if r != nil {
		r.set.Union(s)
	}
}

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() {
	if r != nil {
		r.set = 0
	}
}

// Stats aggregates per-feature and per-class occurrence counts across a
// workload, reproducing the Figure 8 measurements.
type Stats struct {
	mu sync.Mutex
	// queries is the number of distinct queries observed.
	queries int
	// featureQueries counts distinct queries containing each feature.
	featureQueries [Count]int
	// classQueries counts distinct queries containing >= 1 feature of the
	// class (a query is counted at most once per class, §7.1).
	classQueries [3]int
	// present marks features seen at least once in the workload.
	present Set
}

// NewStats returns an empty aggregator.
func NewStats() *Stats { return &Stats{} }

// Observe folds one query's feature set into the statistics.
func (s *Stats) Observe(fs Set) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	s.present.Union(fs)
	for _, id := range fs.IDs() {
		s.featureQueries[id]++
	}
	for i, c := range Classes {
		if fs.HasClass(c) {
			s.classQueries[i]++
		}
	}
}

// Queries returns the number of observed queries.
func (s *Stats) Queries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Present returns the set of features seen at least once.
func (s *Stats) Present() Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.present
}

// ClassPresencePct returns, per class, the percentage of the 9 tracked
// features of that class that appear at least once (Figure 8a).
func (s *Stats) ClassPresencePct() map[Class]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Class]float64, 3)
	for _, c := range Classes {
		n := 0
		for _, f := range ByClass(c) {
			if s.present.Has(f.ID) {
				n++
			}
		}
		out[c] = 100 * float64(n) / float64(PerClass)
	}
	return out
}

// ClassQueryPct returns, per class, the percentage of queries containing at
// least one feature of the class (Figure 8b).
func (s *Stats) ClassQueryPct() map[Class]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Class]float64, 3)
	for i, c := range Classes {
		if s.queries == 0 {
			out[c] = 0
			continue
		}
		out[c] = 100 * float64(s.classQueries[i]) / float64(s.queries)
	}
	return out
}

// FeatureQueryCounts returns per-feature distinct-query counts, sorted by
// descending count then ID, for reporting.
func (s *Stats) FeatureQueryCounts() []struct {
	Info  Info
	Count int
} {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]struct {
		Info  Info
		Count int
	}, 0, Count)
	for id := 0; id < Count; id++ {
		out = append(out, struct {
			Info  Info
			Count int
		}{infos[id], s.featureQueries[id]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

func init() {
	// Sanity-check the registry shape the paper specifies: 27 features,
	// 9 per class, IDs in declaration order.
	if Count != 27 {
		panic(fmt.Sprintf("feature: registry has %d features, want 27", Count))
	}
	for _, c := range Classes {
		if n := len(ByClass(c)); n != PerClass {
			panic(fmt.Sprintf("feature: class %s has %d features, want %d", c, n, PerClass))
		}
	}
	for i, f := range infos {
		if int(f.ID) != i {
			panic(fmt.Sprintf("feature: descriptor %d out of order", i))
		}
	}
}
