package querylog

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hyperq/internal/trace"
)

func TestRedact(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			`SELECT * FROM T1 WHERE A = 5 AND B = 'secret'`,
			`SELECT * FROM T1 WHERE A = ? AND B = '?'`,
		},
		{
			`INSERT INTO SALES VALUES (100.00, DATE '2014-02-01', 1)`,
			`INSERT INTO SALES VALUES (?, DATE '?', ?)`,
		},
		{
			`SELECT 'it''s' FROM DUAL`,
			`SELECT '?' FROM DUAL`,
		},
		{
			`SELECT X FROM "T 2" WHERE Y < 1e5 AND Z > .5`,
			`SELECT X FROM "T 2" WHERE Y < ? AND Z > ?`,
		},
		{
			// Identifiers with digits survive; literals do not.
			`SELECT L_QUANTITY, C2 FROM LINEITEM WHERE L_QUANTITY < 24`,
			`SELECT L_QUANTITY, C2 FROM LINEITEM WHERE L_QUANTITY < ?`,
		},
	}
	for _, c := range cases {
		if got := Redact(c.in); got != c.want {
			t.Errorf("Redact(%q)\n got %q\nwant %q", c.in, got, c.want)
		}
	}
}

func mkTrace(sql string) *trace.Trace {
	tr := trace.New(1, 2, "appuser", sql)
	sp := tr.Start("parse")
	sp.End()
	tr.AddTranslated("SELECT * FROM T WHERE A = 5")
	tr.SetCache("miss")
	tr.SetFingerprint("00000000deadbeef")
	tr.SetStreamed(true)
	tr.Finish("ok", 0, "", "")
	return tr
}

func readLines(t *testing.T, path string) []Entry {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad log line %q: %v", sc.Text(), err)
		}
		out = append(out, e)
	}
	return out
}

func TestWriterAppendAndRedact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "query.log")
	w, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.LogTrace(mkTrace("SELECT * FROM T WHERE A = 5")); err != nil {
		t.Fatal(err)
	}
	if err := w.LogTrace(mkTrace("SELECT 'x'")); err != nil {
		t.Fatal(err)
	}
	lines := readLines(t, path)
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	e := lines[0]
	if e.SQL != "SELECT * FROM T WHERE A = ?" {
		t.Fatalf("frontend SQL not redacted: %q", e.SQL)
	}
	if len(e.Translated) != 1 || e.Translated[0] != "SELECT * FROM T WHERE A = ?" {
		t.Fatalf("translated SQL not redacted: %v", e.Translated)
	}
	if e.TraceID == "" || e.Outcome != "ok" || e.User != "appuser" || e.Cache != "miss" {
		t.Fatalf("entry fields missing: %+v", e)
	}
	if _, ok := e.StageNs["parse"]; !ok {
		t.Fatalf("stage timings missing: %v", e.StageNs)
	}
	// The /statements join keys: fingerprint, normalized cache tier, streamed.
	if e.Fingerprint != "00000000deadbeef" {
		t.Errorf("fingerprint = %q", e.Fingerprint)
	}
	if e.CacheTier != "miss" || !e.Streamed {
		t.Errorf("cacheTier/streamed = %q/%v", e.CacheTier, e.Streamed)
	}
}

// TestCacheTierNormalization pins the mapping from trace cache labels to the
// /statements tier vocabulary, so log analysis joins cleanly.
func TestCacheTierNormalization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"raw-hit", "exact-hit"},
		{"hit", "fingerprint-hit"},
		{"miss", "miss"},
		{"bypass", "bypass"},
		{"", ""},
	}
	for _, c := range cases {
		if got := cacheTier(c.in); got != c.want {
			t.Errorf("cacheTier(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriterRotationSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "query.log")
	w, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.LogTrace(mkTrace("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	// Simulate logrotate: move the live file aside.
	rotated := filepath.Join(dir, "query.log.1")
	if err := os.Rename(path, rotated); err != nil {
		t.Fatal(err)
	}
	if err := w.LogTrace(mkTrace("SELECT 2")); err != nil {
		t.Fatal(err)
	}
	if got := readLines(t, rotated); len(got) != 1 {
		t.Fatalf("rotated file lines = %d, want 1", len(got))
	}
	fresh := readLines(t, path)
	if len(fresh) != 1 || fresh[0].SQL != "SELECT 2" {
		t.Fatalf("fresh file wrong: %+v", fresh)
	}
	// Unredacted writer keeps literals.
	if fresh[0].SQL != "SELECT 2" {
		t.Fatalf("unexpected redaction: %q", fresh[0].SQL)
	}
	// The join fields survive rotation on both sides of the rename.
	for _, e := range []Entry{readLines(t, rotated)[0], fresh[0]} {
		if e.Fingerprint != "00000000deadbeef" || e.CacheTier != "miss" || !e.Streamed {
			t.Fatalf("join fields lost across rotation: %+v", e)
		}
	}
}

func TestNilWriter(t *testing.T) {
	var w *Writer
	if err := w.LogTrace(mkTrace("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Redacting() {
		t.Fatal("nil writer cannot redact")
	}
}
