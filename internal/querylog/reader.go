package querylog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ReadFiles parses one or more query-log files, given oldest rotation first,
// and returns their entries in file order. A torn final line — a write cut
// short by a crash or an in-flight rotation — is tolerated and skipped; a
// malformed line anywhere else marks the log corrupt and fails the read.
func ReadFiles(paths ...string) ([]Entry, error) {
	var out []Entry
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		lines := bytes.Split(data, []byte{'\n'})
		for i, ln := range lines {
			ln = bytes.TrimSpace(ln)
			if len(ln) == 0 {
				continue
			}
			var e Entry
			if err := json.Unmarshal(ln, &e); err != nil {
				if i == len(lines)-1 {
					// No trailing newline: the line never finished.
					continue
				}
				return nil, fmt.Errorf("%s:%d: %w", p, i+1, err)
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// Stream is one session's captured statement sequence, stitched across
// rotated files and ordered by sequence number.
type Stream struct {
	Session uint64
	User    string
	Entries []Entry
	// Gaps counts missing sequence numbers within the stream — statements
	// lost to torn lines or discarded rotations. A replay can proceed past
	// gaps but the report should disclose them.
	Gaps int
}

// Streams groups entries by session id and orders each session's statements
// by capture sequence number, stitching streams that a rotation split across
// files. Entries without sequence numbers (plain logging mode) keep their
// file order within the session. Streams are returned in ascending session
// order.
func Streams(entries []Entry) []Stream {
	byID := make(map[uint64]*Stream)
	for _, e := range entries {
		s := byID[e.Session]
		if s == nil {
			s = &Stream{Session: e.Session, User: e.User}
			byID[e.Session] = s
		}
		if s.User == "" {
			s.User = e.User
		}
		s.Entries = append(s.Entries, e)
	}
	out := make([]Stream, 0, len(byID))
	for _, s := range byID {
		sort.SliceStable(s.Entries, func(i, j int) bool {
			return s.Entries[i].Seq < s.Entries[j].Seq
		})
		for i := range s.Entries {
			if i == 0 {
				if q := s.Entries[0].Seq; q > 1 {
					s.Gaps += int(q - 1)
				}
				continue
			}
			a, b := s.Entries[i-1].Seq, s.Entries[i].Seq
			if a != 0 && b > a+1 {
				s.Gaps += int(b - a - 1)
			}
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return out
}
