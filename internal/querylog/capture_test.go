package querylog

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"hyperq/internal/trace"
)

func mkSessionTrace(session uint64, sql string, start time.Time) *trace.Trace {
	tr := trace.New(1, session, "appuser", sql)
	tr.StartedAt = start
	tr.Finish("ok", 0, "", "")
	return tr
}

func TestCaptureSeqDeltaAndSQL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "query.log")
	w, err := OpenOptions(path, Options{Redact: true, Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.Capturing() || !w.Redacting() {
		t.Fatal("options not reflected")
	}
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	// Two interleaved sessions; each keeps its own sequence and deltas.
	logs := []struct {
		session uint64
		sql     string
		at      time.Time
	}{
		{10, "SELECT * FROM T WHERE A = 5", base},
		{20, "SELECT 'x'", base.Add(1 * time.Millisecond)},
		{10, "SELECT * FROM T WHERE A = 6", base.Add(40 * time.Millisecond)},
		{10, "SELECT * FROM T WHERE A = 7", base.Add(55 * time.Millisecond)},
	}
	for _, l := range logs {
		if err := w.LogTrace(mkSessionTrace(l.session, l.sql, l.at)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := ReadFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	// Session 10's stream: seq 1..3, deltas 0 / 40ms / 15ms.
	streams := Streams(entries)
	if len(streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(streams))
	}
	s10 := streams[0]
	if s10.Session != 10 || len(s10.Entries) != 3 || s10.Gaps != 0 {
		t.Fatalf("stream 10 wrong: %+v", s10)
	}
	wantDelta := []int64{0, 40e6, 15e6}
	for i, e := range s10.Entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
		if e.DeltaNs != wantDelta[i] {
			t.Fatalf("delta[%d] = %d, want %d", i, e.DeltaNs, wantDelta[i])
		}
	}
	// Redaction scrubbed the logged SQL but capture kept the literals.
	e := s10.Entries[0]
	if e.SQL != "SELECT * FROM T WHERE A = ?" {
		t.Fatalf("logged SQL not redacted: %q", e.SQL)
	}
	if e.CaptureSQL != "SELECT * FROM T WHERE A = 5" {
		t.Fatalf("capture SQL lost literals: %q", e.CaptureSQL)
	}
	if e.ReplaySQL() != e.CaptureSQL {
		t.Fatalf("ReplaySQL = %q", e.ReplaySQL())
	}
}

func TestCaptureWithoutRedactionOmitsDuplicateSQL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "query.log")
	w, err := OpenOptions(path, Options{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.LogTrace(mkSessionTrace(1, "SELECT 42", time.Now())); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	e := entries[0]
	if e.CaptureSQL != "" {
		t.Fatalf("capture_sql duplicated unredacted SQL: %q", e.CaptureSQL)
	}
	if e.ReplaySQL() != "SELECT 42" {
		t.Fatalf("ReplaySQL = %q", e.ReplaySQL())
	}
}

// TestReadFilesStitchesRotation pins the rotation edge the replay reader must
// survive: a session's stream split across a rotated file and the live file
// comes back as one contiguous sequence.
func TestReadFilesStitchesRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "query.log")
	w, err := OpenOptions(path, Options{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	base := time.Date(2026, 8, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if err := w.LogTrace(mkSessionTrace(7, "SELECT 1", base.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	rotated := filepath.Join(dir, "query.log.1")
	if err := os.Rename(path, rotated); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if err := w.LogTrace(mkSessionTrace(7, "SELECT 1", base.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := ReadFiles(rotated, path)
	if err != nil {
		t.Fatal(err)
	}
	streams := Streams(entries)
	if len(streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(streams))
	}
	s := streams[0]
	if len(s.Entries) != 5 || s.Gaps != 0 {
		t.Fatalf("stitched stream wrong: %d entries, %d gaps", len(s.Entries), s.Gaps)
	}
	for i, e := range s.Entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d after stitch", i, e.Seq)
		}
	}
}

func TestReadFilesToleratesTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "a.log")
	if err := os.WriteFile(good, []byte(`{"session":1,"seq":1,"sql":"SELECT 1","time":"2026-08-01T00:00:00Z","trace_id":"t","user":"u","duration_ns":1,"outcome":"ok","backend_requests":1}`+"\n"+`{"session":1,"seq":2,"sql":"SEL`), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadFiles(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Seq != 1 {
		t.Fatalf("torn trailing line not skipped: %+v", entries)
	}
	// A malformed line mid-file is corruption, not a torn write.
	bad := filepath.Join(dir, "b.log")
	if err := os.WriteFile(bad, []byte("garbage\n{\"session\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFiles(bad); err == nil {
		t.Fatal("mid-file corruption not reported")
	}
}

func TestStreamsCountSequenceGaps(t *testing.T) {
	entries := []Entry{
		{Session: 3, Seq: 2, SQL: "B"}, // seq 1 lost
		{Session: 3, Seq: 5, SQL: "E"}, // seq 4 lost
		{Session: 3, Seq: 3, SQL: "C"},
	}
	streams := Streams(entries)
	if len(streams) != 1 {
		t.Fatalf("streams = %d", len(streams))
	}
	s := streams[0]
	if s.Gaps != 2 {
		t.Fatalf("gaps = %d, want 2 (one before seq 2, one before seq 5)", s.Gaps)
	}
	if s.Entries[0].SQL != "B" || s.Entries[1].SQL != "C" || s.Entries[2].SQL != "E" {
		t.Fatalf("stream not seq-ordered: %+v", s.Entries)
	}
}
