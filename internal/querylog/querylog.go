// Package querylog writes the gateway's statement log: one JSON line per
// request, carrying the trace id, the frontend SQL, the translated SQL-B
// text, per-stage timings, and the outcome. The writer appends with O_APPEND
// (atomic for line-sized writes on POSIX) and is rotation-safe: before each
// write it re-stats the configured path and transparently reopens when an
// external rotation moved or truncated the file away. With redaction on,
// literal values in the SQL text are replaced lexically with '?' so lifted
// customer data never reaches the log.
package querylog

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"hyperq/internal/fingerprint"
	"hyperq/internal/trace"
)

// Entry is one logged statement.
type Entry struct {
	Time            time.Time        `json:"time"`
	TraceID         string           `json:"trace_id"`
	Session         uint64           `json:"session"`
	User            string           `json:"user"`
	SQL             string           `json:"sql"`
	Translated      []string         `json:"translated,omitempty"`
	StageNs         map[string]int64 `json:"stage_ns,omitempty"`
	DurationNs      int64            `json:"duration_ns"`
	Outcome         string           `json:"outcome"`
	ErrCode         int              `json:"error_code,omitempty"`
	ErrClass        string           `json:"error_class,omitempty"`
	Cache           string           `json:"cache,omitempty"`
	BackendRequests int              `json:"backend_requests"`
	// Fingerprint is the statement-shape id joining the entry to the
	// /statements workload registry; CacheTier the registry's normalized
	// cache-outcome name ("exact-hit", "fingerprint-hit", "miss", "bypass");
	// Streamed marks results delivered through the streaming pipeline.
	Fingerprint string `json:"fingerprint,omitempty"`
	CacheTier   string `json:"cache_tier,omitempty"`
	Streamed    bool   `json:"streamed,omitempty"`
}

// cacheTier maps a trace's cache outcome to the workload registry's tier
// vocabulary (the trace keeps its historical names for compatibility).
func cacheTier(cache string) string {
	switch cache {
	case "raw-hit":
		return "exact-hit"
	case "hit":
		return "fingerprint-hit"
	default:
		return cache
	}
}

// Writer is a rotation-safe JSON-lines appender. Safe for concurrent use.
type Writer struct {
	mu     sync.Mutex
	path   string
	redact bool
	f      *os.File
	fi     os.FileInfo
}

// Open creates (or appends to) the log at path.
func Open(path string, redact bool) (*Writer, error) {
	w := &Writer{path: path, redact: redact}
	if err := w.reopen(); err != nil {
		return nil, err
	}
	return w, nil
}

// Redacting reports whether literal redaction is on.
func (w *Writer) Redacting() bool { return w != nil && w.redact }

func (w *Writer) reopen() error {
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return err
	}
	w.f, w.fi = f, fi
	return nil
}

// LogTrace appends the finished trace as one JSON line. Errors are returned
// for callers that care (the gateway drops them: the data path must not fail
// because the log disk did). Safe on a nil writer.
func (w *Writer) LogTrace(t *trace.Trace) error {
	if w == nil || t == nil {
		return nil
	}
	e := Entry{
		Time:            t.StartedAt,
		TraceID:         t.ID,
		Session:         t.Session,
		User:            t.User,
		SQL:             t.SQL,
		Translated:      t.Translated,
		StageNs:         t.StageNs,
		DurationNs:      t.DurNs,
		Outcome:         t.Outcome,
		ErrCode:         t.ErrCode,
		ErrClass:        t.ErrClass,
		Cache:           t.Cache,
		BackendRequests: t.BackendRequests,
		Fingerprint:     t.Fingerprint,
		CacheTier:       cacheTier(t.Cache),
		Streamed:        t.Streamed,
	}
	if w.redact {
		e.SQL = Redact(e.SQL)
		if len(e.Translated) > 0 {
			red := make([]string, len(e.Translated))
			for i, s := range e.Translated {
				red[i] = Redact(s)
			}
			e.Translated = red
		}
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	// Rotation check: if the path no longer names the open file (logrotate
	// moved it, or someone deleted it), reopen before writing so new lines
	// land in the fresh file instead of the rotated one.
	if st, err := os.Stat(w.path); err != nil || !os.SameFile(st, w.fi) {
		if err := w.reopen(); err != nil {
			return err
		}
	}
	_, err = w.f.Write(line)
	return err
}

// Close releases the file.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Redact replaces literal values in SQL text with '?' lexically: quoted
// strings (with '' escaping) and numeric literals, including decimals and
// exponents. Identifiers — even ones containing digits, like T1 or
// L_QUANTITY — and quoted identifiers are left intact, as are keywords and
// operators, so the statement shape stays readable. The output is exactly
// the statement's fingerprint template, so a redacted log line joins against
// the /statements registry by text as well as by id.
func Redact(sql string) string {
	return fingerprint.TemplateText(sql)
}
