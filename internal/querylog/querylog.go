// Package querylog writes the gateway's statement log: one JSON line per
// request, carrying the trace id, the frontend SQL, the translated SQL-B
// text, per-stage timings, and the outcome. The writer appends with O_APPEND
// (atomic for line-sized writes on POSIX) and is rotation-safe: before each
// write it re-stats the configured path and transparently reopens when an
// external rotation moved or truncated the file away. With redaction on,
// literal values in the SQL text are replaced lexically with '?' so lifted
// customer data never reaches the log.
//
// Capture mode (opt-in) additionally records what a shadow-migration replay
// needs to re-execute the workload faithfully: a monotonic per-session
// sequence number, the wall-clock delta to the session's previous statement,
// and — when redaction is on — the pre-redaction statement text. ReadFiles
// and Streams reconstruct per-session statement streams from one or more
// rotated capture files.
package querylog

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"hyperq/internal/fingerprint"
	"hyperq/internal/trace"
)

// Entry is one logged statement.
type Entry struct {
	Time            time.Time        `json:"time"`
	TraceID         string           `json:"trace_id"`
	Session         uint64           `json:"session"`
	User            string           `json:"user"`
	SQL             string           `json:"sql"`
	Translated      []string         `json:"translated,omitempty"`
	StageNs         map[string]int64 `json:"stage_ns,omitempty"`
	DurationNs      int64            `json:"duration_ns"`
	Outcome         string           `json:"outcome"`
	ErrCode         int              `json:"error_code,omitempty"`
	ErrClass        string           `json:"error_class,omitempty"`
	Cache           string           `json:"cache,omitempty"`
	BackendRequests int              `json:"backend_requests"`
	// Fingerprint is the statement-shape id joining the entry to the
	// /statements workload registry; CacheTier the registry's normalized
	// cache-outcome name ("exact-hit", "fingerprint-hit", "miss", "bypass");
	// Streamed marks results delivered through the streaming pipeline.
	Fingerprint string `json:"fingerprint,omitempty"`
	CacheTier   string `json:"cache_tier,omitempty"`
	Streamed    bool   `json:"streamed,omitempty"`
	// Capture-mode fields. Seq is the 1-based per-session statement sequence
	// number; DeltaNs the start-to-start wall-clock distance from the
	// session's previous statement (0 for the first); CaptureSQL the
	// pre-redaction statement text, recorded only when redaction would
	// otherwise erase the literals a replay needs.
	Seq        uint64 `json:"seq,omitempty"`
	DeltaNs    int64  `json:"delta_ns,omitempty"`
	CaptureSQL string `json:"capture_sql,omitempty"`
}

// ReplaySQL returns the statement text a replay should re-execute: the
// pre-redaction capture text when present, the logged SQL otherwise.
func (e *Entry) ReplaySQL() string {
	if e.CaptureSQL != "" {
		return e.CaptureSQL
	}
	return e.SQL
}

// cacheTier maps a trace's cache outcome to the workload registry's tier
// vocabulary (the trace keeps its historical names for compatibility).
func cacheTier(cache string) string {
	switch cache {
	case "raw-hit":
		return "exact-hit"
	case "hit":
		return "fingerprint-hit"
	default:
		return cache
	}
}

// Writer is a rotation-safe JSON-lines appender. Safe for concurrent use.
type Writer struct {
	mu      sync.Mutex
	path    string
	redact  bool
	capture bool
	f       *os.File
	fi      os.FileInfo

	// capMu guards the per-session capture state. A session's statements
	// are logged in order (a session serves one request at a time), so the
	// sequence numbers and deltas here reconstruct each stream faithfully.
	capMu    sync.Mutex
	sessions map[uint64]*captureState
}

type captureState struct {
	seq       uint64
	lastStart time.Time
}

// Options configures a Writer.
type Options struct {
	// Redact replaces literal values with '?' in logged SQL.
	Redact bool
	// Capture records replay-grade detail on every entry: per-session
	// sequence numbers, inter-statement wall-clock deltas, and (when Redact
	// is also on) the pre-redaction statement text in capture_sql. Capture
	// logs contain lifted literal values; the flag is opt-in.
	Capture bool
}

// Open creates (or appends to) the log at path.
func Open(path string, redact bool) (*Writer, error) {
	return OpenOptions(path, Options{Redact: redact})
}

// OpenOptions creates (or appends to) the log at path with full options.
func OpenOptions(path string, o Options) (*Writer, error) {
	w := &Writer{path: path, redact: o.Redact, capture: o.Capture}
	if o.Capture {
		w.sessions = make(map[uint64]*captureState)
	}
	if err := w.reopen(); err != nil {
		return nil, err
	}
	return w, nil
}

// Redacting reports whether literal redaction is on.
func (w *Writer) Redacting() bool { return w != nil && w.redact }

// Capturing reports whether replay capture is on.
func (w *Writer) Capturing() bool { return w != nil && w.capture }

func (w *Writer) reopen() error {
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return err
	}
	w.f, w.fi = f, fi
	return nil
}

// LogTrace appends the finished trace as one JSON line. Errors are returned
// for callers that care (the gateway drops them: the data path must not fail
// because the log disk did). Safe on a nil writer.
func (w *Writer) LogTrace(t *trace.Trace) error {
	if w == nil || t == nil {
		return nil
	}
	e := Entry{
		Time:            t.StartedAt,
		TraceID:         t.ID,
		Session:         t.Session,
		User:            t.User,
		SQL:             t.SQL,
		Translated:      t.Translated,
		StageNs:         t.StageNs,
		DurationNs:      t.DurNs,
		Outcome:         t.Outcome,
		ErrCode:         t.ErrCode,
		ErrClass:        t.ErrClass,
		Cache:           t.Cache,
		BackendRequests: t.BackendRequests,
		Fingerprint:     t.Fingerprint,
		CacheTier:       cacheTier(t.Cache),
		Streamed:        t.Streamed,
	}
	if w.capture {
		w.capMu.Lock()
		st := w.sessions[t.Session]
		if st == nil {
			st = &captureState{}
			w.sessions[t.Session] = st
		}
		st.seq++
		e.Seq = st.seq
		if st.seq > 1 {
			e.DeltaNs = t.StartedAt.Sub(st.lastStart).Nanoseconds()
			if e.DeltaNs < 0 {
				e.DeltaNs = 0
			}
		}
		st.lastStart = t.StartedAt
		w.capMu.Unlock()
		if w.redact {
			e.CaptureSQL = t.SQL
		}
	}
	if w.redact {
		e.SQL = Redact(e.SQL)
		if len(e.Translated) > 0 {
			red := make([]string, len(e.Translated))
			for i, s := range e.Translated {
				red[i] = Redact(s)
			}
			e.Translated = red
		}
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	// Rotation check: if the path no longer names the open file (logrotate
	// moved it, or someone deleted it), reopen before writing so new lines
	// land in the fresh file instead of the rotated one.
	if st, err := os.Stat(w.path); err != nil || !os.SameFile(st, w.fi) {
		if err := w.reopen(); err != nil {
			return err
		}
	}
	_, err = w.f.Write(line)
	return err
}

// Close releases the file.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Redact replaces literal values in SQL text with '?' lexically: quoted
// strings (with '' escaping) and numeric literals, including decimals and
// exponents. Identifiers — even ones containing digits, like T1 or
// L_QUANTITY — and quoted identifiers are left intact, as are keywords and
// operators, so the statement shape stays readable. The output is exactly
// the statement's fingerprint template, so a redacted log line joins against
// the /statements registry by text as well as by id.
func Redact(sql string) string {
	return fingerprint.TemplateText(sql)
}
