package fingerprint

import "testing"

// fnv1a64 is the reference implementation the streaming hash must match.
func fnv1a64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func TestTemplateCollapsesLiteralVariants(t *testing.T) {
	groups := [][]string{
		{
			"SELECT a FROM t WHERE id = 42",
			"SELECT a FROM t WHERE id = 99999",
			"SELECT a FROM t WHERE id = 7",
		},
		{
			"SELECT name FROM users WHERE city = 'Oakland'",
			"SELECT name FROM users WHERE city = 'St. Paul'",
			"SELECT name FROM users WHERE city = 'O''Brien'", // escaped quote
		},
		{
			"UPDATE t SET x = 1.5 WHERE y < 2.25e-3",
			"UPDATE t SET x = 100.0 WHERE y < 9E+9",
		},
	}
	for _, g := range groups {
		want := TemplateHash(g[0])
		wantText := TemplateText(g[0])
		for _, sql := range g[1:] {
			if got := TemplateHash(sql); got != want {
				t.Errorf("TemplateHash(%q) = %x, want %x (same shape as %q)", sql, got, want, g[0])
			}
			if got := TemplateText(sql); got != wantText {
				t.Errorf("TemplateText(%q) = %q, want %q", sql, got, wantText)
			}
		}
	}
	// Different statement shapes must not collapse.
	if TemplateHash("SELECT a FROM t") == TemplateHash("SELECT b FROM t") {
		t.Error("distinct identifiers collapsed to one hash")
	}
}

func TestTemplateTextRedaction(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT a FROM t WHERE id = 42", "SELECT a FROM t WHERE id = ?"},
		{"SELECT 'it''s' FROM dual", "SELECT '?' FROM dual"},
		// Identifiers with digits stay intact; only standalone numbers redact.
		{"SELECT L_QUANTITY FROM T1 WHERE c2 > 10", "SELECT L_QUANTITY FROM T1 WHERE c2 > ?"},
		// Quoted identifiers copy verbatim, digits and all.
		{`SELECT "Col 42" FROM "T 1"`, `SELECT "Col 42" FROM "T 1"`},
		{"WHERE x = .5 AND y = 1.5e-3", "WHERE x = ? AND y = ?"},
		// Unparseable text still templates — the lexical form is total.
		{"FROB 123 GRONK 'x'", "FROB ? GRONK '?'"},
	}
	for _, tc := range cases {
		if got := TemplateText(tc.in); got != tc.want {
			t.Errorf("TemplateText(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestTemplateHashMatchesTemplateText pins the documented contract: the
// streaming hash is exactly the FNV-1a of the materialized template.
func TestTemplateHashMatchesTemplateText(t *testing.T) {
	inputs := []string{
		"",
		"SELECT a FROM t WHERE id = 42 AND name = 'bob'",
		"SEL * FROM T1 WHERE L_SHIPDATE <= DATE '1998-12-01' - INTERVAL '90' DAY",
		`INSERT INTO "Weird ""Table""" VALUES (1, 'a', 2.5e10)`,
		"BT; UPDATE t SET x = x + 1 WHERE k = 9; ET;",
	}
	for _, sql := range inputs {
		if got, want := TemplateHash(sql), fnv1a64(TemplateText(sql)); got != want {
			t.Errorf("TemplateHash(%q) = %x, want fnv(TemplateText) = %x", sql, got, want)
		}
	}
}

func TestShortID(t *testing.T) {
	cases := []struct {
		h    uint64
		want string
	}{
		{0, "0000000000000000"},
		{0xdeadbeef, "00000000deadbeef"},
		{0x0123456789abcdef, "0123456789abcdef"},
		{^uint64(0), "ffffffffffffffff"},
	}
	for _, tc := range cases {
		if got := ShortID(tc.h); got != tc.want {
			t.Errorf("ShortID(%#x) = %q, want %q", tc.h, got, tc.want)
		}
	}
}

// TemplateHash runs on the request hot path; it must not allocate.
func TestTemplateHashAllocationFree(t *testing.T) {
	const sql = "SELECT a, b, c FROM big_table WHERE id = 42 AND name = 'x' AND v > 1.5e3"
	if avg := testing.AllocsPerRun(200, func() {
		TemplateHash(sql)
	}); avg != 0 {
		t.Fatalf("TemplateHash allocates %.1f per call, want 0", avg)
	}
}
