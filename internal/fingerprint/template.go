package fingerprint

import (
	"strconv"
	"strings"

	"hyperq/internal/types"
)

// Marker returns the placeholder the serializer emits, in lift mode, for the
// literal with the given 0-based vector ordinal. NUL bytes cannot occur in
// serialized SQL, so the markers never collide with statement text.
func Marker(idx int) string {
	return "\x00" + strconv.Itoa(idx) + "\x00"
}

// Template is a serialized statement with literal slots: the statement text
// split at markers, ready to be re-instantiated with a new literal vector.
type Template struct {
	segs  []string // len(slots)+1 text segments
	slots []int    // literal ordinal spliced between segs[i] and segs[i+1]
	fixed int      // total byte length of segs
}

// ParseTemplate splits marked SQL text into a template over n literals.
// complete reports whether every ordinal 0..n-1 appears at least once; when
// it does not, translation consumed a literal's value (constant folding,
// ordinal binding, ...) and the cache entry must degrade to exact matching.
func ParseTemplate(marked string, n int) (t Template, complete bool) {
	seen := make([]bool, n)
	rest := marked
	for {
		i := strings.IndexByte(rest, 0)
		if i < 0 {
			break
		}
		j := strings.IndexByte(rest[i+1:], 0)
		if j < 0 {
			// Unterminated marker: treat the NUL as text (cannot happen with
			// serializer-produced input).
			break
		}
		ord, err := strconv.Atoi(rest[i+1 : i+1+j])
		if err != nil || ord < 0 || ord >= n {
			return Template{}, false
		}
		t.segs = append(t.segs, rest[:i])
		t.slots = append(t.slots, ord)
		t.fixed += i
		seen[ord] = true
		rest = rest[i+1+j+1:]
	}
	t.segs = append(t.segs, rest)
	t.fixed += len(rest)
	complete = true
	for _, s := range seen {
		complete = complete && s
	}
	return t, complete
}

// Valid reports whether the template was parsed successfully (Instantiate
// must not be called on an invalid template).
func (t *Template) Valid() bool { return len(t.segs) > 0 }

// Instantiate splices serialized literals into the template slots in a
// single pass: datums append their SQL form directly into the output buffer
// (no per-literal string, no intermediate marked text).
func (t *Template) Instantiate(lits []types.Datum) string {
	if len(t.slots) == 0 {
		return t.segs[0]
	}
	b := make([]byte, 0, t.fixed+16*len(t.slots))
	for i, slot := range t.slots {
		b = append(b, t.segs[i]...)
		b = lits[slot].AppendSQLLiteral(b)
	}
	b = append(b, t.segs[len(t.segs)-1]...)
	return string(b)
}

// Size approximates the retained byte size of the template for cache
// accounting.
func (t *Template) Size() int {
	return t.fixed + 24*len(t.slots) + 48
}

// LitSig returns a comparable signature of a literal vector's values, used by
// exact-match cache entries where the translated text depends on the values.
func LitSig(lits []types.Datum) string {
	if len(lits) == 0 {
		return ""
	}
	var b []byte
	for _, d := range lits {
		b = d.AppendSQLLiteral(b)
		b = append(b, 0)
	}
	return string(b)
}

// LitSigEqual reports whether LitSig(lits) would equal sig, without building
// the signature: each literal renders into a stack buffer and compares
// against its segment of sig in place.
func LitSigEqual(sig string, lits []types.Datum) bool {
	if len(lits) == 0 {
		return sig == ""
	}
	var buf [48]byte
	rest := sig
	for _, d := range lits {
		b := d.AppendSQLLiteral(buf[:0])
		// string([]byte) in a comparison does not allocate.
		if len(rest) <= len(b) || rest[:len(b)] != string(b) || rest[len(b)] != 0 {
			return false
		}
		rest = rest[len(b)+1:]
	}
	return len(rest) == 0
}
