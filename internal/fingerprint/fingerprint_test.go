package fingerprint

import (
	"strings"
	"testing"

	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/types"
)

func parseOne(t *testing.T, sql string) sqlast.Statement {
	t.Helper()
	stmts, err := parser.Parse(sql, parser.Teradata, nil)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("parse %q: %d statements", sql, len(stmts))
	}
	return stmts[0]
}

func TestSameShapeSharesKey(t *testing.T) {
	a := Statement(parseOne(t, "INSERT INTO T VALUES (1, 'x')"))
	b := Statement(parseOne(t, "insert into t values (2, 'y')"))
	if !a.Cacheable || !b.Cacheable {
		t.Fatalf("not cacheable: %+v %+v", a, b)
	}
	if a.Key != b.Key {
		t.Fatalf("keys differ:\n%q\n%q", a.Key, b.Key)
	}
	if len(a.Literals) != 2 || len(b.Literals) != 2 {
		t.Fatalf("literals = %v / %v", a.Literals, b.Literals)
	}
	if a.Literals[0].I != 1 || b.Literals[0].I != 2 {
		t.Fatalf("literal values = %v / %v", a.Literals, b.Literals)
	}
}

func TestLiteralKindsSeparateKeys(t *testing.T) {
	a := Statement(parseOne(t, "SELECT A FROM T WHERE B = 1"))
	b := Statement(parseOne(t, "SELECT A FROM T WHERE B = 'one'"))
	if a.Key == b.Key {
		t.Fatalf("int and string literal share key %q", a.Key)
	}
}

func TestOrdinalGroupByNotLifted(t *testing.T) {
	r := Statement(parseOne(t, "SELECT STORE, SUM(AMOUNT) FROM SALES GROUP BY 1 ORDER BY 2"))
	if !r.Cacheable {
		t.Fatalf("not cacheable: %s", r.Reason)
	}
	if len(r.Literals) != 0 {
		t.Fatalf("ordinals were lifted: %v", r.Literals)
	}
	r2 := Statement(parseOne(t, "SELECT STORE, SUM(AMOUNT) FROM SALES GROUP BY 1 ORDER BY 1"))
	if r.Key == r2.Key {
		t.Fatal("ORDER BY 2 and ORDER BY 1 share a key")
	}
}

func TestTopClauseNotLifted(t *testing.T) {
	a := Statement(parseOne(t, "SELECT TOP 3 A FROM T"))
	b := Statement(parseOne(t, "SELECT TOP 5 A FROM T"))
	if a.Key == b.Key {
		t.Fatal("TOP n folded into shared key")
	}
}

func TestParamUncacheable(t *testing.T) {
	r := Statement(parseOne(t, "SELECT A FROM T WHERE B = :p"))
	if r.Cacheable {
		t.Fatal("parameterized statement marked cacheable")
	}
}

func TestDDLUncacheable(t *testing.T) {
	r := Statement(parseOne(t, "CREATE TABLE T (A INT)"))
	if r.Cacheable {
		t.Fatal("DDL marked cacheable")
	}
}

func TestTablesCollected(t *testing.T) {
	r := Statement(parseOne(t, "SELECT * FROM SALES S JOIN EMP E ON S.STORE = E.EMPNO"))
	want := map[string]bool{"SALES": true, "EMP": true}
	for _, n := range r.Tables {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing tables %v in %v", want, r.Tables)
	}
}

func TestLitOrdinalsAssigned(t *testing.T) {
	stmt := parseOne(t, "SELECT A FROM T WHERE B = 7 AND C = 'x'")
	r := Statement(stmt)
	if len(r.Literals) != 2 {
		t.Fatalf("literals = %v", r.Literals)
	}
	var ords []int
	sqlast.WalkExpr(stmt.(*sqlast.SelectStmt).Query.Body.(*sqlast.SelectCore).Where, func(e sqlast.Expr) bool {
		if c, ok := e.(*sqlast.Const); ok {
			ords = append(ords, c.Lit)
		}
		return true
	})
	if len(ords) != 2 || ords[0] != 1 || ords[1] != 2 {
		t.Fatalf("assigned ordinals = %v", ords)
	}
}

func TestTemplateRoundTrip(t *testing.T) {
	marked := "SELECT a FROM t WHERE b = " + Marker(0) + " AND c = " + Marker(1)
	tpl, complete := ParseTemplate(marked, 2)
	if !complete || !tpl.Valid() {
		t.Fatalf("complete=%v valid=%v", complete, tpl.Valid())
	}
	got := tpl.Instantiate([]types.Datum{types.NewInt(42), types.NewString("x")})
	want := "SELECT a FROM t WHERE b = 42 AND c = 'x'"
	if got != want {
		t.Fatalf("instantiated %q", got)
	}
	if strings.ContainsRune(got, 0) {
		t.Fatal("NUL leaked into output")
	}
}

func TestTemplateIncomplete(t *testing.T) {
	// Ordinal 1 never appears: translation consumed its value.
	marked := "SELECT a FROM t WHERE b = " + Marker(0)
	_, complete := ParseTemplate(marked, 2)
	if complete {
		t.Fatal("missing ordinal reported complete")
	}
}

func TestTemplateRepeatedSlot(t *testing.T) {
	marked := Marker(0) + " + " + Marker(0)
	tpl, complete := ParseTemplate(marked, 1)
	if !complete {
		t.Fatal("repeated ordinal reported incomplete")
	}
	if got := tpl.Instantiate([]types.Datum{types.NewInt(3)}); got != "3 + 3" {
		t.Fatalf("instantiated %q", got)
	}
}

func TestLitSigDistinguishesValues(t *testing.T) {
	a := LitSig([]types.Datum{types.NewInt(1), types.NewInt(2)})
	b := LitSig([]types.Datum{types.NewInt(1), types.NewInt(3)})
	if a == b {
		t.Fatal("signatures collide")
	}
}
