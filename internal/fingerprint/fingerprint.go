// Package fingerprint canonicalizes parsed statements for the gateway's
// translation cache. A fingerprint is a dialect-independent rendering of the
// statement shape: identifiers are uppercased, whitespace is immaterial (the
// encoding works off the AST, not the text), and literal constants are lifted
// out into a parameter vector so `INSERT INTO t VALUES (1)` and `VALUES (2)`
// share one cache entry whose translated SQL-B is re-instantiated by splicing
// serialized literals back in.
//
// Lifting is deliberately conservative. A literal is only lifted where the
// translation pipeline treats it as an opaque value that flows verbatim into
// the output SQL. Positions where the binder branches on the *value* keep the
// value in the fingerprint instead:
//
//   - bare numeric constants in GROUP BY / ORDER BY lists (ordinal column
//     positions, Table 2's "ordinal group by"),
//   - INTERVAL literals (folded into day counts or microsecond ticks during
//     binding),
//   - the unit argument of DATEADD (emitted as a bare keyword),
//   - NULL and boolean literals (candidates for value-dependent
//     simplification).
//
// Statements containing :name/? parameters, and statement kinds outside
// SELECT/INSERT/UPDATE/DELETE, are reported as uncacheable. As a final
// backstop, the cache layer verifies after serialization that every lifted
// literal actually survived to the output text (see ParseTemplate); entries
// where translation consumed a literal degrade to exact-match caching.
package fingerprint

import (
	"strconv"
	"strings"

	"hyperq/internal/sqlast"
	"hyperq/internal/types"
)

// Result is the outcome of fingerprinting one statement.
type Result struct {
	// Key is the canonical statement encoding with lifted literals replaced
	// by ordinal placeholders (tagged with their type so literals of
	// different kinds never share an entry).
	Key string
	// Literals is the lifted literal vector, in placeholder order.
	Literals []types.Datum
	// Tables lists every table name referenced at the source level
	// (uppercased, including CTE references — an over-approximation used by
	// the session-catalog bypass check).
	Tables []string
	// Cacheable reports whether the statement is eligible for the
	// translation cache at all.
	Cacheable bool
	// Reason explains ineligibility (for diagnostics).
	Reason string
}

// Statement fingerprints a parsed statement. As a side effect it assigns
// sqlast.Const.Lit ordinals (1-based) to every lifted literal so the binder
// and serializer can track them through the pipeline.
func Statement(stmt sqlast.Statement) Result {
	e := &enc{ok: true}
	e.stmt(stmt)
	if !e.ok {
		return Result{Cacheable: false, Reason: e.reason}
	}
	return Result{
		Key:       e.b.String(),
		Literals:  e.lits,
		Tables:    e.tables,
		Cacheable: true,
	}
}

type enc struct {
	b      strings.Builder
	lits   []types.Datum
	tables []string
	ok     bool
	reason string
}

// hasLowerASCII reports whether s contains a lowercase ASCII letter.
func hasLowerASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'a' && c <= 'z' {
			return true
		}
	}
	return false
}

func (e *enc) fail(reason string) {
	if e.ok {
		e.ok = false
		e.reason = reason
	}
}

func (e *enc) s(parts ...string) {
	for _, p := range parts {
		e.b.WriteString(p)
	}
}

// up writes the ASCII-uppercase fold of s into the key without allocating an
// intermediate string. Bare identifiers are ASCII by construction; quoted
// identifiers with non-ASCII runes fold byte-wise, which keeps the key
// deterministic (at worst two case-variant Unicode spellings miss sharing an
// entry).
func (e *enc) up(s string) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		e.b.WriteByte(c)
	}
}

func (e *enc) num(n int) { e.b.WriteString(strconv.Itoa(n)) }

func (e *enc) flag(f bool) {
	if f {
		e.b.WriteByte('1')
	} else {
		e.b.WriteByte('0')
	}
}

func (e *enc) table(name string) {
	e.tables = append(e.tables, strings.ToUpper(name))
	e.up(name)
}

// liftable reports whether a datum kind is safe to lift: its serialized form
// is opaque to the translation pipeline and its runtime type carries no
// value-dependent attributes beyond the tag written by litTag.
func liftable(d types.Datum) bool {
	if d.Null {
		return false
	}
	switch d.K {
	case types.KindInt, types.KindBigInt, types.KindFloat, types.KindDecimal,
		types.KindChar, types.KindVarChar, types.KindDate, types.KindTime,
		types.KindTimestamp, types.KindBytes:
		return true
	}
	return false
}

// lit lifts a constant into the parameter vector, or encodes its value
// verbatim when lifting is unsafe for the datum kind.
func (e *enc) lit(c *sqlast.Const) {
	if !liftable(c.Val) {
		e.constVal(c)
		return
	}
	idx := len(e.lits)
	e.lits = append(e.lits, c.Val)
	c.Lit = idx + 1
	e.b.WriteByte('?')
	e.num(idx)
	e.b.WriteByte('@')
	e.num(int(c.Val.K))
	if c.Val.K == types.KindDecimal {
		e.b.WriteByte('.')
		e.num(int(c.Val.Scale))
	}
}

// constVal encodes a constant by value (no lifting).
func (e *enc) constVal(c *sqlast.Const) {
	c.Lit = 0
	e.s("c")
	e.num(int(c.Val.K))
	e.s("(", c.Val.SQLLiteral(), ")")
}

// --- statements -------------------------------------------------------------

func (e *enc) stmt(stmt sqlast.Statement) {
	switch t := stmt.(type) {
	case *sqlast.SelectStmt:
		e.s("S(")
		e.query(t.Query)
		e.s(")")
	case *sqlast.InsertStmt:
		e.s("I(")
		e.table(t.Table)
		e.s(";")
		for _, c := range t.Columns {
			e.up(c)
			e.s(",")
		}
		if t.Query != nil {
			e.s(";Q")
			e.query(t.Query)
		} else {
			e.s(";R")
			e.num(len(t.Rows))
			for _, row := range t.Rows {
				e.s("(")
				for _, v := range row {
					e.expr(v, true)
					e.s(",")
				}
				e.s(")")
			}
		}
		e.s(")")
	case *sqlast.UpdateStmt:
		e.s("U(")
		e.table(t.Table)
		e.s(";")
		e.up(t.Alias)
		e.s(";")
		for _, a := range t.Set {
			e.up(a.Column)
			e.s("=")
			e.expr(a.Value, true)
			e.s(",")
		}
		e.s(";")
		for _, f := range t.From {
			e.tableExpr(f)
		}
		e.s(";")
		e.expr(t.Where, true)
		e.s(")")
	case *sqlast.DeleteStmt:
		e.s("D(")
		e.table(t.Table)
		e.s(";")
		e.up(t.Alias)
		e.s(";")
		e.expr(t.Where, true)
		e.s(";")
		e.flag(t.All)
		e.s(")")
	default:
		e.fail("statement kind not cacheable")
	}
}

// --- queries ----------------------------------------------------------------

func (e *enc) query(q *sqlast.QueryExpr) {
	if !e.ok {
		return
	}
	if q == nil {
		e.s("<nilq>")
		return
	}
	e.s("Q(")
	if q.With != nil {
		e.s("W")
		e.flag(q.With.Recursive)
		for _, cte := range q.With.CTEs {
			// CTE names are verbatim: they become output-visible identifiers.
			e.s("(", cte.Name, ";")
			for _, c := range cte.Columns {
				e.s(c, ",")
			}
			e.s(";")
			e.query(cte.Query)
			e.s(")")
		}
	}
	e.body(q.Body)
	e.orderBy(q.OrderBy)
	e.top(q.Limit)
	e.s(")")
}

func (e *enc) body(b sqlast.QueryBody) {
	if !e.ok {
		return
	}
	switch t := b.(type) {
	case *sqlast.SelectCore:
		e.core(t)
	case *sqlast.SetOpBody:
		e.s("O(")
		e.num(int(t.Op))
		e.flag(t.All)
		e.body(t.L)
		e.s("|")
		e.body(t.R)
		e.s(")")
	case *sqlast.QueryExpr:
		e.query(t)
	default:
		e.fail("unknown query body")
	}
}

func (e *enc) top(t *sqlast.TopClause) {
	if t == nil {
		return
	}
	// TOP/LIMIT counts are part of the statement shape: the serializer bakes
	// them into FETCH FIRST clauses, so they must never be lifted.
	e.s("T(")
	e.b.WriteString(strconv.FormatInt(t.N, 10))
	e.flag(t.Percent)
	e.flag(t.WithTies)
	e.s(")")
}

func (e *enc) core(c *sqlast.SelectCore) {
	e.s("C(")
	e.flag(c.Distinct)
	e.top(c.Top)
	e.s(";")
	for _, it := range c.Items {
		e.expr(it.Expr, true)
		// Aliases are verbatim: they become frontend result column names.
		e.s("a(", it.Alias, "),")
	}
	e.s(";")
	for _, f := range c.From {
		e.tableExpr(f)
	}
	e.s(";")
	e.expr(c.Where, true)
	e.s(";")
	for _, g := range c.GroupBy {
		// Bare numeric constants in GROUP BY are ordinal column positions
		// (value-dependent binding) — never lifted.
		e.bareOrLifted(g)
		e.s(",")
	}
	e.s(";")
	if c.GroupingSets != nil {
		e.s("G")
		for _, set := range c.GroupingSets {
			e.s("(")
			for _, i := range set {
				e.num(i)
				e.s(",")
			}
			e.s(")")
		}
	}
	e.s(";")
	e.expr(c.Having, true)
	e.s(";")
	e.expr(c.Qualify, true)
	e.s(")")
}

// bareOrLifted encodes a GROUP BY / ORDER BY element: top-level constants by
// value (ordinal semantics), everything else with normal lifting.
func (e *enc) bareOrLifted(x sqlast.Expr) {
	if c, ok := x.(*sqlast.Const); ok {
		e.constVal(c)
		return
	}
	e.expr(x, true)
}

func (e *enc) orderBy(items []sqlast.OrderItem) {
	if len(items) == 0 {
		return
	}
	e.s("B(")
	for _, it := range items {
		e.bareOrLifted(it.Expr)
		e.flag(it.Desc)
		if it.NullsFirst == nil {
			e.s("n")
		} else {
			e.flag(*it.NullsFirst)
		}
		e.s(",")
	}
	e.s(")")
}

// --- table expressions ------------------------------------------------------

func (e *enc) tableExpr(t sqlast.TableExpr) {
	if !e.ok {
		return
	}
	switch x := t.(type) {
	case *sqlast.TableRef:
		e.s("t(")
		e.table(x.Name)
		e.s(";")
		e.up(x.Alias)
		e.s(";")
		for _, c := range x.ColAliases {
			e.s(c, ",")
		}
		e.s(")")
	case *sqlast.DerivedTable:
		e.s("d(")
		e.query(x.Query)
		e.s(";")
		e.up(x.Alias)
		e.s(";")
		for _, c := range x.ColAliases {
			e.s(c, ",")
		}
		e.s(")")
	case *sqlast.JoinExpr:
		e.s("j(")
		e.num(int(x.Kind))
		e.tableExpr(x.L)
		e.s("|")
		e.tableExpr(x.R)
		e.s("|")
		e.expr(x.On, true)
		e.s(")")
	default:
		e.fail("unknown table expression")
	}
}

// --- expressions ------------------------------------------------------------

// expr encodes one scalar expression. lift controls whether constants in this
// subtree may be lifted into the parameter vector.
func (e *enc) expr(x sqlast.Expr, lift bool) {
	if !e.ok {
		return
	}
	if x == nil {
		e.s("_")
		return
	}
	switch t := x.(type) {
	case *sqlast.Const:
		if lift {
			e.lit(t)
		} else {
			e.constVal(t)
		}
	case *sqlast.Ident:
		e.s("i(")
		for _, p := range t.Parts {
			e.up(p)
			e.s(".")
		}
		e.s(")")
	case *sqlast.Param:
		// Parameter references require session state (macro EXEC scope);
		// those statements bypass the cache entirely.
		e.fail("statement references a parameter")
	case *sqlast.Star:
		e.s("*(")
		e.up(t.Table)
		e.s(")")
	case *sqlast.BinExpr:
		e.s("b")
		e.num(int(t.Op))
		e.s("(")
		e.expr(t.L, lift)
		e.s(",")
		e.expr(t.R, lift)
		e.s(")")
	case *sqlast.UnaryExpr:
		e.s("u")
		e.num(int(t.Op))
		e.s("(")
		e.expr(t.X, lift)
		e.s(")")
	case *sqlast.FuncCall:
		e.funcCall(t, lift)
	case *sqlast.WindowFunc:
		e.s("w(")
		e.funcCall(&t.Func, lift)
		e.s(";")
		for _, p := range t.Over.PartitionBy {
			e.expr(p, lift)
			e.s(",")
		}
		e.s(";")
		e.orderBy(t.Over.OrderBy)
		e.flag(t.Over.RowsUnboundedPreceding)
		e.flag(t.TdForm)
		e.s(")")
	case *sqlast.CaseExpr:
		e.s("k(")
		e.expr(t.Operand, lift)
		for _, wh := range t.Whens {
			e.s(";")
			e.expr(wh.Cond, lift)
			e.s(":")
			e.expr(wh.Then, lift)
		}
		e.s(";e")
		e.expr(t.Else, lift)
		e.s(")")
	case *sqlast.CastExpr:
		e.s("z(")
		e.expr(t.X, lift)
		e.s(";")
		e.typeName(t.To)
		e.s(")")
	case *sqlast.ExtractExpr:
		e.s("x(")
		e.up(t.Field)
		e.s(";")
		e.expr(t.X, lift)
		e.s(")")
	case *sqlast.Subquery:
		e.s("q(")
		e.query(t.Query)
		e.s(")")
	case *sqlast.ExistsExpr:
		e.s("e")
		e.flag(t.Not)
		e.s("(")
		e.query(t.Query)
		e.s(")")
	case *sqlast.InExpr:
		e.s("n")
		e.flag(t.Not)
		e.s("(")
		for _, l := range t.Left {
			e.expr(l, lift)
			e.s(",")
		}
		e.s(";")
		e.num(len(t.List))
		for _, l := range t.List {
			e.expr(l, lift)
			e.s(",")
		}
		e.s(";")
		if t.Query != nil {
			e.query(t.Query)
		}
		e.s(")")
	case *sqlast.QuantifiedCmp:
		e.s("y")
		e.num(int(t.Op))
		e.num(int(t.Quant))
		e.s("(")
		for _, l := range t.Left {
			e.expr(l, lift)
			e.s(",")
		}
		e.s(";")
		e.query(t.Query)
		e.s(")")
	case *sqlast.Tuple:
		e.s("p(")
		for _, it := range t.Items {
			e.expr(it, lift)
			e.s(",")
		}
		e.s(")")
	case *sqlast.IntervalExpr:
		// The binder folds INTERVAL literals into day counts / microsecond
		// ticks; the value shapes the plan and must stay in the key.
		e.s("v(")
		e.up(t.Unit)
		e.s(";")
		e.expr(t.Value, false)
		e.s(")")
	default:
		e.fail("unknown expression")
	}
}

func (e *enc) funcCall(t *sqlast.FuncCall, lift bool) {
	// Function names arrive pre-uppercased from the parser; ToUpper here is
	// a no-op returning its input, kept for robustness on hand-built ASTs.
	name := t.Name
	if hasLowerASCII(name) {
		name = strings.ToUpper(name)
	}
	e.s("f(", name, ";")
	e.flag(t.Distinct)
	e.flag(t.Star)
	for i, a := range t.Args {
		// DATEADD's unit argument is emitted as a bare keyword by the
		// serializer — its value is part of the output shape.
		argLift := lift
		if name == "DATEADD" && i == 0 {
			argLift = false
		}
		e.expr(a, argLift)
		e.s(",")
	}
	e.s(")")
}

func (e *enc) typeName(t sqlast.TypeName) {
	e.up(t.Name)
	for _, a := range t.Args {
		e.s(",")
		e.num(a)
	}
}
