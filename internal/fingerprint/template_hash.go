package fingerprint

// Lexical statement templates: the workload-statistics registry keys every
// request on a redaction of its raw text — quoted strings and numeric
// literals replaced by '?', identifiers and keywords kept — so literal
// variants of one statement shape share a single /statements entry and no
// customer data ever reaches an observability surface. Unlike the AST
// fingerprint above (which requires a successful parse and is restricted to
// cacheable statement kinds), the lexical template is total: it exists for
// DDL, multi-statement requests, and even statements that fail to parse,
// which is exactly what a per-shape error breakdown needs.
//
// TemplateHash is the streaming form: it folds the redacted byte stream into
// an FNV-1a hash without materializing the template, so computing the
// registry key costs zero allocations on the request hot path. TemplateText
// materializes the same redaction (the two always agree: TemplateHash(s) is
// the hash of TemplateText(s)); it runs only on first admission of a shape
// and in the query log's redaction mode.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// redactor streams the redacted form of a statement: every emitted byte is
// folded into the FNV-1a hash, and additionally appended to buf when text
// output was requested. last tracks the previously emitted byte for the
// identifier/number boundary check.
type redactor struct {
	h    uint64
	buf  []byte
	text bool
	last byte
}

func (r *redactor) emit(c byte) {
	r.h ^= uint64(c)
	r.h *= fnvPrime64
	if r.text {
		r.buf = append(r.buf, c)
	}
	r.last = c
}

func (r *redactor) emitString(s string) {
	for i := 0; i < len(s); i++ {
		r.emit(s[i])
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '$' || c == '#' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// redact runs the lexical redaction over sql: quoted strings (with ”
// escaping) and numeric literals (decimals, exponents) become '?'; quoted
// identifiers are copied verbatim; identifiers — even ones containing
// digits, like T1 or L_QUANTITY — keywords, and operators pass through.
func (r *redactor) redact(sql string) {
	r.h = fnvOffset64
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == '\'':
			// String literal; '' is an escaped quote, not a terminator.
			i++
			for i < n {
				if sql[i] == '\'' {
					if i+1 < n && sql[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			r.emit('\'')
			r.emit('?')
			r.emit('\'')
		case c == '"':
			// Quoted identifier: copy verbatim.
			j := i + 1
			for j < n && sql[j] != '"' {
				j++
			}
			if j < n {
				j++
			}
			r.emitString(sql[i:j])
			i = j
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && sql[i+1] >= '0' && sql[i+1] <= '9'):
			// Numeric literal — but only at a non-identifier boundary.
			if isIdentByte(r.last) {
				r.emit(c)
				i++
				continue
			}
			j := i
			for j < n && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.') {
				j++
			}
			if j < n && (sql[j] == 'e' || sql[j] == 'E') {
				k := j + 1
				if k < n && (sql[k] == '+' || sql[k] == '-') {
					k++
				}
				if k < n && sql[k] >= '0' && sql[k] <= '9' {
					for k < n && sql[k] >= '0' && sql[k] <= '9' {
						k++
					}
					j = k
				}
			}
			r.emit('?')
			i = j
		default:
			if isIdentByte(c) {
				// Copy the whole identifier so trailing digits are not
				// mistaken for literals on the next iteration.
				j := i
				for j < n && isIdentByte(sql[j]) {
					j++
				}
				r.emitString(sql[i:j])
				i = j
				continue
			}
			r.emit(c)
			i++
		}
	}
}

// TemplateHash returns the FNV-1a hash of the redacted statement template —
// the workload-statistics registry key. Allocation-free.
func TemplateHash(sql string) uint64 {
	var r redactor
	r.redact(sql)
	return r.h
}

// TemplateText returns the redacted statement template. For any input,
// TemplateHash(sql) is exactly the FNV-1a hash of TemplateText(sql).
func TemplateText(sql string) string {
	r := redactor{text: true, buf: make([]byte, 0, len(sql))}
	r.redact(sql)
	return string(r.buf)
}

// ShortID renders a template hash as the stable 16-hex-digit fingerprint id
// used as the /statements join key and the Prometheus fp label.
func ShortID(h uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}
