// Package tdf implements Hyper-Q's Tabular Data Format (§4.5): the binary
// data representation result batches are packaged in between the ODBC
// Server and the Result Converter. TDF is "an extensible binary format that
// is able [to] handle arbitrarily large nested data"; batches are retrieved
// on demand and, when the original database disallows streaming, buffered in
// a Result Store that spills to disk once a memory budget is exceeded
// (§4.6).
package tdf

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hyperq/internal/types"
)

// Magic identifies a TDF batch header.
const Magic = 0x54444631 // "TDF1"

// Column type tags in the batch header.
const (
	tagNull uint8 = iota
	tagBool
	tagInt
	tagBigInt
	tagFloat
	tagDecimal
	tagChar
	tagVarChar
	tagDate
	tagTime
	tagTimestamp
	tagPeriod
	tagBytes
	tagInterval
)

func kindToTag(k types.Kind) (uint8, error) {
	switch k {
	case types.KindNull:
		return tagNull, nil
	case types.KindBool:
		return tagBool, nil
	case types.KindInt:
		return tagInt, nil
	case types.KindBigInt:
		return tagBigInt, nil
	case types.KindFloat:
		return tagFloat, nil
	case types.KindDecimal:
		return tagDecimal, nil
	case types.KindChar:
		return tagChar, nil
	case types.KindVarChar:
		return tagVarChar, nil
	case types.KindDate:
		return tagDate, nil
	case types.KindTime:
		return tagTime, nil
	case types.KindTimestamp:
		return tagTimestamp, nil
	case types.KindPeriod:
		return tagPeriod, nil
	case types.KindBytes:
		return tagBytes, nil
	case types.KindInterval:
		return tagInterval, nil
	}
	return 0, fmt.Errorf("tdf: unsupported kind %v", k)
}

func tagToKind(t uint8) (types.Kind, error) {
	kinds := []types.Kind{
		types.KindNull, types.KindBool, types.KindInt, types.KindBigInt,
		types.KindFloat, types.KindDecimal, types.KindChar, types.KindVarChar,
		types.KindDate, types.KindTime, types.KindTimestamp, types.KindPeriod,
		types.KindBytes, types.KindInterval,
	}
	if int(t) >= len(kinds) {
		return 0, fmt.Errorf("tdf: unknown type tag %d", t)
	}
	return kinds[t], nil
}

// ColumnMeta describes one column of a batch.
type ColumnMeta struct {
	Name string
	Type types.T
}

// Batch is one unit of result data: schema plus rows.
type Batch struct {
	Cols []ColumnMeta
	Rows [][]types.Datum
}

// EncodedSize estimates the wire size of the batch (used for memory
// accounting in the Result Store).
func (b *Batch) EncodedSize() int {
	size := 16
	for _, c := range b.Cols {
		size += 8 + len(c.Name)
	}
	for _, row := range b.Rows {
		size += 4 + len(row) // presence bytes
		for _, d := range row {
			size += 9
			size += len(d.S)
		}
	}
	return size
}

// Encode writes the batch in TDF framing:
//
//	u32 magic, u32 ncols, u32 nrows
//	per column: u8 tag, i32 scale/elem, u16 namelen, name
//	per row: per column: u8 present, then the value encoding
//
// Value encodings: fixed 8-byte little-endian integers for integral kinds,
// IEEE754 bits for FLOAT, u32-length-prefixed bytes for strings, two 8-byte
// values for PERIOD.
func (b *Batch) Encode(w io.Writer) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b.Cols)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(b.Rows)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, c := range b.Cols {
		tag, err := kindToTag(c.Type.Kind)
		if err != nil {
			return err
		}
		aux := int32(c.Type.Scale)
		if c.Type.Kind == types.KindPeriod {
			t2, err := kindToTag(c.Type.Elem)
			if err != nil {
				return err
			}
			aux = int32(t2)
		}
		var ch [7]byte
		ch[0] = tag
		binary.LittleEndian.PutUint32(ch[1:], uint32(aux))
		binary.LittleEndian.PutUint16(ch[5:], uint16(len(c.Name)))
		if _, err := w.Write(ch[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, c.Name); err != nil {
			return err
		}
	}
	for _, row := range b.Rows {
		if len(row) != len(b.Cols) {
			return fmt.Errorf("tdf: row arity %d != %d", len(row), len(b.Cols))
		}
		for i, d := range row {
			if err := encodeDatum(w, b.Cols[i].Type, d); err != nil {
				return err
			}
		}
	}
	return nil
}

func encodeDatum(w io.Writer, t types.T, d types.Datum) error {
	if d.Null {
		_, err := w.Write([]byte{0})
		return err
	}
	if _, err := w.Write([]byte{1}); err != nil {
		return err
	}
	var buf [16]byte
	switch t.Kind {
	case types.KindBool, types.KindInt, types.KindBigInt, types.KindDate,
		types.KindTime, types.KindTimestamp, types.KindDecimal, types.KindInterval:
		binary.LittleEndian.PutUint64(buf[:8], uint64(d.I))
		_, err := w.Write(buf[:8])
		return err
	case types.KindFloat:
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(d.F))
		_, err := w.Write(buf[:8])
		return err
	case types.KindChar, types.KindVarChar, types.KindBytes:
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(d.S)))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
		_, err := io.WriteString(w, d.S)
		return err
	case types.KindPeriod:
		binary.LittleEndian.PutUint64(buf[:8], uint64(d.PStart))
		binary.LittleEndian.PutUint64(buf[8:], uint64(d.PEnd))
		_, err := w.Write(buf[:16])
		return err
	case types.KindNull:
		return nil
	}
	return fmt.Errorf("tdf: cannot encode kind %v", t.Kind)
}

// Decode reads one batch.
func Decode(r io.Reader) (*Batch, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != Magic {
		return nil, fmt.Errorf("tdf: bad magic")
	}
	ncols := int(binary.LittleEndian.Uint32(hdr[4:]))
	nrows := int(binary.LittleEndian.Uint32(hdr[8:]))
	if ncols > 1<<16 || nrows > 1<<30 {
		return nil, fmt.Errorf("tdf: implausible header (%d cols, %d rows)", ncols, nrows)
	}
	b := &Batch{Cols: make([]ColumnMeta, ncols)}
	for i := 0; i < ncols; i++ {
		var ch [7]byte
		if _, err := io.ReadFull(r, ch[:]); err != nil {
			return nil, err
		}
		kind, err := tagToKind(ch[0])
		if err != nil {
			return nil, err
		}
		aux := int32(binary.LittleEndian.Uint32(ch[1:]))
		nameLen := int(binary.LittleEndian.Uint16(ch[5:]))
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, err
		}
		t := types.T{Kind: kind}
		switch kind {
		case types.KindDecimal:
			t.Scale = int(aux)
			t.Precision = 18
		case types.KindPeriod:
			ek, err := tagToKind(uint8(aux))
			if err != nil {
				return nil, err
			}
			t.Elem = ek
		}
		b.Cols[i] = ColumnMeta{Name: string(name), Type: t}
	}
	b.Rows = make([][]types.Datum, nrows)
	for ri := 0; ri < nrows; ri++ {
		row := make([]types.Datum, ncols)
		for ci := 0; ci < ncols; ci++ {
			d, err := decodeDatum(r, b.Cols[ci].Type)
			if err != nil {
				return nil, err
			}
			row[ci] = d
		}
		b.Rows[ri] = row
	}
	return b, nil
}

func decodeDatum(r io.Reader, t types.T) (types.Datum, error) {
	var p [1]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		return types.Datum{}, err
	}
	if p[0] == 0 {
		return types.NewNull(t.Kind), nil
	}
	var buf [16]byte
	switch t.Kind {
	case types.KindBool, types.KindInt, types.KindBigInt, types.KindDate,
		types.KindTime, types.KindTimestamp, types.KindDecimal, types.KindInterval:
		if _, err := io.ReadFull(r, buf[:8]); err != nil {
			return types.Datum{}, err
		}
		d := types.Datum{K: t.Kind, I: int64(binary.LittleEndian.Uint64(buf[:8]))}
		if t.Kind == types.KindDecimal {
			d.Scale = int8(t.Scale)
		}
		return d, nil
	case types.KindFloat:
		if _, err := io.ReadFull(r, buf[:8]); err != nil {
			return types.Datum{}, err
		}
		return types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))), nil
	case types.KindChar, types.KindVarChar, types.KindBytes:
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return types.Datum{}, err
		}
		n := binary.LittleEndian.Uint32(buf[:4])
		if n > 1<<28 {
			return types.Datum{}, fmt.Errorf("tdf: implausible string length %d", n)
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(r, s); err != nil {
			return types.Datum{}, err
		}
		return types.Datum{K: t.Kind, S: string(s)}, nil
	case types.KindPeriod:
		if _, err := io.ReadFull(r, buf[:16]); err != nil {
			return types.Datum{}, err
		}
		return types.NewPeriod(t.Elem,
			int64(binary.LittleEndian.Uint64(buf[:8])),
			int64(binary.LittleEndian.Uint64(buf[8:]))), nil
	case types.KindNull:
		return types.NewNull(types.KindNull), nil
	}
	return types.Datum{}, fmt.Errorf("tdf: cannot decode kind %v", t.Kind)
}
